package simrank

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// Graph is an immutable directed graph. Vertices are dense integers in
// [0, NumVertices()). SimRank treats an edge (u, v) as "u links to v";
// similarity flows through shared in-links.
type Graph struct {
	g *graph.Graph
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.N() }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return g.g.M() }

// InDegree returns the number of in-links of v.
func (g *Graph) InDegree(v int) int { return g.g.InDegree(uint32(v)) }

// OutDegree returns the number of out-links of v.
func (g *Graph) OutDegree(v int) int { return g.g.OutDegree(uint32(v)) }

// HasEdge reports whether the directed edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool { return g.g.HasEdge(uint32(u), uint32(v)) }

// Internal exposes the underlying representation for the experiment
// harness; not part of the stable API.
func (g *Graph) Internal() *graph.Graph { return g.g }

// GraphStats summarizes structural properties relevant to similarity
// search performance.
type GraphStats struct {
	Vertices int
	Edges    int
	// AvgInDegree is Edges / Vertices.
	AvgInDegree float64
	// MaxInDegree is the largest in-degree (hubs slow MC estimates).
	MaxInDegree int
	// DanglingIn counts vertices with no in-links (walks die there).
	DanglingIn int
	// Components is the number of weakly connected components.
	Components int
	// AvgDistance is the sampled average undirected pairwise distance
	// (the Figure 2 baseline); 0 when distSamples was 0.
	AvgDistance float64
}

// Stats computes structural statistics. distSamples controls how many
// BFS sources are sampled for the average-distance estimate (0 skips it,
// which is much faster on large graphs).
func (g *Graph) Stats(distSamples int) GraphStats {
	st := graph.ComputeStats(g.g, distSamples, 1)
	return GraphStats{
		Vertices:    st.N,
		Edges:       st.M,
		AvgInDegree: st.AvgInDegree,
		MaxInDegree: st.MaxInDegree,
		DanglingIn:  st.DanglingIn,
		Components:  st.Components,
		AvgDistance: st.AvgDistance,
	}
}

// GraphBuilder accumulates directed edges and produces a Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder(n)}
}

// AddEdge records the directed edge (u, v). Out-of-range endpoints and
// self-loops are rejected with an error (SimRank is defined on simple
// directed graphs).
func (gb *GraphBuilder) AddEdge(u, v int) error {
	n := gb.b.N()
	if u < 0 || v < 0 || u >= n || v >= n {
		return fmt.Errorf("simrank: edge (%d,%d) out of range for %d vertices", u, v, n)
	}
	gb.b.AddEdge(uint32(u), uint32(v))
	return nil
}

// AddUndirectedEdge records edges in both directions.
func (gb *GraphBuilder) AddUndirectedEdge(u, v int) error {
	if err := gb.AddEdge(u, v); err != nil {
		return err
	}
	return gb.AddEdge(v, u)
}

// Build finalizes the graph. Duplicate edges are removed.
func (gb *GraphBuilder) Build() *Graph {
	return &Graph{g: gb.b.Build()}
}

// FromEdges builds a graph with n vertices from (u, v) pairs.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	gb := NewGraphBuilder(n)
	for _, e := range edges {
		if err := gb.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return gb.Build(), nil
}

// LoadEdgeList parses a whitespace-separated "u v" edge list ('#' and '%'
// comment lines allowed), the format used by SNAP datasets.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) {
	g, err := graph.LoadEdgeListFile(path)
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// SaveEdgeListFile writes the graph as an edge-list file.
func (g *Graph) SaveEdgeListFile(path string) error {
	return graph.SaveEdgeListFile(path, g.g)
}

// The generators below produce synthetic graphs of the structural classes
// used in the paper's evaluation; see internal/graph for model details.

// GenerateWebGraph returns a copying-model web graph: n pages, ~k links
// per page, copy-divergence beta in (0,1). Web graphs have the strongest
// SimRank locality and are the method's best case.
func GenerateWebGraph(n, k int, beta float64, seed uint64) *Graph {
	return &Graph{g: graph.CopyingModel(n, k, beta, seed)}
}

// GenerateSocialGraph returns a preferential-attachment social network
// with ~k out-links per vertex and reciprocity pMutual.
func GenerateSocialGraph(n, k int, pMutual float64, seed uint64) *Graph {
	return &Graph{g: graph.PreferentialAttachment(n, k, pMutual, seed)}
}

// GenerateCollaborationGraph returns an undirected collaboration network
// of overlapping communities (papers with shared authors).
func GenerateCollaborationGraph(nCommunities, meanSize int, pIn float64, seed uint64) *Graph {
	return &Graph{g: graph.Collaboration(nCommunities, meanSize, pIn, nCommunities/10+1, seed)}
}

// GenerateCitationGraph returns a time-ordered citation DAG with ~k
// references per paper.
func GenerateCitationGraph(n, k int, seed uint64) *Graph {
	return &Graph{g: graph.CitationDAG(n, k, seed)}
}

// GenerateBipartiteGraph returns a user–item graph: users [0, nUsers),
// items [nUsers, nUsers+nItems), edges in both directions.
func GenerateBipartiteGraph(nUsers, nItems, ratingsPerUser int, seed uint64) *Graph {
	return &Graph{g: graph.BipartiteUserItem(nUsers, nItems, ratingsPerUser, seed)}
}

// errVertexRange builds the out-of-range error shared by all query
// entry points.
func errVertexRange(v, n int) error {
	return fmt.Errorf("simrank: vertex %d out of range [0, %d)", v, n)
}

// checkVertex validates a vertex ID against the graph.
//
//lint:sanitized an error return rejects every out-of-range vertex
func (g *Graph) checkVertex(v int) error {
	if v < 0 || v >= g.g.N() {
		return errVertexRange(v, g.g.N())
	}
	return nil
}
