package simrank_test

import (
	"fmt"
	"sort"

	simrank "repro"
)

// Two products (3 and 4) bought by the same three customers come out
// highly similar; a product with a disjoint audience does not.
func Example() {
	gb := simrank.NewGraphBuilder(6)
	for _, customer := range []int{0, 1, 2} {
		gb.AddEdge(customer, 3)
		gb.AddEdge(customer, 4)
	}
	gb.AddEdge(0, 5)
	g := gb.Build()

	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
	top, err := idx.TopK(3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("most similar to product 3: product", top[0].Node)
	// Output: most similar to product 3: product 4
}

// ExactTopK ranks deterministically, which is handy in tests and on
// small graphs.
func ExampleExactTopK() {
	g, err := simrank.FromEdges(5, [][2]int{
		{0, 3}, {1, 3}, {0, 4}, {1, 4}, {2, 0},
	})
	if err != nil {
		panic(err)
	}
	top, err := simrank.ExactTopK(g, simrank.DefaultOptions(), 3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("vertex %d (score %.4f)\n", top[0].Node, top[0].Score)
	// Output: vertex 4 (score 0.1560)
}

// SimilarityJoin finds all pairs above a score threshold.
func ExampleIndex_SimilarityJoin() {
	// Two disjoint pairs of co-cited pages.
	g, err := simrank.FromEdges(8, [][2]int{
		{0, 4}, {1, 4}, {0, 5}, {1, 5}, // pages 4,5 share in-links {0,1}
		{2, 6}, {3, 6}, {2, 7}, {3, 7}, // pages 6,7 share in-links {2,3}
	})
	if err != nil {
		panic(err)
	}
	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
	pairs := idx.SimilarityJoin(0.05, 10)
	// Results come back score-descending; sort by vertex for stable output
	// (the two pairs are symmetric, so their estimates are within noise).
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].U < pairs[j].U })
	for _, p := range pairs {
		fmt.Printf("%d ~ %d\n", p.U, p.V)
	}
	// Output:
	// 4 ~ 5
	// 6 ~ 7
}

// A DynamicIndex absorbs edge updates between queries.
func ExampleDynamicIndex() {
	dx := simrank.NewDynamicIndex(5, simrank.DefaultOptions())
	dx.AddEdge(0, 3)
	dx.AddEdge(1, 3)
	dx.AddEdge(0, 4)
	dx.AddEdge(1, 4)
	top, err := dx.TopK(3, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("similar to 3:", top[0].Node)
	// Output: similar to 3: 4
}
