package simrank

// Benchmarks regenerating the measured quantity behind every table and
// figure of the paper's evaluation (Section 8). The full row/series
// reproductions — which print the paper-format reports — live in
// cmd/experiments (internal/bench); these testing.B benches measure the
// kernels those reports time, at fixed laptop-scale sizes:
//
//	Table 1  -> BenchmarkTable1QueryScaling (query time vs n)
//	Table 2  -> BenchmarkTable2DatasetBuild (stand-in generation)
//	Figure 1 -> BenchmarkFigure1ExactVsApprox (all-pairs exact + series)
//	Figure 2 -> BenchmarkFigure2SingleSourceAndBFS (per-query cost)
//	Table 3  -> BenchmarkTable3ThresholdQuery / ...Fogaras
//	Table 4  -> BenchmarkTable4Preprocess / ...Query / ...FogarasQuery /
//	            ...YuAllPairs
//	Ablation -> BenchmarkAblationQuery/*
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fogaras"
	"repro/internal/graph"
	"repro/internal/yu"
)

// benchGraphs caches the graphs and engines shared across benchmarks.
var benchGraphs struct {
	once sync.Once

	web    *graph.Graph // copying model, the method's primary target
	social *graph.Graph // preferential attachment
	collab *graph.Graph // Table 3-class small graph

	webEng    *core.Engine
	socialEng *core.Engine
	collabEng *core.Engine

	fogIdx *fogaras.Index
}

func setupBenchGraphs(b *testing.B) {
	b.Helper()
	benchGraphs.once.Do(func() {
		benchGraphs.web = graph.CopyingModel(20000, 8, 0.3, 1)
		benchGraphs.social = graph.PreferentialAttachment(20000, 10, 0.4, 2)
		benchGraphs.collab = graph.Collaboration(900, 4, 0.85, 100, 3)

		p := core.DefaultParams()
		p.Seed = 1
		benchGraphs.webEng = core.Build(benchGraphs.web, p)
		benchGraphs.socialEng = core.Build(benchGraphs.social, p)
		benchGraphs.collabEng = core.Build(benchGraphs.collab, p)

		fp := fogaras.DefaultParams()
		idx, err := fogaras.Build(benchGraphs.collab, fp)
		if err != nil {
			panic(err)
		}
		benchGraphs.fogIdx = idx
	})
}

// --- Table 1: query time must not scale with n -------------------------

func BenchmarkTable1QueryScaling(b *testing.B) {
	for _, n := range []int{5000, 20000, 80000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := graph.CopyingModel(n, 8, 0.3, 7)
			p := core.DefaultParams()
			p.Seed = 1
			eng := core.Build(g, p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.TopK(uint32(i%n), 20)
			}
		})
	}
}

// --- Table 2: dataset stand-in generation ------------------------------

func BenchmarkTable2DatasetBuild(b *testing.B) {
	ds, err := bench.ByName("web-stanford-sim", 0.3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g, err := ds.Build()
		if err != nil || g.N() == 0 {
			b.Fatal("bad dataset")
		}
	}
}

// --- Figure 1: exact vs approximate SimRank ----------------------------

func BenchmarkFigure1ExactVsApprox(b *testing.B) {
	g := graph.Collaboration(250, 4, 0.85, 30, 3)
	const c = 0.6
	iters := exact.IterationsFor(c, 1e-5)
	d := exact.UniformDiagonal(g.N(), c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sTrue := exact.PartialSumsAllPairs(g, c, iters)
		sApprox := exact.SeriesAllPairs(g, d, c, 11)
		if sTrue.At(0, 0) != 1 || sApprox.N != g.N() {
			b.Fatal("bad result")
		}
	}
}

// --- Figure 2: exact single-source ranking + distances per query -------

func BenchmarkFigure2SingleSourceAndBFS(b *testing.B) {
	setupBenchGraphs(b)
	g := benchGraphs.web
	d := exact.UniformDiagonal(g.N(), 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32(i % g.N())
		row := exact.SingleSource(g, d, 0.6, 11, u)
		top := exact.TopK(row, u, 1000)
		dist := g.UndirectedDistances(u, -1)
		if len(top) > 0 && dist[top[0].V] < -1 {
			b.Fatal("impossible")
		}
	}
}

// --- Table 3: threshold (accuracy) queries ------------------------------

func BenchmarkTable3ThresholdQuery(b *testing.B) {
	setupBenchGraphs(b)
	eng := benchGraphs.collabEng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Threshold(uint32(i%benchGraphs.collab.N()), 0.04)
	}
}

func BenchmarkTable3ThresholdQueryFogaras(b *testing.B) {
	setupBenchGraphs(b)
	idx := benchGraphs.fogIdx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Threshold(uint32(i%benchGraphs.collab.N()), 0.04)
	}
}

// --- Table 4: preprocess, query, comparators ----------------------------

func BenchmarkTable4PreprocessWeb(b *testing.B) {
	setupBenchGraphs(b)
	p := core.DefaultParams()
	p.Seed = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(benchGraphs.web, p)
	}
}

func BenchmarkTable4QueryWeb(b *testing.B) {
	setupBenchGraphs(b)
	eng := benchGraphs.webEng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.TopK(uint32(i%benchGraphs.web.N()), 20)
	}
}

func BenchmarkTable4QuerySocial(b *testing.B) {
	setupBenchGraphs(b)
	eng := benchGraphs.socialEng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.TopK(uint32(i%benchGraphs.social.N()), 20)
	}
}

func BenchmarkTable4SinglePairMC(b *testing.B) {
	setupBenchGraphs(b)
	eng := benchGraphs.webEng
	n := uint32(benchGraphs.web.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.SinglePairR(uint32(i)%n, uint32(i*7+1)%n, 100)
	}
}

func BenchmarkTable4FogarasQuery(b *testing.B) {
	setupBenchGraphs(b)
	idx := benchGraphs.fogIdx
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopK(uint32(i%benchGraphs.collab.N()), 20)
	}
}

func BenchmarkTable4FogarasPreprocess(b *testing.B) {
	setupBenchGraphs(b)
	fp := fogaras.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fogaras.Build(benchGraphs.collab, fp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4YuAllPairs(b *testing.B) {
	setupBenchGraphs(b)
	yp := yu.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := yu.AllPairs(benchGraphs.collab, yp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations: pruning ingredients -------------------------------------

func BenchmarkAblationQuery(b *testing.B) {
	setupBenchGraphs(b)
	variants := []struct {
		name string
		mod  func(p core.Params) core.Params
	}{
		{"full", func(p core.Params) core.Params { return p }},
		{"noL1", func(p core.Params) core.Params { p.DisableL1 = true; return p }},
		{"noL2", func(p core.Params) core.Params { p.DisableL2 = true; return p }},
		{"noAdaptive", func(p core.Params) core.Params { p.DisableAdaptive = true; return p }},
		{"ballCandidates", func(p core.Params) core.Params { p.Strategy = core.CandidatesBall; return p }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			p := core.DefaultParams()
			p.Seed = 1
			eng := core.Build(benchGraphs.web, v.mod(p))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.TopK(uint32(i%benchGraphs.web.N()), 20)
			}
		})
	}
}

// --- Supporting kernels --------------------------------------------------

func BenchmarkExactSingleSource(b *testing.B) {
	setupBenchGraphs(b)
	g := benchGraphs.web
	d := exact.UniformDiagonal(g.N(), 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.SingleSource(g, d, 0.6, 11, uint32(i%g.N()))
	}
}

func BenchmarkPublicAPITopK(b *testing.B) {
	g := GenerateWebGraph(10000, 8, 0.3, 5)
	idx := BuildIndex(g, DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.TopK(i%g.NumVertices(), 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllTopKParallel(b *testing.B) {
	g := graph.CopyingModel(3000, 6, 0.3, 9)
	p := core.DefaultParams()
	p.Seed = 1
	eng := core.Build(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AllTopK(20)
	}
}
