package simrank

import (
	"io"

	"repro/internal/core"
)

// SaveIndex writes the index's preprocess results (the γ table and the
// candidate index) so a later session can skip the preprocess with
// LoadIndex.
func (ix *Index) SaveIndex(w io.Writer) error {
	return ix.e.SaveIndex(w)
}

// LoadIndex restores preprocess results saved by SaveIndex over the same
// graph with compatible options (equal T and decay factor; mismatches are
// rejected).
func LoadIndex(g *Graph, opts Options, r io.Reader) (*Index, error) {
	e, err := core.LoadIndex(g.g, opts.toParams(), r)
	if err != nil {
		return nil, err
	}
	return &Index{g: g, e: e}, nil
}

// DynamicIndex is a similarity-search index over a mutable edge set.
// Updates are buffered and applied incrementally on the next query: only
// vertices whose random-walk behaviour could have changed are
// re-preprocessed. Safe for use from one goroutine at a time per method
// call group; concurrent queries interleaved with updates serialize on an
// internal lock.
type DynamicIndex struct {
	d *core.DynamicEngine
}

// NewDynamicIndex returns an empty dynamic index over n vertices.
func NewDynamicIndex(n int, opts Options) *DynamicIndex {
	return &DynamicIndex{d: core.NewDynamic(n, opts.toParams())}
}

// NewDynamicIndexFrom seeds the dynamic index with an existing graph.
func NewDynamicIndexFrom(g *Graph, opts Options) *DynamicIndex {
	return &DynamicIndex{d: core.NewDynamicFrom(g.g, opts.toParams())}
}

// AddEdge inserts the directed edge (u, v).
func (dx *DynamicIndex) AddEdge(u, v int) error {
	return dx.d.AddEdge(uint32(u), uint32(v))
}

// RemoveEdge deletes the directed edge (u, v).
func (dx *DynamicIndex) RemoveEdge(u, v int) error {
	return dx.d.RemoveEdge(uint32(u), uint32(v))
}

// NumVertices returns the vertex count.
func (dx *DynamicIndex) NumVertices() int { return dx.d.N() }

// NumEdges returns the current edge count, including buffered updates.
func (dx *DynamicIndex) NumEdges() int { return dx.d.M() }

// PendingUpdates reports how many vertices have unapplied in-link
// changes.
func (dx *DynamicIndex) PendingUpdates() int { return dx.d.Pending() }

// Refresh applies buffered updates now instead of on the next query.
func (dx *DynamicIndex) Refresh() error { return dx.d.Refresh() }

// TopK returns the k vertices most similar to u, applying pending
// updates first.
func (dx *DynamicIndex) TopK(u, k int) ([]Result, error) {
	if u < 0 || u >= dx.d.N() {
		return nil, errVertexRange(u, dx.d.N())
	}
	res, err := dx.d.TopK(uint32(u), k)
	if err != nil {
		return nil, err
	}
	return toResults(res), nil
}

// SinglePair estimates the SimRank score between u and v, applying
// pending updates first.
func (dx *DynamicIndex) SinglePair(u, v int) (float64, error) {
	n := dx.d.N()
	if u < 0 || u >= n {
		return 0, errVertexRange(u, n)
	}
	if v < 0 || v >= n {
		return 0, errVertexRange(v, n)
	}
	if u == v {
		return 1, nil
	}
	return dx.d.SinglePair(uint32(u), uint32(v))
}
