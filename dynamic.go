package simrank

import (
	"context"
	"io"

	"repro/internal/core"
)

// SaveIndex writes the index's preprocess results (the γ table and the
// candidate index) so a later session can skip the preprocess with
// LoadIndex.
func (ix *Index) SaveIndex(w io.Writer) error {
	return ix.e.SaveIndex(w)
}

// LoadIndex restores preprocess results saved by SaveIndex over the same
// graph with compatible options (equal T and decay factor; mismatches are
// rejected).
func LoadIndex(g *Graph, opts Options, r io.Reader) (*Index, error) {
	e, err := core.LoadIndex(g.g, opts.toParams(), r)
	if err != nil {
		return nil, err
	}
	return &Index{g: g, e: e.Seal()}, nil
}

// LoadIndexMmap memory-maps a version-3 index file and serves queries
// directly from the mapping with zero payload copies: the graph is
// reconstructed from the CSR sections embedded in the file, so no
// separate edge list is needed and cold start is independent of index
// size. The returned closer unmaps the file; it must not be called
// while queries are in flight. Unix only — other platforms return an
// error, and callers should fall back to LoadIndex.
func LoadIndexMmap(path string, opts Options) (*Index, func() error, error) {
	e, closer, err := core.LoadIndexMmap(path, opts.toParams())
	if err != nil {
		return nil, nil, err
	}
	return &Index{g: &Graph{g: e.Graph()}, e: e.Seal()}, closer, nil
}

// DynamicIndex is a similarity-search index over a mutable edge set.
// Queries are served lock-free from an immutable published snapshot, so
// any number of goroutines may query and update concurrently without
// stalling each other.
//
// Consistency contract: AddEdge/RemoveEdge buffer the change and return
// immediately; queries keep answering from the current snapshot until a
// refresh absorbs the updates. A query that notices buffered updates
// nudges a single background worker, which rebuilds the affected
// preprocess state off the query path and atomically publishes the new
// snapshot — eventual consistency by default. Call Refresh to apply
// buffered updates synchronously when read-your-writes is required.
// Only vertices whose random-walk behaviour could have changed are
// re-preprocessed; large batches fall back to a full rebuild.
type DynamicIndex struct {
	d *core.DynamicEngine
}

// NewDynamicIndex returns an empty dynamic index over n vertices.
func NewDynamicIndex(n int, opts Options) *DynamicIndex {
	return &DynamicIndex{d: core.NewDynamic(n, opts.toParams())}
}

// NewDynamicIndexFrom seeds the dynamic index with an existing graph.
func NewDynamicIndexFrom(g *Graph, opts Options) *DynamicIndex {
	return &DynamicIndex{d: core.NewDynamicFrom(g.g, opts.toParams())}
}

// AddEdge inserts the directed edge (u, v).
func (dx *DynamicIndex) AddEdge(u, v int) error {
	return dx.d.AddEdge(uint32(u), uint32(v))
}

// RemoveEdge deletes the directed edge (u, v).
func (dx *DynamicIndex) RemoveEdge(u, v int) error {
	return dx.d.RemoveEdge(uint32(u), uint32(v))
}

// NumVertices returns the vertex count.
func (dx *DynamicIndex) NumVertices() int { return dx.d.N() }

// NumEdges returns the current edge count, including buffered updates.
func (dx *DynamicIndex) NumEdges() int { return dx.d.M() }

// PendingUpdates reports how many vertices have unapplied in-link
// changes.
func (dx *DynamicIndex) PendingUpdates() int { return dx.d.Pending() }

// Refresh applies buffered updates synchronously: once it returns,
// queries observe every update buffered before the call.
func (dx *DynamicIndex) Refresh() error { return dx.d.Refresh() }

// Close stops the background refresh worker. The index remains queryable
// (serving the last published snapshot, refreshing synchronously on
// demand); Close only releases the goroutine.
func (dx *DynamicIndex) Close() { dx.d.Close() }

// TopK returns the k vertices most similar to u from the current
// snapshot (see the consistency contract on DynamicIndex).
func (dx *DynamicIndex) TopK(u, k int) ([]Result, error) {
	return dx.TopKCtx(context.Background(), u, k)
}

// TopKCtx is TopK with cancellation, checked between candidate-scoring
// blocks.
func (dx *DynamicIndex) TopKCtx(ctx context.Context, u, k int) ([]Result, error) {
	if u < 0 || u >= dx.d.N() {
		return nil, errVertexRange(u, dx.d.N())
	}
	res, err := dx.d.TopKCtx(ctx, uint32(u), k)
	if err != nil {
		return nil, err
	}
	return toResults(res), nil
}

// TopKBatchCtx answers a slice of top-k queries against one consistent
// snapshot: every query in the batch observes the same graph state, and
// all of them share that snapshot's tally cache.
func (dx *DynamicIndex) TopKBatchCtx(ctx context.Context, us []int, k int) ([][]Result, error) {
	qs := make([]uint32, len(us))
	for i, u := range us {
		if u < 0 || u >= dx.d.N() {
			return nil, errVertexRange(u, dx.d.N())
		}
		qs[i] = uint32(u)
	}
	res, _, err := dx.d.TopKBatchCtx(ctx, qs, k)
	if err != nil {
		return nil, err
	}
	out := make([][]Result, len(res))
	for i, r := range res {
		out[i] = toResults(r)
	}
	return out, nil
}

// CacheStats reports the current snapshot's tally-cache counters (zero
// when the cache is disabled or no snapshot exists yet). Counters reset
// at each refresh; entries untouched by the applied updates carry over.
func (dx *DynamicIndex) CacheStats() CacheStats {
	return toCacheStats(dx.d.CacheStats())
}

// SinglePair estimates the SimRank score between u and v from the
// current snapshot (see the consistency contract on DynamicIndex).
func (dx *DynamicIndex) SinglePair(u, v int) (float64, error) {
	return dx.SinglePairCtx(context.Background(), u, v)
}

// SinglePairCtx is SinglePair with cancellation, checked on entry.
func (dx *DynamicIndex) SinglePairCtx(ctx context.Context, u, v int) (float64, error) {
	n := dx.d.N()
	if u < 0 || u >= n {
		return 0, errVertexRange(u, n)
	}
	if v < 0 || v >= n {
		return 0, errVertexRange(v, n)
	}
	if u == v {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 1, nil
	}
	return dx.d.SinglePairCtx(ctx, uint32(u), uint32(v))
}
