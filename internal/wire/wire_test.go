package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"testing"

	"repro/internal/core"
)

// sampleFrag exercises every state and some awkward float bit patterns:
// negative zero, subnormals, and values that do not round-trip through
// short decimal formatting.
func sampleFrag() []core.ShardCand {
	return []core.ShardCand{
		{V: 0, UB: 1, State: core.ShardScored, Rough: 0.1 + 0.2, Score: 0.30000000000000004},
		{V: 41, UB: 0.6, State: core.ShardScoredNoRough, Score: math.Nextafter(0.6, 1)},
		{V: 7, UB: math.Copysign(0, -1), State: core.ShardRoughPruned, Rough: 5e-324},
		{V: 1 << 31, UB: 0.009999999999999998, State: core.ShardUnscored},
	}
}

func sampleStats() Stats {
	return Stats{Candidates: 120, PrunedByBound: 60, PrunedByRough: 10, Refined: 50, CacheHits: 3, CacheMisses: 47, CacheEvictions: 1}
}

func parse(t *testing.T, data []byte) *Frame {
	t.Helper()
	var f Frame
	if err := f.Parse(data); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return &f
}

func sameFrag(t *testing.T, got, want []core.ShardCand) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("fragment length %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		// Compare the bit patterns, not the float values: -0 vs +0 and
		// NaN payloads must survive exactly.
		if g.V != w.V || g.State != w.State ||
			math.Float64bits(g.UB) != math.Float64bits(w.UB) ||
			math.Float64bits(g.Rough) != math.Float64bits(w.Rough) ||
			math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("row %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestTopKReqRoundTrip(t *testing.T) {
	in := TopKReq{U: 42, Lo: 0, Hi: 2000}
	f := parse(t, AppendTopKReq(nil, in))
	out, err := f.TopKReq()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out != in {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestBatchReqRoundTrip(t *testing.T) {
	in := BatchReq{Lo: 1000, Hi: 2000, Queries: []uint32{5, 1, 5, 1999}}
	f := parse(t, AppendBatchReq(nil, &in))
	var out BatchReq
	if err := f.BatchReq(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Lo != in.Lo || out.Hi != in.Hi || !bytes.Equal(u32bytes(out.Queries), u32bytes(in.Queries)) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestSimilarReqRoundTrip(t *testing.T) {
	in := SimilarReq{U: 9, Lo: 3, Hi: 77, Theta: 0.01}
	f := parse(t, AppendSimilarReq(nil, in))
	out, err := f.SimilarReq()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.U != in.U || out.Lo != in.Lo || out.Hi != in.Hi ||
		math.Float64bits(out.Theta) != math.Float64bits(in.Theta) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
}

func TestTopKRespRoundTrip(t *testing.T) {
	in := TopKResp{Query: 42, Shard: 2, ElapsedUS: 1234, Stats: sampleStats(), Frag: sampleFrag()}
	f := parse(t, AppendTopKResp(nil, &in))
	var out TopKResp
	if err := f.TopKResp(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Query != in.Query || out.Shard != in.Shard || out.ElapsedUS != in.ElapsedUS || out.Stats != in.Stats {
		t.Fatalf("header: got %+v, want %+v", out, in)
	}
	sameFrag(t, out.Frag, in.Frag)
}

func TestBatchRespRoundTrip(t *testing.T) {
	frag := sampleFrag()
	in := BatchResp{
		Shard:     1,
		ElapsedUS: 99,
		Queries:   []uint32{42, 7, 42},
		Stats:     []Stats{sampleStats(), {}, {Candidates: 1}},
		Frags:     [][]core.ShardCand{frag, nil, frag[:2]},
	}
	f := parse(t, AppendBatchResp(nil, &in))
	var out BatchResp
	if err := f.BatchResp(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Shard != in.Shard || out.ElapsedUS != in.ElapsedUS {
		t.Fatalf("header: got %+v", out)
	}
	if !bytes.Equal(u32bytes(out.Queries), u32bytes(in.Queries)) {
		t.Fatalf("queries: got %v, want %v", out.Queries, in.Queries)
	}
	if len(out.Stats) != len(in.Stats) {
		t.Fatalf("stats length %d, want %d", len(out.Stats), len(in.Stats))
	}
	for i := range in.Stats {
		if out.Stats[i] != in.Stats[i] {
			t.Fatalf("stats[%d]: got %+v, want %+v", i, out.Stats[i], in.Stats[i])
		}
	}
	if len(out.Frags) != len(in.Frags) {
		t.Fatalf("frags length %d, want %d", len(out.Frags), len(in.Frags))
	}
	for i := range in.Frags {
		sameFrag(t, out.Frags[i], in.Frags[i])
	}
}

func TestSimilarRespRoundTrip(t *testing.T) {
	in := SimilarResp{
		Query: 5, Shard: 0, ElapsedUS: 7, Stats: sampleStats(),
		Ranked: []ScoredNode{{Node: 9, Score: 0.5}, {Node: 3, Score: 0.30000000000000004}},
	}
	f := parse(t, AppendSimilarResp(nil, &in))
	var out SimilarResp
	if err := f.SimilarResp(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Query != in.Query || out.Shard != in.Shard || out.Stats != in.Stats {
		t.Fatalf("header: got %+v", out)
	}
	if len(out.Ranked) != len(in.Ranked) {
		t.Fatalf("ranked length %d, want %d", len(out.Ranked), len(in.Ranked))
	}
	for i := range in.Ranked {
		if out.Ranked[i].Node != in.Ranked[i].Node ||
			math.Float64bits(out.Ranked[i].Score) != math.Float64bits(in.Ranked[i].Score) {
			t.Fatalf("ranked[%d]: got %+v, want %+v", i, out.Ranked[i], in.Ranked[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	f := parse(t, AppendError(nil, 503, "not_ready", "index still loading"))
	err := f.Err()
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("decoded %T, want *Error", err)
	}
	if we.Status != 503 || we.Code != "not_ready" || we.Msg != "index still loading" {
		t.Fatalf("got %+v", we)
	}
}

// TestDecodeIntoReuses checks the pooled-decode contract: decoding into
// a previously used receiver must not allocate when capacity suffices.
func TestDecodeIntoReuses(t *testing.T) {
	in := TopKResp{Query: 1, Stats: sampleStats(), Frag: sampleFrag()}
	data := AppendTopKResp(nil, &in)
	var f Frame
	var out TopKResp
	if err := f.Parse(data); err != nil {
		t.Fatal(err)
	}
	if err := f.TopKResp(&out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.Parse(data); err != nil {
			t.Fatal(err)
		}
		if err := f.TopKResp(&out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocated %.1f times per op, want 0", allocs)
	}
}

// TestAppendPreservesPrefix checks the append contract: encoding into a
// buffer with existing content leaves that content alone and produces a
// frame parseable from the appended offset.
func TestAppendPreservesPrefix(t *testing.T) {
	prefix := []byte("junk")
	data := AppendTopKReq(append([]byte(nil), prefix...), TopKReq{U: 3, Hi: 10})
	if !bytes.HasPrefix(data, prefix) {
		t.Fatal("prefix clobbered")
	}
	f := parse(t, data[len(prefix):])
	if got, err := f.TopKReq(); err != nil || got.U != 3 {
		t.Fatalf("decode after prefix: %+v, %v", got, err)
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	valid := AppendTopKResp(nil, &TopKResp{Query: 1, Stats: sampleStats(), Frag: sampleFrag()})

	corrupt := func(name string, mutate func([]byte) []byte) {
		data := mutate(append([]byte(nil), valid...))
		var f Frame
		if err := f.Parse(data); err == nil {
			t.Errorf("%s: Parse accepted corrupt frame", name)
		}
	}

	for cut := 1; cut < len(valid); cut++ {
		data := valid[:cut]
		var f Frame
		if err := f.Parse(data); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("payload bit flip", func(b []byte) []byte { b[headerLen+3] ^= 0x10; return b })
	corrupt("crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	corrupt("section count up", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[6:], 60000)
		return rechecksum(b)
	})
	corrupt("section count down", func(b []byte) []byte {
		binary.LittleEndian.PutUint16(b[6:], 1)
		return rechecksum(b)
	})
	corrupt("oversized element count", func(b []byte) []byte {
		// First section header sits right after the frame header; blow up
		// its count field far past the bytes present.
		binary.LittleEndian.PutUint32(b[headerLen+4:], 1<<30)
		return rechecksum(b)
	})
	corrupt("payload length too large", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], uint32(MaxFrameLen+1))
		return rechecksum(b)
	})
	corrupt("payload length mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], uint32(len(b)))
		return rechecksum(b)
	})
}

// TestDecoderRejectsWrongShape: structurally valid frames whose
// sections do not satisfy a message's invariants must fail that
// message's decoder.
func TestDecoderRejectsWrongShape(t *testing.T) {
	var out TopKResp
	f := parse(t, AppendTopKReq(nil, TopKReq{U: 1}))
	if err := f.TopKResp(&out); err == nil {
		t.Fatal("TopKResp decoded a TopKReq frame")
	}
	if _, err := f.SimilarReq(); err == nil {
		t.Fatal("SimilarReq decoded a TopKReq frame")
	}

	// A batch response whose per-query counts disagree with the shipped
	// candidate rows must be rejected, not mis-sliced.
	in := BatchResp{
		Queries: []uint32{1, 2},
		Stats:   []Stats{{}, {}},
		Frags:   [][]core.ShardCand{sampleFrag(), nil},
	}
	data := AppendBatchResp(nil, &in)
	// Locate the counts section payload and inflate the first count.
	idx := bytes.LastIndex(data, []byte{kindCounts, 4})
	if idx < 0 {
		t.Fatal("counts section not found")
	}
	binary.LittleEndian.PutUint32(data[idx+secHdrLen:], 1000)
	data = rechecksum(data)
	f2 := parse(t, data)
	var bout BatchResp
	if err := f2.BatchResp(&bout); err == nil {
		t.Fatal("BatchResp accepted counts/cands mismatch")
	}
}

func TestReadFrame(t *testing.T) {
	a := AppendTopKReq(nil, TopKReq{U: 7, Hi: 50})
	b := AppendError(nil, 400, "bad_request", "u out of range")
	stream := bytes.NewReader(append(append([]byte(nil), a...), b...))

	buf := GetBuf()
	defer PutBuf(buf)
	var f Frame

	first, err := ReadFrame(stream, buf)
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if err := f.Parse(first); err != nil {
		t.Fatalf("first parse: %v", err)
	}
	if req, err := f.TopKReq(); err != nil || req.U != 7 {
		t.Fatalf("first decode: %+v, %v", req, err)
	}

	second, err := ReadFrame(stream, buf)
	if err != nil {
		t.Fatalf("second frame: %v", err)
	}
	if err := f.Parse(second); err != nil {
		t.Fatalf("second parse: %v", err)
	}
	if f.Type != MsgError {
		t.Fatalf("second frame type %d, want MsgError", f.Type)
	}

	if _, err := ReadFrame(stream, buf); err != io.EOF {
		t.Fatalf("exhausted stream: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	buf := GetBuf()
	defer PutBuf(buf)
	if _, err := ReadFrame(bytes.NewReader([]byte("GET / HTTP/1.1\r\n")), buf); err == nil {
		t.Fatal("accepted a non-frame stream")
	}
	// Valid header but hostile length: must fail before allocating.
	hostile := AppendTopKReq(nil, TopKReq{})
	binary.LittleEndian.PutUint32(hostile[8:], uint32(MaxFrameLen+1))
	if _, err := ReadFrame(bytes.NewReader(hostile), buf); err == nil {
		t.Fatal("accepted an oversized length prefix")
	}
	// Truncated mid-payload: io error, not a hang or panic.
	ok := AppendTopKReq(nil, TopKReq{U: 1})
	if _, err := ReadFrame(bytes.NewReader(ok[:len(ok)-2]), buf); err == nil {
		t.Fatal("accepted a truncated stream")
	}
}

func rechecksum(b []byte) []byte {
	body := len(b) - trailerLen
	binary.LittleEndian.PutUint32(b[body:], crc32.Checksum(b[:body], crcTable))
	return b
}

func u32bytes(v []uint32) []byte {
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = binary.LittleEndian.AppendUint32(out, x)
	}
	return out
}
