package wire

import (
	"testing"

	"repro/internal/core"
)

// BenchmarkWireCodec measures one encode+parse+decode round trip of a
// realistic top-k shard response (256 candidate rows) with pooled
// buffers — the steady-state per-query codec cost on the fan-out path.
func BenchmarkWireCodec(b *testing.B) {
	frag := make([]core.ShardCand, 256)
	for i := range frag {
		frag[i] = core.ShardCand{
			V:     uint32(i * 7),
			UB:    1 / float64(i+1),
			State: core.ShardScored,
			Rough: 0.5 / float64(i+1),
			Score: 0.9 / float64(i+1),
		}
	}
	resp := TopKResp{Query: 42, Shard: 1, ElapsedUS: 900, Stats: Stats{Candidates: 256, Refined: 200}, Frag: frag}

	buf := GetBuf()
	defer PutBuf(buf)
	var f Frame
	var out TopKResp

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.B = AppendTopKResp(buf.B[:0], &resp)
		if err := f.Parse(buf.B); err != nil {
			b.Fatal(err)
		}
		if err := f.TopKResp(&out); err != nil {
			b.Fatal(err)
		}
	}
	if len(out.Frag) != len(frag) {
		b.Fatalf("decoded %d rows", len(out.Frag))
	}
}
