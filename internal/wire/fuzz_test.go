package wire

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// FuzzWireDecode throws arbitrary bytes at the frame parser and every
// typed decoder. The invariants under fuzz are the checkSectionCount
// ones from the persist v3 container: no panic, and no decode may
// allocate results larger than the input that claims to describe them —
// a hostile count field must fail validation, not size an allocation.
func FuzzWireDecode(f *testing.F) {
	frag := []core.ShardCand{
		{V: 1, UB: 0.9, State: core.ShardScored, Rough: 0.5, Score: 0.42},
		{V: 2, UB: 0.01, State: core.ShardUnscored},
	}
	stats := Stats{Candidates: 9, Refined: 4}
	seeds := [][]byte{
		AppendTopKReq(nil, TopKReq{U: 42, Hi: 2000}),
		AppendBatchReq(nil, &BatchReq{Lo: 1, Hi: 9, Queries: []uint32{3, 1, 4}}),
		AppendSimilarReq(nil, SimilarReq{U: 5, Hi: 100, Theta: 0.01}),
		AppendTopKResp(nil, &TopKResp{Query: 42, Shard: 1, Stats: stats, Frag: frag}),
		AppendBatchResp(nil, &BatchResp{
			Queries: []uint32{42, 7},
			Stats:   []Stats{stats, {}},
			Frags:   [][]core.ShardCand{frag, frag[:1]},
		}),
		AppendSimilarResp(nil, &SimilarResp{Query: 1, Stats: stats, Ranked: []ScoredNode{{Node: 2, Score: 0.5}}}),
		AppendError(nil, 503, "not_ready", "warming up"),
	}
	for _, s := range seeds {
		f.Add(s)
		// Seed the interesting mutations explicitly: truncations, a bit
		// flip in each region, and a blown-up first section count.
		f.Add(s[:len(s)/2])
		for _, off := range []int{0, 5, 8, headerLen + 4, len(s) - 1} {
			m := append([]byte(nil), s...)
			m[off] ^= 0x80
			f.Add(m)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.Parse(data); err != nil {
			return
		}
		// Parse accepted the container; every typed decoder must now
		// either succeed or reject — never panic, never over-allocate.
		if req, err := fr.TopKReq(); err == nil {
			_ = req
		}
		var breq BatchReq
		if err := fr.BatchReq(&breq); err == nil && len(breq.Queries)*4 > len(data) {
			t.Fatalf("BatchReq decoded %d queries from %d bytes", len(breq.Queries), len(data))
		}
		if _, err := fr.SimilarReq(); err != nil {
			_ = err
		}
		var tresp TopKResp
		if err := fr.TopKResp(&tresp); err == nil && len(tresp.Frag)*candSize > len(data) {
			t.Fatalf("TopKResp decoded %d rows from %d bytes", len(tresp.Frag), len(data))
		}
		var bresp BatchResp
		if err := fr.BatchResp(&bresp); err == nil {
			total := 0
			for _, fg := range bresp.Frags {
				total += len(fg)
			}
			if total*candSize > len(data) {
				t.Fatalf("BatchResp decoded %d rows from %d bytes", total, len(data))
			}
		}
		var sresp SimilarResp
		if err := fr.SimilarResp(&sresp); err == nil && len(sresp.Ranked)*scoredSize > len(data) {
			t.Fatalf("SimilarResp decoded %d rows from %d bytes", len(sresp.Ranked), len(data))
		}
		_ = fr.Err()

		// The stream reader must agree with the buffer parser on what a
		// complete frame is.
		buf := GetBuf()
		if got, err := ReadFrame(bytes.NewReader(data), buf); err == nil {
			var fr2 Frame
			if err := fr2.Parse(got); err == nil && fr2.Type != fr.Type {
				PutBuf(buf)
				t.Fatalf("ReadFrame type %d, Parse type %d", fr2.Type, fr.Type)
			}
		}
		PutBuf(buf)
	})
}
