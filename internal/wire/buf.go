package wire

import "sync"

// maxPooledBuf caps what goes back into the pool: a single huge batch
// response must not pin its buffer for the rest of the process.
const maxPooledBuf = 1 << 20

// Buf is a pooled byte buffer for frame encode/decode. Acquire with
// GetBuf, release with PutBuf on every return path.
type Buf struct {
	B []byte
}

// grow resizes the buffer to exactly n bytes, preserving existing
// content when the backing array must be reallocated.
func (b *Buf) grow(n int) []byte {
	if cap(b.B) < n {
		nb := make([]byte, n)
		copy(nb, b.B)
		b.B = nb
	}
	b.B = b.B[:n]
	return b.B
}

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

// GetBuf takes a buffer from the pool. Pair with PutBuf.
func GetBuf() *Buf {
	return bufPool.Get().(*Buf)
}

// PutBuf returns b to the pool, dropping oversized backing arrays.
func PutBuf(b *Buf) {
	if cap(b.B) > maxPooledBuf {
		b.B = nil
	} else {
		b.B = b.B[:0]
	}
	bufPool.Put(b)
}
