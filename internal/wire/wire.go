// Package wire is the binary shard protocol: a sectioned, CRC-32C
// checked frame codec (in the style of persist v3's container format)
// for the router <-> shard query traffic that the JSON /shard/* bodies
// otherwise carry. Floats travel as raw IEEE-754 bit patterns
// (math.Float64bits), so a decoded fragment is bit-identical to the
// shard's — the byte-identity guarantee of the fragment-merge replay
// never rests on a formatting round trip.
//
// Frame layout (all little-endian):
//
//	off len
//	0   4   magic "SRW1"
//	4   1   version (1)
//	5   1   message type (Msg*)
//	6   2   section count
//	8   4   payload length (sections only)
//	12  ..  sections
//	..  4   CRC-32C (Castagnoli) over everything before it
//
// Each section is {kind u8, elemSize u8, reserved u16, count u32}
// followed by count*elemSize payload bytes. Decoding validates every
// count against the bytes actually present before allocating (the
// checkSectionCount discipline of persist.go), so a hostile length
// field can never force an allocation larger than the input itself.
//
// The codec is transport-agnostic: a frame is an HTTP response body
// (Content-Type application/x-simrank-bin, negotiated via Accept on the
// /shard/* endpoints) or one message on a persistent TCP connection
// (ReadFrame), the router's fast path.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/core"
)

// ContentType is the negotiated media type for binary shard responses.
const ContentType = "application/x-simrank-bin"

const (
	magic   = 0x31575253 // "SRW1"
	version = 1

	headerLen  = 12
	trailerLen = 4
	secHdrLen  = 8

	// MaxFrameLen bounds one frame on the TCP transport, so a corrupt or
	// hostile length prefix cannot make ReadFrame allocate without bound.
	MaxFrameLen = 64 << 20
)

// Message types.
const (
	MsgError = uint8(iota)
	MsgTopKReq
	MsgTopKResp
	MsgBatchReq
	MsgBatchResp
	MsgSimilarReq
	MsgSimilarResp
)

// Section kinds.
const (
	kindParams  = uint8(1) // uint64 array: per-message scalars
	kindQueries = uint8(2) // uint32 array: batch query vertices
	kindStats   = uint8(3) // uint64 array: statsWords per query
	kindCands   = uint8(4) // candSize-byte ShardCand rows
	kindCounts  = uint8(5) // uint32 array: per-query fragment lengths
	kindScored  = uint8(6) // scoredSize-byte (node, score) rows
	kindCode    = uint8(7) // bytes: stable machine-readable error code
	kindText    = uint8(8) // bytes: human-readable error message
)

const (
	// candSize is one fragment row: v u32, state u8, then the UB, rough
	// and refined estimates as raw float64 bits.
	candSize = 29
	// scoredSize is one threshold-result row: node u32, score bits u64.
	scoredSize = 12
	// statsWords is the QueryStats counter count carried per query.
	statsWords = 7
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrame wraps every decode failure, so transports can distinguish a
// protocol breakdown (close the connection) from a query error frame.
var ErrFrame = errors.New("wire: bad frame")

func frameErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrFrame, fmt.Sprintf(format, args...))
}

// Stats mirrors the QueryStats counters on the wire.
type Stats struct {
	Candidates     int64
	PrunedByBound  int64
	PrunedByRough  int64
	Refined        int64
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
}

// TopKReq asks one shard for the fragment of query U over [Lo, Hi).
type TopKReq struct {
	U, Lo, Hi uint32
}

// BatchReq asks for fragments of many queries over one range.
type BatchReq struct {
	Lo, Hi  uint32
	Queries []uint32
}

// SimilarReq asks for the threshold query at U over [Lo, Hi).
type SimilarReq struct {
	U, Lo, Hi uint32
	Theta     float64
}

// TopKResp is one shard's fragment plus its stats for a single query.
type TopKResp struct {
	Query     uint32
	Shard     int32
	ElapsedUS int64
	Stats     Stats
	Frag      []core.ShardCand
}

// BatchResp carries one fragment per query, request order. Frags are
// subslices of one backing array, reused across decodes into the same
// receiver.
type BatchResp struct {
	Shard     int32
	ElapsedUS int64
	Queries   []uint32
	Stats     []Stats
	Frags     [][]core.ShardCand

	cands []core.ShardCand // backing store for Frags
}

// ScoredNode is one threshold-query result row.
type ScoredNode struct {
	Node  uint32
	Score float64
}

// SimilarResp is one shard's threshold-query answer.
type SimilarResp struct {
	Query     uint32
	Shard     int32
	ElapsedUS int64
	Stats     Stats
	Ranked    []ScoredNode
}

// Error is a query failure shipped as a frame: the HTTP-equivalent
// status plus the same stable code / message pair the JSON error body
// carries.
type Error struct {
	Status int
	Code   string
	Msg    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("shard answered %d (%s): %s", e.Status, e.Code, e.Msg)
}

// section is one parsed directory entry; payload aliases the frame.
type section struct {
	kind    uint8
	elem    uint8
	count   uint32
	payload []byte
}

// Frame is a parsed message: type plus the section directory. The
// section slice is reused across Parse calls, so a pooled Frame decodes
// steady-state traffic without allocating.
type Frame struct {
	Type uint8
	secs []section
}

// IsFrame reports whether b starts with the frame magic — a cheap
// content sniff for transports that may carry either a frame or JSON
// (JSON bodies never begin with "SRW1").
func IsFrame(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == magic
}

// Parse validates data as one complete frame: magic, version, exact
// length, CRC, and every section's count against the bytes present.
// Section payloads alias data, which must stay alive while the frame is
// in use.
func (f *Frame) Parse(data []byte) error {
	f.Type = MsgError
	f.secs = f.secs[:0]
	if len(data) < headerLen+trailerLen {
		return frameErr("%d bytes, need at least %d", len(data), headerLen+trailerLen)
	}
	if got := binary.LittleEndian.Uint32(data); got != magic {
		return frameErr("magic %08x, want %08x", got, magic)
	}
	if data[4] != version {
		return frameErr("version %d, want %d", data[4], version)
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[8:]))
	if payloadLen > MaxFrameLen {
		return frameErr("payload length %d exceeds limit %d", payloadLen, MaxFrameLen)
	}
	if payloadLen != len(data)-headerLen-trailerLen {
		return frameErr("payload length %d in a %d-byte frame", payloadLen, len(data))
	}
	body := len(data) - trailerLen
	if got, want := crc32.Checksum(data[:body], crcTable), binary.LittleEndian.Uint32(data[body:]); got != want {
		return frameErr("checksum %08x, want %08x", got, want)
	}
	nsec := int(binary.LittleEndian.Uint16(data[6:]))
	rest := data[headerLen:body]
	// Every declared section costs at least its header, so the count is
	// bounded by the bytes present before the loop trusts it.
	if int64(nsec)*secHdrLen > int64(len(rest)) {
		return frameErr("%d sections declared, %d payload bytes present", nsec, len(rest))
	}
	for i := 0; i < nsec; i++ {
		if len(rest) < secHdrLen {
			return frameErr("section %d: %d bytes left, need %d-byte header", i, len(rest), secHdrLen)
		}
		s := section{kind: rest[0], elem: rest[1], count: binary.LittleEndian.Uint32(rest[4:])}
		rest = rest[secHdrLen:]
		// The count/elemSize product is validated against the bytes that
		// are actually present before anything is sliced or allocated —
		// an oversized count field fails here, bounding every downstream
		// allocation by the input length.
		size := int64(s.count) * int64(s.elem)
		if size > int64(len(rest)) {
			return frameErr("section %d: %d x %d bytes declared, %d present", i, s.count, s.elem, len(rest))
		}
		s.payload = rest[:size]
		rest = rest[size:]
		f.secs = append(f.secs, s)
	}
	if len(rest) != 0 {
		return frameErr("%d trailing bytes after %d sections", len(rest), nsec)
	}
	f.Type = data[5]
	return nil
}

// sec returns the first section of the given kind, checking its element
// size.
func (f *Frame) sec(kind uint8, elem int) (section, error) {
	for _, s := range f.secs {
		if s.kind != kind {
			continue
		}
		if int(s.elem) != elem {
			return section{}, frameErr("section kind %d: element size %d, want %d", kind, s.elem, elem)
		}
		return s, nil
	}
	return section{}, frameErr("missing section kind %d", kind)
}

// params returns the kindParams scalars, requiring exactly n entries.
// The fixed-size return keeps steady-state decoding allocation-free
// (n <= 8 for every message type).
func (f *Frame) params(n int) ([8]uint64, error) {
	var out [8]uint64
	s, err := f.sec(kindParams, 8)
	if err != nil {
		return out, err
	}
	if int(s.count) != n {
		return out, frameErr("params: %d scalars, want %d", s.count, n)
	}
	for i := 0; i < n; i++ {
		out[i] = binary.LittleEndian.Uint64(s.payload[i*8:])
	}
	return out, nil
}

func (f *Frame) expect(t uint8) error {
	if f.Type != t {
		return frameErr("message type %d, want %d", f.Type, t)
	}
	return nil
}

// --- decoding ---

// TopKReq decodes a MsgTopKReq frame.
func (f *Frame) TopKReq() (TopKReq, error) {
	if err := f.expect(MsgTopKReq); err != nil {
		return TopKReq{}, err
	}
	p, err := f.params(3)
	if err != nil {
		return TopKReq{}, err
	}
	return TopKReq{U: uint32(p[0]), Lo: uint32(p[1]), Hi: uint32(p[2])}, nil
}

// BatchReq decodes a MsgBatchReq frame into dst, reusing its Queries
// backing array.
func (f *Frame) BatchReq(dst *BatchReq) error {
	if err := f.expect(MsgBatchReq); err != nil {
		return err
	}
	p, err := f.params(2)
	if err != nil {
		return err
	}
	qs, err := f.sec(kindQueries, 4)
	if err != nil {
		return err
	}
	dst.Lo, dst.Hi = uint32(p[0]), uint32(p[1])
	dst.Queries = appendU32s(dst.Queries[:0], qs)
	return nil
}

// SimilarReq decodes a MsgSimilarReq frame.
func (f *Frame) SimilarReq() (SimilarReq, error) {
	if err := f.expect(MsgSimilarReq); err != nil {
		return SimilarReq{}, err
	}
	p, err := f.params(4)
	if err != nil {
		return SimilarReq{}, err
	}
	return SimilarReq{U: uint32(p[0]), Lo: uint32(p[1]), Hi: uint32(p[2]), Theta: math.Float64frombits(p[3])}, nil
}

// TopKResp decodes a MsgTopKResp frame into dst, reusing its Frag
// backing array.
func (f *Frame) TopKResp(dst *TopKResp) error {
	if err := f.expect(MsgTopKResp); err != nil {
		return err
	}
	p, err := f.params(3)
	if err != nil {
		return err
	}
	st, err := f.sec(kindStats, 8)
	if err != nil {
		return err
	}
	if st.count != statsWords {
		return frameErr("stats: %d words, want %d", st.count, statsWords)
	}
	cs, err := f.sec(kindCands, candSize)
	if err != nil {
		return err
	}
	dst.Query, dst.Shard, dst.ElapsedUS = uint32(p[0]), int32(p[1]), int64(p[2])
	dst.Stats = decodeStats(st.payload)
	dst.Frag = appendCands(dst.Frag[:0], cs)
	return nil
}

// BatchResp decodes a MsgBatchResp frame into dst, reusing its Queries,
// Stats, Frags and candidate backing arrays.
func (f *Frame) BatchResp(dst *BatchResp) error {
	if err := f.expect(MsgBatchResp); err != nil {
		return err
	}
	p, err := f.params(2)
	if err != nil {
		return err
	}
	qs, err := f.sec(kindQueries, 4)
	if err != nil {
		return err
	}
	st, err := f.sec(kindStats, 8)
	if err != nil {
		return err
	}
	cn, err := f.sec(kindCounts, 4)
	if err != nil {
		return err
	}
	cs, err := f.sec(kindCands, candSize)
	if err != nil {
		return err
	}
	n := int(qs.count)
	if int(st.count) != n*statsWords {
		return frameErr("batch stats: %d words for %d queries", st.count, n)
	}
	if int(cn.count) != n {
		return frameErr("batch counts: %d entries for %d queries", cn.count, n)
	}
	var total int64
	for i := 0; i < n; i++ {
		total += int64(binary.LittleEndian.Uint32(cn.payload[i*4:]))
	}
	if total != int64(cs.count) {
		return frameErr("batch fragments: counts sum to %d, %d rows present", total, cs.count)
	}
	dst.Shard, dst.ElapsedUS = int32(p[0]), int64(p[1])
	dst.Queries = appendU32s(dst.Queries[:0], qs)
	if cap(dst.Stats) < n {
		dst.Stats = make([]Stats, n)
	}
	dst.Stats = dst.Stats[:n]
	for i := 0; i < n; i++ {
		dst.Stats[i] = decodeStats(st.payload[i*statsWords*8:])
	}
	dst.cands = appendCands(dst.cands[:0], cs)
	dst.Frags = dst.Frags[:0]
	// The counts summed to cs.count above, so the fragments exactly tile
	// dst.cands — but each slice bound is still checked locally against
	// the rows remaining, so no single oversized count can reach a slice
	// expression even if the sum check ever moves.
	rows := dst.cands
	for i := 0; i < n; i++ {
		c := int(binary.LittleEndian.Uint32(cn.payload[i*4:]))
		if c > len(rows) {
			return frameErr("batch fragments: count %d with %d rows left", c, len(rows))
		}
		dst.Frags = append(dst.Frags, rows[:c:c])
		rows = rows[c:]
	}
	return nil
}

// SimilarResp decodes a MsgSimilarResp frame into dst, reusing its
// Ranked backing array.
func (f *Frame) SimilarResp(dst *SimilarResp) error {
	if err := f.expect(MsgSimilarResp); err != nil {
		return err
	}
	p, err := f.params(3)
	if err != nil {
		return err
	}
	st, err := f.sec(kindStats, 8)
	if err != nil {
		return err
	}
	if st.count != statsWords {
		return frameErr("stats: %d words, want %d", st.count, statsWords)
	}
	rs, err := f.sec(kindScored, scoredSize)
	if err != nil {
		return err
	}
	dst.Query, dst.Shard, dst.ElapsedUS = uint32(p[0]), int32(p[1]), int64(p[2])
	dst.Stats = decodeStats(st.payload)
	dst.Ranked = dst.Ranked[:0]
	for i := 0; i < int(rs.count); i++ {
		row := rs.payload[i*scoredSize:]
		dst.Ranked = append(dst.Ranked, ScoredNode{
			Node:  binary.LittleEndian.Uint32(row),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(row[4:])),
		})
	}
	return nil
}

// Err decodes a MsgError frame into an *Error.
func (f *Frame) Err() error {
	if err := f.expect(MsgError); err != nil {
		return err
	}
	p, err := f.params(1)
	if err != nil {
		return err
	}
	code, err := f.sec(kindCode, 1)
	if err != nil {
		return err
	}
	text, err := f.sec(kindText, 1)
	if err != nil {
		return err
	}
	return &Error{Status: int(p[0]), Code: string(code.payload), Msg: string(text.payload)}
}

func decodeStats(p []byte) Stats {
	return Stats{
		Candidates:     int64(binary.LittleEndian.Uint64(p)),
		PrunedByBound:  int64(binary.LittleEndian.Uint64(p[8:])),
		PrunedByRough:  int64(binary.LittleEndian.Uint64(p[16:])),
		Refined:        int64(binary.LittleEndian.Uint64(p[24:])),
		CacheHits:      int64(binary.LittleEndian.Uint64(p[32:])),
		CacheMisses:    int64(binary.LittleEndian.Uint64(p[40:])),
		CacheEvictions: int64(binary.LittleEndian.Uint64(p[48:])),
	}
}

func appendU32s(dst []uint32, s section) []uint32 {
	for i := 0; i < int(s.count); i++ {
		dst = append(dst, binary.LittleEndian.Uint32(s.payload[i*4:]))
	}
	return dst
}

func appendCands(dst []core.ShardCand, s section) []core.ShardCand {
	for i := 0; i < int(s.count); i++ {
		row := s.payload[i*candSize:]
		dst = append(dst, core.ShardCand{
			V:     binary.LittleEndian.Uint32(row),
			State: row[4],
			UB:    math.Float64frombits(binary.LittleEndian.Uint64(row[5:])),
			Rough: math.Float64frombits(binary.LittleEndian.Uint64(row[13:])),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(row[21:])),
		})
	}
	return dst
}

// --- encoding ---

// frameMark remembers where a frame started inside an append target.
type frameMark struct {
	start int
	nsec  uint16
}

func beginFrame(dst []byte, typ uint8) ([]byte, frameMark) {
	m := frameMark{start: len(dst)}
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint32(hdr[:], magic)
	hdr[4] = version
	hdr[5] = typ
	return append(dst, hdr[:]...), m
}

func endFrame(dst []byte, m frameMark) []byte {
	binary.LittleEndian.PutUint16(dst[m.start+6:], m.nsec)
	binary.LittleEndian.PutUint32(dst[m.start+8:], uint32(len(dst)-m.start-headerLen))
	crc := crc32.Checksum(dst[m.start:], crcTable)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

func appendSecHdr(dst []byte, m *frameMark, kind uint8, elem, count int) []byte {
	m.nsec++
	var hdr [secHdrLen]byte
	hdr[0] = kind
	hdr[1] = uint8(elem)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(count))
	return append(dst, hdr[:]...)
}

func appendParams(dst []byte, m *frameMark, vals ...uint64) []byte {
	dst = appendSecHdr(dst, m, kindParams, 8, len(vals))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

func appendU32Sec(dst []byte, m *frameMark, kind uint8, vals []uint32) []byte {
	dst = appendSecHdr(dst, m, kind, 4, len(vals))
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint32(dst, v)
	}
	return dst
}

func appendStatsPayload(dst []byte, st Stats) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.Candidates))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.PrunedByBound))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.PrunedByRough))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.Refined))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.CacheHits))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(st.CacheMisses))
	return binary.LittleEndian.AppendUint64(dst, uint64(st.CacheEvictions))
}

func appendCandsPayload(dst []byte, frag []core.ShardCand) []byte {
	for _, c := range frag {
		dst = binary.LittleEndian.AppendUint32(dst, c.V)
		dst = append(dst, c.State)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.UB))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Rough))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Score))
	}
	return dst
}

// AppendTopKReq appends a MsgTopKReq frame to dst.
func AppendTopKReq(dst []byte, r TopKReq) []byte {
	dst, m := beginFrame(dst, MsgTopKReq)
	dst = appendParams(dst, &m, uint64(r.U), uint64(r.Lo), uint64(r.Hi))
	return endFrame(dst, m)
}

// AppendBatchReq appends a MsgBatchReq frame to dst.
func AppendBatchReq(dst []byte, r *BatchReq) []byte {
	dst, m := beginFrame(dst, MsgBatchReq)
	dst = appendParams(dst, &m, uint64(r.Lo), uint64(r.Hi))
	dst = appendU32Sec(dst, &m, kindQueries, r.Queries)
	return endFrame(dst, m)
}

// AppendSimilarReq appends a MsgSimilarReq frame to dst.
func AppendSimilarReq(dst []byte, r SimilarReq) []byte {
	dst, m := beginFrame(dst, MsgSimilarReq)
	dst = appendParams(dst, &m, uint64(r.U), uint64(r.Lo), uint64(r.Hi), math.Float64bits(r.Theta))
	return endFrame(dst, m)
}

// AppendTopKResp appends a MsgTopKResp frame to dst.
func AppendTopKResp(dst []byte, r *TopKResp) []byte {
	dst, m := beginFrame(dst, MsgTopKResp)
	dst = appendParams(dst, &m, uint64(r.Query), uint64(r.Shard), uint64(r.ElapsedUS))
	dst = appendSecHdr(dst, &m, kindStats, 8, statsWords)
	dst = appendStatsPayload(dst, r.Stats)
	dst = appendSecHdr(dst, &m, kindCands, candSize, len(r.Frag))
	dst = appendCandsPayload(dst, r.Frag)
	return endFrame(dst, m)
}

// AppendBatchResp appends a MsgBatchResp frame to dst. Queries, Stats
// and Frags must be parallel (one entry per query).
func AppendBatchResp(dst []byte, r *BatchResp) []byte {
	dst, m := beginFrame(dst, MsgBatchResp)
	dst = appendParams(dst, &m, uint64(r.Shard), uint64(r.ElapsedUS))
	dst = appendU32Sec(dst, &m, kindQueries, r.Queries)
	dst = appendSecHdr(dst, &m, kindStats, 8, len(r.Stats)*statsWords)
	for _, st := range r.Stats {
		dst = appendStatsPayload(dst, st)
	}
	total := 0
	dst = appendSecHdr(dst, &m, kindCounts, 4, len(r.Frags))
	for _, f := range r.Frags {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f)))
		total += len(f)
	}
	dst = appendSecHdr(dst, &m, kindCands, candSize, total)
	for _, f := range r.Frags {
		dst = appendCandsPayload(dst, f)
	}
	return endFrame(dst, m)
}

// AppendSimilarResp appends a MsgSimilarResp frame to dst.
func AppendSimilarResp(dst []byte, r *SimilarResp) []byte {
	dst, m := beginFrame(dst, MsgSimilarResp)
	dst = appendParams(dst, &m, uint64(r.Query), uint64(r.Shard), uint64(r.ElapsedUS))
	dst = appendSecHdr(dst, &m, kindStats, 8, statsWords)
	dst = appendStatsPayload(dst, r.Stats)
	dst = appendSecHdr(dst, &m, kindScored, scoredSize, len(r.Ranked))
	for _, s := range r.Ranked {
		dst = binary.LittleEndian.AppendUint32(dst, s.Node)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Score))
	}
	return endFrame(dst, m)
}

// AppendError appends a MsgError frame to dst.
func AppendError(dst []byte, status int, code, msg string) []byte {
	dst, m := beginFrame(dst, MsgError)
	dst = appendParams(dst, &m, uint64(status))
	dst = appendSecHdr(dst, &m, kindCode, 1, len(code))
	dst = append(dst, code...)
	dst = appendSecHdr(dst, &m, kindText, 1, len(msg))
	dst = append(dst, msg...)
	return endFrame(dst, m)
}

// ReadFrame reads one complete frame from r into buf's backing array
// (growing it as needed) and returns the frame bytes, which alias
// buf.B. The length prefix is validated against MaxFrameLen before any
// allocation, and the magic/version are checked before the body is
// read, so a desynchronized stream fails fast instead of slurping
// garbage.
func ReadFrame(r io.Reader, buf *Buf) ([]byte, error) {
	b := buf.grow(headerLen)
	if _, err := io.ReadFull(r, b[:headerLen]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(b); got != magic {
		return nil, frameErr("magic %08x, want %08x", got, magic)
	}
	if b[4] != version {
		return nil, frameErr("version %d, want %d", b[4], version)
	}
	payloadLen := int(binary.LittleEndian.Uint32(b[8:]))
	if payloadLen > MaxFrameLen {
		return nil, frameErr("payload length %d exceeds limit %d", payloadLen, MaxFrameLen)
	}
	total := headerLen + payloadLen + trailerLen
	b = buf.grow(total)
	if _, err := io.ReadFull(r, b[headerLen:total]); err != nil {
		return nil, err
	}
	return b[:total], nil
}
