package router

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/wire"
)

// Binary transport client: persistent framed-TCP connections to shard
// servers that advertise a BinAddr. One request/response in flight per
// connection; connections are pooled per address and recycled only
// after a fully clean exchange — any transport or protocol error closes
// the connection instead of repooling it, so a desynchronized stream
// can never poison a later query. Cancellation uses the connection's
// I/O deadline plus context.AfterFunc closing the socket, which unblocks
// a pending read immediately.

// maxIdleBinConns caps the per-address free list; beyond it, finished
// connections close instead of idling.
const maxIdleBinConns = 16

// binConn is one pooled connection with its read-side working memory:
// the buffered reader, the frame-receive buffer, and a parsed-frame
// shell, all reused for every exchange on the connection.
type binConn struct {
	c     net.Conn
	br    *bufio.Reader
	rbuf  wire.Buf
	frame wire.Frame
}

// binPool is the mutex-guarded free list for one shard address.
type binPool struct {
	mu   sync.Mutex
	free []*binConn
}

func (p *binPool) get(ctx context.Context, addr string) (*binConn, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		bc := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return bc, nil
	}
	p.mu.Unlock()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return &binConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}, nil
}

func (p *binPool) put(bc *binConn) {
	p.mu.Lock()
	if len(p.free) < maxIdleBinConns {
		p.free = append(p.free, bc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	bc.c.Close()
}

// binPoolFor returns (creating on demand) the pool for addr.
func (rt *Router) binPoolFor(addr string) *binPool {
	rt.binMu.Lock()
	defer rt.binMu.Unlock()
	p := rt.binPools[addr]
	if p == nil {
		p = &binPool{}
		rt.binPools[addr] = p
	}
	return p
}

// ctxErr prefers the context's verdict over a transport error: a read
// cut short because the deadline fired or the socket was closed by
// cancellation should report timeout/cancelled, not a socket error.
func ctxErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// binCall runs one framed exchange against addr: encode appends the
// request frame, decode consumes the parsed response. A MsgError answer
// comes back as *upstreamError (the connection stays pooled — the
// stream is still aligned); every other failure closes the connection.
func (rt *Router) binCall(ctx context.Context, addr string, sc *shardCounters, encode func(dst []byte) []byte, decode func(f *wire.Frame) error) error {
	p := rt.binPoolFor(addr)
	bc, err := p.get(ctx, addr)
	if err != nil {
		return ctxErr(ctx, err)
	}
	keep := false
	var stop func() bool
	if ctx.Done() != nil {
		stop = context.AfterFunc(ctx, func() { bc.c.Close() })
	}
	defer func() {
		// stop() returning false means the cancel callback fired (or is
		// firing): the socket is closed or about to be — never repool it.
		if stop != nil && !stop() {
			keep = false
		}
		if keep {
			p.put(bc)
		} else {
			bc.c.Close()
		}
	}()
	if d, ok := ctx.Deadline(); ok {
		bc.c.SetDeadline(d)
	} else {
		bc.c.SetDeadline(time.Time{})
	}

	wbuf := wire.GetBuf()
	defer wire.PutBuf(wbuf)
	t0 := time.Now()
	wbuf.B = encode(wbuf.B[:0])
	sc.encodeNS.Add(time.Since(t0).Nanoseconds())
	n, err := bc.c.Write(wbuf.B)
	sc.bytesSent.Add(int64(n))
	if err != nil {
		return ctxErr(ctx, err)
	}

	data, err := wire.ReadFrame(bc.br, &bc.rbuf)
	if err != nil {
		return ctxErr(ctx, err)
	}
	sc.bytesRecv.Add(int64(len(data)))
	t1 := time.Now()
	if err := bc.frame.Parse(data); err != nil {
		return err
	}
	if bc.frame.Type == wire.MsgError {
		var we *wire.Error
		if errors.As(bc.frame.Err(), &we) {
			keep = true
			return &upstreamError{Status: we.Status, Code: we.Code, Msg: we.Msg}
		}
		return bc.frame.Err()
	}
	err = decode(&bc.frame)
	sc.decodeNS.Add(time.Since(t1).Nanoseconds())
	if err != nil {
		return err
	}
	keep = true
	return nil
}
