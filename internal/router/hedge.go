package router

import (
	"context"
	"sync"
	"time"
)

// fanout runs task(0) .. task(n-1) concurrently — the scatter half of
// scatter-gather — and waits for all of them. One goroutine per shard
// from a plain counted loop: topologies are small and the spawn count
// is fixed up front, the shape simlint's gospawn analyzer approves.
func fanout(n int, task func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			task(i)
		}(i)
	}
	wg.Wait()
}

// hedged runs try against up to attempts servers, first success wins.
// Attempt a+1 launches immediately when attempt a fails (failover), or
// after delay while attempt a is still running (hedging a slow server;
// delay <= 0 disables the timer, leaving pure failover). All attempts
// share one context derived from ctx, cancelled on return, so losing
// requests tear down promptly through the usual context plumbing.
//
// hedges reports how many extra attempts were launched beyond the
// first; errs how many attempts failed before the outcome was decided.
// Goroutines never leak: the results channel is buffered to attempts,
// so a losing attempt can always deposit its outcome and exit.
func hedged[T any](ctx context.Context, delay time.Duration, attempts int,
	try func(ctx context.Context, attempt int) (T, error)) (val T, hedges, errs int, err error) {
	if attempts < 1 {
		attempts = 1
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		val T
		err error
	}
	results := make(chan outcome, attempts)
	launched := 0
	launch := func() {
		a := launched
		launched++
		go func() {
			v, e := try(hctx, a)
			results <- outcome{v, e}
		}()
	}
	launch()
	var timerC <-chan time.Time
	if delay > 0 && attempts > 1 {
		timer := time.NewTimer(delay)
		defer timer.Stop()
		timerC = timer.C
	}
	pending := 1
	var firstErr error
	for {
		select {
		case <-hctx.Done():
			if firstErr == nil {
				firstErr = hctx.Err()
			}
			var zero T
			return zero, launched - 1, errs, firstErr
		case <-timerC:
			timerC = nil
			if launched < attempts {
				launch()
				pending++
			}
		case out := <-results:
			pending--
			if out.err == nil {
				return out.val, launched - 1, errs, nil
			}
			errs++
			if firstErr == nil {
				firstErr = out.err
			}
			if launched < attempts {
				launch()
				pending++
			} else if pending == 0 {
				var zero T
				return zero, launched - 1, errs, firstErr
			}
		}
	}
}
