package router

import (
	simrank "repro"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

// gather is the pooled working set of one routed query: per-shard
// decode targets (whose fragment capacity is reused across queries),
// the fragment pointers the merge consumes, and the merge scratch
// itself. Acquire with getGather, release with putGather on every
// return path. Per-shard slots are only touched by that shard's fan-out
// goroutine, so a gather is safe under the scatter.
type gather struct {
	errs []error

	// topk
	frames  []wire.Frame
	resps   []wire.TopKResp
	frags   [][]simrank.ShardCand
	stats   []simrank.QueryStats
	results []server.ResultJSON
	ms      simrank.MergeScratch

	// batch: per shard either the wire decode target (binary) or the
	// JSON-converted scratch fills bfrags/bstats, which the merge reads.
	bresps []wire.BatchResp
	bjson  []batchScratch
	bfrags [][][]simrank.ShardCand
	bstats [][]wire.Stats
	qfrags [][]simrank.ShardCand
	q32    []uint32

	// similar
	sresps []wire.SimilarResp
	rfrags [][]shard.Ranked
}

// batchScratch holds one shard's JSON-path batch conversion: every
// frags slot is an independent allocation, so capacity reuse never
// overlaps rows.
type batchScratch struct {
	frags [][]simrank.ShardCand
	stats []wire.Stats
}

// ensure sizes every per-shard slice for n shards, keeping capacity.
func (g *gather) ensure(n int) {
	if cap(g.errs) < n {
		g.errs = make([]error, n)
		g.frames = make([]wire.Frame, n)
		g.resps = make([]wire.TopKResp, n)
		g.frags = make([][]simrank.ShardCand, n)
		g.stats = make([]simrank.QueryStats, n)
		g.bresps = make([]wire.BatchResp, n)
		g.bjson = make([]batchScratch, n)
		g.bfrags = make([][][]simrank.ShardCand, n)
		g.bstats = make([][]wire.Stats, n)
		g.qfrags = make([][]simrank.ShardCand, n)
		g.sresps = make([]wire.SimilarResp, n)
		g.rfrags = make([][]shard.Ranked, n)
	}
	g.errs = g.errs[:n]
	g.frames = g.frames[:n]
	g.resps = g.resps[:n]
	g.frags = g.frags[:n]
	g.stats = g.stats[:n]
	g.bresps = g.bresps[:n]
	g.bjson = g.bjson[:n]
	g.bfrags = g.bfrags[:n]
	g.bstats = g.bstats[:n]
	g.qfrags = g.qfrags[:n]
	g.sresps = g.sresps[:n]
	g.rfrags = g.rfrags[:n]
	for i := 0; i < n; i++ {
		g.errs[i] = nil
		g.frags[i] = nil
		g.stats[i] = simrank.QueryStats{}
		g.bfrags[i] = nil
		g.bstats[i] = nil
		g.qfrags[i] = nil
		g.rfrags[i] = g.rfrags[i][:0]
	}
}

// getGather transfers a pooled gather to the caller, who must ensure()
// it for the topology size and release it with putGather on every path.
func (rt *Router) getGather() *gather {
	return rt.gathers.Get().(*gather)
}

func (rt *Router) putGather(g *gather) {
	rt.gathers.Put(g)
}

// ensureBatch sizes one shard's JSON batch scratch for q queries.
func (bs *batchScratch) ensureBatch(q int) {
	for len(bs.frags) < q {
		bs.frags = append(bs.frags, nil)
	}
	bs.frags = bs.frags[:q]
	if cap(bs.stats) < q {
		bs.stats = make([]wire.Stats, q)
	}
	bs.stats = bs.stats[:q]
}
