package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	simrank "repro"
	"repro/internal/server"
)

// buildIndex builds the shared test index once per process; every
// topology in this file serves shards of the same snapshot, which is
// what the byte-identity tests are about.
func buildIndex(tb testing.TB) *simrank.Index {
	tb.Helper()
	g := simrank.GenerateCollaborationGraph(60, 4, 0.8, 7)
	return simrank.BuildIndex(g, simrank.DefaultOptions())
}

// shardServer is one loopback shard: the HTTP server plus (optionally)
// its binary TCP listener. Close takes down both, so a "down shard"
// test kills every transport the router could reach it on.
type shardServer struct {
	*httptest.Server
	stopBin func()
}

func (s *shardServer) Close() {
	if s.stopBin != nil {
		s.stopBin()
		s.stopBin = nil
	}
	s.Server.Close()
}

// loopback starts shards real HTTP servers (httptest loopback) over one
// index — each with a binary TCP listener, like production — and a
// probed router in front of them. wrap, when non-nil, can interpose
// per-shard middleware (slow shard, down shard).
func loopback(tb testing.TB, idx *simrank.Index, shards int, cfg Config, wrap func(i int, h http.Handler) http.Handler) (*Router, []*shardServer) {
	return loopbackMode(tb, idx, shards, cfg, wrap, true)
}

// loopbackHTTP is loopback without binary TCP listeners: shard traffic
// stays on HTTP, binary-negotiated via Accept unless JSON is forced.
func loopbackHTTP(tb testing.TB, idx *simrank.Index, shards int, cfg Config) (*Router, []*shardServer) {
	return loopbackMode(tb, idx, shards, cfg, nil, false)
}

func loopbackMode(tb testing.TB, idx *simrank.Index, shards int, cfg Config, wrap func(i int, h http.Handler) http.Handler, bin bool) (*Router, []*shardServer) {
	tb.Helper()
	servers := make([]*shardServer, shards)
	addrs := make([]string, shards)
	for i := 0; i < shards; i++ {
		sh := server.NewShard(idx, i, shards)
		var h http.Handler = sh
		if wrap != nil {
			h = wrap(i, h)
		}
		servers[i] = &shardServer{Server: httptest.NewServer(h)}
		if bin {
			_, stop, err := sh.StartBin("127.0.0.1:0")
			if err != nil {
				tb.Fatalf("start bin listener: %v", err)
			}
			servers[i].stopBin = stop
		}
		addrs[i] = servers[i].URL
		tb.Cleanup(servers[i].Close)
	}
	cfg.Shards = addrs
	rt := New(cfg)
	if err := rt.Probe(context.Background()); err != nil {
		tb.Fatalf("probe: %v", err)
	}
	return rt, servers
}

func routerGet(tb testing.TB, h http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	tb.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec, rec.Body.Bytes()
}

func routerPost(tb testing.TB, h http.Handler, path, body string) (*httptest.ResponseRecorder, []byte) {
	tb.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// sameResults asserts exact equality — values and ordering — of two
// result lists. JSON round-trips float64 exactly, so equality here is
// byte-identity of the scores.
func sameResults(tb testing.TB, label string, got, want []server.ResultJSON) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			tb.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func sameScanStats(tb testing.TB, label string, got, want *server.QueryStatsJSON) {
	tb.Helper()
	if got == nil || want == nil {
		tb.Fatalf("%s: missing stats (got %v, want %v)", label, got, want)
	}
	if got.Candidates != want.Candidates || got.PrunedByBound != want.PrunedByBound ||
		got.PrunedByRough != want.PrunedByRough || got.Refined != want.Refined {
		tb.Fatalf("%s: scan stats %+v, want %+v", label, *got, *want)
	}
}

// TestRouterTopKMatchesSingleNode is the e2e golden test: a 3-shard
// loopback topology must answer /topk byte-identically (results,
// ordering, and scan statistics) to a stand-alone server on the same
// snapshot.
func TestRouterTopKMatchesSingleNode(t *testing.T) {
	idx := buildIndex(t)
	rt, _ := loopback(t, idx, 3, Config{}, nil)
	single := server.New(idx)
	for _, u := range []int{0, 7, 42, 59, 150} {
		for _, k := range []int{1, 5, 100} {
			path := fmt.Sprintf("/topk?u=%d&k=%d&stats=1", u, k)
			rec, body := routerGet(t, rt, path)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", path, rec.Code, body)
			}
			var got server.TopKResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			_, sbody := routerGet(t, single, path)
			var want server.TopKResponse
			if err := json.Unmarshal(sbody, &want); err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("u=%d k=%d", u, k)
			sameResults(t, label, got.Results, want.Results)
			sameScanStats(t, label, got.Stats, want.Stats)
		}
	}
}

func TestRouterBatchMatchesSingleNode(t *testing.T) {
	idx := buildIndex(t)
	rt, _ := loopback(t, idx, 3, Config{}, nil)
	single := server.New(idx)
	body := `{"queries":[0,7,42,59],"k":5,"stats":true}`
	rec, rbody := routerPost(t, rt, "/topk/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rbody)
	}
	var got server.BatchResponse
	if err := json.Unmarshal(rbody, &got); err != nil {
		t.Fatal(err)
	}
	_, sbody := routerPost(t, single, "/topk/batch", body)
	var want server.BatchResponse
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d batch results, want %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		label := fmt.Sprintf("batch query %d", got.Results[i].Query)
		sameResults(t, label, got.Results[i].Results, want.Results[i].Results)
		sameScanStats(t, label, got.Results[i].Stats, want.Results[i].Stats)
	}
}

func TestRouterSimilarMatchesSingleNode(t *testing.T) {
	idx := buildIndex(t)
	rt, _ := loopback(t, idx, 3, Config{}, nil)
	single := server.New(idx)
	for _, u := range []int{0, 42} {
		path := fmt.Sprintf("/similar?u=%d&theta=0.02", u)
		rec, body := routerGet(t, rt, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, rec.Code, body)
		}
		var got, want server.TopKResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		_, sbody := routerGet(t, single, path)
		if err := json.Unmarshal(sbody, &want); err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("u=%d", u), got.Results, want.Results)
	}
}

// TestRouterDownShardFailover kills one shard server outright: the
// router must fail over its range to the next server (every server
// holds the full snapshot) and still answer byte-identically, and
// /statusz must report the degradation.
func TestRouterDownShardFailover(t *testing.T) {
	idx := buildIndex(t)
	rt, servers := loopback(t, idx, 3, Config{QueryTimeout: 10 * time.Second}, nil)
	single := server.New(idx)
	servers[1].Close()

	path := "/topk?u=42&k=5&stats=1"
	rec, body := routerGet(t, rt, path)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d with shard 1 down: %s", rec.Code, body)
	}
	var got, want server.TopKResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	_, sbody := routerGet(t, single, path)
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "failover", got.Results, want.Results)
	sameScanStats(t, "failover", got.Stats, want.Stats)

	rec, body = routerGet(t, rt, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz status %d", rec.Code)
	}
	var st RouterStatusz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Ready || len(st.Shards) != 3 {
		t.Fatalf("statusz = %+v", st)
	}
	s1 := st.Shards[1]
	if s1.HedgesFired == 0 || s1.AttemptErrsTotal == 0 {
		t.Fatalf("down shard not visible in statusz: %+v", s1)
	}
	if s1.Reachable {
		t.Fatalf("closed shard reported reachable: %+v", s1)
	}
	if !st.Shards[0].Reachable || !st.Shards[2].Reachable {
		t.Fatalf("live shards reported unreachable: %+v", st.Shards)
	}
}

// TestRouterSlowShardHedges makes one shard artificially slow: the
// hedge to the next server must win within the query timeout and the
// answer must still be byte-identical.
func TestRouterSlowShardHedges(t *testing.T) {
	idx := buildIndex(t)
	slow := func(i int, h http.Handler) http.Handler {
		if i != 2 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/shard/") {
				time.Sleep(300 * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	}
	rt, _ := loopback(t, idx, 3, Config{
		HedgeDelay:   5 * time.Millisecond,
		QueryTimeout: 5 * time.Second,
	}, slow)
	single := server.New(idx)

	path := "/topk?u=7&k=5&stats=1"
	start := time.Now()
	rec, body := routerGet(t, rt, path)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var got, want server.TopKResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	_, sbody := routerGet(t, single, path)
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	sameResults(t, "hedged", got.Results, want.Results)
	sameScanStats(t, "hedged", got.Stats, want.Stats)
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedge did not win: query took %v (slow shard sleeps 300ms)", elapsed)
	}

	_, body = routerGet(t, rt, "/statusz")
	var st RouterStatusz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards[2].HedgesFired == 0 {
		t.Fatalf("no hedge recorded for the slow shard: %+v", st.Shards[2])
	}
}

func TestRouterNotReady(t *testing.T) {
	rt := New(Config{Shards: []string{"http://127.0.0.1:1"}})
	for _, path := range []string{"/topk?u=0", "/similar?u=0", "/readyz"} {
		rec, body := routerGet(t, rt, path)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d before probe", path, rec.Code)
		}
		if path == "/readyz" {
			continue
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Code != server.CodeNotReady {
			t.Fatalf("%s: code %q", path, er.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s: no Retry-After", path)
		}
	}
	// /statusz answers even before probe, reporting not ready.
	rec, body := routerGet(t, rt, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz status %d", rec.Code)
	}
	var st RouterStatusz
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready {
		t.Fatal("unprobed router claims ready")
	}
}

// TestRouterProbeRejectsMismatch: servers built from different seeds
// must not form a topology — the params fingerprint differs.
func TestRouterProbeRejectsMismatch(t *testing.T) {
	g := simrank.GenerateCollaborationGraph(60, 4, 0.8, 7)
	opts := simrank.DefaultOptions()
	idxA := simrank.BuildIndex(g, opts)
	opts.Seed = 2
	idxB := simrank.BuildIndex(g, opts)

	sa := httptest.NewServer(server.NewShard(idxA, 0, 2))
	sb := httptest.NewServer(server.NewShard(idxB, 1, 2))
	defer sa.Close()
	defer sb.Close()
	rt := New(Config{Shards: []string{sa.URL, sb.URL}})
	if err := rt.Probe(context.Background()); err == nil {
		t.Fatal("probe accepted mismatched seeds")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("unexpected probe error: %v", err)
	}
}

func TestRouterValidation(t *testing.T) {
	idx := buildIndex(t)
	rt, _ := loopback(t, idx, 2, Config{}, nil)
	for _, path := range []string{
		"/topk?u=notanint",
		"/topk?u=99999", // out of range, rejected locally
		"/topk?u=0&k=0", // k out of range
		"/similar?u=0&theta=7",
	} {
		rec, body := routerGet(t, rt, path)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", path, rec.Code, body)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("%s: error body not JSON: %s", path, body)
		}
		if er.Code != server.CodeBadRequest {
			t.Fatalf("%s: code %q", path, er.Code)
		}
	}
	rec, _ := routerPost(t, rt, "/topk/batch", `{"queries":[]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", rec.Code)
	}
}

// TestRouterWireModesIdentical drives the same queries through all
// three shard transports — persistent binary TCP, Accept-negotiated
// binary HTTP, and forced JSON — and requires identical results and
// scan statistics from every mode and from a stand-alone server. The
// binary codec ships raw float64 bit patterns and JSON round-trips
// float64 exactly, so equality here is bit-identity of the scores.
func TestRouterWireModesIdentical(t *testing.T) {
	idx := buildIndex(t)
	single := server.New(idx)
	rtBin, _ := loopback(t, idx, 3, Config{}, nil)
	rtHTTP, _ := loopbackHTTP(t, idx, 3, Config{})
	rtJSON, _ := loopback(t, idx, 3, Config{Wire: WireJSON}, nil)
	modes := []struct {
		name string
		h    http.Handler
	}{{"tcp-bin", rtBin}, {"http-bin", rtHTTP}, {"json", rtJSON}}

	for _, path := range []string{
		"/topk?u=42&k=20&stats=1",
		"/topk?u=0&k=5&stats=1",
		"/topk?u=150&k=100&stats=1",
		"/similar?u=42&theta=0.02",
	} {
		_, sbody := routerGet(t, single, path)
		var want server.TopKResponse
		if err := json.Unmarshal(sbody, &want); err != nil {
			t.Fatal(err)
		}
		for _, m := range modes {
			rec, body := routerGet(t, m.h, path)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", m.name, path, rec.Code, body)
			}
			var got server.TopKResponse
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			label := m.name + " " + path
			sameResults(t, label, got.Results, want.Results)
			if want.Stats != nil {
				sameScanStats(t, label, got.Stats, want.Stats)
			}
		}
	}

	batch := `{"queries":[0,7,42,59],"k":5,"stats":true}`
	_, sbody := routerPost(t, single, "/topk/batch", batch)
	var want server.BatchResponse
	if err := json.Unmarshal(sbody, &want); err != nil {
		t.Fatal(err)
	}
	for _, m := range modes {
		rec, body := routerPost(t, m.h, "/topk/batch", batch)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s batch: status %d: %s", m.name, rec.Code, body)
		}
		var got server.BatchResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("%s batch: %d results, want %d", m.name, len(got.Results), len(want.Results))
		}
		for i := range got.Results {
			label := fmt.Sprintf("%s batch query %d", m.name, got.Results[i].Query)
			sameResults(t, label, got.Results[i].Results, want.Results[i].Results)
			sameScanStats(t, label, got.Results[i].Stats, want.Results[i].Stats)
		}
	}

	// /statusz reports which transport each shard is on.
	for _, m := range modes {
		_, body := routerGet(t, m.h, "/statusz")
		var st RouterStatusz
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		wantWF := map[string]string{"tcp-bin": WireBin, "http-bin": "bin-http", "json": WireJSON}[m.name]
		for _, s := range st.Shards {
			if s.WireFormat != wantWF {
				t.Fatalf("%s: shard %d wire_format %q, want %q", m.name, s.Shard, s.WireFormat, wantWF)
			}
			if s.BytesReceived == 0 {
				t.Fatalf("%s: shard %d reports zero bytes received", m.name, s.Shard)
			}
		}
	}
}

// BenchmarkRouterTopK measures a routed /topk over a real 3-shard HTTP
// loopback topology — scatter, shard-side scoring, gather, merge replay.
func BenchmarkRouterTopK(b *testing.B) {
	idx := buildIndex(b)
	rt, _ := loopback(b, idx, 3, Config{}, nil)
	req := httptest.NewRequest(http.MethodGet, "/topk?u=42&k=20", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkRouterTopKBatch measures a routed 4-query batch over the
// same topology — one scatter round-trip amortized across the batch.
func BenchmarkRouterTopKBatch(b *testing.B) {
	idx := buildIndex(b)
	rt, _ := loopback(b, idx, 3, Config{}, nil)
	body := `{"queries":[0,7,42,59],"k":10}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/topk/batch", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rt.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}
