package router

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// TestBinConnPoolCancellationHammer drives binCall's pooled transport
// from many goroutines while contexts cancel at staggered points in the
// exchange, so the race detector sees every interleaving of the
// context.AfterFunc socket close against the clean-exchange repool path
// (the deferred stop()/keep dance in binCall). Cancel delays are varied
// deterministically by iteration — no RNG — from "cancelled before the
// call starts" through "cancelled mid-exchange" to "never cancelled".
// Afterwards the pool must still hand out working connections: a
// poisoned (desynchronized) repooled conn would fail the clean calls.
func TestBinConnPoolCancellationHammer(t *testing.T) {
	idx := buildIndex(t)
	sh := server.NewShard(idx, 0, 1)
	addr, stopBin, err := sh.StartBin("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start bin listener: %v", err)
	}
	t.Cleanup(stopBin)

	rt := New(Config{Shards: []string{"http://" + addr}})
	sc := &rt.shards[0]
	n := idx.Graph().NumVertices()

	call := func(ctx context.Context) error {
		var resp wire.TopKResp
		return rt.binCall(ctx, addr, sc,
			func(dst []byte) []byte {
				return wire.AppendTopKReq(dst, wire.TopKReq{U: 1, Lo: 0, Hi: uint32(n)})
			},
			func(f *wire.Frame) error { return f.TopKResp(&resp) })
	}

	const (
		workers = 8
		iters   = 60
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				// Stagger the cancel across the exchange: mode 0
				// cancels before the call (AfterFunc fires during get),
				// modes 1-3 race it against dial/write/read at
				// increasing delays, mode 4 lets the exchange finish
				// cleanly and repool.
				switch mode := (w + i) % 5; mode {
				case 0:
					cancel()
				case 4:
					// no early cancel; clean exchange
				default:
					delay := time.Duration(mode) * 50 * time.Microsecond
					go func() {
						time.Sleep(delay)
						cancel()
					}()
				}
				err := call(ctx)
				// Cancelled exchanges may fail with context.Canceled (or
				// a transport error the context verdict did not win the
				// race against); only a protocol-level failure on a
				// never-cancelled call is a bug here.
				if err != nil && ctx.Err() == nil && !errors.Is(err, context.Canceled) {
					t.Errorf("worker %d iter %d: uncancelled call failed: %v", w, i, err)
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	// The pool now holds whatever survived the hammer. Every clean call
	// from here must succeed: a desynchronized connection that slipped
	// back into the free list would answer the wrong frame.
	for i := 0; i < maxIdleBinConns+4; i++ {
		if err := call(context.Background()); err != nil {
			t.Fatalf("clean call %d after hammer: %v", i, err)
		}
	}
}
