// Package router implements the scatter-gather tier of the distributed
// serving topology: it fans each query out to a set of shard servers
// (internal/server handlers running with -shard i/n), merges the
// per-shard fragments deterministically, and answers with results — and
// pruning statistics — byte-identical to a single-node server over the
// same index.
//
//	GET /topk?u=42&k=20[&stats=1]  -> merged via the fragment replay (MergeShardTopK)
//	POST /topk/batch               -> same contract as the single-node batch endpoint
//	GET /similar?u=42&theta=0.05   -> merged best-first (fixed floor, plain k-way merge)
//	GET /statusz                   -> router counters + per-shard hedges/failures/health
//	GET /healthz, /readyz          -> process up / topology probed and validated
//
// Membership is established by Probe: every configured address must
// answer /readyz and publish a /shardinfo manifest, and the manifests
// must form one coherent topology (shard.ValidateTopology) — same
// graph and params fingerprints, same seed and theta, every range
// present exactly once. Because each server holds the full snapshot
// (the partition splits scoring work, not data), the router can ask any
// server for any vertex range: a slow shard is hedged to the next
// server after HedgeDelay, and a failed request fails over immediately,
// both through the lo/hi range override on the /shard/* endpoints.
//
// Shard traffic prefers the binary wire codec (internal/wire). A shard
// that advertises Manifest.BinAddr is reached over pooled persistent
// TCP; otherwise the router negotiates binary over HTTP with
// "Accept: application/x-simrank-bin"; Config.Wire == WireJSON forces
// plain JSON for every exchange. All three transports carry exact
// float64 bit patterns (the binary codec by construction, JSON via Go's
// shortest-round-trip encoding), so the merged answers are
// byte-identical regardless of transport.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Wire modes (Config.Wire).
const (
	// WireBin (also the "" default) prefers the binary codec: persistent
	// TCP when a shard advertises BinAddr, Accept-negotiated HTTP
	// otherwise.
	WireBin = "bin"
	// WireJSON forces JSON over HTTP for every shard exchange.
	WireJSON = "json"
)

// Config configures a Router. Only Shards is required.
type Config struct {
	// Shards lists the shard servers' base URLs (e.g.
	// "http://127.0.0.1:8081"), one per shard, in any order — the probe
	// maps addresses to shard indexes from the manifests.
	Shards []string
	// HedgeDelay is how long to wait on a shard before sending the same
	// range request to the next server (0 disables hedging; failed
	// requests still fail over immediately).
	HedgeDelay time.Duration
	// MaxAttempts caps how many servers one range request may try,
	// counting the first (default 2, capped at len(Shards)).
	MaxAttempts int
	// QueryTimeout bounds a whole routed query across all attempts
	// (0 = no limit beyond the request context).
	QueryTimeout time.Duration
	// ProbeTimeout bounds each address during Probe and the live
	// reachability check in /statusz (default 2s).
	ProbeTimeout time.Duration
	// MaxK and MaxBatch mirror the single-node handler's limits
	// (defaults 1000 and 1024).
	MaxK     int
	MaxBatch int
	// Wire selects the shard transport encoding: WireBin (default)
	// or WireJSON.
	Wire string
	// Client is the HTTP client for shard requests (default: a client
	// with a keep-alive transport whose idle pool is sized to the
	// topology fan-out times the hedging attempts).
	Client *http.Client
}

// shardCounters tracks one shard's serving health as seen from the
// router; /statusz reports them so operators can spot a degraded shard.
type shardCounters struct {
	requests    atomic.Int64 // range fetches routed for this shard
	hedges      atomic.Int64 // extra attempts launched (slow or failed primary)
	attemptErrs atomic.Int64 // individual attempts that errored
	failures    atomic.Int64 // fetches that failed after every attempt
	bytesSent   atomic.Int64 // request bytes shipped (TCP frames + HTTP payloads)
	bytesRecv   atomic.Int64 // response bytes received
	encodeNS    atomic.Int64 // ns spent encoding binary requests
	decodeNS    atomic.Int64 // ns spent parsing binary responses
}

// Router is an http.Handler that scatter-gathers queries over a shard
// topology. It serves 503 not_ready until Probe succeeds.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	top    atomic.Pointer[topology]

	// gathers pools per-query scatter/merge working sets; binPools holds
	// the persistent binary connections per shard address.
	gathers  sync.Pool
	binMu    sync.Mutex
	binPools map[string]*binPool

	queries  atomic.Int64
	batches  atomic.Int64
	batchQs  atomic.Int64
	batchMax atomic.Int64
	similar  atomic.Int64
	failures atomic.Int64
	shards   []shardCounters // indexed by shard id
}

// topology is the validated view of the shard set, swapped in
// atomically by Probe.
type topology struct {
	manifests []shard.Manifest // sorted by shard index
	addrs     []string         // addrs[i] natively serves shard i
	binAddrs  []string         // resolved binary listener of addrs[i] ("" = none)
	vertices  int
	theta     float64
}

// New returns a router for the given shard set. Call Probe before
// serving queries; until it succeeds every query answers 503 not_ready.
func New(cfg Config) *Router {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.MaxAttempts > len(cfg.Shards) {
		cfg.MaxAttempts = len(cfg.Shards)
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	for i, a := range cfg.Shards {
		cfg.Shards[i] = strings.TrimRight(a, "/")
	}
	rt := &Router{cfg: cfg, client: cfg.Client,
		shards:   make([]shardCounters, len(cfg.Shards)),
		binPools: make(map[string]*binPool),
	}
	rt.gathers.New = func() any { return new(gather) }
	if rt.client == nil {
		// Any server can answer any range (failover/hedging), so one host
		// may carry the whole fan-out times the attempt budget; size the
		// idle pool to keep every such connection warm.
		perHost := len(cfg.Shards) * cfg.MaxAttempts
		if perHost < 8 {
			perHost = 8
		}
		rt.client = &http.Client{Transport: &http.Transport{
			Proxy:               http.ProxyFromEnvironment,
			MaxIdleConns:        perHost * maxInt(len(cfg.Shards), 1),
			MaxIdleConnsPerHost: perHost,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", rt.handleTopK)
	mux.HandleFunc("/topk/batch", rt.handleTopKBatch)
	mux.HandleFunc("/similar", rt.handleSimilar)
	mux.HandleFunc("/statusz", rt.handleStatusz)
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleReady)
	rt.mux = mux
	return rt
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// binEnabled reports whether binary shard transport is allowed.
func (rt *Router) binEnabled() bool { return rt.cfg.Wire != WireJSON }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Probe establishes membership: every configured address must answer
// /readyz and publish a manifest, and the manifests must form one
// coherent topology. On success the topology is swapped in atomically
// and the router starts serving queries.
func (rt *Router) Probe(ctx context.Context) error {
	if len(rt.cfg.Shards) == 0 {
		return errors.New("router: no shard addresses configured")
	}
	ms := make([]shard.Manifest, len(rt.cfg.Shards))
	for i, addr := range rt.cfg.Shards {
		if err := rt.probeOne(ctx, addr, &ms[i]); err != nil {
			return fmt.Errorf("router: probe %s: %w", addr, err)
		}
	}
	sorted, err := shard.ValidateTopology(ms)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	t := &topology{
		manifests: sorted,
		addrs:     make([]string, len(sorted)),
		binAddrs:  make([]string, len(sorted)),
		vertices:  sorted[0].Vertices,
		theta:     sorted[0].Theta,
	}
	for i, m := range ms {
		t.addrs[m.Shard] = rt.cfg.Shards[i]
		t.binAddrs[m.Shard] = resolveBinAddr(rt.cfg.Shards[i], m.BinAddr)
	}
	rt.top.Store(t)
	return nil
}

// resolveBinAddr turns an advertised BinAddr into a dialable host:port.
// Shards that bound a wildcard or unspecified address mean "same host
// as my HTTP endpoint", so the port is grafted onto the HTTP host.
func resolveBinAddr(httpBase, bin string) string {
	if bin == "" {
		return ""
	}
	host, port, err := net.SplitHostPort(bin)
	if err != nil {
		return ""
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		u, err := url.Parse(httpBase)
		if err != nil || u.Hostname() == "" {
			return ""
		}
		return net.JoinHostPort(u.Hostname(), port)
	}
	return bin
}

func (rt *Router) probeOne(ctx context.Context, addr string, m *shard.Manifest) error {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	status, _, err := rt.get(pctx, addr+"/readyz")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("readyz: status %d", status)
	}
	status, body, err := rt.get(pctx, addr+"/shardinfo")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("shardinfo: status %d", status)
	}
	return json.Unmarshal(body, m)
}

// get issues a plain GET under ctx and slurps the body (probe and
// statusz reachability traffic — never negotiates binary).
func (rt *Router) get(ctx context.Context, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// getWire issues a shard-endpoint GET, negotiating a binary response
// unless JSON is forced, and counts received bytes for shard si.
func (rt *Router) getWire(ctx context.Context, sc *shardCounters, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	if rt.binEnabled() {
		req.Header.Set("Accept", wire.ContentType)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	sc.bytesRecv.Add(int64(len(body)))
	return resp.StatusCode, body, err
}

// postWire issues a shard-endpoint POST with the given payload and
// content type, negotiating a binary response unless JSON is forced.
func (rt *Router) postWire(ctx context.Context, sc *shardCounters, url string, payload []byte, contentType string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if rt.binEnabled() {
		req.Header.Set("Accept", wire.ContentType)
	}
	sc.bytesSent.Add(int64(len(payload)))
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	sc.bytesRecv.Add(int64(len(body)))
	return resp.StatusCode, body, err
}

// upstreamError is a non-200 answer from a shard server, keeping the
// stable machine-readable code from its JSON error body.
type upstreamError struct {
	Status int
	Code   string
	Msg    string
}

func (e *upstreamError) Error() string {
	return fmt.Sprintf("shard answered %d (%s): %s", e.Status, e.Code, e.Msg)
}

func asUpstreamError(status int, body []byte) error {
	var er server.ErrorResponse
	_ = json.Unmarshal(body, &er)
	if er.Error == "" {
		er.Error = strings.TrimSpace(string(body))
	}
	return &upstreamError{Status: status, Code: er.Code, Msg: er.Error}
}

// queryCtx mirrors the single-node handler: the request context bounded
// by QueryTimeout.
func (rt *Router) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if rt.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), rt.cfg.QueryTimeout)
	}
	return r.Context(), func() {}
}

// ready loads the probed topology or answers 503 not_ready.
func (rt *Router) ready(w http.ResponseWriter) (*topology, bool) {
	t := rt.top.Load()
	if t == nil {
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeNotReady, "shard topology not probed")
		return nil, false
	}
	return t, true
}

// writeQueryError maps a routed-query failure onto the same stable
// error contract the single-node handler uses, plus upstream for shard
// failures that exhausted every attempt.
func (rt *Router) writeQueryError(w http.ResponseWriter, err error) {
	rt.failures.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeCancelled, "query cancelled")
	default:
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusBadGateway, server.CodeUpstream, err.Error())
	}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	u, ok := intParam(w, q, "u", -1)
	if !ok {
		return
	}
	if u < 0 || u >= t.vertices {
		writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
		return
	}
	k, ok := intParam(w, q, "k", 20)
	if !ok {
		return
	}
	if k <= 0 || k > rt.cfg.MaxK {
		writeBadRequest(w, fmt.Sprintf("k must be in [1, %d]", rt.cfg.MaxK))
		return
	}
	wantStats := q.Get("stats") == "1"
	rt.queries.Add(1)
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	g := rt.getGather()
	g.ensure(n)
	defer rt.putGather(g)
	//lint:ignore poolescape fanout joins every worker before returning, so the deferred putGather runs strictly after the last goroutine touches g
	fanout(n, func(i int) {
		g.errs[i] = rt.fetchTopKFrag(ctx, t, i, u, g)
	})
	if err := firstError(g.errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	res, st := simrank.MergeShardTopKScratch(k, t.theta, g.frags, &g.ms)
	g.results = appendResults(g.results[:0], res)
	resp := server.TopKResponse{Query: u, Results: g.results}
	if wantStats {
		resp.Stats = mergedStats(st, g.stats)
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// fetchTopKFrag fetches shard si's fragment for query u into g. With
// hedging disabled (the default) attempts run sequentially — attempt a
// goes to server (si+a) mod S with an explicit lo/hi override — and the
// binary transport is preferred per server. With HedgeDelay > 0
// attempts race over HTTP (binary-negotiated unless JSON is forced),
// because concurrent attempts must not share g's decode slots.
func (rt *Router) fetchTopKFrag(ctx context.Context, t *topology, si, u int, g *gather) error {
	sc := &rt.shards[si]
	sc.requests.Add(1)
	m := t.manifests[si]
	if rt.cfg.HedgeDelay > 0 {
		body, hedges, errs, err := hedged(ctx, rt.cfg.HedgeDelay, rt.cfg.MaxAttempts,
			func(ctx context.Context, a int) ([]byte, error) {
				addr := t.addrs[(si+a)%len(t.addrs)]
				return rt.getShardOK(ctx, sc, fmt.Sprintf("%s/shard/topk?u=%d&lo=%d&hi=%d", addr, u, m.Lo, m.Hi))
			})
		sc.hedges.Add(int64(hedges))
		sc.attemptErrs.Add(int64(errs))
		if err != nil {
			sc.failures.Add(1)
			return err
		}
		return rt.decodeTopKBody(body, si, g)
	}
	var firstErr error
	for a := 0; a < rt.cfg.MaxAttempts; a++ {
		if a > 0 {
			sc.hedges.Add(1)
		}
		j := (si + a) % len(t.addrs)
		err := rt.tryTopK(ctx, t, j, si, u, m.Lo, m.Hi, g)
		if err == nil {
			return nil
		}
		sc.attemptErrs.Add(1)
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	sc.failures.Add(1)
	return firstErr
}

// getShardOK is a getWire that lifts non-200 answers into upstream
// errors — the hedged-attempt shape.
func (rt *Router) getShardOK(ctx context.Context, sc *shardCounters, url string) ([]byte, error) {
	status, body, err := rt.getWire(ctx, sc, url)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, asUpstreamError(status, body)
	}
	return body, nil
}

// tryTopK runs one attempt against server j on behalf of shard si:
// persistent binary TCP when advertised, falling back to HTTP (with
// binary negotiation) on transport failure or when TCP is unavailable.
func (rt *Router) tryTopK(ctx context.Context, t *topology, j, si, u, lo, hi int, g *gather) error {
	sc := &rt.shards[si]
	if rt.binEnabled() && t.binAddrs[j] != "" {
		err := rt.binCall(ctx, t.binAddrs[j], sc,
			func(dst []byte) []byte {
				return wire.AppendTopKReq(dst, wire.TopKReq{U: uint32(u), Lo: uint32(lo), Hi: uint32(hi)})
			},
			func(f *wire.Frame) error {
				if err := f.TopKResp(&g.resps[si]); err != nil {
					return err
				}
				g.frags[si] = g.resps[si].Frag
				g.stats[si] = server.StatsFromWire(g.resps[si].Stats)
				return nil
			})
		var ue *upstreamError
		if err == nil || errors.As(err, &ue) || ctx.Err() != nil {
			return err
		}
		// TCP transport failed; the HTTP endpoint may still be up.
	}
	body, err := rt.getShardOK(ctx, sc, fmt.Sprintf("%s/shard/topk?u=%d&lo=%d&hi=%d", t.addrs[j], u, lo, hi))
	if err != nil {
		return err
	}
	return rt.decodeTopKBody(body, si, g)
}

// decodeTopKBody lowers an HTTP body — binary frame or JSON — into g's
// slot for shard si, reusing the slot's fragment capacity.
func (rt *Router) decodeTopKBody(body []byte, si int, g *gather) error {
	sc := &rt.shards[si]
	if wire.IsFrame(body) {
		t0 := time.Now()
		f := &g.frames[si]
		if err := f.Parse(body); err != nil {
			return err
		}
		if err := f.TopKResp(&g.resps[si]); err != nil {
			return err
		}
		sc.decodeNS.Add(time.Since(t0).Nanoseconds())
		g.frags[si] = g.resps[si].Frag
		g.stats[si] = server.StatsFromWire(g.resps[si].Stats)
		return nil
	}
	var resp server.ShardTopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return err
	}
	dst := g.resps[si].Frag[:0]
	for _, c := range resp.Frag {
		dst = append(dst, simrank.ShardCand{V: c.V, UB: c.UB, State: c.State, Rough: c.Rough, Score: c.Score})
	}
	g.resps[si].Frag = dst
	g.frags[si] = dst
	if resp.Stats != nil {
		g.stats[si] = statsFromJSON(resp.Stats)
	} else {
		g.stats[si] = simrank.QueryStats{}
	}
	return nil
}

func (rt *Router) handleTopKBatch(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		server.WriteError(w, http.StatusMethodNotAllowed, server.CodeBadRequest, "POST required")
		return
	}
	var req server.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeBadRequest(w, "queries must be non-empty")
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatch {
		writeBadRequest(w, fmt.Sprintf("batch size %d exceeds limit %d", len(req.Queries), rt.cfg.MaxBatch))
		return
	}
	if req.K == 0 {
		req.K = 20
	}
	if req.K < 0 || req.K > rt.cfg.MaxK {
		writeBadRequest(w, fmt.Sprintf("k must be in [1, %d]", rt.cfg.MaxK))
		return
	}
	for _, u := range req.Queries {
		if u < 0 || u >= t.vertices {
			writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
			return
		}
	}
	rt.batches.Add(1)
	rt.batchQs.Add(int64(len(req.Queries)))
	for cur := rt.batchMax.Load(); int64(len(req.Queries)) > cur; cur = rt.batchMax.Load() {
		if rt.batchMax.CompareAndSwap(cur, int64(len(req.Queries))) {
			break
		}
	}
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	g := rt.getGather()
	g.ensure(n)
	defer rt.putGather(g)
	g.q32 = g.q32[:0]
	for _, u := range req.Queries {
		g.q32 = append(g.q32, uint32(u))
	}
	//lint:ignore poolescape fanout joins every worker before returning, so the deferred putGather runs strictly after the last goroutine touches g
	fanout(n, func(i int) {
		g.errs[i] = rt.fetchBatchFrags(ctx, t, i, req.Queries, g)
	})
	if err := firstError(g.errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	for i := 0; i < n; i++ {
		if len(g.bfrags[i]) != len(req.Queries) {
			rt.writeQueryError(w, fmt.Errorf("shard %d answered %d fragments for %d queries",
				i, len(g.bfrags[i]), len(req.Queries)))
			return
		}
	}
	resp := server.BatchResponse{K: req.K, Results: make([]server.TopKResponse, len(req.Queries))}
	for qi := range req.Queries {
		for i := 0; i < n; i++ {
			g.qfrags[i] = g.bfrags[i][qi]
		}
		res, st := simrank.MergeShardTopKScratch(req.K, t.theta, g.qfrags, &g.ms)
		resp.Results[qi] = server.TopKResponse{Query: req.Queries[qi], Results: appendResults(nil, res)}
		if req.Stats {
			resp.Results[qi].Stats = mergedBatchStats(st, g.bstats, qi)
		}
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// fetchBatchFrags fetches shard si's batch of fragments into g,
// sequential-failover with binary preferred (or hedged HTTP when
// HedgeDelay > 0, exactly like fetchTopKFrag).
func (rt *Router) fetchBatchFrags(ctx context.Context, t *topology, si int, queries []int, g *gather) error {
	sc := &rt.shards[si]
	sc.requests.Add(1)
	m := t.manifests[si]
	if rt.cfg.HedgeDelay > 0 {
		body, hedges, errs, err := hedged(ctx, rt.cfg.HedgeDelay, rt.cfg.MaxAttempts,
			func(ctx context.Context, a int) ([]byte, error) {
				addr := t.addrs[(si+a)%len(t.addrs)]
				return rt.postBatch(ctx, sc, addr, si, queries, m.Lo, m.Hi, g)
			})
		sc.hedges.Add(int64(hedges))
		sc.attemptErrs.Add(int64(errs))
		if err != nil {
			sc.failures.Add(1)
			return err
		}
		return rt.decodeBatchBody(body, si, g)
	}
	var firstErr error
	for a := 0; a < rt.cfg.MaxAttempts; a++ {
		if a > 0 {
			sc.hedges.Add(1)
		}
		j := (si + a) % len(t.addrs)
		err := rt.tryBatch(ctx, t, j, si, queries, m.Lo, m.Hi, g)
		if err == nil {
			return nil
		}
		sc.attemptErrs.Add(1)
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	sc.failures.Add(1)
	return firstErr
}

// tryBatch runs one batch attempt against server j for shard si.
func (rt *Router) tryBatch(ctx context.Context, t *topology, j, si int, queries []int, lo, hi int, g *gather) error {
	sc := &rt.shards[si]
	if rt.binEnabled() && t.binAddrs[j] != "" {
		breq := wire.BatchReq{Lo: uint32(lo), Hi: uint32(hi), Queries: g.q32}
		err := rt.binCall(ctx, t.binAddrs[j], sc,
			func(dst []byte) []byte {
				return wire.AppendBatchReq(dst, &breq)
			},
			func(f *wire.Frame) error {
				if err := f.BatchResp(&g.bresps[si]); err != nil {
					return err
				}
				g.bfrags[si] = g.bresps[si].Frags
				g.bstats[si] = g.bresps[si].Stats
				return nil
			})
		var ue *upstreamError
		if err == nil || errors.As(err, &ue) || ctx.Err() != nil {
			return err
		}
	}
	body, err := rt.postBatch(ctx, sc, t.addrs[j], si, queries, lo, hi, g)
	if err != nil {
		return err
	}
	return rt.decodeBatchBody(body, si, g)
}

// postBatch ships one batch request over HTTP — a binary frame body
// when the binary codec is enabled, the JSON shape otherwise — and
// returns the raw 200 body.
func (rt *Router) postBatch(ctx context.Context, sc *shardCounters, addr string, si int, queries []int, lo, hi int, g *gather) ([]byte, error) {
	var payload []byte
	contentType := "application/json"
	if rt.binEnabled() {
		breq := wire.BatchReq{Lo: uint32(lo), Hi: uint32(hi), Queries: g.q32}
		t0 := time.Now()
		payload = wire.AppendBatchReq(nil, &breq)
		sc.encodeNS.Add(time.Since(t0).Nanoseconds())
		contentType = wire.ContentType
	} else {
		var err error
		payload, err = json.Marshal(server.ShardBatchRequest{Queries: queries, Lo: &lo, Hi: &hi})
		if err != nil {
			return nil, err
		}
	}
	status, body, err := rt.postWire(ctx, sc, addr+"/shard/topk/batch", payload, contentType)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, asUpstreamError(status, body)
	}
	return body, nil
}

// decodeBatchBody lowers an HTTP batch body — binary frame or JSON —
// into g's slots for shard si.
func (rt *Router) decodeBatchBody(body []byte, si int, g *gather) error {
	sc := &rt.shards[si]
	if wire.IsFrame(body) {
		t0 := time.Now()
		f := &g.frames[si]
		if err := f.Parse(body); err != nil {
			return err
		}
		if err := f.BatchResp(&g.bresps[si]); err != nil {
			return err
		}
		sc.decodeNS.Add(time.Since(t0).Nanoseconds())
		g.bfrags[si] = g.bresps[si].Frags
		g.bstats[si] = g.bresps[si].Stats
		return nil
	}
	var jr server.ShardBatchResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		return err
	}
	bs := &g.bjson[si]
	bs.ensureBatch(len(jr.Results))
	for qi := range jr.Results {
		dst := bs.frags[qi][:0]
		for _, c := range jr.Results[qi].Frag {
			dst = append(dst, simrank.ShardCand{V: c.V, UB: c.UB, State: c.State, Rough: c.Rough, Score: c.Score})
		}
		bs.frags[qi] = dst
		bs.stats[qi] = wire.Stats{}
		if st := jr.Results[qi].Stats; st != nil {
			bs.stats[qi] = server.StatsToWire(statsFromJSON(st))
		}
	}
	g.bfrags[si] = bs.frags
	g.bstats[si] = bs.stats
	return nil
}

func (rt *Router) handleSimilar(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	q := r.URL.Query()
	u, ok := intParam(w, q, "u", -1)
	if !ok {
		return
	}
	if u < 0 || u >= t.vertices {
		writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
		return
	}
	theta := 0.01
	if s := q.Get("theta"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 || f > 1 {
			writeBadRequest(w, "theta must be a float in (0, 1]")
			return
		}
		theta = f
	}
	rt.similar.Add(1)
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	g := rt.getGather()
	g.ensure(n)
	defer rt.putGather(g)
	//lint:ignore poolescape fanout joins every worker before returning, so the deferred putGather runs strictly after the last goroutine touches g
	fanout(n, func(i int) {
		g.errs[i] = rt.fetchSimilarFrag(ctx, t, i, u, theta, g)
	})
	if err := firstError(g.errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	merged := shard.MergeTopK(0, g.rfrags)
	out := make([]server.ResultJSON, len(merged))
	for i, m := range merged {
		out[i] = server.ResultJSON{Node: m.Node, Score: m.Score}
	}
	writeJSON(w, http.StatusOK, server.TopKResponse{
		Query:    u,
		Results:  out,
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// fetchSimilarFrag fetches shard si's threshold results into g.
func (rt *Router) fetchSimilarFrag(ctx context.Context, t *topology, si, u int, theta float64, g *gather) error {
	sc := &rt.shards[si]
	sc.requests.Add(1)
	m := t.manifests[si]
	urlFor := func(addr string) string {
		return fmt.Sprintf("%s/shard/similar?u=%d&theta=%s&lo=%d&hi=%d",
			addr, u, strconv.FormatFloat(theta, 'g', -1, 64), m.Lo, m.Hi)
	}
	if rt.cfg.HedgeDelay > 0 {
		body, hedges, errs, err := hedged(ctx, rt.cfg.HedgeDelay, rt.cfg.MaxAttempts,
			func(ctx context.Context, a int) ([]byte, error) {
				return rt.getShardOK(ctx, sc, urlFor(t.addrs[(si+a)%len(t.addrs)]))
			})
		sc.hedges.Add(int64(hedges))
		sc.attemptErrs.Add(int64(errs))
		if err != nil {
			sc.failures.Add(1)
			return err
		}
		return rt.decodeSimilarBody(body, si, g)
	}
	var firstErr error
	for a := 0; a < rt.cfg.MaxAttempts; a++ {
		if a > 0 {
			sc.hedges.Add(1)
		}
		j := (si + a) % len(t.addrs)
		err := rt.trySimilar(ctx, t, j, si, u, theta, m.Lo, m.Hi, urlFor(t.addrs[j]), g)
		if err == nil {
			return nil
		}
		sc.attemptErrs.Add(1)
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil {
			break
		}
	}
	sc.failures.Add(1)
	return firstErr
}

func (rt *Router) trySimilar(ctx context.Context, t *topology, j, si, u int, theta float64, lo, hi int, httpURL string, g *gather) error {
	sc := &rt.shards[si]
	if rt.binEnabled() && t.binAddrs[j] != "" {
		err := rt.binCall(ctx, t.binAddrs[j], sc,
			func(dst []byte) []byte {
				return wire.AppendSimilarReq(dst, wire.SimilarReq{
					U: uint32(u), Lo: uint32(lo), Hi: uint32(hi), Theta: theta,
				})
			},
			func(f *wire.Frame) error {
				if err := f.SimilarResp(&g.sresps[si]); err != nil {
					return err
				}
				g.rfrags[si] = g.rfrags[si][:0]
				for _, sn := range g.sresps[si].Ranked {
					g.rfrags[si] = append(g.rfrags[si], shard.Ranked{Node: int(sn.Node), Score: sn.Score})
				}
				return nil
			})
		var ue *upstreamError
		if err == nil || errors.As(err, &ue) || ctx.Err() != nil {
			return err
		}
	}
	body, err := rt.getShardOK(ctx, sc, httpURL)
	if err != nil {
		return err
	}
	return rt.decodeSimilarBody(body, si, g)
}

func (rt *Router) decodeSimilarBody(body []byte, si int, g *gather) error {
	sc := &rt.shards[si]
	g.rfrags[si] = g.rfrags[si][:0]
	if wire.IsFrame(body) {
		t0 := time.Now()
		f := &g.frames[si]
		if err := f.Parse(body); err != nil {
			return err
		}
		if err := f.SimilarResp(&g.sresps[si]); err != nil {
			return err
		}
		sc.decodeNS.Add(time.Since(t0).Nanoseconds())
		for _, sn := range g.sresps[si].Ranked {
			g.rfrags[si] = append(g.rfrags[si], shard.Ranked{Node: int(sn.Node), Score: sn.Score})
		}
		return nil
	}
	var resp server.TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return err
	}
	for _, res := range resp.Results {
		g.rfrags[si] = append(g.rfrags[si], shard.Ranked{Node: res.Node, Score: res.Score})
	}
	return nil
}

// ShardStatus is one shard's health as seen from the router.
type ShardStatus struct {
	Shard         int    `json:"shard"`
	Addr          string `json:"addr"`
	RequestsTotal int64  `json:"requests_total"`
	// HedgesFired counts extra attempts launched for this shard's
	// ranges — nonzero means the primary was slow or down.
	HedgesFired      int64 `json:"hedges_fired"`
	AttemptErrsTotal int64 `json:"attempt_errors_total"`
	FailuresTotal    int64 `json:"failures_total"`
	// WireFormat is the transport the router prefers for this shard:
	// "bin" (persistent TCP), "bin-http" (Accept-negotiated HTTP), or
	// "json".
	WireFormat string `json:"wire_format"`
	// BytesSent / BytesReceived / EncodeNs / DecodeNs are this shard's
	// router-side wire activity (binary frames plus HTTP payloads).
	BytesSent     int64 `json:"bytes_sent"`
	BytesReceived int64 `json:"bytes_received"`
	EncodeNs      int64 `json:"encode_ns"`
	DecodeNs      int64 `json:"decode_ns"`
	Reachable     bool  `json:"reachable"`
	// Status is the shard server's own /statusz (counters + cache),
	// absent when the server was unreachable just now.
	Status *server.StatuszResponse `json:"status,omitempty"`
}

// RouterStatusz is the payload of the router's /statusz.
type RouterStatusz struct {
	Ready             bool          `json:"ready"`
	NumShards         int           `json:"num_shards"`
	QueriesTotal      int64         `json:"queries_total"`
	BatchesTotal      int64         `json:"batches_total"`
	BatchQueriesTotal int64         `json:"batch_queries_total"`
	BatchSizeMax      int64         `json:"batch_size_max"`
	SimilarTotal      int64         `json:"similar_total"`
	FailuresTotal     int64         `json:"failures_total"`
	Shards            []ShardStatus `json:"shards"`
}

// handleStatusz reports the router's own counters plus a live view of
// every shard: per-shard hedges/failures/wire activity since start and
// a reachability probe (each shard's /statusz fetched under
// ProbeTimeout) — the place degradation shows up when a shard is slow
// or down.
func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	resp := RouterStatusz{
		NumShards:         len(rt.cfg.Shards),
		QueriesTotal:      rt.queries.Load(),
		BatchesTotal:      rt.batches.Load(),
		BatchQueriesTotal: rt.batchQs.Load(),
		BatchSizeMax:      rt.batchMax.Load(),
		SimilarTotal:      rt.similar.Load(),
		FailuresTotal:     rt.failures.Load(),
	}
	t := rt.top.Load()
	if t != nil {
		resp.Ready = true
		resp.Shards = make([]ShardStatus, len(t.addrs))
		fanout(len(t.addrs), func(i int) {
			sc := &rt.shards[i]
			wf := WireJSON
			if rt.binEnabled() {
				if t.binAddrs[i] != "" {
					wf = WireBin
				} else {
					wf = "bin-http"
				}
			}
			ss := ShardStatus{
				Shard:            i,
				Addr:             t.addrs[i],
				RequestsTotal:    sc.requests.Load(),
				HedgesFired:      sc.hedges.Load(),
				AttemptErrsTotal: sc.attemptErrs.Load(),
				FailuresTotal:    sc.failures.Load(),
				WireFormat:       wf,
				BytesSent:        sc.bytesSent.Load(),
				BytesReceived:    sc.bytesRecv.Load(),
				EncodeNs:         sc.encodeNS.Load(),
				DecodeNs:         sc.decodeNS.Load(),
			}
			pctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
			defer cancel()
			status, body, err := rt.get(pctx, t.addrs[i]+"/statusz")
			if err == nil && status == http.StatusOK {
				var st server.StatuszResponse
				if json.Unmarshal(body, &st) == nil {
					ss.Reachable = true
					ss.Status = &st
				}
			}
			resp.Shards[i] = ss
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if _, ok := rt.ready(w); !ok {
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// statsFromJSON lowers the JSON stats shape to QueryStats.
func statsFromJSON(st *server.QueryStatsJSON) simrank.QueryStats {
	return simrank.QueryStats{
		Candidates:     st.Candidates,
		PrunedByBound:  st.PrunedByBound,
		PrunedByRough:  st.PrunedByRough,
		Refined:        st.Refined,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
	}
}

// mergedStats combines the replayed scan counters (byte-identical to
// single-node) with the per-shard cache counters summed (cache state is
// topology-dependent: each shard has its own tally cache).
func mergedStats(st simrank.QueryStats, perShard []simrank.QueryStats) *server.QueryStatsJSON {
	out := &server.QueryStatsJSON{
		Candidates:    st.Candidates,
		PrunedByBound: st.PrunedByBound,
		PrunedByRough: st.PrunedByRough,
		Refined:       st.Refined,
	}
	for _, s := range perShard {
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheEvictions += s.CacheEvictions
	}
	return out
}

// mergedBatchStats is mergedStats over query qi of the batch slots.
func mergedBatchStats(st simrank.QueryStats, perShard [][]wire.Stats, qi int) *server.QueryStatsJSON {
	out := &server.QueryStatsJSON{
		Candidates:    st.Candidates,
		PrunedByBound: st.PrunedByBound,
		PrunedByRough: st.PrunedByRough,
		Refined:       st.Refined,
	}
	for i := range perShard {
		if qi < len(perShard[i]) {
			s := perShard[i][qi]
			out.CacheHits += int(s.CacheHits)
			out.CacheMisses += int(s.CacheMisses)
			out.CacheEvictions += int(s.CacheEvictions)
		}
	}
	return out
}

// appendResults converts merged results into the JSON shape, reusing
// dst's capacity; the result is never nil so an empty list encodes as
// [] rather than null.
func appendResults(dst []server.ResultJSON, res []simrank.Result) []server.ResultJSON {
	if dst == nil {
		dst = make([]server.ResultJSON, 0, len(res))
	}
	for _, r := range res {
		dst = append(dst, server.ResultJSON{Node: r.Node, Score: r.Score})
	}
	return dst
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, msg)
}

// intParam parses an integer query parameter from pre-parsed values
// (the URL is parsed once per request); def < 0 means required.
func intParam(w http.ResponseWriter, q url.Values, name string, def int) (int, bool) {
	s := q.Get(name)
	if s == "" {
		if def >= 0 {
			return def, true
		}
		writeBadRequest(w, fmt.Sprintf("missing required parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		writeBadRequest(w, fmt.Sprintf("parameter %q must be an integer", name))
		return 0, false
	}
	return v, true
}
