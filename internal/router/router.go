// Package router implements the scatter-gather tier of the distributed
// serving topology: it fans each query out to a set of shard servers
// (internal/server handlers running with -shard i/n), merges the
// per-shard fragments deterministically, and answers with results — and
// pruning statistics — byte-identical to a single-node server over the
// same index.
//
//	GET /topk?u=42&k=20[&stats=1]  -> merged via the fragment replay (MergeShardTopK)
//	POST /topk/batch               -> same contract as the single-node batch endpoint
//	GET /similar?u=42&theta=0.05   -> merged best-first (fixed floor, plain k-way merge)
//	GET /statusz                   -> router counters + per-shard hedges/failures/health
//	GET /healthz, /readyz          -> process up / topology probed and validated
//
// Membership is established by Probe: every configured address must
// answer /readyz and publish a /shardinfo manifest, and the manifests
// must form one coherent topology (shard.ValidateTopology) — same
// graph and params fingerprints, same seed and theta, every range
// present exactly once. Because each server holds the full snapshot
// (the partition splits scoring work, not data), the router can ask any
// server for any vertex range: a slow shard is hedged to the next
// server after HedgeDelay, and a failed request fails over immediately,
// both through the lo/hi range override on the /shard/* endpoints.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/server"
	"repro/internal/shard"
)

// Config configures a Router. Only Shards is required.
type Config struct {
	// Shards lists the shard servers' base URLs (e.g.
	// "http://127.0.0.1:8081"), one per shard, in any order — the probe
	// maps addresses to shard indexes from the manifests.
	Shards []string
	// HedgeDelay is how long to wait on a shard before sending the same
	// range request to the next server (0 disables hedging; failed
	// requests still fail over immediately).
	HedgeDelay time.Duration
	// MaxAttempts caps how many servers one range request may try,
	// counting the first (default 2, capped at len(Shards)).
	MaxAttempts int
	// QueryTimeout bounds a whole routed query across all attempts
	// (0 = no limit beyond the request context).
	QueryTimeout time.Duration
	// ProbeTimeout bounds each address during Probe and the live
	// reachability check in /statusz (default 2s).
	ProbeTimeout time.Duration
	// MaxK and MaxBatch mirror the single-node handler's limits
	// (defaults 1000 and 1024).
	MaxK     int
	MaxBatch int
	// Client is the HTTP client for shard requests (default a fresh
	// http.Client; per-request contexts carry the deadlines).
	Client *http.Client
}

// shardCounters tracks one shard's serving health as seen from the
// router; /statusz reports them so operators can spot a degraded shard.
type shardCounters struct {
	requests    atomic.Int64 // range fetches routed for this shard
	hedges      atomic.Int64 // extra attempts launched (slow or failed primary)
	attemptErrs atomic.Int64 // individual attempts that errored
	failures    atomic.Int64 // fetches that failed after every attempt
}

// Router is an http.Handler that scatter-gathers queries over a shard
// topology. It serves 503 not_ready until Probe succeeds.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	top    atomic.Pointer[topology]

	queries  atomic.Int64
	batches  atomic.Int64
	batchQs  atomic.Int64
	batchMax atomic.Int64
	similar  atomic.Int64
	failures atomic.Int64
	shards   []shardCounters // indexed by shard id
}

// topology is the validated view of the shard set, swapped in
// atomically by Probe.
type topology struct {
	manifests []shard.Manifest // sorted by shard index
	addrs     []string         // addrs[i] natively serves shard i
	vertices  int
	theta     float64
}

// New returns a router for the given shard set. Call Probe before
// serving queries; until it succeeds every query answers 503 not_ready.
func New(cfg Config) *Router {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 1000
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2
	}
	if cfg.MaxAttempts > len(cfg.Shards) {
		cfg.MaxAttempts = len(cfg.Shards)
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	for i, a := range cfg.Shards {
		cfg.Shards[i] = strings.TrimRight(a, "/")
	}
	rt := &Router{cfg: cfg, client: cfg.Client, shards: make([]shardCounters, len(cfg.Shards))}
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", rt.handleTopK)
	mux.HandleFunc("/topk/batch", rt.handleTopKBatch)
	mux.HandleFunc("/similar", rt.handleSimilar)
	mux.HandleFunc("/statusz", rt.handleStatusz)
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/readyz", rt.handleReady)
	rt.mux = mux
	return rt
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Probe establishes membership: every configured address must answer
// /readyz and publish a manifest, and the manifests must form one
// coherent topology. On success the topology is swapped in atomically
// and the router starts serving queries.
func (rt *Router) Probe(ctx context.Context) error {
	if len(rt.cfg.Shards) == 0 {
		return errors.New("router: no shard addresses configured")
	}
	ms := make([]shard.Manifest, len(rt.cfg.Shards))
	for i, addr := range rt.cfg.Shards {
		if err := rt.probeOne(ctx, addr, &ms[i]); err != nil {
			return fmt.Errorf("router: probe %s: %w", addr, err)
		}
	}
	sorted, err := shard.ValidateTopology(ms)
	if err != nil {
		return fmt.Errorf("router: %w", err)
	}
	t := &topology{
		manifests: sorted,
		addrs:     make([]string, len(sorted)),
		vertices:  sorted[0].Vertices,
		theta:     sorted[0].Theta,
	}
	for i, m := range ms {
		t.addrs[m.Shard] = rt.cfg.Shards[i]
	}
	rt.top.Store(t)
	return nil
}

func (rt *Router) probeOne(ctx context.Context, addr string, m *shard.Manifest) error {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	status, _, err := rt.get(pctx, addr+"/readyz")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("readyz: status %d", status)
	}
	status, body, err := rt.get(pctx, addr+"/shardinfo")
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("shardinfo: status %d", status)
	}
	return json.Unmarshal(body, m)
}

// get issues a GET under ctx and slurps the body.
func (rt *Router) get(ctx context.Context, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// post issues a POST of a JSON body under ctx and slurps the response.
func (rt *Router) post(ctx context.Context, url string, payload []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// upstreamError is a non-200 answer from a shard server, keeping the
// stable machine-readable code from its JSON error body.
type upstreamError struct {
	Status int
	Code   string
	Msg    string
}

func (e *upstreamError) Error() string {
	return fmt.Sprintf("shard answered %d (%s): %s", e.Status, e.Code, e.Msg)
}

func asUpstreamError(status int, body []byte) error {
	var er server.ErrorResponse
	_ = json.Unmarshal(body, &er)
	if er.Error == "" {
		er.Error = strings.TrimSpace(string(body))
	}
	return &upstreamError{Status: status, Code: er.Code, Msg: er.Error}
}

// fetch runs one range request with failover and hedging: attempt a
// goes to the server (si+a) mod S with an explicit lo/hi override, so a
// slow or down shard is served by its neighbor from the same snapshot.
func (rt *Router) fetch(ctx context.Context, t *topology, si int, do func(ctx context.Context, addr string) ([]byte, error)) ([]byte, error) {
	sc := &rt.shards[si]
	sc.requests.Add(1)
	attempts := rt.cfg.MaxAttempts
	body, hedges, errs, err := hedged(ctx, rt.cfg.HedgeDelay, attempts,
		func(ctx context.Context, a int) ([]byte, error) {
			return do(ctx, t.addrs[(si+a)%len(t.addrs)])
		})
	sc.hedges.Add(int64(hedges))
	sc.attemptErrs.Add(int64(errs))
	if err != nil {
		sc.failures.Add(1)
	}
	return body, err
}

// fetchTopK fetches shard si's fragment for query u.
func (rt *Router) fetchTopK(ctx context.Context, t *topology, si, u int) (server.ShardTopKResponse, error) {
	m := t.manifests[si]
	body, err := rt.fetch(ctx, t, si, func(ctx context.Context, addr string) ([]byte, error) {
		status, body, err := rt.get(ctx, fmt.Sprintf("%s/shard/topk?u=%d&lo=%d&hi=%d", addr, u, m.Lo, m.Hi))
		if err != nil {
			return nil, err
		}
		if status != http.StatusOK {
			return nil, asUpstreamError(status, body)
		}
		return body, nil
	})
	var resp server.ShardTopKResponse
	if err != nil {
		return resp, err
	}
	return resp, json.Unmarshal(body, &resp)
}

// queryCtx mirrors the single-node handler: the request context bounded
// by QueryTimeout.
func (rt *Router) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if rt.cfg.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), rt.cfg.QueryTimeout)
	}
	return r.Context(), func() {}
}

// ready loads the probed topology or answers 503 not_ready.
func (rt *Router) ready(w http.ResponseWriter) (*topology, bool) {
	t := rt.top.Load()
	if t == nil {
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeNotReady, "shard topology not probed")
		return nil, false
	}
	return t, true
}

// writeQueryError maps a routed-query failure onto the same stable
// error contract the single-node handler uses, plus upstream for shard
// failures that exhausted every attempt.
func (rt *Router) writeQueryError(w http.ResponseWriter, err error) {
	rt.failures.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeCancelled, "query cancelled")
	default:
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusBadGateway, server.CodeUpstream, err.Error())
	}
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (rt *Router) handleTopK(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	u, ok := intParam(w, r, "u", -1)
	if !ok {
		return
	}
	if u < 0 || u >= t.vertices {
		writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
		return
	}
	k, ok := intParam(w, r, "k", 20)
	if !ok {
		return
	}
	if k <= 0 || k > rt.cfg.MaxK {
		writeBadRequest(w, fmt.Sprintf("k must be in [1, %d]", rt.cfg.MaxK))
		return
	}
	wantStats := r.URL.Query().Get("stats") == "1"
	rt.queries.Add(1)
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	frags := make([][]simrank.ShardCand, n)
	stats := make([]*server.QueryStatsJSON, n)
	errs := make([]error, n)
	fanout(n, func(i int) {
		resp, err := rt.fetchTopK(ctx, t, i, u)
		if err != nil {
			errs[i] = err
			return
		}
		frags[i] = server.FromWire(resp.Frag)
		stats[i] = resp.Stats
	})
	if err := firstError(errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	res, st := simrank.MergeShardTopK(k, t.theta, frags)
	resp := server.TopKResponse{Query: u, Results: resultsJSON(res)}
	if wantStats {
		resp.Stats = mergedStatsJSON(st, stats)
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleTopKBatch(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		server.WriteError(w, http.StatusMethodNotAllowed, server.CodeBadRequest, "POST required")
		return
	}
	var req server.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeBadRequest(w, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeBadRequest(w, "queries must be non-empty")
		return
	}
	if len(req.Queries) > rt.cfg.MaxBatch {
		writeBadRequest(w, fmt.Sprintf("batch size %d exceeds limit %d", len(req.Queries), rt.cfg.MaxBatch))
		return
	}
	if req.K == 0 {
		req.K = 20
	}
	if req.K < 0 || req.K > rt.cfg.MaxK {
		writeBadRequest(w, fmt.Sprintf("k must be in [1, %d]", rt.cfg.MaxK))
		return
	}
	for _, u := range req.Queries {
		if u < 0 || u >= t.vertices {
			writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
			return
		}
	}
	rt.batches.Add(1)
	rt.batchQs.Add(int64(len(req.Queries)))
	for cur := rt.batchMax.Load(); int64(len(req.Queries)) > cur; cur = rt.batchMax.Load() {
		if rt.batchMax.CompareAndSwap(cur, int64(len(req.Queries))) {
			break
		}
	}
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	perShard := make([]server.ShardBatchResponse, n)
	errs := make([]error, n)
	fanout(n, func(i int) {
		m := t.manifests[i]
		payload, err := json.Marshal(server.ShardBatchRequest{Queries: req.Queries, Lo: &m.Lo, Hi: &m.Hi})
		if err != nil {
			errs[i] = err
			return
		}
		body, err := rt.fetch(ctx, t, i, func(ctx context.Context, addr string) ([]byte, error) {
			status, body, err := rt.post(ctx, addr+"/shard/topk/batch", payload)
			if err != nil {
				return nil, err
			}
			if status != http.StatusOK {
				return nil, asUpstreamError(status, body)
			}
			return body, nil
		})
		if err != nil {
			errs[i] = err
			return
		}
		errs[i] = json.Unmarshal(body, &perShard[i])
	})
	if err := firstError(errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	for i := range perShard {
		if len(perShard[i].Results) != len(req.Queries) {
			rt.writeQueryError(w, fmt.Errorf("shard %d answered %d fragments for %d queries",
				i, len(perShard[i].Results), len(req.Queries)))
			return
		}
	}
	resp := server.BatchResponse{K: req.K, Results: make([]server.TopKResponse, len(req.Queries))}
	for q := range req.Queries {
		frags := make([][]simrank.ShardCand, n)
		stats := make([]*server.QueryStatsJSON, n)
		for i := range perShard {
			frags[i] = server.FromWire(perShard[i].Results[q].Frag)
			stats[i] = perShard[i].Results[q].Stats
		}
		res, st := simrank.MergeShardTopK(req.K, t.theta, frags)
		resp.Results[q] = server.TopKResponse{Query: req.Queries[q], Results: resultsJSON(res)}
		if req.Stats {
			resp.Results[q].Stats = mergedStatsJSON(st, stats)
		}
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleSimilar(w http.ResponseWriter, r *http.Request) {
	t, ok := rt.ready(w)
	if !ok {
		return
	}
	u, ok := intParam(w, r, "u", -1)
	if !ok {
		return
	}
	if u < 0 || u >= t.vertices {
		writeBadRequest(w, fmt.Sprintf("vertex %d out of range [0, %d)", u, t.vertices))
		return
	}
	theta := 0.01
	if s := r.URL.Query().Get("theta"); s != "" {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil || f <= 0 || f > 1 {
			writeBadRequest(w, "theta must be a float in (0, 1]")
			return
		}
		theta = f
	}
	rt.similar.Add(1)
	ctx, cancel := rt.queryCtx(r)
	defer cancel()
	start := time.Now()
	n := len(t.addrs)
	frags := make([][]shard.Ranked, n)
	errs := make([]error, n)
	fanout(n, func(i int) {
		m := t.manifests[i]
		body, err := rt.fetch(ctx, t, i, func(ctx context.Context, addr string) ([]byte, error) {
			status, body, err := rt.get(ctx, fmt.Sprintf("%s/shard/similar?u=%d&theta=%s&lo=%d&hi=%d",
				addr, u, strconv.FormatFloat(theta, 'g', -1, 64), m.Lo, m.Hi))
			if err != nil {
				return nil, err
			}
			if status != http.StatusOK {
				return nil, asUpstreamError(status, body)
			}
			return body, nil
		})
		if err != nil {
			errs[i] = err
			return
		}
		var resp server.TopKResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			errs[i] = err
			return
		}
		for _, res := range resp.Results {
			frags[i] = append(frags[i], shard.Ranked{Node: res.Node, Score: res.Score})
		}
	})
	if err := firstError(errs); err != nil {
		rt.writeQueryError(w, err)
		return
	}
	merged := shard.MergeTopK(0, frags)
	out := make([]server.ResultJSON, len(merged))
	for i, m := range merged {
		out[i] = server.ResultJSON{Node: m.Node, Score: m.Score}
	}
	writeJSON(w, http.StatusOK, server.TopKResponse{
		Query:    u,
		Results:  out,
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// ShardStatus is one shard's health as seen from the router.
type ShardStatus struct {
	Shard         int    `json:"shard"`
	Addr          string `json:"addr"`
	RequestsTotal int64  `json:"requests_total"`
	// HedgesFired counts extra attempts launched for this shard's
	// ranges — nonzero means the primary was slow or down.
	HedgesFired      int64 `json:"hedges_fired"`
	AttemptErrsTotal int64 `json:"attempt_errors_total"`
	FailuresTotal    int64 `json:"failures_total"`
	Reachable        bool  `json:"reachable"`
	// Status is the shard server's own /statusz (counters + cache),
	// absent when the server was unreachable just now.
	Status *server.StatuszResponse `json:"status,omitempty"`
}

// RouterStatusz is the payload of the router's /statusz.
type RouterStatusz struct {
	Ready             bool          `json:"ready"`
	NumShards         int           `json:"num_shards"`
	QueriesTotal      int64         `json:"queries_total"`
	BatchesTotal      int64         `json:"batches_total"`
	BatchQueriesTotal int64         `json:"batch_queries_total"`
	BatchSizeMax      int64         `json:"batch_size_max"`
	SimilarTotal      int64         `json:"similar_total"`
	FailuresTotal     int64         `json:"failures_total"`
	Shards            []ShardStatus `json:"shards"`
}

// handleStatusz reports the router's own counters plus a live view of
// every shard: per-shard hedges/failures since start and a reachability
// probe (each shard's /statusz fetched under ProbeTimeout) — the place
// degradation shows up when a shard is slow or down.
func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	resp := RouterStatusz{
		NumShards:         len(rt.cfg.Shards),
		QueriesTotal:      rt.queries.Load(),
		BatchesTotal:      rt.batches.Load(),
		BatchQueriesTotal: rt.batchQs.Load(),
		BatchSizeMax:      rt.batchMax.Load(),
		SimilarTotal:      rt.similar.Load(),
		FailuresTotal:     rt.failures.Load(),
	}
	t := rt.top.Load()
	if t != nil {
		resp.Ready = true
		resp.Shards = make([]ShardStatus, len(t.addrs))
		fanout(len(t.addrs), func(i int) {
			sc := &rt.shards[i]
			ss := ShardStatus{
				Shard:            i,
				Addr:             t.addrs[i],
				RequestsTotal:    sc.requests.Load(),
				HedgesFired:      sc.hedges.Load(),
				AttemptErrsTotal: sc.attemptErrs.Load(),
				FailuresTotal:    sc.failures.Load(),
			}
			pctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ProbeTimeout)
			defer cancel()
			status, body, err := rt.get(pctx, t.addrs[i]+"/statusz")
			if err == nil && status == http.StatusOK {
				var st server.StatuszResponse
				if json.Unmarshal(body, &st) == nil {
					ss.Reachable = true
					ss.Status = &st
				}
			}
			resp.Shards[i] = ss
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	if _, ok := rt.ready(w); !ok {
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// mergedStatsJSON combines the replayed scan counters (byte-identical
// to single-node) with the per-shard cache counters summed (cache state
// is topology-dependent: each shard has its own tally cache).
func mergedStatsJSON(st simrank.QueryStats, perShard []*server.QueryStatsJSON) *server.QueryStatsJSON {
	out := &server.QueryStatsJSON{
		Candidates:    st.Candidates,
		PrunedByBound: st.PrunedByBound,
		PrunedByRough: st.PrunedByRough,
		Refined:       st.Refined,
	}
	for _, s := range perShard {
		if s == nil {
			continue
		}
		out.CacheHits += s.CacheHits
		out.CacheMisses += s.CacheMisses
		out.CacheEvictions += s.CacheEvictions
	}
	return out
}

func resultsJSON(res []simrank.Result) []server.ResultJSON {
	out := make([]server.ResultJSON, len(res))
	for i, r := range res {
		out[i] = server.ResultJSON{Node: r.Node, Score: r.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

func writeBadRequest(w http.ResponseWriter, msg string) {
	server.WriteError(w, http.StatusBadRequest, server.CodeBadRequest, msg)
}

// intParam parses an integer query parameter; def < 0 means required.
func intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		if def >= 0 {
			return def, true
		}
		writeBadRequest(w, fmt.Sprintf("missing required parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		writeBadRequest(w, fmt.Sprintf("parameter %q must be an integer", name))
		return 0, false
	}
	return v, true
}
