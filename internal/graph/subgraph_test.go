package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestInducedSubgraph(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	sub, mapping := InducedSubgraph(g, []uint32{0, 1, 2, 2}) // dup dropped
	if sub.N() != 3 {
		t.Fatalf("n = %d", sub.N())
	}
	if len(mapping) != 3 || mapping[0] != 0 || mapping[1] != 1 || mapping[2] != 2 {
		t.Fatalf("mapping = %v", mapping)
	}
	// Edges inside the set survive; edges out of the set are dropped.
	if sub.M() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatalf("subgraph edges wrong: m=%d", sub.M())
	}
}

func TestExtractBall(t *testing.T) {
	g := Path(10)
	sub, mapping := ExtractBall(g, 5, 2)
	if mapping[0] != 5 {
		t.Fatalf("source not first: %v", mapping)
	}
	if sub.N() != 5 { // vertices 3..7
		t.Fatalf("ball size = %d", sub.N())
	}
	// Connectivity preserved: the ball of a path is a path.
	if sub.M() != 4 {
		t.Fatalf("ball edges = %d", sub.M())
	}
	// Deterministic across calls.
	_, mapping2 := ExtractBall(g, 5, 2)
	for i := range mapping {
		if mapping[i] != mapping2[i] {
			t.Fatal("mapping not deterministic")
		}
	}
}

func TestRelabelBFSIsomorphic(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(30)
		g := ErdosRenyi(n, 3*n, seed)
		root := uint32(r.Intn(n))
		relabeled, order := RelabelBFS(g, root)
		if relabeled.N() != g.N() || relabeled.M() != g.M() {
			return false
		}
		// order is a permutation.
		seen := make([]bool, n)
		for _, old := range order {
			if seen[old] {
				return false
			}
			seen[old] = true
		}
		// Every original edge exists under the relabeling.
		newID := make([]uint32, n)
		for nw, old := range order {
			newID[old] = uint32(nw)
		}
		ok := true
		g.Edges(func(u, v uint32) bool {
			if !relabeled.HasEdge(newID[u], newID[v]) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRelabelBFSRootIsZero(t *testing.T) {
	g := ErdosRenyi(40, 160, 2)
	_, order := RelabelBFS(g, 17)
	if order[0] != 17 {
		t.Fatalf("root relabeled to %d", order[0])
	}
}

func TestRelabelBFSEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	sub, order := RelabelBFS(g, 0)
	if sub.N() != 0 || order != nil {
		t.Fatal("empty relabel wrong")
	}
}

func TestRelabelBFSDisconnected(t *testing.T) {
	// Two components: BFS order covers both.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(4, 5)
	g := b.Build()
	relabeled, order := RelabelBFS(g, 0)
	if relabeled.N() != 6 || len(order) != 6 {
		t.Fatal("disconnected relabel dropped vertices")
	}
}
