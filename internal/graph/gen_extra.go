package graph

import "repro/internal/rng"

// RMAT returns a directed R-MAT (Kronecker-style) random graph with 2^scale
// vertices and ~m edges, using the classic recursive quadrant probabilities
// (a, b, c; d = 1−a−b−c). R-MAT reproduces the heavy-tailed, self-similar
// structure of large web and social graphs and is the standard generator
// for graph benchmarks (Graph500 uses a=0.57, b=0.19, c=0.19).
// Duplicate edges and self-loops are regenerated up to a retry budget, so
// the result can have slightly fewer than m edges on dense settings.
func RMAT(scale int, m int, a, b, c float64, seed uint64) *Graph {
	if scale < 1 {
		scale = 1
	}
	n := 1 << scale
	r := rng.New(seed)
	builder := NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	retries := 0
	for len(seen) < m && retries < 20*m {
		u, v := uint32(0), uint32(0)
		for bit := 0; bit < scale; bit++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < a+b:
				v |= 1 << bit
			case p < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			retries++
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if _, ok := seen[key]; ok {
			retries++
			continue
		}
		seen[key] = struct{}{}
		builder.AddEdge(u, v)
	}
	return builder.Build()
}

// ForestFire returns a directed forest-fire graph (Leskovec et al.):
// each new vertex links to an "ambassador" and then recursively burns
// through the ambassador's neighbourhood with forward probability pFwd
// and backward probability pBwd. Forest fire produces densification and
// shrinking diameters, and like the copying model creates heavily shared
// neighbourhoods — good SimRank-locality workloads.
func ForestFire(n int, pFwd, pBwd float64, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	outs := make([][]uint32, n) // forward links added so far
	ins := make([][]uint32, n)  // backward links
	link := func(u, v uint32) {
		b.AddEdge(u, v)
		outs[u] = append(outs[u], v)
		ins[v] = append(ins[v], u)
	}
	// geometric draws the number of neighbours to burn: Geom(p)/(1-p)
	// style mean p/(1-p), clamped to available.
	geometric := func(p float64, max int) int {
		if p <= 0 || max <= 0 {
			return 0
		}
		k := 0
		for k < max && r.Float64() < p {
			k++
		}
		return k
	}
	for v := 1; v < n; v++ {
		burned := map[uint32]struct{}{uint32(v): {}}
		ambassador := uint32(r.Intn(v))
		frontier := []uint32{ambassador}
		burned[ambassador] = struct{}{}
		link(uint32(v), ambassador)
		for len(frontier) > 0 {
			w := frontier[0]
			frontier = frontier[1:]
			// Burn forward through w's out-links, backward through
			// in-links.
			spread := func(nbrs []uint32, p float64) {
				k := geometric(p, len(nbrs))
				// Sample k distinct neighbours by partial shuffle of a
				// copy.
				cand := make([]uint32, len(nbrs))
				copy(cand, nbrs)
				for i := 0; i < k; i++ {
					j := i + r.Intn(len(cand)-i)
					cand[i], cand[j] = cand[j], cand[i]
					t := cand[i]
					if _, ok := burned[t]; ok {
						continue
					}
					burned[t] = struct{}{}
					link(uint32(v), t)
					frontier = append(frontier, t)
				}
			}
			spread(outs[w], pFwd)
			spread(ins[w], pBwd)
			if len(burned) > 200 {
				break // bound the burn so generation stays near-linear
			}
		}
	}
	return b.Build()
}
