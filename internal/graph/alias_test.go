package graph

import (
	"testing"

	"repro/internal/rng"
)

// referenceStep is the pre-alias kernel: uniform pick via rng.Uint32n.
// The WalkTable draw schema must be byte-compatible with it.
func referenceStep(g *Graph, r *rng.Source, v uint32) uint32 {
	in := g.In(v)
	if len(in) == 0 {
		return NoVertex
	}
	return in[r.Uint32n(uint32(len(in)))]
}

func TestWalkTableTrivialUniform(t *testing.T) {
	g := ErdosRenyi(500, 4, 11)
	wt := g.BuildWalkTable()
	if !wt.Trivial() {
		t.Fatal("uniform table should be trivial")
	}
	if p, a := wt.Slots(); p != nil || a != nil {
		t.Fatal("trivial table should carry no slot arrays")
	}

	// Next must consume rng draws identically to the reference kernel.
	ra, rb := rng.New(42), rng.New(42)
	for i := 0; i < 50000; i++ {
		v := uint32(i % g.N())
		got := wt.Next(ra, v)
		want := referenceStep(g, rb, v)
		if got != want {
			t.Fatalf("step %d from %d: alias kernel picked %d, reference %d", i, v, got, want)
		}
	}
	if ra.Uint64() != rb.Uint64() {
		t.Fatal("alias kernel and reference consumed different draw counts")
	}
}

func TestStepWalksMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"erdosrenyi", ErdosRenyi(300, 3, 5)},
		{"citation", CitationDAG(400, 4, 3)}, // dangling-heavy: many walks die
		{"star", Star(64)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g
			wt := g.BuildWalkTable()
			const walks = 2500 // > StepLane so chunking is exercised
			pos := make([]uint32, walks)
			ref := make([]uint32, walks)
			for i := range pos {
				v := uint32(i % g.N())
				pos[i], ref[i] = v, v
			}
			lane := make([]uint64, 2*StepLane)
			ra, rb := rng.New(7), rng.New(7)
			for step := 0; step < 12; step++ {
				alive := wt.StepWalks(ra, pos, lane)
				refAlive := 0
				for i, v := range ref {
					if v == NoVertex {
						continue
					}
					ref[i] = referenceStep(g, rb, v)
					if ref[i] != NoVertex {
						refAlive++
					}
				}
				if alive != refAlive {
					t.Fatalf("step %d: alive=%d, reference %d", step, alive, refAlive)
				}
				for i := range pos {
					if pos[i] != ref[i] {
						t.Fatalf("step %d walk %d: batched kernel at %d, reference at %d", step, i, pos[i], ref[i])
					}
				}
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatal("batched kernel and reference consumed different draw counts")
			}
		})
	}
}

func TestStepWalksDeadConsumeNothing(t *testing.T) {
	// Vertex 0 has no in-edges, so every walk parked there dies.
	gg := FromEdges(3, []Edge{{0, 1}, {0, 2}})
	wt := gg.BuildWalkTable()
	pos := []uint32{0, NoVertex, 0}
	lane := make([]uint64, 2*len(pos))
	r := rng.New(9)
	before := *r
	if alive := wt.StepWalks(r, pos, lane); alive != 0 {
		t.Fatalf("alive = %d, want 0", alive)
	}
	if *r != before {
		t.Fatal("dead walks consumed rng draws")
	}
	for i, v := range pos {
		if v != NoVertex {
			t.Fatalf("walk %d still at %d", i, v)
		}
	}
}

func TestWalkMatchesNextLoop(t *testing.T) {
	g := PreferentialAttachment(300, 4, 0.3, 13)
	wt := g.BuildWalkTable()
	const T = 10
	out := make([]uint32, T+1)
	ref := make([]uint32, T+1)
	ra, rb := rng.New(3), rng.New(3)
	for u := uint32(0); u < 50; u++ {
		wt.Walk(ra, u, T, out)
		ref[0] = u
		v := u
		for t2 := 1; t2 <= T; t2++ {
			if v != NoVertex {
				v = wt.Next(rb, v)
			}
			ref[t2] = v
		}
		for t2 := range out {
			if out[t2] != ref[t2] {
				t.Fatalf("walk from %d diverges at step %d: %d vs %d", u, t2, out[t2], ref[t2])
			}
		}
	}
}

func TestWalkStridedMatchesNextLoop(t *testing.T) {
	g := CitationDAG(300, 4, 17) // dangling-heavy: exercises death
	wt := g.BuildWalkTable()
	const T, stride = 8, 5
	out := make([]uint32, T*stride+1)
	ra, rb := rng.New(21), rng.New(21)
	for u := uint32(0); u < 60; u++ {
		for i := range out {
			out[i] = 0xdeadbeef
		}
		wt.WalkStrided(ra, u, T, stride, out)
		v := u
		for t2 := 1; t2 <= T; t2++ {
			if v != NoVertex {
				v = wt.Next(rb, v)
			}
			if out[t2*stride] != v {
				t.Fatalf("strided walk from %d diverges at step %d: %d vs %d", u, t2, out[t2*stride], v)
			}
		}
		for i, x := range out {
			if i%stride == 0 && i > 0 {
				continue
			}
			if x != 0xdeadbeef {
				t.Fatalf("strided walk from %d wrote off-stride slot %d", u, i)
			}
		}
	}
	if ra.Uint64() != rb.Uint64() {
		t.Fatal("strided walk and reference consumed different draw counts")
	}
}

// aliasRowDistribution computes the exact sampling distribution a table
// row induces: slot j is proposed with probability 1/d and kept with
// probability prob[j]/2^32, else redirected to alias[j].
func aliasRowDistribution(prob, alias []uint32) []float64 {
	d := len(prob)
	dist := make([]float64, d)
	for j := 0; j < d; j++ {
		keep := float64(prob[j]) / (1 << 32)
		if prob[j] == fullProb {
			keep = 1
		}
		dist[j] += keep / float64(d)
		dist[alias[j]] += (1 - keep) / float64(d)
	}
	return dist
}

func TestWeightedWalkTableVose(t *testing.T) {
	g := FromEdges(5, []Edge{{1, 0}, {2, 0}, {3, 0}, {4, 0}, {0, 1}, {2, 1}})
	w := make([]float64, g.M())
	// Vertex 0's in-row (sources 1,2,3,4) gets skewed weights; vertex 1's
	// row (sources 0,2) gets equal weights.
	start, _ := g.InCSR()
	row0 := []float64{0.5, 0.25, 0.2, 0.05}
	copy(w[start[0]:start[1]], row0)
	w[start[1]] = 3
	w[start[1]+1] = 3
	wt, err := BuildWeightedWalkTable(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if wt.Trivial() {
		t.Fatal("weighted table should not be trivial")
	}
	prob, alias := wt.Slots()
	dist := aliasRowDistribution(prob[start[0]:start[1]], alias[start[0]:start[1]])
	for j, want := range row0 {
		if diff := dist[j] - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("row 0 slot %d: alias distribution %.9f, want %.9f", j, dist[j], want)
		}
	}
	dist1 := aliasRowDistribution(prob[start[1]:start[2]], alias[start[1]:start[2]])
	for j, p := range dist1 {
		if diff := p - 0.5; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("row 1 slot %d: alias distribution %.9f, want 0.5", j, p)
		}
	}

	// Empirical sanity: sampled frequencies from vertex 0 track the weights.
	r := rng.New(1234)
	counts := make(map[uint32]int)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[wt.Next(r, 0)]++
	}
	in := g.In(0)
	for j, src := range in {
		got := float64(counts[src]) / samples
		if diff := got - row0[j]; diff > 0.01 || diff < -0.01 {
			t.Errorf("source %d sampled at %.4f, want %.4f", src, got, row0[j])
		}
	}
}

func TestWeightedWalkTableZeroRowUniform(t *testing.T) {
	g := FromEdges(3, []Edge{{1, 0}, {2, 0}})
	w := []float64{0, 0}
	wt, err := BuildWeightedWalkTable(g, w)
	if err != nil {
		t.Fatal(err)
	}
	prob, alias := wt.Slots()
	for j := range prob {
		if prob[j] != fullProb || alias[j] != uint32(j) {
			t.Fatalf("zero-weight row slot %d: prob=%#x alias=%d, want uniform", j, prob[j], alias[j])
		}
	}
}

func TestBuildWeightedWalkTableErrors(t *testing.T) {
	g := FromEdges(3, []Edge{{1, 0}, {2, 0}})
	if _, err := BuildWeightedWalkTable(g, []float64{1}); err == nil {
		t.Fatal("expected weight-length error")
	}
}

func TestAdoptSlots(t *testing.T) {
	g := FromEdges(3, []Edge{{1, 0}, {2, 0}})
	wt := g.BuildWalkTable()
	if err := wt.AdoptSlots(make([]uint32, 2), make([]uint32, 2)); err != nil {
		t.Fatal(err)
	}
	if wt.Trivial() {
		t.Fatal("adopted slots should make the table non-trivial")
	}
	if err := wt.AdoptSlots(nil, nil); err != nil {
		t.Fatal(err)
	}
	if !wt.Trivial() {
		t.Fatal("nil slots should restore the trivial table")
	}
	if err := wt.AdoptSlots(make([]uint32, 1), make([]uint32, 2)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if err := wt.AdoptSlots(make([]uint32, 2), nil); err == nil {
		t.Fatal("expected nil-mismatch error")
	}
}
