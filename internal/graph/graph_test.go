package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.N(), g.M())
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 2)
	g := b.Build()
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if got := g.Out(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Out(0) = %v", got)
	}
	if got := g.In(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("In(2) = %v", got)
	}
	if g.InDegree(0) != 0 || g.OutDegree(0) != 2 {
		t.Fatalf("degrees of 0: in=%d out=%d", g.InDegree(0), g.OutDegree(0))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderDedupesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // self loop dropped by default
	b.AddEdge(2, 0)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("expected 2 edges after dedup, got %d", g.M())
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	b := NewBuilder(2)
	b.KeepSelfLoops = true
	b.AddEdge(1, 1)
	g := b.Build()
	if g.M() != 1 || !g.HasEdge(1, 1) {
		t.Fatal("self loop not kept")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestTranspose(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {0, 2}})
	tr := g.Transpose()
	if !tr.HasEdge(1, 0) || !tr.HasEdge(2, 1) || !tr.HasEdge(2, 0) {
		t.Fatal("transpose missing edges")
	}
	if tr.M() != g.M() || tr.N() != g.N() {
		t.Fatal("transpose changed size")
	}
	// In/out swap.
	if tr.InDegree(0) != g.OutDegree(0) {
		t.Fatal("transpose degree mismatch")
	}
}

func TestUndirected(t *testing.T) {
	g := Undirected(3, []Edge{{0, 1}, {1, 2}})
	if g.M() != 4 {
		t.Fatalf("undirected edge count = %d, want 4", g.M())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(2, 1) {
		t.Fatal("missing reversed edges")
	}
}

func TestEdgesIteration(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	var got []Edge
	g.Edges(func(u, v uint32) bool {
		got = append(got, Edge{u, v})
		return true
	})
	if len(got) != 3 {
		t.Fatalf("iterated %d edges", len(got))
	}
	// Early stop.
	count := 0
	g.Edges(func(u, v uint32) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop iterated %d", count)
	}
}

// Property: in/out adjacency are consistent views of the same edge set.
func TestInOutConsistency(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		m := r.Intn(4 * n)
		g := ErdosRenyi(n, m, seed)
		// Every out-edge appears as an in-edge and vice versa.
		totalIn := 0
		for v := uint32(0); int(v) < g.N(); v++ {
			totalIn += g.InDegree(v)
			for _, u := range g.In(v) {
				if !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return totalIn == g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := PreferentialAttachment(200, 3, 0.3, 7)
	for v := uint32(0); int(v) < g.N(); v++ {
		if !sort.SliceIsSorted(g.Out(v), func(i, j int) bool { return g.Out(v)[i] < g.Out(v)[j] }) {
			t.Fatalf("Out(%d) unsorted", v)
		}
		if !sort.SliceIsSorted(g.In(v), func(i, j int) bool { return g.In(v)[i] < g.In(v)[j] }) {
			t.Fatalf("In(%d) unsorted", v)
		}
	}
}

func TestStarShape(t *testing.T) {
	g := Star(4)
	// Matches the claw of Example 1: hub 0 with leaves 1..3, undirected.
	if g.M() != 6 {
		t.Fatalf("star(4) m=%d", g.M())
	}
	if g.InDegree(0) != 3 || g.OutDegree(0) != 3 {
		t.Fatal("hub degrees wrong")
	}
	for v := uint32(1); v < 4; v++ {
		if g.InDegree(v) != 1 || g.OutDegree(v) != 1 {
			t.Fatalf("leaf %d degrees wrong", v)
		}
	}
}

func TestDirectedStarDangling(t *testing.T) {
	g := DirectedStar(5)
	if g.InDegree(0) != 4 {
		t.Fatal("hub in-degree wrong")
	}
	for v := uint32(1); v < 5; v++ {
		if g.InDegree(v) != 0 {
			t.Fatalf("leaf %d should have no in-links", v)
		}
	}
}

func TestCycleAndPath(t *testing.T) {
	c := Cycle(5)
	if c.M() != 5 {
		t.Fatal("cycle m wrong")
	}
	for v := uint32(0); v < 5; v++ {
		if c.InDegree(v) != 1 || c.OutDegree(v) != 1 {
			t.Fatal("cycle degree wrong")
		}
	}
	p := Path(5)
	if p.M() != 4 || p.InDegree(0) != 0 || p.OutDegree(4) != 0 {
		t.Fatal("path shape wrong")
	}
}

func TestCompleteGraph(t *testing.T) {
	g := Complete(5)
	if g.M() != 20 {
		t.Fatalf("complete(5) m=%d", g.M())
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatal("grid n wrong")
	}
	// 2 * (#horizontal + #vertical) = 2 * (3*3 + 2*4) = 34
	if g.M() != 34 {
		t.Fatalf("grid m=%d, want 34", g.M())
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(100, 500, 1)
	if g.M() != 500 {
		t.Fatalf("ER m=%d, want 500", g.M())
	}
	g2 := ErdosRenyi(3, 100, 1) // more edges than possible
	if g2.M() != 6 {
		t.Fatalf("saturated ER m=%d, want 6", g2.M())
	}
}

func TestPreferentialAttachmentSkew(t *testing.T) {
	g := PreferentialAttachment(2000, 3, 0.2, 42)
	if g.N() != 2000 {
		t.Fatal("n wrong")
	}
	hist := DegreeHistogram(g, true)
	// Heavy tail: max in-degree far above the mean.
	maxDeg := len(hist) - 1
	mean := float64(g.M()) / float64(g.N())
	if float64(maxDeg) < 5*mean {
		t.Fatalf("PA graph not skewed: max in-degree %d, mean %.1f", maxDeg, mean)
	}
}

func TestCopyingModelLocality(t *testing.T) {
	g := CopyingModel(2000, 5, 0.3, 42)
	if g.N() != 2000 {
		t.Fatal("n wrong")
	}
	// Copying should create shared in-neighbourhoods: some vertex pair
	// must share at least 2 in-neighbours.
	shared := 0
	for v := uint32(0); v < 200; v++ {
		in := g.In(v)
		if len(in) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("copying model produced no shared in-neighbourhoods in sample")
	}
}

func TestCollaborationConnectedish(t *testing.T) {
	g := Collaboration(200, 4, 0.8, 100, 3)
	if g.N() == 0 || g.M() == 0 {
		t.Fatal("collaboration graph empty")
	}
	// Undirected by construction.
	bad := 0
	g.Edges(func(u, v uint32) bool {
		if !g.HasEdge(v, u) {
			bad++
		}
		return true
	})
	if bad > 0 {
		t.Fatalf("%d non-reciprocated edges in collaboration graph", bad)
	}
}

func TestCitationDAGIsAcyclic(t *testing.T) {
	g := CitationDAG(500, 4, 9)
	// All edges point from higher ID to lower ID.
	ok := true
	g.Edges(func(u, v uint32) bool {
		if v >= u {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("citation DAG has a forward edge")
	}
}

func TestBipartiteStructure(t *testing.T) {
	const users, items = 100, 30
	g := BipartiteUserItem(users, items, 5, 4)
	if g.N() != users+items {
		t.Fatal("n wrong")
	}
	bad := false
	g.Edges(func(u, v uint32) bool {
		uIsUser := int(u) < users
		vIsUser := int(v) < users
		if uIsUser == vIsUser {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Fatal("bipartite graph has a same-side edge")
	}
}

func TestGenerateDispatch(t *testing.T) {
	for _, spec := range []GenSpec{
		{Kind: "er", N: 20, M: 40, Seed: 1},
		{Kind: "ba", N: 20, K: 2, P: 0.2, Seed: 1},
		{Kind: "copying", N: 20, K: 2, P: 0.3, Seed: 1},
		{Kind: "collab", N: 10, K: 3, P: 0.8, Seed: 1},
		{Kind: "citation", N: 20, K: 2, Seed: 1},
		{Kind: "bipartite", N: 10, N2: 5, K: 2, Seed: 1},
		{Kind: "rmat", K: 6, M: 100, Seed: 1},
		{Kind: "forestfire", N: 50, P: 0.3, P2: 0.2, Seed: 1},
		{Kind: "star", N: 5},
		{Kind: "cycle", N: 5},
		{Kind: "path", N: 5},
		{Kind: "grid", Rows: 3, Cols: 3},
		{Kind: "complete", N: 4},
	} {
		g, err := Generate(spec)
		if err != nil {
			t.Fatalf("Generate(%q): %v", spec.Kind, err)
		}
		if g.N() == 0 {
			t.Fatalf("Generate(%q): empty graph", spec.Kind)
		}
	}
	if _, err := Generate(GenSpec{Kind: "nope"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PreferentialAttachment(300, 3, 0.2, 5)
	b := PreferentialAttachment(300, 3, 0.2, 5)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
	var ea, eb []Edge
	a.Edges(func(u, v uint32) bool { ea = append(ea, Edge{u, v}); return true })
	b.Edges(func(u, v uint32) bool { eb = append(eb, Edge{u, v}); return true })
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}
