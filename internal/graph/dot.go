package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the graph in Graphviz DOT format. labels may be nil;
// when provided it maps vertex IDs to display labels (useful when the
// graph is a relabeled subgraph — pass the mapping from ExtractBall).
// Graphs beyond a few thousand edges stop being viewable; WriteDOT
// refuses more than maxDOTEdges to avoid accidentally rendering a giant.
func WriteDOT(w io.Writer, g *Graph, labels func(uint32) string) error {
	const maxDOTEdges = 50000
	if g.M() > maxDOTEdges {
		return fmt.Errorf("graph: %d edges exceed the DOT limit of %d; extract a subgraph first", g.M(), maxDOTEdges)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "digraph g {"); err != nil {
		return err
	}
	if labels != nil {
		for v := uint32(0); int(v) < g.N(); v++ {
			if _, err := fmt.Fprintf(bw, "  %d [label=%q];\n", v, labels(v)); err != nil {
				return err
			}
		}
	}
	var werr error
	g.Edges(func(u, v uint32) bool {
		if _, err := fmt.Fprintf(bw, "  %d -> %d;\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
