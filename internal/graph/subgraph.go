package graph

import "sort"

// Subgraph extraction and relabeling utilities. Queries only ever look at
// a small neighbourhood of the query vertex (paper Section 5), so being
// able to pull that neighbourhood out — with a mapping back to original
// IDs — is useful for debugging, visualization, and testing locality
// arguments. BFS relabeling additionally improves cache behaviour of the
// CSR arrays on graphs whose natural IDs are scattered.

// InducedSubgraph returns the subgraph induced by the given vertices plus
// a mapping from new (dense) IDs to the original IDs. Vertices are
// deduplicated; edges with an endpoint outside the set are dropped.
func InducedSubgraph(g *Graph, vertices []uint32) (*Graph, []uint32) {
	uniq := make([]uint32, 0, len(vertices))
	seen := make(map[uint32]uint32, len(vertices))
	for _, v := range vertices {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = uint32(len(uniq))
		uniq = append(uniq, v)
	}
	b := NewBuilder(len(uniq))
	for _, v := range uniq {
		for _, w := range g.Out(v) {
			if nw, ok := seen[w]; ok {
				b.AddEdge(seen[v], nw)
			}
		}
	}
	return b.Build(), uniq
}

// ExtractBall returns the subgraph induced by the undirected ball of the
// given radius around src, together with the new->old ID mapping. The
// source is always new ID 0.
func ExtractBall(g *Graph, src uint32, radius int) (*Graph, []uint32) {
	dist := g.UndirectedBall(src, radius)
	vertices := make([]uint32, 0, len(dist))
	vertices = append(vertices, src)
	for v := range dist {
		if v != src {
			vertices = append(vertices, v)
		}
	}
	// Sort the tail for deterministic output (map iteration order
	// varies); src stays first.
	sort.Slice(vertices[1:], func(i, j int) bool { return vertices[1+i] < vertices[1+j] })
	return InducedSubgraph(g, vertices)
}

// RelabelBFS returns an isomorphic copy of the graph with vertices
// renumbered in undirected BFS order from the given root (unreached
// vertices keep their relative order after all reached ones), plus the
// new->old mapping. Neighbouring vertices end up with nearby IDs, which
// tightens CSR locality for walk-heavy workloads.
func RelabelBFS(g *Graph, root uint32) (*Graph, []uint32) {
	n := g.N()
	if n == 0 {
		return NewBuilder(0).Build(), nil
	}
	dist := g.UndirectedDistances(root, -1)
	// Stable order: by (distance, ID); unreachable (dist -1) last.
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := dist[order[i]], dist[order[j]]
		ri := di == Unreachable
		rj := dj == Unreachable
		if ri != rj {
			return !ri
		}
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	newID := make([]uint32, n) // old -> new
	for nw, old := range order {
		newID[old] = uint32(nw)
	}
	b := NewBuilder(n)
	g.Edges(func(u, v uint32) bool {
		b.AddEdge(newID[u], newID[v])
		return true
	})
	return b.Build(), order
}
