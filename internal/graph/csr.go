package graph

import "fmt"

// FromCSR constructs a Graph directly over caller-provided CSR arrays
// without copying them — the zero-copy path used when serving from a
// memory-mapped index file. The slices are adopted as-is (they may be
// views into a read-only mapping and must not be modified afterwards).
//
// Validation is O(n) on the offset arrays only — monotonicity and
// bounds — never O(m) over the adjacency payload, so adopting a mapped
// multi-GB index stays independent of its size. Adjacency entries are
// range-checked lazily by the uint32 indexing of the consuming kernels.
func FromCSR(n int, inStart, inAdj, outStart, outAdj []uint32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if err := checkOffsets("in", n, inStart, len(inAdj)); err != nil {
		return nil, err
	}
	if err := checkOffsets("out", n, outStart, len(outAdj)); err != nil {
		return nil, err
	}
	if len(inAdj) != len(outAdj) {
		return nil, fmt.Errorf("graph: in/out edge counts differ (%d vs %d)", len(inAdj), len(outAdj))
	}
	return &Graph{
		n:        n,
		inStart:  inStart,
		inAdj:    inAdj,
		outStart: outStart,
		outAdj:   outAdj,
	}, nil
}

func checkOffsets(dir string, n int, start []uint32, m int) error {
	if len(start) != n+1 {
		return fmt.Errorf("graph: %s-offset array has %d entries, want %d", dir, len(start), n+1)
	}
	if start[0] != 0 {
		return fmt.Errorf("graph: %s-offset array starts at %d, want 0", dir, start[0])
	}
	for i := 0; i < n; i++ {
		if start[i+1] < start[i] {
			return fmt.Errorf("graph: %s-offset array decreases at vertex %d", dir, i)
		}
	}
	if int(start[n]) != m {
		return fmt.Errorf("graph: %s-offset array ends at %d, want %d edges", dir, start[n], m)
	}
	return nil
}

// InCSR exposes the in-direction CSR arrays (walk direction) for
// persistence. The slices alias internal storage and must not be
// modified.
func (g *Graph) InCSR() (start, adj []uint32) { return g.inStart, g.inAdj }

// OutCSR exposes the out-direction CSR arrays for persistence. The
// slices alias internal storage and must not be modified.
func (g *Graph) OutCSR() (start, adj []uint32) { return g.outStart, g.outAdj }

// Fingerprint digests the graph structure (vertex count plus both CSR
// directions) into 64 bits. The serving tier puts it in shard manifests
// so a router can verify every shard in a topology holds the identical
// graph before trusting their fragments. FNV-1a over the raw arrays:
// O(n+m), computed once per manifest, not on any query path.
func (g *Graph) Fingerprint() uint64 {
	const prime = 1099511628211
	h := uint64(1469598103934665603)
	mix := func(x uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(x >> s))
			h *= prime
		}
	}
	mix(uint32(g.n))
	for _, xs := range [][]uint32{g.inStart, g.inAdj, g.outStart, g.outAdj} {
		mix(uint32(len(xs)))
		for _, x := range xs {
			mix(x)
		}
	}
	return h
}
