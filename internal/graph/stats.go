package graph

import (
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Stats summarizes structural properties of a graph.
type Stats struct {
	N              int
	M              int
	AvgInDegree    float64
	MaxInDegree    int
	MaxOutDegree   int
	DanglingIn     int // vertices with no in-links (random walks die there)
	DanglingOut    int
	Components     int
	AvgDistance    float64 // sampled average undirected distance between reachable pairs
	EffectiveDiam  int     // 90th percentile of sampled distances
	SampledPairs   int
	ReachablePairs int
}

// ComputeStats gathers structural statistics. avgDistSamples controls how
// many BFS sources are sampled for the distance estimates (0 disables).
func ComputeStats(g *Graph, avgDistSamples int, seed uint64) Stats {
	st := Stats{N: g.N(), M: g.M()}
	if g.N() == 0 {
		return st
	}
	st.AvgInDegree = float64(g.M()) / float64(g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		if d := g.InDegree(v); d > st.MaxInDegree {
			st.MaxInDegree = d
		} else if d == 0 {
			st.DanglingIn++
		}
		if d := g.OutDegree(v); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		} else if d == 0 {
			st.DanglingOut++
		}
	}
	_, st.Components = g.ConnectedComponents()
	if avgDistSamples > 0 {
		st.AvgDistance, st.EffectiveDiam, st.SampledPairs, st.ReachablePairs =
			SampleAverageDistance(g, avgDistSamples, seed)
	}
	return st
}

// SampleAverageDistance estimates the average undirected distance between
// vertex pairs by running BFS from `samples` random sources and averaging
// over all reachable targets. It also returns the 90th-percentile distance
// (effective diameter), the number of sampled sources, and the number of
// reachable (source, target) pairs observed.
//
// This produces the blue baseline line of Figure 2 in the paper.
func SampleAverageDistance(g *Graph, samples int, seed uint64) (avg float64, diam90 int, sampled, reachable int) {
	if g.N() == 0 || samples <= 0 {
		return 0, 0, 0, 0
	}
	r := rng.New(seed)
	exhaustive := samples >= g.N()
	if exhaustive {
		samples = g.N()
	}
	var total int64
	var distCounts []int64 // histogram by distance
	for i := 0; i < samples; i++ {
		src := uint32(i)
		if !exhaustive {
			src = uint32(r.Intn(g.N()))
		}
		dist := g.UndirectedDistances(src, -1)
		for v, d := range dist {
			if d <= 0 || v == int(src) {
				continue
			}
			total += int64(d)
			for int(d) >= len(distCounts) {
				distCounts = append(distCounts, 0)
			}
			distCounts[d]++
			reachable++
		}
	}
	sampled = samples
	if reachable == 0 {
		return 0, 0, sampled, 0
	}
	avg = float64(total) / float64(reachable)
	// 90th percentile of observed distances.
	target := int64(float64(reachable) * 0.9)
	var cum int64
	for d, c := range distCounts {
		cum += c
		if cum >= target {
			diam90 = d
			break
		}
	}
	return avg, diam90, sampled, reachable
}

// DegreeHistogram returns counts[d] = number of vertices with the given
// in-degree (if in is true) or out-degree.
func DegreeHistogram(g *Graph, in bool) []int {
	var counts []int
	for v := uint32(0); int(v) < g.N(); v++ {
		d := g.OutDegree(v)
		if in {
			d = g.InDegree(v)
		}
		for d >= len(counts) {
			counts = append(counts, 0)
		}
		counts[d]++
	}
	return counts
}

// TopByInDegree returns the k vertices with the highest in-degree,
// descending. Useful for picking "hub" query vertices in experiments.
func TopByInDegree(g *Graph, k int) []uint32 {
	type vd struct {
		v uint32
		d int
	}
	all := make([]vd, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		all[v] = vd{v, g.InDegree(v)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d > all[j].d
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}

func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d avg_in_deg=%.2f max_in=%d dangling_in=%d comps=%d avg_dist=%.2f",
		s.N, s.M, s.AvgInDegree, s.MaxInDegree, s.DanglingIn, s.Components, s.AvgDistance)
}
