package graph

import "testing"

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return CopyingModel(20000, 8, 0.3, 1)
}

func BenchmarkBuilderBuild(b *testing.B) {
	src := benchGraph(b)
	var edges []Edge
	src.Edges(func(u, v uint32) bool { edges = append(edges, Edge{u, v}); return true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(src.N(), edges)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(uint32(i % g.N()))
	}
}

func BenchmarkUndirectedBall(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.UndirectedBall(uint32(i%g.N()), 3)
	}
}

func BenchmarkCopyingModelGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CopyingModel(5000, 8, 0.3, uint64(i))
	}
}

func BenchmarkPreferentialAttachmentGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PreferentialAttachment(5000, 8, 0.3, uint64(i))
	}
}

func BenchmarkRMATGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RMAT(13, 40000, 0.57, 0.19, 0.19, uint64(i))
	}
}

func BenchmarkSampleAverageDistance(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleAverageDistance(g, 10, uint64(i))
	}
}
