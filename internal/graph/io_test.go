package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment

0 1
1 2
2 0
0 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 4 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("missing edge")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",            // one field
		"a b\n",          // non-numeric source
		"0 b\n",          // non-numeric target
		"0 -1\n",         // negative
		"0 1 extra\n0\n", // second line bad
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("expected error for %q", in)
		}
	}
}

func TestReadEdgeListVertexCap(t *testing.T) {
	// A single hostile line must not force a giant allocation.
	if _, err := ReadEdgeList(strings.NewReader("4294967295 1\n")); err == nil {
		t.Fatal("expected cap error")
	}
	if _, err := ReadEdgeList(strings.NewReader("1 268435456\n")); err == nil {
		t.Fatal("expected cap error just above the limit")
	}
}

func TestReadBinaryHeaderCap(t *testing.T) {
	var buf bytes.Buffer
	hdr := []uint32{binaryMagic, 1 << 30, 5}
	if err := writeHeader(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("expected header cap error")
	}
}

func writeHeader(buf *bytes.Buffer, hdr []uint32) error {
	for _, v := range hdr {
		b := []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
		if _, err := buf.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ErdosRenyi(50, 200, 3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	g.Edges(func(u, v uint32) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("round trip lost edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestBinaryRoundTrip(t *testing.T) {
	g := PreferentialAttachment(300, 3, 0.2, 11)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("binary round trip changed size: %v vs %v", g2, g)
	}
	g.Edges(func(u, v uint32) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("binary round trip lost edge (%d,%d)", u, v)
		}
		return true
	})
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := ErdosRenyi(20, 40, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated input")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := ErdosRenyi(30, 100, 2)
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("file round trip changed m: %d vs %d", g2.M(), g.M())
	}
}

// failingWriter errors after n bytes, for error-path coverage.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriteFailed
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWriteFailed
	}
	f.n -= len(p)
	return len(p), nil
}

var errWriteFailed = &writeError{}

type writeError struct{}

func (*writeError) Error() string { return "injected write failure" }

func TestWriteEdgeListFailure(t *testing.T) {
	g := ErdosRenyi(100, 400, 1)
	for _, budget := range []int{0, 10, 100} {
		if err := WriteEdgeList(&failingWriter{n: budget}, g); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestWriteBinaryFailure(t *testing.T) {
	g := ErdosRenyi(100, 400, 1)
	for _, budget := range []int{0, 16, 600} {
		if err := WriteBinary(&failingWriter{n: budget}, g); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestSaveToUnwritablePath(t *testing.T) {
	g := ErdosRenyi(5, 10, 1)
	if err := SaveEdgeListFile("/nonexistent-dir/g.txt", g); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := LoadEdgeListFile("/definitely/not/here.txt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
