// Package graph provides the compact directed-graph substrate used by the
// SimRank algorithms: immutable CSR adjacency in both directions, loaders,
// synthetic generators, BFS distance routines, and structural statistics.
//
// Vertices are dense integers in [0, N). The in-adjacency direction is the
// one SimRank random walks follow (a step moves to a uniformly random
// in-neighbour); both directions are stored so queries can also expand
// neighbourhoods and compute undirected distances.
package graph

import (
	"fmt"
	"sort"
)

// NoVertex is the sentinel used for "no vertex", e.g. a dead random walk.
const NoVertex = ^uint32(0)

// Graph is an immutable directed graph in compressed sparse row form.
// Build one with a Builder or FromEdges. The zero value is an empty graph.
type Graph struct {
	n int

	// inStart[v] .. inStart[v+1] indexes inAdj: the in-neighbours of v
	// (sources of edges ending at v). This is the direction SimRank
	// random walks follow.
	inStart []uint32
	inAdj   []uint32

	// outStart/outAdj: out-neighbours of v (targets of edges leaving v).
	outStart []uint32
	outAdj   []uint32
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.inAdj) }

// InDegree returns the number of in-neighbours of v.
func (g *Graph) InDegree(v uint32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutDegree returns the number of out-neighbours of v.
func (g *Graph) OutDegree(v uint32) int {
	return int(g.outStart[v+1] - g.outStart[v])
}

// In returns the in-neighbours of v. The slice aliases internal storage
// and must not be modified.
func (g *Graph) In(v uint32) []uint32 {
	return g.inAdj[g.inStart[v]:g.inStart[v+1]]
}

// Out returns the out-neighbours of v. The slice aliases internal storage
// and must not be modified.
func (g *Graph) Out(v uint32) []uint32 {
	return g.outAdj[g.outStart[v]:g.outStart[v+1]]
}

// HasEdge reports whether the directed edge (u, v) exists.
// Adjacency lists are sorted, so this is a binary search.
func (g *Graph) HasEdge(u, v uint32) bool {
	adj := g.Out(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Edges calls fn for every directed edge (u, v). It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v uint32) bool) {
	for u := uint32(0); int(u) < g.n; u++ {
		for _, v := range g.Out(u) {
			if !fn(u, v) {
				return
			}
		}
	}
}

// Bytes returns the approximate in-memory size of the CSR structure.
func (g *Graph) Bytes() int64 {
	return int64(len(g.inStart)+len(g.inAdj)+len(g.outStart)+len(g.outAdj)) * 4
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.n, g.M())
}

// Edge is a directed edge from U to V.
type Edge struct {
	U, V uint32
}

// Builder accumulates edges and produces an immutable Graph.
// Duplicate edges are removed; self-loops are kept or dropped according
// to KeepSelfLoops (SimRank's definition is usually applied to graphs
// without self-loops, so the default drops them).
type Builder struct {
	n             int
	edges         []Edge
	KeepSelfLoops bool
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the directed edge (u, v). It panics if either endpoint
// is out of range.
func (b *Builder) AddEdge(u, v uint32) {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, b.n))
	}
	if u == v && !b.KeepSelfLoops {
		return
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Grow ensures the builder accommodates at least n vertices.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// N returns the current number of vertices.
func (b *Builder) N() int { return b.n }

// Build produces the immutable Graph. The builder may be reused afterwards
// but retains its edges; call Reset to clear.
func (b *Builder) Build() *Graph {
	// Sort by (U, V) to dedupe and produce sorted out-adjacency.
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	dedup := b.edges[:0:len(b.edges)]
	var last Edge
	for i, e := range b.edges {
		if i > 0 && e == last {
			continue
		}
		dedup = append(dedup, e)
		last = e
	}
	b.edges = dedup

	g := &Graph{n: b.n}
	m := len(b.edges)
	g.outStart = make([]uint32, b.n+1)
	g.outAdj = make([]uint32, m)
	g.inStart = make([]uint32, b.n+1)
	g.inAdj = make([]uint32, m)

	for _, e := range b.edges {
		g.outStart[e.U+1]++
		g.inStart[e.V+1]++
	}
	for i := 0; i < b.n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	outPos := make([]uint32, b.n)
	inPos := make([]uint32, b.n)
	for _, e := range b.edges {
		g.outAdj[g.outStart[e.U]+outPos[e.U]] = e.V
		outPos[e.U]++
		g.inAdj[g.inStart[e.V]+inPos[e.V]] = e.U
		inPos[e.V]++
	}
	// Both adjacency arrays come out sorted: edges were ordered by (U, V),
	// so each out-list is filled in increasing target order and each
	// in-list in increasing source order.
	return g
}

// Reset clears accumulated edges, keeping the vertex count.
func (b *Builder) Reset() { b.edges = b.edges[:0] }

// FromEdges builds a graph with n vertices and the given directed edges.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// Undirected builds a graph from the given edges with both directions
// added for each edge, which is how SimRank treats undirected networks.
func Undirected(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
		b.AddEdge(e.V, e.U)
	}
	return b.Build()
}

// Transpose returns the graph with all edges reversed.
func (g *Graph) Transpose() *Graph {
	t := &Graph{
		n:        g.n,
		inStart:  g.outStart,
		inAdj:    g.outAdj,
		outStart: g.inStart,
		outAdj:   g.inAdj,
	}
	return t
}
