package graph

import (
	"fmt"

	"repro/internal/rng"
)

// This file implements the synthetic workload generators that stand in for
// the paper's datasets (Table 2). Each generator targets one structural
// class from the evaluation:
//
//   - collaboration networks (ca-GrQc, ca-HepTh): clustered, undirected,
//     low degree, high triangle density -> Collaboration (community model
//     with dense intra-community wiring).
//   - social / voting networks (wiki-Vote, soc-Epinions, soc-Slashdot,
//     soc-LiveJournal): heavy-tailed directed graphs -> PreferentialAttachment.
//   - web graphs (web-Stanford, web-BerkStan, web-Google, in-2004,
//     it-2004): copying model, which reproduces the tight SimRank
//     locality the paper exploits -> CopyingModel.
//   - citation networks (Cora, cit-HepTh): time-ordered DAGs with
//     preferential citing -> CitationDAG.
//   - user-item graphs for the recommender example -> BipartiteUserItem.
//
// Plus small deterministic graphs (Star, Cycle, Grid, Complete, Path)
// used heavily by the unit and property tests.

// containsU32 reports whether xs contains x. The chosen-lists it serves
// are tiny (per-vertex degree), so linear scan beats a map.
func containsU32(xs []uint32, x uint32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Star returns the star graph of order n: edges i->0 for i=1..n-1 plus
// 0->i, matching the "claw" example of Section 3.1 when n=4 (undirected).
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := uint32(1); int(i) < n; i++ {
		b.AddEdge(i, 0)
		b.AddEdge(0, i)
	}
	return b.Build()
}

// DirectedStar returns the star with edges pointing only at the hub,
// i->0 for i=1..n-1. All in-link random walks from leaves die after one
// step (the hub has in-links; leaves have none).
func DirectedStar(n int) *Graph {
	b := NewBuilder(n)
	for i := uint32(1); int(i) < n; i++ {
		b.AddEdge(i, 0)
	}
	return b.Build()
}

// Cycle returns the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(uint32(i), uint32((i+1)%n))
	}
	return b.Build()
}

// Path returns the directed path 0 -> 1 -> ... -> n-1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(uint32(i), uint32(i+1))
	}
	return b.Build()
}

// Complete returns the complete directed graph on n vertices (no self
// loops).
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := uint32(0); int(i) < n; i++ {
		for j := uint32(0); int(j) < n; j++ {
			if i != j {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// Grid returns the rows x cols undirected grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) uint32 { return uint32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
				b.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
				b.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	return b.Build()
}

// ErdosRenyi returns a directed G(n, m) random graph with approximately m
// distinct edges (duplicates are regenerated).
func ErdosRenyi(n, m int, seed uint64) *Graph {
	if n < 2 {
		return NewBuilder(n).Build()
	}
	r := rng.New(seed)
	b := NewBuilder(n)
	seen := make(map[uint64]struct{}, m)
	for len(seen) < m && len(seen) < n*(n-1) {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		if u == v {
			continue
		}
		key := uint64(u)<<32 | uint64(v)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(u, v)
	}
	return b.Build()
}

// PreferentialAttachment returns a directed Barabási–Albert style graph:
// vertices arrive one at a time and attach k out-edges to earlier vertices
// chosen preferentially by in-degree (plus one smoothing). With mutual
// probability pMutual each edge is reciprocated, which mimics the partial
// reciprocity of social networks like soc-LiveJournal.
func PreferentialAttachment(n, k int, pMutual float64, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	if n == 0 {
		return b.Build()
	}
	// targets is a repeated-endpoint list: each vertex appears once per
	// unit of (in-degree + 1), so sampling uniformly from it implements
	// preferential attachment with add-one smoothing.
	targets := make([]uint32, 0, 2*n*k)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		deg := k
		if v < k {
			deg = v
		}
		chosen := make([]uint32, 0, deg)
		for len(chosen) < deg {
			t := targets[r.Intn(len(targets))]
			if int(t) == v || containsU32(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			b.AddEdge(uint32(v), t)
			targets = append(targets, t)
			if pMutual > 0 && r.Float64() < pMutual {
				b.AddEdge(t, uint32(v))
				targets = append(targets, uint32(v))
			}
		}
		targets = append(targets, uint32(v))
	}
	return b.Build()
}

// CopyingModel returns a directed web-like graph following the copying
// model of Kumar et al.: each new page picks a random existing prototype
// page and creates k out-links; each link copies the corresponding link of
// the prototype with probability 1-beta and otherwise points to a uniform
// random earlier page. Copying creates many pages with identical or
// near-identical in-link sets, exactly the structure that gives web graphs
// their strong SimRank locality (paper Section 5, Figure 2).
func CopyingModel(n, k int, beta float64, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	outs := make([][]uint32, n)
	for v := 0; v < n; v++ {
		if v == 0 {
			continue
		}
		proto := uint32(r.Intn(v))
		links := make([]uint32, 0, k)
		for i := 0; i < k; i++ {
			var t uint32
			if i < len(outs[proto]) && r.Float64() >= beta {
				t = outs[proto][i] // copy the prototype's i-th link
			} else {
				t = uint32(r.Intn(v)) // fresh uniform link
			}
			if int(t) == v {
				continue
			}
			links = append(links, t)
			b.AddEdge(uint32(v), t)
		}
		outs[v] = links
	}
	return b.Build()
}

// Collaboration returns an undirected collaboration-style network:
// nCommunities cliques-ish groups of sizes drawn around meanSize, wired
// internally with probability pIn, plus random inter-community bridges so
// the graph is (mostly) connected. Mirrors ca-GrQc / ca-HepTh structure:
// small dense groups (papers' author lists) overlapping through shared
// members.
func Collaboration(nCommunities, meanSize int, pIn float64, bridges int, seed uint64) *Graph {
	if meanSize < 2 {
		meanSize = 2
	}
	r := rng.New(seed)
	type community []uint32
	var comms []community
	n := 0
	for i := 0; i < nCommunities; i++ {
		size := 2 + r.Intn(2*meanSize-3+1) // uniform in [2, 2*meanSize-2], mean ~ meanSize
		c := make(community, size)
		for j := range c {
			// With 30% probability reuse an existing vertex (overlapping
			// communities, i.e. authors on multiple papers).
			if n > 0 && r.Float64() < 0.3 {
				c[j] = uint32(r.Intn(n))
			} else {
				c[j] = uint32(n)
				n++
			}
		}
		comms = append(comms, c)
	}
	b := NewBuilder(n)
	addBoth := func(u, v uint32) {
		if u != v {
			b.AddEdge(u, v)
			b.AddEdge(v, u)
		}
	}
	for _, c := range comms {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if r.Float64() < pIn {
					addBoth(c[i], c[j])
				}
			}
		}
	}
	for i := 0; i < bridges && n >= 2; i++ {
		addBoth(uint32(r.Intn(n)), uint32(r.Intn(n)))
	}
	return b.Build()
}

// CitationDAG returns a time-ordered citation network: paper v cites k
// earlier papers, preferring recent and highly cited ones. Mirrors
// Cora / cit-HepTh.
func CitationDAG(n, k int, seed uint64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	cites := make([]uint32, 0, n*k) // preferential pool by citation count
	for v := 1; v < n; v++ {
		deg := k
		if v < k {
			deg = v
		}
		chosen := make([]uint32, 0, deg)
		for len(chosen) < deg {
			var t uint32
			switch {
			case len(cites) > 0 && r.Float64() < 0.5:
				t = cites[r.Intn(len(cites))] // preferential by citations
			case r.Float64() < 0.7:
				// Recency: one of the last ~50 papers.
				window := 50
				if v < window {
					window = v
				}
				t = uint32(v - 1 - r.Intn(window))
			default:
				t = uint32(r.Intn(v))
			}
			if int(t) >= v || containsU32(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			b.AddEdge(uint32(v), t)
			cites = append(cites, t)
		}
	}
	return b.Build()
}

// BipartiteUserItem returns a bipartite user->item graph with nUsers users
// (IDs [0, nUsers)) and nItems items (IDs [nUsers, nUsers+nItems)).
// Each user rates ~ratingsPerUser items with popularity skew; edges are
// added in both directions so SimRank relates items through co-raters.
func BipartiteUserItem(nUsers, nItems, ratingsPerUser int, seed uint64) *Graph {
	r := rng.New(seed)
	n := nUsers + nItems
	b := NewBuilder(n)
	pool := make([]uint32, 0, nUsers*ratingsPerUser+nItems)
	for i := 0; i < nItems; i++ {
		pool = append(pool, uint32(nUsers+i))
	}
	for u := 0; u < nUsers; u++ {
		k := 1 + r.Intn(2*ratingsPerUser-1) // mean ~ ratingsPerUser
		chosen := make([]uint32, 0, k)
		for len(chosen) < k && len(chosen) < nItems {
			it := pool[r.Intn(len(pool))]
			if containsU32(chosen, it) {
				continue
			}
			chosen = append(chosen, it)
		}
		for _, it := range chosen {
			b.AddEdge(uint32(u), it)
			b.AddEdge(it, uint32(u))
			pool = append(pool, it) // popularity feedback
		}
	}
	return b.Build()
}

// GenSpec names a generator with its parameters, so dataset catalogs and
// CLI tools can describe graphs declaratively.
type GenSpec struct {
	Kind string // "er", "ba", "copying", "collab", "citation", "bipartite", "rmat", "forestfire", "star", "cycle", "grid", "complete", "path"
	N    int
	M    int     // edge count (er, rmat)
	K    int     // per-vertex edges (ba, copying, citation) / ratings (bipartite) / scale (rmat)
	P    float64 // model probability (ba: pMutual; copying: beta; collab: pIn; forestfire: pFwd)
	P2   float64 // secondary probability (forestfire: pBwd)
	Rows int     // grid
	Cols int     // grid
	N2   int     // bipartite: nItems
	Seed uint64
}

// Generate builds the graph described by the spec.
func Generate(s GenSpec) (*Graph, error) {
	switch s.Kind {
	case "er":
		return ErdosRenyi(s.N, s.M, s.Seed), nil
	case "ba":
		return PreferentialAttachment(s.N, s.K, s.P, s.Seed), nil
	case "copying":
		return CopyingModel(s.N, s.K, s.P, s.Seed), nil
	case "collab":
		return Collaboration(s.N, s.K, s.P, s.N/10+1, s.Seed), nil
	case "citation":
		return CitationDAG(s.N, s.K, s.Seed), nil
	case "bipartite":
		return BipartiteUserItem(s.N, s.N2, s.K, s.Seed), nil
	case "rmat":
		return RMAT(s.K, s.M, 0.57, 0.19, 0.19, s.Seed), nil
	case "forestfire":
		return ForestFire(s.N, s.P, s.P2, s.Seed), nil
	case "star":
		return Star(s.N), nil
	case "cycle":
		return Cycle(s.N), nil
	case "path":
		return Path(s.N), nil
	case "grid":
		return Grid(s.Rows, s.Cols), nil
	case "complete":
		return Complete(s.N), nil
	default:
		return nil, fmt.Errorf("graph: unknown generator kind %q", s.Kind)
	}
}
