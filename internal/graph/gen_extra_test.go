package graph

import "testing"

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 7)
	if g.N() != 1024 {
		t.Fatalf("n = %d, want 1024", g.N())
	}
	if g.M() < 3000 {
		t.Fatalf("m = %d, want near 4000", g.M())
	}
	// Heavy tail: max in-degree far above the mean.
	hist := DegreeHistogram(g, true)
	maxDeg := len(hist) - 1
	mean := float64(g.M()) / float64(g.N())
	if float64(maxDeg) < 4*mean {
		t.Fatalf("R-MAT not skewed: max in-degree %d, mean %.1f", maxDeg, mean)
	}
	// No self loops.
	bad := false
	g.Edges(func(u, v uint32) bool {
		if u == v {
			bad = true
			return false
		}
		return true
	})
	if bad {
		t.Fatal("R-MAT produced a self loop")
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(8, 1000, 0.57, 0.19, 0.19, 3)
	b := RMAT(8, 1000, 0.57, 0.19, 0.19, 3)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
	var ea, eb []Edge
	a.Edges(func(u, v uint32) bool { ea = append(ea, Edge{u, v}); return true })
	b.Edges(func(u, v uint32) bool { eb = append(eb, Edge{u, v}); return true })
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edges differ")
		}
	}
}

func TestRMATSmallScaleClamped(t *testing.T) {
	g := RMAT(0, 10, 0.25, 0.25, 0.25, 1)
	if g.N() != 2 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestForestFireShape(t *testing.T) {
	g := ForestFire(2000, 0.35, 0.2, 5)
	if g.N() != 2000 {
		t.Fatalf("n = %d", g.N())
	}
	// Every vertex after 0 links to at least its ambassador.
	if g.M() < 1999 {
		t.Fatalf("m = %d, want >= 1999", g.M())
	}
	// Densification: forest fire should produce noticeably more than one
	// edge per vertex at these burn probabilities.
	if float64(g.M())/float64(g.N()) < 1.2 {
		t.Fatalf("no densification: m/n = %.2f", float64(g.M())/float64(g.N()))
	}
	// Weakly connected by construction (every vertex attaches to an
	// earlier one).
	_, count := g.ConnectedComponents()
	if count != 1 {
		t.Fatalf("components = %d, want 1", count)
	}
}

func TestForestFireDeterministic(t *testing.T) {
	a := ForestFire(500, 0.3, 0.2, 9)
	b := ForestFire(500, 0.3, 0.2, 9)
	if a.M() != b.M() {
		t.Fatal("same seed, different edge counts")
	}
}
