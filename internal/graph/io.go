package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list, one "u v" pair per
// line, in the format used by SNAP datasets. Lines starting with '#' or
// '%' are comments. Vertex IDs are kept as-is and the vertex count is
// 1 + the maximum ID seen.
//
// As a safeguard against hostile or corrupt files, vertex IDs are capped
// at MaxEdgeListVertex: a single bogus line like "4294967295 1" would
// otherwise force a multi-gigabyte CSR allocation. Larger graphs should
// use the binary format with densely renumbered IDs.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected \"u v\", got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		if u > MaxEdgeListVertex || v > MaxEdgeListVertex {
			return nil, fmt.Errorf("graph: line %d: vertex ID beyond the %d cap; renumber IDs densely", lineNo, MaxEdgeListVertex)
		}
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
		edges = append(edges, Edge{uint32(u), uint32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return FromEdges(maxID+1, edges), nil
}

// MaxEdgeListVertex bounds vertex IDs accepted by ReadEdgeList
// (~134M; the resulting CSR offset arrays stay around 1 GB).
const MaxEdgeListVertex = 1<<27 - 1

// WriteEdgeList writes the graph as a "u v" per line edge list with a
// header comment recording n and m.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# n=%d m=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v uint32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// LoadEdgeListFile reads an edge-list file from disk.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// SaveEdgeListFile writes the graph to an edge-list file on disk.
func SaveEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// binaryMagic identifies the compact binary graph format.
const binaryMagic = 0x53524B47 // "GKRS"

// WriteBinary writes the graph in a compact little-endian binary format:
// magic, n, m, then the out-edge CSR arrays. Much faster to reload than
// text edge lists for large graphs.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, uint32(g.n), uint32(g.M())}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outStart); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.outAdj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var hdr [3]uint32
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	n, m := int(hdr[1]), int(hdr[2])
	// Guard the upcoming allocations against corrupt headers.
	const maxDim = 1 << 28
	if n > maxDim || m > maxDim {
		return nil, fmt.Errorf("graph: header claims n=%d m=%d, beyond the %d limit", n, m, maxDim)
	}
	outStart := make([]uint32, n+1)
	outAdj := make([]uint32, m)
	if err := binary.Read(br, binary.LittleEndian, outStart); err != nil {
		return nil, fmt.Errorf("graph: reading CSR offsets: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, outAdj); err != nil {
		return nil, fmt.Errorf("graph: reading CSR adjacency: %w", err)
	}
	if int(outStart[n]) != m {
		return nil, fmt.Errorf("graph: corrupt CSR: offsets end at %d, want %d", outStart[n], m)
	}
	// Validate and rebuild through the builder so the in-direction and
	// all invariants (sortedness, range checks) are re-established.
	b := NewBuilder(n)
	b.KeepSelfLoops = true
	for u := 0; u < n; u++ {
		lo, hi := outStart[u], outStart[u+1]
		if lo > hi || int(hi) > m {
			return nil, fmt.Errorf("graph: corrupt CSR offsets at vertex %d", u)
		}
		for _, v := range outAdj[lo:hi] {
			if int(v) >= n {
				return nil, fmt.Errorf("graph: corrupt CSR: edge (%d,%d) out of range", u, v)
			}
			b.AddEdge(uint32(u), v)
		}
	}
	return b.Build(), nil
}
