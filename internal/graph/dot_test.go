package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph g {", "0 -> 1;", "1 -> 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWriteDOTLabels(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1}})
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, func(v uint32) string { return fmt.Sprintf("node-%d", v) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="node-0"`) {
		t.Fatalf("labels missing:\n%s", buf.String())
	}
}

func TestWriteDOTRefusesGiant(t *testing.T) {
	g := ErdosRenyi(400, 60000, 1)
	if g.M() <= 50000 {
		t.Skip("generator produced fewer edges than the limit")
	}
	if err := WriteDOT(&bytes.Buffer{}, g, nil); err == nil {
		t.Fatal("expected refusal for giant graph")
	}
}

func TestWriteDOTFailure(t *testing.T) {
	g := ErdosRenyi(50, 200, 1)
	if err := WriteDOT(&failingWriter{n: 10}, g, nil); err == nil {
		t.Fatal("expected write error")
	}
}
