package graph

import (
	"math"
	"testing"
)

func TestComputeStatsPath(t *testing.T) {
	g := Path(4) // 0->1->2->3
	st := ComputeStats(g, 4, 1)
	if st.N != 4 || st.M != 3 {
		t.Fatalf("n=%d m=%d", st.N, st.M)
	}
	if st.DanglingIn != 1 { // vertex 0 has no in-links
		t.Fatalf("dangling in = %d, want 1", st.DanglingIn)
	}
	if st.DanglingOut != 1 { // vertex 3 has no out-links
		t.Fatalf("dangling out = %d, want 1", st.DanglingOut)
	}
	if st.Components != 1 {
		t.Fatalf("components = %d", st.Components)
	}
	if st.AvgDistance <= 0 {
		t.Fatal("average distance not computed")
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	st := ComputeStats(g, 10, 1)
	if st.N != 0 || st.AvgDistance != 0 {
		t.Fatalf("unexpected stats for empty graph: %+v", st)
	}
}

func TestSampleAverageDistanceExactOnPath(t *testing.T) {
	// On the path graph with all sources sampled, the average undirected
	// distance over ordered reachable pairs of P_n is (n+1)/3.
	n := 7
	g := Path(n)
	avg, _, sampled, reach := SampleAverageDistance(g, n, 99)
	if sampled != n {
		t.Fatalf("sampled = %d", sampled)
	}
	if reach != n*(n-1) {
		t.Fatalf("reachable pairs = %d, want %d", reach, n*(n-1))
	}
	want := float64(n+1) / 3
	if math.Abs(avg-want) > 1e-9 {
		t.Fatalf("avg distance = %f, want %f", avg, want)
	}
}

func TestSampleAverageDistanceDisconnected(t *testing.T) {
	g := NewBuilder(10).Build() // 10 isolated vertices
	avg, diam, _, reach := SampleAverageDistance(g, 10, 1)
	if avg != 0 || diam != 0 || reach != 0 {
		t.Fatalf("expected zero stats on edgeless graph, got avg=%f diam=%d reach=%d", avg, diam, reach)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := DirectedStar(5) // hub in-degree 4, leaves 0
	h := DegreeHistogram(g, true)
	if h[0] != 4 || h[4] != 1 {
		t.Fatalf("in-degree histogram wrong: %v", h)
	}
	ho := DegreeHistogram(g, false)
	if ho[1] != 4 || ho[0] != 1 {
		t.Fatalf("out-degree histogram wrong: %v", ho)
	}
}

func TestTopByInDegree(t *testing.T) {
	g := DirectedStar(6)
	top := TopByInDegree(g, 2)
	if len(top) != 2 || top[0] != 0 {
		t.Fatalf("top by in-degree = %v", top)
	}
	all := TopByInDegree(g, 100)
	if len(all) != 6 {
		t.Fatalf("k clamp failed: %d", len(all))
	}
}

func TestStatsStringNonEmpty(t *testing.T) {
	st := ComputeStats(Star(4), 0, 0)
	if st.String() == "" {
		t.Fatal("empty string")
	}
}
