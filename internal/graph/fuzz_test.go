package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks that arbitrary text never panics the parser and
// that accepted graphs re-serialize losslessly.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n\n3 4\n")
	f.Add("0 0\n")
	f.Add("4294967295 1\n")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add(strings.Repeat("0 1\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted graphs round-trip.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("round trip changed m: %d vs %d", g2.M(), g.M())
		}
	})
}

// FuzzReadBinary checks the binary loader against corrupt input.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, ErdosRenyi(20, 50, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:8])
	corrupted := append([]byte(nil), valid.Bytes()...)
	if len(corrupted) > 20 {
		corrupted[16] ^= 0xff
	}
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Whatever loads must be internally consistent.
		total := 0
		for v := uint32(0); int(v) < g.N(); v++ {
			total += g.OutDegree(v)
			for _, w := range g.Out(v) {
				if int(w) >= g.N() {
					t.Fatalf("edge target %d out of range %d", w, g.N())
				}
			}
		}
		if total != g.M() {
			t.Fatalf("degree sum %d != m %d", total, g.M())
		}
	})
}
