package graph

import (
	"fmt"
	"math/bits"

	"repro/internal/rng"
)

// WalkTable is the random-walk sampling kernel over a graph's in-CSR: a
// Walker/Vose alias table per vertex, stored flat and parallel to the
// in-edge layout (slot j of vertex v lives at inStart[v]+j, exactly like
// inAdj). One bounded draw picks an in-neighbour in O(1) regardless of
// the slot weights.
//
// Draw schema (the determinism contract every walk component pins): each
// live walk consumes ONE bounded-uniform draw per step — Lemire's
// multiply-shift with bounded rejection, byte-compatible with
// rng.Uint32n — whose quotient selects the slot and whose fractional
// remainder decides alias acceptance. Dead walks and in-degree-zero
// vertices consume nothing. The schema is consumed identically on the
// alias fast path and the uniform fallback: SimRank's walk distribution
// is uniform over in-neighbours, so its alias tables are degenerate
// (every slot keeps itself with probability 1) and are represented
// implicitly — prob/alias stay nil, no acceptance test runs, and the
// picked slot IS the neighbour, which is bit-for-bit what the explicit
// degenerate table would return. Weighted tables materialize prob/alias
// and run the acceptance test; the slot draw is unchanged.
type WalkTable struct {
	start []uint32 // in-CSR row offsets, aliases the graph's inStart
	adj   []uint32 // in-CSR adjacency, aliases the graph's inAdj

	// prob[k] is slot k's acceptance threshold: the draw keeps slot k
	// when the fractional remainder is < prob[k], and redirects to
	// alias[k] (a slot index relative to the vertex's row) otherwise.
	// Both are nil for uniform (degenerate) tables.
	prob  []uint32
	alias []uint32
}

// fullProb is the saturated acceptance threshold: a slot with weight
// exactly 1/deg keeps itself for every fractional remainder except
// ^uint32(0) (probability 2⁻³²), which is why full slots always alias to
// themselves — the residual redirect must be a no-op.
const fullProb = ^uint32(0)

// walkTableSize enforces the batched kernel's vertex-id ceiling: the
// branch-free dead-walk handling sign-extends positions, so live vertex
// ids must stay below 2^31 (NoVertex is the only id with the top bit
// set). A graph that large would need >16 GiB of CSR alone, so the
// guard is theoretical — but it keeps the kernel honest.
func walkTableSize(n int) {
	if n >= 1<<31 {
		panic("graph: walk tables support at most 2^31-1 vertices")
	}
}

// BuildWalkTable returns the uniform in-neighbour sampling table SimRank
// walks use. Uniform tables are degenerate, so this is O(1): the table
// aliases the graph's CSR arrays and carries no per-slot state.
func (g *Graph) BuildWalkTable() *WalkTable {
	walkTableSize(g.n)
	return &WalkTable{start: g.inStart, adj: g.inAdj}
}

// BuildWeightedWalkTable returns a sampling table where in-edge k of the
// CSR layout is drawn with probability weights[k] (normalized per
// vertex). Rows whose weights are all zero fall back to uniform. Used by
// weighted-walk extensions and by tests; SimRank itself always samples
// uniformly.
func BuildWeightedWalkTable(g *Graph, weights []float64) (*WalkTable, error) {
	walkTableSize(g.n)
	if len(weights) != len(g.inAdj) {
		return nil, fmt.Errorf("graph: %d weights for %d in-edges", len(weights), len(g.inAdj))
	}
	wt := &WalkTable{
		start: g.inStart,
		adj:   g.inAdj,
		prob:  make([]uint32, len(g.inAdj)),
		alias: make([]uint32, len(g.inAdj)),
	}
	var small, large []uint32 // reused slot worklists
	scaled := make([]float64, 0, 64)
	for v := 0; v < g.n; v++ {
		lo, hi := g.inStart[v], g.inStart[v+1]
		if lo == hi {
			continue
		}
		row := weights[lo:hi]
		small, large = buildAliasRow(row, scaled, wt.prob[lo:hi], wt.alias[lo:hi], small, large)
	}
	return wt, nil
}

// buildAliasRow fills one vertex's alias row from its weights using
// Vose's algorithm. Worklists are processed in ascending slot order, so
// the constructed table is a deterministic function of the weights.
func buildAliasRow(w, scaled []float64, prob, alias []uint32, small, large []uint32) ([]uint32, []uint32) {
	d := len(w)
	sum := 0.0
	for _, x := range w {
		if x > 0 {
			sum += x
		}
	}
	if sum <= 0 {
		// Degenerate row: uniform.
		for j := range prob {
			prob[j] = fullProb
			alias[j] = uint32(j)
		}
		return small, large
	}
	scaled = scaled[:0]
	small, large = small[:0], large[:0]
	for j, x := range w {
		if x < 0 {
			x = 0
		}
		p := x * float64(d) / sum
		scaled = append(scaled, p)
		if p < 1 {
			small = append(small, uint32(j))
		} else {
			large = append(large, uint32(j))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		prob[s] = probBits(scaled[s])
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers (either list) have probability 1 up to float error: full
	// acceptance, self alias so the residual redirect is a no-op.
	for _, j := range small {
		prob[j] = fullProb
		alias[j] = j
	}
	for _, j := range large {
		prob[j] = fullProb
		alias[j] = j
	}
	return small, large
}

// probBits quantizes an acceptance probability in [0, 1] to the 32-bit
// threshold compared against the draw's fractional remainder.
func probBits(p float64) uint32 {
	if p >= 1 {
		return fullProb
	}
	if p <= 0 {
		return 0
	}
	return uint32(p * (1 << 32))
}

// Trivial reports whether the table is a degenerate uniform table (no
// per-slot state, acceptance never consulted).
func (wt *WalkTable) Trivial() bool { return wt.prob == nil }

// Slots exposes the flat per-slot acceptance/redirect arrays for
// persistence; both are nil for trivial tables.
func (wt *WalkTable) Slots() (prob, alias []uint32) { return wt.prob, wt.alias }

// AdoptSlots installs persisted per-slot arrays (e.g. views into a
// mapped index file). nil/nil restores the trivial table.
func (wt *WalkTable) AdoptSlots(prob, alias []uint32) error {
	if (prob == nil) != (alias == nil) || (prob != nil && (len(prob) != len(wt.adj) || len(alias) != len(wt.adj))) {
		return fmt.Errorf("graph: alias slot arrays (%d, %d) do not match %d in-edges", len(prob), len(alias), len(wt.adj))
	}
	wt.prob, wt.alias = prob, alias
	return nil
}

// The draw kernels below run the generator on scalar state words
// (rng.Source.State/SetState) rather than through the *rng.Source
// pointer: a pointer-addressed generator forces a memory round-trip per
// draw, and since the draw stream is the kernels' only loop-carried
// dependency, that round-trip would dominate the whole walk step.
// xoshiroStep and the in-loop rejection reproduce rng.Uint32 /
// rng.Uint32n's slow path bit-for-bit; the equivalence is pinned by
// tests here and by the golden draw-sequence tests in internal/rng.

// xoshiroStep advances the scalar xoshiro256** state one draw and
// returns the new state plus the 32-bit output (the top half of the
// 64-bit result, exactly rng.Uint32). Small enough to inline, so the
// state words stay in registers at every call site.
func xoshiroStep(s0, s1, s2, s3 uint64) (uint64, uint64, uint64, uint64, uint32) {
	x := uint32((bits.RotateLeft64(s1*5, 7) * 9) >> 32)
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return s0, s1, s2, s3, x
}

// lemireSlow finishes a bounded draw whose first attempt landed in the
// biased low region, for the pointer-based single-draw path (Next):
// the standard bounded-rejection loop with the threshold computed once,
// byte-compatible with rng.Uint32n's slow path. Cold — rejection
// triggers with probability < d/2³².
func lemireSlow(r *rng.Source, m uint64, d uint32) uint64 {
	thresh := -d % d
	for uint32(m) < thresh {
		m = uint64(r.Uint32()) * uint64(d)
	}
	return m
}

// Next returns the walk successor of v: NoVertex when v has no
// in-neighbours (the walk dies, no draw consumed), otherwise one bounded
// draw from r picks the slot and — for weighted tables — the acceptance
// test may redirect it. Byte-identical to in[r.Uint32n(deg)] on trivial
// tables.
func (wt *WalkTable) Next(r *rng.Source, v uint32) uint32 {
	lo := wt.start[v]
	d := wt.start[v+1] - lo
	if d == 0 {
		return NoVertex
	}
	m := uint64(r.Uint32()) * uint64(d)
	if uint32(m) < d {
		m = lemireSlow(r, m, d)
	}
	k := lo + uint32(m>>32)
	if wt.prob != nil && uint32(m) >= wt.prob[k] {
		k = lo + wt.alias[k]
	}
	return wt.adj[k]
}

// StepLane bounds the batched kernel's lane working set (16 KiB of
// packed row descriptors plus compacted live indices) so it stays
// L1-resident for any walk count. Callers size their lane scratch as
// 2 × min(walks, StepLane).
const StepLane = 1024

// StepWalks advances every live walk in pos one in-link step; walks at
// in-degree-zero vertices die (set to NoVertex). It returns the number
// of walks still alive. lane is caller-provided scratch of at least
// 2 × min(len(pos), StepLane) entries.
//
// The loop is split into a gather pass (read each live walk's CSR row
// offset and degree, compacting the live walks' lane indices — straight-
// line code with no data-dependent branches, so dead walks cost a few
// ALU ops instead of a branch misprediction, and the independent CSR
// loads overlap their cache misses) and a draw pass (bounded draw +
// neighbour pick over the live walks only, in walk order). Draw order is
// identical to stepping the walks one by one: the gather pass consumes
// no randomness and the compacted indices stay ascending.
//
//lint:hotpath batched walk-step kernel, dominates preprocessing and query cost
func (wt *WalkTable) StepWalks(r *rng.Source, pos []uint32, lane []uint64) int {
	alive := 0
	for len(pos) > 0 {
		chunk := len(pos)
		if chunk > StepLane {
			chunk = StepLane
		}
		alive += wt.stepChunk(r, pos[:chunk], lane)
		pos = pos[chunk:]
	}
	return alive
}

// gatherLive packs each live walk's CSR row (offset<<32 | degree) into
// desc, its lane index into idx — both compacted, ascending — parks
// every position at NoVertex (the draw pass rewrites the live ones),
// and returns the live count. Dead walks are handled branch-free:
// sign-extending NoVertex yields an all-ones mask (live vertex ids stay
// below 2^31 — see the walkTableSize guard) that clamps the row index
// to 0 and the degree to 0 with pure ALU ops, and a dead lane writes
// its slots and simply fails to advance the cursor (a CMOV). A
// live/dead mix is the branch predictor's worst case — the pattern
// changes every step — so it must never reach a branch. Kept as a
// standalone looping function (loops don't inline) so the tight body
// gets its own register file instead of spilling inside stepChunk.
func gatherLive(start, pos []uint32, desc, idx []uint64) int {
	desc = desc[:len(pos)]
	idx = idx[:len(pos)]
	live := 0
	for i, v := range pos {
		mask := uint32(int32(v) >> 31)
		u := v &^ mask
		lo := start[u]
		d := (start[u+1] - lo) &^ mask
		desc[live] = uint64(lo)<<32 | uint64(d)
		idx[live] = uint64(i)
		pos[i] = NoVertex
		if d != 0 {
			live++
		}
	}
	return live
}

// stepChunk is one gather+draw round over at most StepLane walks, built
// from three minimal loops so each stays branch-free and register-
// resident. The live/dead mix of a walk population is the branch
// predictor's worst case (it changes every step), so dead walks must
// cost straight-line ALU work, never a misprediction.
func (wt *WalkTable) stepChunk(r *rng.Source, pos []uint32, lane []uint64) int {
	start := wt.start
	if len(start) < 2 {
		// Vertex-free graph: every walk is (or becomes) dead.
		for i := range pos {
			pos[i] = NoVertex
		}
		return 0
	}
	n := len(pos)
	desc, idx := lane[:n], lane[n:2*n]
	live := gatherLive(start, pos, desc, idx)
	desc, idx = desc[:live], idx[:live]
	if wt.prob == nil {
		drawUniform(r, desc, idx, pos, wt.adj)
	} else {
		drawAlias(r, desc, idx, pos, wt.adj, wt.prob, wt.alias)
	}
	return live
}

// drawUniform is the draw pass over the gathered live walks: one
// bounded draw each, in walk order — identical order and consumption to
// stepping the walks one by one. The degenerate (uniform) table keeps
// every slot, so the acceptance load is skipped entirely — same draws,
// same picks. Standalone looping function for the same register-file
// reason as gatherLive; the rng state lives in scalars for the whole
// pass (a pointer-addressed Source round-trips memory on every draw).
func drawUniform(r *rng.Source, desc, idx []uint64, pos, adj []uint32) {
	idx = idx[:len(desc)]
	s0, s1, s2, s3 := r.State()
	for j, e := range desc {
		d := uint32(e)
		var x uint32
		s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
		m := uint64(x) * uint64(d)
		if uint32(m) < d {
			// Rejection spelled out rather than in a helper: a CALL in
			// the loop — even a cold one — forces the allocator to keep
			// the hot path's slices in memory across iterations.
			for thresh := -d % d; uint32(m) < thresh; {
				s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
				m = uint64(x) * uint64(d)
			}
		}
		pos[idx[j]] = adj[uint32(e>>32)+uint32(m>>32)]
	}
	r.SetState(s0, s1, s2, s3)
}

// drawAlias is drawUniform plus the alias acceptance test: the draw's
// fractional remainder keeps the proposed slot when it lands under
// prob[k], and redirects to alias[k] otherwise.
func drawAlias(r *rng.Source, desc, idx []uint64, pos, adj, prob, alias []uint32) {
	idx = idx[:len(desc)]
	s0, s1, s2, s3 := r.State()
	for j, e := range desc {
		d := uint32(e)
		var x uint32
		s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
		m := uint64(x) * uint64(d)
		if uint32(m) < d {
			for thresh := -d % d; uint32(m) < thresh; { // see drawUniform
				s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
				m = uint64(x) * uint64(d)
			}
		}
		lo := uint32(e >> 32)
		k := lo + uint32(m>>32)
		if uint32(m) >= prob[k] {
			k = lo + alias[k]
		}
		pos[idx[j]] = adj[k]
	}
	r.SetState(s0, s1, s2, s3)
}

// Walk performs one walk of length T from u, recording the position at
// every step into out (len T+1, out[0] = u; steps after death record
// NoVertex).
func (wt *WalkTable) Walk(r *rng.Source, u uint32, T int, out []uint32) {
	out[0] = u
	wt.WalkStrided(r, u, T, 1, out)
}

// WalkStrided advances one walk from u for T steps, writing the
// position after step t to out[t*stride] (out[0] is NOT written). Draw
// consumption is identical to calling Next step by step; the rng state
// lives in scalar locals for the whole trajectory, so per-step draws
// never round-trip through memory. The strided output lets the
// candidate tally kernel write walk-major columns of its step×walk
// position matrix directly.
func (wt *WalkTable) WalkStrided(r *rng.Source, u uint32, T, stride int, out []uint32) {
	start, adj := wt.start, wt.adj
	prob, alias := wt.prob, wt.alias
	s0, s1, s2, s3 := r.State()
	v := u
	for t := 1; t <= T; t++ {
		if v != NoVertex {
			lo := start[v]
			d := start[v+1] - lo
			if d == 0 {
				v = NoVertex
			} else {
				var x uint32
				s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
				m := uint64(x) * uint64(d)
				if uint32(m) < d {
					for thresh := -d % d; uint32(m) < thresh; { // see drawUniform
						s0, s1, s2, s3, x = xoshiroStep(s0, s1, s2, s3)
						m = uint64(x) * uint64(d)
					}
				}
				k := lo + uint32(m>>32)
				if prob != nil && uint32(m) >= prob[k] {
					k = lo + alias[k]
				}
				v = adj[k]
			}
		}
		out[t*stride] = v
	}
	r.SetState(s0, s1, s2, s3)
}
