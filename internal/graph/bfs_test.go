package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i := 0; i < 5; i++ {
		if d[i] != int32(i) {
			t.Fatalf("dist[%d] = %d", i, d[i])
		}
	}
	d = g.BFS(4)
	for i := 0; i < 4; i++ {
		if d[i] != Unreachable {
			t.Fatalf("dist[%d] should be unreachable, got %d", i, d[i])
		}
	}
}

func TestBFSInFollowsInEdges(t *testing.T) {
	g := Path(4) // 0->1->2->3
	d := g.BFSIn(3)
	want := []int32{3, 2, 1, 0}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFSIn dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestUndirectedDistances(t *testing.T) {
	g := Path(5)
	d := g.UndirectedDistances(4, -1)
	for i := 0; i < 5; i++ {
		if d[i] != int32(4-i) {
			t.Fatalf("undirected dist[%d] = %d", i, d[i])
		}
	}
	// With a cap.
	d = g.UndirectedDistances(4, 2)
	if d[2] != 2 || d[1] != Unreachable || d[0] != Unreachable {
		t.Fatalf("capped distances wrong: %v", d)
	}
}

func TestUndirectedBallMatchesFull(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(30)
		g := ErdosRenyi(n, 2*n, seed)
		src := uint32(r.Intn(n))
		maxD := 1 + r.Intn(4)
		full := g.UndirectedDistances(src, maxD)
		ball := g.UndirectedBall(src, maxD)
		for v, d := range full {
			bd, ok := ball[uint32(v)]
			if d == Unreachable {
				if ok {
					return false
				}
				continue
			}
			if !ok || bd != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedBallBudget(t *testing.T) {
	g := Grid(20, 20) // 400 vertices, uniform expansion
	full, trunc := g.UndirectedBallBudget(0, 50, -1)
	if trunc {
		t.Fatal("unlimited budget reported truncation")
	}
	if len(full) != 400 {
		t.Fatalf("full ball size %d", len(full))
	}
	capped, trunc := g.UndirectedBallBudget(0, 50, 50)
	if !trunc {
		t.Fatal("capped ball did not report truncation")
	}
	if len(capped) > 60 { // budget plus one frontier expansion
		t.Fatalf("capped ball size %d", len(capped))
	}
	// Distances in the capped ball are exact.
	for v, d := range capped {
		if full[v] != d {
			t.Fatalf("capped distance for %d is %d, exact %d", v, d, full[v])
		}
	}
	// BFS order means every vertex closer than the max-but-one level is
	// present.
	maxD := int32(0)
	for _, d := range capped {
		if d > maxD {
			maxD = d
		}
	}
	for v, d := range full {
		if d < maxD-1 {
			if _, ok := capped[uint32(v)]; !ok {
				t.Fatalf("vertex %d at distance %d missing from capped ball (maxD %d)", v, d, maxD)
			}
		}
	}
}

// UndirectedBallInto must agree with the map-based UndirectedBallBudget
// on membership, distances, and truncation, and list vertices in
// nondecreasing distance order.
func TestUndirectedBallIntoMatchesMap(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := ErdosRenyi(n, 3*n, seed)
		src := uint32(r.Intn(n))
		maxD := 1 + r.Intn(4)
		budget := -1
		if r.Intn(2) == 0 {
			budget = 1 + r.Intn(n)
		}
		want, wantTrunc := g.UndirectedBallBudget(src, maxD, budget)

		dist := make([]int32, n)
		for i := range dist {
			dist[i] = Unreachable
		}
		ball, trunc := g.UndirectedBallInto(src, maxD, budget, dist, nil)
		if trunc != wantTrunc || len(ball) != len(want) {
			return false
		}
		prev := int32(0)
		for _, v := range ball {
			d, ok := want[v]
			if !ok || dist[v] != d || d < prev {
				return false
			}
			prev = d
		}
		// Untouched entries stay clean.
		touched := map[uint32]bool{}
		for _, v := range ball {
			touched[v] = true
		}
		for v, d := range dist {
			if !touched[uint32(v)] && d != Unreachable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles, disconnected.
	b := NewBuilder(6)
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e.U, e.V)
	}
	g := b.Build()
	comp, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("components = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] {
		t.Fatal("first triangle split")
	}
	if comp[3] != comp[4] || comp[3] != comp[5] {
		t.Fatal("second triangle split")
	}
	if comp[0] == comp[3] {
		t.Fatal("triangles merged")
	}
}

func TestComponentsCountSingletons(t *testing.T) {
	g := NewBuilder(5).Build() // no edges at all
	_, count := g.ConnectedComponents()
	if count != 5 {
		t.Fatalf("components = %d, want 5", count)
	}
}

func TestBFSTriangleInequality(t *testing.T) {
	// Undirected distance must satisfy d(u,w) <= d(u,v) + d(v,w).
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(20)
		g := ErdosRenyi(n, 3*n, seed)
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		du := g.UndirectedDistances(u, -1)
		dv := g.UndirectedDistances(v, -1)
		if du[v] == Unreachable {
			return true
		}
		for w := 0; w < n; w++ {
			if dv[w] == Unreachable {
				continue
			}
			if du[w] == Unreachable || du[w] > du[v]+dv[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
