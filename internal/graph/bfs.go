package graph

// Unreachable is the distance value reported for vertices not reachable
// from the BFS source.
const Unreachable = int32(-1)

// BFS computes directed distances (following out-edges) from src to every
// vertex. dist[v] == Unreachable if v cannot be reached.
func (g *Graph) BFS(src uint32) []int32 {
	return g.bfs(src, g.Out, -1)
}

// BFSIn computes distances from src following in-edges, i.e. the number of
// random-walk steps needed for a walk started at src to reach each vertex.
func (g *Graph) BFSIn(src uint32) []int32 {
	return g.bfs(src, g.In, -1)
}

// UndirectedDistances computes BFS distances from src treating every edge
// as undirected, limited to maxDist hops (pass a negative maxDist for no
// limit). This is the distance used by the L1 bound and the distance-decay
// experiments (Section 5 of the paper).
func (g *Graph) UndirectedDistances(src uint32, maxDist int) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]uint32, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v]
		if maxDist >= 0 && int(d) >= maxDist {
			continue
		}
		for _, w := range g.Out(v) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
		for _, w := range g.In(v) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// UndirectedBall returns the set of vertices within maxDist undirected
// hops of src together with their distances, without allocating O(n)
// state beyond a visited map. Suitable for local queries on large graphs.
func (g *Graph) UndirectedBall(src uint32, maxDist int) map[uint32]int32 {
	dist, _ := g.UndirectedBallBudget(src, maxDist, -1)
	return dist
}

// UndirectedBallBudget is UndirectedBall with a cap on the number of
// visited vertices (negative = unlimited). When the cap is reached,
// expansion stops and truncated is true: distances in the map remain
// exact, and absent vertices are merely "farther than what was explored".
// This keeps per-query work local on high-expansion graphs, matching the
// paper's observation that only a small neighbourhood of the query ever
// matters.
func (g *Graph) UndirectedBallBudget(src uint32, maxDist, budget int) (dist map[uint32]int32, truncated bool) {
	dist = map[uint32]int32{src: 0}
	queue := []uint32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v]
		if int(d) >= maxDist {
			continue
		}
		if budget >= 0 && len(dist) >= budget {
			return dist, true
		}
		for _, w := range g.Out(v) {
			if _, ok := dist[w]; !ok {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
		for _, w := range g.In(v) {
			if _, ok := dist[w]; !ok {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, false
}

// UndirectedBallInto is the allocation-free variant of
// UndirectedBallBudget for callers holding reusable buffers: dist must be
// a length-N array whose entries are all Unreachable (the caller resets
// the touched entries afterwards — they are exactly the returned ball),
// and ball's backing array is reused for the visit list. The returned ball
// lists the discovered vertices in nondecreasing distance order (the list
// doubles as the BFS queue), starting with src. Budget and truncation
// semantics match UndirectedBallBudget: distances of listed vertices are
// exact even when truncated is true.
func (g *Graph) UndirectedBallInto(src uint32, maxDist, budget int, dist []int32, ball []uint32) ([]uint32, bool) {
	dist[src] = 0
	ball = append(ball, src)
	for head := 0; head < len(ball); head++ {
		v := ball[head]
		d := dist[v]
		if int(d) >= maxDist {
			continue
		}
		if budget >= 0 && len(ball) >= budget {
			return ball, true
		}
		for _, w := range g.Out(v) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				ball = append(ball, w)
			}
		}
		for _, w := range g.In(v) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				ball = append(ball, w)
			}
		}
	}
	return ball, false
}

func (g *Graph) bfs(src uint32, adj func(uint32) []uint32, maxDist int32) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	queue := make([]uint32, 0, 64)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		d := dist[v]
		if maxDist >= 0 && d >= maxDist {
			continue
		}
		for _, w := range adj(v) {
			if dist[w] == Unreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ConnectedComponents returns, for each vertex, the ID of its weakly
// connected component, plus the number of components. Component IDs are
// dense in [0, count).
func (g *Graph) ConnectedComponents() (comp []int32, count int) {
	comp = make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []uint32
	for s := uint32(0); int(s) < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		comp[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Out(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
			for _, w := range g.In(v) {
				if comp[w] < 0 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}
