// Package shard owns the topology layer of the distributed serving
// tier: the contiguous vertex-range partition function, shard manifests
// (what a shard must prove about itself before a router will merge its
// fragments), and the deterministic k-way heap merge of per-shard
// best-first result lists.
//
// The partition is the same contiguous-range scheme the in-process
// worker pools use (parallelVertices, forEachIndexParallel): shard i of
// S owns vertices [i*n/S, (i+1)*n/S). Contiguous ranges keep each
// shard's candidate scoring cache-local in the CSR arrays and make the
// ownership test two comparisons.
package shard

import (
	"container/heap"
	"fmt"
	"sort"
)

// Range returns the vertex range [lo, hi) owned by shard i of total
// over n vertices. Every vertex belongs to exactly one shard; ranges
// are contiguous and cover [0, n) in shard order.
func Range(i, total, n int) (lo, hi int) {
	if total <= 1 {
		return 0, n
	}
	return i * n / total, (i + 1) * n / total
}

// Manifest is what a shard publishes on /shardinfo: its place in the
// topology and the fingerprints a router checks before trusting its
// fragments. Two snapshots with equal Graph/Params fingerprints (the
// params fingerprint folds in the seed) answer every query
// byte-identically, so fragments from manifest-compatible shards merge
// into exactly the single-node answer.
type Manifest struct {
	// Shard / NumShards locate this server in the topology. A
	// stand-alone simserver is shard 0 of 1.
	Shard     int `json:"shard"`
	NumShards int `json:"num_shards"`
	// Lo / Hi is the owned vertex range [Lo, Hi), always equal to
	// Range(Shard, NumShards, Vertices).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Vertices is the graph's vertex count (every shard holds the full
	// graph; the partition splits scoring work, not data).
	Vertices int `json:"vertices"`
	// GraphFP / ParamsFP are the structure and parameter digests
	// (graph.Fingerprint, Params.Fingerprint).
	GraphFP  uint64 `json:"graph_fp"`
	ParamsFP uint64 `json:"params_fp"`
	// Seed is the snapshot's deterministic seed (also folded into
	// ParamsFP; exposed for humans and logs).
	Seed uint64 `json:"seed"`
	// Theta is the serving pruning threshold — the fixed floor shard
	// fragments are scored at, which the router must feed back into the
	// merge replay.
	Theta float64 `json:"theta"`
	// BinAddr, when non-empty, is the host:port of the shard's binary
	// wire listener (internal/wire over persistent TCP) — an optional
	// transport hint, deliberately excluded from topology validation: a
	// router falls back to HTTP when it is absent or unreachable. An
	// unspecified host (":9090", "0.0.0.0:9090") means "same host as
	// the HTTP endpoint".
	BinAddr string `json:"bin_addr,omitempty"`
}

// Build returns the manifest for shard i of total over an index with
// the given identity.
func Build(i, total, vertices int, graphFP, paramsFP, seed uint64, theta float64) Manifest {
	lo, hi := Range(i, total, vertices)
	return Manifest{
		Shard:     i,
		NumShards: total,
		Lo:        lo,
		Hi:        hi,
		Vertices:  vertices,
		GraphFP:   graphFP,
		ParamsFP:  paramsFP,
		Seed:      seed,
		Theta:     theta,
	}
}

// ValidateTopology checks that a set of manifests forms one coherent
// topology: identical identity (graph, params, seed, theta, vertex
// count, shard count), every shard index 0..NumShards-1 present exactly
// once, and every owned range equal to the canonical partition. Returns
// the manifests sorted by shard index.
func ValidateTopology(ms []Manifest) ([]Manifest, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("shard: no manifests")
	}
	ref := ms[0]
	for _, m := range ms[1:] {
		switch {
		case m.GraphFP != ref.GraphFP:
			return nil, fmt.Errorf("shard: graph fingerprint mismatch: shard %d has %016x, shard %d has %016x",
				ref.Shard, ref.GraphFP, m.Shard, m.GraphFP)
		case m.ParamsFP != ref.ParamsFP:
			return nil, fmt.Errorf("shard: params fingerprint mismatch: shard %d has %016x, shard %d has %016x",
				ref.Shard, ref.ParamsFP, m.Shard, m.ParamsFP)
		case m.Seed != ref.Seed:
			return nil, fmt.Errorf("shard: seed mismatch: %d vs %d", ref.Seed, m.Seed)
		case m.Theta != ref.Theta:
			return nil, fmt.Errorf("shard: theta mismatch: %g vs %g", ref.Theta, m.Theta)
		case m.Vertices != ref.Vertices:
			return nil, fmt.Errorf("shard: vertex count mismatch: %d vs %d", ref.Vertices, m.Vertices)
		case m.NumShards != ref.NumShards:
			return nil, fmt.Errorf("shard: topology size mismatch: %d vs %d", ref.NumShards, m.NumShards)
		}
	}
	if len(ms) != ref.NumShards {
		return nil, fmt.Errorf("shard: topology of %d needs %d shards, have %d manifests",
			ref.NumShards, ref.NumShards, len(ms))
	}
	sorted := make([]Manifest, len(ms))
	copy(sorted, ms)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	for i, m := range sorted {
		if m.Shard != i {
			return nil, fmt.Errorf("shard: shard %d missing or duplicated (found index %d at position %d)",
				i, m.Shard, i)
		}
		lo, hi := Range(i, m.NumShards, m.Vertices)
		if m.Lo != lo || m.Hi != hi {
			return nil, fmt.Errorf("shard: shard %d owns [%d, %d), canonical partition says [%d, %d)",
				i, m.Lo, m.Hi, lo, hi)
		}
	}
	return sorted, nil
}

// Ranked is one entry of a best-first result list: higher score first,
// ties broken toward the smaller vertex id — the single-node heap's
// output order (core.scoredLess, inverted).
type Ranked struct {
	Node  int
	Score float64
}

// rankedBefore is the best-first order.
func rankedBefore(a, b Ranked) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Node < b.Node
}

// mergeHeap is a min-heap of fragment cursors keyed by the best-first
// order of each fragment's head.
type mergeHeap struct {
	frags [][]Ranked
	pos   []int
	idx   []int // heap of fragment indexes
}

func (h *mergeHeap) Len() int { return len(h.idx) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.idx[i], h.idx[j]
	return rankedBefore(h.frags[a][h.pos[a]], h.frags[b][h.pos[b]])
}
func (h *mergeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *mergeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *mergeHeap) Pop() interface{} {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}

// MergeTopK merges per-shard best-first result lists into the global
// best-first order, keeping the k best (k == 0 keeps everything). The
// merge is deterministic for any fragment order: ties across fragments
// resolve by vertex id, exactly as the single-node top-k heap does, so
// for fixed-floor query modes (Similar) the merged list is
// byte-identical to the single-node output. Each fragment must itself
// be best-first sorted (shards produce them that way).
func MergeTopK(k int, frags [][]Ranked) []Ranked {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	if k == 0 || k > total {
		k = total
	}
	h := &mergeHeap{frags: frags, pos: make([]int, len(frags))}
	for fi, f := range frags {
		if len(f) > 0 {
			h.idx = append(h.idx, fi)
		}
	}
	heap.Init(h)
	out := make([]Ranked, 0, k)
	for len(out) < k && h.Len() > 0 {
		fi := h.idx[0]
		out = append(out, h.frags[fi][h.pos[fi]])
		h.pos[fi]++
		if h.pos[fi] >= len(h.frags[fi]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
