package shard

import (
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1001} {
		for _, total := range []int{1, 2, 3, 5, 16, 200} {
			prev := 0
			for i := 0; i < total; i++ {
				lo, hi := Range(i, total, n)
				if lo != prev {
					t.Fatalf("n=%d total=%d shard=%d: lo=%d, want %d (gap or overlap)", n, total, i, lo, prev)
				}
				if hi < lo {
					t.Fatalf("n=%d total=%d shard=%d: hi=%d < lo=%d", n, total, i, hi, lo)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d total=%d: partition ends at %d", n, total, prev)
			}
		}
	}
}

func topology(shards int) []Manifest {
	ms := make([]Manifest, shards)
	for i := range ms {
		ms[i] = Build(i, shards, 1000, 0xabc, 0xdef, 7, 0.01)
	}
	return ms
}

func TestValidateTopology(t *testing.T) {
	// Shuffled order must validate and come back sorted.
	ms := topology(3)
	ms[0], ms[2] = ms[2], ms[0]
	sorted, err := ValidateTopology(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range sorted {
		if m.Shard != i {
			t.Fatalf("position %d holds shard %d", i, m.Shard)
		}
	}

	bad := func(name string, mutate func(ms []Manifest)) {
		ms := topology(3)
		mutate(ms)
		if _, err := ValidateTopology(ms); err == nil {
			t.Fatalf("%s: validated", name)
		}
	}
	bad("graph fp", func(ms []Manifest) { ms[1].GraphFP++ })
	bad("params fp", func(ms []Manifest) { ms[2].ParamsFP++ })
	bad("seed", func(ms []Manifest) { ms[0].Seed++ })
	bad("theta", func(ms []Manifest) { ms[1].Theta = 0.02 })
	bad("vertices", func(ms []Manifest) { ms[1].Vertices++ })
	bad("duplicate shard", func(ms []Manifest) { ms[2].Shard = 0 })
	bad("wrong range", func(ms []Manifest) { ms[1].Lo++ })
	if _, err := ValidateTopology(topology(3)[:2]); err == nil {
		t.Fatal("missing shard validated")
	}
	if _, err := ValidateTopology(nil); err == nil {
		t.Fatal("nil validated")
	}
}

func TestValidateTopologySingle(t *testing.T) {
	if _, err := ValidateTopology(topology(1)); err != nil {
		t.Fatal(err)
	}
}

// TestMergeTopKMatchesSort: merging range-partitioned fragments of any
// best-first list reproduces a global best-first sort — including score
// ties resolved by vertex id — for every k.
func TestMergeTopKMatchesSort(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		n := int(r.Uint64()%200) + 1
		all := make([]Ranked, n)
		for i := range all {
			// A tiny score alphabet forces cross-fragment ties.
			all[i] = Ranked{Node: i, Score: float64(r.Uint64()%8) / 10}
		}
		want := make([]Ranked, n)
		copy(want, all)
		sort.Slice(want, func(i, j int) bool { return rankedBefore(want[i], want[j]) })

		shards := int(r.Uint64()%5) + 1
		frags := make([][]Ranked, shards)
		for i := 0; i < shards; i++ {
			lo, hi := Range(i, shards, n)
			var f []Ranked
			for _, x := range all {
				if x.Node >= lo && x.Node < hi {
					f = append(f, x)
				}
			}
			sort.Slice(f, func(a, b int) bool { return rankedBefore(f[a], f[b]) })
			frags[i] = f
		}
		for _, k := range []int{0, 1, 5, n, n + 100} {
			got := MergeTopK(k, frags)
			wk := k
			if wk == 0 || wk > n {
				wk = n
			}
			if len(got) != wk {
				t.Fatalf("trial %d k=%d: %d results, want %d", trial, k, len(got), wk)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: result %d = %+v, want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

func TestMergeTopKEmpty(t *testing.T) {
	if got := MergeTopK(5, nil); len(got) != 0 {
		t.Fatalf("merge of nothing returned %v", got)
	}
	if got := MergeTopK(5, [][]Ranked{nil, {}, nil}); len(got) != 0 {
		t.Fatalf("merge of empties returned %v", got)
	}
}
