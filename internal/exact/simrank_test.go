package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

const (
	testC = 0.8
	testT = 25 // enough iterations for tight convergence at c=0.8
)

// claw is the star graph of order 4 from Example 1 of the paper.
func claw() *graph.Graph { return graph.Star(4) }

func TestExample1ClawSimRank(t *testing.T) {
	// The paper gives exact SimRank for the claw at c = 0.8:
	// s(leaf_i, leaf_j) = 4/5 for distinct leaves, s(0, leaf) = 0.
	s := PartialSumsAllPairs(claw(), 0.8, 60)
	for i := 1; i <= 3; i++ {
		for j := 1; j <= 3; j++ {
			want := 1.0
			if i != j {
				want = 4.0 / 5.0
			}
			if got := s.At(i, j); math.Abs(got-want) > 1e-9 {
				t.Fatalf("s(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
		if got := s.At(0, i); math.Abs(got) > 1e-9 {
			t.Fatalf("s(0,%d) = %v, want 0", i, got)
		}
	}
}

func TestExample1ClawDiagonal(t *testing.T) {
	// The paper: D = diag(23/75, 1/5, 1/5, 1/5) for the claw at c = 0.8.
	d := ExactDiagonal(claw(), 0.8, 60)
	want := []float64{23.0 / 75.0, 0.2, 0.2, 0.2}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-9 {
			t.Fatalf("D[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestCompleteGraphClosedForm(t *testing.T) {
	// On K_n every off-diagonal SimRank value is equal by symmetry.
	// Two walks at distinct vertices step to a common vertex with
	// probability p = (n-2)/(n-1)² (the common choice must avoid both
	// current positions), so s = c·p + c·(1-p)·s, giving
	// s = c·p / (1 - c·(1-p)).
	for _, n := range []int{3, 4, 6, 9} {
		for _, c := range []float64{0.6, 0.8} {
			g := graph.Complete(n)
			s := PartialSumsAllPairs(g, c, 120)
			p := float64(n-2) / float64((n-1)*(n-1))
			want := c * p / (1 - c*(1-p))
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					if math.Abs(s.At(i, j)-want) > 1e-9 {
						t.Fatalf("K_%d c=%v: s(%d,%d)=%v, want %v", n, c, i, j, s.At(i, j), want)
					}
				}
			}
		}
	}
}

func TestStarLeavesClosedForm(t *testing.T) {
	// In the undirected star, two leaves have s = c·s(hub,hub) = c.
	for _, n := range []int{4, 7, 12} {
		for _, c := range []float64{0.6, 0.8} {
			s := PartialSumsAllPairs(graph.Star(n), c, 80)
			for i := 1; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if math.Abs(s.At(i, j)-c) > 1e-9 {
						t.Fatalf("star(%d) c=%v: s(%d,%d)=%v, want %v", n, c, i, j, s.At(i, j), c)
					}
				}
			}
		}
	}
}

func TestTwoLevelStarClosedForm(t *testing.T) {
	// Bipartite double star: two hubs a, b each pointing at by k shared
	// leaves... simpler documented case: two vertices u, v with the
	// same single in-neighbour w have s(u,v) = c·s(w,w) = c.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // w -> u
	b.AddEdge(0, 2) // w -> v
	g := b.Build()
	s := PartialSumsAllPairs(g, 0.6, 40)
	if math.Abs(s.At(1, 2)-0.6) > 1e-12 {
		t.Fatalf("shared-parent pair: %v, want 0.6", s.At(1, 2))
	}
}

func TestNaiveMatchesPartialSums(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(25, 80, seed)
		a := NaiveAllPairs(g, testC, 12)
		b := PartialSumsAllPairs(g, testC, 12)
		if diff := MaxAbsDiff(a, b); diff > 1e-12 {
			t.Fatalf("seed %d: naive vs partial sums differ by %v", seed, diff)
		}
	}
}

func TestSimRankInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(20)
		g := graph.ErdosRenyi(n, 3*n, seed)
		s := PartialSumsAllPairs(g, testC, 15)
		for i := 0; i < n; i++ {
			if s.At(i, i) != 1 {
				return false
			}
			for j := 0; j < n; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1+1e-12 {
					return false
				}
				if math.Abs(v-s.At(j, i)) > 1e-12 { // symmetry
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Proposition 2: 1−c ≤ D_uu ≤ 1.
func TestDiagonalBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(15)
		g := graph.ErdosRenyi(n, 3*n, seed)
		d := ExactDiagonal(g, testC, 40)
		for _, v := range d {
			if v < 1-testC-1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Proposition 1: the series with the exact diagonal correction reproduces
// true SimRank.
func TestSeriesWithExactDReproducesSimRank(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(20, 60, seed)
		sTrue := PartialSumsAllPairs(g, testC, 80)
		d := ExactDiagonal(g, testC, 80)
		sSeries := SeriesAllPairs(g, d, testC, 80)
		if diff := MaxAbsDiff(sTrue, sSeries); diff > 1e-6 {
			t.Fatalf("seed %d: series with exact D differs from SimRank by %v", seed, diff)
		}
	}
}

// Equation (10): 0 ≤ s(u,v) − s⁽ᵀ⁾(u,v) ≤ cᵀ/(1−c).
func TestTruncationErrorBound(t *testing.T) {
	g := graph.ErdosRenyi(20, 60, 7)
	d := ExactDiagonal(g, testC, 80)
	full := SeriesAllPairs(g, d, testC, 80)
	for _, T := range []int{2, 5, 10} {
		trunc := SeriesAllPairs(g, d, testC, T)
		bound := math.Pow(testC, float64(T)) / (1 - testC)
		for i := range full.Data {
			diff := full.Data[i] - trunc.Data[i]
			if diff < -1e-9 || diff > bound+1e-9 {
				t.Fatalf("T=%d: truncation error %v outside [0, %v]", T, diff, bound)
			}
		}
	}
}

func TestSingleSourceMatchesAllPairs(t *testing.T) {
	g := graph.PreferentialAttachment(40, 3, 0.3, 5)
	d := UniformDiagonal(g.N(), testC)
	all := SeriesAllPairs(g, d, testC, 11)
	for _, u := range []uint32{0, 7, 39} {
		row := SingleSource(g, d, testC, 11, u)
		for v := 0; v < g.N(); v++ {
			if math.Abs(row[v]-all.At(int(u), v)) > 1e-10 {
				t.Fatalf("single source (%d,%d): %v vs %v", u, v, row[v], all.At(int(u), v))
			}
		}
	}
}

func TestSinglePairMatchesSingleSource(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(25)
		g := graph.ErdosRenyi(n, 3*n, seed)
		d := UniformDiagonal(n, testC)
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		row := SingleSource(g, d, testC, 8, u)
		p := SinglePair(g, d, testC, 8, u, v)
		return math.Abs(row[v]-p) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDanglingVerticesScoreZero(t *testing.T) {
	// In a directed star all leaves have no in-links: SimRank between any
	// two distinct vertices is 0, and the series must agree.
	g := graph.DirectedStar(5)
	s := PartialSumsAllPairs(g, testC, 20)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(s.At(i, j)-want) > 1e-12 {
				t.Fatalf("s(%d,%d) = %v", i, j, s.At(i, j))
			}
		}
	}
}

func TestCycleSimRank(t *testing.T) {
	// On a directed n-cycle both walks move deterministically, so they
	// meet only if they start at the same vertex: s(u,v) = 0 for u != v.
	s := PartialSumsAllPairs(graph.Cycle(6), testC, 30)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i != j && s.At(i, j) != 0 {
				t.Fatalf("cycle s(%d,%d) = %v, want 0", i, j, s.At(i, j))
			}
		}
	}
}

func TestIterationsFor(t *testing.T) {
	for _, c := range []float64{0.6, 0.8} {
		for _, eps := range []float64{0.1, 0.01, 1e-4} {
			T := IterationsFor(c, eps)
			if math.Pow(c, float64(T))/(1-c) > eps {
				t.Fatalf("c=%v eps=%v: T=%d insufficient", c, eps, T)
			}
			if T > 1 && math.Pow(c, float64(T-1))/(1-c) <= eps {
				t.Fatalf("c=%v eps=%v: T=%d not minimal", c, eps, T)
			}
		}
	}
}

func TestApplyPMassConservation(t *testing.T) {
	// P x preserves total mass except for mass at dangling-in vertices.
	g := graph.PreferentialAttachment(50, 3, 0.2, 9)
	x := make([]float64, g.N())
	x[10] = 1
	for step := 0; step < 5; step++ {
		total := 0.0
		dangling := 0.0
		for v, m := range x {
			total += m
			if g.InDegree(uint32(v)) == 0 {
				dangling += m
			}
		}
		y := ApplyP(g, x)
		yTotal := 0.0
		for _, m := range y {
			yTotal += m
		}
		if math.Abs(yTotal-(total-dangling)) > 1e-12 {
			t.Fatalf("step %d: mass %v -> %v, expected %v", step, total, yTotal, total-dangling)
		}
		x = y
	}
}

func TestApplyPTAveraging(t *testing.T) {
	g := graph.Star(4) // hub 0, leaves 1..3
	z := []float64{0, 3, 6, 9}
	y := ApplyPT(g, z)
	if math.Abs(y[0]-6) > 1e-12 { // average of leaves
		t.Fatalf("y[0] = %v, want 6", y[0])
	}
	for i := 1; i <= 3; i++ {
		if math.Abs(y[i]-0) > 1e-12 { // In(leaf) = {hub}, z[hub] = 0
			t.Fatalf("y[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.5, 0.9, 0.1, 0.9, 0.3}
	top := TopK(scores, 0, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	// Ties broken by smaller vertex ID first.
	if top[0].V != 1 || top[1].V != 3 || top[2].V != 4 {
		t.Fatalf("order = %v", top)
	}
	if TopK(scores, 0, 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	all := TopK(scores, 2, 10)
	if len(all) != 4 {
		t.Fatalf("k>n returned %d", len(all))
	}
}

func TestTopKExcludesQuery(t *testing.T) {
	scores := []float64{1.0, 0.2}
	top := TopK(scores, 0, 2)
	for _, s := range top {
		if s.V == 0 {
			t.Fatal("query vertex included")
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.Row(1)[2] != 5 {
		t.Fatal("At/Set/Row broken")
	}
	c := m.Clone()
	c.Set(1, 2, 7)
	if m.At(1, 2) != 5 {
		t.Fatal("Clone aliases")
	}
	i := Identity(3)
	if i.At(0, 0) != 1 || i.At(0, 1) != 0 {
		t.Fatal("Identity broken")
	}
	if MaxAbsDiff(m, c) != 2 {
		t.Fatal("MaxAbsDiff broken")
	}
}
