package exact

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestExactDiagonalSparseClaw(t *testing.T) {
	// Example 1 of the paper: D = diag(23/75, 1/5, 1/5, 1/5) at c = 0.8.
	d, iters, res, err := ExactDiagonalSparse(graph.Star(4), 0.8, DiagOptions{T: 60, MaxIters: 200, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{23.0 / 75.0, 0.2, 0.2, 0.2}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-6 {
			t.Fatalf("D[%d] = %v, want %v (iters=%d res=%v)", i, d[i], want[i], iters, res)
		}
	}
}

func TestExactDiagonalSparseMatchesDense(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(40, 120, seed)
		dense := ExactDiagonal(g, 0.6, 60)
		sparse, _, res, err := ExactDiagonalSparse(g, 0.6, DiagOptions{T: 40, MaxIters: 200, Tol: 1e-9, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range dense {
			if math.Abs(dense[i]-sparse[i]) > 1e-5 {
				t.Fatalf("seed %d: D[%d] dense %v vs sparse %v (res %v)", seed, i, dense[i], sparse[i], res)
			}
		}
	}
}

func TestExactDiagonalSparseBounds(t *testing.T) {
	// Proposition 2: 1−c ≤ D_uu ≤ 1.
	g := graph.PreferentialAttachment(200, 3, 0.3, 5)
	d, _, _, err := ExactDiagonalSparse(g, 0.6, DiagOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range d {
		if v < 1-0.6-1e-4 || v > 1+1e-4 {
			t.Fatalf("D[%d] = %v outside [0.4, 1]", i, v)
		}
	}
}

func TestExactDiagonalSparseSeriesReproducesSimRank(t *testing.T) {
	// Proposition 1 at scale: the series with the sparse exact D equals
	// true SimRank.
	g := graph.ErdosRenyi(30, 90, 9)
	d, _, _, err := ExactDiagonalSparse(g, 0.6, DiagOptions{T: 40, MaxIters: 200, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	sTrue := PartialSumsAllPairs(g, 0.6, 60)
	sSeries := SeriesAllPairs(g, d, 0.6, 60)
	if diff := MaxAbsDiff(sTrue, sSeries); diff > 1e-6 {
		t.Fatalf("series with sparse exact D differs from SimRank by %v", diff)
	}
}

func TestExactDiagonalSparseValidation(t *testing.T) {
	g := graph.ErdosRenyi(10, 20, 1)
	if _, _, _, err := ExactDiagonalSparse(g, 0, DiagOptions{}); err == nil {
		t.Fatal("expected error for c=0")
	}
	if _, _, _, err := ExactDiagonalSparse(g, 1, DiagOptions{}); err == nil {
		t.Fatal("expected error for c=1")
	}
	// Empty graph is fine.
	d, _, _, err := ExactDiagonalSparse(graph.NewBuilder(0).Build(), 0.6, DiagOptions{})
	if err != nil || len(d) != 0 {
		t.Fatalf("empty graph: %v %v", d, err)
	}
}

func TestExactDiagonalSparseDangling(t *testing.T) {
	// Directed star: leaves have no in-links, so S = I exactly and
	// D_uu = 1 − c·(meeting probability of two walks from u).
	// For leaves S row is e_u, D_leaf = 1 - 0 = ... walks from a leaf die
	// immediately: x_t = 0 for t ≥ 1, so M[u][u] = 1 and d_u = 1.
	// For the hub, both walks step to the same leaf with prob 1/(k)…
	// verify against the dense computation rather than hand-derivation.
	g := graph.DirectedStar(5)
	dense := ExactDiagonal(g, 0.6, 40)
	sparse, _, _, err := ExactDiagonalSparse(g, 0.6, DiagOptions{T: 40, MaxIters: 100, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if math.Abs(dense[i]-sparse[i]) > 1e-6 {
			t.Fatalf("D[%d]: dense %v vs sparse %v", i, dense[i], sparse[i])
		}
	}
	// Leaves must be exactly 1.
	for v := 1; v < 5; v++ {
		if math.Abs(sparse[v]-1) > 1e-9 {
			t.Fatalf("leaf D[%d] = %v, want 1", v, sparse[v])
		}
	}
}
