package exact

import (
	"bufio"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
)

// The golden corpus freezes converged SimRank scores (c = 0.6, every
// pair ≥ 0.01) for the checked-in graph testdata/small.txt. All four
// independent exact implementations must reproduce it, which guards each
// of them against silent regressions.

func loadGolden(t *testing.T) (*graph.Graph, map[[2]uint32]float64) {
	t.Helper()
	g, err := graph.LoadEdgeListFile("../../testdata/small.txt")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open("../../testdata/small_golden.tsv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	golden := map[[2]uint32]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			t.Fatalf("bad golden line %q", line)
		}
		u, err1 := strconv.ParseUint(fields[0], 10, 32)
		v, err2 := strconv.ParseUint(fields[1], 10, 32)
		s, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("bad golden line %q", line)
		}
		golden[[2]uint32{uint32(u), uint32(v)}] = s
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(golden) == 0 {
		t.Fatal("empty golden corpus")
	}
	return g, golden
}

func TestGoldenPartialSums(t *testing.T) {
	g, golden := loadGolden(t)
	s := PartialSumsAllPairs(g, 0.6, 60)
	for pair, want := range golden {
		if got := s.At(int(pair[0]), int(pair[1])); math.Abs(got-want) > 1e-9 {
			t.Fatalf("pair %v: %v vs golden %v", pair, got, want)
		}
	}
}

func TestGoldenNaive(t *testing.T) {
	g, golden := loadGolden(t)
	s := NaiveAllPairs(g, 0.6, 60)
	for pair, want := range golden {
		if got := s.At(int(pair[0]), int(pair[1])); math.Abs(got-want) > 1e-9 {
			t.Fatalf("pair %v: %v vs golden %v", pair, got, want)
		}
	}
}

func TestGoldenSeriesWithExactD(t *testing.T) {
	g, golden := loadGolden(t)
	d, _, _, err := ExactDiagonalSparse(g, 0.6, DiagOptions{T: 60, MaxIters: 300, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	s := SeriesAllPairs(g, d, 0.6, 60)
	for pair, want := range golden {
		if got := s.At(int(pair[0]), int(pair[1])); math.Abs(got-want) > 1e-6 {
			t.Fatalf("pair %v: %v vs golden %v", pair, got, want)
		}
	}
}

func TestGoldenSurferSample(t *testing.T) {
	g, golden := loadGolden(t)
	// The pair chain is slow; spot-check a deterministic sample.
	checked := 0
	for pair, want := range golden {
		if (pair[0]+pair[1])%17 != 0 {
			continue
		}
		got := SinglePairSurfer(g, 0.6, 60, pair[0], pair[1])
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("pair %v: surfer %v vs golden %v", pair, got, want)
		}
		checked++
		if checked >= 12 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("sample selected no pairs")
	}
}
