// Package exact implements reference SimRank computations used as ground
// truth and as classic baselines: the naive Jeh–Widom all-pairs iteration,
// the Lizorkin partial-sums variant, the truncated linear-series evaluation
// of the paper's formulation (Section 3.2), and exact computation of the
// diagonal correction matrix D.
//
// Everything here is deterministic and, except for the single-source
// series (which is linear in the graph size), quadratic or worse in n; the
// package is intended for small graphs where exact answers are feasible.
package exact

import "repro/internal/graph"

// Matrix is a dense square row-major matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns an N x N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Row returns row i as a slice view.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.N : (i+1)*m.N] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// Identity returns the N x N identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// MaxAbsDiff returns the largest absolute entry-wise difference.
func MaxAbsDiff(a, b *Matrix) float64 {
	max := 0.0
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}

// leftMulPT computes A = Pᵀ S, where P is the SimRank transition matrix of
// g (column u of P is the uniform distribution over the in-neighbours of
// u). Row j of the result is the average of S's rows over In(j); rows of
// vertices with no in-links are zero.
func leftMulPT(g *graph.Graph, s *Matrix) *Matrix {
	n := s.N
	out := NewMatrix(n)
	for j := 0; j < n; j++ {
		in := g.In(uint32(j))
		if len(in) == 0 {
			continue
		}
		row := out.Row(j)
		inv := 1.0 / float64(len(in))
		for _, i := range in {
			src := s.Row(int(i))
			for k := 0; k < n; k++ {
				row[k] += src[k]
			}
		}
		for k := 0; k < n; k++ {
			row[k] *= inv
		}
	}
	return out
}

// rightMulP computes B = A P: column v of the result is the average of A's
// columns over In(v).
func rightMulP(g *graph.Graph, a *Matrix) *Matrix {
	n := a.N
	out := NewMatrix(n)
	for v := 0; v < n; v++ {
		in := g.In(uint32(v))
		if len(in) == 0 {
			continue
		}
		inv := 1.0 / float64(len(in))
		for r := 0; r < n; r++ {
			row := a.Row(r)
			sum := 0.0
			for _, k := range in {
				sum += row[int(k)]
			}
			out.Set(r, v, sum*inv)
		}
	}
	return out
}

// PTSP computes c · Pᵀ S P using the two-phase sparse-dense product. This
// is the partial-sums evaluation of Lizorkin et al.: the intermediate
// Pᵀ S memoizes row sums shared across all target pairs.
func PTSP(g *graph.Graph, s *Matrix, c float64) *Matrix {
	b := rightMulP(g, leftMulPT(g, s))
	for i := range b.Data {
		b.Data[i] *= c
	}
	return b
}

// ApplyP computes y = P x for a dense vector: one backward random-walk
// step of probability mass. y[i] = Σ_{u ∈ Out(i)} x[u]/indeg(u).
func ApplyP(g *graph.Graph, x []float64) []float64 {
	y := make([]float64, len(x))
	for u := 0; u < len(x); u++ {
		xv := x[u]
		if xv == 0 {
			continue
		}
		in := g.In(uint32(u))
		if len(in) == 0 {
			continue
		}
		share := xv / float64(len(in))
		for _, i := range in {
			y[i] += share
		}
	}
	return y
}

// ApplyPT computes y = Pᵀ z: y[j] is the average of z over In(j).
func ApplyPT(g *graph.Graph, z []float64) []float64 {
	y := make([]float64, len(z))
	for j := range y {
		in := g.In(uint32(j))
		if len(in) == 0 {
			continue
		}
		sum := 0.0
		for _, i := range in {
			sum += z[i]
		}
		y[j] = sum / float64(len(in))
	}
	return y
}
