package exact

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestSinglePairSurferClaw(t *testing.T) {
	// Example 1: s(leaf, leaf) = 4/5 at c = 0.8 on the claw.
	g := graph.Star(4)
	got := SinglePairSurfer(g, 0.8, 80, 1, 2)
	if math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("claw leaves: %v, want 0.8", got)
	}
	if got := SinglePairSurfer(g, 0.8, 80, 0, 1); math.Abs(got) > 1e-9 {
		t.Fatalf("hub-leaf: %v, want 0", got)
	}
	if SinglePairSurfer(g, 0.8, 10, 2, 2) != 1 {
		t.Fatal("self pair must be 1")
	}
}

func TestSinglePairSurferMatchesConvergedMatrix(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.ErdosRenyi(20, 60, seed)
		truth := PartialSumsAllPairs(g, 0.6, 50)
		for u := uint32(0); u < 20; u += 3 {
			for v := u + 1; v < 20; v += 4 {
				got := SinglePairSurfer(g, 0.6, 50, u, v)
				want := truth.At(int(u), int(v))
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("seed %d s(%d,%d): surfer %v vs matrix %v", seed, u, v, got, want)
				}
			}
		}
	}
}

func TestSingleSourceSurfer(t *testing.T) {
	g := graph.Collaboration(15, 4, 0.9, 5, 2)
	truth := PartialSumsAllPairs(g, 0.6, 40)
	u := uint32(3)
	row := SingleSourceSurfer(g, 0.6, 40, u)
	for v := 0; v < g.N(); v++ {
		if math.Abs(row[v]-truth.At(int(u), v)) > 1e-8 {
			t.Fatalf("s(%d,%d): %v vs %v", u, v, row[v], truth.At(int(u), v))
		}
	}
}

func TestSinglePairSurferDangling(t *testing.T) {
	g := graph.DirectedStar(4)
	if got := SinglePairSurfer(g, 0.6, 20, 1, 2); got != 0 {
		t.Fatalf("dangling pair: %v, want 0", got)
	}
}
