package exact

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// This file computes the exact diagonal correction matrix D of the linear
// formulation S = c·Pᵀ S P + D without dense matrices, so it scales to
// graphs where the O(n²) route of ExactDiagonal is impossible.
//
// The diagonal condition S(D)ᵤᵤ = 1 expands to the linear system
//
//	Σ_w M[u][w]·d[w] = 1,   M[u][w] = Σ_t cᵗ · xₜᵘ(w)²,   xₜᵘ = Pᵗe_u
//
// M is never materialized: each iteration evaluates M·d by propagating
// the sparse walk distribution of every vertex. The system is solved by
// damped Jacobi iteration d ← d + ω·(1 − M·d)/M[u][u]; M's diagonal
// entries are ≥ 1 (the t = 0 term alone contributes 1), which makes the
// damped update a contraction in practice.

// DiagOptions tunes ExactDiagonalSparse.
type DiagOptions struct {
	// T truncates the series; the same rule as eq. (10) applies.
	T int
	// MaxIters bounds the Jacobi sweeps (default 30).
	MaxIters int
	// Tol is the max-residual stopping criterion (default 1e-6).
	Tol float64
	// Damping is the update factor ω in (0, 1] (default 0.7).
	Damping float64
	// Workers bounds parallelism (default 1).
	Workers int
}

func (o DiagOptions) normalized() DiagOptions {
	if o.T <= 0 {
		o.T = 11
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 30
	}
	if o.Tol <= 0 {
		o.Tol = 1e-6
	}
	if o.Damping <= 0 || o.Damping > 1 {
		o.Damping = 0.7
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// ExactDiagonalSparse computes the diagonal correction matrix D in
// O(iters · n · T · d̄ · |support|) time and O(n + support) space —
// no dense matrices. It returns D, the number of sweeps used, and the
// final max residual |1 − diag S(D)|.
func ExactDiagonalSparse(g *graph.Graph, c float64, opts DiagOptions) (d []float64, iters int, residual float64, err error) {
	if c <= 0 || c >= 1 {
		return nil, 0, 0, fmt.Errorf("exact: decay factor %v out of (0,1)", c)
	}
	opts = opts.normalized()
	n := g.N()
	d = make([]float64, n)
	for i := range d {
		d[i] = 1 - c // start from the paper's approximation
	}
	if n == 0 {
		return d, 0, 0, nil
	}

	// mdiag[u] = M[u][u] and the per-vertex apply both need the sparse
	// walk distributions; they are recomputed per sweep (the graphs this
	// targets are too large to cache n·T sparse vectors).
	md := make([]float64, n)    // M·d
	mdiag := make([]float64, n) // M[u][u]
	applyRow := func(u int, dVec []float64) (rowDot, diagCoef float64) {
		// x₀ = e_u.
		cur := map[uint32]float64{uint32(u): 1}
		rowDot = dVec[u] // t = 0 term: x₀(u)² · d_u
		diagCoef = 1
		ct := 1.0
		for t := 1; t < opts.T && len(cur) > 0; t++ {
			ct *= c
			next := make(map[uint32]float64, len(cur)*2)
			for w, mass := range cur {
				in := g.In(w)
				if len(in) == 0 {
					continue
				}
				share := mass / float64(len(in))
				for _, x := range in {
					next[x] += share
				}
			}
			cur = next
			for w, mass := range cur {
				contrib := ct * mass * mass
				rowDot += contrib * dVec[w]
				if int(w) == u {
					diagCoef += contrib
				}
			}
		}
		return rowDot, diagCoef
	}

	sweep := func(dVec []float64) {
		var wg sync.WaitGroup
		workers := opts.Workers
		if workers > n {
			workers = n
		}
		if workers <= 1 {
			for u := 0; u < n; u++ {
				md[u], mdiag[u] = applyRow(u, dVec)
			}
			return
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for u := shard; u < n; u += workers {
					md[u], mdiag[u] = applyRow(u, dVec)
				}
			}(w)
		}
		wg.Wait()
	}

	for iters = 1; iters <= opts.MaxIters; iters++ {
		sweep(d)
		residual = 0
		for u := 0; u < n; u++ {
			r := 1 - md[u]
			if ar := abs(r); ar > residual {
				residual = ar
			}
			d[u] += opts.Damping * r / mdiag[u]
		}
		if residual < opts.Tol {
			return d, iters, residual, nil
		}
	}
	return d, opts.MaxIters, residual, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
