package exact

import "repro/internal/graph"

// NaiveAllPairs computes SimRank by evaluating the defining recursion (1)
// of Jeh and Widom directly: for every pair (u, v), average S over all
// in-neighbour pairs. O(T·n²·d²) time, O(n²) space. Intended only for tiny
// graphs and as an oracle for the faster implementations.
func NaiveAllPairs(g *graph.Graph, c float64, iters int) *Matrix {
	n := g.N()
	s := Identity(n)
	for it := 0; it < iters; it++ {
		next := NewMatrix(n)
		for u := 0; u < n; u++ {
			next.Set(u, u, 1)
			inU := g.In(uint32(u))
			if len(inU) == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == u {
					continue
				}
				inV := g.In(uint32(v))
				if len(inV) == 0 {
					continue
				}
				sum := 0.0
				for _, a := range inU {
					row := s.Row(int(a))
					for _, b := range inV {
						sum += row[int(b)]
					}
				}
				next.Set(u, v, c*sum/float64(len(inU)*len(inV)))
			}
		}
		s = next
	}
	return s
}

// PartialSumsAllPairs computes SimRank with the Lizorkin et al. partial
// sums technique: the iteration S ← (c·Pᵀ S P) ∨ I evaluated as two
// sparse-dense products so that per-source partial sums are shared.
// O(T·n·m) time, O(n²) space. Converges to the same fixed point as
// NaiveAllPairs (they are compared in the tests).
func PartialSumsAllPairs(g *graph.Graph, c float64, iters int) *Matrix {
	s := Identity(g.N())
	for it := 0; it < iters; it++ {
		s = PTSP(g, s, c)
		for i := 0; i < s.N; i++ {
			s.Set(i, i, 1)
		}
	}
	return s
}

// AllPairs computes (converged) SimRank with the default number of
// iterations for the given decay factor so the truncation error is below
// eps: T = ceil(log(eps(1-c))/log c), the same rule as eq. (10).
func AllPairs(g *graph.Graph, c, eps float64) *Matrix {
	return PartialSumsAllPairs(g, c, IterationsFor(c, eps))
}

// IterationsFor returns the number of series terms / iterations needed for
// truncation error below eps at decay factor c (eq. 10 of the paper).
func IterationsFor(c, eps float64) int {
	t := 0
	bound := 1.0 / (1.0 - c)
	for bound > eps {
		bound *= c
		t++
		if t > 200 {
			break
		}
	}
	return t
}

// ExactDiagonal computes the diagonal correction matrix D of the linear
// formulation S = c·Pᵀ S P + D (eq. 5): it converges the Jeh–Widom
// iteration and returns diag(S − c·Pᵀ S P). By Proposition 2, every entry
// lies in [1−c, 1].
func ExactDiagonal(g *graph.Graph, c float64, iters int) []float64 {
	s := PartialSumsAllPairs(g, c, iters)
	b := PTSP(g, s, c)
	d := make([]float64, g.N())
	for i := range d {
		d[i] = s.At(i, i) - b.At(i, i)
	}
	return d
}

// UniformDiagonal returns the approximation D = (1−c)·I used throughout
// the paper (Section 3.3).
func UniformDiagonal(n int, c float64) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 - c
	}
	return d
}

// SeriesAllPairs evaluates the truncated linear series (7)
//
//	S = Σ_{t=0}^{T-1} cᵗ (Pᵗ)ᵀ D Pᵗ
//
// densely via the Horner recursion S ← diag(d) + c·Pᵀ S P. With the exact
// diagonal correction this reproduces SimRank (Proposition 1); with
// D = (1−c)·I it yields the paper's "approximate SimRank".
func SeriesAllPairs(g *graph.Graph, d []float64, c float64, T int) *Matrix {
	n := g.N()
	s := NewMatrix(n)
	setDiag := func(m *Matrix) {
		for i := 0; i < n; i++ {
			m.Data[i*n+i] += d[i]
		}
	}
	setDiag(s)
	for t := 1; t < T; t++ {
		s = PTSP(g, s, c)
		setDiag(s)
	}
	return s
}

// SingleSource evaluates the truncated series for one query vertex u and
// every target, in O(T·(n+m)) time and O(n) space:
//
//	s_u = Σ_{t=0}^{T-1} cᵗ (Pᵀ)ᵗ (d ⊙ xₜ),   xₜ = Pᵗ e_u
//
// evaluated with a Horner recursion from t = T−1 down to 0. This is the
// deterministic algorithm of Section 3.2 and the ground truth used in the
// accuracy experiments (Section 8.2).
func SingleSource(g *graph.Graph, d []float64, c float64, T int, u uint32) []float64 {
	n := g.N()
	// Forward pass: all walk distributions xₜ.
	xs := make([][]float64, T)
	x0 := make([]float64, n)
	x0[u] = 1
	xs[0] = x0
	for t := 1; t < T; t++ {
		xs[t] = ApplyP(g, xs[t-1])
	}
	// Backward Horner pass: r ← (d ⊙ xₜ) + c·Pᵀ r.
	r := make([]float64, n)
	for t := T - 1; t >= 0; t-- {
		if t < T-1 {
			r = ApplyPT(g, r)
		}
		xt := xs[t]
		for i := 0; i < n; i++ {
			if t < T-1 {
				r[i] = d[i]*xt[i] + c*r[i]
			} else {
				r[i] = d[i] * xt[i]
			}
		}
	}
	return r
}

// SinglePair evaluates the truncated series for one pair (u, v):
//
//	s⁽ᵀ⁾(u,v) = Σ_t cᵗ Σ_w xₜ(w)·d_w·yₜ(w)
//
// with xₜ, yₜ the walk distributions from u and v.
func SinglePair(g *graph.Graph, d []float64, c float64, T int, u, v uint32) float64 {
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	x[u], y[v] = 1, 1
	sum := 0.0
	ct := 1.0
	for t := 0; t < T; t++ {
		if t > 0 {
			x = ApplyP(g, x)
			y = ApplyP(g, y)
			ct *= c
		}
		dot := 0.0
		for w := 0; w < n; w++ {
			if x[w] != 0 && y[w] != 0 {
				dot += x[w] * d[w] * y[w]
			}
		}
		sum += ct * dot
	}
	return sum
}

// TopK returns the k vertices with the highest scores[v], excluding the
// query vertex itself, in descending score order (ties broken by vertex
// ID for determinism).
func TopK(scores []float64, u uint32, k int) []Scored {
	if k <= 0 {
		return nil
	}
	out := make([]Scored, 0, k)
	for v, s := range scores {
		if uint32(v) == u {
			continue
		}
		if len(out) < k {
			out = append(out, Scored{uint32(v), s})
			if len(out) == k {
				sortScored(out)
			}
			continue
		}
		if less(out[k-1], Scored{uint32(v), s}) {
			out[k-1] = Scored{uint32(v), s}
			// Bubble up.
			for i := k - 1; i > 0 && less(out[i-1], out[i]); i-- {
				out[i-1], out[i] = out[i], out[i-1]
			}
		}
	}
	if len(out) < k {
		sortScored(out)
	}
	return out
}

// Scored pairs a vertex with its similarity score.
type Scored struct {
	V     uint32
	Score float64
}

// less orders by score descending, then vertex ID ascending.
func less(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.V > b.V
}

func sortScored(xs []Scored) {
	// Insertion sort: k is small.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j-1], xs[j]); j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}
