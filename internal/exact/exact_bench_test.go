package exact

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkPartialSumsAllPairs(b *testing.B) {
	g := graph.Collaboration(300, 4, 0.85, 40, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartialSumsAllPairs(g, 0.6, 11)
	}
}

func BenchmarkNaiveAllPairs(b *testing.B) {
	g := graph.ErdosRenyi(100, 400, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NaiveAllPairs(g, 0.6, 11)
	}
}

func BenchmarkSingleSourceSeries(b *testing.B) {
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	d := UniformDiagonal(g.N(), 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SingleSource(g, d, 0.6, 11, uint32(i%g.N()))
	}
}

func BenchmarkSinglePairSeries(b *testing.B) {
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	d := UniformDiagonal(g.N(), 0.6)
	n := uint32(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SinglePair(g, d, 0.6, 11, uint32(i)%n, uint32(i*7+3)%n)
	}
}

func BenchmarkSinglePairSurfer(b *testing.B) {
	// The pair-chain frontier grows with d², so keep this one small:
	// it is an oracle, not a production path.
	g := graph.ErdosRenyi(200, 500, 2)
	n := uint32(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SinglePairSurfer(g, 0.6, 8, uint32(i)%n, uint32(i*7+3)%n)
	}
}

func BenchmarkExactDiagonalSparse(b *testing.B) {
	g := graph.Collaboration(150, 4, 0.85, 20, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ExactDiagonalSparse(g, 0.6, DiagOptions{T: 11, MaxIters: 10, Tol: 1e-5}); err != nil {
			b.Fatal(err)
		}
	}
}
