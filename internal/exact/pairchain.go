package exact

import "repro/internal/graph"

// SinglePairSurfer computes the *converged* SimRank score s(u, v) for one
// pair deterministically, by dynamic programming on the random
// surfer-pair model (eq. 2–3 of the paper): s(u,v) = E[c^τ] where τ is
// the first meeting time of two coupled in-link walks. The pair chain
// keeps the joint distribution of the two walk positions restricted to
// not-yet-met states; at each step the mass that lands on the diagonal
// contributes cᵗ and leaves the chain.
//
// This is the classic iterative single-pair algorithm (the "Li et al."
// row of Table 1): time O(T·d²·|frontier|), space O(|frontier|), no
// dense matrices, and — unlike the truncated linear series with
// approximate D — it converges to true SimRank as T grows. Useful as a
// spot-check oracle on graphs far too large for all-pairs computation.
func SinglePairSurfer(g *graph.Graph, c float64, T int, u, v uint32) float64 {
	if u == v {
		return 1
	}
	type pair struct{ a, b uint32 }
	// cur holds P{walks at (a,b) at step t, never met so far}.
	cur := map[pair]float64{{u, v}: 1}
	score := 0.0
	ct := 1.0
	for t := 1; t <= T && len(cur) > 0; t++ {
		ct *= c
		next := make(map[pair]float64, len(cur))
		for p, mass := range cur {
			inA := g.In(p.a)
			inB := g.In(p.b)
			if len(inA) == 0 || len(inB) == 0 {
				continue // one walk dies: the pair never meets
			}
			share := mass / float64(len(inA)*len(inB))
			for _, x := range inA {
				for _, y := range inB {
					if x == y {
						score += ct * share // first meeting at step t
						continue
					}
					next[pair{x, y}] += share
				}
			}
		}
		cur = next
	}
	return score
}

// SingleSourceSurfer computes converged SimRank from u to every vertex by
// running the pair chain once per target. Quadratic in the worst case;
// intended for validation on small graphs.
func SingleSourceSurfer(g *graph.Graph, c float64, T int, u uint32) []float64 {
	out := make([]float64, g.N())
	for v := uint32(0); int(v) < g.N(); v++ {
		out[v] = SinglePairSurfer(g, c, T, u, v)
	}
	return out
}
