package bench

import "fmt"

// GuardRatio compares the current measurement of one benchmark against
// the committed snapshot and fails when ns/op regressed by more than
// maxRatio. It gates only the named benchmark: the snapshot holds
// numbers from a quiet dedicated box, so a loose multiplicative bound
// on the hottest kernel catches real regressions (a lost optimization,
// an accidental allocation) without flaking on scheduler noise.
func GuardRatio(baseline BenchReport, current []BenchResult, name string, maxRatio float64) error {
	var base *BenchResult
	for i := range baseline.Results {
		if baseline.Results[i].Name == name {
			base = &baseline.Results[i]
			break
		}
	}
	if base == nil {
		return fmt.Errorf("bench: %s not present in the committed snapshot", name)
	}
	if base.NsPerOp <= 0 {
		return fmt.Errorf("bench: %s has non-positive snapshot ns/op (%v)", name, base.NsPerOp)
	}
	var cur *BenchResult
	for i := range current {
		if current[i].Name == name {
			cur = &current[i]
			break
		}
	}
	if cur == nil {
		return fmt.Errorf("bench: %s missing from the current run", name)
	}
	if ratio := cur.NsPerOp / base.NsPerOp; ratio > maxRatio {
		return fmt.Errorf("bench: %s regressed %.2fx over the committed snapshot (%.1f ns/op now, %.1f committed, limit %.1fx)",
			name, ratio, cur.NsPerOp, base.NsPerOp, maxRatio)
	}
	return nil
}
