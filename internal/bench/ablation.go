package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
)

// Ablation study (not a paper table, but DESIGN.md calls it out): measure
// what each ingredient of the query phase buys — the L1 bound, the L2
// bound, adaptive sampling, and the candidate index — in query time,
// refined-candidate count, and recall against the exact series ranking.

// AblationRow is the measurement for one configuration.
type AblationRow struct {
	Variant    string
	Query      time.Duration
	Candidates float64 // average enumerated candidates per query
	Refined    float64 // average fully-sampled candidates per query
	Recall     float64 // fraction of exact top-20 (score >= 0.05) found
}

// Ablation runs the variants on the web-class dataset (the method's
// primary target).
func Ablation(w io.Writer, cfg Config) []AblationRow {
	cfg = cfg.normalized()
	ds, err := ByName("web-stanford-sim", cfg.Scale)
	if err != nil {
		fmt.Fprintf(w, "ablation: %v\n", err)
		return nil
	}
	section(w, "Ablation: pruning ingredients on %s", ds.Name)
	g := ds.MustBuild()

	base := core.DefaultParams()
	base.Seed = cfg.Seed
	base.Workers = cfg.Workers

	variants := []struct {
		name string
		mod  func(p core.Params) core.Params
	}{
		{"full (paper)", func(p core.Params) core.Params { return p }},
		{"no L1 bound", func(p core.Params) core.Params { p.DisableL1 = true; return p }},
		{"no L2 bound", func(p core.Params) core.Params { p.DisableL2 = true; return p }},
		{"no adaptive sampling", func(p core.Params) core.Params { p.DisableAdaptive = true; return p }},
		{"ball candidates (no index)", func(p core.Params) core.Params { p.Strategy = core.CandidatesBall; return p }},
		{"no pruning at all", func(p core.Params) core.Params {
			p.DisableL1, p.DisableL2, p.DisableAdaptive = true, true, true
			return p
		}},
	}

	queries := pickQueries(g, cfg.Queries, cfg.Seed)

	// Exact reference rankings for recall.
	d := exact.UniformDiagonal(g.N(), base.C)
	refs := make(map[uint32]map[uint32]bool, len(queries))
	for _, u := range queries {
		row := exact.SingleSource(g, d, base.C, base.T, u)
		set := map[uint32]bool{}
		for _, s := range exact.TopK(row, u, 20) {
			if s.Score >= 0.05 {
				set[s.V] = true
			}
		}
		refs[u] = set
	}

	tb := &table{header: []string{"variant", "query", "candidates", "refined", "recall"}}
	var out []AblationRow
	for _, v := range variants {
		eng := core.Build(g, v.mod(base))
		var cands, refined, hits, wants int
		start := time.Now()
		for _, u := range queries {
			res, st := eng.TopKStats(u, 20)
			cands += st.Candidates
			refined += st.Refined
			got := map[uint32]bool{}
			for _, s := range res {
				got[s.V] = true
			}
			for w := range refs[u] {
				wants++
				if got[w] {
					hits++
				}
			}
		}
		elapsed := time.Since(start) / time.Duration(len(queries))
		row := AblationRow{
			Variant:    v.name,
			Query:      elapsed,
			Candidates: float64(cands) / float64(len(queries)),
			Refined:    float64(refined) / float64(len(queries)),
		}
		if wants > 0 {
			row.Recall = float64(hits) / float64(wants)
		} else {
			row.Recall = 1
		}
		out = append(out, row)
		tb.addRow(v.name, fmtDuration(row.Query),
			fmt.Sprintf("%.1f", row.Candidates), fmt.Sprintf("%.1f", row.Refined),
			fmt.Sprintf("%.3f", row.Recall))
	}
	tb.write(w)
	return out
}
