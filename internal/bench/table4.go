package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fogaras"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/yu"
)

// Table 4 of the paper: preprocess time, query time, all-pairs time, and
// index size for the proposed algorithm, Fogaras & Rácz, and Yu et al.,
// across the dataset sweep. Comparators that exceed the memory budget
// report "—" (the paper's "failed to allocate memory").

// Table4Row is one dataset's measurements.
type Table4Row struct {
	Dataset string
	N, M    int

	// Proposed algorithm.
	PropPreproc  time.Duration
	PropQuery    time.Duration
	PropAllPairs time.Duration // 0 when skipped (large graphs)
	PropBytes    int64

	// Fogaras & Rácz.
	FogOK      bool
	FogPreproc time.Duration
	FogQuery   time.Duration
	FogBytes   int64

	// Yu et al.
	YuOK       bool
	YuAllPairs time.Duration
	YuBytes    int64
}

// Table4 runs the performance sweep. The memory budget (cfg.MemoryBudget)
// is the stand-in for the paper's testbed RAM.
func Table4(w io.Writer, cfg Config) []Table4Row {
	cfg = cfg.normalized()
	section(w, "Table 4: preprocess / query / all-pairs time and index size (budget %s)", fmtBytes(cfg.MemoryBudget))
	tb := &table{header: []string{
		"dataset", "n", "m",
		"prop.pre", "prop.query", "prop.all", "prop.idx",
		"fog.pre", "fog.query", "fog.idx",
		"yu.all", "yu.mem",
	}}
	var out []Table4Row
	for _, ds := range Catalog(cfg.Scale) {
		row := table4On(ds, cfg)
		out = append(out, row)
		dash := "—"
		fogPre, fogQ, fogIdx := dash, dash, dash
		if row.FogOK {
			fogPre, fogQ, fogIdx = fmtDuration(row.FogPreproc), fmtDuration(row.FogQuery), fmtBytes(row.FogBytes)
		}
		yuAll, yuMem := dash, dash
		if row.YuOK {
			yuAll, yuMem = fmtDuration(row.YuAllPairs), fmtBytes(row.YuBytes)
		}
		propAll := dash
		if row.PropAllPairs > 0 {
			propAll = fmtDuration(row.PropAllPairs)
		}
		tb.addRow(ds.Name, fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.M),
			fmtDuration(row.PropPreproc), fmtDuration(row.PropQuery), propAll, fmtBytes(row.PropBytes),
			fogPre, fogQ, fogIdx, yuAll, yuMem)
	}
	tb.write(w)

	// The paper's parallel projection (§2.2): per-vertex searches are
	// independent, so all-pairs on M machines costs ~ n·query/M. The
	// paper projects "less than 5 days on 100 machines" for billion-edge
	// graphs; print the same projection for the largest stand-in.
	if len(out) == 0 {
		return out
	}
	last := out[len(out)-1]
	total := time.Duration(last.N) * last.PropQuery
	fmt.Fprintf(w, "\nall-pairs projection for %s (n=%d, measured %s/query):\n",
		last.Dataset, last.N, fmtDuration(last.PropQuery))
	for _, machines := range []int{1, 10, 100} {
		fmt.Fprintf(w, "  M=%-4d machines: ~%s\n", machines, fmtDuration(total/time.Duration(machines)))
	}
	return out
}

func table4On(ds Dataset, cfg Config) Table4Row {
	g := ds.MustBuild()
	row := Table4Row{Dataset: ds.Name, N: g.N(), M: g.M()}

	queries := pickQueries(g, cfg.Queries, cfg.Seed)

	// ---- Proposed algorithm ----
	p := core.DefaultParams()
	p.Seed = cfg.Seed
	p.Workers = cfg.Workers
	start := time.Now()
	eng := core.Build(g, p)
	row.PropPreproc = time.Since(start)
	row.PropBytes = eng.Stats().IndexBytes

	start = time.Now()
	for _, u := range queries {
		eng.TopK(u, 20)
	}
	row.PropQuery = time.Since(start) / time.Duration(len(queries))

	if !cfg.SkipAllPairs && g.N() <= 8000 {
		start = time.Now()
		eng.AllTopK(20)
		row.PropAllPairs = time.Since(start)
	}

	// ---- Fogaras & Rácz ----
	fp := fogaras.DefaultParams()
	fp.Seed = cfg.Seed
	fp.MemoryBudget = cfg.MemoryBudget
	fidx, err := fogaras.Build(g, fp)
	var mb *fogaras.ErrMemoryBudget
	switch {
	case err == nil:
		row.FogOK = true
		row.FogPreproc = fidx.PreprocessTime
		row.FogBytes = fidx.Bytes()
		fq := queries
		if len(fq) > 10 {
			fq = fq[:10] // Fogaras single-source is O(TnR'); cap work
		}
		start = time.Now()
		for _, u := range fq {
			fidx.TopK(u, 20)
		}
		row.FogQuery = time.Since(start) / time.Duration(len(fq))
	case errors.As(err, &mb):
		// reproduced "failed to allocate"
	default:
		panic(err)
	}

	// ---- Yu et al. ----
	yp := yu.DefaultParams()
	yp.MemoryBudget = cfg.MemoryBudget
	yres, err := yu.AllPairs(g, yp)
	var ymb *yu.ErrMemoryBudget
	switch {
	case err == nil:
		row.YuOK = true
		row.YuAllPairs = yres.Elapsed
		row.YuBytes = yres.Bytes
	case errors.As(err, &ymb):
		// reproduced "failed to allocate"
	default:
		panic(err)
	}
	return row
}

// pickQueries selects q deterministic random query vertices, preferring
// vertices with at least one in-link so queries are non-trivial.
func pickQueries(g *graph.Graph, q int, seed uint64) []uint32 {
	if q <= 0 {
		q = 10
	}
	if q > g.N() {
		q = g.N()
	}
	r := rng.New(seed + 17)
	out := make([]uint32, 0, q)
	for tries := 0; len(out) < q && tries < 50*q; tries++ {
		v := uint32(r.Intn(g.N()))
		if g.InDegree(v) > 0 || tries > 25*q {
			out = append(out, v)
		}
	}
	return out
}
