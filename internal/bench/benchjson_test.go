package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: AMD EPYC 7B13
BenchmarkTopK-4          	     313	   3779197 ns/op	 1165089 B/op	     244 allocs/op
BenchmarkSinglePairOneSided-4   	   41556	     28750 ns/op	     416 B/op	       1 allocs/op
BenchmarkWalkStep    	 2000000	       612.5 ns/op
PASS
ok  	repro/internal/core	95.1s
`

func TestParseGoBench(t *testing.T) {
	res, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results, want 3", len(res))
	}
	top := res[0]
	if top.Name != "BenchmarkTopK" || top.Procs != 4 || top.Iterations != 313 {
		t.Fatalf("first result: %+v", top)
	}
	if top.NsPerOp != 3779197 || top.BytesPerOp != 1165089 || top.AllocsPerOp != 244 {
		t.Fatalf("first result metrics: %+v", top)
	}
	// No -P suffix: procs defaults to 1, memory fields to zero.
	ws := res[2]
	if ws.Name != "BenchmarkWalkStep" || ws.Procs != 1 || ws.NsPerOp != 612.5 || ws.AllocsPerOp != 0 {
		t.Fatalf("walk-step result: %+v", ws)
	}
}

func TestParseGoBenchBadValue(t *testing.T) {
	_, err := ParseGoBench(strings.NewReader("BenchmarkX 10 abc ns/op\n"))
	if err == nil {
		t.Fatal("bad value not rejected")
	}
}

func TestWriteBenchJSONRoundTrip(t *testing.T) {
	res, err := ParseGoBench(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	report := BenchReport{Meta: map[string]string{"note": "test"}, Results: res}
	if err := WriteBenchJSON(&buf, report); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta["note"] != "test" || len(back.Results) != len(res) {
		t.Fatalf("round trip: %+v", back)
	}
	if back.Results[0] != res[0] {
		t.Fatalf("result changed in round trip: %+v vs %+v", back.Results[0], res[0])
	}
}
