package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Config controls the experiment harness.
type Config struct {
	// Scale multiplies dataset sizes (1.0 = default laptop scale).
	Scale float64
	// Queries is the number of query vertices per dataset.
	Queries int
	// Seed drives dataset selection of query vertices and all
	// Monte-Carlo components.
	Seed uint64
	// MemoryBudget bounds comparator allocations (bytes); this is the
	// stand-in for the paper's 256 GB testbed limit. 0 = 1 GiB.
	MemoryBudget int64
	// Workers bounds parallelism (0 = GOMAXPROCS).
	Workers int
	// SkipAllPairs disables the all-pairs column of Table 4 (used to
	// keep repeated sweeps cheap).
	SkipAllPairs bool
}

// DefaultConfig returns a configuration that completes every experiment
// on a laptop in minutes.
func DefaultConfig() Config {
	return Config{Scale: 1.0, Queries: 20, Seed: 1, MemoryBudget: 1 << 30}
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MemoryBudget <= 0 {
		c.MemoryBudget = 1 << 30
	}
	return c
}

// fmtDuration renders a duration the way the paper's tables do
// (ms below a second, seconds otherwise).
func fmtDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.1f ms", float64(d.Microseconds())/1000)
	case d < time.Minute:
		return fmt.Sprintf("%.2f s", d.Seconds())
	default:
		return fmt.Sprintf("%.1f min", d.Minutes())
	}
}

// fmtBytes renders byte counts like the paper (MB / GB).
func fmtBytes(b int64) string {
	switch {
	case b < 1<<10:
		return fmt.Sprintf("%d B", b)
	case b < 1<<20:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	case b < 1<<30:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	}
}

// table writes an aligned text table.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// section prints an underlined heading.
func section(w io.Writer, format string, args ...any) {
	title := fmt.Sprintf(format, args...)
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
