package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/exact"
)

// Sensitivity study (extension beyond the paper's tables): how ranking
// quality and query time respond to the decay factor c, the sample count
// R, and the walk length T. The paper fixes c = 0.6, R = 100, T = 11
// after informal pre-experiments; this quantifies those choices with
// NDCG@20 and precision@20 against the deterministic series ranking at
// matching parameters.

// SensitivityRow is one parameter point.
type SensitivityRow struct {
	Param   string // which knob varied
	Value   float64
	Query   time.Duration
	NDCG    float64
	PrecK   float64
	Matched int // queries with a non-empty exact top-k
}

// Sensitivity runs the sweep on the web-class dataset.
func Sensitivity(w io.Writer, cfg Config) []SensitivityRow {
	cfg = cfg.normalized()
	ds, err := ByName("web-stanford-sim", cfg.Scale)
	if err != nil {
		fmt.Fprintf(w, "sensitivity: %v\n", err)
		return nil
	}
	section(w, "Sensitivity: ranking quality vs c, R, T on %s", ds.Name)
	g := ds.MustBuild()
	queries := pickQueries(g, cfg.Queries, cfg.Seed)

	var out []SensitivityRow
	tb := &table{header: []string{"param", "value", "avg query", "NDCG@20", "prec@20"}}

	run := func(param string, value float64, p core.Params) {
		eng := core.Build(g, p)
		diag := exact.UniformDiagonal(g.N(), p.C)
		var ndcgSum, precSum float64
		matched := 0
		start := time.Now()
		for _, u := range queries {
			got := eng.TopK(u, 20)
			row := exact.SingleSource(g, diag, p.C, p.T, u)
			// Compare only against exact entries in the paper's
			// accuracy regime (Table 3 thresholds start at 0.04):
			// entries just above the θ = 0.01 cut-off are dominated by
			// sampling noise for every Monte-Carlo method.
			want := exact.TopK(row, u, 20)
			for len(want) > 0 && want[len(want)-1].Score < 0.04 {
				want = want[:len(want)-1]
			}
			if len(want) == 0 {
				continue
			}
			matched++
			rel := map[uint32]float64{}
			for _, s := range want {
				rel[s.V] = s.Score
			}
			gotRank := eval.Collect(got, func(s core.Scored) uint32 { return s.V })
			wantRank := eval.Collect(want, func(s exact.Scored) uint32 { return s.V })
			ndcgSum += eval.NDCGAtK(gotRank, rel, len(want))
			precSum += eval.PrecisionAtK(gotRank, wantRank, len(want))
		}
		elapsed := time.Since(start) / time.Duration(len(queries))
		row := SensitivityRow{Param: param, Value: value, Query: elapsed, Matched: matched}
		if matched > 0 {
			row.NDCG = ndcgSum / float64(matched)
			row.PrecK = precSum / float64(matched)
		}
		out = append(out, row)
		tb.addRow(param, fmt.Sprintf("%g", value), fmtDuration(row.Query),
			fmt.Sprintf("%.3f", row.NDCG), fmt.Sprintf("%.3f", row.PrecK))
	}

	base := core.DefaultParams()
	base.Seed = cfg.Seed
	base.Workers = cfg.Workers
	// Hybrid candidates, as in the accuracy experiment: the pure index
	// strategy's enumeration misses dominate the quality signal and
	// would mask the parameter effects this sweep is after.
	base.Strategy = core.CandidatesHybrid

	for _, c := range []float64{0.4, 0.6, 0.8} {
		p := base
		p.C = c
		run("c", c, p)
	}
	for _, R := range []int{10, 50, 100, 500} {
		p := base
		p.RScore = R
		run("R", float64(R), p)
	}
	for _, T := range []int{5, 11, 15} {
		p := base
		p.T = T
		p.DMax = T
		run("T", float64(T), p)
	}
	tb.write(w)
	return out
}
