package bench

import (
	"fmt"
	"io"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Figure 2 of the paper: for random query vertices, the average graph
// distance of the k-th most similar vertex as a function of k, against
// the network's average pairwise distance (the blue line). The paper's
// claims: (i) top-similar vertices are far closer than average, and
// (ii) web graphs concentrate them at smaller distances than social
// networks.

// Fig2Series is the distance-vs-rank curve for one dataset.
type Fig2Series struct {
	Dataset     string
	Class       string
	Ranks       []int
	AvgDistance []float64 // average distance of the rank-th similar vertex
	// NetworkAvgDistance is the sampled average pairwise distance
	// (the blue baseline).
	NetworkAvgDistance float64
}

// fig2Ranks are the rank sample points reported for each curve.
var fig2Ranks = []int{1, 2, 3, 5, 10, 20, 50, 100, 200, 500, 1000}

// Figure2 runs the distance-correlation experiment on one social, one
// collaboration, and two web-class datasets (the paper uses wiki-Vote,
// ca-HepTh, web-BerkStan, soc-LiveJournal1).
func Figure2(w io.Writer, cfg Config) []Fig2Series {
	cfg = cfg.normalized()
	section(w, "Figure 2: distance of top-k similar vertices vs average distance")
	var out []Fig2Series
	for _, name := range []string{"wiki-vote-sim", "ca-hepth-sim", "web-berkstan-sim", "soc-livejournal-sim"} {
		ds, err := ByName(name, cfg.Scale)
		if err != nil {
			fmt.Fprintf(w, "skip %s: %v\n", name, err)
			continue
		}
		s := figure2On(ds, cfg)
		out = append(out, s)
		fmt.Fprintf(w, "\n%s (paper: %s), network avg distance %.2f\n", s.Dataset, ds.PaperName, s.NetworkAvgDistance)
		tb := &table{header: []string{"rank k", "avg dist of k-th similar"}}
		for i, k := range s.Ranks {
			tb.addRow(fmt.Sprintf("%d", k), fmt.Sprintf("%.2f", s.AvgDistance[i]))
		}
		tb.write(w)
	}
	return out
}

func figure2On(ds Dataset, cfg Config) Fig2Series {
	g := ds.MustBuild()
	const c, T = 0.6, 11
	d := exact.UniformDiagonal(g.N(), c)
	r := rng.New(cfg.Seed)

	maxRank := 1000
	if maxRank >= g.N() {
		maxRank = g.N() - 1
	}
	var ranks []int
	for _, k := range fig2Ranks {
		if k <= maxRank {
			ranks = append(ranks, k)
		}
	}
	sums := make([]float64, len(ranks))
	counts := make([]int, len(ranks))

	queries := cfg.Queries
	if queries > g.N() {
		queries = g.N()
	}
	for q := 0; q < queries; q++ {
		u := uint32(r.Intn(g.N()))
		row := exact.SingleSource(g, d, c, T, u)
		top := exact.TopK(row, u, maxRank)
		dist := g.UndirectedDistances(u, -1)
		for i, k := range ranks {
			if k-1 >= len(top) || top[k-1].Score <= 0 {
				continue
			}
			dd := dist[top[k-1].V]
			if dd < 0 {
				continue // different component: similarity 0 anyway
			}
			sums[i] += float64(dd)
			counts[i]++
		}
	}

	series := Fig2Series{Dataset: ds.Name, Class: ds.Class, Ranks: ranks}
	series.AvgDistance = make([]float64, len(ranks))
	for i := range ranks {
		if counts[i] > 0 {
			series.AvgDistance[i] = sums[i] / float64(counts[i])
		}
	}
	samples := 30
	series.NetworkAvgDistance, _, _, _ = graph.SampleAverageDistance(g, samples, cfg.Seed+7)
	return series
}
