package bench

import (
	"fmt"
	"io"

	"repro/internal/graph"
)

// Table 2 of the paper: the dataset inventory. We print each synthetic
// stand-in next to the original's size so the scale factor is explicit.

// Table2Row describes one dataset stand-in.
type Table2Row struct {
	Dataset   Dataset
	N, M      int
	AvgInDeg  float64
	Dangling  int
	AvgDist   float64
	Diameter9 int // 90th-percentile distance
}

// Table2 builds every stand-in and reports its measured shape.
func Table2(w io.Writer, cfg Config) []Table2Row {
	cfg = cfg.normalized()
	section(w, "Table 2: dataset stand-ins (paper original -> synthetic)")
	tb := &table{header: []string{"dataset", "class", "n", "m", "avg in-deg", "avg dist", "paper n", "paper m"}}
	var out []Table2Row
	for _, ds := range Catalog(cfg.Scale) {
		g := ds.MustBuild()
		st := graph.ComputeStats(g, 20, cfg.Seed)
		row := Table2Row{
			Dataset: ds, N: st.N, M: st.M,
			AvgInDeg: st.AvgInDegree, Dangling: st.DanglingIn,
			AvgDist: st.AvgDistance, Diameter9: st.EffectiveDiam,
		}
		out = append(out, row)
		tb.addRow(ds.Name, ds.Class,
			fmt.Sprintf("%d", st.N), fmt.Sprintf("%d", st.M),
			fmt.Sprintf("%.1f", st.AvgInDegree), fmt.Sprintf("%.1f", st.AvgDistance),
			fmt.Sprintf("%d", ds.PaperN), fmt.Sprintf("%d", ds.PaperM))
	}
	tb.write(w)
	return out
}
