package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/fogaras"
	"repro/internal/rng"
)

// Table 3 of the paper: accuracy of the proposed method and of Fogaras &
// Rácz against exact single-source SimRank. For each threshold θ in
// {0.04, 0.05, 0.06, 0.07}, the measure is
//
//	(# found vertices with exact score ≥ θ) / (# vertices with exact score ≥ θ)
//
// averaged over query vertices.
//
// Ground truth is the deterministic evaluation of the truncated linear
// series with D = (1−c)·I — the quantity the proposed estimator targets.
// (This choice also explains the paper's observation that Fogaras & Rácz
// score systematically lower: their estimator targets *converged* SimRank
// with the exact diagonal, which is scaled differently; see Figure 1.)

// Table3Thresholds are the score cutoffs of the paper.
var Table3Thresholds = []float64{0.04, 0.05, 0.06, 0.07}

// Table3Row is the accuracy of both methods at one threshold on one
// dataset.
type Table3Row struct {
	Dataset   string
	Threshold float64
	Proposed  float64
	Fogaras   float64
	// ProposedPrec / FogarasPrec are precision (found ∩ optimal / found).
	// The paper reports recall only; precision exposes that Fogaras &
	// Rácz estimates converged SimRank, which sits above the series
	// scale (Figure 1), so at the same θ it over-reports.
	ProposedPrec float64
	FogarasPrec  float64
	// Pairs is the total number of optimal high-score vertices counted.
	Pairs int
}

// Table3 runs the accuracy comparison on the four small datasets.
func Table3(w io.Writer, cfg Config) []Table3Row {
	cfg = cfg.normalized()
	section(w, "Table 3: accuracy vs exact SimRank (proposed / Fogaras-Racz R'=100)")
	var out []Table3Row
	tb := &table{header: []string{"dataset", "threshold", "proposed", "fogaras", "prop.prec", "fog.prec", "optimal pairs"}}
	for _, ds := range SmallCatalog(cfg.Scale) {
		rows := table3On(ds, cfg)
		out = append(out, rows...)
		for _, r := range rows {
			tb.addRow(r.Dataset, fmt.Sprintf("%.2f", r.Threshold),
				fmt.Sprintf("%.5f", r.Proposed), fmt.Sprintf("%.5f", r.Fogaras),
				fmt.Sprintf("%.3f", r.ProposedPrec), fmt.Sprintf("%.3f", r.FogarasPrec),
				fmt.Sprintf("%d", r.Pairs))
		}
	}
	tb.write(w)
	return out
}

func table3On(ds Dataset, cfg Config) []Table3Row {
	g := ds.MustBuild()
	const c, T = 0.6, 11
	diag := exact.UniformDiagonal(g.N(), c)

	// Proposed method, hybrid candidates for the accuracy experiment.
	p := core.DefaultParams()
	p.Seed = cfg.Seed
	p.Workers = cfg.Workers
	p.RAlpha = 2000
	p.Strategy = core.CandidatesHybrid
	eng := core.Build(g, p)

	// Fogaras & Rácz with the paper's R' = 100.
	fp := fogaras.DefaultParams()
	fp.Seed = cfg.Seed
	fidx, err := fogaras.Build(g, fp)
	if err != nil {
		fidx = nil
	}

	queries := cfg.Queries
	if queries > g.N() {
		queries = g.N()
	}
	r := rng.New(cfg.Seed + 3)
	qs := make([]uint32, queries)
	for i := range qs {
		qs[i] = uint32(r.Intn(g.N()))
	}
	// Deterministic ground-truth rows, one per query.
	rows := make([][]float64, len(qs))
	for i, u := range qs {
		rows[i] = exact.SingleSource(g, diag, c, T, u)
	}

	var out []Table3Row
	for _, theta := range Table3Thresholds {
		var propHit, fogHit, optTotal, propFound, fogFound int
		for qi, u := range qs {
			row := rows[qi]
			opt := map[uint32]bool{}
			for v, s := range row {
				if uint32(v) != u && s >= theta {
					opt[uint32(v)] = true
				}
			}
			if len(opt) == 0 {
				continue
			}
			optTotal += len(opt)
			for _, s := range eng.Threshold(u, theta) {
				propFound++
				if opt[s.V] {
					propHit++
				}
			}
			if fidx != nil {
				for _, s := range fidx.Threshold(u, theta) {
					fogFound++
					if opt[s.V] {
						fogHit++
					}
				}
			}
		}
		row := Table3Row{Dataset: ds.Name, Threshold: theta, Pairs: optTotal}
		if optTotal > 0 {
			row.Proposed = float64(propHit) / float64(optTotal)
			row.Fogaras = float64(fogHit) / float64(optTotal)
		}
		if propFound > 0 {
			row.ProposedPrec = float64(propHit) / float64(propFound)
		}
		if fogFound > 0 {
			row.FogarasPrec = float64(fogHit) / float64(fogFound)
		}
		out = append(out, row)
	}
	return out
}
