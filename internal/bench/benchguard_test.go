package bench

import (
	"strings"
	"testing"
)

func guardBaseline() BenchReport {
	return BenchReport{Results: []BenchResult{
		{Name: "BenchmarkTopK", NsPerOp: 450000},
		{Name: "BenchmarkWalkStep", NsPerOp: 300},
	}}
}

func TestGuardRatioPasses(t *testing.T) {
	cur := []BenchResult{{Name: "BenchmarkWalkStep", NsPerOp: 550}}
	if err := GuardRatio(guardBaseline(), cur, "BenchmarkWalkStep", 2); err != nil {
		t.Fatalf("1.83x must pass a 2x gate: %v", err)
	}
}

func TestGuardRatioFailsOnRegression(t *testing.T) {
	cur := []BenchResult{{Name: "BenchmarkWalkStep", NsPerOp: 650}}
	err := GuardRatio(guardBaseline(), cur, "BenchmarkWalkStep", 2)
	if err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("2.17x must fail a 2x gate, got %v", err)
	}
}

func TestGuardRatioMissingEntries(t *testing.T) {
	cur := []BenchResult{{Name: "BenchmarkWalkStep", NsPerOp: 100}}
	if err := GuardRatio(guardBaseline(), cur, "BenchmarkNoSuch", 2); err == nil ||
		!strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("unknown snapshot name: got %v", err)
	}
	if err := GuardRatio(guardBaseline(), nil, "BenchmarkWalkStep", 2); err == nil ||
		!strings.Contains(err.Error(), "current run") {
		t.Fatalf("missing current measurement: got %v", err)
	}
	bad := BenchReport{Results: []BenchResult{{Name: "BenchmarkWalkStep", NsPerOp: 0}}}
	if err := GuardRatio(bad, cur, "BenchmarkWalkStep", 2); err == nil {
		t.Fatal("zero snapshot ns/op must error")
	}
}
