// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 8) on synthetic stand-ins for
// the original datasets, and prints rows in the paper's format.
//
// The real datasets (SNAP / LAW / MPI, Table 2) are not available offline;
// each stand-in matches the structural class of its namesake — clustered
// collaboration graphs, heavy-tailed social networks, copying-model web
// graphs, citation DAGs — at laptop-scaled sizes. See DESIGN.md §3 for the
// substitution rationale.
package bench

import (
	"fmt"

	"repro/internal/graph"
)

// Dataset describes one synthetic stand-in and the paper dataset it
// replaces.
type Dataset struct {
	// Name of the stand-in (paper name + "-sim").
	Name string
	// PaperName, PaperN, PaperM echo Table 2 of the paper.
	PaperName string
	PaperN    int
	PaperM    int
	// Class is the structural family: "collab", "social", "web",
	// "citation", "internet".
	Class string
	// Spec generates the stand-in.
	Spec graph.GenSpec
}

// Build generates the stand-in graph.
func (d Dataset) Build() (*graph.Graph, error) {
	return graph.Generate(d.Spec)
}

// MustBuild generates the stand-in graph and panics on error (specs in
// the catalog are statically valid).
func (d Dataset) MustBuild() *graph.Graph {
	g, err := d.Build()
	if err != nil {
		panic(fmt.Sprintf("bench: dataset %s: %v", d.Name, err))
	}
	return g
}

// scaleN scales a vertex count, keeping a sane minimum.
func scaleN(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 50 {
		v = 50
	}
	return v
}

// Catalog returns the dataset stand-ins mirroring Table 2, ordered by
// size. scale multiplies the baseline vertex counts (1.0 ≈ a laptop-scale
// sweep that finishes in minutes; the originals are 10–1000x larger).
func Catalog(scale float64) []Dataset {
	if scale <= 0 {
		scale = 1
	}
	return []Dataset{
		{
			Name: "ca-grqc-sim", PaperName: "ca-GrQc", PaperN: 5242, PaperM: 14496, Class: "collab",
			Spec: graph.GenSpec{Kind: "collab", N: scaleN(1800, scale), K: 4, P: 0.85, Seed: 101},
		},
		{
			Name: "as2000-sim", PaperName: "as20000102", PaperN: 6474, PaperM: 13233, Class: "internet",
			Spec: graph.GenSpec{Kind: "ba", N: scaleN(6500, scale), K: 2, P: 0.9, Seed: 102},
		},
		{
			Name: "wiki-vote-sim", PaperName: "Wiki-Vote", PaperN: 7115, PaperM: 103689, Class: "social",
			Spec: graph.GenSpec{Kind: "ba", N: scaleN(7000, scale), K: 14, P: 0.1, Seed: 103},
		},
		{
			Name: "ca-hepth-sim", PaperName: "ca-HepTh", PaperN: 9877, PaperM: 25998, Class: "collab",
			Spec: graph.GenSpec{Kind: "collab", N: scaleN(3300, scale), K: 4, P: 0.85, Seed: 104},
		},
		{
			Name: "cora-sim", PaperName: "Cora-direct", PaperN: 225026, PaperM: 714266, Class: "citation",
			Spec: graph.GenSpec{Kind: "citation", N: scaleN(22000, scale), K: 3, Seed: 105},
		},
		{
			Name: "web-stanford-sim", PaperName: "web-Stanford", PaperN: 281903, PaperM: 2312497, Class: "web",
			Spec: graph.GenSpec{Kind: "copying", N: scaleN(28000, scale), K: 8, P: 0.3, Seed: 106},
		},
		{
			Name: "web-berkstan-sim", PaperName: "web-BerkStan", PaperN: 685230, PaperM: 7600595, Class: "web",
			Spec: graph.GenSpec{Kind: "copying", N: scaleN(68000, scale), K: 11, P: 0.3, Seed: 107},
		},
		{
			Name: "soc-livejournal-sim", PaperName: "soc-LiveJournal1", PaperN: 4847571, PaperM: 68993773, Class: "social",
			Spec: graph.GenSpec{Kind: "ba", N: scaleN(100000, scale), K: 14, P: 0.6, Seed: 108},
		},
		{
			Name: "web-it-sim", PaperName: "it-2004", PaperN: 41291549, PaperM: 1150725436, Class: "web",
			Spec: graph.GenSpec{Kind: "copying", N: scaleN(300000, scale), K: 20, P: 0.3, Seed: 109},
		},
	}
}

// SmallCatalog returns the four small graphs used by the accuracy
// experiment (Table 3).
func SmallCatalog(scale float64) []Dataset {
	all := Catalog(scale)
	pick := map[string]bool{"ca-grqc-sim": true, "as2000-sim": true, "wiki-vote-sim": true, "ca-hepth-sim": true}
	var out []Dataset
	for _, d := range all {
		if pick[d.Name] {
			out = append(out, d)
		}
	}
	return out
}

// ByName returns the named dataset from the scaled catalog.
func ByName(name string, scale float64) (Dataset, error) {
	for _, d := range Catalog(scale) {
		if d.Name == name || d.PaperName == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("bench: unknown dataset %q", name)
}
