package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/exact"
	"repro/internal/rng"
)

// Figure 1 of the paper: scatter of exact SimRank scores against the
// approximated scores obtained from the linear series with D ≈ (1−c)·I,
// restricted to highly similar pairs. The paper's claim is that the
// points lie on a straight line of slope one in log-log space, i.e. the
// approximation rescales scores without reordering them.

// Fig1Point is one scatter point.
type Fig1Point struct {
	Exact  float64
	Approx float64
}

// Fig1Result holds one dataset's scatter plus summary statistics.
type Fig1Result struct {
	Dataset string
	C       float64
	Points  []Fig1Point
	// LogSlope is the least-squares slope of log(approx) vs log(exact);
	// the paper's claim is slope ≈ 1.
	LogSlope float64
	// LogR2 is the correlation coefficient squared in log space.
	LogR2 float64
	// SpearmanTop is the fraction of top-20 exact pairs that are also
	// top-20 approximate pairs (ranking preservation).
	RankOverlap float64
}

// Figure1 runs the experiment on the two collaboration/citation-class
// datasets (the paper uses ca-GrQc and cit-HepTh).
func Figure1(w io.Writer, cfg Config) []Fig1Result {
	cfg = cfg.normalized()
	section(w, "Figure 1: exact vs approximated SimRank (c = 0.6, highly similar pairs)")
	var out []Fig1Result
	for _, name := range []string{"ca-grqc-sim", "ca-hepth-sim"} {
		ds, err := ByName(name, cfg.Scale*0.6) // keep exact all-pairs feasible
		if err != nil {
			fmt.Fprintf(w, "skip %s: %v\n", name, err)
			continue
		}
		res := figure1On(ds, cfg)
		out = append(out, res)
		fmt.Fprintf(w, "\n%s (paper: %s): %d high-similarity pairs\n", res.Dataset, ds.PaperName, len(res.Points))
		fmt.Fprintf(w, "  log-log slope %.3f (paper: 1.0), R^2 %.3f, top-20 rank overlap %.2f\n",
			res.LogSlope, res.LogR2, res.RankOverlap)
		// Print a small sample of the scatter for eyeballing.
		step := len(res.Points)/10 + 1
		for i := 0; i < len(res.Points); i += step {
			p := res.Points[i]
			fmt.Fprintf(w, "    exact %.5f   approx %.5f\n", p.Exact, p.Approx)
		}
	}
	return out
}

func figure1On(ds Dataset, cfg Config) Fig1Result {
	g := ds.MustBuild()
	const c = 0.6
	iters := exact.IterationsFor(c, 1e-5)
	sTrue := exact.PartialSumsAllPairs(g, c, iters)
	sApprox := exact.SeriesAllPairs(g, exact.UniformDiagonal(g.N(), c), c, 11)

	res := Fig1Result{Dataset: ds.Name, C: c}
	r := rng.New(cfg.Seed)
	queries := cfg.Queries
	if queries > g.N() {
		queries = g.N()
	}
	for q := 0; q < queries; q++ {
		u := r.Intn(g.N())
		for v := 0; v < g.N(); v++ {
			if v == u {
				continue
			}
			ex := sTrue.At(u, v)
			if ex < 0.02 { // "highly similar" pairs only, as in the paper
				continue
			}
			res.Points = append(res.Points, Fig1Point{Exact: ex, Approx: sApprox.At(u, v)})
		}
	}
	res.LogSlope, res.LogR2 = logRegression(res.Points)
	res.RankOverlap = rankOverlap(sTrue, sApprox, 20)
	return res
}

// logRegression fits log(approx) = a + b·log(exact) and returns (b, R²).
func logRegression(pts []Fig1Point) (slope, r2 float64) {
	var xs, ys []float64
	for _, p := range pts {
		if p.Exact > 0 && p.Approx > 0 {
			xs = append(xs, math.Log(p.Exact))
			ys = append(ys, math.Log(p.Approx))
		}
	}
	n := float64(len(xs))
	if n < 2 {
		return 0, 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	denX := n*sxx - sx*sx
	if denX == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / denX
	denY := n*syy - sy*sy
	if denY == 0 {
		return slope, 1
	}
	r := (n*sxy - sx*sy) / math.Sqrt(denX*denY)
	return slope, r * r
}

// rankOverlap measures, averaged over vertices, the fraction of each
// vertex's exact top-k that also appears in its approximate top-k.
func rankOverlap(sTrue, sApprox *exact.Matrix, k int) float64 {
	n := sTrue.N
	if n == 0 {
		return 0
	}
	total, hit := 0, 0
	for u := 0; u < n; u++ {
		te := exact.TopK(sTrue.Row(u), uint32(u), k)
		ta := exact.TopK(sApprox.Row(u), uint32(u), k)
		approxSet := map[uint32]bool{}
		for _, s := range ta {
			approxSet[s.V] = true
		}
		for _, s := range te {
			if s.Score <= 0 {
				continue
			}
			total++
			if approxSet[s.V] {
				hit++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(hit) / float64(total)
}
