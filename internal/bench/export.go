package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export of experiment results, so the figures can be re-plotted with
// any plotting tool. Each writer emits one tidy table with a header row.

// WriteFig1CSV writes the exact-vs-approximate scatter points.
func WriteFig1CSV(w io.Writer, results []Fig1Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "exact", "approx"}); err != nil {
		return err
	}
	for _, res := range results {
		for _, p := range res.Points {
			rec := []string{res.Dataset, fmtF(p.Exact), fmtF(p.Approx)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig2CSV writes the distance-vs-rank series plus the per-dataset
// average-distance baseline.
func WriteFig2CSV(w io.Writer, series []Fig2Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "class", "rank", "avg_distance", "network_avg_distance"}); err != nil {
		return err
	}
	for _, s := range series {
		for i, k := range s.Ranks {
			rec := []string{
				s.Dataset, s.Class, strconv.Itoa(k),
				fmtF(s.AvgDistance[i]), fmtF(s.NetworkAvgDistance),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable4CSV writes the performance sweep.
func WriteTable4CSV(w io.Writer, rows []Table4Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"dataset", "n", "m",
		"prop_preproc_ns", "prop_query_ns", "prop_allpairs_ns", "prop_index_bytes",
		"fog_ok", "fog_preproc_ns", "fog_query_ns", "fog_index_bytes",
		"yu_ok", "yu_allpairs_ns", "yu_bytes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset, strconv.Itoa(r.N), strconv.Itoa(r.M),
			strconv.FormatInt(int64(r.PropPreproc), 10),
			strconv.FormatInt(int64(r.PropQuery), 10),
			strconv.FormatInt(int64(r.PropAllPairs), 10),
			strconv.FormatInt(r.PropBytes, 10),
			strconv.FormatBool(r.FogOK),
			strconv.FormatInt(int64(r.FogPreproc), 10),
			strconv.FormatInt(int64(r.FogQuery), 10),
			strconv.FormatInt(r.FogBytes, 10),
			strconv.FormatBool(r.YuOK),
			strconv.FormatInt(int64(r.YuAllPairs), 10),
			strconv.FormatInt(r.YuBytes, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable3CSV writes the accuracy rows.
func WriteTable3CSV(w io.Writer, rows []Table3Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "threshold", "proposed_recall", "fogaras_recall", "proposed_precision", "fogaras_precision", "optimal_pairs"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Dataset, fmtF(r.Threshold),
			fmtF(r.Proposed), fmtF(r.Fogaras),
			fmtF(r.ProposedPrec), fmtF(r.FogarasPrec),
			strconv.Itoa(r.Pairs),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(f float64) string { return fmt.Sprintf("%g", f) }
