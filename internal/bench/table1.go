package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// Table 1 of the paper is the analytic complexity comparison. We print it
// verbatim and back the two claims that matter empirically:
//
//  1. the preprocess is O(n) — per-vertex preprocess time is flat, and
//  2. query time does not grow with graph size (it depends on structure).
//
// The scaling sweep holds the generator class fixed (copying-model web
// graph) and quadruples n.

// ScalingRow is one size point of the sweep.
type ScalingRow struct {
	N, M         int
	Preproc      time.Duration
	PreprocPerV  time.Duration
	Query        time.Duration
	IndexBytes   int64
	BytesPerEdge float64
}

// Table1 prints the complexity table and runs the scaling sweep.
func Table1(w io.Writer, cfg Config) []ScalingRow {
	cfg = cfg.normalized()
	section(w, "Table 1: complexity of SimRank algorithms (analytic, from the paper)")
	tb := &table{header: []string{"algorithm", "type", "time", "space"}}
	tb.addRow("Proposed (top-k search)", "top-k", "<< O(n) query after O(n) preprocess", "O(m)")
	tb.addRow("Proposed (top-k for all)", "all", "<< O(n^2)", "O(m)")
	tb.addRow("Li et al. (single-pair)", "single-pair", "O(T d^2 n^2)", "O(n^2)")
	tb.addRow("Fogaras & Racz", "single-pair", "O(T R)", "O(m + n R)")
	tb.addRow("Jeh & Widom (naive)", "all-pairs", "O(T n^2 d^2)", "O(n^2)")
	tb.addRow("Lizorkin et al. (partial sums)", "all-pairs", "O(T min{n m, n^3/log n})", "O(n^2)")
	tb.addRow("Yu et al.", "all-pairs", "O(T min{n m, n^w})", "O(n^2)")
	tb.write(w)

	section(w, "Scaling sweep: copying-model web graphs, n x4 per step")
	sizes := []int{
		scaleN(8000, cfg.Scale),
		scaleN(32000, cfg.Scale),
		scaleN(128000, cfg.Scale),
	}
	stb := &table{header: []string{"n", "m", "preprocess", "preproc/vertex", "avg query", "index", "idx bytes/edge"}}
	var out []ScalingRow
	for i, n := range sizes {
		g := graph.CopyingModel(n, 10, 0.3, cfg.Seed+uint64(i))
		p := core.DefaultParams()
		p.Seed = cfg.Seed
		p.Workers = cfg.Workers
		start := time.Now()
		eng := core.Build(g, p)
		pre := time.Since(start)

		queries := pickQueries(g, cfg.Queries, cfg.Seed)
		start = time.Now()
		for _, u := range queries {
			eng.TopK(u, 20)
		}
		q := time.Since(start) / time.Duration(len(queries))

		row := ScalingRow{
			N: g.N(), M: g.M(),
			Preproc:      pre,
			PreprocPerV:  pre / time.Duration(g.N()),
			Query:        q,
			IndexBytes:   eng.Stats().IndexBytes,
			BytesPerEdge: float64(eng.Stats().IndexBytes) / float64(g.M()),
		}
		out = append(out, row)
		stb.addRow(fmt.Sprintf("%d", row.N), fmt.Sprintf("%d", row.M),
			fmtDuration(row.Preproc), row.PreprocPerV.String(),
			fmtDuration(row.Query), fmtBytes(row.IndexBytes),
			fmt.Sprintf("%.1f", row.BytesPerEdge))
	}
	stb.write(w)
	return out
}
