package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSON export of Go micro-benchmark results, so perf numbers can be
// committed (BENCH_core.json) and diffed across PRs.

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran with.
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are present when the benchmark ran with
	// -benchmem or b.ReportAllocs.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// BenchReport is the top-level BENCH_*.json document.
type BenchReport struct {
	// Meta carries free-form context: goos, goarch, cpu, baseline
	// numbers, notes.
	Meta    map[string]string `json:"meta,omitempty"`
	Results []BenchResult     `json:"results"`
}

// ParseGoBench extracts benchmark result lines from `go test -bench`
// output. Non-benchmark lines (pass/fail, goos, timing) are ignored.
func ParseGoBench(r io.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Minimum shape: name, iterations, value, "ns/op".
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Name: fields[0], Procs: 1, Iterations: iters}
		if i := strings.LastIndex(fields[0], "-"); i > 0 {
			if p, err := strconv.Atoi(fields[0][i+1:]); err == nil {
				res.Name, res.Procs = fields[0][:i], p
			}
		}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = int64(val)
			case "allocs/op":
				res.AllocsPerOp = int64(val)
			}
		}
		if res.NsPerOp == 0 {
			continue
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// WriteBenchJSON writes the report as indented JSON.
func WriteBenchJSON(w io.Writer, report BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
