package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps every experiment fast enough for unit tests.
func tinyConfig() Config {
	return Config{Scale: 0.04, Queries: 4, Seed: 1, MemoryBudget: 1 << 28, Workers: 2}
}

func TestCatalog(t *testing.T) {
	cat := Catalog(0.05)
	if len(cat) < 8 {
		t.Fatalf("catalog has %d datasets", len(cat))
	}
	seen := map[string]bool{}
	for _, d := range cat {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
		g, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.N() == 0 || g.M() == 0 {
			t.Fatalf("%s: empty graph", d.Name)
		}
		if d.PaperN == 0 || d.PaperM == 0 {
			t.Fatalf("%s: missing paper sizes", d.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("ca-grqc-sim", 0.1); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("ca-GrQc", 0.1); err != nil {
		t.Fatal("paper-name lookup failed")
	}
	if _, err := ByName("nope", 0.1); err == nil {
		t.Fatal("expected error")
	}
}

func TestSmallCatalog(t *testing.T) {
	small := SmallCatalog(0.1)
	if len(small) != 4 {
		t.Fatalf("small catalog has %d entries", len(small))
	}
}

func TestFigure1(t *testing.T) {
	var buf bytes.Buffer
	res := Figure1(&buf, tinyConfig())
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for _, r := range res {
		if len(r.Points) == 0 {
			t.Fatalf("%s: no scatter points", r.Dataset)
		}
		// The headline claim: slope ~1 and strong correlation in
		// log-log space, and ranking well preserved.
		if math.Abs(r.LogSlope-1) > 0.35 {
			t.Errorf("%s: log-log slope %.3f far from 1", r.Dataset, r.LogSlope)
		}
		if r.LogR2 < 0.7 {
			t.Errorf("%s: log-log R^2 %.3f too weak", r.Dataset, r.LogR2)
		}
		if r.RankOverlap < 0.8 {
			t.Errorf("%s: rank overlap %.3f too low", r.Dataset, r.RankOverlap)
		}
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Fatal("report missing header")
	}
}

func TestFigure2(t *testing.T) {
	var buf bytes.Buffer
	res := Figure2(&buf, tinyConfig())
	if len(res) != 4 {
		t.Fatalf("got %d series", len(res))
	}
	for _, s := range res {
		if len(s.Ranks) == 0 {
			t.Fatalf("%s: empty series", s.Dataset)
		}
		if s.NetworkAvgDistance <= 0 {
			t.Fatalf("%s: no baseline distance", s.Dataset)
		}
		// Claim: the top-ranked similar vertex is no farther than the
		// network average (at full scale it is far closer; tiny test
		// graphs are dense, so allow slack).
		if s.AvgDistance[0] > s.NetworkAvgDistance+0.5 {
			t.Errorf("%s: top-1 distance %.2f above network average %.2f",
				s.Dataset, s.AvgDistance[0], s.NetworkAvgDistance)
		}
	}
}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(&buf, tinyConfig())
	if len(rows) != len(Catalog(1)) {
		t.Fatalf("got %d rows", len(rows))
	}
	out := buf.String()
	if !strings.Contains(out, "ca-grqc-sim") || !strings.Contains(out, "paper n") {
		t.Fatal("report incomplete")
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	rows := Table3(&buf, tinyConfig())
	if len(rows) != 4*len(Table3Thresholds) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Proposed < 0 || r.Proposed > 1 || r.Fogaras < 0 || r.Fogaras > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
	}
	// The shape claim: averaged over datasets with data, the proposed
	// method is accurate (paper reports 0.82-0.99).
	var sum float64
	var cnt int
	for _, r := range rows {
		if r.Pairs > 0 {
			sum += r.Proposed
			cnt++
		}
	}
	if cnt > 0 && sum/float64(cnt) < 0.7 {
		t.Errorf("mean proposed accuracy %.3f suspiciously low", sum/float64(cnt))
	}
}

func TestTable4(t *testing.T) {
	cfg := tinyConfig()
	cfg.MemoryBudget = 3 * 8 * 500 * 500 // let Yu pass only for n <= 500
	var buf bytes.Buffer
	rows := Table4(&buf, cfg)
	if len(rows) != len(Catalog(1)) {
		t.Fatalf("got %d rows", len(rows))
	}
	sawYuFail, sawYuPass := false, false
	for _, r := range rows {
		if r.PropPreproc <= 0 || r.PropQuery <= 0 || r.PropBytes <= 0 {
			t.Fatalf("proposed measurements missing: %+v", r)
		}
		if r.YuOK {
			sawYuPass = true
		} else {
			sawYuFail = true
		}
	}
	if !sawYuFail {
		t.Error("no Yu memory failure reproduced")
	}
	if !sawYuPass {
		t.Error("Yu never ran; budget too small for the test")
	}
	if !strings.Contains(buf.String(), "—") {
		t.Error("report missing failure dashes")
	}
}

func TestTable4FogarasBudgetFailure(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.02
	cfg.Queries = 2
	cfg.SkipAllPairs = true
	cfg.MemoryBudget = 200 * 1024 // tiny: Fogaras must fail on larger sets
	var buf bytes.Buffer
	rows := Table4(&buf, cfg)
	sawFail := false
	for _, r := range rows {
		if !r.FogOK {
			sawFail = true
		}
	}
	if !sawFail {
		t.Fatal("no Fogaras memory failure reproduced")
	}
}

func TestTable1Scaling(t *testing.T) {
	var buf bytes.Buffer
	rows := Table1(&buf, tinyConfig())
	if len(rows) != 3 {
		t.Fatalf("got %d scaling rows", len(rows))
	}
	// Sizes must actually grow.
	if rows[2].N <= rows[0].N {
		t.Fatal("sweep sizes not increasing")
	}
	// The headline scaling claim: query time must not grow anywhere
	// near linearly with n (allow generous noise: 16x size -> < 8x time).
	ratioN := float64(rows[2].N) / float64(rows[0].N)
	ratioQ := float64(rows[2].Query) / float64(rows[0].Query+1)
	if ratioQ > ratioN/2 {
		t.Errorf("query time scales with n: size x%.1f, time x%.1f", ratioN, ratioQ)
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	rows := Ablation(&buf, tinyConfig())
	if len(rows) != 6 {
		t.Fatalf("got %d ablation rows", len(rows))
	}
	for _, r := range rows {
		if r.Recall < 0 || r.Recall > 1 {
			t.Fatalf("bad recall: %+v", r)
		}
		if r.Query <= 0 {
			t.Fatalf("no query time: %+v", r)
		}
	}
}

func TestSensitivity(t *testing.T) {
	var buf bytes.Buffer
	rows := Sensitivity(&buf, tinyConfig())
	if len(rows) != 10 { // 3 c values + 4 R values + 3 T values
		t.Fatalf("got %d sensitivity rows", len(rows))
	}
	for _, r := range rows {
		if r.NDCG < 0 || r.NDCG > 1.0001 || r.PrecK < 0 || r.PrecK > 1.0001 {
			t.Fatalf("metric out of range: %+v", r)
		}
	}
	// Quality must not degrade as R grows (allow small noise).
	var r10, r500 float64
	for _, r := range rows {
		if r.Param == "R" && r.Value == 10 {
			r10 = r.NDCG
		}
		if r.Param == "R" && r.Value == 500 {
			r500 = r.NDCG
		}
	}
	if r500+0.05 < r10 {
		t.Errorf("NDCG at R=500 (%.3f) worse than at R=10 (%.3f)", r500, r10)
	}
}

func TestLogRegression(t *testing.T) {
	// Perfectly proportional points: slope 1, R² 1.
	var pts []Fig1Point
	for _, x := range []float64{0.01, 0.02, 0.05, 0.1, 0.4} {
		pts = append(pts, Fig1Point{Exact: x, Approx: 0.5 * x})
	}
	slope, r2 := logRegression(pts)
	if math.Abs(slope-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("slope %v r2 %v", slope, r2)
	}
	// Quadratic relation: slope 2.
	pts = pts[:0]
	for _, x := range []float64{0.01, 0.02, 0.05, 0.1} {
		pts = append(pts, Fig1Point{Exact: x, Approx: x * x})
	}
	slope, _ = logRegression(pts)
	if math.Abs(slope-2) > 1e-9 {
		t.Fatalf("quadratic slope %v", slope)
	}
	// Degenerate inputs.
	if s, r := logRegression(nil); s != 0 || r != 0 {
		t.Fatal("empty regression nonzero")
	}
	if s, r := logRegression([]Fig1Point{{0, 0.1}, {-1, 0.2}}); s != 0 || r != 0 {
		t.Fatal("non-positive points should be excluded")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "0.50 ms",
		20 * time.Millisecond:  "20.0 ms",
		3 * time.Second:        "3.00 s",
		2 * time.Minute:        "2.0 min",
	}
	for d, want := range cases {
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%v) = %q, want %q", d, got, want)
		}
	}
	if fmtBytes(512) != "512 B" || fmtBytes(2048) != "2.0 KB" {
		t.Error("fmtBytes small values wrong")
	}
	if !strings.Contains(fmtBytes(3<<30), "GB") {
		t.Error("fmtBytes GB wrong")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Scale != 1 || c.Queries != 20 || c.Seed != 1 || c.MemoryBudget != 1<<30 {
		t.Fatalf("bad defaults: %+v", c)
	}
}
