package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestWriteFig1CSV(t *testing.T) {
	res := []Fig1Result{{
		Dataset: "d1",
		Points:  []Fig1Point{{0.1, 0.05}, {0.2, 0.09}},
	}}
	var buf bytes.Buffer
	if err := WriteFig1CSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 {
		t.Fatalf("rows = %d", len(records))
	}
	if records[1][0] != "d1" || records[1][1] != "0.1" {
		t.Fatalf("row = %v", records[1])
	}
}

func TestWriteFig2CSV(t *testing.T) {
	series := []Fig2Series{{
		Dataset: "d", Class: "web",
		Ranks: []int{1, 10}, AvgDistance: []float64{2, 2.5},
		NetworkAvgDistance: 3.1,
	}}
	var buf bytes.Buffer
	if err := WriteFig2CSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 3 || records[2][2] != "10" {
		t.Fatalf("records = %v", records)
	}
}

func TestWriteTable4CSV(t *testing.T) {
	rows := []Table4Row{{
		Dataset: "x", N: 10, M: 20,
		PropPreproc: time.Millisecond, PropQuery: time.Microsecond,
		PropBytes: 100, FogOK: true, FogBytes: 7, YuOK: false,
	}}
	var buf bytes.Buffer
	if err := WriteTable4CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "prop_preproc_ns") || !strings.Contains(out, "1000000") {
		t.Fatalf("csv = %q", out)
	}
}

func TestWriteTable3CSV(t *testing.T) {
	rows := []Table3Row{{Dataset: "x", Threshold: 0.04, Proposed: 0.95, Fogaras: 0.9, Pairs: 12}}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || records[1][6] != "12" {
		t.Fatalf("records = %v", records)
	}
}
