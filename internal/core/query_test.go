package core

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
)

// buildQueryEngine builds a preprocessed engine tuned for small graphs.
func buildQueryEngine(g *graph.Graph, seed uint64, strat CandidateStrategy) *Engine {
	p := DefaultParams()
	p.Seed = seed
	p.Workers = 2
	p.RAlpha = 2000
	p.Strategy = strat
	return Build(g, p)
}

// exactTopK is the ground-truth ranking by the deterministic series.
func exactTopK(g *graph.Graph, c float64, T int, u uint32, k int) []exact.Scored {
	d := exact.UniformDiagonal(g.N(), c)
	return exact.TopK(exact.SingleSource(g, d, c, T, u), u, k)
}

// recallAtK measures |approx ∩ exact| / k, counting only exact entries
// above a noise floor (MC estimates cannot be expected to recover pairs
// whose score is deep below the sampling noise).
func recallAtK(got []Scored, want []exact.Scored, floor float64) (hit, total int) {
	gotSet := map[uint32]bool{}
	for _, s := range got {
		gotSet[s.V] = true
	}
	for _, w := range want {
		if w.Score < floor {
			continue
		}
		total++
		if gotSet[w.V] {
			hit++
		}
	}
	return hit, total
}

func TestTopKRecallOnCollaboration(t *testing.T) {
	g := graph.Collaboration(120, 5, 0.7, 40, 7)
	e := buildQueryEngine(g, 1, CandidatesIndex)
	hits, totals := 0, 0
	for u := uint32(0); u < 20; u++ {
		got := e.TopK(u, 10)
		want := exactTopK(g, e.p.C, e.p.T, u, 10)
		h, tot := recallAtK(got, want, 0.05)
		hits += h
		totals += tot
	}
	if totals == 0 {
		t.Skip("no high-similarity pairs in generated graph")
	}
	if float64(hits) < 0.85*float64(totals) {
		t.Fatalf("index-strategy recall %d/%d too low", hits, totals)
	}
}

func TestTopKRecallOnWebGraph(t *testing.T) {
	g := graph.CopyingModel(400, 5, 0.3, 11)
	e := buildQueryEngine(g, 2, CandidatesIndex)
	hits, totals := 0, 0
	for u := uint32(0); u < 25; u++ {
		got := e.TopK(u, 10)
		want := exactTopK(g, e.p.C, e.p.T, u, 10)
		h, tot := recallAtK(got, want, 0.05)
		hits += h
		totals += tot
	}
	if totals == 0 {
		t.Skip("no high-similarity pairs in generated graph")
	}
	if float64(hits) < 0.85*float64(totals) {
		t.Fatalf("web-graph recall %d/%d too low", hits, totals)
	}
}

func TestBallStrategyFindsEverything(t *testing.T) {
	// With the exhaustive ball strategy and pruning disabled, every
	// vertex with a clearly-above-threshold score must be recovered.
	g := graph.Collaboration(60, 5, 0.8, 20, 3)
	p := DefaultParams()
	p.Seed = 5
	p.Workers = 2
	p.Strategy = CandidatesBall
	p.RAlpha = 1000
	e := Build(g, p)
	d := exact.UniformDiagonal(g.N(), p.C)
	for u := uint32(0); u < 10; u++ {
		row := exact.SingleSource(g, d, p.C, p.T, u)
		res := e.Threshold(u, 0.01)
		gotSet := map[uint32]bool{}
		for _, s := range res {
			gotSet[s.V] = true
		}
		for v, s := range row {
			if uint32(v) == u || s < 0.08 { // well above theta and noise
				continue
			}
			if !gotSet[uint32(v)] {
				t.Fatalf("u=%d: missed vertex %d with exact score %v", u, v, s)
			}
		}
	}
}

func TestHybridSupersetOfIndex(t *testing.T) {
	g := graph.CopyingModel(200, 4, 0.3, 9)
	pi := DefaultParams()
	pi.Seed = 4
	pi.Workers = 1
	pi.RAlpha = 500
	idxEng := Build(g, pi)
	ph := pi
	ph.Strategy = CandidatesHybrid
	hybEng := Build(g, ph)
	u := uint32(17)
	collect := func(e *Engine) []uint32 {
		s := e.getScratch()
		defer e.putScratch(s)
		dist := s.distBuf()
		s.ball, _ = g.UndirectedBallInto(u, e.p.DMax, -1, dist, s.ball[:0])
		defer s.resetDist()
		out := e.collectCandidates(s, u, dist, s.ball)
		return append([]uint32(nil), out...)
	}
	ci := collect(idxEng)
	ch := collect(hybEng)
	chSet := map[uint32]bool{}
	for _, v := range ch {
		chSet[v] = true
	}
	for _, v := range ci {
		if !chSet[v] {
			t.Fatalf("hybrid candidates missing index candidate %d", v)
		}
	}
}

func TestQueryStatsAccounting(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 13)
	e := buildQueryEngine(g, 6, CandidatesIndex)
	_, stats := e.TopKStats(5, 10)
	if stats.Candidates < 0 {
		t.Fatal("negative candidates")
	}
	if stats.Refined+stats.PrunedByRough+stats.PrunedByBound > stats.Candidates {
		t.Fatalf("stats overcount: %+v", stats)
	}
}

func TestPruningDoesNotChangeHighScorers(t *testing.T) {
	// Enabling/disabling the bounds must not change which clearly-high
	// vertices are returned (bounds are upper bounds, not heuristics).
	g := graph.Collaboration(80, 5, 0.8, 30, 17)
	base := DefaultParams()
	base.Seed = 8
	base.Workers = 1
	base.RAlpha = 1000
	base.Strategy = CandidatesBall

	noPrune := base
	noPrune.DisableL1 = true
	noPrune.DisableL2 = true
	noPrune.DisableAdaptive = true

	e1 := Build(g, base)
	e2 := Build(g, noPrune)
	for u := uint32(0); u < 10; u++ {
		r1 := e1.Threshold(u, 0.01)
		set1 := map[uint32]bool{}
		for _, s := range r1 {
			set1[s.V] = true
		}
		for _, s := range e2.Threshold(u, 0.01) {
			if s.Score >= 0.1 && !set1[s.V] {
				t.Fatalf("u=%d: pruning dropped high scorer %d (%.3f)", u, s.V, s.Score)
			}
		}
	}
}

func TestTopKRespectsK(t *testing.T) {
	g := graph.Collaboration(60, 5, 0.8, 20, 21)
	e := buildQueryEngine(g, 9, CandidatesHybrid)
	for _, k := range []int{1, 3, 20} {
		res := e.TopK(0, k)
		if len(res) > k {
			t.Fatalf("k=%d returned %d results", k, len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatalf("results not sorted: %v", res)
			}
		}
		for _, s := range res {
			if s.V == 0 {
				t.Fatal("query vertex in its own results")
			}
		}
	}
}

func TestPreprocessIndependentOfWorkerCount(t *testing.T) {
	// The per-vertex RNG derivation makes the preprocess artifacts
	// identical regardless of parallelism.
	g := graph.CopyingModel(300, 4, 0.3, 6)
	p := DefaultParams()
	p.Seed = 5
	p.RAlpha = 500
	p1 := p
	p1.Workers = 1
	p8 := p
	p8.Workers = 8
	e1 := Build(g, p1)
	e8 := Build(g, p8)
	for i := range e1.gamma {
		if e1.gamma[i] != e8.gamma[i] {
			t.Fatalf("gamma[%d] differs across worker counts", i)
		}
	}
	for v := 0; v < e1.g.N(); v++ {
		a, b := e1.idx.rightRow(uint32(v)), e8.idx.rightRow(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("index entry %d differs across worker counts", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index entry %d differs across worker counts", v)
			}
		}
	}
}

func TestBallBudgetQueriesStillFindNeighbours(t *testing.T) {
	// With a tiny ball budget, queries must not silently prune clearly
	// similar vertices — the L2 bound and the index still cover them.
	g := graph.Collaboration(60, 5, 0.8, 20, 5)
	p := DefaultParams()
	p.Seed = 7
	p.Workers = 1
	p.RAlpha = 1000
	p.BallBudget = 10 // absurdly small
	p.Strategy = CandidatesHybrid
	e := Build(g, p)
	pFull := p
	pFull.BallBudget = -1
	eFull := Build(g, pFull)
	for u := uint32(0); u < 10; u++ {
		full := eFull.TopK(u, 5)
		capped := e.TopK(u, 5)
		fullSet := map[uint32]bool{}
		for _, s := range full {
			fullSet[s.V] = true
		}
		hits := 0
		strong := 0
		for _, s := range full {
			if s.Score >= 0.1 {
				strong++
			}
		}
		for _, s := range capped {
			if fullSet[s.V] {
				hits++
			}
		}
		if strong > 0 && hits == 0 {
			t.Fatalf("u=%d: capped ball lost all of the full results (%v vs %v)", u, capped, full)
		}
	}
}

func TestExactScoringMatchesSeries(t *testing.T) {
	// With ExactScoring on and supports under the cap, query scores are
	// the deterministic truncated-series values.
	g := graph.Collaboration(60, 5, 0.8, 20, 11)
	p := DefaultParams()
	p.Seed = 6
	p.Workers = 1
	p.RAlpha = 500
	p.ExactScoring = true
	p.Strategy = CandidatesHybrid
	e := Build(g, p)
	d := exact.UniformDiagonal(g.N(), p.C)
	for u := uint32(0); u < 10; u++ {
		row := exact.SingleSource(g, d, p.C, p.T, u)
		for _, s := range e.TopK(u, 5) {
			if diff := row[s.V] - s.Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("u=%d v=%d: exact-scored %v vs series %v", u, s.V, s.Score, row[s.V])
			}
		}
	}
}

func TestExactScoringFallsBackOnHubs(t *testing.T) {
	// A tiny support cap forces the MC fallback; queries must still
	// succeed.
	g := graph.PreferentialAttachment(300, 5, 0.3, 13)
	p := DefaultParams()
	p.Seed = 9
	p.Workers = 1
	p.RAlpha = 500
	p.ExactScoring = true
	p.ExactSupportCap = 2
	e := Build(g, p)
	for u := uint32(0); u < 10; u++ {
		res := e.TopK(u, 5)
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatal("unsorted results under fallback")
			}
		}
	}
}

func TestTopKDeterministic(t *testing.T) {
	g := graph.CopyingModel(200, 4, 0.3, 5)
	e1 := buildQueryEngine(g, 11, CandidatesIndex)
	e2 := buildQueryEngine(g, 11, CandidatesIndex)
	for u := uint32(0); u < 10; u++ {
		a := e1.TopK(u, 5)
		b := e2.TopK(u, 5)
		if len(a) != len(b) {
			t.Fatalf("u=%d: lengths differ", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("u=%d: result %d differs: %v vs %v", u, i, a[i], b[i])
			}
		}
	}
}

func TestThresholdScoresAboveTheta(t *testing.T) {
	g := graph.Collaboration(80, 5, 0.7, 30, 9)
	e := buildQueryEngine(g, 13, CandidatesHybrid)
	res := e.Threshold(3, 0.05)
	for _, s := range res {
		if s.Score < 0.05 {
			t.Fatalf("threshold result below theta: %v", s)
		}
	}
}

func TestAllTopKMatchesPerVertex(t *testing.T) {
	g := graph.CopyingModel(120, 4, 0.3, 3)
	e := buildQueryEngine(g, 15, CandidatesIndex)
	all := e.AllTopK(5)
	if len(all) != g.N() {
		t.Fatalf("AllTopK returned %d rows", len(all))
	}
	for _, u := range []uint32{0, 17, 63} {
		single := e.TopK(u, 5)
		if len(single) != len(all[u]) {
			t.Fatalf("u=%d: lengths differ", u)
		}
		for i := range single {
			if single[i] != all[u][i] {
				t.Fatalf("u=%d: AllTopK differs from TopK at %d", u, i)
			}
		}
	}
}

func TestAllTopKFuncVisitsAll(t *testing.T) {
	g := graph.ErdosRenyi(50, 150, 2)
	e := buildQueryEngine(g, 16, CandidatesIndex)
	var visited [50]bool
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	e.AllTopKFunc(3, func(u uint32, res []Scored) {
		<-mu
		visited[u] = true
		mu <- struct{}{}
	})
	for v, ok := range visited {
		if !ok {
			t.Fatalf("vertex %d not visited", v)
		}
	}
}

func TestAllTopKIndependentOfWorkerCount(t *testing.T) {
	g := graph.CopyingModel(150, 4, 0.3, 8)
	p := DefaultParams()
	p.Seed = 3
	p.RAlpha = 300
	p1 := p
	p1.Workers = 1
	p4 := p
	p4.Workers = 4
	a := Build(g, p1).AllTopK(5)
	b := Build(g, p4).AllTopK(5)
	for u := range a {
		if len(a[u]) != len(b[u]) {
			t.Fatalf("u=%d: result lengths differ across worker counts", u)
		}
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("u=%d: result %d differs across worker counts", u, i)
			}
		}
	}
}

func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		b := graph.NewBuilder(n)
		if n == 2 {
			b.AddEdge(0, 1)
		}
		g := b.Build()
		p := DefaultParams()
		p.Workers = 1
		e := Build(g, p)
		if n > 0 {
			res := e.TopK(0, 5)
			for _, s := range res {
				if s.V == 0 {
					t.Fatal("self in results")
				}
			}
		}
	}
}

func TestTopKAccumulator(t *testing.T) {
	a := newTopKAcc(3)
	for _, s := range []Scored{{1, 0.5}, {2, 0.9}, {3, 0.1}, {4, 0.7}, {5, 0.9}} {
		a.add(s)
	}
	res := a.result()
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	// 0.9 tie broken toward smaller ID first.
	if res[0].V != 2 || res[1].V != 5 || res[2].V != 4 {
		t.Fatalf("order: %v", res)
	}
	if a.kth() != 0.7 {
		t.Fatalf("kth = %v", a.kth())
	}
	empty := newTopKAcc(0)
	empty.add(Scored{1, 1})
	if len(empty.result()) != 0 {
		t.Fatal("k=0 accumulated")
	}
}

func TestIndexBuilt(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 7)
	e := buildQueryEngine(g, 3, CandidatesIndex)
	if e.idx == nil {
		t.Fatal("index not built")
	}
	if e.idx.indexedVertices() == 0 {
		t.Fatal("no vertex got any index entry")
	}
	if e.idx.bytes() <= 0 {
		t.Fatal("index bytes not accounted")
	}
	// Inverted lists must be consistent with forward lists.
	for u := 0; u < e.g.N(); u++ {
		for _, w := range e.idx.rightRow(uint32(u)) {
			found := false
			for _, l := range e.idx.leftRow(w) {
				if l == uint32(u) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("inverted list missing (%d -> %d)", u, w)
			}
		}
	}
}

func TestPreprocessStatsPopulated(t *testing.T) {
	g := graph.ErdosRenyi(100, 400, 4)
	e := buildQueryEngine(g, 5, CandidatesIndex)
	st := e.Stats()
	if st.IndexBytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}
