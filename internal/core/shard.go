package core

import (
	"context"
	"math"
	"slices"
)

// Shard-restricted scoring and the deterministic scatter-gather merge.
//
// The distributed tier partitions *candidate scoring work* across shards
// by vertex range: every shard holds the full snapshot (same graph, same
// seed), scores only the candidates it owns, and ships per-candidate
// outcomes to the router, which replays the single-node scan over the
// merged stream. The hard invariant is byte-identity: the router's
// answer must equal search()'s, bit for bit, including the pruning
// statistics.
//
// Why a plain per-shard top-k merge is NOT enough for /topk: search()'s
// adaptive pruning floor, max(theta, kth-best-so-far), is re-evaluated
// once per 64-candidate block over the *globally* bound-sorted candidate
// list. A shard-local floor can both over-prune (its local kth rises
// faster than the global one at the same scan position) and under-prune
// (a candidate the global scan rough-prunes survives a lower local
// floor). So shards do not make floor-dependent decisions at all:
//
//   - Candidates whose upper bound is below Theta are returned unscored
//     (ShardUnscored). Every admissible floor is >= Theta, so the global
//     scan bound-prunes them no matter what.
//   - Candidates at or above Theta are scored at the fixed floor Theta.
//     The rough adaptive estimate is shipped alongside the refined score
//     (ShardScored), so the rough-prune decision "rough < 0.3*floor" can
//     be re-taken by the router against the true global floor. A
//     candidate rough-pruned at Theta (ShardRoughPruned) is rough-pruned
//     at every floor >= Theta — 0.3*floor only grows — so its refined
//     score is never needed. Paths that run no rough pass (exact
//     scoring, DisableAdaptive) return ShardScoredNoRough and are never
//     rough-pruned, matching search() exactly.
//
// MergeShardTopK then reconstructs the global bound order — the
// (ub desc, v asc) total order of sortBounds — by k-way merge and
// replays search()'s block loop verbatim: recompute the floor per block,
// stop at the first bound below it, trim the block tail, re-take every
// rough-prune decision from the shipped estimates. Because each
// candidate's score is a pure function of (snapshot, v) — candSeed is
// per-vertex — the replayed scan observes exactly the values the
// single-node scan would have computed, so results AND pruning counters
// are byte-identical. Cache hit/miss counters are the one exception:
// they depend on which shard's cache served each candidate, so the
// router sums the per-shard values instead (topology-dependent, still
// deterministic for a fixed topology and query history).

// ShardCand states. A fragment entry is one candidate's scoring outcome
// on the shard that owns it.
const (
	// ShardUnscored: upper bound below Theta; carries V and UB only.
	ShardUnscored = uint8(iota)
	// ShardRoughPruned: rough estimate fell below 0.3*Theta; carries
	// Rough, no Score.
	ShardRoughPruned
	// ShardScored: refined estimate in Score, rough pass ran (Rough
	// valid) — the router re-takes the rough-prune decision.
	ShardScored
	// ShardScoredNoRough: refined estimate in Score, no rough pass ran
	// (exact scoring or DisableAdaptive); never rough-pruned.
	ShardScoredNoRough
)

// ShardCand is one candidate's outcome in a shard fragment, ordered by
// (UB desc, V asc) within the fragment. UB is clamped to MaxFloat64 so
// fragments survive JSON transport; all real bounds are <= 1, so the
// clamp cannot reorder the merge.
type ShardCand struct {
	V     uint32
	UB    float64
	State uint8
	Rough float64
	Score float64
}

// shardCandBefore is the fragment order: UB descending, ties by V
// ascending — exactly sortBounds' total order.
func shardCandBefore(a, b ShardCand) bool {
	if a.UB != b.UB {
		return a.UB > b.UB
	}
	return a.V < b.V
}

func clampUB(ub float64) float64 {
	return math.Min(ub, math.MaxFloat64)
}

// SortShardCands puts a fragment into the order TopKShardCtx produces
// and MergeShardTopK requires. Fragments from TopKShardCtx are already
// sorted; this is for callers assembling fragments by hand (tests) or
// validating untrusted wire input.
func SortShardCands(cs []ShardCand) {
	slices.SortFunc(cs, func(a, b ShardCand) int {
		if shardCandBefore(a, b) {
			return -1
		}
		if shardCandBefore(b, a) {
			return 1
		}
		return 0
	})
}

// TopKShardCtx scores the candidates of a query at u that fall in the
// vertex range [lo, hi), at the fixed pruning floor Theta, and returns
// the fragment the router merges with MergeShardTopK. The returned
// stats carry the shard-local cache counters plus scan counters as
// observed at floor Theta (the router recomputes the global scan
// counters during the merge). The full range [0, N) reproduces exactly
// the work of a single-node query with a floor pinned at Theta.
func (e *Snapshot) TopKShardCtx(ctx context.Context, u uint32, lo, hi uint32) ([]ShardCand, QueryStats, error) {
	return e.shardScan(ctx, u, lo, hi, e.p.Workers, nil)
}

// TopKShardAppendCtx is TopKShardCtx writing the fragment into dst
// (reusing its capacity, like append), for servers that recycle
// fragment buffers across requests. The returned slice is dst grown as
// needed; dst's previous contents are discarded.
func (e *Snapshot) TopKShardAppendCtx(ctx context.Context, u uint32, lo, hi uint32, dst []ShardCand) ([]ShardCand, QueryStats, error) {
	return e.shardScan(ctx, u, lo, hi, e.p.Workers, dst[:0])
}

// TopKShardBatchCtx answers many shard-restricted queries, parallelized
// across queries (one worker per query, like TopKBatchCtx).
func (e *Snapshot) TopKShardBatchCtx(ctx context.Context, us []uint32, lo, hi uint32) ([][]ShardCand, []QueryStats, error) {
	res := make([][]ShardCand, len(us))
	sts := make([]QueryStats, len(us))
	if err := e.topKShardBatchInto(ctx, us, lo, hi, res, sts); err != nil {
		return nil, nil, err
	}
	return res, sts, nil
}

// TopKShardBatchAppendCtx is TopKShardBatchCtx writing fragments and
// stats into caller-supplied parallel slices (len(frags) and len(sts)
// must equal len(us)); frags[i]'s capacity is reused per query.
func (e *Snapshot) TopKShardBatchAppendCtx(ctx context.Context, us []uint32, lo, hi uint32, frags [][]ShardCand, sts []QueryStats) error {
	for i := range frags {
		frags[i] = frags[i][:0]
	}
	return e.topKShardBatchInto(ctx, us, lo, hi, frags, sts)
}

func (e *Snapshot) topKShardBatchInto(ctx context.Context, us []uint32, lo, hi uint32, frags [][]ShardCand, sts []QueryStats) error {
	return e.forEachIndexParallel(ctx, len(us), func(i int) {
		f, st, err := e.shardScan(ctx, us[i], lo, hi, 1, frags[i])
		if err != nil {
			return // the pool sees the cancelled ctx and reports it
		}
		frags[i] = f
		sts[i] = st
	})
}

// shardScan writes the fragment into dst (grown as needed; nil
// allocates fresh). dst must arrive with length zero or nil.
func (e *Snapshot) shardScan(ctx context.Context, u uint32, lo, hi uint32, workers int, dst []ShardCand) ([]ShardCand, QueryStats, error) {
	var stats QueryStats
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	qs := e.getScratch()
	defer e.putScratch(qs)
	r := e.queryRNG(u)

	wd, dist, l1, exactU := e.searchProlog(qs, u, r)
	defer qs.resetDist()

	cands := e.collectCandidates(qs, u, dist, qs.ball)

	// Bound only the candidates this shard owns. The ordering within the
	// fragment is the global total order restricted to [lo, hi), which
	// is all the merge needs.
	bs := qs.bounds[:0]
	for _, v := range cands {
		if v < lo || v >= hi {
			continue
		}
		bs = append(bs, boundedCand{v, e.candBound(u, v, dist, l1)})
	}
	qs.bounds = bs
	sortBounds(bs)
	stats.Candidates = len(bs)

	theta := e.p.Theta
	out := slices.Grow(dst, len(bs))[:len(bs)]
	// Everything below Theta is below every admissible floor: return it
	// unscored. Bounds are sorted descending, so this is a suffix.
	cut := len(bs)
	for i, b := range bs {
		if b.ub < theta {
			cut = i
			break
		}
	}
	stats.PrunedByBound = len(bs) - cut
	for i := cut; i < len(bs); i++ {
		out[i] = ShardCand{V: bs[i].v, UB: clampUB(bs[i].ub), State: ShardUnscored}
	}

	scores := qs.scores
	for i := 0; i < cut; {
		if err := ctx.Err(); err != nil {
			qs.scores = scores
			return nil, stats, err
		}
		end := i + scoreBlock
		if end > cut {
			end = cut
		}
		block := bs[i:end]
		if cap(scores) < len(block) {
			scores = make([]candScore, len(block))
		} else {
			scores = scores[:len(block)]
		}
		if workers > 1 && len(block) >= minParallelScore {
			e.scoreBlockParallel(block, scores, u, wd, theta, exactU, workers)
		} else {
			for j, b := range block {
				scores[j] = e.scoreCandidate(qs, wd, u, b.v, theta, exactU)
			}
		}
		for j, b := range block {
			cs := scores[j]
			switch cs.cache {
			case cacheHit:
				stats.CacheHits++
			case cacheMiss:
				stats.CacheMisses++
			}
			stats.CacheEvictions += int(cs.evicted)
			sc := ShardCand{V: b.v, UB: clampUB(b.ub), Rough: cs.rough}
			switch cs.state {
			case candRoughPruned:
				sc.State = ShardRoughPruned
				stats.PrunedByRough++
			case candScoredNoRough:
				sc.State = ShardScoredNoRough
				sc.Score = cs.score
				stats.Refined++
			default:
				sc.State = ShardScored
				sc.Score = cs.score
				stats.Refined++
			}
			out[i+j] = sc
		}
		i = end
	}
	qs.scores = scores
	return out, stats, nil
}

// ThresholdShardCtx is the shard-restricted Threshold query. Unlike
// top-k, the threshold scan's floor is fixed at theta — there is no
// adaptive component — so every pruning decision is local to the
// candidate and a plain deterministic merge of the per-shard result
// lists (score desc, ties by V asc: scoredLess) reproduces the
// single-node output. Per-shard stats sum to the single-node stats.
func (e *Snapshot) ThresholdShardCtx(ctx context.Context, u uint32, theta float64, lo, hi uint32) ([]Scored, QueryStats, error) {
	var stats QueryStats
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	qs := e.getScratch()
	defer e.putScratch(qs)
	r := e.queryRNG(u)

	wd, dist, l1, exactU := e.searchProlog(qs, u, r)
	defer qs.resetDist()

	cands := e.collectCandidates(qs, u, dist, qs.ball)
	bs := qs.bounds[:0]
	for _, v := range cands {
		if v < lo || v >= hi {
			continue
		}
		bs = append(bs, boundedCand{v, e.candBound(u, v, dist, l1)})
	}
	qs.bounds = bs
	sortBounds(bs)
	stats.Candidates = len(bs)

	acc := newTopKAcc(len(bs))
	scores := qs.scores
	workers := e.p.Workers
	for i := 0; i < len(bs); {
		if err := ctx.Err(); err != nil {
			qs.scores = scores
			return nil, stats, err
		}
		if bs[i].ub < theta {
			stats.PrunedByBound += len(bs) - i
			break
		}
		end := i + scoreBlock
		if end > len(bs) {
			end = len(bs)
		}
		for end > i && bs[end-1].ub < theta {
			end--
		}
		block := bs[i:end]
		if cap(scores) < len(block) {
			scores = make([]candScore, len(block))
		} else {
			scores = scores[:len(block)]
		}
		if workers > 1 && len(block) >= minParallelScore {
			e.scoreBlockParallel(block, scores, u, wd, theta, exactU, workers)
		} else {
			for j, b := range block {
				scores[j] = e.scoreCandidate(qs, wd, u, b.v, theta, exactU)
			}
		}
		for j, b := range block {
			switch scores[j].cache {
			case cacheHit:
				stats.CacheHits++
			case cacheMiss:
				stats.CacheMisses++
			}
			stats.CacheEvictions += int(scores[j].evicted)
			switch scores[j].state {
			case candRoughPruned:
				stats.PrunedByRough++
			default:
				stats.Refined++
				if scores[j].score >= theta {
					acc.add(Scored{b.v, scores[j].score})
				}
			}
		}
		i = end
	}
	qs.scores = scores
	return acc.result(), stats, nil
}

// MergeShardTopK merges per-shard fragments (each sorted by UB desc, V
// asc over a disjoint vertex range) and replays the single-node scan of
// search() over the merged stream: per-block floor recomputation,
// bound-prune cutoff, block tail trim, and re-taken rough-prune
// decisions. k == 0 means unlimited (every candidate scoring >= theta).
// The returned results and scan counters are byte-identical to
// search()'s on the union of the fragments; cache counters are zero
// here — the caller sums the per-shard stats for those.
func MergeShardTopK(k int, theta float64, frags [][]ShardCand) ([]Scored, QueryStats) {
	return MergeShardTopKScratch(k, theta, frags, nil)
}

// MergeScratch holds the reusable buffers of a fragment merge, so a
// router can run MergeShardTopKScratch per query without re-allocating
// the merged candidate stream. The zero value is ready to use.
type MergeScratch struct {
	bs    []ShardCand
	heads []int
}

// MergeShardTopKScratch is MergeShardTopK drawing its working memory
// from ms (nil behaves like a fresh scratch).
func MergeShardTopKScratch(k int, theta float64, frags [][]ShardCand, ms *MergeScratch) ([]Scored, QueryStats) {
	var stats QueryStats
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	stats.Candidates = total

	if ms == nil {
		ms = &MergeScratch{}
	}
	// K-way merge into the global bound order. Shard counts are small
	// (single digits), so a linear head scan beats heap bookkeeping.
	bs := slices.Grow(ms.bs[:0], total)
	heads := ms.heads[:0]
	for range frags {
		heads = append(heads, 0)
	}
	ms.heads = heads
	for merged := 0; merged < total; merged++ {
		best := -1
		for fi, f := range frags {
			if heads[fi] >= len(f) {
				continue
			}
			if best < 0 || shardCandBefore(f[heads[fi]], frags[best][heads[best]]) {
				best = fi
			}
		}
		bs = append(bs, frags[best][heads[best]])
		heads[best]++
	}
	ms.bs = bs

	acc := newTopKAcc(k)
	if k == 0 {
		acc = newTopKAcc(len(bs))
	}
	for i := 0; i < len(bs); {
		floor := theta
		if k > 0 && acc.kth() > floor {
			floor = acc.kth()
		}
		if bs[i].UB < floor {
			stats.PrunedByBound += len(bs) - i
			break
		}
		end := i + scoreBlock
		if end > len(bs) {
			end = len(bs)
		}
		for end > i && bs[end-1].UB < floor {
			end--
		}
		for j := i; j < end; j++ {
			c := bs[j]
			switch {
			case c.State == ShardRoughPruned,
				c.State == ShardScored && c.Rough < 0.3*floor:
				stats.PrunedByRough++
			case c.State == ShardUnscored:
				// Unreachable for well-formed fragments: an unscored entry
				// has UB < theta <= floor, so the sorted scan breaks (or the
				// tail trim excludes it) before reaching it. Counted as
				// bound-pruned defensively rather than invented as a score.
				stats.PrunedByBound++
			default:
				stats.Refined++
				if c.Score >= theta {
					acc.add(Scored{c.V, c.Score})
				}
			}
		}
		i = end
	}
	return acc.result(), stats
}

// MergeScored merges per-shard Threshold result lists (each sorted best
// first by scoredLess) into the global best-first order. k == 0 keeps
// everything. Exact for any fixed-floor query mode.
func MergeScored(k int, frags [][]Scored) []Scored {
	total := 0
	for _, f := range frags {
		total += len(f)
	}
	if k == 0 || k > total {
		k = total
	}
	out := make([]Scored, 0, k)
	heads := make([]int, len(frags))
	for len(out) < k {
		best := -1
		for fi, f := range frags {
			if heads[fi] >= len(f) {
				continue
			}
			if best < 0 || scoredLess(frags[best][heads[best]], f[heads[fi]]) {
				best = fi
			}
		}
		if best < 0 {
			break
		}
		out = append(out, frags[best][heads[best]])
		heads[best]++
	}
	return out
}
