package core

import "context"

// TopKBatch answers a slice of top-k queries, fanning them over
// Params.Workers whole-query workers (each query scores its candidates
// sequentially — for throughput work the workers are already saturated
// across queries). All queries share the snapshot's tally cache, so a
// batch with recurring or overlapping candidate sets warms the cache for
// itself. Results are byte-identical to issuing the queries one at a
// time, and so are the per-query statistics except the cache counters:
// when two concurrent queries race on the same cold candidate, which of
// them records the miss depends on scheduling (the tally they compute is
// identical either way).
func (e *Snapshot) TopKBatch(us []uint32, k int) ([][]Scored, []QueryStats) {
	res, sts, _ := e.TopKBatchCtx(context.Background(), us, k)
	return res, sts
}

// TopKBatchCtx is TopKBatch with cancellation, observed between queries
// and between each query's candidate-scoring blocks. On cancellation the
// partial results are discarded and ctx.Err() is returned.
func (e *Snapshot) TopKBatchCtx(ctx context.Context, us []uint32, k int) ([][]Scored, []QueryStats, error) {
	res := make([][]Scored, len(us))
	sts := make([]QueryStats, len(us))
	err := e.forEachIndexParallel(ctx, len(us), func(i int) {
		r, st, err := e.search(ctx, us[i], k, e.p.Theta, 1)
		if err != nil {
			return // the pool sees the cancelled ctx and reports it
		}
		res[i] = r
		sts[i] = st
	})
	if err != nil {
		return nil, nil, err
	}
	return res, sts, nil
}
