package core

import (
	"testing"

	"repro/internal/graph"
)

func dynParams() Params {
	p := DefaultParams()
	p.Seed = 3
	p.Workers = 2
	p.Strategy = CandidatesHybrid
	return p
}

func TestDynamicBasicLifecycle(t *testing.T) {
	d := NewDynamic(6, dynParams())
	defer d.Close()
	// 1, 2, 3 all link to both 4 and 5.
	for _, src := range []uint32{1, 2, 3} {
		if err := d.AddEdge(src, 4); err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(src, 5); err != nil {
			t.Fatal(err)
		}
	}
	if d.M() != 6 {
		t.Fatalf("m = %d", d.M())
	}
	s, err := d.SinglePair(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("s(4,5) = %v, want positive", s)
	}
	top, err := d.TopK(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].V != 5 {
		t.Fatalf("TopK(4) = %v", top)
	}
}

func TestDynamicUpdateChangesScores(t *testing.T) {
	d := NewDynamic(8, dynParams())
	// Initially 4 and 5 share in-links {1,2}.
	for _, src := range []uint32{1, 2} {
		d.AddEdge(src, 4)
		d.AddEdge(src, 5)
	}
	before, err := d.SinglePair(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Now give 5 two extra unshared in-links: similarity must drop.
	// Queries serve the stale snapshot until a refresh, so apply the
	// batch synchronously before re-querying.
	d.AddEdge(6, 5)
	d.AddEdge(7, 5)
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, err := d.SinglePair(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("similarity did not drop after diluting in-links: %v -> %v", before, after)
	}
	// Removing the extra links restores the original score exactly
	// (same edge set, same seeds).
	d.RemoveEdge(6, 5)
	d.RemoveEdge(7, 5)
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	restored, err := d.SinglePair(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if restored != before {
		t.Fatalf("restored score %v != original %v", restored, before)
	}
}

func TestDynamicMatchesFullRebuild(t *testing.T) {
	// Incremental refresh must answer queries identically to an engine
	// built from scratch on the same final graph with the same seed.
	g := graph.CopyingModel(400, 4, 0.3, 9)
	p := dynParams()
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if _, err := d.TopK(0, 5); err != nil { // force initial build
		t.Fatal(err)
	}

	// Apply a small batch of updates.
	d.AddEdge(17, 23)
	d.AddEdge(301, 55)
	d.RemoveEdge(1, 0)
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	inc, full := d.Refreshes()
	if inc != 1 || full != 1 {
		t.Fatalf("refresh counts: inc=%d full=%d", inc, full)
	}

	eng, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := Build(eng.Graph(), p)
	// γ rows must match for every vertex: affected ones were recomputed
	// with the same per-vertex seed, unaffected ones were untouched and
	// their walk distributions are unchanged by construction.
	for i := range fresh.gamma {
		if fresh.gamma[i] != eng.gamma[i] {
			t.Fatalf("gamma[%d]: incremental %v vs fresh %v", i, eng.gamma[i], fresh.gamma[i])
		}
	}
	for v := 0; v < fresh.g.N(); v++ {
		a, b := fresh.idx.rightRow(uint32(v)), eng.idx.rightRow(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("index entry %d: incremental %v vs fresh %v", v, b, a)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index entry %d: incremental %v vs fresh %v", v, b, a)
			}
		}
	}
}

func TestDynamicLargeBatchFallsBackToRebuild(t *testing.T) {
	g := graph.CopyingModel(200, 4, 0.3, 2)
	d := NewDynamicFrom(g, dynParams())
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	// Touch in-lists of half the vertices: affected set exceeds n/2.
	for v := uint32(0); v < 100; v++ {
		d.AddEdge(199, v)
	}
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	_, full := d.Refreshes()
	if full != 2 {
		t.Fatalf("expected full rebuild, got full=%d", full)
	}
}

func TestDynamicErrors(t *testing.T) {
	d := NewDynamic(3, dynParams())
	if err := d.AddEdge(0, 3); err == nil {
		t.Fatal("expected range error")
	}
	if err := d.AddEdge(1, 1); err == nil {
		t.Fatal("expected self-loop error")
	}
	if err := d.RemoveEdge(5, 0); err == nil {
		t.Fatal("expected range error")
	}
	// Idempotent operations.
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if d.M() != 1 {
		t.Fatal("duplicate add changed edge count")
	}
	if err := d.RemoveEdge(1, 2); err != nil {
		t.Fatal(err) // removing a missing edge is a no-op
	}
}

func TestDynamicPendingAccounting(t *testing.T) {
	d := NewDynamic(5, dynParams())
	d.AddEdge(0, 1)
	d.AddEdge(2, 1)
	d.AddEdge(0, 3)
	if got := d.Pending(); got != 2 { // targets 1 and 3
		t.Fatalf("pending = %d, want 2", got)
	}
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatal("pending not cleared")
	}
}

func TestMarkOutReachable(t *testing.T) {
	g := graph.Path(5) // 0->1->2->3->4
	set := map[uint32]struct{}{}
	markOutReachable(g, 1, 2, set)
	want := []uint32{1, 2, 3}
	if len(set) != len(want) {
		t.Fatalf("set = %v", set)
	}
	for _, v := range want {
		if _, ok := set[v]; !ok {
			t.Fatalf("missing %d in %v", v, set)
		}
	}
}
