package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// The committed golden corpus pins the exact query outputs of the
// deterministic draw schema: one bounded-uniform draw (Lemire
// multiply-shift with bounded rejection) per live walk per step, consumed
// identically on the alias fast path and the uniform fallback. Any change
// to the walk kernel, the alias tables, the rng, or the tally pipeline
// that shifts a single draw — or a single floating-point accumulation —
// fails this test. Regenerate (deliberately!) with:
//
//	go test ./internal/core -run TestGoldenQueryCorpus -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_queries.json from the current implementation")

const goldenFile = "testdata/golden_queries.json"

// goldenRecord stores one query result with bit-exact scores: Bits is
// math.Float64bits of the score, so JSON round-tripping cannot lose
// precision.
type goldenRecord struct {
	Case   string   `json:"case"`
	Scores []uint64 `json:"scores"`
	Verts  []uint32 `json:"verts,omitempty"`
}

func goldenCorpus() []goldenRecord {
	var out []goldenRecord
	add := func(name string, res []Scored) {
		rec := goldenRecord{Case: name}
		for _, s := range res {
			rec.Verts = append(rec.Verts, s.V)
			rec.Scores = append(rec.Scores, math.Float64bits(s.Score))
		}
		out = append(out, rec)
	}
	addVal := func(name string, v float64) {
		out = append(out, goldenRecord{Case: name, Scores: []uint64{math.Float64bits(v)}})
	}

	// Corpus A: copying-model web graph, paper defaults, index strategy.
	{
		g := graph.CopyingModel(3000, 6, 0.3, 21)
		p := DefaultParams()
		p.Seed = 17
		p.Workers = 1
		e := Build(g, p)
		for _, u := range []uint32{0, 17, 999, 2500} {
			add(fmt.Sprintf("copying/topk/u=%d", u), e.TopK(u, 20))
		}
		add("copying/threshold/u=42", e.Threshold(42, 0.02))
		addVal("copying/pair/0-1", e.SinglePair(0, 1))
		addVal("copying/pair/7-1234", e.SinglePair(7, 1234))
		addVal("copying/pairR/2-0", e.SinglePairR(2, 0, 200))
	}

	// Corpus B: collaboration communities, hybrid candidates, tally cache
	// enabled (cache on/off must be byte-identical, so these goldens also
	// pin the cached path).
	{
		g := graph.Collaboration(400, 5, 0.8, 40, 7)
		p := DefaultParams()
		p.Seed = 4
		p.Workers = 2
		p.Strategy = CandidatesHybrid
		p.RAlpha = 1000
		p.CacheBytes = 4 << 20
		e := Build(g, p)
		for _, u := range []uint32{0, 3, 77, 500} {
			add(fmt.Sprintf("collab/topk/u=%d", u), e.TopK(u, 10))
			// Repeat: the second pass serves from the cache.
			add(fmt.Sprintf("collab/topk-cached/u=%d", u), e.TopK(u, 10))
		}
	}

	// Corpus C: preferential attachment (heavy-tailed in-degrees), ball
	// strategy with no L2 preprocess — exercises the uniform kernel on
	// high-degree vertices and the no-index query path.
	{
		g := graph.PreferentialAttachment(1500, 5, 0.3, 9)
		p := DefaultParams()
		p.Seed = 99
		p.Workers = 1
		p.Strategy = CandidatesBall
		p.DisableL2 = true
		p.RAlpha = 2000
		e := Build(g, p)
		for _, u := range []uint32{1, 10, 100} {
			add(fmt.Sprintf("prefattach/topk/u=%d", u), e.TopK(u, 10))
		}
		addVal("prefattach/pair/5-6", e.SinglePair(5, 6))
	}

	// Corpus D: dangling-heavy citation DAG — many dead walks, so the
	// live/dead draw-consumption discipline is pinned too.
	{
		g := graph.CitationDAG(800, 4, 3)
		p := DefaultParams()
		p.Seed = 5
		p.Workers = 1
		e := Build(g, p)
		for _, u := range []uint32{0, 400, 799} {
			add(fmt.Sprintf("citation/topk/u=%d", u), e.TopK(u, 10))
		}
		addVal("citation/pair/100-200", e.SinglePair(100, 200))
	}
	return out
}

func TestGoldenQueryCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus builds several engines")
	}
	got := goldenCorpus()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d records", goldenFile, len(got))
		return
	}
	data, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("reading golden corpus (regenerate with -update-golden): %v", err)
	}
	var want []goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing golden corpus: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("corpus has %d records, golden file has %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Case != w.Case {
			t.Fatalf("record %d: case %q, golden %q", i, g.Case, w.Case)
		}
		if len(g.Scores) != len(w.Scores) {
			t.Errorf("%s: %d scores, golden %d", g.Case, len(g.Scores), len(w.Scores))
			continue
		}
		for j := range g.Scores {
			if g.Scores[j] != w.Scores[j] {
				t.Errorf("%s: score[%d] = %x (%v), golden %x (%v)", g.Case, j,
					g.Scores[j], math.Float64frombits(g.Scores[j]),
					w.Scores[j], math.Float64frombits(w.Scores[j]))
			}
		}
		for j := range g.Verts {
			if j < len(w.Verts) && g.Verts[j] != w.Verts[j] {
				t.Errorf("%s: vert[%d] = %d, golden %d", g.Case, j, g.Verts[j], w.Verts[j])
			}
		}
	}
}
