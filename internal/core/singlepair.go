package core

import (
	"context"
	"slices"

	"repro/internal/rng"
)

// SinglePair estimates the truncated SimRank score s⁽ᵀ⁾(u, v) with
// Algorithm 1 of the paper, using Params.RScore walk pairs. The estimate
// is unbiased for each series term and concentrates per Proposition 3.
func (e *Snapshot) SinglePair(u, v uint32) float64 {
	return e.SinglePairR(u, v, e.p.RScore)
}

// SinglePairCtx is SinglePair with cancellation. A single-pair estimate
// is one bounded O(T·R) unit of work, so the context is checked once on
// entry; a cancelled context returns ctx.Err() without touching the
// scratch pool.
func (e *Snapshot) SinglePairCtx(ctx context.Context, u, v uint32) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.SinglePair(u, v), nil
}

// SinglePairR is SinglePair with an explicit sample count R, used by the
// adaptive sampling of the query phase and by accuracy experiments.
func (e *Snapshot) SinglePairR(u, v uint32, R int) float64 {
	s := e.getScratch()
	defer e.putScratch(s)
	s.rng.Seed(e.pairSeed(u, v))
	return e.singlePairR(u, v, R, &s.rng, s)
}

// singlePairR implements Algorithm 1: R walks from u and R walks from v
// advance in lockstep; at every step t each coinciding position w adds
// cᵗ·D_ww·α·β/R² to the estimate, where α and β count the walks of each
// side at w.
func (e *Snapshot) singlePairR(u, v uint32, R int, r *rng.Source, s *scratch) float64 {
	upos := s.walkBuf(R)
	vpos := s.walkBuf2(R)
	lane := s.laneBuf(R)
	resetWalks(upos, u)
	resetWalks(vpos, v)

	sigma := 0.0
	ct := 1.0
	invR2 := 1.0 / (float64(R) * float64(R))
	aliveU, aliveV := R, R
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			aliveU = stepWalks(e.wt, r, upos, lane)
			aliveV = stepWalks(e.wt, r, vpos, lane)
			ct *= e.p.C
		}
		if aliveU == 0 || aliveV == 0 {
			break // all walks on one side are dead; no further terms
		}
		s.beginTally()
		for _, w := range vpos {
			if w != Dead {
				s.tallyCount(w)
			}
		}
		// Σ_w D_ww·α_w·β_w accumulated by scanning the u-side walk
		// positions in slice order (each of the α_w walks at w adds
		// D_ww·β_w once), which keeps floating-point summation order —
		// and therefore results — deterministic for a fixed seed.
		for _, w := range upos {
			if w != Dead && s.mark[w] == s.epoch {
				sigma += ct * e.p.dval(w) * float64(s.cnt[w]) * invR2
			}
		}
	}
	return sigma
}

// singlePairOneSided estimates s⁽ᵀ⁾(u, v) using a precomputed u-side walk
// distribution (typically from the query's RAlpha = 10000 Algorithm 2
// walks) and R fresh walks from v:
//
//	ŝ = Σ_t cᵗ Σ_w p̂_u,t(w)·D_ww·(count_v,t(w)/R)
//
// With the u-side effectively exact, only v-side sampling noise remains,
// roughly halving the estimator variance per candidate at no extra cost —
// the walks funding p̂ were already performed for the L1 bound.
//
// The v-side positions are tallied through the scratch's epoch marks and
// looked up once per distinct position (binary search in wd's sorted
// support), so the step cost is O(R + distinct·log support) with zero
// allocations.
func (e *Snapshot) singlePairOneSided(s *scratch, wd *walkDist, v uint32, R int, r *rng.Source) float64 {
	vpos := s.walkBuf2(R)
	lane := s.laneBuf(R)
	resetWalks(vpos, v)
	sigma := 0.0
	ct := 1.0
	invR := 1.0 / float64(R)
	alive := R
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			alive = stepWalks(e.wt, r, vpos, lane)
			ct *= e.p.C
		}
		if alive == 0 || t >= len(wd.verts) || len(wd.verts[t]) == 0 {
			break
		}
		s.beginTally()
		for _, w := range vpos {
			if w != Dead {
				s.tallyCount(w)
			}
		}
		// Distinct v-side positions in first-seen order: deterministic for
		// a fixed walk stream, independent of everything else.
		vs, ps := wd.verts[t], wd.probs[t]
		for _, w := range s.touched {
			if i, ok := slices.BinarySearch(vs, w); ok {
				sigma += ct * e.p.dval(w) * ps[i] * float64(s.cnt[w]) * invR
			}
		}
	}
	return sigma
}

// SingleSourceMC estimates s⁽ᵀ⁾(u, v) for every v in targets by running
// Algorithm 1 against each target with R walk pairs. Each target's walks
// are seeded from the (u, v) pair, keeping estimates independent across
// targets and stable under reordering.
func (e *Snapshot) SingleSourceMC(u uint32, targets []uint32, R int) []float64 {
	out := make([]float64, len(targets))
	s := e.getScratch()
	defer e.putScratch(s)
	for i, v := range targets {
		s.rng.Seed(e.pairSeed(u, v))
		out[i] = e.singlePairR(u, v, R, &s.rng, s)
	}
	return out
}
