package core

import "repro/internal/rng"

// SinglePair estimates the truncated SimRank score s⁽ᵀ⁾(u, v) with
// Algorithm 1 of the paper, using Params.RScore walk pairs. The estimate
// is unbiased for each series term and concentrates per Proposition 3.
func (e *Engine) SinglePair(u, v uint32) float64 {
	return e.singlePairR(u, v, e.p.RScore, e.queryRNG(u^v<<1))
}

// SinglePairR is SinglePair with an explicit sample count R, used by the
// adaptive sampling of the query phase and by accuracy experiments.
func (e *Engine) SinglePairR(u, v uint32, R int) float64 {
	return e.singlePairR(u, v, R, e.queryRNG(u^v<<1))
}

// singlePairR implements Algorithm 1: R walks from u and R walks from v
// advance in lockstep; at every step t each coinciding position w adds
// cᵗ·D_ww·α·β/R² to the estimate, where α and β count the walks of each
// side at w.
func (e *Engine) singlePairR(u, v uint32, R int, r *rng.Source) float64 {
	uw := newWalkSet(e.g, r, u, R)
	vw := newWalkSet(e.g, r, v, R)
	vcnt := make(map[uint32]int32, R)

	sigma := 0.0
	ct := 1.0
	invR2 := 1.0 / (float64(R) * float64(R))
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			uw.step()
			vw.step()
			ct *= e.p.C
		}
		vw.counts(vcnt)
		if len(vcnt) == 0 || uw.alive() == 0 {
			break // all walks on one side are dead; no further terms
		}
		// Σ_w D_ww·α_w·β_w accumulated by scanning the u-side walk
		// positions in slice order (each of the α_w walks at w adds
		// D_ww·β_w once), which keeps floating-point summation order —
		// and therefore results — deterministic for a fixed seed.
		for _, w := range uw.pos {
			if w == Dead {
				continue
			}
			if cb := vcnt[w]; cb > 0 {
				sigma += ct * e.p.dval(w) * float64(cb) * invR2
			}
		}
	}
	return sigma
}

// singlePairOneSided estimates s⁽ᵀ⁾(u, v) using a precomputed u-side walk
// distribution (typically from the query's RAlpha = 10000 Algorithm 2
// walks) and R fresh walks from v:
//
//	ŝ = Σ_t cᵗ Σ_w p̂_u,t(w)·D_ww·(count_v,t(w)/R)
//
// With the u-side effectively exact, only v-side sampling noise remains,
// roughly halving the estimator variance per candidate at no extra cost —
// the walks funding p̂ were already performed for the L1 bound.
func (e *Engine) singlePairOneSided(wd *walkDist, v uint32, R int, r *rng.Source) float64 {
	vw := newWalkSet(e.g, r, v, R)
	sigma := 0.0
	ct := 1.0
	invR := 1.0 / float64(R)
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			vw.step()
			ct *= e.p.C
		}
		probs := wd.probs[t]
		if len(probs) == 0 {
			break
		}
		alive := 0
		for _, w := range vw.pos {
			if w == Dead {
				continue
			}
			alive++
			if pr, ok := probs[w]; ok {
				sigma += ct * e.p.dval(w) * pr * invR
			}
		}
		if alive == 0 {
			break
		}
	}
	return sigma
}

// SingleSourceMC estimates s⁽ᵀ⁾(u, v) for every v in targets by running
// Algorithm 1 against each target with R walk pairs. The u-side walks are
// re-sampled per target, keeping estimates independent across targets.
func (e *Engine) SingleSourceMC(u uint32, targets []uint32, R int) []float64 {
	out := make([]float64, len(targets))
	r := e.queryRNG(u)
	for i, v := range targets {
		out[i] = e.singlePairR(u, v, R, r)
	}
	return out
}
