package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// Index persistence: the preprocess results (the γ table of Algorithm 3
// and the candidate index of Algorithm 4) can be saved after Build and
// reloaded later, so the O(n) preprocess is a one-time job per graph.
//
// Binary layout (little endian):
//
//	magic uint32 | version uint32
//	n uint32 | T uint32 | c float64 | seed uint64
//	hasGamma uint8 [ gamma: n*T float32 ]
//	hasIndex uint8 [ per vertex: len uint32, entries uint32... ]

const (
	persistMagic   = 0x53494D52 // "SIMR"
	persistVersion = 1
)

// SaveIndex writes the preprocess results to w.
func (e *Engine) SaveIndex(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr := struct {
		Magic, Version uint32
		N, T           uint32
		C              float64
		Seed           uint64
	}{persistMagic, persistVersion, uint32(e.g.N()), uint32(e.p.T), e.p.C, e.p.Seed}
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	hasGamma := uint8(0)
	if e.gamma != nil {
		hasGamma = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasGamma); err != nil {
		return err
	}
	if hasGamma == 1 {
		if err := binary.Write(bw, binary.LittleEndian, e.gamma); err != nil {
			return err
		}
	}
	hasIndex := uint8(0)
	if e.idx != nil {
		hasIndex = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, hasIndex); err != nil {
		return err
	}
	if hasIndex == 1 {
		for _, rs := range e.idx.right {
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(rs))); err != nil {
				return err
			}
			if len(rs) > 0 {
				if err := binary.Write(bw, binary.LittleEndian, rs); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadIndex reads preprocess results saved by SaveIndex into a new engine
// over the same graph. The stored T and n must match; c and seed are
// informational (a mismatch is rejected because bounds and estimates
// would be inconsistent).
func LoadIndex(g *graph.Graph, p Params, r io.Reader) (*Engine, error) {
	e := New(g, p)
	br := bufio.NewReader(r)
	var hdr struct {
		Magic, Version uint32
		N, T           uint32
		C              float64
		Seed           uint64
	}
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if hdr.Magic != persistMagic {
		return nil, fmt.Errorf("core: bad index magic %#x", hdr.Magic)
	}
	if hdr.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", hdr.Version)
	}
	if int(hdr.N) != g.N() {
		return nil, fmt.Errorf("core: index built for n=%d, graph has n=%d", hdr.N, g.N())
	}
	if int(hdr.T) != e.p.T {
		return nil, fmt.Errorf("core: index built with T=%d, params use T=%d", hdr.T, e.p.T)
	}
	if math.Abs(hdr.C-e.p.C) > 1e-12 {
		return nil, fmt.Errorf("core: index built with c=%v, params use c=%v", hdr.C, e.p.C)
	}
	var hasGamma uint8
	if err := binary.Read(br, binary.LittleEndian, &hasGamma); err != nil {
		return nil, fmt.Errorf("core: reading gamma flag: %w", err)
	}
	if hasGamma == 1 {
		e.gamma = make([]float32, g.N()*e.p.T)
		if err := binary.Read(br, binary.LittleEndian, e.gamma); err != nil {
			return nil, fmt.Errorf("core: reading gamma table: %w", err)
		}
		for _, v := range e.gamma {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return nil, fmt.Errorf("core: corrupt gamma table (entry %v)", v)
			}
		}
	}
	var hasIndex uint8
	if err := binary.Read(br, binary.LittleEndian, &hasIndex); err != nil {
		return nil, fmt.Errorf("core: reading index flag: %w", err)
	}
	if hasIndex == 1 {
		idx := &candidateIndex{right: make([][]uint32, g.N())}
		for v := 0; v < g.N(); v++ {
			var ln uint32
			if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			if int(ln) > g.N() {
				return nil, fmt.Errorf("core: corrupt index entry %d (len %d)", v, ln)
			}
			if ln == 0 {
				continue
			}
			rs := make([]uint32, ln)
			if err := binary.Read(br, binary.LittleEndian, rs); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			for _, w := range rs {
				if int(w) >= g.N() {
					return nil, fmt.Errorf("core: corrupt index entry %d (vertex %d)", v, w)
				}
			}
			idx.right[v] = rs
		}
		idx.buildInverted(g.N())
		e.idx = idx
	}
	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
	return e, nil
}
