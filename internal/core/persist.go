package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// Index persistence: the preprocess results (the γ table of Algorithm 3
// and the candidate index of Algorithm 4) can be saved after Build and
// reloaded later, so the O(n) preprocess is a one-time job per graph.
//
// Version 3 (current) is a sectioned, page-aligned container designed
// for zero-copy loads: every array the snapshot serves from — the
// graph's in/out CSR, the γ table, the candidate index's four CSR
// arrays, and the walk table's alias slots — is stored as a flat
// little-endian section aligned to persistPageSize, so a loader may
// either stream-read the sections or mmap the file and serve straight
// from the mapping (see LoadIndexMmap). Layout:
//
//	header (48 bytes):
//	  magic uint32 | version uint32 | n uint32 | T uint32
//	  c float64 | seed uint64 | m uint64 (in-edge count)
//	  pageSize uint32 | sectionCount uint32
//	directory: sectionCount × (32 bytes):
//	  kind uint32 | elemSize uint32 | offset uint64 | count uint64
//	  crc uint32 (CRC-32C of the section payload) | reserved uint32
//	headerCRC uint32   (CRC-32C of header + directory)
//	zero padding, then the sections at their stated offsets,
//	ascending, each offset a multiple of pageSize.
//
// Stream loads verify every section against its directory CRC. Mmap
// loads verify the header and directory CRC only — checksumming the
// payload would make cold start O(file size), defeating the point —
// plus O(n) structural checks on the offset arrays; payload corruption
// is left to the filesystem, exactly like any other mmapped store.
//
// Version 2 is the older row-wise stream format with a trailing
// whole-file CRC; version 1 is version 2 without the trailer. Both
// still load. Neither embeds the graph, so only v3 can detect an
// index/graph mismatch beyond the vertex count.

const (
	persistMagic    = 0x53494D52 // "SIMR"
	persistVersion  = 3
	persistPageSize = 4096
)

// Section kinds of the v3 container.
const (
	secInStart = 1 + iota
	secInAdj
	secOutStart
	secOutAdj
	secGamma
	secRightStart
	secRightAdj
	secLeftStart
	secLeftAdj
	secAliasProb
	secAliasAlias
)

// persistHeader is the fixed 48-byte v3 header.
type persistHeader struct {
	Magic, Version uint32
	N, T           uint32
	C              float64
	Seed           uint64
	M              uint64
	PageSize       uint32
	SectionCount   uint32
}

// persistSection is one 32-byte directory entry.
type persistSection struct {
	Kind     uint32
	ElemSize uint32
	Offset   uint64
	Count    uint64
	CRC      uint32
	Reserved uint32
}

const (
	persistHeaderSize  = 48
	persistSectionSize = 32
)

// persistCRCTable is the Castagnoli polynomial table shared by save/load.
var persistCRCTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter forwards writes and accumulates a running CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, persistCRCTable, p[:n])
	return n, err
}

// crcReader forwards reads and accumulates a running CRC-32C.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, persistCRCTable, p[:n])
	return n, err
}

// wordChunk is the staging buffer size (in 4-byte elements) used when
// encoding, decoding, and checksumming sections, so large arrays never
// need a full-size transient copy.
const wordChunk = 1024

// crcWords returns the CRC-32C of data's little-endian encoding.
func crcWords(data []uint32) uint32 {
	var buf [wordChunk * 4]byte
	crc := uint32(0)
	for len(data) > 0 {
		n := min(len(data), wordChunk)
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], x)
		}
		crc = crc32.Update(crc, persistCRCTable, buf[:n*4])
		data = data[n:]
	}
	return crc
}

// crcFloats is crcWords for a float32 section (same bytes, IEEE-754
// little endian).
func crcFloats(data []float32) uint32 {
	var buf [wordChunk * 4]byte
	crc := uint32(0)
	for len(data) > 0 {
		n := min(len(data), wordChunk)
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(x))
		}
		crc = crc32.Update(crc, persistCRCTable, buf[:n*4])
		data = data[n:]
	}
	return crc
}

// writeWords writes data little-endian in chunks.
func writeWords(w io.Writer, data []uint32) error {
	var buf [wordChunk * 4]byte
	for len(data) > 0 {
		n := min(len(data), wordChunk)
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], x)
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// writeFloats is writeWords for a float32 section.
func writeFloats(w io.Writer, data []float32) error {
	var buf [wordChunk * 4]byte
	for len(data) > 0 {
		n := min(len(data), wordChunk)
		for i, x := range data[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(x))
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		data = data[n:]
	}
	return nil
}

// readWords reads count little-endian uint32s, returning them and the
// payload CRC-32C.
func readWords(r io.Reader, count int) ([]uint32, uint32, error) {
	var buf [wordChunk * 4]byte
	out := make([]uint32, count)
	crc := uint32(0)
	for off := 0; off < count; {
		n := min(count-off, wordChunk)
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return nil, 0, err
		}
		crc = crc32.Update(crc, persistCRCTable, buf[:n*4])
		for i := 0; i < n; i++ {
			out[off+i] = binary.LittleEndian.Uint32(buf[i*4:])
		}
		off += n
	}
	return out, crc, nil
}

// readFloats is readWords for a float32 section.
func readFloats(r io.Reader, count int) ([]float32, uint32, error) {
	var buf [wordChunk * 4]byte
	out := make([]float32, count)
	crc := uint32(0)
	for off := 0; off < count; {
		n := min(count-off, wordChunk)
		if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
			return nil, 0, err
		}
		crc = crc32.Update(crc, persistCRCTable, buf[:n*4])
		for i := 0; i < n; i++ {
			out[off+i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		off += n
	}
	return out, crc, nil
}

// alignPage rounds off up to the next persistPageSize multiple.
func alignPage(off uint64) uint64 {
	return (off + persistPageSize - 1) &^ uint64(persistPageSize-1)
}

// persistPlan describes one section to be written.
type persistPlan struct {
	kind   uint32
	words  []uint32  // exactly one of words/floats is set
	floats []float32 // (a nil-but-present words section stays valid: count 0)
	isF    bool
}

func (p *persistPlan) count() uint64 {
	if p.isF {
		return uint64(len(p.floats))
	}
	return uint64(len(p.words))
}

// sectionPlan lists the snapshot's sections in file order.
func (e *Snapshot) sectionPlan() []persistPlan {
	inS, inA := e.g.InCSR()
	outS, outA := e.g.OutCSR()
	plan := []persistPlan{
		{kind: secInStart, words: inS},
		{kind: secInAdj, words: inA},
		{kind: secOutStart, words: outS},
		{kind: secOutAdj, words: outA},
	}
	if e.gamma != nil {
		plan = append(plan, persistPlan{kind: secGamma, floats: e.gamma, isF: true})
	}
	if e.idx != nil {
		plan = append(plan,
			persistPlan{kind: secRightStart, words: e.idx.rightStart},
			persistPlan{kind: secRightAdj, words: e.idx.rightAdj},
			persistPlan{kind: secLeftStart, words: e.idx.leftStart},
			persistPlan{kind: secLeftAdj, words: e.idx.leftAdj},
		)
	}
	if prob, alias := e.wt.Slots(); prob != nil {
		plan = append(plan,
			persistPlan{kind: secAliasProb, words: prob},
			persistPlan{kind: secAliasAlias, words: alias},
		)
	}
	return plan
}

// SaveIndex writes the snapshot — graph CSR, preprocess results, and
// walk-table slots — as a version-3 sectioned index file.
func (e *Snapshot) SaveIndex(w io.Writer) error {
	plan := e.sectionPlan()

	// Lay the sections out page-aligned after the header block and
	// checksum each payload.
	dir := make([]persistSection, len(plan))
	off := alignPage(uint64(persistHeaderSize + persistSectionSize*len(plan) + 4))
	for i := range plan {
		p := &plan[i]
		crc := uint32(0)
		if p.isF {
			crc = crcFloats(p.floats)
		} else {
			crc = crcWords(p.words)
		}
		dir[i] = persistSection{
			Kind:     p.kind,
			ElemSize: 4,
			Offset:   off,
			Count:    p.count(),
			CRC:      crc,
		}
		off = alignPage(off + 4*p.count())
	}

	// Header + directory are built in memory first: their own CRC
	// trailer covers the exact bytes written.
	var hb bytes.Buffer
	hdr := persistHeader{
		Magic: persistMagic, Version: persistVersion,
		N: uint32(e.g.N()), T: uint32(e.p.T),
		C: e.p.C, Seed: e.p.Seed,
		M:        uint64(e.g.M()),
		PageSize: persistPageSize, SectionCount: uint32(len(dir)),
	}
	if err := binary.Write(&hb, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	if err := binary.Write(&hb, binary.LittleEndian, dir); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(hb.Bytes()); err != nil {
		return err
	}
	hcrc := crc32.Checksum(hb.Bytes(), persistCRCTable)
	if err := binary.Write(bw, binary.LittleEndian, hcrc); err != nil {
		return err
	}

	pos := uint64(hb.Len()) + 4
	var zeros [persistPageSize]byte
	for i := range plan {
		pad := dir[i].Offset - pos
		if _, err := bw.Write(zeros[:pad]); err != nil {
			return err
		}
		p := &plan[i]
		var err error
		if p.isF {
			err = writeFloats(bw, p.floats)
		} else {
			err = writeWords(bw, p.words)
		}
		if err != nil {
			return err
		}
		pos = dir[i].Offset + 4*dir[i].Count
	}
	return bw.Flush()
}

// checkHeaderParams verifies a persisted header against the graph and
// params an index is being loaded for.
func checkHeaderParams(n, T uint32, c float64, g *graph.Graph, p Params) error {
	if int(n) != g.N() {
		return fmt.Errorf("core: index built for n=%d, graph has n=%d", n, g.N())
	}
	if int(T) != p.T {
		return fmt.Errorf("core: index built with T=%d, params use T=%d", T, p.T)
	}
	if math.Abs(c-p.C) > 1e-12 {
		return fmt.Errorf("core: index built with c=%v, params use c=%v", c, p.C)
	}
	return nil
}

// validateIndexCSR checks one CSR offset/adjacency pair of the
// candidate index: offsets monotone from 0 to len(adj), entries < n.
// entryCheck is skipped by the mmap path (O(m) over the payload).
func validateIndexCSR(name string, n int, start, adj []uint32, entryCheck bool) error {
	if len(start) != n+1 {
		return fmt.Errorf("core: corrupt index: %s offsets have %d entries, want %d", name, len(start), n+1)
	}
	if start[0] != 0 {
		return fmt.Errorf("core: corrupt index: %s offsets start at %d", name, start[0])
	}
	for i := 0; i < n; i++ {
		if start[i+1] < start[i] {
			return fmt.Errorf("core: corrupt index: %s offsets decrease at %d", name, i)
		}
	}
	if int(start[n]) != len(adj) {
		return fmt.Errorf("core: corrupt index: %s offsets end at %d, want %d", name, start[n], len(adj))
	}
	if entryCheck {
		for _, v := range adj {
			if int(v) >= n {
				return fmt.Errorf("core: corrupt index: %s entry %d out of range", name, v)
			}
		}
	}
	return nil
}

// finishLoad installs loaded artifacts and recomputes size stats.
func (e *Engine) finishLoad() {
	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
}

// LoadIndex reads an index saved by SaveIndex into a new engine over
// the same graph, accepting versions 1-3. The stored n, T and c must
// match. Version 3 sections are each verified against their directory
// CRC and the embedded graph CSR must be byte-identical to g's;
// version 2 is verified against its whole-file CRC trailer; version 1
// loads without integrity checking.
func LoadIndex(g *graph.Graph, p Params, r io.Reader) (*Engine, error) {
	p = p.normalized() // compare stored params against what New would use
	br := bufio.NewReader(r)
	var pre [8]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(pre[0:])
	version := binary.LittleEndian.Uint32(pre[4:])
	if magic != persistMagic {
		return nil, fmt.Errorf("core: bad index magic %#x", magic)
	}
	switch version {
	case 1, 2:
		return loadIndexLegacy(g, p, br, pre[:], version)
	case persistVersion:
		return loadIndexV3(g, p, br, pre[:])
	default:
		return nil, fmt.Errorf("core: unsupported index version %d", version)
	}
}

// loadIndexV3 stream-reads a sectioned v3 file (magic+version already
// consumed, passed in pre).
func loadIndexV3(g *graph.Graph, p Params, br *bufio.Reader, pre []byte) (*Engine, error) {
	rest := make([]byte, persistHeaderSize-len(pre))
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	hb := append(append([]byte{}, pre...), rest...)
	var hdr persistHeader
	if err := binary.Read(bytes.NewReader(hb), binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	if hdr.PageSize == 0 || hdr.PageSize&(hdr.PageSize-1) != 0 {
		return nil, fmt.Errorf("core: corrupt index: page size %d", hdr.PageSize)
	}
	if hdr.SectionCount > 64 {
		return nil, fmt.Errorf("core: corrupt index: %d sections", hdr.SectionCount)
	}
	dirBytes := make([]byte, persistSectionSize*int(hdr.SectionCount))
	if _, err := io.ReadFull(br, dirBytes); err != nil {
		return nil, fmt.Errorf("core: reading section directory: %w", err)
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("core: reading header checksum (truncated index file?): %w", err)
	}
	hcrc := crc32.Checksum(hb, persistCRCTable)
	hcrc = crc32.Update(hcrc, persistCRCTable, dirBytes)
	if stored != hcrc {
		return nil, fmt.Errorf("core: header checksum mismatch (stored %#08x, computed %#08x): corrupted index file", stored, hcrc)
	}
	dir := make([]persistSection, hdr.SectionCount)
	if err := binary.Read(bytes.NewReader(dirBytes), binary.LittleEndian, dir); err != nil {
		return nil, err
	}
	if err := checkHeaderParams(hdr.N, hdr.T, hdr.C, g, p); err != nil {
		return nil, err
	}
	if int(hdr.M) != g.M() {
		return nil, fmt.Errorf("core: index built for m=%d edges, graph has m=%d", hdr.M, g.M())
	}

	e := New(g, p)
	pos := uint64(persistHeaderSize) + uint64(len(dirBytes)) + 4
	sections := make(map[uint32][]uint32)
	for _, d := range dir {
		if d.ElemSize != 4 {
			return nil, fmt.Errorf("core: section %d has element size %d", d.Kind, d.ElemSize)
		}
		if err := checkSectionCount(d, g.N(), p.T, g.M()); err != nil {
			return nil, err
		}
		if d.Offset < pos {
			return nil, fmt.Errorf("core: corrupt index: section %d overlaps (offset %d < %d)", d.Kind, d.Offset, pos)
		}
		if _, dup := sections[d.Kind]; dup || (d.Kind == secGamma && e.gamma != nil) {
			return nil, fmt.Errorf("core: corrupt index: duplicate section %d", d.Kind)
		}
		if _, err := io.CopyN(io.Discard, br, int64(d.Offset-pos)); err != nil {
			return nil, fmt.Errorf("core: seeking to section %d: %w", d.Kind, err)
		}
		var crc uint32
		if d.Kind == secGamma {
			gamma, c, err := readFloats(br, int(d.Count))
			if err != nil {
				return nil, fmt.Errorf("core: reading gamma section: %w", err)
			}
			crc = c
			e.gamma = gamma
		} else {
			words, c, err := readWords(br, int(d.Count))
			if err != nil {
				return nil, fmt.Errorf("core: reading section %d: %w", d.Kind, err)
			}
			crc = c
			sections[d.Kind] = words
		}
		if crc != d.CRC {
			return nil, fmt.Errorf("core: section %d checksum mismatch (stored %#08x, computed %#08x): corrupted index file", d.Kind, d.CRC, crc)
		}
		pos = d.Offset + 4*d.Count
	}

	// The embedded CSR must match the graph the index is loaded over —
	// v3's defence against loading an index for the wrong graph.
	inS, inA := g.InCSR()
	outS, outA := g.OutCSR()
	for _, ck := range []struct {
		kind uint32
		want []uint32
		name string
	}{
		{secInStart, inS, "in-offset"}, {secInAdj, inA, "in-adjacency"},
		{secOutStart, outS, "out-offset"}, {secOutAdj, outA, "out-adjacency"},
	} {
		got, ok := sections[ck.kind]
		if !ok {
			return nil, fmt.Errorf("core: corrupt index: missing %s section", ck.name)
		}
		if !wordsEqual(got, ck.want) {
			return nil, fmt.Errorf("core: index was built for a different graph (%s section differs)", ck.name)
		}
	}

	if e.gamma != nil {
		if len(e.gamma) != g.N()*p.T {
			return nil, fmt.Errorf("core: gamma section has %d entries, want %d", len(e.gamma), g.N()*p.T)
		}
		for _, v := range e.gamma {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return nil, fmt.Errorf("core: corrupt gamma table (entry %v)", v)
			}
		}
	}

	if rs, ok := sections[secRightStart]; ok {
		idx := &candidateIndex{
			rightStart: rs,
			rightAdj:   sections[secRightAdj],
			leftStart:  sections[secLeftStart],
			leftAdj:    sections[secLeftAdj],
		}
		if err := validateIndexCSR("right", g.N(), idx.rightStart, idx.rightAdj, true); err != nil {
			return nil, err
		}
		if err := validateIndexCSR("left", g.N(), idx.leftStart, idx.leftAdj, true); err != nil {
			return nil, err
		}
		e.idx = idx
	}

	if prob, ok := sections[secAliasProb]; ok {
		if err := e.wt.AdoptSlots(prob, sections[secAliasAlias]); err != nil {
			return nil, fmt.Errorf("core: adopting alias slots: %w", err)
		}
	}

	e.finishLoad()
	return e, nil
}

// checkSectionCount validates a directory entry's element count against
// the graph and params before any allocation is sized from it, so a
// corrupt or adversarial directory cannot demand an absurd buffer.
func checkSectionCount(d persistSection, n, T, m int) error {
	var want uint64
	switch d.Kind {
	case secInStart, secOutStart, secRightStart, secLeftStart:
		want = uint64(n) + 1
	case secInAdj, secOutAdj, secAliasProb, secAliasAlias:
		want = uint64(m)
	case secGamma:
		want = uint64(n) * uint64(T)
	case secRightAdj, secLeftAdj:
		// Variable-length, but never more than one entry per vertex pair;
		// the CSR offset validation pins the exact length afterwards.
		if d.Count > uint64(n)*uint64(n) {
			return fmt.Errorf("core: corrupt index: section %d count %d exceeds n²", d.Kind, d.Count)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown section kind %d", d.Kind)
	}
	if d.Count != want {
		return fmt.Errorf("core: corrupt index: section %d has %d elements, want %d", d.Kind, d.Count, want)
	}
	return nil
}

// parseV3Container parses and verifies the header and section directory
// of an in-memory (typically mmapped) v3 index image: magic, version,
// header CRC, parameter match, per-section element counts, ascending
// page-aligned offsets, and that every section lies inside the image.
// It never touches section payloads, so it stays O(directory) no matter
// how large the file is.
func parseV3Container(data []byte, p Params) (persistHeader, []persistSection, error) {
	var hdr persistHeader
	if len(data) < persistHeaderSize {
		return hdr, nil, fmt.Errorf("core: index image too small (%d bytes)", len(data))
	}
	if err := binary.Read(bytes.NewReader(data), binary.LittleEndian, &hdr); err != nil {
		return hdr, nil, err
	}
	if hdr.Magic != persistMagic {
		return hdr, nil, fmt.Errorf("core: bad index magic %#x", hdr.Magic)
	}
	if hdr.Version != persistVersion {
		return hdr, nil, fmt.Errorf("core: mmap load requires a version-%d index, file is version %d", persistVersion, hdr.Version)
	}
	if hdr.PageSize == 0 || hdr.PageSize&(hdr.PageSize-1) != 0 {
		return hdr, nil, fmt.Errorf("core: corrupt index: page size %d", hdr.PageSize)
	}
	if hdr.SectionCount > 64 {
		return hdr, nil, fmt.Errorf("core: corrupt index: %d sections", hdr.SectionCount)
	}
	dirEnd := persistHeaderSize + persistSectionSize*int(hdr.SectionCount)
	if len(data) < dirEnd+4 {
		return hdr, nil, fmt.Errorf("core: index image truncated inside section directory")
	}
	stored := binary.LittleEndian.Uint32(data[dirEnd:])
	if crc := crc32.Checksum(data[:dirEnd], persistCRCTable); stored != crc {
		return hdr, nil, fmt.Errorf("core: header checksum mismatch (stored %#08x, computed %#08x): corrupted index file", stored, crc)
	}
	dir := make([]persistSection, hdr.SectionCount)
	if err := binary.Read(bytes.NewReader(data[persistHeaderSize:dirEnd]), binary.LittleEndian, dir); err != nil {
		return hdr, nil, err
	}
	if int(hdr.T) != p.T {
		return hdr, nil, fmt.Errorf("core: index built with T=%d, params use T=%d", hdr.T, p.T)
	}
	if math.Abs(hdr.C-p.C) > 1e-12 {
		return hdr, nil, fmt.Errorf("core: index built with c=%v, params use c=%v", hdr.C, p.C)
	}
	pos := uint64(dirEnd) + 4
	seen := make(map[uint32]bool, len(dir))
	for _, d := range dir {
		if d.ElemSize != 4 {
			return hdr, nil, fmt.Errorf("core: section %d has element size %d", d.Kind, d.ElemSize)
		}
		if err := checkSectionCount(d, int(hdr.N), int(hdr.T), int(hdr.M)); err != nil {
			return hdr, nil, err
		}
		if seen[d.Kind] {
			return hdr, nil, fmt.Errorf("core: corrupt index: duplicate section %d", d.Kind)
		}
		seen[d.Kind] = true
		if d.Offset < pos || d.Offset%uint64(hdr.PageSize) != 0 {
			return hdr, nil, fmt.Errorf("core: corrupt index: section %d at offset %d (cursor %d)", d.Kind, d.Offset, pos)
		}
		end := d.Offset + 4*d.Count
		if end > uint64(len(data)) {
			return hdr, nil, fmt.Errorf("core: corrupt index: section %d extends past end of file", d.Kind)
		}
		pos = end
	}
	return hdr, dir, nil
}

// wordsEqual compares two uint32 slices.
func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// saveIndexLegacy writes the version-2 row-wise stream format (tests
// use it to exercise the legacy load path; new files are always v3).
func (e *Snapshot) saveIndexLegacy(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	hdr := struct {
		Magic, Version uint32
		N, T           uint32
		C              float64
		Seed           uint64
	}{persistMagic, 2, uint32(e.g.N()), uint32(e.p.T), e.p.C, e.p.Seed}
	if err := binary.Write(cw, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	hasGamma := uint8(0)
	if e.gamma != nil {
		hasGamma = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, hasGamma); err != nil {
		return err
	}
	if hasGamma == 1 {
		if err := binary.Write(cw, binary.LittleEndian, e.gamma); err != nil {
			return err
		}
	}
	hasIndex := uint8(0)
	if e.idx != nil {
		hasIndex = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, hasIndex); err != nil {
		return err
	}
	if hasIndex == 1 {
		for v := 0; v < e.g.N(); v++ {
			rs := e.idx.rightRow(uint32(v))
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(rs))); err != nil {
				return err
			}
			if len(rs) > 0 {
				if err := binary.Write(cw, binary.LittleEndian, rs); err != nil {
					return err
				}
			}
		}
	}
	// The trailer itself is not part of the checksummed range: write it
	// directly to the buffered writer.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// loadIndexLegacy reads the v1/v2 row-wise stream format. pre holds the
// already-consumed magic+version bytes (they are part of the v2
// checksummed range).
func loadIndexLegacy(g *graph.Graph, p Params, br *bufio.Reader, pre []byte, version uint32) (*Engine, error) {
	e := New(g, p)
	cr := &crcReader{r: br, crc: crc32.Update(0, persistCRCTable, pre)}
	var hdr struct {
		N, T uint32
		C    float64
		Seed uint64
	}
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if err := checkHeaderParams(hdr.N, hdr.T, hdr.C, g, p); err != nil {
		return nil, err
	}
	var hasGamma uint8
	if err := binary.Read(cr, binary.LittleEndian, &hasGamma); err != nil {
		return nil, fmt.Errorf("core: reading gamma flag: %w", err)
	}
	if hasGamma == 1 {
		e.gamma = make([]float32, g.N()*e.p.T)
		if err := binary.Read(cr, binary.LittleEndian, e.gamma); err != nil {
			return nil, fmt.Errorf("core: reading gamma table: %w", err)
		}
		for _, v := range e.gamma {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return nil, fmt.Errorf("core: corrupt gamma table (entry %v)", v)
			}
		}
	}
	var hasIndex uint8
	if err := binary.Read(cr, binary.LittleEndian, &hasIndex); err != nil {
		return nil, fmt.Errorf("core: reading index flag: %w", err)
	}
	if hasIndex == 1 {
		rows := make([][]uint32, g.N())
		for v := 0; v < g.N(); v++ {
			var ln uint32
			if err := binary.Read(cr, binary.LittleEndian, &ln); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			if int(ln) > g.N() {
				return nil, fmt.Errorf("core: corrupt index entry %d (len %d)", v, ln)
			}
			if ln == 0 {
				continue
			}
			rs := make([]uint32, ln)
			if err := binary.Read(cr, binary.LittleEndian, rs); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			for _, w := range rs {
				if int(w) >= g.N() {
					return nil, fmt.Errorf("core: corrupt index entry %d (vertex %d)", v, w)
				}
			}
			rows[v] = rs
		}
		e.idx = indexFromRows(rows)
	}
	if version >= 2 {
		// The payload CRC must be captured before the trailer read mixes
		// the stored checksum bytes into the accumulator.
		sum := cr.crc
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: reading checksum trailer (truncated index file?): %w", err)
		}
		if stored != sum {
			return nil, fmt.Errorf("core: index checksum mismatch (stored %#08x, computed %#08x): corrupted index file", stored, sum)
		}
	}
	e.finishLoad()
	return e, nil
}
