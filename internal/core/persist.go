package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/graph"
)

// Index persistence: the preprocess results (the γ table of Algorithm 3
// and the candidate index of Algorithm 4) can be saved after Build and
// reloaded later, so the O(n) preprocess is a one-time job per graph.
//
// Binary layout (little endian):
//
//	magic uint32 | version uint32
//	n uint32 | T uint32 | c float64 | seed uint64
//	hasGamma uint8 [ gamma: n*T float32 ]
//	hasIndex uint8 [ per vertex: len uint32, entries uint32... ]
//	crc uint32            (version >= 2: CRC-32C of every preceding byte)
//
// Version 2 appends a CRC-32 (Castagnoli) trailer over the header and
// payload, so LoadIndex rejects truncated or bit-flipped index files with
// a clear error instead of silently loading garbage. Version-1 files
// (no trailer) are still read.

const (
	persistMagic   = 0x53494D52 // "SIMR"
	persistVersion = 2
)

// persistCRCTable is the Castagnoli polynomial table shared by save/load.
var persistCRCTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter forwards writes and accumulates a running CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, persistCRCTable, p[:n])
	return n, err
}

// crcReader forwards reads and accumulates a running CRC-32C.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, persistCRCTable, p[:n])
	return n, err
}

// SaveIndex writes the preprocess results to w.
func (e *Snapshot) SaveIndex(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	hdr := struct {
		Magic, Version uint32
		N, T           uint32
		C              float64
		Seed           uint64
	}{persistMagic, persistVersion, uint32(e.g.N()), uint32(e.p.T), e.p.C, e.p.Seed}
	if err := binary.Write(cw, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	hasGamma := uint8(0)
	if e.gamma != nil {
		hasGamma = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, hasGamma); err != nil {
		return err
	}
	if hasGamma == 1 {
		if err := binary.Write(cw, binary.LittleEndian, e.gamma); err != nil {
			return err
		}
	}
	hasIndex := uint8(0)
	if e.idx != nil {
		hasIndex = 1
	}
	if err := binary.Write(cw, binary.LittleEndian, hasIndex); err != nil {
		return err
	}
	if hasIndex == 1 {
		for _, rs := range e.idx.right {
			if err := binary.Write(cw, binary.LittleEndian, uint32(len(rs))); err != nil {
				return err
			}
			if len(rs) > 0 {
				if err := binary.Write(cw, binary.LittleEndian, rs); err != nil {
					return err
				}
			}
		}
	}
	// The trailer itself is not part of the checksummed range: write it
	// directly to the buffered writer.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadIndex reads preprocess results saved by SaveIndex into a new engine
// over the same graph. The stored T and n must match; c and seed are
// informational (a mismatch is rejected because bounds and estimates
// would be inconsistent). Version-2 files are verified against their
// CRC-32C trailer; version-1 files load without integrity checking.
func LoadIndex(g *graph.Graph, p Params, r io.Reader) (*Engine, error) {
	e := New(g, p)
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var hdr struct {
		Magic, Version uint32
		N, T           uint32
		C              float64
		Seed           uint64
	}
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return nil, fmt.Errorf("core: reading index header: %w", err)
	}
	if hdr.Magic != persistMagic {
		return nil, fmt.Errorf("core: bad index magic %#x", hdr.Magic)
	}
	if hdr.Version != 1 && hdr.Version != persistVersion {
		return nil, fmt.Errorf("core: unsupported index version %d", hdr.Version)
	}
	if int(hdr.N) != g.N() {
		return nil, fmt.Errorf("core: index built for n=%d, graph has n=%d", hdr.N, g.N())
	}
	if int(hdr.T) != e.p.T {
		return nil, fmt.Errorf("core: index built with T=%d, params use T=%d", hdr.T, e.p.T)
	}
	if math.Abs(hdr.C-e.p.C) > 1e-12 {
		return nil, fmt.Errorf("core: index built with c=%v, params use c=%v", hdr.C, e.p.C)
	}
	var hasGamma uint8
	if err := binary.Read(cr, binary.LittleEndian, &hasGamma); err != nil {
		return nil, fmt.Errorf("core: reading gamma flag: %w", err)
	}
	if hasGamma == 1 {
		e.gamma = make([]float32, g.N()*e.p.T)
		if err := binary.Read(cr, binary.LittleEndian, e.gamma); err != nil {
			return nil, fmt.Errorf("core: reading gamma table: %w", err)
		}
		for _, v := range e.gamma {
			if v < 0 || v > 1.0001 || math.IsNaN(float64(v)) {
				return nil, fmt.Errorf("core: corrupt gamma table (entry %v)", v)
			}
		}
	}
	var hasIndex uint8
	if err := binary.Read(cr, binary.LittleEndian, &hasIndex); err != nil {
		return nil, fmt.Errorf("core: reading index flag: %w", err)
	}
	if hasIndex == 1 {
		idx := &candidateIndex{right: make([][]uint32, g.N())}
		for v := 0; v < g.N(); v++ {
			var ln uint32
			if err := binary.Read(cr, binary.LittleEndian, &ln); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			if int(ln) > g.N() {
				return nil, fmt.Errorf("core: corrupt index entry %d (len %d)", v, ln)
			}
			if ln == 0 {
				continue
			}
			rs := make([]uint32, ln)
			if err := binary.Read(cr, binary.LittleEndian, rs); err != nil {
				return nil, fmt.Errorf("core: reading index entry %d: %w", v, err)
			}
			for _, w := range rs {
				if int(w) >= g.N() {
					return nil, fmt.Errorf("core: corrupt index entry %d (vertex %d)", v, w)
				}
			}
			idx.right[v] = rs
		}
		idx.buildInverted(g.N())
		e.idx = idx
	}
	if hdr.Version >= 2 {
		// The payload CRC must be captured before the trailer read mixes
		// the stored checksum bytes into the accumulator.
		sum := cr.crc
		var stored uint32
		if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
			return nil, fmt.Errorf("core: reading checksum trailer (truncated index file?): %w", err)
		}
		if stored != sum {
			return nil, fmt.Errorf("core: index checksum mismatch (stored %#08x, computed %#08x): corrupted index file", stored, sum)
		}
	}
	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
	return e, nil
}
