package core

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzLoadIndex checks the persisted-index loader against corrupt input:
// it must never panic or accept an index that breaks queries.
func FuzzLoadIndex(f *testing.F) {
	g := graph.CopyingModel(60, 4, 0.3, 1)
	p := DefaultParams()
	p.Workers = 1
	p.RAlpha = 100
	e := Build(g, p)
	var valid bytes.Buffer
	if err := e.SaveIndex(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:10])
	flipped := append([]byte(nil), valid.Bytes()...)
	if len(flipped) > 40 {
		flipped[33] ^= 0xff
	}
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, input []byte) {
		e2, err := LoadIndex(g, p, bytes.NewReader(input))
		if err != nil {
			return
		}
		// Whatever loads must answer queries without panicking and
		// with well-formed results.
		res := e2.TopK(3, 5)
		if len(res) > 5 {
			t.Fatalf("loaded index returned %d results", len(res))
		}
		for i := 1; i < len(res); i++ {
			if res[i].Score > res[i-1].Score {
				t.Fatal("loaded index returned unsorted results")
			}
		}
	})
}
