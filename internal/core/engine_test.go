package core

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestEngineString(t *testing.T) {
	e := New(graph.Star(4), DefaultParams())
	if !strings.Contains(e.String(), "c=0.60") {
		t.Fatalf("String() = %q", e.String())
	}
}

func TestParamsNormalization(t *testing.T) {
	p := Params{}.normalized()
	def := DefaultParams()
	if p.C != def.C || p.T != def.T || p.RScore != def.RScore ||
		p.P != def.P || p.Q != def.Q || p.Theta != def.Theta {
		t.Fatalf("normalized zero params: %+v", p)
	}
	if p.Workers <= 0 {
		t.Fatal("workers not defaulted")
	}
	if p.DMax != p.T {
		t.Fatal("DMax should default to T")
	}
	if p.BallBudget != 20000 || p.ExactSupportCap != 4096 {
		t.Fatalf("budget defaults wrong: %+v", p)
	}
	// Out-of-range values are replaced too.
	bad := Params{C: 1.5, T: -1, Theta: -3}.normalized()
	if bad.C != def.C || bad.T != def.T || bad.Theta != def.Theta {
		t.Fatalf("invalid params not fixed: %+v", bad)
	}
}

func TestCandidateStrategyString(t *testing.T) {
	cases := map[CandidateStrategy]string{
		CandidatesIndex:      "index",
		CandidatesBall:       "ball",
		CandidatesHybrid:     "hybrid",
		CandidateStrategy(9): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestParallelVerticesVisitsAllOnce(t *testing.T) {
	g := graph.Cycle(137)
	for _, workers := range []int{1, 4, 200} { // 200 > n exercises the clamp
		p := DefaultParams()
		p.Workers = workers
		e := New(g, p)
		var mu sync.Mutex
		visits := make(map[uint32]int)
		e.parallelVertices(saltGamma, func(v uint32, r *rng.Source, s *scratch) {
			mu.Lock()
			visits[v]++
			mu.Unlock()
		})
		if len(visits) != 137 {
			t.Fatalf("workers=%d: visited %d vertices", workers, len(visits))
		}
		for v, c := range visits {
			if c != 1 {
				t.Fatalf("workers=%d: vertex %d visited %d times", workers, v, c)
			}
		}
	}
}

func TestQueryRNGDistinctPerVertex(t *testing.T) {
	e := New(graph.Cycle(10), DefaultParams())
	a := e.queryRNG(1).Uint64()
	b := e.queryRNG(2).Uint64()
	if a == b {
		t.Fatal("query RNG streams collide")
	}
	if e.queryRNG(1).Uint64() != a {
		t.Fatal("query RNG not deterministic")
	}
}

// Property: TopK output is always well-formed — sorted, deduplicated,
// excludes the query, scores within the series' trivial range.
func TestTopKWellFormedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(60)
		g := graph.ErdosRenyi(n, 4*n, seed)
		p := DefaultParams()
		p.Seed = seed
		p.Workers = 1
		p.RAlpha = 200
		p.Strategy = CandidateStrategy(r.Intn(3))
		e := Build(g, p)
		u := uint32(r.Intn(n))
		k := 1 + r.Intn(10)
		res := e.TopK(u, k)
		if len(res) > k {
			return false
		}
		seen := map[uint32]bool{}
		for i, s := range res {
			if s.V == u || seen[s.V] {
				return false
			}
			seen[s.V] = true
			if s.Score < 0 || s.Score > 1.0/(1-p.C)+1e-9 {
				return false
			}
			if i > 0 && res[i-1].Score < s.Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the γ table is finite and within [0, 1] for the default D.
func TestGammaRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := graph.ErdosRenyi(n, 3*n, seed)
		p := DefaultParams()
		p.Seed = seed
		p.Workers = 1
		e := Build(g, p)
		for v := uint32(0); int(v) < n; v++ {
			for tt := 0; tt < p.T; tt++ {
				gm := e.Gamma(v, tt)
				if gm < 0 || gm > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
