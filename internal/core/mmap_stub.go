//go:build !unix

package core

import "fmt"

// LoadIndexMmap is unavailable off unix: the zero-copy load path needs
// mmap. Callers should fall back to the streaming LoadIndex.
func LoadIndexMmap(path string, p Params) (*Engine, func() error, error) {
	return nil, nil, fmt.Errorf("core: mmap index loading is not supported on this platform")
}
