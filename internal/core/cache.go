package core

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// This file implements the cross-query walk-tally cache. Because
// candidate walks are seeded per vertex (candSeed), a candidate's
// step-t position tally at R = RScore walks is a pure function of
// (snapshot, v): the cache stores that tally once and every later query
// scoring v replaces its O(T·R) walk simulation with an O(T·distinct)
// sorted dot product against the query-side distribution. The rough
// adaptive pass is served from the same entry — the walk-major
// simulation order guarantees the first RRough walks of the full stream
// are exactly the walks a rough-only simulation would have produced, so
// per-step counts restricted to that prefix (tallyEntry.rcnt) reproduce
// the rough estimate bit for bit.

// tallyShardCount is the number of independently locked eviction shards.
// Power of two so the shard index is a mask of the mixed vertex id.
const tallyShardCount = 64

// tallyEntry is one cached candidate tally: per-step sorted supports
// with full-stream and rough-prefix counts, in the same flat layout the
// scratch tally builders produce (tally.go). Entries are immutable after
// construction except for the CLOCK reference bit.
type tallyEntry struct {
	v uint32
	// rsteps is the number of leading steps with a nonempty rough-prefix
	// support; the rough dot product stops there.
	rsteps int32
	// off[t]..off[t+1] delimit step t's slice of verts/cnt/rcnt.
	off   []int32
	verts []uint32
	// cnt counts all RScore walks at each support vertex; rcnt counts
	// only the first RRough walks (0 when the rough prefix never visits
	// it). uint16 suffices: the cache is disabled when RScore > 65535.
	cnt  []uint16
	rcnt []uint16
	// size is the approximate heap footprint, fixed at construction.
	size int64
	// ref is the CLOCK reference bit: set on hit, cleared as the
	// eviction hand passes.
	ref atomic.Bool
}

// tallyEntryOverhead approximates the fixed per-entry footprint: the
// struct itself plus slice headers and ring bookkeeping.
const tallyEntryOverhead = 160

// entrySize returns the byte budget one entry charges.
func entrySize(T, support int) int64 {
	return tallyEntryOverhead + 4*int64(T+1) + 8*int64(support)
}

// tallyShard serializes inserts and evictions for one stripe of the
// vertex space and holds that stripe's CLOCK ring. Lookups never touch
// it — they go straight to the slot array.
type tallyShard struct {
	mu   sync.Mutex
	ring []*tallyEntry
	hand int
}

// tallyCache is a per-Snapshot, memory-bounded cache of candidate walk
// tallies. The hit path is a single atomic load from a per-vertex slot
// array — no locks, no hashing; inserts and evictions serialize per
// shard. The byte budget is enforced with reserve-then-evict accounting:
// an insert first charges its size, then evicts from its own shard until
// the cache fits, rolling the reservation back if the shard alone cannot
// make room. The slot array itself (8 bytes per graph vertex) is fixed
// engine overhead, outside the budget, like the γ table.
type tallyCache struct {
	maxBytes  int64
	bytes     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	slots     []atomic.Pointer[tallyEntry]
	shards    [tallyShardCount]tallyShard
}

// CacheStats is a point-in-time snapshot of the tally-cache counters.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	// BytesInUse is the approximate heap footprint of the cached
	// entries; it never exceeds BudgetBytes at quiescence.
	BytesInUse  int64
	BudgetBytes int64
}

// maxTallyCount is the largest walk count a uint16 tally can represent.
const maxTallyCount = math.MaxUint16

func newTallyCache(n int, maxBytes int64) *tallyCache {
	return &tallyCache{
		maxBytes: maxBytes,
		slots:    make([]atomic.Pointer[tallyEntry], n),
	}
}

func (c *tallyCache) shard(v uint32) *tallyShard {
	return &c.shards[rng.Mix(uint64(v))&(tallyShardCount-1)]
}

// get returns the cached tally for v, or nil. Lock-free; counts a hit or
// miss.
//
//lint:hotpath cache hit path, consulted before every candidate simulation
func (c *tallyCache) get(v uint32) *tallyEntry {
	if ent := c.slots[v].Load(); ent != nil {
		if !ent.ref.Load() {
			ent.ref.Store(true)
		}
		c.hits.Add(1)
		return ent
	}
	c.misses.Add(1)
	return nil
}

// put inserts ent unless v is already cached (concurrent scorers of the
// same vertex build byte-identical entries, so first-in wins). It
// returns the number of entries evicted to make room. When the shard
// cannot free enough bytes the reservation is rolled back and the entry
// is simply not cached — the caller has already scored from its scratch
// copy, so correctness never depends on the insert landing.
func (c *tallyCache) put(ent *tallyEntry) int {
	sh := c.shard(ent.v)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.slots[ent.v].Load() != nil {
		return 0
	}
	if c.bytes.Add(ent.size) > c.maxBytes {
		evicted := c.evictLocked(sh)
		if c.bytes.Load() > c.maxBytes {
			c.bytes.Add(-ent.size)
			return evicted
		}
		sh.insertLocked(c, ent)
		return evicted
	}
	sh.insertLocked(c, ent)
	return 0
}

// insertLocked publishes ent in its vertex slot and appends it to the
// CLOCK ring. Caller holds sh.mu.
func (sh *tallyShard) insertLocked(c *tallyCache, ent *tallyEntry) {
	ent.ref.Store(true)
	sh.ring = append(sh.ring, ent)
	c.slots[ent.v].Store(ent)
}

// evictLocked runs the CLOCK hand over the shard's ring until the cache
// fits its budget or the shard is empty, returning the number of entries
// evicted. Entries with the reference bit set get a second chance (the
// bit is cleared); after two full sweeps everything is evictable.
// A reader that loaded the entry just before its slot is cleared keeps
// scoring from it — entries are immutable, so the answer is unchanged.
// Caller holds sh.mu.
func (c *tallyCache) evictLocked(sh *tallyShard) int {
	evicted := 0
	spared := 0
	for c.bytes.Load() > c.maxBytes && len(sh.ring) > 0 {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		ent := sh.ring[sh.hand]
		if ent.ref.Load() && spared < 2*len(sh.ring) {
			ent.ref.Store(false)
			sh.hand++
			spared++
			continue
		}
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
		c.slots[ent.v].Store(nil)
		c.bytes.Add(-ent.size)
		c.evictions.Add(1)
		evicted++
	}
	return evicted
}

// stats aggregates the counters across shards.
func (c *tallyCache) stats() CacheStats {
	st := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		BytesInUse:  c.bytes.Load(),
		BudgetBytes: c.maxBytes,
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		st.Entries += len(c.shards[i].ring)
		c.shards[i].mu.Unlock()
	}
	return st
}

// carryForward seeds this cache with the entries of a previous
// snapshot's cache whose vertices keep is true for — the
// incremental-rebuild path passes the complement of the affected set, so
// queries against the new snapshot start warm for everything the delta
// could not have changed. Entries are shared by pointer (their payload
// is immutable). Vertices are visited in ascending order, so the carried
// ring order — and therefore later eviction order — is deterministic;
// the copy stops charging once the budget is reached. The receiver is
// fresh and unpublished, so no locks are needed.
func (c *tallyCache) carryForward(old *tallyCache, keep func(v uint32) bool) {
	for v := range old.slots {
		ent := old.slots[v].Load()
		if ent == nil || !keep(uint32(v)) {
			continue
		}
		if c.bytes.Load()+ent.size > c.maxBytes {
			continue
		}
		c.bytes.Add(ent.size)
		sh := c.shard(uint32(v))
		sh.ring = append(sh.ring, ent)
		c.slots[v].Store(ent)
	}
}
