package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// AllTopK runs the top-k similarity search for every vertex, in parallel
// over Params.Workers, and returns one result slice per vertex. This is
// the "top-k for all" mode of Table 1; space is O(m + k·n).
//
// The per-vertex searches are independent (the paper notes the algorithm
// is distributed-computing friendly); parallel efficiency is near-linear.
func (e *Snapshot) AllTopK(k int) [][]Scored {
	out, _ := e.AllTopKCtx(context.Background(), k)
	return out
}

// AllTopKCtx is AllTopK with cancellation: workers stop picking up new
// vertices once ctx is cancelled and the call returns ctx.Err(). The
// partially-filled result is discarded.
func (e *Snapshot) AllTopKCtx(ctx context.Context, k int) ([][]Scored, error) {
	out := make([][]Scored, e.g.N())
	err := e.forEachVertexParallel(ctx, func(u uint32) {
		res, _, _ := e.search(ctx, u, k, e.p.Theta, 1)
		out[u] = res
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AllTopKFunc streams per-vertex results to fn instead of materializing
// them; fn may be called concurrently from multiple goroutines.
func (e *Snapshot) AllTopKFunc(k int, fn func(u uint32, res []Scored)) {
	e.forEachVertexParallel(context.Background(), func(u uint32) {
		res, _, _ := e.search(context.Background(), u, k, e.p.Theta, 1)
		fn(u, res)
	})
}

// forEachVertexParallel runs fn for every vertex through the shared
// atomic-cursor pool of forEachIndexParallel.
func (e *Snapshot) forEachVertexParallel(ctx context.Context, fn func(u uint32)) error {
	return e.forEachIndexParallel(ctx, e.g.N(), func(i int) { fn(uint32(i)) })
}

// forEachIndexParallel runs fn for every index in [0, n) using a shared
// atomic cursor, which balances skewed per-item costs better than
// striding. At most Params.Workers goroutines run; cancellation is
// observed between items: a worker that sees a cancelled ctx stops
// claiming new indices, and the call reports ctx.Err() after every
// worker has drained. This is the one work-item fan-out of the query
// side — AllTopK, SimilarityJoin, and TopKBatch all route through it.
func (e *Snapshot) forEachIndexParallel(ctx context.Context, n int, fn func(i int)) error {
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		// A cancellation during the last item must still be reported:
		// fn may have cut that item short.
		return ctx.Err()
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := cursor.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
