package core

import (
	"sync"
	"sync/atomic"
)

// AllTopK runs the top-k similarity search for every vertex, in parallel
// over Params.Workers, and returns one result slice per vertex. This is
// the "top-k for all" mode of Table 1; space is O(m + k·n).
//
// The per-vertex searches are independent (the paper notes the algorithm
// is distributed-computing friendly); parallel efficiency is near-linear.
func (e *Engine) AllTopK(k int) [][]Scored {
	out := make([][]Scored, e.g.N())
	e.forEachVertexParallel(func(u uint32) {
		res, _ := e.search(u, k, e.p.Theta, 1)
		out[u] = res
	})
	return out
}

// AllTopKFunc streams per-vertex results to fn instead of materializing
// them; fn may be called concurrently from multiple goroutines.
func (e *Engine) AllTopKFunc(k int, fn func(u uint32, res []Scored)) {
	e.forEachVertexParallel(func(u uint32) {
		res, _ := e.search(u, k, e.p.Theta, 1)
		fn(u, res)
	})
}

// forEachVertexParallel runs fn for every vertex using a shared atomic
// cursor, which balances skewed per-query costs better than striding.
func (e *Engine) forEachVertexParallel(fn func(u uint32)) {
	n := e.g.N()
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			fn(uint32(u))
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				u := cursor.Add(1) - 1
				if u >= int64(n) {
					return
				}
				fn(uint32(u))
			}
		}()
	}
	wg.Wait()
}
