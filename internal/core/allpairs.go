package core

import (
	"context"
	"sync"
	"sync/atomic"
)

// AllTopK runs the top-k similarity search for every vertex, in parallel
// over Params.Workers, and returns one result slice per vertex. This is
// the "top-k for all" mode of Table 1; space is O(m + k·n).
//
// The per-vertex searches are independent (the paper notes the algorithm
// is distributed-computing friendly); parallel efficiency is near-linear.
func (e *Snapshot) AllTopK(k int) [][]Scored {
	out, _ := e.AllTopKCtx(context.Background(), k)
	return out
}

// AllTopKCtx is AllTopK with cancellation: workers stop picking up new
// vertices once ctx is cancelled and the call returns ctx.Err(). The
// partially-filled result is discarded.
func (e *Snapshot) AllTopKCtx(ctx context.Context, k int) ([][]Scored, error) {
	out := make([][]Scored, e.g.N())
	err := e.forEachVertexParallel(ctx, func(u uint32) {
		res, _, _ := e.search(ctx, u, k, e.p.Theta, 1)
		out[u] = res
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AllTopKFunc streams per-vertex results to fn instead of materializing
// them; fn may be called concurrently from multiple goroutines.
func (e *Snapshot) AllTopKFunc(k int, fn func(u uint32, res []Scored)) {
	e.forEachVertexParallel(context.Background(), func(u uint32) {
		res, _, _ := e.search(context.Background(), u, k, e.p.Theta, 1)
		fn(u, res)
	})
}

// forEachVertexParallel runs fn for every vertex using a shared atomic
// cursor, which balances skewed per-query costs better than striding.
// Cancellation is observed between vertices: a worker that sees a
// cancelled ctx stops claiming new vertices, and the call reports
// ctx.Err() after every worker has drained.
func (e *Snapshot) forEachVertexParallel(ctx context.Context, fn func(u uint32)) error {
	n := e.g.N()
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for u := 0; u < n; u++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(uint32(u))
		}
		return nil
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				u := cursor.Add(1) - 1
				if u >= int64(n) {
					return
				}
				fn(uint32(u))
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
