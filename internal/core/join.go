package core

import (
	"context"
	"sort"
	"sync"
)

// SimilarityJoin finds every unordered vertex pair whose estimated
// SimRank score is at least theta — the SimRank-based similarity join of
// Zheng et al. (PVLDB 2013), expressible directly on top of the top-k
// machinery: each vertex runs a threshold query and pairs are
// deduplicated as (min, max). Work parallelizes over query vertices like
// AllTopK.
//
// maxPairs caps the output size (0 = unlimited); when the cap is hit the
// lowest-scoring pairs are dropped, keeping the strongest joins.
func (e *Snapshot) SimilarityJoin(theta float64, maxPairs int) []JoinPair {
	out, _ := e.SimilarityJoinCtx(context.Background(), theta, maxPairs)
	return out
}

// SimilarityJoinCtx is SimilarityJoin with cancellation: the per-vertex
// threshold queries stop once ctx is cancelled and the call returns
// ctx.Err() with no partial output.
func (e *Snapshot) SimilarityJoinCtx(ctx context.Context, theta float64, maxPairs int) ([]JoinPair, error) {
	type keyed struct {
		key   uint64
		score float64
	}
	var mu sync.Mutex
	seen := make(map[uint64]float64)

	err := e.forEachVertexParallel(ctx, func(u uint32) {
		// Workers are already saturated across query vertices; each inner
		// query runs sequentially to avoid nested parallelism.
		res, _, err := e.search(ctx, u, 0, theta, 1)
		if err != nil || len(res) == 0 {
			return
		}
		mu.Lock()
		for _, s := range res {
			a, b := u, s.V
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			// Each pair is estimated from both endpoints; keep the
			// larger estimate (both are unbiased; max adds a slight
			// optimism that errs toward keeping borderline joins).
			if old, ok := seen[key]; !ok || s.Score > old {
				seen[key] = s.Score
			}
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}

	pairs := make([]keyed, 0, len(seen))
	for k, s := range seen {
		pairs = append(pairs, keyed{k, s})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].score != pairs[j].score {
			return pairs[i].score > pairs[j].score
		}
		return pairs[i].key < pairs[j].key
	})
	if maxPairs > 0 && len(pairs) > maxPairs {
		pairs = pairs[:maxPairs]
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{U: uint32(p.key >> 32), V: uint32(p.key & 0xffffffff), Score: p.score}
	}
	return out, nil
}

// JoinPair is one result of SimilarityJoin, with U < V.
type JoinPair struct {
	U, V  uint32
	Score float64
}
