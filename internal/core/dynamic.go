package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// DynamicEngine maintains a similarity-search engine over a mutable edge
// set. Edge insertions and deletions are buffered; the first query after
// a batch of updates triggers an incremental refresh that recomputes the
// preprocess artifacts (γ rows and candidate-index entries) only for the
// vertices whose random-walk behaviour could have changed.
//
// An edge update (a, b) changes In(b), and a walk's behaviour changes
// only at vertices whose walks can visit b — exactly the vertices
// reachable from b via out-edges within T steps. The refresh recomputes
// those; when the affected set exceeds half the graph it falls back to a
// full rebuild.
type DynamicEngine struct {
	mu    sync.Mutex
	p     Params
	n     int
	edges map[uint64]struct{}
	// dirty holds edge targets whose in-lists changed since the last
	// refresh.
	dirty map[uint32]struct{}
	eng   *Engine // current engine; nil until first refresh
	// rebuilds and incrementals count refresh kinds, for tests and
	// diagnostics.
	rebuilds     int
	incrementals int
}

// NewDynamic returns a dynamic engine with n vertices and no edges.
func NewDynamic(n int, p Params) *DynamicEngine {
	return &DynamicEngine{
		p:     p.normalized(),
		n:     n,
		edges: make(map[uint64]struct{}),
		dirty: make(map[uint32]struct{}),
	}
}

// NewDynamicFrom seeds the dynamic engine with an existing graph.
func NewDynamicFrom(g *graph.Graph, p Params) *DynamicEngine {
	d := NewDynamic(g.N(), p)
	g.Edges(func(u, v uint32) bool {
		d.edges[edgeKey(u, v)] = struct{}{}
		return true
	})
	return d
}

func edgeKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// N returns the vertex count.
func (d *DynamicEngine) N() int { return d.n }

// M returns the current edge count (including buffered updates).
func (d *DynamicEngine) M() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.edges)
}

// AddEdge inserts the directed edge (u, v). Self-loops are rejected, as
// in the static builder. Inserting an existing edge is a no-op.
func (d *DynamicEngine) AddEdge(u, v uint32) error {
	if int(u) >= d.n || int(v) >= d.n {
		return fmt.Errorf("core: edge (%d,%d) out of range for n=%d", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("core: self-loop (%d,%d) not allowed", u, v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := edgeKey(u, v)
	if _, ok := d.edges[k]; ok {
		return nil
	}
	d.edges[k] = struct{}{}
	d.dirty[v] = struct{}{}
	return nil
}

// RemoveEdge deletes the directed edge (u, v). Removing a missing edge is
// a no-op.
func (d *DynamicEngine) RemoveEdge(u, v uint32) error {
	if int(u) >= d.n || int(v) >= d.n {
		return fmt.Errorf("core: edge (%d,%d) out of range for n=%d", u, v, d.n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := edgeKey(u, v)
	if _, ok := d.edges[k]; !ok {
		return nil
	}
	delete(d.edges, k)
	d.dirty[v] = struct{}{}
	return nil
}

// Pending reports the number of vertices with buffered in-list changes.
func (d *DynamicEngine) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.dirty)
}

// Refreshes reports how many incremental and full refreshes have run.
func (d *DynamicEngine) Refreshes() (incremental, full int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incrementals, d.rebuilds
}

// TopK answers a top-k query, refreshing first if updates are pending.
func (d *DynamicEngine) TopK(u uint32, k int) ([]Scored, error) {
	eng, err := d.engine()
	if err != nil {
		return nil, err
	}
	return eng.TopK(u, k), nil
}

// SinglePair estimates s⁽ᵀ⁾(u, v), refreshing first if needed.
func (d *DynamicEngine) SinglePair(u, v uint32) (float64, error) {
	eng, err := d.engine()
	if err != nil {
		return 0, err
	}
	return eng.SinglePair(u, v), nil
}

// Engine returns the refreshed inner engine.
func (d *DynamicEngine) Engine() (*Engine, error) { return d.engine() }

func (d *DynamicEngine) engine() (*Engine, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng != nil && len(d.dirty) == 0 {
		return d.eng, nil
	}
	if err := d.refreshLocked(); err != nil {
		return nil, err
	}
	return d.eng, nil
}

// Refresh applies buffered updates immediately instead of lazily.
func (d *DynamicEngine) Refresh() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng != nil && len(d.dirty) == 0 {
		return nil
	}
	return d.refreshLocked()
}

func (d *DynamicEngine) refreshLocked() error {
	g := d.buildGraphLocked()
	if d.eng == nil {
		// First materialization: full preprocess.
		d.eng = Build(g, d.p)
		d.rebuilds++
		d.dirty = make(map[uint32]struct{})
		return nil
	}

	// Affected vertices: out-BFS from each dirty target within T steps
	// on the NEW graph, plus the same on the old graph (a removed edge
	// changes walks that used to reach the target through it).
	affected := make(map[uint32]struct{})
	old := d.eng.g
	for b := range d.dirty {
		markOutReachable(g, b, d.p.T, affected)
		markOutReachable(old, b, d.p.T, affected)
	}
	if len(affected)*2 >= d.n {
		d.eng = Build(g, d.p)
		d.rebuilds++
		d.dirty = make(map[uint32]struct{})
		return nil
	}

	// Incremental: recompute γ rows and index entries for affected
	// vertices only, on a new engine sharing the untouched artifacts.
	ne := New(g, d.p)
	ne.gamma = cloneFloat32(d.eng.gamma)
	T := ne.p.T
	ri := make([][]uint32, d.n)
	copy(ri, d.eng.idx.right)
	r := rng.New(ne.p.Seed)
	s := ne.getScratch()
	for v := range affected {
		if ne.gamma != nil {
			r.Seed(ne.vertexSeed(saltGamma, v))
			ne.computeGammaInto(v, ne.p.RGamma, r, s, ne.gamma[int(v)*T:int(v)*T+T])
		}
		r.Seed(ne.vertexSeed(saltIndex, v))
		ri[v] = ne.buildIndexEntry(v, r, s.indexScratch(T, ne.p.Q))
	}
	ne.putScratch(s)
	idx := &candidateIndex{right: ri}
	idx.buildInverted(d.n)
	ne.idx = idx
	ne.stats = d.eng.stats
	ne.stats.IndexBytes = int64(len(ne.gamma))*4 + idx.bytes()
	d.eng = ne
	d.incrementals++
	d.dirty = make(map[uint32]struct{})
	return nil
}

// buildGraphLocked materializes the current edge set as a CSR graph.
func (d *DynamicEngine) buildGraphLocked() *graph.Graph {
	b := graph.NewBuilder(d.n)
	for k := range d.edges {
		b.AddEdge(uint32(k>>32), uint32(k&0xffffffff))
	}
	return b.Build()
}

// markOutReachable adds every vertex reachable from src via out-edges in
// at most depth steps to the set (including src itself).
func markOutReachable(g *graph.Graph, src uint32, depth int, into map[uint32]struct{}) {
	type qe struct {
		v uint32
		d int
	}
	if _, ok := into[src]; !ok {
		into[src] = struct{}{}
	}
	queue := []qe{{src, 0}}
	seen := map[uint32]struct{}{src: {}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= depth {
			continue
		}
		for _, w := range g.Out(cur.v) {
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			into[w] = struct{}{}
			queue = append(queue, qe{w, cur.d + 1})
		}
	}
}

func cloneFloat32(xs []float32) []float32 {
	if xs == nil {
		return nil
	}
	out := make([]float32, len(xs))
	copy(out, xs)
	return out
}
