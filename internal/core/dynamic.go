package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
)

// DynamicEngine maintains a similarity-search engine over a mutable edge
// set. Edge insertions and deletions are buffered; refreshes rebuild the
// preprocess artifacts (γ rows and candidate-index entries) only for the
// vertices whose random-walk behaviour could have changed, and publish
// the result as an immutable Snapshot through an atomic pointer.
//
// Concurrency model:
//
//   - Queries load the current snapshot with a single atomic read and run
//     entirely against that immutable state — they never take d.mu, so
//     they cannot stall behind an in-progress refresh. A query issued
//     during a rebuild serves the previous snapshot.
//   - AddEdge/RemoveEdge buffer the change under d.mu and mark the engine
//     stale; they never build anything. The next query notices the staleness
//     and kicks the single background refresher (non-blocking), which builds
//     the next snapshot off-lock and swaps it in.
//   - Refresh applies buffered updates synchronously: after it returns,
//     queries observe the updates (read-your-writes on demand). Concurrent
//     builds are serialized by refreshMu, so at most one preprocess runs
//     at a time regardless of how the refresh was triggered.
//
// An edge update (a, b) changes In(b), and a walk's behaviour changes
// only at vertices whose walks can visit b — exactly the vertices
// reachable from b via out-edges within T steps. The refresh recomputes
// those; when the affected set exceeds half the graph it falls back to a
// full rebuild.
type DynamicEngine struct {
	p Params
	n int

	// mu guards the edge set, the dirty set, and the refresh counters.
	// It is never held while building a snapshot.
	mu    sync.Mutex
	edges map[uint64]struct{}
	// dirty holds edge targets whose in-lists changed since the last
	// refresh.
	dirty map[uint32]struct{}
	// rebuilds and incrementals count refresh kinds, for tests and
	// diagnostics.
	rebuilds     int
	incrementals int

	// snap is the published immutable query state; nil until the first
	// refresh materializes it.
	snap atomic.Pointer[Snapshot]
	// pending mirrors len(dirty) != 0 so the query fast path can detect
	// staleness without taking mu.
	pending atomic.Bool

	// refreshMu serializes snapshot builds: the read-edges → build →
	// publish sequence must not interleave, or a slow build could
	// overwrite a newer snapshot.
	refreshMu sync.Mutex

	// kick wakes the background refresher; done stops it.
	kick      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// NewDynamic returns a dynamic engine with n vertices and no edges. Call
// Close when done to stop the background refresher.
func NewDynamic(n int, p Params) *DynamicEngine {
	d := &DynamicEngine{
		p:     p.normalized(),
		n:     n,
		edges: make(map[uint64]struct{}),
		dirty: make(map[uint32]struct{}),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	d.startRefresher()
	return d
}

// NewDynamicFrom seeds the dynamic engine with an existing graph.
func NewDynamicFrom(g *graph.Graph, p Params) *DynamicEngine {
	d := NewDynamic(g.N(), p)
	g.Edges(func(u, v uint32) bool {
		d.edges[edgeKey(u, v)] = struct{}{}
		return true
	})
	return d
}

func edgeKey(u, v uint32) uint64 { return uint64(u)<<32 | uint64(v) }

// startRefresher launches the single background worker that rebuilds
// snapshots when queries observe buffered updates. It is the only place
// in the engine that spawns a long-lived goroutine.
func (d *DynamicEngine) startRefresher() {
	go d.refreshLoop()
}

func (d *DynamicEngine) refreshLoop() {
	for {
		select {
		case <-d.done:
			return
		case <-d.kick:
			d.refreshNow()
		}
	}
}

// kickRefresh nudges the background refresher without blocking; a kick
// that finds one already queued is dropped (the refresher drains the
// whole dirty set per pass, so one queued kick suffices).
func (d *DynamicEngine) kickRefresh() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Close stops the background refresher. Queries against the last
// published snapshot remain valid; further updates are still buffered but
// only refreshed synchronously (via Refresh or a first query).
func (d *DynamicEngine) Close() {
	d.closeOnce.Do(func() { close(d.done) })
}

// N returns the vertex count.
func (d *DynamicEngine) N() int { return d.n }

// M returns the current edge count (including buffered updates).
func (d *DynamicEngine) M() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.edges)
}

// AddEdge inserts the directed edge (u, v). Self-loops are rejected, as
// in the static builder. Inserting an existing edge is a no-op.
// The update is buffered: queries keep serving the current snapshot until
// a refresh (background or explicit) absorbs the change.
func (d *DynamicEngine) AddEdge(u, v uint32) error {
	if int(u) >= d.n || int(v) >= d.n {
		return fmt.Errorf("core: edge (%d,%d) out of range for n=%d", u, v, d.n)
	}
	if u == v {
		return fmt.Errorf("core: self-loop (%d,%d) not allowed", u, v)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := edgeKey(u, v)
	if _, ok := d.edges[k]; ok {
		return nil
	}
	d.edges[k] = struct{}{}
	d.dirty[v] = struct{}{}
	d.pending.Store(true)
	return nil
}

// RemoveEdge deletes the directed edge (u, v). Removing a missing edge is
// a no-op. Like AddEdge, the update is buffered.
func (d *DynamicEngine) RemoveEdge(u, v uint32) error {
	if int(u) >= d.n || int(v) >= d.n {
		return fmt.Errorf("core: edge (%d,%d) out of range for n=%d", u, v, d.n)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	k := edgeKey(u, v)
	if _, ok := d.edges[k]; !ok {
		return nil
	}
	delete(d.edges, k)
	d.dirty[v] = struct{}{}
	d.pending.Store(true)
	return nil
}

// Pending reports the number of vertices with buffered in-list changes.
func (d *DynamicEngine) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.dirty)
}

// Refreshes reports how many incremental and full refreshes have run.
func (d *DynamicEngine) Refreshes() (incremental, full int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.incrementals, d.rebuilds
}

// TopK answers a top-k query against the current snapshot.
func (d *DynamicEngine) TopK(u uint32, k int) ([]Scored, error) {
	return d.TopKCtx(context.Background(), u, k)
}

// TopKCtx is TopK with cancellation, checked between candidate-scoring
// blocks (see Snapshot.TopKCtx).
func (d *DynamicEngine) TopKCtx(ctx context.Context, u uint32, k int) ([]Scored, error) {
	s, err := d.snapshot(ctx)
	if err != nil {
		return nil, err
	}
	return s.TopKCtx(ctx, u, k)
}

// TopKBatchCtx answers a slice of top-k queries against one consistent
// snapshot (every query in the batch sees the same graph state), sharing
// its tally cache across the batch.
func (d *DynamicEngine) TopKBatchCtx(ctx context.Context, us []uint32, k int) ([][]Scored, []QueryStats, error) {
	s, err := d.snapshot(ctx)
	if err != nil {
		return nil, nil, err
	}
	return s.TopKBatchCtx(ctx, us, k)
}

// CacheStats reports the current snapshot's tally-cache counters (zero
// when no snapshot is published yet or the cache is disabled). Counters
// reset when a refresh publishes a new snapshot; carried-forward entries
// keep their contents but not their hit history.
func (d *DynamicEngine) CacheStats() CacheStats {
	if s := d.snap.Load(); s != nil {
		return s.CacheStats()
	}
	return CacheStats{}
}

// SinglePair estimates s⁽ᵀ⁾(u, v) against the current snapshot.
func (d *DynamicEngine) SinglePair(u, v uint32) (float64, error) {
	return d.SinglePairCtx(context.Background(), u, v)
}

// SinglePairCtx is SinglePair with cancellation.
func (d *DynamicEngine) SinglePairCtx(ctx context.Context, u, v uint32) (float64, error) {
	s, err := d.snapshot(ctx)
	if err != nil {
		return 0, err
	}
	return s.SinglePairCtx(ctx, u, v)
}

// Snapshot returns the current immutable query state, materializing it
// synchronously if no snapshot exists yet. The returned snapshot is
// internally consistent (graph, γ table, and candidate index from one
// refresh) and stays valid — though possibly stale — forever.
func (d *DynamicEngine) Snapshot() (*Snapshot, error) {
	return d.snapshot(context.Background())
}

// snapshot is the query fast path: one atomic load in steady state. If
// updates are pending it kicks the background refresher and still returns
// the current (stale) snapshot — queries never wait for a build. Only the
// very first query, with no snapshot published yet, builds synchronously.
func (d *DynamicEngine) snapshot(ctx context.Context) (*Snapshot, error) {
	if s := d.snap.Load(); s != nil {
		if d.pending.Load() {
			d.kickRefresh()
		}
		return s, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	d.refreshNow()
	return d.snap.Load(), nil
}

// Refresh applies buffered updates immediately instead of eventually:
// after it returns, queries observe every update buffered before the
// call.
func (d *DynamicEngine) Refresh() error {
	d.refreshNow()
	return nil
}

// refreshNow builds and publishes a snapshot absorbing all updates
// buffered at the time it starts. refreshMu makes the read → build →
// publish sequence atomic with respect to other refreshes; d.mu is held
// only long enough to copy the edge set and steal the dirty set, so
// updates keep flowing while the build runs.
func (d *DynamicEngine) refreshNow() {
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()

	d.mu.Lock()
	if d.snap.Load() != nil && len(d.dirty) == 0 {
		d.mu.Unlock()
		return
	}
	g := d.buildGraphLocked()
	dirty := d.dirty
	d.dirty = make(map[uint32]struct{})
	d.pending.Store(false)
	d.mu.Unlock()

	old := d.snap.Load()
	next, full := d.buildSnapshot(old, g, dirty)
	d.snap.Store(next)

	d.mu.Lock()
	if full {
		d.rebuilds++
	} else {
		d.incrementals++
	}
	d.mu.Unlock()
}

// buildSnapshot constructs the next snapshot off-lock. With no previous
// snapshot, or when the affected set covers at least half the graph, it
// runs the full preprocess; otherwise it recomputes γ rows and index
// entries for affected vertices only, sharing the untouched artifacts of
// the previous snapshot by copy.
func (d *DynamicEngine) buildSnapshot(old *Snapshot, g *graph.Graph, dirty map[uint32]struct{}) (next *Snapshot, full bool) {
	if old == nil {
		return Build(g, d.p).Seal(), true
	}

	// Affected vertices: out-BFS from each dirty target within T steps
	// on the NEW graph, plus the same on the old graph (a removed edge
	// changes walks that used to reach the target through it).
	affected := make(map[uint32]struct{})
	for b := range dirty {
		markOutReachable(g, b, d.p.T, affected)
		markOutReachable(old.g, b, d.p.T, affected)
	}
	if len(affected)*2 >= d.n {
		return Build(g, d.p).Seal(), true
	}

	ne := New(g, d.p)
	ne.gamma = cloneFloat32(old.gamma)
	T := ne.p.T
	// Expand the old CSR rows into a row view; untouched rows alias the
	// old snapshot's storage (it is immutable) and only affected rows
	// are rebuilt before re-flattening.
	ri := make([][]uint32, d.n)
	for v := range ri {
		ri[v] = old.idx.rightRow(uint32(v))
	}
	r := rng.New(ne.p.Seed)
	s := ne.getScratch()
	for v := range affected {
		if ne.gamma != nil {
			r.Seed(ne.vertexSeed(saltGamma, v))
			ne.computeGammaInto(v, ne.p.RGamma, r, s, ne.gamma[int(v)*T:int(v)*T+T])
		}
		r.Seed(ne.vertexSeed(saltIndex, v))
		ri[v] = ne.buildIndexEntry(v, r, s.indexScratch(T, ne.p.Q))
	}
	ne.putScratch(s)
	idx := indexFromRows(ri)
	ne.idx = idx
	ne.stats = old.stats
	ne.stats.IndexBytes = int64(len(ne.gamma))*4 + idx.bytes()
	if old.cache != nil && ne.cache != nil {
		// A cached tally depends only on the candidate's T-step walk
		// neighbourhood, and `affected` is exactly the set of vertices
		// whose walks could see the delta (on either graph) — every
		// other entry is still byte-exact for the new snapshot, so the
		// new cache starts warm with them.
		ne.cache.carryForward(old.cache, func(v uint32) bool {
			_, hit := affected[v]
			return !hit
		})
	}
	if old.prolog != nil && ne.prolog != nil {
		// A prolog entry depends only on the query vertex's T-step walk
		// neighbourhood — the same footprint as a candidate tally — so
		// the same unaffected-set predicate keeps it valid.
		ne.prolog.carryForward(old.prolog, func(v uint32) bool {
			_, hit := affected[v]
			return !hit
		})
	}
	return ne.Seal(), false
}

// buildGraphLocked materializes the current edge set as a CSR graph.
func (d *DynamicEngine) buildGraphLocked() *graph.Graph {
	b := graph.NewBuilder(d.n)
	for k := range d.edges {
		b.AddEdge(uint32(k>>32), uint32(k&0xffffffff))
	}
	return b.Build()
}

// markOutReachable adds every vertex reachable from src via out-edges in
// at most depth steps to the set (including src itself).
func markOutReachable(g *graph.Graph, src uint32, depth int, into map[uint32]struct{}) {
	type qe struct {
		v uint32
		d int
	}
	if _, ok := into[src]; !ok {
		into[src] = struct{}{}
	}
	queue := []qe{{src, 0}}
	seen := map[uint32]struct{}{src: {}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= depth {
			continue
		}
		for _, w := range g.Out(cur.v) {
			if _, ok := seen[w]; ok {
				continue
			}
			seen[w] = struct{}{}
			into[w] = struct{}{}
			queue = append(queue, qe{w, cur.d + 1})
		}
	}
}

func cloneFloat32(xs []float32) []float32 {
	if xs == nil {
		return nil
	}
	out := make([]float32, len(xs))
	copy(out, xs)
	return out
}
