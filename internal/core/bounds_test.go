package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

// buildSmall builds a preprocessed engine over a small random graph.
func buildSmall(t *testing.T, n int, seed uint64) (*Engine, *graph.Graph) {
	t.Helper()
	g := graph.PreferentialAttachment(n, 3, 0.3, seed)
	p := DefaultParams()
	p.Seed = seed
	p.Workers = 2
	p.RAlpha = 2000
	return Build(g, p), g
}

// Proposition 6: the L2 bound dominates the exact truncated score.
// Monte-Carlo noise in γ can make the bound slightly loose or tight, so
// the test allows a small additive slack and requires violations to be
// rare and tiny.
func TestL2BoundDominatesScore(t *testing.T) {
	e, g := buildSmall(t, 80, 3)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	r := rng.New(5)
	violations := 0
	for i := 0; i < 100; i++ {
		u := uint32(r.Intn(g.N()))
		v := uint32(r.Intn(g.N()))
		if u == v {
			continue
		}
		s := exact.SinglePair(g, d, e.p.C, e.p.T, u, v)
		ub := e.L2Bound(u, v)
		if s > ub+0.02 {
			violations++
			t.Logf("pair (%d,%d): score %v > L2 bound %v", u, v, s, ub)
		}
	}
	if violations > 3 {
		t.Fatalf("%d/100 pairs violate the L2 bound beyond MC slack", violations)
	}
}

// Proposition 4: β(u, d) dominates the exact truncated score of every
// vertex at distance d.
func TestL1BoundDominatesScore(t *testing.T) {
	e, g := buildSmall(t, 80, 4)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	r := e.queryRNG(0)
	violations, checked := 0, 0
	s := e.getScratch()
	defer e.putScratch(s)
	for _, u := range []uint32{0, 11, 42} {
		dist := s.distBuf()
		s.ball, _ = g.UndirectedBallInto(u, e.p.DMax, -1, dist, s.ball[:0])
		e.sampleWalkDistInto(&s.wd, s, u, e.p.RAlpha, r)
		tbl := e.computeL1From(s, &s.wd, dist, e.p.DMax)
		row := exact.SingleSource(g, d, e.p.C, e.p.T, u)
		for _, v := range s.ball {
			if v == u {
				continue
			}
			dd := dist[v]
			checked++
			if row[v] > tbl.bound(int(dd))+0.02 {
				violations++
				t.Logf("u=%d v=%d d=%d: score %v > beta %v", u, v, dd, row[v], tbl.bound(int(dd)))
			}
		}
		s.resetDist()
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
	if violations*20 > checked {
		t.Fatalf("%d/%d pairs violate the L1 bound beyond MC slack", violations, checked)
	}
}

// The distance bound must dominate the exact truncated score.
func TestDistanceBoundDominatesScore(t *testing.T) {
	g := graph.PreferentialAttachment(80, 3, 0.3, 9)
	p := DefaultParams()
	p.Seed = 9
	e := New(g, p)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	for _, u := range []uint32{0, 5, 33} {
		dist := g.UndirectedDistances(u, -1)
		row := exact.SingleSource(g, d, e.p.C, e.p.T, u)
		for v := 0; v < g.N(); v++ {
			if uint32(v) == u || dist[v] < 0 {
				continue
			}
			if row[v] > e.DistanceBound(int(dist[v]))+1e-12 {
				t.Fatalf("u=%d v=%d d=%d: score %v > distance bound %v",
					u, v, dist[v], row[v], e.DistanceBound(int(dist[v])))
			}
		}
	}
}

func TestDistanceBoundMonotone(t *testing.T) {
	e := New(graph.Star(4), DefaultParams())
	prev := e.DistanceBound(0)
	if prev != 1 {
		t.Fatalf("DistanceBound(0) = %v", prev)
	}
	for d := 1; d < 12; d++ {
		b := e.DistanceBound(d)
		if b > prev+1e-15 {
			t.Fatalf("bound not monotone at d=%d: %v > %v", d, b, prev)
		}
		prev = b
	}
}

func TestGammaTableShape(t *testing.T) {
	e, g := buildSmall(t, 50, 6)
	if len(e.gamma) != g.N()*e.p.T {
		t.Fatalf("gamma table length %d, want %d", len(e.gamma), g.N()*e.p.T)
	}
	// γ(v, 0) = sqrt(D_vv): walks have not moved at t = 0.
	want := math.Sqrt(1 - e.p.C)
	for v := uint32(0); int(v) < g.N(); v++ {
		if math.Abs(e.Gamma(v, 0)-want) > 1e-6 {
			t.Fatalf("gamma(%d,0) = %v, want %v", v, e.Gamma(v, 0), want)
		}
	}
}

func TestGammaDanglingDecaysToZero(t *testing.T) {
	// On a directed star, all walks die by step 2; gamma must be 0 there.
	g := graph.DirectedStar(5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	for v := uint32(0); v < 5; v++ {
		if got := e.Gamma(v, 3); got != 0 {
			t.Fatalf("gamma(%d,3) = %v, want 0", v, got)
		}
	}
}

func TestL2BoundSymmetricInputs(t *testing.T) {
	e, _ := buildSmall(t, 40, 8)
	if a, b := e.L2Bound(3, 9), e.L2Bound(9, 3); math.Abs(a-b) > 1e-12 {
		t.Fatalf("L2 bound asymmetric: %v vs %v", a, b)
	}
}

func TestL1TableOutOfRange(t *testing.T) {
	var tbl *l1Table
	if !math.IsInf(tbl.bound(3), 1) {
		t.Fatal("nil table must return +Inf")
	}
	tbl = &l1Table{dmax: 2, beta: []float64{1, 0.5, 0.25}}
	if !math.IsInf(tbl.bound(5), 1) || !math.IsInf(tbl.bound(-1), 1) {
		t.Fatal("out-of-range distances must return +Inf")
	}
	if tbl.bound(1) != 0.5 {
		t.Fatal("in-range bound wrong")
	}
}

func TestL1BoundPublicAPI(t *testing.T) {
	e, _ := buildSmall(t, 40, 12)
	b := e.L1Bound(0, 1)
	if b < 0 || math.IsNaN(b) {
		t.Fatalf("L1Bound = %v", b)
	}
}

func TestCustomDiagonalChangesBounds(t *testing.T) {
	g := graph.PreferentialAttachment(30, 3, 0.3, 2)
	p := DefaultParams()
	p.Workers = 1
	p.D = make([]float64, g.N())
	for i := range p.D {
		p.D[i] = 1.0 // max possible D
	}
	e := Build(g, p)
	// gamma(v,0) = sqrt(1) = 1 now.
	if math.Abs(e.Gamma(3, 0)-1) > 1e-6 {
		t.Fatalf("gamma with custom D = %v, want 1", e.Gamma(3, 0))
	}
	// Distance bound scales by maxD/(1-c).
	def := New(g, DefaultParams())
	if e.DistanceBound(2) <= def.DistanceBound(2) {
		t.Fatal("distance bound did not scale with larger D")
	}
}
