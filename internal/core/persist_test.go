package core

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 5)
	p := DefaultParams()
	p.Seed = 7
	p.Workers = 2
	e := Build(g, p)

	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}

	// Gamma tables identical.
	if len(e2.gamma) != len(e.gamma) {
		t.Fatalf("gamma length %d vs %d", len(e2.gamma), len(e.gamma))
	}
	for i := range e.gamma {
		if e.gamma[i] != e2.gamma[i] {
			t.Fatalf("gamma[%d] differs", i)
		}
	}
	// Index entries identical.
	for v := 0; v < e.g.N(); v++ {
		a, b := e.idx.rightRow(uint32(v)), e2.idx.rightRow(uint32(v))
		if len(a) != len(b) {
			t.Fatalf("index entry %d length differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index entry %d differs", v)
			}
		}
	}
	// Queries identical.
	for u := uint32(0); u < 20; u++ {
		ra := e.TopK(u, 5)
		rb := e2.TopK(u, 5)
		if len(ra) != len(rb) {
			t.Fatalf("u=%d: result lengths differ", u)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("u=%d: results differ: %v vs %v", u, ra[i], rb[i])
			}
		}
	}
	if e2.Stats().IndexBytes <= 0 {
		t.Fatal("loaded engine missing stats")
	}
}

func TestLoadIndexRejectsMismatch(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong graph size.
	g2 := graph.CopyingModel(101, 4, 0.3, 5)
	if _, err := LoadIndex(g2, p, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for n mismatch")
	}
	// Wrong T.
	pt := p
	pt.T = 7
	if _, err := LoadIndex(g, pt, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for T mismatch")
	}
	// Wrong c.
	pc := p
	pc.C = 0.8
	if _, err := LoadIndex(g, pc, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for c mismatch")
	}
	// Garbage input.
	if _, err := LoadIndex(g, p, strings.NewReader("not an index")); err == nil {
		t.Fatal("expected error for garbage")
	}
	// Truncated input.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatal("expected error for truncation")
	}
}

// parseTestDirectory decodes the v3 header and directory of saved;
// test-side mirror of the loader so corruption can target exact bytes.
func parseTestDirectory(t *testing.T, saved []byte) (persistHeader, []persistSection) {
	t.Helper()
	var hdr persistHeader
	if err := binary.Read(bytes.NewReader(saved), binary.LittleEndian, &hdr); err != nil {
		t.Fatal(err)
	}
	dir := make([]persistSection, hdr.SectionCount)
	if err := binary.Read(bytes.NewReader(saved[persistHeaderSize:]), binary.LittleEndian, dir); err != nil {
		t.Fatal(err)
	}
	return hdr, dir
}

func TestLoadIndexV3Corruption(t *testing.T) {
	g := graph.CopyingModel(150, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// A clean file loads.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}

	_, dir := parseTestDirectory(t, saved)
	if len(dir) < 4 {
		t.Fatalf("expected several sections, directory has %d", len(dir))
	}

	// A flip anywhere in the header or directory must fail the header CRC.
	for _, off := range []int{9, persistHeaderSize + 5, persistHeaderSize + persistSectionSize + 17} {
		bad := bytes.Clone(saved)
		bad[off] ^= 0x10
		if _, err := LoadIndex(g, p, bytes.NewReader(bad)); err == nil {
			t.Fatalf("header/directory bit flip at offset %d loaded without error", off)
		}
	}

	// A flip inside any section payload must fail that section's CRC on
	// the stream path. Probe the first, middle, and last byte of every
	// non-empty section.
	for _, d := range dir {
		if d.Count == 0 {
			continue
		}
		last := 4*d.Count - 1
		for _, rel := range []uint64{0, last / 2, last} {
			bad := bytes.Clone(saved)
			bad[d.Offset+rel] ^= 0x04
			_, err := LoadIndex(g, p, bytes.NewReader(bad))
			if err == nil {
				t.Fatalf("section %d bit flip at +%d loaded without error", d.Kind, rel)
			}
		}
	}

	// Truncation anywhere is rejected.
	for _, cut := range []int{persistHeaderSize - 3, len(saved) / 2, len(saved) - 1} {
		if _, err := LoadIndex(g, p, bytes.NewReader(saved[:cut])); err == nil {
			t.Fatalf("file truncated to %d bytes loaded without error", cut)
		}
	}
}

func TestLoadIndexV3RejectsWrongGraph(t *testing.T) {
	// Two graphs with identical n and m but different edges: the embedded
	// CSR comparison must catch the swap, which v1/v2 could not.
	ga := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	gb := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 2}})
	p := DefaultParams()
	p.Workers = 1
	e := Build(ga, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(gb, p, bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "different graph") {
		t.Fatalf("err = %v, want different-graph rejection", err)
	}
}

func TestLoadIndexChecksumV2(t *testing.T) {
	g := graph.CopyingModel(150, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.saveIndexLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// A clean v2 file still loads.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}

	// Any single bit flip in the payload must be rejected. Probe a spread
	// of offsets: header, gamma region, index region.
	payload := len(saved) - 4 // trailer excluded from the checksummed range
	for _, off := range []int{9, payload / 3, payload / 2, payload - 1} {
		bad := bytes.Clone(saved)
		bad[off] ^= 0x10
		_, err := LoadIndex(g, p, bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at offset %d loaded without error", off)
		}
	}

	// A corrupted trailer is a checksum mismatch too.
	bad := bytes.Clone(saved)
	bad[len(bad)-1] ^= 0x01
	if _, err := LoadIndex(g, p, bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt trailer: err = %v, want checksum mismatch", err)
	}

	// A file cut right before the trailer parses as payload but must be
	// rejected as truncated.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)-4])); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("missing trailer: err = %v, want truncation error", err)
	}
	// Likewise a partial trailer.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)-2])); err == nil {
		t.Fatal("partial trailer loaded without error")
	}
}

func TestLoadIndexReadsLegacyVersions(t *testing.T) {
	// New files are always v3, but v2 files (written here by the retained
	// legacy writer) and v1 files (a v2 file with the version field
	// patched and the CRC trailer stripped) must still load.
	g := graph.CopyingModel(150, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.saveIndexLegacy(&buf); err != nil {
		t.Fatal(err)
	}
	v2 := bytes.Clone(buf.Bytes())
	v1 := bytes.Clone(v2)
	v1 = v1[:len(v1)-4] // strip trailer
	v1[4] = 1           // version field (little endian uint32 after magic)
	v1[5], v1[6], v1[7] = 0, 0, 0

	for name, file := range map[string][]byte{"v1": v1, "v2": v2} {
		e2, err := LoadIndex(g, p, bytes.NewReader(file))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for u := uint32(0); u < 10; u++ {
			ra, rb := e.TopK(u, 5), e2.TopK(u, 5)
			if len(ra) != len(rb) {
				t.Fatalf("%s u=%d: result lengths differ", name, u)
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s u=%d: results differ", name, u)
				}
			}
		}
	}
}

func TestSaveLoadAliasSlots(t *testing.T) {
	// Non-trivial walk-table slots (the weighted-walk extension) must
	// round-trip through the alias sections.
	g := graph.CopyingModel(80, 3, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	m := g.M()
	prob := make([]uint32, m)
	alias := make([]uint32, m)
	for i := range prob {
		prob[i] = ^uint32(0) - uint32(i)
		alias[i] = uint32(i % 3)
	}
	if err := e.wt.AdoptSlots(prob, alias); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	p2, a2 := e2.wt.Slots()
	if p2 == nil {
		t.Fatal("loaded walk table lost its alias slots")
	}
	for i := range prob {
		if p2[i] != prob[i] || a2[i] != alias[i] {
			t.Fatalf("slot %d: got (%#x,%d), want (%#x,%d)", i, p2[i], a2[i], prob[i], alias[i])
		}
	}
}

// FuzzSectionDirectory feeds mutated index files — and in particular
// mutated headers and section directories — through LoadIndex: any
// input may be rejected, none may panic or over-allocate.
func FuzzSectionDirectory(f *testing.F) {
	g := graph.CopyingModel(40, 3, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:persistHeaderSize+3*persistSectionSize])
	var legacy bytes.Buffer
	if err := e.saveIndexLegacy(&legacy); err != nil {
		f.Fatal(err)
	}
	f.Add(legacy.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		e2, err := LoadIndex(g, p, bytes.NewReader(data))
		if err == nil && e2 == nil {
			t.Fatal("nil engine without error")
		}
	})
}

// failingWriter errors after n bytes.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errInjected
	}
	f.n -= len(p)
	return len(p), nil
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

func TestSaveIndexWriteFailure(t *testing.T) {
	g := graph.CopyingModel(200, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	for _, budget := range []int{0, 8, 40, 2000} {
		if err := e.SaveIndex(&failingWriter{n: budget}); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestSaveLoadUnpreprocessedEngine(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := New(g, p) // no preprocess at all
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.gamma != nil || e2.idx != nil {
		t.Fatal("empty engine round-trip produced artifacts")
	}
}

func TestSaveLoadWithoutGamma(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	p.DisableL2 = true // no gamma computed
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.gamma != nil {
		t.Fatal("gamma should be absent")
	}
	if e2.idx == nil {
		t.Fatal("index should be present")
	}
}
