package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 5)
	p := DefaultParams()
	p.Seed = 7
	p.Workers = 2
	e := Build(g, p)

	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}

	// Gamma tables identical.
	if len(e2.gamma) != len(e.gamma) {
		t.Fatalf("gamma length %d vs %d", len(e2.gamma), len(e.gamma))
	}
	for i := range e.gamma {
		if e.gamma[i] != e2.gamma[i] {
			t.Fatalf("gamma[%d] differs", i)
		}
	}
	// Index entries identical.
	for v := range e.idx.right {
		a, b := e.idx.right[v], e2.idx.right[v]
		if len(a) != len(b) {
			t.Fatalf("index entry %d length differs", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("index entry %d differs", v)
			}
		}
	}
	// Queries identical.
	for u := uint32(0); u < 20; u++ {
		ra := e.TopK(u, 5)
		rb := e2.TopK(u, 5)
		if len(ra) != len(rb) {
			t.Fatalf("u=%d: result lengths differ", u)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("u=%d: results differ: %v vs %v", u, ra[i], rb[i])
			}
		}
	}
	if e2.Stats().IndexBytes <= 0 {
		t.Fatal("loaded engine missing stats")
	}
}

func TestLoadIndexRejectsMismatch(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// Wrong graph size.
	g2 := graph.CopyingModel(101, 4, 0.3, 5)
	if _, err := LoadIndex(g2, p, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for n mismatch")
	}
	// Wrong T.
	pt := p
	pt.T = 7
	if _, err := LoadIndex(g, pt, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for T mismatch")
	}
	// Wrong c.
	pc := p
	pc.C = 0.8
	if _, err := LoadIndex(g, pc, bytes.NewReader(saved)); err == nil {
		t.Fatal("expected error for c mismatch")
	}
	// Garbage input.
	if _, err := LoadIndex(g, p, strings.NewReader("not an index")); err == nil {
		t.Fatal("expected error for garbage")
	}
	// Truncated input.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)/2])); err == nil {
		t.Fatal("expected error for truncation")
	}
}

func TestLoadIndexChecksum(t *testing.T) {
	g := graph.CopyingModel(150, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	// A clean file loads.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}

	// Any single bit flip in the payload must be rejected. Probe a spread
	// of offsets: header, gamma region, index region.
	payload := len(saved) - 4 // trailer excluded from the checksummed range
	for _, off := range []int{9, payload / 3, payload / 2, payload - 1} {
		bad := bytes.Clone(saved)
		bad[off] ^= 0x10
		_, err := LoadIndex(g, p, bytes.NewReader(bad))
		if err == nil {
			t.Fatalf("bit flip at offset %d loaded without error", off)
		}
	}

	// A corrupted trailer is a checksum mismatch too.
	bad := bytes.Clone(saved)
	bad[len(bad)-1] ^= 0x01
	if _, err := LoadIndex(g, p, bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupt trailer: err = %v, want checksum mismatch", err)
	}

	// A file cut right before the trailer parses as payload but must be
	// rejected as truncated.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)-4])); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("missing trailer: err = %v, want truncation error", err)
	}
	// Likewise a partial trailer.
	if _, err := LoadIndex(g, p, bytes.NewReader(saved[:len(saved)-2])); err == nil {
		t.Fatal("partial trailer loaded without error")
	}
}

func TestLoadIndexReadsVersion1(t *testing.T) {
	// A version-1 file is a version-2 file with the version field patched
	// and the CRC trailer stripped; it must still load, without integrity
	// checking.
	g := graph.CopyingModel(150, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Clone(buf.Bytes())
	v1 = v1[:len(v1)-4] // strip trailer
	v1[4] = 1           // version field (little endian uint32 after magic)
	v1[5], v1[6], v1[7] = 0, 0, 0

	e2, err := LoadIndex(g, p, bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 10; u++ {
		ra, rb := e.TopK(u, 5), e2.TopK(u, 5)
		if len(ra) != len(rb) {
			t.Fatalf("u=%d: result lengths differ", u)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("u=%d: results differ", u)
			}
		}
	}
}

// failingWriter errors after n bytes.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errInjected
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errInjected
	}
	f.n -= len(p)
	return len(p), nil
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected failure" }

func TestSaveIndexWriteFailure(t *testing.T) {
	g := graph.CopyingModel(200, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	for _, budget := range []int{0, 8, 40, 2000} {
		if err := e.SaveIndex(&failingWriter{n: budget}); err == nil {
			t.Fatalf("budget %d: expected write error", budget)
		}
	}
}

func TestSaveLoadUnpreprocessedEngine(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := New(g, p) // no preprocess at all
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.gamma != nil || e2.idx != nil {
		t.Fatal("empty engine round-trip produced artifacts")
	}
}

func TestSaveLoadWithoutGamma(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	p.DisableL2 = true // no gamma computed
	e := Build(g, p)
	var buf bytes.Buffer
	if err := e.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadIndex(g, p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if e2.gamma != nil {
		t.Fatal("gamma should be absent")
	}
	if e2.idx == nil {
		t.Fatal("index should be present")
	}
}
