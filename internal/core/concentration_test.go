package core

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Quantitative checks of the concentration claims (Propositions 3 and 7):
// the Monte-Carlo estimators are unbiased for the truncated series and
// concentrate as R grows. The paper notes its Hoeffding constants are
// loose in practice; these tests assert empirical behaviour, not the
// stated constants.

func TestSinglePairConcentration(t *testing.T) {
	g := graph.Collaboration(60, 5, 0.8, 20, 3)
	e := testEngine(g, 1)
	d := exact.UniformDiagonal(g.N(), e.p.C)

	// Pick a pair with a solidly positive score.
	var u, v uint32
	found := false
	for a := uint32(0); int(a) < g.N() && !found; a++ {
		row := exact.SingleSource(g, d, e.p.C, e.p.T, a)
		for b := 0; b < g.N(); b++ {
			if uint32(b) != a && row[b] > 0.1 {
				u, v = a, uint32(b)
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no high-score pair in generated graph")
	}
	want := exact.SinglePair(g, d, e.p.C, e.p.T, u, v)

	const trials = 300
	sc := e.getScratch()
	defer e.putScratch(sc)
	run := func(R int) (mean, std float64) {
		r := rng.New(99)
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			s := e.singlePairR(u, v, R, r, sc)
			sum += s
			sumsq += s * s
		}
		mean = sum / trials
		std = math.Sqrt(sumsq/trials - mean*mean)
		return mean, std
	}

	mean100, std100 := run(100)
	if math.Abs(mean100-want) > 3*std100/math.Sqrt(trials)+0.01 {
		t.Fatalf("R=100 estimator biased: mean %v vs exact %v (std %v)", mean100, want, std100)
	}
	_, std400 := run(400)
	// Variance should shrink roughly like 1/R: std ratio ≈ 2, allow slack.
	if std400 > 0.75*std100 {
		t.Fatalf("no concentration: std(R=100)=%v std(R=400)=%v", std100, std400)
	}
}

func TestGammaEstimatorUnbiasedness(t *testing.T) {
	// γ(v,t)² has an exact value computable from the sparse walk
	// distribution; the Algorithm 3 estimator of γ² is biased upward by
	// the multinomial variance term, which vanishes as R grows.
	g := graph.CopyingModel(300, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := New(g, p)

	v := uint32(250)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var wd walkDist
	if !e.exactWalkDistInto(&wd, sc, v, 1<<20) {
		t.Fatal("support cap hit unexpectedly")
	}
	tt := 3
	exactG2 := 0.0
	wd.forEach(tt, func(w uint32, pr float64) {
		exactG2 += e.p.dval(w) * pr * pr
	})

	estimate := func(R, trials int) float64 {
		r := rng.New(7)
		out := make([]float32, p.T)
		sum := 0.0
		for i := 0; i < trials; i++ {
			e.computeGammaInto(v, R, r, sc, out)
			sum += float64(out[tt]) * float64(out[tt])
		}
		return sum / float64(trials)
	}
	small := estimate(50, 200)
	large := estimate(2000, 50)
	// The large-R estimate must be much closer to the exact value.
	errSmall := math.Abs(small - exactG2)
	errLarge := math.Abs(large - exactG2)
	if errLarge > errSmall && errLarge > 0.01 {
		t.Fatalf("gamma^2 estimate not improving: R=50 err %v, R=2000 err %v (exact %v)",
			errSmall, errLarge, exactG2)
	}
	if errLarge > 0.2*exactG2+1e-3 {
		t.Fatalf("gamma^2 at R=2000 too far off: %v vs %v", large, exactG2)
	}
}

func TestOneSidedVarianceReduction(t *testing.T) {
	// The one-sided estimator (near-exact u-side) must have lower
	// variance than two-sided Algorithm 1 at equal v-side R.
	g := graph.Collaboration(60, 5, 0.8, 20, 9)
	e := testEngine(g, 2)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	var u, v uint32
	found := false
	for a := uint32(0); int(a) < g.N() && !found; a++ {
		row := exact.SingleSource(g, d, e.p.C, e.p.T, a)
		for b := 0; b < g.N(); b++ {
			if uint32(b) != a && row[b] > 0.1 {
				u, v = a, uint32(b)
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no high-score pair")
	}
	const trials = 250
	r := rng.New(5)
	sc := e.getScratch()
	defer e.putScratch(sc)
	var wd walkDist
	if !e.exactWalkDistInto(&wd, sc, u, 1<<20) {
		t.Fatal("support cap hit")
	}
	variance := func(f func() float64) float64 {
		var sum, sumsq float64
		for i := 0; i < trials; i++ {
			s := f()
			sum += s
			sumsq += s * s
		}
		mean := sum / trials
		return sumsq/trials - mean*mean
	}
	varTwo := variance(func() float64 { return e.singlePairR(u, v, 100, r, sc) })
	varOne := variance(func() float64 { return e.singlePairOneSided(sc, &wd, v, 100, r) })
	if varOne > varTwo {
		t.Fatalf("one-sided variance %v not below two-sided %v", varOne, varTwo)
	}
}
