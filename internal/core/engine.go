package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Engine is the builder side of the system: it wraps a Snapshot and runs
// the preprocess passes (the γ table of Algorithm 3 and the candidate
// index of Algorithm 4) that fill it. Every query method lives on the
// embedded Snapshot, so an Engine answers queries directly; once the
// preprocess results are final, Seal returns the Snapshot for read-only
// publication (see DynamicEngine).
type Engine struct {
	*Snapshot
}

// Build runs the full preprocess of Section 7.1 — the γ table of
// Algorithm 3 and the candidate index of Algorithm 4 — and returns a
// query-ready engine. Cost is O(n·(R+PQ)·T) walk steps, parallelized
// over Params.Workers.
func Build(g *graph.Graph, p Params) *Engine {
	e := New(g, p)
	e.Preprocess()
	return e
}

// New returns an engine without running the preprocess. SinglePair works
// immediately; TopK and Threshold queries require Preprocess first unless
// Params.Strategy is CandidatesBall and the L2 bound is disabled.
func New(g *graph.Graph, p Params) *Engine {
	return &Engine{Snapshot: newSnapshot(g, p)}
}

// Preprocess computes the γ table (Algorithm 3) and the candidate index
// (Algorithm 4). It may be called again after parameter changes, but
// never on a sealed (published) snapshot.
func (e *Engine) Preprocess() {
	if e.sealed {
		panic("core: Preprocess on a sealed snapshot")
	}
	start := time.Now()
	if !e.p.DisableL2 {
		e.computeGammaAll()
	}
	e.stats.GammaTime = time.Since(start)

	start = time.Now()
	if e.p.Strategy != CandidatesBall {
		e.buildIndex()
	}
	e.stats.IndexTime = time.Since(start)

	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
}

// Seal marks the preprocess results final and returns the snapshot for
// read-only sharing. The engine must not preprocess again afterwards;
// the returned snapshot is safe to publish to concurrent readers.
func (e *Engine) Seal() *Snapshot {
	e.sealed = true
	return e.Snapshot
}

// phase salts keep the RNG streams of the preprocess passes and the
// per-candidate scoring streams disjoint (and reproducible per vertex
// regardless of worker count or whether a vertex is recomputed
// incrementally).
const (
	saltGamma = 0x6a09e667f3bcc909
	saltIndex = 0xbb67ae8584caa73b
	saltScore = 0xa54ff53a5f1d36f1
)

// vertexSeed derives the deterministic RNG seed for one vertex in one
// preprocess phase.
func (e *Snapshot) vertexSeed(phase uint64, v uint32) uint64 {
	return e.p.Seed ^ phase ^ (0x9e3779b97f4a7c15 * uint64(v+1))
}

// pairSeed derives the deterministic RNG seed for the ordered pair (u, v).
// The pair is packed into one 64-bit word and mixed through a splitmix64
// finalizer, so distinct pairs get distinct, well-separated streams. (The
// previous scheme hashed u ^ (v<<1), which collides for families like
// (0,1)/(2,0): any pairs with equal u⊕(v<<1) shared a walk stream.)
func (e *Snapshot) pairSeed(u, v uint32) uint64 {
	return e.p.Seed ^ rng.Mix(uint64(u)<<32|uint64(v))
}

// candSeed derives the per-candidate scoring seed for candidate v.
// Seeding per vertex (not per query or per (u,v) pair) makes the
// candidate's walk stream — and therefore its step-t position tally — a
// pure function of the snapshot, which is what lets the tally cache
// (cache.go) share one simulation across every query that scores v. The
// seed stays independent of evaluation order and Params.Workers, and
// saltScore keeps the stream disjoint from the preprocess phases
// (saltGamma, saltIndex) and from pairSeed's unsalted streams.
func (e *Snapshot) candSeed(v uint32) uint64 {
	return e.p.Seed ^ saltScore ^ rng.Mix(uint64(v))
}

// parallelVertices runs fn for every vertex, sharded over workers in
// contiguous blocks so each worker scans a cache-local CSR range. The RNG
// handed to fn is re-seeded per vertex (not per worker) and the scratch is
// per worker, so results are independent of the worker count.
func (e *Engine) parallelVertices(phase uint64, fn func(v uint32, r *rng.Source, s *scratch)) {
	n := e.g.N()
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		r := rng.New(e.p.Seed)
		s := e.getScratch()
		defer e.putScratch(s)
		for v := 0; v < n; v++ {
			r.Seed(e.vertexSeed(phase, uint32(v)))
			fn(uint32(v), r, s)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := rng.New(0)
			s := e.getScratch()
			defer e.putScratch(s)
			for v := lo; v < hi; v++ {
				r.Seed(e.vertexSeed(phase, uint32(v)))
				fn(uint32(v), r, s)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// queryRNG returns the deterministic RNG stream for queries at vertex u.
func (e *Snapshot) queryRNG(u uint32) *rng.Source {
	return rng.New(e.p.Seed ^ 0xd1b54a32d192ed03 ^ (0xbf58476d1ce4e5b9 * uint64(u+1)))
}

func (e *Engine) String() string {
	return fmt.Sprintf("core.Engine{%v, c=%.2f, T=%d}", e.g, e.p.C, e.p.T)
}
