package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Engine bundles a graph with the preprocess results (γ table and the
// bipartite candidate index) and answers top-k similarity queries.
//
// Build an Engine once with Build, then issue queries from any number of
// goroutines: queries do not mutate the engine.
type Engine struct {
	g *graph.Graph
	p Params

	// gamma[v*T + t] = γ(v, t) from Algorithm 3 (L2 bound), row-major.
	gamma []float32

	// idx is the bipartite candidate index H from Algorithm 4:
	// idx lists each left vertex's right-neighbours; inv is the
	// inverted (right -> left) direction used for candidate joins.
	idx *candidateIndex

	stats PreprocessStats
}

// PreprocessStats records the cost of each preprocess component.
type PreprocessStats struct {
	GammaTime time.Duration
	IndexTime time.Duration
	// IndexBytes approximates the memory footprint of the preprocess
	// results (γ table + candidate index).
	IndexBytes int64
}

// Build runs the full preprocess of Section 7.1 — the γ table of
// Algorithm 3 and the candidate index of Algorithm 4 — and returns a
// query-ready engine. Cost is O(n·(R+PQ)·T) walk steps, parallelized
// over Params.Workers.
func Build(g *graph.Graph, p Params) *Engine {
	e := New(g, p)
	e.Preprocess()
	return e
}

// New returns an engine without running the preprocess. SinglePair works
// immediately; TopK and Threshold queries require Preprocess first unless
// Params.Strategy is CandidatesBall and the L2 bound is disabled.
func New(g *graph.Graph, p Params) *Engine {
	return &Engine{g: g, p: p.normalized()}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Params returns the engine's normalized parameters.
func (e *Engine) Params() Params { return e.p }

// Stats returns preprocess cost statistics.
func (e *Engine) Stats() PreprocessStats { return e.stats }

// Preprocess computes the γ table (Algorithm 3) and the candidate index
// (Algorithm 4). It may be called again after parameter changes.
func (e *Engine) Preprocess() {
	start := time.Now()
	if !e.p.DisableL2 {
		e.computeGammaAll()
	}
	e.stats.GammaTime = time.Since(start)

	start = time.Now()
	if e.p.Strategy != CandidatesBall {
		e.buildIndex()
	}
	e.stats.IndexTime = time.Since(start)

	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
}

// phase salts keep the RNG streams of the two preprocess passes disjoint
// (and reproducible per vertex regardless of worker count or whether a
// vertex is recomputed incrementally).
const (
	saltGamma = 0x6a09e667f3bcc909
	saltIndex = 0xbb67ae8584caa73b
)

// vertexSeed derives the deterministic RNG seed for one vertex in one
// preprocess phase.
func (e *Engine) vertexSeed(phase uint64, v uint32) uint64 {
	return e.p.Seed ^ phase ^ (0x9e3779b97f4a7c15 * uint64(v+1))
}

// parallelVertices runs fn(v) for every vertex, sharded over workers.
// The RNG handed to fn is re-seeded per vertex (not per worker), so
// results are independent of the worker count.
func (e *Engine) parallelVertices(phase uint64, fn func(v uint32, r *rng.Source)) {
	n := e.g.N()
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		r := rng.New(e.p.Seed)
		for v := 0; v < n; v++ {
			r.Seed(e.vertexSeed(phase, uint32(v)))
			fn(uint32(v), r)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			r := rng.New(0)
			for v := shard; v < n; v += workers {
				r.Seed(e.vertexSeed(phase, uint32(v)))
				fn(uint32(v), r)
			}
		}(w)
	}
	wg.Wait()
}

// queryRNG returns the deterministic RNG stream for queries at vertex u.
func (e *Engine) queryRNG(u uint32) *rng.Source {
	return rng.New(e.p.Seed ^ 0xd1b54a32d192ed03 ^ (0xbf58476d1ce4e5b9 * uint64(u+1)))
}

func (e *Engine) String() string {
	return fmt.Sprintf("core.Engine{%v, c=%.2f, T=%d}", e.g, e.p.C, e.p.T)
}
