package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Engine bundles a graph with the preprocess results (γ table and the
// bipartite candidate index) and answers top-k similarity queries.
//
// Build an Engine once with Build, then issue queries from any number of
// goroutines: queries do not mutate the engine, and every query draws its
// working buffers from a shared sync.Pool, so steady-state queries are
// (nearly) allocation-free.
type Engine struct {
	g *graph.Graph
	p Params

	// gamma[v*T + t] = γ(v, t) from Algorithm 3 (L2 bound), row-major.
	gamma []float32

	// idx is the bipartite candidate index H from Algorithm 4:
	// idx lists each left vertex's right-neighbours; inv is the
	// inverted (right -> left) direction used for candidate joins.
	idx *candidateIndex

	// pool recycles query/preprocess scratch buffers (see scratch.go).
	pool sync.Pool

	stats PreprocessStats
}

// PreprocessStats records the cost of each preprocess component.
type PreprocessStats struct {
	GammaTime time.Duration
	IndexTime time.Duration
	// IndexBytes approximates the memory footprint of the preprocess
	// results (γ table + candidate index).
	IndexBytes int64
}

// Build runs the full preprocess of Section 7.1 — the γ table of
// Algorithm 3 and the candidate index of Algorithm 4 — and returns a
// query-ready engine. Cost is O(n·(R+PQ)·T) walk steps, parallelized
// over Params.Workers.
func Build(g *graph.Graph, p Params) *Engine {
	e := New(g, p)
	e.Preprocess()
	return e
}

// New returns an engine without running the preprocess. SinglePair works
// immediately; TopK and Threshold queries require Preprocess first unless
// Params.Strategy is CandidatesBall and the L2 bound is disabled.
func New(g *graph.Graph, p Params) *Engine {
	e := &Engine{g: g, p: p.normalized()}
	n := g.N()
	e.pool.New = func() any { return newScratch(n) }
	return e
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Params returns the engine's normalized parameters.
func (e *Engine) Params() Params { return e.p }

// Stats returns preprocess cost statistics.
func (e *Engine) Stats() PreprocessStats { return e.stats }

// Preprocess computes the γ table (Algorithm 3) and the candidate index
// (Algorithm 4). It may be called again after parameter changes.
func (e *Engine) Preprocess() {
	start := time.Now()
	if !e.p.DisableL2 {
		e.computeGammaAll()
	}
	e.stats.GammaTime = time.Since(start)

	start = time.Now()
	if e.p.Strategy != CandidatesBall {
		e.buildIndex()
	}
	e.stats.IndexTime = time.Since(start)

	e.stats.IndexBytes = int64(len(e.gamma)) * 4
	if e.idx != nil {
		e.stats.IndexBytes += e.idx.bytes()
	}
}

// phase salts keep the RNG streams of the preprocess passes and the
// per-candidate scoring streams disjoint (and reproducible per vertex
// regardless of worker count or whether a vertex is recomputed
// incrementally).
const (
	saltGamma = 0x6a09e667f3bcc909
	saltIndex = 0xbb67ae8584caa73b
	saltScore = 0xa54ff53a5f1d36f1
)

// vertexSeed derives the deterministic RNG seed for one vertex in one
// preprocess phase.
func (e *Engine) vertexSeed(phase uint64, v uint32) uint64 {
	return e.p.Seed ^ phase ^ (0x9e3779b97f4a7c15 * uint64(v+1))
}

// pairSeed derives the deterministic RNG seed for the ordered pair (u, v).
// The pair is packed into one 64-bit word and mixed through a splitmix64
// finalizer, so distinct pairs get distinct, well-separated streams. (The
// previous scheme hashed u ^ (v<<1), which collides for families like
// (0,1)/(2,0): any pairs with equal u⊕(v<<1) shared a walk stream.)
func (e *Engine) pairSeed(u, v uint32) uint64 {
	return e.p.Seed ^ rng.Mix(uint64(u)<<32|uint64(v))
}

// candSeed derives the per-candidate scoring seed for candidate v of a
// query at u. Seeding per candidate (not per query) makes a candidate's
// score independent of evaluation order — and hence of Params.Workers.
func (e *Engine) candSeed(u, v uint32) uint64 {
	return e.p.Seed ^ saltScore ^ rng.Mix(uint64(u)<<32|uint64(v))
}

// parallelVertices runs fn for every vertex, sharded over workers in
// contiguous blocks so each worker scans a cache-local CSR range. The RNG
// handed to fn is re-seeded per vertex (not per worker) and the scratch is
// per worker, so results are independent of the worker count.
func (e *Engine) parallelVertices(phase uint64, fn func(v uint32, r *rng.Source, s *scratch)) {
	n := e.g.N()
	workers := e.p.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		r := rng.New(e.p.Seed)
		s := e.getScratch()
		defer e.putScratch(s)
		for v := 0; v < n; v++ {
			r.Seed(e.vertexSeed(phase, uint32(v)))
			fn(uint32(v), r, s)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			r := rng.New(0)
			s := e.getScratch()
			defer e.putScratch(s)
			for v := lo; v < hi; v++ {
				r.Seed(e.vertexSeed(phase, uint32(v)))
				fn(uint32(v), r, s)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// queryRNG returns the deterministic RNG stream for queries at vertex u.
func (e *Engine) queryRNG(u uint32) *rng.Source {
	return rng.New(e.p.Seed ^ 0xd1b54a32d192ed03 ^ (0xbf58476d1ce4e5b9 * uint64(u+1)))
}

func (e *Engine) String() string {
	return fmt.Sprintf("core.Engine{%v, c=%.2f, T=%d}", e.g, e.p.C, e.p.T)
}
