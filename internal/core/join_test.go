package core

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
)

func TestSimilarityJoinFindsHighPairs(t *testing.T) {
	g := graph.Collaboration(80, 5, 0.8, 30, 7)
	p := DefaultParams()
	p.Seed = 2
	p.Workers = 2
	p.RAlpha = 1000
	p.Strategy = CandidatesHybrid
	e := Build(g, p)

	pairs := e.SimilarityJoin(0.05, 0)
	// Shape checks.
	seen := map[uint64]bool{}
	for i, pr := range pairs {
		if pr.U >= pr.V {
			t.Fatalf("pair %d not normalized: %+v", i, pr)
		}
		if pr.Score < 0.05 {
			t.Fatalf("pair %d below theta: %+v", i, pr)
		}
		key := uint64(pr.U)<<32 | uint64(pr.V)
		if seen[key] {
			t.Fatalf("duplicate pair %+v", pr)
		}
		seen[key] = true
		if i > 0 && pairs[i-1].Score < pr.Score {
			t.Fatal("pairs not sorted by score")
		}
	}

	// Coverage check against exact scores: pairs clearly above theta
	// must be present.
	d := exact.UniformDiagonal(g.N(), p.C)
	missed := 0
	want := 0
	for u := uint32(0); int(u) < g.N(); u += 3 {
		row := exact.SingleSource(g, d, p.C, p.T, u)
		for v := int(u) + 1; v < g.N(); v++ {
			if row[v] >= 0.12 { // far above theta and MC noise
				want++
				key := uint64(u)<<32 | uint64(v)
				if !seen[key] {
					missed++
				}
			}
		}
	}
	if want > 0 && missed*10 > want {
		t.Fatalf("similarity join missed %d/%d clearly-high pairs", missed, want)
	}
}

func TestSimilarityJoinMaxPairs(t *testing.T) {
	g := graph.Collaboration(40, 5, 0.8, 20, 3)
	p := DefaultParams()
	p.Seed = 4
	p.Workers = 1
	p.RAlpha = 500
	e := Build(g, p)
	all := e.SimilarityJoin(0.02, 0)
	if len(all) < 3 {
		t.Skipf("graph produced only %d joins", len(all))
	}
	capped := e.SimilarityJoin(0.02, 3)
	if len(capped) != 3 {
		t.Fatalf("capped join returned %d pairs", len(capped))
	}
	// The capped result keeps the strongest pairs.
	if capped[0].Score < all[2].Score {
		t.Fatalf("cap dropped strong pairs: %v vs %v", capped[0], all[2])
	}
}

func TestSimilarityJoinEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	if pairs := e.SimilarityJoin(0.01, 0); len(pairs) != 0 {
		t.Fatalf("edgeless graph produced %d pairs", len(pairs))
	}
}
