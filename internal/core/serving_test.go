package core

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestTopKDuringRefreshNoStall hammers TopK from several goroutines while
// an updater forces full rebuilds, and asserts queries never stall behind
// a build: the published snapshot is served lock-free, so query latency
// during rebuilds must stay within a small factor of idle latency (a
// query that blocked on the build would measure the whole preprocess).
// Run with -race this also exercises the publication protocol.
func TestTopKDuringRefreshNoStall(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n = 2000
	g := graph.CopyingModel(n, 6, 0.3, 11)
	p := DefaultParams()
	p.Seed = 11
	p.Workers = 2
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if err := d.Refresh(); err != nil { // initial full build
		t.Fatal(err)
	}

	query := func(i int) time.Duration {
		u := uint32((i*7919 + 13) % n)
		start := time.Now()
		if _, err := d.TopK(u, 10); err != nil {
			t.Error(err)
		}
		return time.Since(start)
	}
	p99 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)*99/100]
	}

	// Idle baseline.
	idle := make([]time.Duration, 200)
	for i := range idle {
		idle[i] = query(i)
	}
	p99Idle := p99(idle)

	// Updater: each cycle dirties half the vertices' in-lists, which
	// makes the affected set exceed n/2 and forces a full rebuild.
	_, fullBefore := d.Refreshes()
	var stop atomic.Bool
	var updaterDone sync.WaitGroup
	updaterDone.Add(1)
	go func() {
		defer updaterDone.Done()
		for !stop.Load() {
			for v := uint32(0); v < n/2; v++ {
				d.AddEdge(n-1, v)
			}
			if err := d.Refresh(); err != nil {
				t.Error(err)
				return
			}
			for v := uint32(0); v < n/2; v++ {
				d.RemoveEdge(n-1, v)
			}
			if err := d.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	const queriers, perQuerier = 3, 100
	during := make([][]time.Duration, queriers)
	var wg sync.WaitGroup
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			ds := make([]time.Duration, perQuerier)
			for i := range ds {
				ds[i] = query(q*perQuerier + i)
			}
			during[q] = ds
		}(q)
	}
	wg.Wait()
	stop.Store(true)
	updaterDone.Wait()

	_, fullAfter := d.Refreshes()
	if fullAfter < fullBefore+2 {
		t.Fatalf("updater forced only %d full rebuilds; hammering did not overlap builds", fullAfter-fullBefore)
	}

	var all []time.Duration
	for _, ds := range during {
		all = append(all, ds...)
	}
	p99During := p99(all)
	// 5x idle p99 is the acceptance bound; the absolute floor absorbs
	// scheduler noise on very fast idle baselines.
	limit := 5 * p99Idle
	if floor := 10 * time.Millisecond; limit < floor {
		limit = floor
	}
	if runtime.GOMAXPROCS(0) < 4 {
		// With too few CPUs the rebuilds and the queries time-share cores,
		// so latency reflects CPU starvation, not lock contention — the
		// hammer above still exercised the publication protocol (and the
		// race detector, when enabled). Only the latency bound is skipped.
		t.Logf("GOMAXPROCS=%d: skipping latency bound (idle p99 %v, during p99 %v)",
			runtime.GOMAXPROCS(0), p99Idle, p99During)
		return
	}
	if p99During > limit {
		t.Fatalf("p99 during rebuilds %v exceeds limit %v (idle p99 %v)", p99During, limit, p99Idle)
	}
}

// TestSnapshotImmutableUnderUpdates verifies a snapshot captured before a
// batch of updates keeps answering from its own consistent state: the
// same query against the same snapshot is byte-identical before and after
// the engine refreshes past it.
func TestSnapshotImmutableUnderUpdates(t *testing.T) {
	g := graph.CopyingModel(400, 4, 0.3, 9)
	p := DefaultParams()
	p.Seed = 9
	p.Workers = 2
	d := NewDynamicFrom(g, p)
	defer d.Close()
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Sealed() {
		t.Fatal("published snapshot is not sealed")
	}
	before := snap.TopK(7, 10)

	d.AddEdge(17, 23)
	d.AddEdge(301, 55)
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if after == snap {
		t.Fatal("refresh did not publish a new snapshot")
	}

	again := snap.TopK(7, 10)
	if len(again) != len(before) {
		t.Fatalf("stale snapshot changed its answer: %v vs %v", again, before)
	}
	for i := range before {
		if again[i] != before[i] {
			t.Fatalf("stale snapshot changed its answer at %d: %v vs %v", i, again[i], before[i])
		}
	}
}

// cancelAfter is a context whose Err() flips to Canceled after a fixed
// number of checks. The search path checks ctx once on entry and once per
// candidate-scoring block, so this cancels at an exact, deterministic
// point mid-query — no timing races.
type cancelAfter struct {
	context.Context
	calls atomic.Int64
	after int64
}

func newCancelAfter(n int64) *cancelAfter {
	return &cancelAfter{Context: context.Background(), after: n}
}

func (c *cancelAfter) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestQueryCancellation checks that a context cancelled mid-query makes
// the search return ctx.Err() promptly and release every scratch buffer
// back to the pool — including the ones held by parallel scoring workers.
func TestQueryCancellation(t *testing.T) {
	g := graph.CopyingModel(2000, 8, 0.3, 3)
	p := DefaultParams()
	p.Seed = 3
	p.Workers = 4
	p.Strategy = CandidatesHybrid // hub vertices see ball-sized candidate sets
	e := Build(g, p)

	// Find a query vertex with enough candidates for several scoring
	// blocks, so per-block cancellation points exist.
	var u uint32
	found := false
	for v := uint32(0); v < 200; v++ {
		if _, st := e.TopKStats(v, 10); st.Candidates > 4*scoreBlock {
			u, found = v, true
			break
		}
	}
	if !found {
		t.Fatal("no query vertex with multiple scoring blocks")
	}

	// Pre-cancelled context: rejected on entry, before any scratch is
	// acquired.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g0, p0 := e.PoolBalance()
	if _, err := e.TopKCtx(ctx, u, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled TopKCtx err = %v, want context.Canceled", err)
	}
	g1, p1 := e.PoolBalance()
	if g1 != g0 || p1 != p0 {
		t.Fatalf("pre-cancelled query touched the pool: gets %d->%d puts %d->%d", g0, g1, p0, p1)
	}
	if _, err := e.AllTopKCtx(ctx, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled AllTopKCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.SinglePairCtx(ctx, u, u+1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SinglePairCtx err = %v, want context.Canceled", err)
	}
	if _, err := e.SimilarityJoinCtx(ctx, 0.2, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled SimilarityJoinCtx err = %v, want context.Canceled", err)
	}

	// Cancel after the first scoring block: the entry check and the first
	// block check pass, the first block is scored (in parallel, exercising
	// worker scratch round trips), and the second block check observes the
	// cancellation. Threshold at 0 scores every candidate, so the block
	// loop is guaranteed to reach a second iteration.
	for _, checks := range []int64{1, 2, 3} {
		ctx := newCancelAfter(checks)
		g0, p0 := e.PoolBalance()
		_, err := e.ThresholdCtx(ctx, u, 0)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: err = %v, want context.Canceled", checks, err)
		}
		g1, p1 := e.PoolBalance()
		if g1-g0 != p1-p0 {
			t.Fatalf("after=%d: scratch leak: %d gets vs %d puts", checks, g1-g0, p1-p0)
		}
	}

	// An uncancelled *Ctx query matches the plain API byte for byte.
	want, wantStats := e.TopKStats(u, 10)
	got, gotStats, err := e.TopKStatsCtx(context.Background(), u, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wantStats != gotStats {
		t.Fatalf("stats diverge: %+v vs %+v", wantStats, gotStats)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("results diverge at %d: %v vs %v", i, want[i], got[i])
		}
	}
}

// TestDynamicQueryCancellation checks cancellation through the dynamic
// engine's query path.
func TestDynamicQueryCancellation(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 5)
	p := DefaultParams()
	p.Seed = 5
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.TopKCtx(ctx, 1, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKCtx err = %v, want context.Canceled", err)
	}
	if _, err := d.SinglePairCtx(ctx, 1, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SinglePairCtx err = %v, want context.Canceled", err)
	}
	// With no snapshot yet, a cancelled context refuses to build one.
	d2 := NewDynamic(10, p)
	defer d2.Close()
	d2.AddEdge(1, 2)
	if _, err := d2.TopKCtx(ctx, 1, 5); !errors.Is(err, context.Canceled) {
		t.Fatalf("unbuilt TopKCtx err = %v, want context.Canceled", err)
	}
}
