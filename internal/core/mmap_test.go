//go:build unix

package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// writeIndexFile saves e's snapshot to a temp v3 file and returns its path.
func writeIndexFile(t *testing.T, e *Engine) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "index.simr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SaveIndex(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadIndexMmapMatchesStream(t *testing.T) {
	g := graph.CopyingModel(300, 4, 0.3, 5)
	p := DefaultParams()
	p.Seed = 7
	p.Workers = 2
	e := Build(g, p)
	path := writeIndexFile(t, e)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	es, err := LoadIndex(g, p, f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	em, closer, err := LoadIndexMmap(path, p)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closer(); err != nil {
			t.Fatal(err)
		}
	}()

	if em.Graph().N() != g.N() || em.Graph().M() != g.M() {
		t.Fatalf("mapped graph is %v, want n=%d m=%d", em.Graph(), g.N(), g.M())
	}
	// Every query must come back byte-identical across the original, the
	// stream load, and the mmap load.
	for u := uint32(0); u < 25; u++ {
		ra, rb, rc := e.TopK(u, 5), es.TopK(u, 5), em.TopK(u, 5)
		if len(ra) != len(rb) || len(ra) != len(rc) {
			t.Fatalf("u=%d: result lengths differ (%d/%d/%d)", u, len(ra), len(rb), len(rc))
		}
		for i := range ra {
			if ra[i] != rb[i] || ra[i] != rc[i] {
				t.Fatalf("u=%d rank %d: %v / %v / %v", u, i, ra[i], rb[i], rc[i])
			}
		}
		v := (u*17 + 3) % uint32(g.N())
		if sa, sc := e.SinglePair(u, v), em.SinglePair(u, v); sa != sc {
			t.Fatalf("SinglePair(%d,%d): %v via build, %v via mmap", u, v, sa, sc)
		}
	}
	if em.Stats().IndexBytes <= 0 {
		t.Fatal("mapped engine missing stats")
	}
}

func TestLoadIndexMmapRejectsCorruption(t *testing.T) {
	g := graph.CopyingModel(120, 4, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	path := writeIndexFile(t, e)
	saved, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		bad := mutate(bytes.Clone(saved))
		badPath := filepath.Join(t.TempDir(), "bad.simr")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, closer, err := LoadIndexMmap(badPath, p); err == nil {
			closer()
			t.Fatalf("%s: mmap load succeeded on corrupt file", name)
		}
	}

	corrupt("header bit flip", func(b []byte) []byte { b[9] ^= 0x10; return b })
	corrupt("directory bit flip", func(b []byte) []byte { b[persistHeaderSize+5] ^= 0x01; return b })
	corrupt("truncated directory", func(b []byte) []byte { return b[:persistHeaderSize+persistSectionSize] })
	corrupt("wrong version", func(b []byte) []byte { b[4] = 2; return b })

	// Wrong params are rejected before any section is touched.
	pt := p
	pt.T = p.T + 1
	if _, closer, err := LoadIndexMmap(path, pt); err == nil {
		closer()
		t.Fatal("mmap load succeeded with mismatched T")
	}
}

func TestLoadIndexMmapAliasSlots(t *testing.T) {
	g := graph.CopyingModel(80, 3, 0.3, 5)
	p := DefaultParams()
	p.Workers = 1
	e := Build(g, p)
	m := g.M()
	prob := make([]uint32, m)
	alias := make([]uint32, m)
	for i := range prob {
		prob[i] = ^uint32(0) - uint32(i)
		alias[i] = uint32(i % 3)
	}
	if err := e.wt.AdoptSlots(prob, alias); err != nil {
		t.Fatal(err)
	}
	path := writeIndexFile(t, e)
	em, closer, err := LoadIndexMmap(path, p)
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	p2, a2 := em.wt.Slots()
	if p2 == nil {
		t.Fatal("mapped walk table lost its alias slots")
	}
	for i := range prob {
		if p2[i] != prob[i] || a2[i] != alias[i] {
			t.Fatalf("slot %d: got (%#x,%d), want (%#x,%d)", i, p2[i], a2[i], prob[i], alias[i])
		}
	}
}
