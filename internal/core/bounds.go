package core

import (
	"math"
	"slices"
	"sort"

	"repro/internal/rng"
)

// This file implements the two SimRank upper bounds of Section 6.
//
// L1 bound (Algorithm 2): for a query u, α(u,d,t) is the largest
// D_ww·P{u⁽ᵗ⁾=w} over vertices w at undirected distance d from u, and
// β(u,d) = Σ_t cᵗ·max_{d−t ≤ d' ≤ d+t} α(u,d',t) dominates s⁽ᵀ⁾(u,v) for
// every v at distance d (Proposition 4). Effective for low-degree queries
// whose walk distributions stay sparse. Computed at query time.
//
// L2 bound (Algorithm 3): γ(u,t) = ‖√D·Pᵗe_u‖, and by Cauchy–Schwarz
// s⁽ᵀ⁾(u,v) ≤ Σ_t cᵗ·γ(u,t)·γ(v,t) (Proposition 6). Effective for
// high-degree queries whose walk distributions spread thin. Computed for
// every vertex in the preprocess.

// computeGammaAll fills e.gamma with Algorithm 3 estimates for every
// vertex, in parallel.
func (e *Engine) computeGammaAll() {
	T := e.p.T
	e.gamma = make([]float32, e.g.N()*T)
	R := e.p.RGamma
	e.parallelVertices(saltGamma, func(v uint32, r *rng.Source, s *scratch) {
		e.computeGammaInto(v, R, r, s, e.gamma[int(v)*T:int(v)*T+T])
	})
}

// computeGammaInto runs Algorithm 3 for one vertex: R walks from v, and
// for each step t, γ(v,t)² is estimated by Σ_w D_ww·(count_w/R)².
func (e *Engine) computeGammaInto(v uint32, R int, r *rng.Source, s *scratch, out []float32) {
	pos := s.walkBuf(R)
	lane := s.laneBuf(R)
	resetWalks(pos, v)
	invR2 := 1.0 / (float64(R) * float64(R))
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			stepWalks(e.wt, r, pos, lane)
		}
		s.beginTally()
		for _, w := range pos {
			if w != Dead {
				s.tallyCount(w)
			}
		}
		// Σ_w D_ww·c_w² accumulated in walk-slice order (each walk at w
		// contributes D_ww·c_w once) so summation order is deterministic.
		mu := 0.0
		for _, w := range pos {
			if w != Dead {
				mu += e.p.dval(w) * float64(s.cnt[w]) * invR2
			}
		}
		out[t] = float32(math.Sqrt(mu))
	}
}

// Gamma returns the preprocessed γ(v, t). It panics if the preprocess has
// not run or t is out of range.
func (e *Snapshot) Gamma(v uint32, t int) float64 {
	return float64(e.gamma[int(v)*e.p.T+t])
}

// L2Bound returns the Cauchy–Schwarz upper bound Σ_t cᵗ·γ(u,t)·γ(v,t) on
// s⁽ᵀ⁾(u, v) (Proposition 6). It requires the preprocess.
func (e *Snapshot) L2Bound(u, v uint32) float64 {
	T := e.p.T
	gu := e.gamma[int(u)*T : int(u)*T+T]
	gv := e.gamma[int(v)*T : int(v)*T+T]
	sum := 0.0
	ct := 1.0
	for t := 0; t < T; t++ {
		sum += ct * float64(gu[t]) * float64(gv[t])
		ct *= e.p.C
	}
	return sum
}

// walkDist is the empirical (or exact) distribution of a vertex's walk
// positions, P{u⁽ᵗ⁾ = w}, stored per step as parallel sorted slices:
// verts[t] lists the support ascending and probs[t][i] the mass of
// verts[t][i]. The flat layout replaces the old map[uint32]float64 per
// step: tallies go through an epoch-marked dense scratch, lookups are
// binary searches, and the backing arrays are reused across queries.
//
// The query phase samples one per query (the paper's Algorithm 2 already
// performs these R = RAlpha walks for the L1 bound) and reuses it both for
// β and as the u-side of single-pair estimates, which removes the u-side
// sampling noise from every candidate's score.
type walkDist struct {
	T     int
	verts [][]uint32
	probs [][]float64
}

// reset prepares the distribution for T steps, keeping backing arrays.
func (wd *walkDist) reset(T int) {
	wd.T = T
	for len(wd.verts) < T {
		wd.verts = append(wd.verts, nil)
		wd.probs = append(wd.probs, nil)
	}
	wd.verts = wd.verts[:T]
	wd.probs = wd.probs[:T]
	for t := 0; t < T; t++ {
		wd.verts[t] = wd.verts[t][:0]
		wd.probs[t] = wd.probs[t][:0]
	}
}

// support reports the number of vertices with nonzero mass at step t.
func (wd *walkDist) support(t int) int { return len(wd.verts[t]) }

// prob returns P{u⁽ᵗ⁾ = w} by binary search over the sorted support.
func (wd *walkDist) prob(t int, w uint32) (float64, bool) {
	vs := wd.verts[t]
	i, ok := slices.BinarySearch(vs, w)
	if !ok {
		return 0, false
	}
	return wd.probs[t][i], true
}

// forEach calls fn for every (vertex, mass) of step t in ascending vertex
// order.
func (wd *walkDist) forEach(t int, fn func(w uint32, pr float64)) {
	for i, w := range wd.verts[t] {
		fn(w, wd.probs[t][i])
	}
}

// sampleWalkDistInto runs R walks from u and tabulates the per-step
// empirical distributions into wd, using s for tallies. Zero allocations
// after the backing arrays have warmed up.
func (e *Snapshot) sampleWalkDistInto(wd *walkDist, s *scratch, u uint32, R int, r *rng.Source) {
	T := e.p.T
	wd.reset(T)
	pos := s.walkBuf(R)
	lane := s.laneBuf(R)
	resetWalks(pos, u)
	invR := 1.0 / float64(R)
	for t := 0; t < T; t++ {
		if t > 0 {
			stepWalks(e.wt, r, pos, lane)
		}
		s.beginTally()
		for _, w := range pos {
			if w != Dead {
				s.tallyCount(w)
			}
		}
		if len(s.touched) == 0 {
			break // all walks dead; remaining steps stay empty
		}
		slices.Sort(s.touched)
		for _, w := range s.touched {
			wd.verts[t] = append(wd.verts[t], w)
			wd.probs[t] = append(wd.probs[t], float64(s.cnt[w])*invR)
		}
	}
}

// exactWalkDistInto computes the exact per-step walk distributions Pᵗe_u
// by sparse propagation into wd. It returns false when any step's support
// exceeds cap, signalling the caller to fall back to sampling (wd is then
// in an unspecified state). Mass is propagated in ascending vertex order,
// so the floating-point result is fully deterministic.
func (e *Snapshot) exactWalkDistInto(wd *walkDist, s *scratch, u uint32, cap int) bool {
	T := e.p.T
	wd.reset(T)
	s.ensureAcc()
	wd.verts[0] = append(wd.verts[0], u)
	wd.probs[0] = append(wd.probs[0], 1)
	for t := 1; t < T; t++ {
		prevV, prevP := wd.verts[t-1], wd.probs[t-1]
		if len(prevV) == 0 {
			break
		}
		s.beginTally()
		for i, w := range prevV {
			in := e.g.In(w)
			if len(in) == 0 {
				continue
			}
			share := prevP[i] / float64(len(in))
			for _, x := range in {
				s.addMass(x, share)
			}
			if len(s.touched) > cap {
				return false
			}
		}
		slices.Sort(s.touched)
		for _, w := range s.touched {
			wd.verts[t] = append(wd.verts[t], w)
			wd.probs[t] = append(wd.probs[t], s.acc[w])
		}
	}
	return true
}

// dotSeries evaluates the truncated series deterministically from two
// walk distributions: Σ_t cᵗ Σ_w xₜ(w)·D_ww·yₜ(w). Both supports are
// sorted, so this is a per-step merge join with a fixed summation order.
func (e *Snapshot) dotSeries(x, y *walkDist) float64 {
	sum := 0.0
	ct := 1.0
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			ct *= e.p.C
		}
		xv, yv := x.verts[t], y.verts[t]
		if len(xv) == 0 || len(yv) == 0 {
			break
		}
		xp, yp := x.probs[t], y.probs[t]
		i, j := 0, 0
		for i < len(xv) && j < len(yv) {
			switch {
			case xv[i] < yv[j]:
				i++
			case xv[i] > yv[j]:
				j++
			default:
				sum += ct * e.p.dval(xv[i]) * xp[i] * yp[j]
				i++
				j++
			}
		}
	}
	return sum
}

// l1Table holds the per-query result of Algorithm 2.
type l1Table struct {
	dmax int
	// beta[d] bounds s⁽ᵀ⁾(u, v) for every v at undirected distance d.
	beta []float64
}

// computeL1From evaluates Algorithm 2's α and β from a sampled walk
// distribution. dist is the dense undirected-distance array of the query's
// local ball (-1 = not discovered). exploredRadius is the distance up to
// which dist is complete: every vertex at distance ≤ exploredRadius has a
// non-negative entry. Support vertices with no distance (possible when the
// local BFS was truncated by the ball budget) are folded into a per-step
// overflow maximum so that β remains a valid upper bound. The returned
// table aliases s and is valid until the scratch's next query.
func (e *Snapshot) computeL1From(s *scratch, wd *walkDist, dist []int32, exploredRadius int) *l1Table {
	T, dmax := e.p.T, e.p.DMax
	// alpha[d*T + t] = α(u, d, t).
	s.alpha = floatBuf(s.alpha, (dmax+1)*T)
	s.overflow = floatBuf(s.overflow, T)
	alpha, overflow := s.alpha, s.overflow
	for t := 0; t < T; t++ {
		for i, w := range wd.verts[t] {
			val := e.p.dval(w) * wd.probs[t][i]
			d := dist[w]
			if d < 0 || int(d) > dmax {
				// Distance unknown (truncated BFS) or beyond DMax:
				// account for it conservatively.
				if val > overflow[t] {
					overflow[t] = val
				}
				continue
			}
			if val > alpha[int(d)*T+t] {
				alpha[int(d)*T+t] = val
			}
		}
	}
	// β(u, d) = Σ_t cᵗ · max_{max(0,d−t) ≤ d' ≤ min(dmax,d+t)} α(u, d', t),
	// where distances beyond exploredRadius use the overflow maximum.
	s.l1.dmax = dmax
	s.l1.beta = floatBuf(s.l1.beta, dmax+1)
	for d := 0; d <= dmax; d++ {
		sum := 0.0
		ct := 1.0
		for t := 0; t < T; t++ {
			lo, hi := d-t, d+t
			if lo < 0 {
				lo = 0
			}
			best := 0.0
			if hi > exploredRadius {
				best = overflow[t]
			}
			if hi > dmax {
				hi = dmax
			}
			for dp := lo; dp <= hi; dp++ {
				if a := alpha[dp*T+t]; a > best {
					best = a
				}
			}
			sum += ct * best
			ct *= e.p.C
		}
		s.l1.beta[d] = sum
	}
	return &s.l1
}

// bound returns β(u, d) for distance d, or +Inf when d exceeds the table.
func (l *l1Table) bound(d int) float64 {
	if l == nil || d < 0 || d > l.dmax {
		return math.Inf(1)
	}
	return l.beta[d]
}

// DistanceBound returns the distance-only upper bound on s⁽ᵀ⁾(u, v) for
// vertices at undirected distance d: two walks meeting at step t imply
// d(u, v) ≤ 2t, so no term before t = ⌈d/2⌉ contributes, and each term is
// at most max_w D_ww, giving Σ_{t ≥ ⌈d/2⌉} cᵗ·maxD = maxD·c^⌈d/2⌉/(1−c).
// With the default D = (1−c)·I this is exactly c^⌈d/2⌉. (The paper states
// s(u,v) ≤ c^d; this variant is the one provable for undirected distance.)
func (e *Snapshot) DistanceBound(d int) float64 {
	if d <= 0 {
		return 1
	}
	maxD := 1 - e.p.C
	if e.p.D != nil {
		maxD = 0
		for _, v := range e.p.D {
			if v > maxD {
				maxD = v
			}
		}
	}
	return maxD / (1 - e.p.C) * math.Pow(e.p.C, float64((d+1)/2))
}

// L1Bound computes β(u, ·) for the query vertex u and returns the bound
// evaluated at distance d(u,v). Exposed for tests and ablation studies;
// the query phase shares one table across all candidates.
func (e *Snapshot) L1Bound(u uint32, d int) float64 {
	s := e.getScratch()
	defer e.putScratch(s)
	dist := s.distBuf()
	s.ball, _ = e.g.UndirectedBallInto(u, e.p.DMax, -1, dist, s.ball[:0])
	defer s.resetDist()
	e.sampleWalkDistInto(&s.wd, s, u, e.p.RAlpha, e.queryRNG(u))
	tbl := e.computeL1From(s, &s.wd, dist, e.p.DMax)
	return tbl.bound(d)
}

// sortScoredDesc orders scored results best-first with the deterministic
// tie-break used across the package.
func sortScoredDesc(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool { return scoredLess(xs[j], xs[i]) })
}
