package core

import (
	"math"
	"sort"

	"repro/internal/rng"
)

// This file implements the two SimRank upper bounds of Section 6.
//
// L1 bound (Algorithm 2): for a query u, α(u,d,t) is the largest
// D_ww·P{u⁽ᵗ⁾=w} over vertices w at undirected distance d from u, and
// β(u,d) = Σ_t cᵗ·max_{d−t ≤ d' ≤ d+t} α(u,d',t) dominates s⁽ᵀ⁾(u,v) for
// every v at distance d (Proposition 4). Effective for low-degree queries
// whose walk distributions stay sparse. Computed at query time.
//
// L2 bound (Algorithm 3): γ(u,t) = ‖√D·Pᵗe_u‖, and by Cauchy–Schwarz
// s⁽ᵀ⁾(u,v) ≤ Σ_t cᵗ·γ(u,t)·γ(v,t) (Proposition 6). Effective for
// high-degree queries whose walk distributions spread thin. Computed for
// every vertex in the preprocess.

// computeGammaAll fills e.gamma with Algorithm 3 estimates for every
// vertex, in parallel.
func (e *Engine) computeGammaAll() {
	T := e.p.T
	e.gamma = make([]float32, e.g.N()*T)
	R := e.p.RGamma
	e.parallelVertices(saltGamma, func(v uint32, r *rng.Source) {
		e.computeGammaInto(v, R, r, e.gamma[int(v)*T:int(v)*T+T])
	})
}

// computeGammaInto runs Algorithm 3 for one vertex: R walks from v, and
// for each step t, γ(v,t)² is estimated by Σ_w D_ww·(count_w/R)².
func (e *Engine) computeGammaInto(v uint32, R int, r *rng.Source, out []float32) {
	ws := newWalkSet(e.g, r, v, R)
	cnt := make(map[uint32]int32, R)
	invR2 := 1.0 / (float64(R) * float64(R))
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			ws.step()
		}
		ws.counts(cnt)
		// Σ_w D_ww·c_w² accumulated in walk-slice order (each walk at w
		// contributes D_ww·c_w once) so summation order is deterministic.
		mu := 0.0
		for _, w := range ws.pos {
			if w != Dead {
				mu += e.p.dval(w) * float64(cnt[w]) * invR2
			}
		}
		out[t] = float32(math.Sqrt(mu))
	}
}

// Gamma returns the preprocessed γ(v, t). It panics if the preprocess has
// not run or t is out of range.
func (e *Engine) Gamma(v uint32, t int) float64 {
	return float64(e.gamma[int(v)*e.p.T+t])
}

// L2Bound returns the Cauchy–Schwarz upper bound Σ_t cᵗ·γ(u,t)·γ(v,t) on
// s⁽ᵀ⁾(u, v) (Proposition 6). It requires the preprocess.
func (e *Engine) L2Bound(u, v uint32) float64 {
	T := e.p.T
	gu := e.gamma[int(u)*T : int(u)*T+T]
	gv := e.gamma[int(v)*T : int(v)*T+T]
	sum := 0.0
	ct := 1.0
	for t := 0; t < T; t++ {
		sum += ct * float64(gu[t]) * float64(gv[t])
		ct *= e.p.C
	}
	return sum
}

// walkDist is the empirical distribution of the query vertex's walk
// positions, P{u⁽ᵗ⁾ = w}, estimated from R walks. The query phase samples
// it once per query (the paper's Algorithm 2 already performs these R =
// RAlpha walks for the L1 bound) and reuses it both for β and as the
// u-side of single-pair estimates, which removes the u-side sampling
// noise from every candidate's score.
type walkDist struct {
	T int
	// probs[t] maps w -> estimated P{u⁽ᵗ⁾ = w}.
	probs []map[uint32]float64
}

// sampleWalkDist runs R walks from u and tabulates the per-step empirical
// distributions.
func (e *Engine) sampleWalkDist(u uint32, R int, r *rng.Source) *walkDist {
	T := e.p.T
	wd := &walkDist{T: T, probs: make([]map[uint32]float64, T)}
	ws := newWalkSet(e.g, r, u, R)
	cnt := make(map[uint32]int32, 256)
	invR := 1.0 / float64(R)
	for t := 0; t < T; t++ {
		if t > 0 {
			ws.step()
		}
		ws.counts(cnt)
		probs := make(map[uint32]float64, len(cnt))
		for w, c := range cnt {
			probs[w] = float64(c) * invR
		}
		wd.probs[t] = probs
		if len(probs) == 0 {
			for tt := t + 1; tt < T; tt++ {
				wd.probs[tt] = map[uint32]float64{}
			}
			break
		}
	}
	return wd
}

// exactWalkDist computes the exact per-step walk distributions Pᵗe_u by
// sparse propagation. It returns nil when any step's support exceeds
// cap, signalling the caller to fall back to sampling.
func (e *Engine) exactWalkDist(u uint32, cap int) *walkDist {
	T := e.p.T
	wd := &walkDist{T: T, probs: make([]map[uint32]float64, T)}
	cur := map[uint32]float64{u: 1}
	wd.probs[0] = cur
	for t := 1; t < T; t++ {
		next := make(map[uint32]float64, len(cur))
		for w, mass := range cur {
			in := e.g.In(w)
			if len(in) == 0 {
				continue
			}
			share := mass / float64(len(in))
			for _, x := range in {
				next[x] += share
			}
			if len(next) > cap {
				return nil
			}
		}
		wd.probs[t] = next
		cur = next
		if len(cur) == 0 {
			for tt := t + 1; tt < T; tt++ {
				wd.probs[tt] = map[uint32]float64{}
			}
			break
		}
	}
	return wd
}

// dotSeries evaluates the truncated series deterministically from two
// exact walk distributions: Σ_t cᵗ Σ_w xₜ(w)·D_ww·yₜ(w). The smaller
// side is iterated in sorted key order so the floating-point summation
// order — and therefore the result — is reproducible across runs.
func (e *Engine) dotSeries(x, y *walkDist) float64 {
	var keys []uint32
	sum := 0.0
	ct := 1.0
	for t := 0; t < e.p.T; t++ {
		if t > 0 {
			ct *= e.p.C
		}
		a, b := x.probs[t], y.probs[t]
		if len(a) == 0 || len(b) == 0 {
			break
		}
		if len(b) < len(a) {
			a, b = b, a
		}
		keys = keys[:0]
		for w := range a {
			if _, ok := b[w]; ok {
				keys = append(keys, w)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, w := range keys {
			sum += ct * e.p.dval(w) * a[w] * b[w]
		}
	}
	return sum
}

// l1Table holds the per-query result of Algorithm 2.
type l1Table struct {
	dmax int
	// beta[d] bounds s⁽ᵀ⁾(u, v) for every v at undirected distance d.
	beta []float64
}

// computeL1From evaluates Algorithm 2's α and β from a sampled walk
// distribution. dist maps vertices to their undirected distance from the
// query. exploredRadius is the distance up to which dist is complete:
// every vertex at distance ≤ exploredRadius appears in dist. Support
// vertices absent from dist (possible when the local BFS was truncated by
// the ball budget) are folded into a per-step overflow maximum so that β
// remains a valid upper bound.
func (e *Engine) computeL1From(wd *walkDist, dist map[uint32]int32, exploredRadius int) *l1Table {
	T, dmax := e.p.T, e.p.DMax
	// alpha[d*T + t] = α(u, d, t).
	alpha := make([]float64, (dmax+1)*T)
	overflow := make([]float64, T)
	for t := 0; t < T && t < len(wd.probs); t++ {
		for w, pr := range wd.probs[t] {
			val := e.p.dval(w) * pr
			d, ok := dist[w]
			if !ok || int(d) > dmax {
				// Distance unknown (truncated BFS) or beyond DMax:
				// account for it conservatively.
				if val > overflow[t] {
					overflow[t] = val
				}
				continue
			}
			if val > alpha[int(d)*T+t] {
				alpha[int(d)*T+t] = val
			}
		}
	}
	// β(u, d) = Σ_t cᵗ · max_{max(0,d−t) ≤ d' ≤ min(dmax,d+t)} α(u, d', t),
	// where distances beyond exploredRadius use the overflow maximum.
	tbl := &l1Table{dmax: dmax, beta: make([]float64, dmax+1)}
	for d := 0; d <= dmax; d++ {
		sum := 0.0
		ct := 1.0
		for t := 0; t < T; t++ {
			lo, hi := d-t, d+t
			if lo < 0 {
				lo = 0
			}
			best := 0.0
			if hi > exploredRadius {
				best = overflow[t]
			}
			if hi > dmax {
				hi = dmax
			}
			for dp := lo; dp <= hi; dp++ {
				if a := alpha[dp*T+t]; a > best {
					best = a
				}
			}
			sum += ct * best
			ct *= e.p.C
		}
		tbl.beta[d] = sum
	}
	return tbl
}

// bound returns β(u, d) for distance d, or +Inf when d exceeds the table.
func (l *l1Table) bound(d int) float64 {
	if l == nil || d < 0 || d > l.dmax {
		return math.Inf(1)
	}
	return l.beta[d]
}

// DistanceBound returns the distance-only upper bound on s⁽ᵀ⁾(u, v) for
// vertices at undirected distance d: two walks meeting at step t imply
// d(u, v) ≤ 2t, so no term before t = ⌈d/2⌉ contributes, and each term is
// at most max_w D_ww, giving Σ_{t ≥ ⌈d/2⌉} cᵗ·maxD = maxD·c^⌈d/2⌉/(1−c).
// With the default D = (1−c)·I this is exactly c^⌈d/2⌉. (The paper states
// s(u,v) ≤ c^d; this variant is the one provable for undirected distance.)
func (e *Engine) DistanceBound(d int) float64 {
	if d <= 0 {
		return 1
	}
	maxD := 1 - e.p.C
	if e.p.D != nil {
		maxD = 0
		for _, v := range e.p.D {
			if v > maxD {
				maxD = v
			}
		}
	}
	return maxD / (1 - e.p.C) * math.Pow(e.p.C, float64((d+1)/2))
}

// L1Bound computes β(u, ·) for the query vertex u and returns the bound
// evaluated at distance d(u,v). Exposed for tests and ablation studies;
// the query phase shares one table across all candidates.
func (e *Engine) L1Bound(u uint32, d int) float64 {
	dist := e.g.UndirectedBall(u, e.p.DMax)
	wd := e.sampleWalkDist(u, e.p.RAlpha, e.queryRNG(u))
	tbl := e.computeL1From(wd, dist, e.p.DMax)
	return tbl.bound(d)
}
