package core

import (
	"slices"

	"repro/internal/rng"
)

// candidateIndex is the auxiliary bipartite graph H of Section 7.1: the
// left vertices are queries, the right vertices are frequently-reached
// walk positions, and two left vertices are candidate-similar when they
// share a right neighbour. Both directions are stored as flat CSR —
// four arrays, no per-vertex slice headers — so the whole index
// persists as four contiguous sections and serves zero-copy from an
// mmapped snapshot.
type candidateIndex struct {
	// rightStart/rightAdj: row u lists u_left's right neighbours,
	// sorted and deduplicated.
	rightStart []uint32 // n+1 row offsets
	rightAdj   []uint32
	// leftStart/leftAdj: row w lists the left vertices adjacent to
	// w_right, sorted.
	leftStart []uint32 // n+1 row offsets
	leftAdj   []uint32
}

// rightRow returns left vertex u's right neighbours (shared storage).
func (ci *candidateIndex) rightRow(u uint32) []uint32 {
	return ci.rightAdj[ci.rightStart[u]:ci.rightStart[u+1]]
}

// leftRow returns right vertex w's left adjacency (shared storage).
func (ci *candidateIndex) leftRow(w uint32) []uint32 {
	return ci.leftAdj[ci.leftStart[w]:ci.leftStart[w+1]]
}

// buildIndex runs Algorithm 4 (INDEXING) for every vertex in parallel:
// P trials per vertex, each performing one index walk W0 and Q collision
// walks W1..WQ; whenever two collision walks coincide at step t (both
// alive), the step-t vertex of W0 is added to the vertex's index.
func (e *Engine) buildIndex() {
	n := e.g.N()
	T, Q := e.p.T, e.p.Q
	rows := make([][]uint32, n)

	e.parallelVertices(saltIndex, func(u uint32, r *rng.Source, s *scratch) {
		rows[u] = e.buildIndexEntry(u, r, s.indexScratch(T, Q))
	})

	e.idx = indexFromRows(rows)
}

// indexFromRows flattens per-vertex right rows into the CSR form and
// constructs the inverted (left) CSR by counting sort. Left rows come
// out sorted because the scan visits left vertices in ascending order.
func indexFromRows(rows [][]uint32) *candidateIndex {
	n := len(rows)
	ci := &candidateIndex{
		rightStart: make([]uint32, n+1),
		leftStart:  make([]uint32, n+1),
	}
	total := 0
	for _, rs := range rows {
		total += len(rs)
	}
	ci.rightAdj = make([]uint32, 0, total)
	for u, rs := range rows {
		ci.rightStart[u] = uint32(len(ci.rightAdj))
		ci.rightAdj = append(ci.rightAdj, rs...)
	}
	ci.rightStart[n] = uint32(len(ci.rightAdj))
	ci.buildInverted()
	return ci
}

// buildInverted fills leftStart/leftAdj from the right CSR.
func (ci *candidateIndex) buildInverted() {
	n := len(ci.rightStart) - 1
	counts := make([]uint32, n)
	for _, w := range ci.rightAdj {
		counts[w]++
	}
	off := uint32(0)
	for w, c := range counts {
		ci.leftStart[w] = off
		off += c
	}
	ci.leftStart[n] = off
	ci.leftAdj = make([]uint32, off)
	cursor := counts // reuse as per-row write cursors
	copy(cursor, ci.leftStart[:n])
	for u := 0; u < n; u++ {
		for _, w := range ci.rightRow(uint32(u)) {
			ci.leftAdj[cursor[w]] = uint32(u)
			cursor[w]++
		}
	}
}

// indexScratch holds per-worker walk buffers for index construction.
type indexScratch struct {
	w0    []uint32
	walks [][]uint32
}

func newIndexScratch(T, Q int) *indexScratch {
	s := &indexScratch{w0: make([]uint32, T+1), walks: make([][]uint32, Q)}
	for j := range s.walks {
		s.walks[j] = make([]uint32, T+1)
	}
	return s
}

// buildIndexEntry runs the per-vertex part of Algorithm 4 and returns the
// sorted, deduplicated index entry for u (nil when no collisions occur).
func (e *Engine) buildIndexEntry(u uint32, r *rng.Source, s *indexScratch) []uint32 {
	T, P, Q := e.p.T, e.p.P, e.p.Q
	var set []uint32
	for trial := 0; trial < P; trial++ {
		singleWalk(e.wt, r, u, T, s.w0)
		for j := 0; j < Q; j++ {
			singleWalk(e.wt, r, u, T, s.walks[j])
		}
		for t := 1; t <= T; t++ {
			if s.w0[t] == Dead {
				break
			}
			if hasCollision(s.walks, t) {
				set = append(set, s.w0[t])
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	slices.Sort(set)
	return slices.Clone(slices.Compact(set))
}

// hasCollision reports whether at least two of the walks coincide (alive)
// at step t.
func hasCollision(walks [][]uint32, t int) bool {
	for j := 0; j < len(walks); j++ {
		wj := walks[j][t]
		if wj == Dead {
			continue
		}
		for k := j + 1; k < len(walks); k++ {
			if walks[k][t] == wj {
				return true
			}
		}
	}
	return false
}

// appendCandidates appends to out every left vertex sharing a right
// neighbour with u, deduplicated through the scratch's current epoch tally
// (the caller pre-marks u, so u never lists itself).
func (ci *candidateIndex) appendCandidates(u uint32, s *scratch, out []uint32) []uint32 {
	if ci == nil {
		return out
	}
	for _, w := range ci.rightRow(u) {
		for _, v := range ci.leftRow(w) {
			if !s.checkSeen(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// bytes approximates the index memory footprint.
func (ci *candidateIndex) bytes() int64 {
	return int64(len(ci.rightStart)+len(ci.rightAdj)+len(ci.leftStart)+len(ci.leftAdj)) * 4
}

// indexedVertices reports how many vertices have a non-empty index entry;
// used by tests and diagnostics.
func (ci *candidateIndex) indexedVertices() int {
	n := 0
	for u := 0; u < len(ci.rightStart)-1; u++ {
		if ci.rightStart[u+1] > ci.rightStart[u] {
			n++
		}
	}
	return n
}

// Scored pairs a vertex with its estimated SimRank score.
type Scored struct {
	V     uint32
	Score float64
}

// topKAcc accumulates the k best scored vertices seen so far. It keeps a
// sorted slice; k is small (paper: 20), so insertion beats a heap.
type topKAcc struct {
	k  int
	xs []Scored
}

func newTopKAcc(k int) *topKAcc { return &topKAcc{k: k} }

// add offers a scored vertex.
func (a *topKAcc) add(s Scored) {
	if a.k <= 0 {
		return
	}
	if len(a.xs) < a.k {
		a.xs = append(a.xs, s)
		for i := len(a.xs) - 1; i > 0 && scoredLess(a.xs[i-1], a.xs[i]); i-- {
			a.xs[i-1], a.xs[i] = a.xs[i], a.xs[i-1]
		}
		return
	}
	if !scoredLess(a.xs[a.k-1], s) {
		return
	}
	a.xs[a.k-1] = s
	for i := a.k - 1; i > 0 && scoredLess(a.xs[i-1], a.xs[i]); i-- {
		a.xs[i-1], a.xs[i] = a.xs[i], a.xs[i-1]
	}
}

// kth returns the current k-th best score, or 0 when fewer than k entries
// have been seen (so it is always a valid pruning lower bound).
func (a *topKAcc) kth() float64 {
	if len(a.xs) < a.k {
		return 0
	}
	return a.xs[a.k-1].Score
}

// result returns the accumulated top-k, best first.
func (a *topKAcc) result() []Scored { return a.xs }

// scoredLess orders by score ascending (so "less" means worse), breaking
// ties toward larger vertex IDs for deterministic output.
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.V > b.V
}
