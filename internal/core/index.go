package core

import (
	"slices"

	"repro/internal/rng"
)

// candidateIndex is the auxiliary bipartite graph H of Section 7.1: the
// left vertices are queries, the right vertices are frequently-reached
// walk positions, and two left vertices are candidate-similar when they
// share a right neighbour.
type candidateIndex struct {
	// right[u] lists u_left's right neighbours, sorted and deduplicated.
	right [][]uint32
	// left[w] lists the left vertices adjacent to w_right, sorted.
	left [][]uint32
}

// buildIndex runs Algorithm 4 (INDEXING) for every vertex in parallel:
// P trials per vertex, each performing one index walk W0 and Q collision
// walks W1..WQ; whenever two collision walks coincide at step t (both
// alive), the step-t vertex of W0 is added to the vertex's index.
func (e *Engine) buildIndex() {
	n := e.g.N()
	T, Q := e.p.T, e.p.Q
	idx := &candidateIndex{right: make([][]uint32, n)}

	e.parallelVertices(saltIndex, func(u uint32, r *rng.Source, s *scratch) {
		idx.right[u] = e.buildIndexEntry(u, r, s.indexScratch(T, Q))
	})

	idx.buildInverted(n)
	e.idx = idx
}

// indexScratch holds per-worker walk buffers for index construction.
type indexScratch struct {
	w0    []uint32
	walks [][]uint32
}

func newIndexScratch(T, Q int) *indexScratch {
	s := &indexScratch{w0: make([]uint32, T+1), walks: make([][]uint32, Q)}
	for j := range s.walks {
		s.walks[j] = make([]uint32, T+1)
	}
	return s
}

// buildIndexEntry runs the per-vertex part of Algorithm 4 and returns the
// sorted, deduplicated index entry for u (nil when no collisions occur).
func (e *Engine) buildIndexEntry(u uint32, r *rng.Source, s *indexScratch) []uint32 {
	T, P, Q := e.p.T, e.p.P, e.p.Q
	var set []uint32
	for trial := 0; trial < P; trial++ {
		singleWalk(e.g, r, u, T, s.w0)
		for j := 0; j < Q; j++ {
			singleWalk(e.g, r, u, T, s.walks[j])
		}
		for t := 1; t <= T; t++ {
			if s.w0[t] == Dead {
				break
			}
			if hasCollision(s.walks, t) {
				set = append(set, s.w0[t])
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	slices.Sort(set)
	return slices.Clone(slices.Compact(set))
}

// hasCollision reports whether at least two of the walks coincide (alive)
// at step t.
func hasCollision(walks [][]uint32, t int) bool {
	for j := 0; j < len(walks); j++ {
		wj := walks[j][t]
		if wj == Dead {
			continue
		}
		for k := j + 1; k < len(walks); k++ {
			if walks[k][t] == wj {
				return true
			}
		}
	}
	return false
}

// buildInverted constructs the right-to-left adjacency. Left lists come
// out sorted because construction iterates left vertices in ascending
// order.
func (ci *candidateIndex) buildInverted(n int) {
	counts := make([]int32, n)
	for _, rs := range ci.right {
		for _, w := range rs {
			counts[w]++
		}
	}
	ci.left = make([][]uint32, n)
	for w := range ci.left {
		if counts[w] > 0 {
			ci.left[w] = make([]uint32, 0, counts[w])
		}
	}
	for u, rs := range ci.right {
		for _, w := range rs {
			ci.left[w] = append(ci.left[w], uint32(u))
		}
	}
}

// appendCandidates appends to out every left vertex sharing a right
// neighbour with u, deduplicated through the scratch's current epoch tally
// (the caller pre-marks u, so u never lists itself).
func (ci *candidateIndex) appendCandidates(u uint32, s *scratch, out []uint32) []uint32 {
	if ci == nil {
		return out
	}
	for _, w := range ci.right[u] {
		for _, v := range ci.left[w] {
			if !s.checkSeen(v) {
				out = append(out, v)
			}
		}
	}
	return out
}

// bytes approximates the index memory footprint.
func (ci *candidateIndex) bytes() int64 {
	var total int64
	for _, rs := range ci.right {
		total += int64(len(rs)) * 4
	}
	for _, ls := range ci.left {
		total += int64(len(ls)) * 4
	}
	// Slice headers.
	total += int64(len(ci.right)+len(ci.left)) * 24
	return total
}

// indexedVertices reports how many vertices have a non-empty index entry;
// used by tests and diagnostics.
func (ci *candidateIndex) indexedVertices() int {
	n := 0
	for _, rs := range ci.right {
		if len(rs) > 0 {
			n++
		}
	}
	return n
}

// Scored pairs a vertex with its estimated SimRank score.
type Scored struct {
	V     uint32
	Score float64
}

// topKAcc accumulates the k best scored vertices seen so far. It keeps a
// sorted slice; k is small (paper: 20), so insertion beats a heap.
type topKAcc struct {
	k  int
	xs []Scored
}

func newTopKAcc(k int) *topKAcc { return &topKAcc{k: k} }

// add offers a scored vertex.
func (a *topKAcc) add(s Scored) {
	if a.k <= 0 {
		return
	}
	if len(a.xs) < a.k {
		a.xs = append(a.xs, s)
		for i := len(a.xs) - 1; i > 0 && scoredLess(a.xs[i-1], a.xs[i]); i-- {
			a.xs[i-1], a.xs[i] = a.xs[i], a.xs[i-1]
		}
		return
	}
	if !scoredLess(a.xs[a.k-1], s) {
		return
	}
	a.xs[a.k-1] = s
	for i := a.k - 1; i > 0 && scoredLess(a.xs[i-1], a.xs[i]); i-- {
		a.xs[i-1], a.xs[i] = a.xs[i], a.xs[i-1]
	}
}

// kth returns the current k-th best score, or 0 when fewer than k entries
// have been seen (so it is always a valid pruning lower bound).
func (a *topKAcc) kth() float64 {
	if len(a.xs) < a.k {
		return 0
	}
	return a.xs[a.k-1].Score
}

// result returns the accumulated top-k, best first.
func (a *topKAcc) result() []Scored { return a.xs }

// scoredLess orders by score ascending (so "less" means worse), breaking
// ties toward larger vertex IDs for deterministic output.
func scoredLess(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.V > b.V
}
