package core

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// The parallel candidate-scoring path must be invisible in the output:
// for a fixed seed, results AND stats are identical for any worker count.
// This is what the block-synchronous floor + per-candidate seeding buys.
func TestTopKIdenticalAcrossWorkers(t *testing.T) {
	g := graph.CopyingModel(5000, 6, 0.3, 21)
	build := func(workers int) *Engine {
		p := DefaultParams()
		p.Seed = 17
		p.Workers = workers
		return Build(g, p)
	}
	base := build(1)
	queries := []uint32{0, 17, 999, 2500, 4999}
	type result struct {
		res   []Scored
		stats QueryStats
	}
	want := make([]result, len(queries))
	for i, u := range queries {
		res, stats := base.TopKStats(u, 20)
		want[i] = result{res, stats}
	}
	for _, workers := range []int{2, 8} {
		e := build(workers)
		for i, u := range queries {
			res, stats := e.TopKStats(u, 20)
			if stats != want[i].stats {
				t.Fatalf("workers=%d u=%d: stats %+v, want %+v", workers, u, stats, want[i].stats)
			}
			if len(res) != len(want[i].res) {
				t.Fatalf("workers=%d u=%d: %d results, want %d", workers, u, len(res), len(want[i].res))
			}
			for j := range res {
				if res[j] != want[i].res[j] {
					t.Fatalf("workers=%d u=%d: result %d = %+v, want %+v",
						workers, u, j, res[j], want[i].res[j])
				}
			}
		}
	}
}

// Threshold queries (k = 0, no kth-score floor) must be worker-count
// independent too.
func TestThresholdIdenticalAcrossWorkers(t *testing.T) {
	g := graph.Collaboration(800, 5, 0.8, 40, 7)
	build := func(workers int) *Engine {
		p := DefaultParams()
		p.Seed = 4
		p.Workers = workers
		p.RAlpha = 1000
		return Build(g, p)
	}
	a := build(1)
	b := build(8)
	for u := uint32(0); u < 10; u++ {
		ra := a.Threshold(u, 0.02)
		rb := b.Threshold(u, 0.02)
		if len(ra) != len(rb) {
			t.Fatalf("u=%d: %d vs %d results", u, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("u=%d: result %d differs: %+v vs %+v", u, i, ra[i], rb[i])
			}
		}
	}
}

// pairSeed must give distinct walk streams to distinct pairs. The old
// derivation hashed u ^ (v<<1), which collides whenever two pairs share
// that XOR — e.g. (0,1) and (2,0) — silently correlating their estimates.
func TestPairSeedDistinctStreams(t *testing.T) {
	e := New(graph.Cycle(16), DefaultParams())
	type pair struct{ u, v uint32 }
	pairs := []pair{
		{0, 1}, {2, 0}, // collided under u ^ (v<<1): both gave 2
		{3, 1}, {1, 2},
		{1, 0}, {0, 2}, // ordered pairs are distinct too
		{5, 5}, {4, 7}, {7, 4},
	}
	seeds := map[uint64]pair{}
	for _, p := range pairs {
		s := e.pairSeed(p.u, p.v)
		if prev, ok := seeds[s]; ok {
			t.Fatalf("pairSeed collision: (%d,%d) and (%d,%d) -> %#x", prev.u, prev.v, p.u, p.v, s)
		}
		seeds[s] = p
	}
}

// candSeed is per vertex (the cacheable candidate-stream seed): distinct
// vertices must get distinct streams, and the stream of any vertex must
// be disjoint from every preprocess phase (phase salts) and from every
// pairSeed stream — a collision would correlate a candidate's cached
// tally with an unrelated walk computation.
func TestCandSeedPerVertexDisjoint(t *testing.T) {
	e := New(graph.Cycle(16), DefaultParams())
	seeds := map[uint64]string{}
	record := func(s uint64, what string) {
		if prev, ok := seeds[s]; ok {
			t.Fatalf("seed collision: %s and %s -> %#x", prev, what, s)
		}
		seeds[s] = what
	}
	for v := uint32(0); v < 16; v++ {
		record(e.candSeed(v), fmt.Sprintf("candSeed(%d)", v))
	}
	// Phase-salt disjointness: the scoring stream of v must not collide
	// with v's gamma or index preprocess streams.
	for v := uint32(0); v < 16; v++ {
		record(e.vertexSeed(saltGamma, v), fmt.Sprintf("vertexSeed(gamma,%d)", v))
		record(e.vertexSeed(saltIndex, v), fmt.Sprintf("vertexSeed(index,%d)", v))
	}
	// And pairSeed streams stay disjoint from every candidate stream.
	for u := uint32(0); u < 8; u++ {
		for v := uint32(0); v < 8; v++ {
			record(e.pairSeed(u, v), fmt.Sprintf("pairSeed(%d,%d)", u, v))
		}
	}
}

// candSeed must not depend on the query vertex: the same candidate's
// walk stream — and therefore its cached tally — serves every query.
func TestCandSeedQueryIndependent(t *testing.T) {
	p := DefaultParams()
	p.Seed = 99
	e := New(graph.Cycle(8), p)
	want := e.p.Seed ^ saltScore ^ rng.Mix(uint64(5))
	if got := e.candSeed(5); got != want {
		t.Fatalf("candSeed(5) = %#x, want seed^saltScore^Mix(v) = %#x", got, want)
	}
}

// SinglePair estimates for the formerly-colliding pairs must now come from
// independent streams: on a graph where both pairs have positive scores,
// the two estimates should not be byte-identical (they were, before, when
// both pairs hashed to the same stream and shared graph structure).
func TestSinglePairIndependentAcrossPairs(t *testing.T) {
	g := graph.Collaboration(40, 4, 0.9, 15, 3)
	e := testEngine(g, 7)
	// Distinct pairs with the same u ^ (v<<1) fingerprint.
	a := e.SinglePairR(0, 1, 200)
	b := e.SinglePairR(2, 0, 200)
	c := e.SinglePairR(0, 1, 200)
	if a != c {
		t.Fatalf("SinglePair not deterministic: %v vs %v", a, c)
	}
	_ = b // the real assertion is stream distinctness, checked above
}
