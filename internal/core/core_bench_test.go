package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func coreBenchEngine(b *testing.B) *Engine {
	b.Helper()
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	p := DefaultParams()
	p.Seed = 1
	return Build(g, p)
}

func BenchmarkSinglePairAlg1(b *testing.B) {
	e := coreBenchEngine(b)
	n := uint32(e.Graph().N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SinglePairR(uint32(i)%n, uint32(i*13+7)%n, 100)
	}
}

func BenchmarkSampleWalkDist(b *testing.B) {
	e := coreBenchEngine(b)
	r := rng.New(1)
	n := uint32(e.Graph().N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sampleWalkDist(uint32(i)%n, e.p.RAlpha, r)
	}
}

func BenchmarkComputeL1(b *testing.B) {
	e := coreBenchEngine(b)
	r := rng.New(1)
	u := uint32(42)
	dist := e.Graph().UndirectedBall(u, e.p.DMax)
	wd := e.sampleWalkDist(u, e.p.RAlpha, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computeL1From(wd, dist, e.p.DMax)
	}
}

func BenchmarkL2Bound(b *testing.B) {
	e := coreBenchEngine(b)
	n := uint32(e.Graph().N())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += e.L2Bound(uint32(i)%n, uint32(i*31+5)%n)
	}
	_ = sink
}

func BenchmarkGammaPreprocessPerVertex(b *testing.B) {
	g := graph.CopyingModel(5000, 8, 0.3, 2)
	p := DefaultParams()
	e := New(g, p)
	r := rng.New(3)
	out := make([]float32, p.T)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computeGammaInto(uint32(i%g.N()), p.RGamma, r, out)
	}
}

func BenchmarkIndexEntryPerVertex(b *testing.B) {
	g := graph.CopyingModel(5000, 8, 0.3, 2)
	p := DefaultParams()
	e := New(g, p)
	r := rng.New(3)
	s := newIndexScratch(p.T, p.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.buildIndexEntry(uint32(i%g.N()), r, s)
	}
}

func BenchmarkSimilarityJoinSmall(b *testing.B) {
	g := graph.Collaboration(150, 4, 0.85, 20, 5)
	p := DefaultParams()
	p.Seed = 1
	p.RAlpha = 500
	e := Build(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SimilarityJoin(0.05, 0)
	}
}

func BenchmarkDynamicIncrementalRefresh(b *testing.B) {
	g := graph.CopyingModel(3000, 6, 0.3, 4)
	p := DefaultParams()
	p.Seed = 1
	d := NewDynamicFrom(g, p)
	if err := d.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32((i*17 + 11) % 2999)
		d.AddEdge(u, u+1)
		if err := d.Refresh(); err != nil {
			b.Fatal(err)
		}
		d.RemoveEdge(u, u+1)
		if err := d.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}
