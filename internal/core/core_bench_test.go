package core

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func coreBenchEngine(b *testing.B) *Engine {
	b.Helper()
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	p := DefaultParams()
	p.Seed = 1
	return Build(g, p)
}

// The 100k-vertex query benchmark graph is expensive to preprocess, so all
// query-path benchmarks share one engine.
var (
	benchOnce   sync.Once
	benchEngine *Engine
)

func bigBenchEngine(b *testing.B) *Engine {
	b.Helper()
	benchOnce.Do(func() {
		g := graph.CopyingModel(100000, 8, 0.3, 1)
		p := DefaultParams()
		p.Seed = 1
		p.Workers = 4
		benchEngine = Build(g, p)
	})
	return benchEngine
}

// BenchmarkTopK is the headline end-to-end query benchmark: top-20 search
// on a 100k-vertex graph with the full pruning stack.
func BenchmarkTopK(b *testing.B) {
	e := bigBenchEngine(b)
	n := uint32(e.Graph().N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.TopK(uint32(i*7919+13)%n, 20)
	}
}

// BenchmarkSinglePairOneSided measures the per-candidate scoring kernel:
// one RScore-walk estimate against a prepared query-side distribution.
func BenchmarkSinglePairOneSided(b *testing.B) {
	e := bigBenchEngine(b)
	n := uint32(e.Graph().N())
	s := e.getScratch()
	defer e.putScratch(s)
	r := rng.New(1)
	e.sampleWalkDistInto(&s.wd, s, 42, e.p.RAlpha, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.singlePairOneSided(s, &s.wd, uint32(i*31+5)%n, e.p.RScore, r)
	}
}

// BenchmarkWalkStep measures the raw Monte-Carlo workhorse: advancing
// RScore walks one in-link step.
func BenchmarkWalkStep(b *testing.B) {
	e := bigBenchEngine(b)
	s := e.getScratch()
	defer e.putScratch(s)
	pos := s.walkBuf(e.p.RScore)
	lane := s.laneBuf(e.p.RScore)
	resetWalks(pos, 42)
	r := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stepWalks(e.wt, r, pos, lane) == 0 {
			resetWalks(pos, 42)
		}
	}
}

// BenchmarkWalkStepDegree isolates the walk kernel across in-degree
// regimes: uniform rows keep the rejection loop's threshold branch
// predictable, the power-law mix stresses it with varying bounds, and
// the high-degree graph makes every adjacency access a fresh cache
// line. Walk death differs per regime, so live-lane compaction is
// exercised at different densities too.
func BenchmarkWalkStepDegree(b *testing.B) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"uniform", graph.ErdosRenyi(20000, 8, 1)},
		{"powerlaw", graph.PreferentialAttachment(20000, 8, 0.3, 1)},
		{"highdeg", graph.ErdosRenyi(4000, 128, 1)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			wt := tc.g.BuildWalkTable()
			R := DefaultParams().RScore
			pos := make([]uint32, R)
			lane := make([]uint64, 2*min(R, graph.StepLane))
			resetWalks(pos, 42)
			r := rng.New(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if wt.StepWalks(r, pos, lane) == 0 {
					resetWalks(pos, 42)
				}
			}
		})
	}
}

// BenchmarkColdStartLoad compares the two restart paths over the same
// saved snapshot: stream decodes and checksums every section, mmap
// verifies the header and adopts page-cache-backed views. The gap is
// the cost a serving process pays before its first query.
func BenchmarkColdStartLoad(b *testing.B) {
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	p := DefaultParams()
	p.Seed = 1
	e := Build(g, p)
	path := filepath.Join(b.TempDir(), "index.simr")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SaveIndex(f); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := LoadIndex(g, p, f); err != nil {
				b.Fatal(err)
			}
			f.Close()
		}
	})
	b.Run("mmap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			em, closer, err := LoadIndexMmap(path, p)
			if err != nil {
				b.Skipf("mmap load unavailable: %v", err)
			}
			_ = em
			if err := closer(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSinglePairAlg1(b *testing.B) {
	e := coreBenchEngine(b)
	n := uint32(e.Graph().N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SinglePairR(uint32(i)%n, uint32(i*13+7)%n, 100)
	}
}

func BenchmarkSampleWalkDist(b *testing.B) {
	e := coreBenchEngine(b)
	r := rng.New(1)
	n := uint32(e.Graph().N())
	s := e.getScratch()
	defer e.putScratch(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.sampleWalkDistInto(&s.wd, s, uint32(i)%n, e.p.RAlpha, r)
	}
}

func BenchmarkComputeL1(b *testing.B) {
	e := coreBenchEngine(b)
	r := rng.New(1)
	u := uint32(42)
	s := e.getScratch()
	defer e.putScratch(s)
	dist := s.distBuf()
	s.ball, _ = e.Graph().UndirectedBallInto(u, e.p.DMax, -1, dist, s.ball[:0])
	defer s.resetDist()
	e.sampleWalkDistInto(&s.wd, s, u, e.p.RAlpha, r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computeL1From(s, &s.wd, dist, e.p.DMax)
	}
}

func BenchmarkL2Bound(b *testing.B) {
	e := coreBenchEngine(b)
	n := uint32(e.Graph().N())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += e.L2Bound(uint32(i)%n, uint32(i*31+5)%n)
	}
	_ = sink
}

func BenchmarkGammaPreprocessPerVertex(b *testing.B) {
	g := graph.CopyingModel(5000, 8, 0.3, 2)
	p := DefaultParams()
	e := New(g, p)
	r := rng.New(3)
	s := e.getScratch()
	defer e.putScratch(s)
	out := make([]float32, p.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.computeGammaInto(uint32(i%g.N()), p.RGamma, r, s, out)
	}
}

func BenchmarkIndexEntryPerVertex(b *testing.B) {
	g := graph.CopyingModel(5000, 8, 0.3, 2)
	p := DefaultParams()
	e := New(g, p)
	r := rng.New(3)
	s := newIndexScratch(p.T, p.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.buildIndexEntry(uint32(i%g.N()), r, s)
	}
}

func BenchmarkSimilarityJoinSmall(b *testing.B) {
	g := graph.Collaboration(150, 4, 0.85, 20, 5)
	p := DefaultParams()
	p.Seed = 1
	p.RAlpha = 500
	e := Build(g, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SimilarityJoin(0.05, 0)
	}
}

// BenchmarkTopKDuringRefresh measures query latency on the serving path
// while a churn goroutine continuously rebuilds snapshots — the number
// that demonstrates lock-free snapshot reads: queries served from the
// published snapshot should not degrade toward preprocess latency.
func BenchmarkTopKDuringRefresh(b *testing.B) {
	g := graph.CopyingModel(20000, 8, 0.3, 1)
	p := DefaultParams()
	p.Seed = 1
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if err := d.Refresh(); err != nil {
		b.Fatal(err)
	}
	n := uint32(g.N())

	var stop atomic.Bool
	var churnDone sync.WaitGroup
	churnDone.Add(1)
	go func() {
		defer churnDone.Done()
		for i := uint32(0); !stop.Load(); i++ {
			u := (i*17 + 11) % (n - 1)
			d.AddEdge(u, u+1)
			if err := d.Refresh(); err != nil {
				b.Error(err)
				return
			}
			d.RemoveEdge(u, u+1)
			if err := d.Refresh(); err != nil {
				b.Error(err)
				return
			}
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.TopK(uint32(i*7919+13)%n, 20); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	stop.Store(true)
	churnDone.Wait()
}

// The serving-tuned engine: candidate scoring dominates the query (small
// ball budget and a cheap u-side distribution), which is the regime batch
// serving runs in and the one the tally cache targets. Per-query scoring
// is sequential; concurrency comes from running whole queries in
// parallel, as TopKBatch does.
var (
	servingOnce   sync.Once
	servingEngine *Engine
)

func servingBenchEngine(b *testing.B) *Engine {
	b.Helper()
	servingOnce.Do(func() {
		g := graph.CopyingModel(100000, 8, 0.3, 1)
		p := DefaultParams()
		p.Seed = 1
		p.Workers = 4
		p.Strategy = CandidatesHybrid
		p.BallBudget = 2000
		p.RAlpha = 2000
		servingEngine = Build(g, p)
	})
	return servingEngine
}

// zipfStream returns a deterministic stream of count query vertices with
// Zipf(s)-distributed popularity over n vertices. Popularity rank is
// decorrelated from vertex id with a Fibonacci-hash permutation so hot
// queries are spread over the graph.
func zipfStream(n, count int, s float64, seed uint64) []uint32 {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		cum[i] = total
	}
	r := rng.New(seed)
	out := make([]uint32, count)
	for i := range out {
		rank, _ := slices.BinarySearch(cum, r.Float64()*total)
		if rank >= n {
			rank = n - 1
		}
		out[i] = uint32((uint64(rank) * 2654435761) % uint64(n))
	}
	return out
}

// BenchmarkTopKZipfThroughput measures batched serving throughput on a
// Zipf(1.1) query stream, with and without the cross-query tally cache.
// Both arms run the identical estimator on the identical engine (results
// are byte-identical); the cache arm reports its steady-state hit rate.
func BenchmarkTopKZipfThroughput(b *testing.B) {
	e := servingBenchEngine(b)
	stream := zipfStream(e.Graph().N(), 1<<14, 1.1, 42)
	const warmup = 4096

	run := func(b *testing.B, budget int64) {
		if budget > 0 && e.cache == nil {
			// The warm cache persists across benchmark invocations of this
			// arm, so measurements are taken at steady state.
			e.cache = newTallyCache(e.Graph().N(), budget)
			for _, u := range stream[:warmup] {
				if _, _, err := e.search(context.Background(), u, 20, e.p.Theta, 1); err != nil {
					b.Fatal(err)
				}
			}
		}
		before := e.CacheStats()
		var next atomic.Uint64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				u := stream[(next.Add(1)-1)%uint64(len(stream))]
				if _, _, err := e.search(context.Background(), u, 20, e.p.Theta, 1); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "qps")
		if budget > 0 {
			cs := e.CacheStats()
			if tot := (cs.Hits - before.Hits) + (cs.Misses - before.Misses); tot > 0 {
				b.ReportMetric(100*float64(cs.Hits-before.Hits)/float64(tot), "hit%")
			}
		}
	}

	b.Run("cache=off", func(b *testing.B) {
		e.cache = nil
		run(b, 0)
	})
	b.Run("cache=on", func(b *testing.B) {
		run(b, 256<<20)
	})
	e.cache = nil
}

func BenchmarkDynamicIncrementalRefresh(b *testing.B) {
	g := graph.CopyingModel(3000, 6, 0.3, 4)
	p := DefaultParams()
	p.Seed = 1
	d := NewDynamicFrom(g, p)
	if err := d.Refresh(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := uint32((i*17 + 11) % 2999)
		d.AddEdge(u, u+1)
		if err := d.Refresh(); err != nil {
			b.Fatal(err)
		}
		d.RemoveEdge(u, u+1)
		if err := d.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}
