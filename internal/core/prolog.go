package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// This file implements the per-snapshot query-prolog cache. The query
// side of every scan (search, shard scan, threshold) begins by sampling
// RAlpha walks from the query vertex u into a per-step walk
// distribution (sampleWalkDistInto) — the single most expensive piece
// of query setup, and a pure function of (snapshot, u): the walks come
// from queryRNG(u), which is derived only from Params.Seed and u, and
// the resulting distribution is consumed strictly read-only afterwards.
// Caching an immutable deep copy per vertex therefore changes where the
// sampling work happens, never what any query returns — and in the
// sharded deployment, where every shard repeats the identical prolog
// for the same query, it removes the dominant duplicated cost.
//
// The structure mirrors the candidate tally cache (cache.go): lock-free
// hits through a per-vertex atomic slot array, striped mutexes for
// insert/evict, CLOCK eviction, reserve-then-evict byte accounting, and
// pointer-sharing carry-forward across incremental rebuilds.

// prologEntry is one cached query-side walk distribution. The wd copy
// is flat-backed (one allocation each for vertices and masses) and
// immutable after construction except for the CLOCK reference bit.
type prologEntry struct {
	u    uint32
	wd   walkDist
	size int64
	ref  atomic.Bool
}

// prologEntryOverhead approximates the fixed per-entry footprint:
// struct, per-step slice headers, and ring bookkeeping.
const prologEntryOverhead = 200

// newPrologEntry deep-copies wd into a flat-backed immutable entry.
func newPrologEntry(u uint32, wd *walkDist) *prologEntry {
	total := 0
	for t := 0; t < wd.T; t++ {
		total += len(wd.verts[t])
	}
	verts := make([]uint32, 0, total)
	probs := make([]float64, 0, total)
	ent := &prologEntry{
		u: u,
		wd: walkDist{
			T:     wd.T,
			verts: make([][]uint32, wd.T),
			probs: make([][]float64, wd.T),
		},
		size: prologEntryOverhead + 12*int64(total) + 48*int64(wd.T),
	}
	for t := 0; t < wd.T; t++ {
		lo := len(verts)
		verts = append(verts, wd.verts[t]...)
		probs = append(probs, wd.probs[t]...)
		ent.wd.verts[t] = verts[lo:len(verts):len(verts)]
		ent.wd.probs[t] = probs[lo:len(probs):len(probs)]
	}
	return ent
}

// prologGet returns the cached prolog entry for u, nil-safe on a
// disabled cache.
func (e *Snapshot) prologGet(u uint32) *prologEntry {
	if e.prolog == nil {
		return nil
	}
	return e.prolog.get(u)
}

// prologPut publishes a deep copy of the freshly sampled distribution,
// nil-safe on a disabled cache.
func (e *Snapshot) prologPut(u uint32, wd *walkDist) {
	if e.prolog == nil {
		return
	}
	e.prolog.put(newPrologEntry(u, wd))
}

type prologShard struct {
	mu   sync.Mutex
	ring []*prologEntry
	hand int
}

// prologCache is the memory-bounded per-snapshot prolog cache. See the
// file comment; the concurrency and accounting rules are those of
// tallyCache.
type prologCache struct {
	maxBytes  int64
	bytes     atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	slots     []atomic.Pointer[prologEntry]
	shards    [tallyShardCount]prologShard
}

func newPrologCache(n int, maxBytes int64) *prologCache {
	return &prologCache{
		maxBytes: maxBytes,
		slots:    make([]atomic.Pointer[prologEntry], n),
	}
}

func (c *prologCache) shard(u uint32) *prologShard {
	return &c.shards[rng.Mix(uint64(u))&(tallyShardCount-1)]
}

// get returns the cached prolog for u, or nil. Lock-free; counts a hit
// or miss.
//
//lint:hotpath prolog cache hit path, consulted at the top of every scan
func (c *prologCache) get(u uint32) *prologEntry {
	if ent := c.slots[u].Load(); ent != nil {
		if !ent.ref.Load() {
			ent.ref.Store(true)
		}
		c.hits.Add(1)
		return ent
	}
	c.misses.Add(1)
	return nil
}

// put inserts ent unless u is already cached (concurrent queries at the
// same vertex build byte-identical entries, so first-in wins). When the
// stripe cannot free enough bytes the reservation is rolled back and
// the entry is not cached — the caller has already sampled into its own
// scratch, so correctness never depends on the insert landing.
func (c *prologCache) put(ent *prologEntry) {
	sh := c.shard(ent.u)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.slots[ent.u].Load() != nil {
		return
	}
	if c.bytes.Add(ent.size) > c.maxBytes {
		c.evictLocked(sh)
		if c.bytes.Load() > c.maxBytes {
			c.bytes.Add(-ent.size)
			return
		}
	}
	ent.ref.Store(true)
	sh.ring = append(sh.ring, ent)
	c.slots[ent.u].Store(ent)
}

// evictLocked runs the CLOCK hand over the stripe's ring until the
// cache fits its budget or the stripe is empty. Caller holds sh.mu.
// A reader that loaded an entry just before its slot is cleared keeps
// using it — entries are immutable, so the answer is unchanged.
func (c *prologCache) evictLocked(sh *prologShard) {
	spared := 0
	for c.bytes.Load() > c.maxBytes && len(sh.ring) > 0 {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		ent := sh.ring[sh.hand]
		if ent.ref.Load() && spared < 2*len(sh.ring) {
			ent.ref.Store(false)
			sh.hand++
			spared++
			continue
		}
		sh.ring = append(sh.ring[:sh.hand], sh.ring[sh.hand+1:]...)
		c.slots[ent.u].Store(nil)
		c.bytes.Add(-ent.size)
		c.evictions.Add(1)
	}
}

// stats aggregates the counters across stripes.
func (c *prologCache) stats() CacheStats {
	st := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		BytesInUse:  c.bytes.Load(),
		BudgetBytes: c.maxBytes,
	}
	for i := range c.shards {
		c.shards[i].mu.Lock()
		st.Entries += len(c.shards[i].ring)
		c.shards[i].mu.Unlock()
	}
	return st
}

// carryForward seeds this cache with the previous snapshot's entries
// whose vertices keep is true for. A prolog entry depends only on the
// query vertex's T-step walk neighbourhood — the same dependency
// footprint as a candidate tally, so the incremental-rebuild path can
// pass the same keep predicate it passes the tally cache. Entries are
// shared by pointer (immutable payload); vertices are visited in
// ascending order so the carried ring order is deterministic. The
// receiver is fresh and unpublished, so no locks are needed.
func (c *prologCache) carryForward(old *prologCache, keep func(u uint32) bool) {
	for u := range old.slots {
		ent := old.slots[u].Load()
		if ent == nil || !keep(uint32(u)) {
			continue
		}
		if c.bytes.Load()+ent.size > c.maxBytes {
			continue
		}
		c.bytes.Add(ent.size)
		sh := c.shard(uint32(u))
		sh.ring = append(sh.ring, ent)
		c.slots[u].Store(ent)
	}
}
