package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

// testEngine builds an un-preprocessed engine with small defaults.
func testEngine(g *graph.Graph, seed uint64) *Engine {
	p := DefaultParams()
	p.Seed = seed
	p.Workers = 2
	return New(g, p)
}

func TestSinglePairMatchesExactSeries(t *testing.T) {
	// MC estimate must converge to the deterministic truncated series
	// (Proposition 3). Use a large R for a tight check.
	g := graph.PreferentialAttachment(60, 3, 0.3, 3)
	e := testEngine(g, 1)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	r := rng.New(7)
	s := e.getScratch()
	defer e.putScratch(s)
	pairs := [][2]uint32{{1, 2}, {5, 10}, {20, 40}, {0, 59}, {13, 14}}
	for _, pr := range pairs {
		want := exact.SinglePair(g, d, e.p.C, e.p.T, pr[0], pr[1])
		got := e.singlePairR(pr[0], pr[1], 20000, r, s)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("s(%d,%d): MC %v vs exact %v", pr[0], pr[1], got, want)
		}
	}
}

func TestSinglePairClawLeaves(t *testing.T) {
	// On the claw with c = 0.8 and D = (1-c)I, the truncated series for
	// two leaves is Σ_{t odd? } ... — just compare against exact.SinglePair.
	g := graph.Star(4)
	p := DefaultParams()
	p.C = 0.8
	p.Seed = 3
	e := New(g, p)
	d := exact.UniformDiagonal(4, 0.8)
	want := exact.SinglePair(g, d, 0.8, p.T, 1, 2)
	s := e.getScratch()
	defer e.putScratch(s)
	got := e.singlePairR(1, 2, 50000, rng.New(5), s)
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("claw leaves: MC %v vs exact %v", got, want)
	}
}

func TestOneSidedEstimatorMatchesExact(t *testing.T) {
	// The query path estimates scores with a near-exact u-side walk
	// distribution and fresh v-side walks; it must agree with the
	// deterministic truncated series.
	g := graph.PreferentialAttachment(60, 3, 0.3, 8)
	e := testEngine(g, 2)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	r := rng.New(11)
	s := e.getScratch()
	defer e.putScratch(s)
	for _, pr := range [][2]uint32{{1, 2}, {5, 10}, {20, 40}, {0, 59}} {
		e.sampleWalkDistInto(&s.wd, s, pr[0], 20000, r)
		got := e.singlePairOneSided(s, &s.wd, pr[1], 5000, r)
		want := exact.SinglePair(g, d, e.p.C, e.p.T, pr[0], pr[1])
		if math.Abs(got-want) > 0.02 {
			t.Errorf("one-sided s(%d,%d): %v vs exact %v", pr[0], pr[1], got, want)
		}
	}
}

func TestOneSidedDeadQuery(t *testing.T) {
	// A query vertex with no in-links has an empty walk distribution
	// after t=0; scores against everything else must be 0.
	g := graph.DirectedStar(5)
	e := testEngine(g, 1)
	r := rng.New(2)
	s := e.getScratch()
	defer e.putScratch(s)
	e.sampleWalkDistInto(&s.wd, s, 1, 100, r) // leaf: walks die at t=1
	if got := e.singlePairOneSided(s, &s.wd, 2, 100, r); got != 0 {
		t.Fatalf("dead-query score = %v", got)
	}
}

func TestSinglePairDeterministicPerSeed(t *testing.T) {
	g := graph.ErdosRenyi(50, 200, 2)
	e1 := testEngine(g, 9)
	e2 := testEngine(g, 9)
	if a, b := e1.SinglePair(3, 7), e2.SinglePair(3, 7); a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
	e3 := testEngine(g, 10)
	// Different seed should (almost surely) give a different estimate.
	if a, b := e1.SinglePair(3, 7), e3.SinglePair(3, 7); a == b && a != 0 {
		t.Fatalf("different seeds gave identical nonzero estimates %v", a)
	}
}

func TestSinglePairDanglingIsZero(t *testing.T) {
	// Leaves of a directed star have no in-links: their walks die at
	// step 1 and the score with any other vertex is 0.
	g := graph.DirectedStar(6)
	e := testEngine(g, 4)
	if got := e.SinglePairR(1, 2, 500); got != 0 {
		t.Fatalf("dangling pair score = %v, want 0", got)
	}
}

func TestSinglePairCycleIsZero(t *testing.T) {
	// Deterministic walks on a directed cycle never meet from distinct
	// starts.
	g := graph.Cycle(8)
	e := testEngine(g, 4)
	for v := uint32(1); v < 8; v++ {
		if got := e.SinglePairR(0, v, 50); got != 0 {
			t.Fatalf("cycle s(0,%d) = %v, want 0", v, got)
		}
	}
}

func TestSinglePairNonNegativeBounded(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(30)
		g := graph.ErdosRenyi(n, 3*n, seed)
		e := testEngine(g, seed)
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		s := e.SinglePairR(u, v, 30)
		return s >= 0 && s <= 1.0/(1.0-e.p.C)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSourceMC(t *testing.T) {
	g := graph.PreferentialAttachment(40, 3, 0.3, 6)
	e := testEngine(g, 2)
	targets := []uint32{1, 2, 3, 4, 5}
	scores := e.SingleSourceMC(7, targets, 2000)
	d := exact.UniformDiagonal(g.N(), e.p.C)
	row := exact.SingleSource(g, d, e.p.C, e.p.T, 7)
	for i, v := range targets {
		if math.Abs(scores[i]-row[v]) > 0.05 {
			t.Errorf("s(7,%d): MC %v vs exact %v", v, scores[i], row[v])
		}
	}
}

func TestWalkDeath(t *testing.T) {
	g := graph.DirectedStar(4) // leaves dangle
	wt := g.BuildWalkTable()
	r := rng.New(1)
	pos := make([]uint32, 10)
	lane := make([]uint64, 2*len(pos))
	resetWalks(pos, 0)
	if alive := stepWalks(wt, r, pos, lane); alive != 10 { // hub -> some leaf
		t.Fatalf("after 1 step alive = %d", alive)
	}
	if alive := stepWalks(wt, r, pos, lane); alive != 0 { // leaves have no in-links
		t.Fatalf("after 2 steps alive = %d", alive)
	}
	for _, p := range pos {
		if p != Dead {
			t.Fatalf("dead walk left at %d", p)
		}
	}
}

func TestWalkReset(t *testing.T) {
	g := graph.Cycle(5)
	pos := make([]uint32, 4)
	resetWalks(pos, 2)
	stepWalks(g.BuildWalkTable(), rng.New(1), pos, make([]uint64, 2*len(pos)))
	resetWalks(pos, 3)
	for _, p := range pos {
		if p != 3 {
			t.Fatalf("reset left position %d", p)
		}
	}
}

func TestSingleWalkRecordsTrajectory(t *testing.T) {
	g := graph.Cycle(5) // in-neighbour of v is v-1 mod 5
	out := make([]uint32, 4)
	singleWalk(g.BuildWalkTable(), rng.New(1), 3, 3, out)
	want := []uint32{3, 2, 1, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("walk = %v, want %v", out, want)
		}
	}
}

func TestSingleWalkDeath(t *testing.T) {
	g := graph.Path(3) // 0->1->2; vertex 0 has no in-links
	out := make([]uint32, 5)
	singleWalk(g.BuildWalkTable(), rng.New(1), 2, 4, out)
	want := []uint32{2, 1, 0, Dead, Dead}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("walk = %v, want %v", out, want)
		}
	}
}
