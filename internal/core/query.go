package core

import (
	"math"
	"sort"
)

// QueryStats reports what the pruning machinery did during one query;
// used by the ablation experiments and tests.
type QueryStats struct {
	// Candidates enumerated before pruning.
	Candidates int
	// PrunedByBound were cut by the L1/L2/distance upper bounds.
	PrunedByBound int
	// PrunedByRough were cut after the rough adaptive estimate.
	PrunedByRough int
	// Refined received the full RScore estimate.
	Refined int
}

// TopK answers Problem 1: the k vertices most similar to u, best first.
// Requires a preprocessed engine (see Build).
func (e *Engine) TopK(u uint32, k int) []Scored {
	res, _ := e.TopKStats(u, k)
	return res
}

// TopKStats is TopK plus pruning statistics.
func (e *Engine) TopKStats(u uint32, k int) ([]Scored, QueryStats) {
	return e.search(u, k, e.p.Theta)
}

// Threshold returns every vertex whose estimated score is at least theta,
// best first. This is the query mode used by the accuracy experiment
// (Section 8.2), where the paper counts recovered "high score" vertices.
func (e *Engine) Threshold(u uint32, theta float64) []Scored {
	res, _ := e.search(u, 0, theta)
	return res
}

// search implements Algorithm 5 (QUERY). k == 0 means unlimited.
func (e *Engine) search(u uint32, k int, theta float64) ([]Scored, QueryStats) {
	var stats QueryStats
	r := e.queryRNG(u)

	// Local distances around the query, used by the L1 and distance
	// bounds and by the ball candidate strategies. The ball budget keeps
	// this BFS local on high-expansion graphs; truncation only weakens
	// the L1/distance bounds (candidates fall back to L2), never
	// correctness.
	dist, truncated := e.g.UndirectedBallBudget(u, e.p.DMax, e.p.BallBudget)
	exploredRadius := e.p.DMax
	if truncated {
		exploredRadius = -1
		for _, d := range dist {
			if int(d) > exploredRadius {
				exploredRadius = int(d)
			}
		}
		exploredRadius-- // the deepest discovered level may be incomplete
	}

	// One batch of RAlpha walks from u serves double duty: Algorithm 2's
	// α/β table and the u-side distribution of every candidate's
	// single-pair estimate. In exact-scoring mode the sampled
	// distribution is replaced by the true sparse one when its support
	// stays under the cap.
	var wd *walkDist
	exactU := false
	if e.p.ExactScoring {
		if xd := e.exactWalkDist(u, e.p.ExactSupportCap); xd != nil {
			wd, exactU = xd, true
		}
	}
	if wd == nil {
		wd = e.sampleWalkDist(u, e.p.RAlpha, r)
	}
	var l1 *l1Table
	if !e.p.DisableL1 {
		l1 = e.computeL1From(wd, dist, exploredRadius)
	}

	cands := e.collectCandidates(u, dist)
	stats.Candidates = len(cands)

	// Upper-bound each candidate and process in descending bound order,
	// so the scan can stop at the first bound below the pruning floor.
	type bounded struct {
		v  uint32
		ub float64
	}
	bs := make([]bounded, 0, len(cands))
	for _, v := range cands {
		ub := math.Inf(1)
		if d, ok := dist[v]; ok {
			if b := e.DistanceBound(int(d)); b < ub {
				ub = b
			}
			if b := l1.bound(int(d)); b < ub {
				ub = b
			}
		}
		if !e.p.DisableL2 && e.gamma != nil {
			if b := e.L2Bound(u, v); b < ub {
				ub = b
			}
		}
		bs = append(bs, bounded{v, ub})
	}
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].ub != bs[j].ub {
			return bs[i].ub > bs[j].ub
		}
		return bs[i].v < bs[j].v
	})

	acc := newTopKAcc(k)
	if k == 0 {
		acc = newTopKAcc(len(bs)) // unlimited: keep everything above theta
	}
	for i, b := range bs {
		floor := theta
		if k > 0 && acc.kth() > floor {
			floor = acc.kth()
		}
		if b.ub < floor {
			stats.PrunedByBound += len(bs) - i
			break
		}
		var score float64
		scored := false
		if exactU {
			// Deterministic scoring: propagate the candidate side
			// exactly too when its support allows it.
			if yd := e.exactWalkDist(b.v, e.p.ExactSupportCap); yd != nil {
				score = e.dotSeries(wd, yd)
				scored = true
				stats.Refined++
			}
		}
		if scored {
			// fall through to the threshold check below
		} else if e.p.DisableAdaptive {
			score = e.singlePairOneSided(wd, b.v, e.p.RScore, r)
			stats.Refined++
		} else {
			// "not small" (paper §7.2): keep the candidate when the
			// rough estimate reaches 0.3x the pruning floor — at
			// RRough = 10 the estimate is noisy, and a tighter cut
			// measurably costs recall on borderline candidates.
			rough := e.singlePairOneSided(wd, b.v, e.p.RRough, r)
			if rough < 0.3*floor {
				stats.PrunedByRough++
				continue
			}
			score = e.singlePairOneSided(wd, b.v, e.p.RScore, r)
			stats.Refined++
		}
		if score >= theta {
			acc.add(Scored{b.v, score})
		}
	}
	return acc.result(), stats
}

// collectCandidates enumerates candidate vertices for the query according
// to Params.Strategy.
func (e *Engine) collectCandidates(u uint32, dist map[uint32]int32) []uint32 {
	seen := make(map[uint32]struct{}, 64)
	var out []uint32
	switch e.p.Strategy {
	case CandidatesIndex:
		out = e.idx.candidates(u, seen, out)
	case CandidatesBall:
		for v := range dist {
			if v != u {
				out = append(out, v)
			}
		}
	case CandidatesHybrid:
		out = e.idx.candidates(u, seen, out)
		for v, d := range dist {
			if v == u || d > 2 {
				continue
			}
			if _, ok := seen[v]; ok {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}
