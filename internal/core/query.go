package core

import (
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// QueryStats reports what the pruning machinery did during one query;
// used by the ablation experiments and tests.
type QueryStats struct {
	// Candidates enumerated before pruning.
	Candidates int
	// PrunedByBound were cut by the L1/L2/distance upper bounds.
	PrunedByBound int
	// PrunedByRough were cut after the rough adaptive estimate.
	PrunedByRough int
	// Refined received the full RScore estimate.
	Refined int
	// CacheHits / CacheMisses count candidate tallies served from /
	// inserted into the cross-query tally cache (both zero when the
	// cache is disabled).
	CacheHits   int
	CacheMisses int
	// CacheEvictions counts entries this query's inserts pushed out.
	CacheEvictions int
}

// boundedCand is a candidate with its upper bound, ready for sorting.
type boundedCand struct {
	v  uint32
	ub float64
}

// candScore is the outcome of scoring one candidate.
type candScore struct {
	score float64
	// rough is the adaptive first-pass estimate, valid for candScored and
	// candRoughPruned (the paths that ran a rough phase). The shard-serving
	// tier ships it to the router so the rough-prune decision can be
	// replayed against any floor (shard.go).
	rough float64
	state uint8
	// cache records the tally-cache interaction (cacheNone when the
	// cache is disabled or the exact path answered); evicted counts
	// entries displaced by this candidate's insert.
	cache   uint8
	evicted uint16
}

const (
	candScored        = uint8(iota) // full estimate in score, rough pass ran
	candRoughPruned                 // cut by the rough adaptive estimate
	candScoredNoRough               // full estimate in score, no rough pass (exact scoring or DisableAdaptive)
)

const (
	cacheNone = uint8(iota)
	cacheHit
	cacheMiss
)

// scoreBlock is the number of bound-ordered candidates scored between two
// re-evaluations of the pruning floor. It is a fixed constant — NOT a
// function of Params.Workers — which is what makes parallel scoring
// deterministic: the floor each candidate observes depends only on the
// candidates in earlier blocks, never on scheduling. A racy shared floor
// would be tighter on average, but rough-prune decisions reading it would
// differ run to run; with 64-candidate blocks the floor staleness costs a
// few extra refinements per query while keeping results byte-identical
// across worker counts.
const scoreBlock = 64

// minParallelScore is the smallest block worth fanning out to goroutines.
const minParallelScore = 16

// TopK answers Problem 1: the k vertices most similar to u, best first.
// Requires a preprocessed engine (see Build).
func (e *Snapshot) TopK(u uint32, k int) []Scored {
	res, _ := e.TopKStats(u, k)
	return res
}

// TopKCtx is TopK with cancellation: the search checks ctx between
// candidate-scoring blocks and returns ctx.Err() as soon as it observes a
// cancelled or expired context, so abandoned requests stop burning walk
// budget. Results and statistics for an uncancelled context are
// byte-identical to TopK.
func (e *Snapshot) TopKCtx(ctx context.Context, u uint32, k int) ([]Scored, error) {
	res, _, err := e.search(ctx, u, k, e.p.Theta, e.p.Workers)
	return res, err
}

// TopKStats is TopK plus pruning statistics.
func (e *Snapshot) TopKStats(u uint32, k int) ([]Scored, QueryStats) {
	res, stats, _ := e.search(context.Background(), u, k, e.p.Theta, e.p.Workers)
	return res, stats
}

// TopKStatsCtx is TopKStats with cancellation (see TopKCtx).
func (e *Snapshot) TopKStatsCtx(ctx context.Context, u uint32, k int) ([]Scored, QueryStats, error) {
	return e.search(ctx, u, k, e.p.Theta, e.p.Workers)
}

// Threshold returns every vertex whose estimated score is at least theta,
// best first. This is the query mode used by the accuracy experiment
// (Section 8.2), where the paper counts recovered "high score" vertices.
func (e *Snapshot) Threshold(u uint32, theta float64) []Scored {
	res, _, _ := e.search(context.Background(), u, 0, theta, e.p.Workers)
	return res
}

// ThresholdCtx is Threshold with cancellation (see TopKCtx).
func (e *Snapshot) ThresholdCtx(ctx context.Context, u uint32, theta float64) ([]Scored, error) {
	res, _, err := e.search(ctx, u, 0, theta, e.p.Workers)
	return res, err
}

// search implements Algorithm 5 (QUERY). k == 0 means unlimited. workers
// is the candidate-scoring fan-out; callers that already parallelize
// across queries (AllTopK, SimilarityJoin, batch) pass 1 to avoid nested
// parallelism.
//
// Cancellation is checked once on entry and then between candidate-scoring
// blocks (never inside one), so a cancelled query returns ctx.Err()
// within one block's worth of work and the block-synchronous determinism
// argument is untouched. All scratch buffers are released on every return
// path (the deferred putScratch covers cancellation too).
func (e *Snapshot) search(ctx context.Context, u uint32, k int, theta float64, workers int) ([]Scored, QueryStats, error) {
	var stats QueryStats
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	qs := e.getScratch()
	defer e.putScratch(qs)
	r := e.queryRNG(u)

	wd, dist, l1, exactU := e.searchProlog(qs, u, r)
	defer qs.resetDist()

	cands := e.collectCandidates(qs, u, dist, qs.ball)
	stats.Candidates = len(cands)

	// Upper-bound each candidate and process in descending bound order,
	// so the scan can stop at the first bound below the pruning floor.
	bs := qs.bounds[:0]
	for _, v := range cands {
		bs = append(bs, boundedCand{v, e.candBound(u, v, dist, l1)})
	}
	qs.bounds = bs
	sortBounds(bs)

	acc := newTopKAcc(k)
	if k == 0 {
		acc = newTopKAcc(len(bs)) // unlimited: keep everything above theta
	}
	scores := qs.scores
	for i := 0; i < len(bs); {
		if err := ctx.Err(); err != nil {
			qs.scores = scores
			return nil, stats, err
		}
		// The pruning floor is re-evaluated once per block, from fully
		// merged results only — deterministic regardless of workers.
		floor := theta
		if k > 0 && acc.kth() > floor {
			floor = acc.kth()
		}
		if bs[i].ub < floor {
			stats.PrunedByBound += len(bs) - i
			break
		}
		end := i + scoreBlock
		if end > len(bs) {
			end = len(bs)
		}
		// Bounds are sorted descending: trim the block's tail below the
		// floor now, so workers never score a candidate the sequential
		// path would have bound-pruned at this floor.
		for end > i && bs[end-1].ub < floor {
			end--
		}
		block := bs[i:end]
		if cap(scores) < len(block) {
			scores = make([]candScore, len(block))
		} else {
			scores = scores[:len(block)]
		}
		if workers > 1 && len(block) >= minParallelScore {
			e.scoreBlockParallel(block, scores, u, wd, floor, exactU, workers)
		} else {
			for j, b := range block {
				scores[j] = e.scoreCandidate(qs, wd, u, b.v, floor, exactU)
			}
		}
		// Merge sequentially in bound order, exactly as the sequential
		// path would have.
		for j, b := range block {
			switch scores[j].cache {
			case cacheHit:
				stats.CacheHits++
			case cacheMiss:
				stats.CacheMisses++
			}
			stats.CacheEvictions += int(scores[j].evicted)
			switch scores[j].state {
			case candRoughPruned:
				stats.PrunedByRough++
			default:
				stats.Refined++
				if scores[j].score >= theta {
					acc.add(Scored{b.v, scores[j].score})
				}
			}
		}
		i = end
	}
	qs.scores = scores
	return acc.result(), stats, nil
}

// searchProlog computes the query-local state shared by every scan mode
// (full search and the shard-restricted variant): the bounded BFS ball
// around u, u's walk distribution (exact when ExactScoring permits,
// sampled otherwise), and the L1 bound table. The caller owns the
// scratch and must defer qs.resetDist() after the returned dist slice is
// no longer needed.
func (e *Snapshot) searchProlog(qs *scratch, u uint32, r *rng.Source) (wd *walkDist, dist []int32, l1 *l1Table, exactU bool) {
	// Local distances around the query, used by the L1 and distance
	// bounds and by the ball candidate strategies. The ball budget keeps
	// this BFS local on high-expansion graphs; truncation only weakens
	// the L1/distance bounds (candidates fall back to L2), never
	// correctness.
	dist = qs.distBuf()
	var truncated bool
	qs.ball, truncated = e.g.UndirectedBallInto(u, e.p.DMax, e.p.BallBudget, dist, qs.ball[:0])
	exploredRadius := e.p.DMax
	if truncated && len(qs.ball) > 0 {
		// BFS visits vertices in nondecreasing distance order, so the last
		// ball entry carries the deepest discovered level — which may be
		// incomplete when the budget cut the search short.
		exploredRadius = int(dist[qs.ball[len(qs.ball)-1]]) - 1
	}

	// One batch of RAlpha walks from u serves double duty: Algorithm 2's
	// α/β table and the u-side distribution of every candidate's
	// single-pair estimate. In exact-scoring mode the sampled
	// distribution is replaced by the true sparse one when its support
	// stays under the cap.
	wd = &qs.wd
	if e.p.ExactScoring && e.exactWalkDistInto(wd, qs, u, e.p.ExactSupportCap) {
		exactU = true
	} else if pe := e.prologGet(u); pe != nil {
		// The sampled distribution is a pure function of (snapshot, u):
		// r = queryRNG(u) feeds only this sampling and nothing after it,
		// and wd is consumed strictly read-only downstream, so an
		// immutable cached copy is byte-equivalent to resampling.
		wd = &pe.wd
	} else {
		e.sampleWalkDistInto(wd, qs, u, e.p.RAlpha, r)
		e.prologPut(u, wd)
	}
	if !e.p.DisableL1 {
		l1 = e.computeL1From(qs, wd, dist, exploredRadius)
	}
	return wd, dist, l1, exactU
}

// candBound is the tightest upper bound available for candidate v of a
// query at u: the minimum of the distance, L1 (nil-safe when disabled),
// and L2 bounds. +Inf when no bound applies.
func (e *Snapshot) candBound(u, v uint32, dist []int32, l1 *l1Table) float64 {
	ub := math.Inf(1)
	if d := dist[v]; d >= 0 {
		if b := e.DistanceBound(int(d)); b < ub {
			ub = b
		}
		if b := l1.bound(int(d)); b < ub {
			ub = b
		}
	}
	if !e.p.DisableL2 && e.gamma != nil {
		if b := e.L2Bound(u, v); b < ub {
			ub = b
		}
	}
	return ub
}

// sortBounds orders candidates by descending upper bound, ties by
// ascending vertex id. This total order is part of the determinism
// contract: the block scan's pruning decisions depend on it, and the
// shard merge (shard.go) reconstructs exactly this order from per-shard
// fragments.
func sortBounds(bs []boundedCand) {
	slices.SortFunc(bs, func(a, b boundedCand) int {
		switch {
		case a.ub > b.ub:
			return -1
		case a.ub < b.ub:
			return 1
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		}
		return 0
	})
}

// scoreBlockParallel fans one block of candidates out to workers. Each
// candidate's walks come from its own vertex-seeded stream (candSeed), so
// which goroutine scores it — and in what order — cannot change its score.
func (e *Snapshot) scoreBlockParallel(block []boundedCand, scores []candScore, u uint32, wd *walkDist, floor float64, exactU bool, workers int) {
	if workers > len(block) {
		workers = len(block)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.getScratch()
			defer e.putScratch(s)
			//lint:ignore ctxflow the loop is bounded by len(block) (≤64 candidates) and exits within one candidate's scoring; the caller checks ctx between blocks, so a per-iteration check here would only add atomic traffic to the hot path
			for {
				j := int(cursor.Add(1)) - 1
				if j >= len(block) {
					return
				}
				scores[j] = e.scoreCandidate(s, wd, u, block[j].v, floor, exactU)
			}
		}()
	}
	wg.Wait()
}

// scoreCandidate produces the estimate (or rough-prune verdict) for one
// candidate v of a query at u. The candidate's RNG is seeded from v
// alone (candSeed), never shared, so the result is a pure function of
// the engine state — and the tally it produces is reusable across
// queries, which the cross-query cache exploits. The cached and uncached
// paths run the identical estimator over the identical walk stream
// (tally.go), so enabling the cache changes work, never values.
//
// The legacy one-sided kernel (singlePairOneSided) remains for RScore
// beyond the uint16 tally range; it uses the same per-vertex stream but
// a step-synchronous simulation order, so its estimates differ in
// sampling noise only.
func (e *Snapshot) scoreCandidate(s *scratch, wd *walkDist, u, v uint32, floor float64, exactU bool) candScore {
	if exactU {
		// Deterministic scoring: propagate the candidate side exactly too
		// when its support allows it.
		if e.exactWalkDistInto(&s.wd2, s, v, e.p.ExactSupportCap) {
			return candScore{score: e.dotSeries(wd, &s.wd2), state: candScoredNoRough}
		}
	}
	R, Rr := e.p.RScore, e.p.RRough
	if R > maxTallyCount {
		s.rng.Seed(e.candSeed(v))
		if e.p.DisableAdaptive {
			return candScore{score: e.singlePairOneSided(s, wd, v, R, &s.rng), state: candScoredNoRough}
		}
		rough := e.singlePairOneSided(s, wd, v, Rr, &s.rng)
		if rough < 0.3*floor {
			return candScore{rough: rough, state: candRoughPruned}
		}
		return candScore{score: e.singlePairOneSided(s, wd, v, R, &s.rng), rough: rough, state: candScored}
	}
	invR, invRr := 1/float64(R), 1/float64(Rr)
	if c := e.cache; c != nil {
		if ent := c.get(v); ent != nil {
			cs := candScore{cache: cacheHit, state: candScoredNoRough}
			if !e.p.DisableAdaptive {
				// "not small" (paper §7.2): keep the candidate when the
				// rough estimate reaches 0.3x the pruning floor.
				cs.rough = e.dotTally(wd, ent.off, ent.verts, ent.rcnt, invRr, int(ent.rsteps))
				cs.state = candScored
				if cs.rough < 0.3*floor {
					cs.state = candRoughPruned
					return cs
				}
			}
			cs.score = e.dotTally(wd, ent.off, ent.verts, ent.cnt, invR, e.p.T)
			return cs
		}
		// Miss: simulate the whole stream once, publish the tally, and
		// serve this query from the scratch view. The rough estimate is
		// evaluated on the prefix counts, exactly as a hit would.
		s.rng.Seed(e.candSeed(v))
		e.simulateCandWalks(s, v, 0, R, R)
		rsteps := e.buildFullTally(s, v, R, Rr, R)
		cs := candScore{cache: cacheMiss, state: candScoredNoRough}
		cs.evicted = uint16(min(c.put(newTallyEntry(v, rsteps, s)), maxTallyCount))
		if !e.p.DisableAdaptive {
			cs.rough = e.dotTally(wd, s.tallyOff, s.tallyV, s.tallyRcnt, invRr, rsteps)
			cs.state = candScored
			if cs.rough < 0.3*floor {
				cs.state = candRoughPruned
				return cs
			}
		}
		cs.score = e.dotTally(wd, s.tallyOff, s.tallyV, s.tallyCnt, invR, e.p.T)
		return cs
	}
	// Cache disabled: same estimator, scratch views only. The rough pass
	// simulates just the prefix; walks Rr..R-1 continue the same stream
	// (walk-major order makes the prefix positions identical either way).
	s.rng.Seed(e.candSeed(v))
	if e.p.DisableAdaptive {
		e.simulateCandWalks(s, v, 0, R, R)
		e.buildFullTally(s, v, R, Rr, R)
		return candScore{score: e.dotTally(wd, s.tallyOff, s.tallyV, s.tallyCnt, invR, e.p.T), state: candScoredNoRough}
	}
	e.simulateCandWalks(s, v, 0, Rr, R)
	rsteps := e.buildRoughTally(s, v, Rr, R)
	rough := e.dotTally(wd, s.tallyOff, s.tallyV, s.tallyRcnt, invRr, rsteps)
	if rough < 0.3*floor {
		return candScore{rough: rough, state: candRoughPruned}
	}
	e.simulateCandWalks(s, v, Rr, R, R)
	e.buildFullTally(s, v, R, Rr, R)
	return candScore{score: e.dotTally(wd, s.tallyOff, s.tallyV, s.tallyCnt, invR, e.p.T), rough: rough, state: candScored}
}

// collectCandidates enumerates candidate vertices for the query according
// to Params.Strategy, deduplicated through the scratch's epoch marks. The
// returned slice aliases qs.cands.
func (e *Snapshot) collectCandidates(qs *scratch, u uint32, dist []int32, ball []uint32) []uint32 {
	out := qs.cands[:0]
	qs.beginTally()
	qs.checkSeen(u) // never a candidate of itself
	switch e.p.Strategy {
	case CandidatesIndex:
		out = e.idx.appendCandidates(u, qs, out)
	case CandidatesBall:
		for _, v := range ball {
			if !qs.checkSeen(v) {
				out = append(out, v)
			}
		}
	case CandidatesHybrid:
		out = e.idx.appendCandidates(u, qs, out)
		for _, v := range ball {
			if dist[v] > 2 {
				break // BFS order: everything after is at least as far
			}
			if !qs.checkSeen(v) {
				out = append(out, v)
			}
		}
	}
	qs.cands = out
	return out
}
