package core

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// scratch bundles every reusable buffer of the query and preprocess hot
// paths: walk position arrays, epoch-marked dense accumulators (the
// allocation-free replacement for the old map[uint32]-based tallies),
// dense BFS distances, walk distributions, and the per-query candidate /
// bound / score working sets.
//
// Engines hand scratches out of a sync.Pool (getScratch / putScratch), so
// after warm-up a query performs near-zero allocations: the only escaping
// allocation is the result slice itself. A scratch is owned by exactly one
// goroutine at a time; parallel candidate scoring gives each worker its
// own pooled scratch.
type scratch struct {
	n int

	// Epoch-marked dense tally. mark[v] == epoch means v is part of the
	// current tally and cnt[v] / acc[v] is valid; bumping epoch clears the
	// whole tally in O(1). touched lists the marked vertices, so results
	// can be extracted (and sorted) in O(support), never O(n).
	mark    []uint32
	epoch   uint32
	cnt     []int32
	acc     []float64 // lazily allocated; only exact scoring needs it
	touched []uint32

	// Walk position buffers (one per side of a walk-pair estimate) and
	// the batched step kernel's lane scratch (packed CSR row descriptors,
	// bounded at graph.StepLane so it stays L1-resident).
	pos  []uint32
	pos2 []uint32
	lane []uint64

	// Dense undirected distances for the query-local ball. Entries are -1
	// ("clean") outside a query; ball lists the vertices the last BFS
	// touched so resetDist can clean up in O(ball). Lazily allocated:
	// preprocess-only scratches never pay for it.
	dist []int32
	ball []uint32

	// Walk distributions: wd holds the query-side distribution, wd2 the
	// candidate-side one in exact-scoring mode.
	wd  walkDist
	wd2 walkDist

	// Per-candidate RNG, re-seeded for every candidate so scores do not
	// depend on candidate evaluation order (and hence worker count).
	rng rng.Source

	// Query working sets.
	cands  []uint32
	bounds []boundedCand
	scores []candScore

	// Candidate tally kernel buffers (tally.go): tpos is the walk-major
	// step×walk position matrix, and tallyOff/tallyV/tallyCnt/tallyRcnt
	// hold the compact per-step sorted tally view built from it.
	tpos      []uint32
	tallyOff  []int32
	tallyV    []uint32
	tallyCnt  []uint16
	tallyRcnt []uint16

	// L1-bound working storage (Algorithm 2's α table and β result).
	alpha    []float64
	overflow []float64
	l1       l1Table

	// Index-construction walk buffers (Algorithm 4).
	iw *indexScratch
}

func newScratch(n int) *scratch {
	return &scratch{
		n:    n,
		mark: make([]uint32, n),
		cnt:  make([]int32, n),
	}
}

// beginTally starts a fresh tally: previous marks become stale in O(1).
func (s *scratch) beginTally() {
	s.epoch++
	if s.epoch == 0 {
		// uint32 wrap-around: stale marks from 4B tallies ago could alias
		// the new epoch, so clear them once.
		clear(s.mark)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

// tallyCount adds one observation of v to the current integer tally.
func (s *scratch) tallyCount(v uint32) {
	if s.mark[v] != s.epoch {
		s.mark[v] = s.epoch
		s.cnt[v] = 0
		s.touched = append(s.touched, v)
	}
	s.cnt[v]++
}

// addMass adds floating-point mass at v to the current tally.
func (s *scratch) addMass(v uint32, m float64) {
	if s.mark[v] != s.epoch {
		s.mark[v] = s.epoch
		s.acc[v] = 0
		s.touched = append(s.touched, v)
	}
	s.acc[v] += m
}

// checkSeen reports whether v was already marked in the current tally,
// marking it if not. Used for candidate deduplication.
func (s *scratch) checkSeen(v uint32) bool {
	if s.mark[v] == s.epoch {
		return true
	}
	s.mark[v] = s.epoch
	return false
}

// ensureAcc allocates the float accumulator on first use.
func (s *scratch) ensureAcc() {
	if s.acc == nil {
		s.acc = make([]float64, s.n)
	}
}

// walkBuf returns the primary walk-position buffer with length R.
func (s *scratch) walkBuf(R int) []uint32 {
	if cap(s.pos) < R {
		s.pos = make([]uint32, R)
	}
	s.pos = s.pos[:R]
	return s.pos
}

// laneBuf returns the step kernel's lane scratch, sized for R walks
// (2 × min(R, graph.StepLane) entries, per StepWalks' contract).
func (s *scratch) laneBuf(R int) []uint64 {
	n := R
	if n > graph.StepLane {
		n = graph.StepLane
	}
	n *= 2
	if cap(s.lane) < n {
		s.lane = make([]uint64, n)
	}
	return s.lane[:n]
}

// walkBuf2 returns the secondary walk-position buffer with length R.
func (s *scratch) walkBuf2(R int) []uint32 {
	if cap(s.pos2) < R {
		s.pos2 = make([]uint32, R)
	}
	s.pos2 = s.pos2[:R]
	return s.pos2
}

// tposBuf returns the walk-major position matrix with T rows of length
// stride. Contents are NOT cleared: the tally builders read exactly the
// columns the current candidate's simulation wrote.
func (s *scratch) tposBuf(T, stride int) []uint32 {
	n := T * stride
	if cap(s.tpos) < n {
		s.tpos = make([]uint32, n) //lint:ignore hotalloc amortized pooled growth; steady state reuses the scratch capacity
	}
	s.tpos = s.tpos[:n]
	return s.tpos
}

// tallyReset prepares the compact tally view for T steps.
func (s *scratch) tallyReset(T int) {
	if cap(s.tallyOff) < T+1 {
		s.tallyOff = make([]int32, T+1) //lint:ignore hotalloc amortized pooled growth; steady state reuses the scratch capacity
	}
	s.tallyOff = s.tallyOff[:T+1]
	s.tallyOff[0] = 0
	s.tallyV = s.tallyV[:0]
	s.tallyCnt = s.tallyCnt[:0]
	s.tallyRcnt = s.tallyRcnt[:0]
}

// distBuf returns the dense distance array (all entries -1). The caller
// must pair every fill with resetDist.
func (s *scratch) distBuf() []int32 {
	if s.dist == nil {
		s.dist = make([]int32, s.n)
		for i := range s.dist {
			s.dist[i] = -1
		}
	}
	return s.dist
}

// resetDist cleans the distance entries touched by the last ball BFS.
func (s *scratch) resetDist() {
	for _, v := range s.ball {
		s.dist[v] = -1
	}
	s.ball = s.ball[:0]
}

// indexScratch returns the reusable Algorithm 4 walk buffers.
func (s *scratch) indexScratch(T, Q int) *indexScratch {
	if s.iw == nil || len(s.iw.w0) != T+1 || len(s.iw.walks) != Q {
		s.iw = newIndexScratch(T, Q)
	}
	return s.iw
}

// floatBuf grows buf to n entries, all zero.
func floatBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// getScratch takes a scratch from the snapshot's pool.
func (e *Snapshot) getScratch() *scratch {
	e.poolGets.Add(1)
	return e.pool.Get().(*scratch)
}

// putScratch returns a scratch to the pool.
func (e *Snapshot) putScratch(s *scratch) {
	e.poolPuts.Add(1)
	e.pool.Put(s)
}
