package core

import "slices"

// This file is the candidate-scoring tally kernel shared by the cached
// and uncached paths. A candidate v is scored by simulating R walks from
// v (seeded by candSeed, so the stream is query-independent), tallying
// the positions per step into a compact sorted view, and taking the dot
// product against the query-side distribution. The same code runs with
// and without the cache — the cache only decides whether the view comes
// from scratch buffers or a stored tallyEntry — which is what makes
// cache-on and cache-off results byte-identical.
//
// The simulation is walk-major (each walk advanced through all T steps
// before the next starts), not step-synchronous like stepWalks. Dead
// walks consume no randomness, so the positions of walks 0..RRough-1 are
// the same whether or not walks RRough..R-1 follow — the rough adaptive
// estimate is literally a prefix restriction of the full tally, and the
// cached rcnt counts reproduce it exactly.

// simulateCandWalks advances walks [lo, hi) of candidate v's stream,
// writing positions into s.tpos with row stride `stride` (row t holds
// step t's positions; step 0 is implicit — every walk starts at v).
// s.rng must already be seeded with candSeed(v) and positioned at walk
// lo (walks are consumed in order, so a caller that simulated [0, lo)
// first continues the same stream).
//
//lint:hotpath per-candidate walk simulation, runs R times per scored candidate
func (e *Snapshot) simulateCandWalks(s *scratch, v uint32, lo, hi, stride int) {
	T := e.p.T
	tp := s.tposBuf(T, stride)
	wt := e.wt
	for i := lo; i < hi; i++ {
		// One strided trajectory per walk: row t of tp gets step t's
		// position at column i. Walk-major draw order is part of the
		// determinism contract (the rough estimate replays a prefix of
		// the same stream), so walks batch internally — scalar rng
		// state across the whole trajectory — but never across walks.
		wt.WalkStrided(&s.rng, v, T-1, stride, tp[i:])
	}
}

// buildRoughTally tabulates walks [0, Rr) of the current tpos matrix
// into the scratch tally view (sorted supports, counts in tallyRcnt) and
// returns rsteps, the number of leading steps with nonempty support.
// Used only on the cache-disabled rough pass; tallyCnt entries are
// written but meaningless.
//
//lint:hotpath rough-pass tally tabulation, runs once per candidate
func (e *Snapshot) buildRoughTally(s *scratch, v uint32, Rr, stride int) int {
	T := e.p.T
	s.tallyReset(T)
	s.tallyV = append(s.tallyV, v)
	s.tallyCnt = append(s.tallyCnt, 0)
	s.tallyRcnt = append(s.tallyRcnt, uint16(Rr))
	s.tallyOff[1] = 1
	for t := 1; t < T; t++ {
		s.beginTally()
		row := s.tpos[t*stride:]
		for i := 0; i < Rr; i++ {
			if w := row[i]; w != Dead {
				s.tallyCount(w)
			}
		}
		if len(s.touched) == 0 {
			for tt := t; tt < T; tt++ {
				s.tallyOff[tt+1] = s.tallyOff[tt]
			}
			return t
		}
		slices.Sort(s.touched)
		for _, w := range s.touched {
			s.tallyV = append(s.tallyV, w)
			s.tallyCnt = append(s.tallyCnt, 0)
			s.tallyRcnt = append(s.tallyRcnt, uint16(s.cnt[w]))
		}
		s.tallyOff[t+1] = int32(len(s.tallyV))
	}
	return T
}

// buildFullTally tabulates all R walks into the scratch tally view: per
// step, the sorted support with full counts (tallyCnt) and rough-prefix
// counts over walks [0, Rr) (tallyRcnt). It returns rsteps — the first
// step at which the rough prefix has no live walks, or T. The rough
// counts here must match buildRoughTally on the same walk prefix, which
// they do because both read the identical tpos columns.
//
//lint:hotpath full tally tabulation, runs once per surviving candidate
func (e *Snapshot) buildFullTally(s *scratch, v uint32, R, Rr, stride int) int {
	T := e.p.T
	s.tallyReset(T)
	s.tallyV = append(s.tallyV, v)
	s.tallyCnt = append(s.tallyCnt, uint16(R))
	s.tallyRcnt = append(s.tallyRcnt, uint16(Rr))
	s.tallyOff[1] = 1
	rsteps := T
	for t := 1; t < T; t++ {
		s.beginTally()
		row := s.tpos[t*stride:]
		for i := 0; i < R; i++ {
			if w := row[i]; w != Dead {
				s.tallyCount(w)
			}
		}
		if len(s.touched) == 0 {
			for tt := t; tt < T; tt++ {
				s.tallyOff[tt+1] = s.tallyOff[tt]
			}
			if rsteps == T {
				rsteps = t
			}
			return rsteps
		}
		slices.Sort(s.touched)
		base := len(s.tallyV)
		for _, w := range s.touched {
			s.tallyV = append(s.tallyV, w)
			s.tallyCnt = append(s.tallyCnt, uint16(s.cnt[w]))
			s.tallyRcnt = append(s.tallyRcnt, 0)
		}
		s.tallyOff[t+1] = int32(len(s.tallyV))
		// Re-tally the rough prefix to fill rcnt for this step.
		s.beginTally()
		alive := false
		for i := 0; i < Rr; i++ {
			if w := row[i]; w != Dead {
				s.tallyCount(w)
				alive = true
			}
		}
		if alive {
			for j := base; j < len(s.tallyV); j++ {
				if w := s.tallyV[j]; s.mark[w] == s.epoch {
					s.tallyRcnt[j] = uint16(s.cnt[w])
				}
			}
		} else if rsteps == T {
			rsteps = t
		}
	}
	return rsteps
}

// newTallyEntry clones the scratch tally view into an immutable cache
// entry.
func newTallyEntry(v uint32, rsteps int, s *scratch) *tallyEntry {
	ent := &tallyEntry{
		v:      v,
		rsteps: int32(rsteps),
		off:    slices.Clone(s.tallyOff),
		verts:  slices.Clone(s.tallyV),
		cnt:    slices.Clone(s.tallyCnt),
		rcnt:   slices.Clone(s.tallyRcnt),
	}
	ent.size = entrySize(len(ent.off)-1, len(ent.verts))
	return ent
}

// dotTally evaluates the truncated series from a tally view against the
// query-side distribution:
//
//	ŝ = Σ_{t<maxStep} cᵗ Σ_w p̂_u,t(w)·D_ww·(counts[w]/R)
//
// Supports are sorted ascending per step and zero counts are skipped, so
// for any view representing the same walk multiset (scratch rough view,
// scratch full view, or a cached entry truncated to its rough prefix)
// the sequence of floating-point operations — and hence the result — is
// identical. invR is 1/R for the counts' walk population; maxStep is
// rsteps for rough estimates and T for full ones.
//
//lint:hotpath scoring dot product, runs on every candidate (cached or not)
func (e *Snapshot) dotTally(wd *walkDist, off []int32, verts []uint32, counts []uint16, invR float64, maxStep int) float64 {
	sigma := 0.0
	ct := 1.0
	for t := 0; t < maxStep; t++ {
		if t > 0 {
			ct *= e.p.C
		}
		lo, hi := off[t], off[t+1]
		if lo == hi {
			break
		}
		vs := wd.verts[t]
		if len(vs) == 0 {
			break
		}
		ps := wd.probs[t]
		if len(vs) > 16*int(hi-lo) {
			// Sparse tally against a wide distribution: search each term.
			for j := lo; j < hi; j++ {
				c := counts[j]
				if c == 0 {
					continue
				}
				w := verts[j]
				if i, ok := slices.BinarySearch(vs, w); ok {
					sigma += ct * e.p.dval(w) * ps[i] * float64(c) * invR
				}
			}
			continue
		}
		// Comparable sizes: merge the two sorted rows sequentially. The
		// accumulation order (ascending tally verts, zero counts skipped)
		// is identical to the search branch, so either branch produces the
		// same float sequence.
		i := 0
		for j := lo; j < hi; j++ {
			c := counts[j]
			if c == 0 {
				continue
			}
			w := verts[j]
			for i < len(vs) && vs[i] < w {
				i++
			}
			if i == len(vs) {
				break
			}
			if vs[i] == w {
				sigma += ct * e.p.dval(w) * ps[i] * float64(c) * invR
			}
		}
	}
	return sigma
}
