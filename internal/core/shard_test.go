package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/graph"
)

// scanStats strips the cache counters, which are topology-dependent (a
// shard refines a superset of what the single-node scan refines, and
// each shard has its own cache). Everything else must replay exactly.
func scanStats(s QueryStats) QueryStats {
	s.CacheHits, s.CacheMisses, s.CacheEvictions = 0, 0, 0
	return s
}

// shardConfigs are the parameter corners the replay proof has to cover:
// every scoring path (adaptive sampled, cached, exact, non-adaptive)
// plus a non-default candidate strategy.
func shardConfigs() map[string]Params {
	base := DefaultParams()
	base.Seed = 17
	cached := base
	cached.CacheBytes = 1 << 20
	exact := base
	exact.ExactScoring = true
	noadapt := base
	noadapt.DisableAdaptive = true
	hybrid := base
	hybrid.Strategy = CandidatesHybrid
	return map[string]Params{
		"base":    base,
		"cached":  cached,
		"exact":   exact,
		"noadapt": noadapt,
		"hybrid":  hybrid,
	}
}

// partitions returns contiguous range partitions of [0, n): the trivial
// one, even splits, and a deliberately skewed split.
func partitions(n uint32) [][][2]uint32 {
	even := func(s uint32) [][2]uint32 {
		var rs [][2]uint32
		for i := uint32(0); i < s; i++ {
			rs = append(rs, [2]uint32{i * n / s, (i + 1) * n / s})
		}
		return rs
	}
	return [][][2]uint32{
		even(1),
		even(2),
		even(3),
		even(5),
		{{0, 1}, {1, n / 10}, {n / 10, n}}, // skewed: tiny, small, huge
	}
}

// TestMergeShardTopKMatchesSearch is the core byte-identity property:
// for every parameter corner, every partition, and several k (including
// k larger than the candidate count), merging the per-shard fragments
// must reproduce the single-node results AND scan statistics exactly.
func TestMergeShardTopKMatchesSearch(t *testing.T) {
	g := graph.CopyingModel(2000, 5, 0.3, 21)
	n := uint32(g.N())
	queries := []uint32{0, 17, 999, 1999}
	ctx := context.Background()
	for name, p := range shardConfigs() {
		t.Run(name, func(t *testing.T) {
			e := Build(g, p)
			for _, u := range queries {
				for _, k := range []int{1, 20, 100000} {
					wantRes, wantStats := e.TopKStats(u, k)
					for pi, part := range partitions(n) {
						frags := make([][]ShardCand, len(part))
						for si, r := range part {
							f, _, err := e.TopKShardCtx(ctx, u, r[0], r[1])
							if err != nil {
								t.Fatalf("u=%d part=%d shard=%d: %v", u, pi, si, err)
							}
							frags[si] = f
						}
						res, stats := MergeShardTopK(k, e.p.Theta, frags)
						if stats != scanStats(wantStats) {
							t.Fatalf("u=%d k=%d part=%d: stats %+v, want %+v",
								u, k, pi, stats, scanStats(wantStats))
						}
						if len(res) != len(wantRes) {
							t.Fatalf("u=%d k=%d part=%d: %d results, want %d",
								u, k, pi, len(res), len(wantRes))
						}
						for j := range res {
							if res[j] != wantRes[j] {
								t.Fatalf("u=%d k=%d part=%d: result %d = %+v, want %+v",
									u, k, pi, j, res[j], wantRes[j])
							}
						}
					}
				}
			}
		})
	}
}

// TestShardScanCacheCountersSum checks the documented aggregation rule
// for the one non-replayed stat family: per-shard candidate counts
// always sum to the single-node count, and with the cache off each
// shard's counters are zero.
func TestShardScanCacheCountersSum(t *testing.T) {
	g := graph.Collaboration(800, 5, 0.8, 40, 7)
	p := DefaultParams()
	p.Seed = 4
	e := Build(g, p)
	n := uint32(g.N())
	ctx := context.Background()
	for _, u := range []uint32{3, 400, 799} {
		_, want := e.TopKStats(u, 20)
		var cands int
		for _, r := range [][2]uint32{{0, n / 3}, {n / 3, n / 2}, {n / 2, n}} {
			_, st, err := e.TopKShardCtx(ctx, u, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			cands += st.Candidates
			if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheEvictions != 0 {
				t.Fatalf("u=%d: cache counters nonzero with cache disabled: %+v", u, st)
			}
		}
		if cands != want.Candidates {
			t.Fatalf("u=%d: shard candidates sum %d, want %d", u, cands, want.Candidates)
		}
	}
}

// TestThresholdShardMergeMatchesSearch: the fixed-floor query mode needs
// no replay — a plain best-first merge of per-shard result lists is
// exact, and per-shard scan stats sum to the single-node stats.
func TestThresholdShardMergeMatchesSearch(t *testing.T) {
	g := graph.Collaboration(800, 5, 0.8, 40, 7)
	p := DefaultParams()
	p.Seed = 4
	e := Build(g, p)
	n := uint32(g.N())
	ctx := context.Background()
	for _, theta := range []float64{0.005, 0.05, 0.3} {
		for _, u := range []uint32{3, 400, 799} {
			want, wantStats, err := e.search(ctx, u, 0, theta, e.p.Workers)
			if err != nil {
				t.Fatal(err)
			}
			for pi, part := range partitions(n) {
				frags := make([][]Scored, len(part))
				var sum QueryStats
				for si, r := range part {
					f, st, err := e.ThresholdShardCtx(ctx, u, theta, r[0], r[1])
					if err != nil {
						t.Fatalf("u=%d part=%d shard=%d: %v", u, pi, si, err)
					}
					frags[si] = f
					sum.Candidates += st.Candidates
					sum.PrunedByBound += st.PrunedByBound
					sum.PrunedByRough += st.PrunedByRough
					sum.Refined += st.Refined
				}
				if sum != scanStats(wantStats) {
					t.Fatalf("theta=%g u=%d part=%d: stats sum %+v, want %+v",
						theta, u, pi, sum, scanStats(wantStats))
				}
				got := MergeScored(0, frags)
				if len(got) != len(want) {
					t.Fatalf("theta=%g u=%d part=%d: %d results, want %d",
						theta, u, pi, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("theta=%g u=%d part=%d: result %d = %+v, want %+v",
							theta, u, pi, j, got[j], want[j])
					}
				}
			}
		}
	}
}

// TestTopKShardBatchMatchesSingle: the batch shard entry point must be
// query-wise identical to the single-query one.
func TestTopKShardBatchMatchesSingle(t *testing.T) {
	g := graph.Collaboration(500, 4, 0.8, 30, 9)
	p := DefaultParams()
	p.Seed = 11
	e := Build(g, p)
	us := []uint32{0, 7, 123, 499, 250}
	ctx := context.Background()
	frags, sts, err := e.TopKShardBatchCtx(ctx, us, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range us {
		want, wantSt, err := e.TopKShardCtx(ctx, u, 100, 400)
		if err != nil {
			t.Fatal(err)
		}
		if sts[i] != wantSt {
			t.Fatalf("u=%d: stats %+v, want %+v", u, sts[i], wantSt)
		}
		if fmt.Sprint(frags[i]) != fmt.Sprint(want) {
			t.Fatalf("u=%d: batch fragment differs from single", u)
		}
	}
}

// FuzzMergeShardTopK checks partition invariance of the replay on
// synthetic fragments: merging any contiguous-range split of a
// well-formed candidate list must equal replaying the unsplit list.
// This exercises tie ordering (bounds drawn from a tiny value set),
// every candidate state, and k beyond the candidate count — free of
// engine-build cost.
func FuzzMergeShardTopK(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(20), uint8(3))
	f.Add([]byte{0xff, 0, 0xff, 0, 7}, uint8(0), uint8(1))
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, kb, shards uint8) {
		const theta = 0.01
		// Decode a candidate per 2 bytes: vertex id = index (distinct by
		// construction), bound and state from the bytes. A small bound
		// alphabet forces ties; rough/score values straddle the 0.3*floor
		// and theta cutoffs.
		ubs := []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.2, 1}
		n := len(data) / 2
		if n == 0 {
			return
		}
		cands := make([]ShardCand, n)
		for i := 0; i < n; i++ {
			b0, b1 := data[2*i], data[2*i+1]
			c := ShardCand{V: uint32(i), UB: ubs[int(b0)%len(ubs)]}
			rough := float64(b1%32) / 100 // 0 .. 0.31
			score := float64(b1%64) / 200 // 0 .. 0.315
			if c.UB < theta {
				c.State = ShardUnscored
			} else {
				switch b0 % 3 {
				case 0:
					if rough < 0.3*theta {
						c.State = ShardRoughPruned
						c.Rough = rough
					} else {
						c.State = ShardScored
						c.Rough = rough
						c.Score = score
					}
				case 1:
					c.State = ShardScoredNoRough
					c.Score = score
				default:
					c.State = ShardScored
					// Rough high enough to survive floor theta; the merge
					// may still prune it at a higher adaptive floor.
					c.Rough = 0.3*theta + rough
					c.Score = score
				}
			}
			cands[i] = c
		}
		SortShardCands(cands)
		k := int(kb)

		wantRes, wantStats := MergeShardTopK(k, theta, [][]ShardCand{cands})

		// Split by vertex-id ranges (candidates own v == their index).
		s := int(shards)%5 + 1
		frags := make([][]ShardCand, s)
		for si := 0; si < s; si++ {
			lo, hi := uint32(si*n/s), uint32((si+1)*n/s)
			var fr []ShardCand
			for _, c := range cands {
				if c.V >= lo && c.V < hi {
					fr = append(fr, c)
				}
			}
			frags[si] = fr
		}
		res, stats := MergeShardTopK(k, theta, frags)
		if stats != wantStats {
			t.Fatalf("stats %+v, want %+v", stats, wantStats)
		}
		if len(res) != len(wantRes) {
			t.Fatalf("%d results, want %d", len(res), len(wantRes))
		}
		for i := range res {
			if res[i] != wantRes[i] {
				t.Fatalf("result %d = %+v, want %+v (seed %x)",
					i, res[i], wantRes[i], binary.BigEndian.AppendUint16(nil, uint16(i)))
			}
		}
	})
}
