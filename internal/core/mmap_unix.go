//go:build unix

package core

import (
	"fmt"
	"math"
	"os"
	"syscall"
	"unsafe"

	"repro/internal/graph"
)

// LoadIndexMmap memory-maps a version-3 index file and serves the
// snapshot's arrays — graph CSR, γ table, candidate index, alias
// slots — directly from the mapping, with zero payload copies. The
// graph itself is reconstructed from the embedded CSR, so cold start is
// O(header + n) regardless of file size: the header and directory CRC
// are verified, the offset arrays get their structural scan, and the
// page cache faults the rest in on demand.
//
// The returned closer unmaps the file; the engine and every query
// served from it must be quiesced first. On an unmodified snapshot the
// mapping stays clean, so memory pressure evicts pages instead of
// swapping them.
func LoadIndexMmap(path string, p Params) (*Engine, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	if st.Size() < persistHeaderSize || st.Size() > math.MaxInt {
		return nil, nil, fmt.Errorf("core: index file %s has implausible size %d", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("core: mmap %s: %w", path, err)
	}
	e, err := engineFromMapped(data, p)
	if err != nil {
		syscall.Munmap(data)
		return nil, nil, err
	}
	return e, func() error { return syscall.Munmap(data) }, nil
}

// u32view reinterprets count little-endian uint32s at data[off:] in
// place. Offsets are page-aligned (parseV3Container enforces it) and
// the mapping base is page-aligned, so the cast is always aligned.
func u32view(data []byte, off, count uint64) []uint32 {
	if count == 0 {
		return []uint32{}
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&data[off])), count)
}

// f32view is u32view for a float32 section.
func f32view(data []byte, off, count uint64) []float32 {
	if count == 0 {
		return []float32{}
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&data[off])), count)
}

// engineFromMapped assembles an engine over a verified v3 image.
func engineFromMapped(data []byte, p Params) (*Engine, error) {
	p = p.normalized() // compare stored params against what New would use
	hdr, dir, err := parseV3Container(data, p)
	if err != nil {
		return nil, err
	}
	byKind := make(map[uint32]persistSection, len(dir))
	for _, d := range dir {
		byKind[d.Kind] = d
	}
	words := func(kind uint32) ([]uint32, bool) {
		d, ok := byKind[kind]
		if !ok {
			return nil, false
		}
		return u32view(data, d.Offset, d.Count), true
	}
	need := func(kind uint32, name string) ([]uint32, error) {
		w, ok := words(kind)
		if !ok {
			return nil, fmt.Errorf("core: corrupt index: missing %s section", name)
		}
		return w, nil
	}

	inS, err := need(secInStart, "in-offset")
	if err != nil {
		return nil, err
	}
	inA, err := need(secInAdj, "in-adjacency")
	if err != nil {
		return nil, err
	}
	outS, err := need(secOutStart, "out-offset")
	if err != nil {
		return nil, err
	}
	outA, err := need(secOutAdj, "out-adjacency")
	if err != nil {
		return nil, err
	}
	g, err := graph.FromCSR(int(hdr.N), inS, inA, outS, outA)
	if err != nil {
		return nil, err
	}

	e := New(g, p)
	if d, ok := byKind[secGamma]; ok {
		e.gamma = f32view(data, d.Offset, d.Count)
	}
	if rs, ok := words(secRightStart); ok {
		idx := &candidateIndex{rightStart: rs}
		if idx.rightAdj, err = need(secRightAdj, "right-adjacency"); err != nil {
			return nil, err
		}
		if idx.leftStart, err = need(secLeftStart, "left-offset"); err != nil {
			return nil, err
		}
		if idx.leftAdj, err = need(secLeftAdj, "left-adjacency"); err != nil {
			return nil, err
		}
		// Structural O(n) checks only: entry range checks would fault the
		// whole payload in, defeating the lazy load.
		if err := validateIndexCSR("right", g.N(), idx.rightStart, idx.rightAdj, false); err != nil {
			return nil, err
		}
		if err := validateIndexCSR("left", g.N(), idx.leftStart, idx.leftAdj, false); err != nil {
			return nil, err
		}
		e.idx = idx
	}
	if prob, ok := words(secAliasProb); ok {
		alias, err := need(secAliasAlias, "alias-redirect")
		if err != nil {
			return nil, err
		}
		if err := e.wt.AdoptSlots(prob, alias); err != nil {
			return nil, fmt.Errorf("core: adopting alias slots: %w", err)
		}
	}
	e.finishLoad()
	return e, nil
}
