// Package core implements the paper's contribution: Monte-Carlo top-k
// SimRank similarity search based on the linear recursive formulation.
//
// The pieces map to the paper as follows:
//
//   - Algorithm 1 (Monte-Carlo single-pair SimRank)       -> singlepair.go
//   - Algorithm 2 (α/β computation, the L1 bound)         -> bounds.go
//   - Algorithm 3 (γ computation, the L2 bound)           -> bounds.go
//   - Algorithm 4 (preprocess: bipartite candidate index) -> index.go
//   - Algorithm 5 (query: prune + adaptive sampling)      -> query.go
//   - parallel all-vertices similarity search             -> allpairs.go
package core

import (
	"math"
	"runtime"

	"repro/internal/rng"
)

// CandidateStrategy selects how the query phase enumerates candidate
// vertices before pruning.
type CandidateStrategy int

const (
	// CandidatesIndex uses the bipartite random-walk index H of
	// Algorithm 4 (the paper's method).
	CandidatesIndex CandidateStrategy = iota
	// CandidatesBall enumerates every vertex within undirected distance
	// DMax of the query. Exhaustive and slower; used for ablations.
	CandidatesBall
	// CandidatesHybrid unions the index candidates with the distance-2
	// ball, trading a little query time for recall.
	CandidatesHybrid
)

func (s CandidateStrategy) String() string {
	switch s {
	case CandidatesIndex:
		return "index"
	case CandidatesBall:
		return "ball"
	case CandidatesHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Params holds every tunable of the method. The zero value is not useful;
// start from DefaultParams. Field defaults follow Section 8 of the paper.
type Params struct {
	// C is the SimRank decay factor, in (0, 1). Paper experiments: 0.6.
	C float64
	// T is the number of series terms / walk steps. Paper: 11.
	T int
	// RScore is the number of walks for refined single-pair estimates
	// (Algorithm 1). Paper: 100.
	RScore int
	// RRough is the number of walks for the rough adaptive pass. Paper: 10.
	RRough int
	// RAlpha is the number of walks used by Algorithm 2 for the α/β
	// (L1) bound, computed at query time. Paper: 10000.
	RAlpha int
	// RGamma is the number of walks per vertex used by Algorithm 3 for
	// the γ (L2) bound, computed in the preprocess. Paper: 100.
	RGamma int
	// P and Q control index construction (Algorithm 4): P independent
	// trials per vertex, each with one index walk W0 and Q collision
	// walks. Paper: P = 10, Q = 5.
	P int
	Q int
	// Theta is the score threshold below which the search is cut off.
	// Paper: 0.01.
	Theta float64
	// DMax is the maximum distance considered by the L1 bound; vertices
	// farther than DMax from the query are never top-k candidates in
	// practice. Paper: DMax = T.
	DMax int
	// BallBudget caps the number of vertices the per-query local BFS
	// may visit, keeping query work local on high-expansion graphs.
	// Candidates beyond the explored region simply fall back to the L2
	// bound. 0 means the default (20000); negative means unlimited.
	BallBudget int
	// Strategy selects the candidate enumeration method.
	Strategy CandidateStrategy
	// DisableL1, DisableL2, DisableAdaptive switch off individual
	// pruning ingredients; used by the ablation benchmarks.
	DisableL1       bool
	DisableL2       bool
	DisableAdaptive bool
	// ExactScoring replaces Monte-Carlo candidate scores with a
	// deterministic sparse evaluation of the truncated series whenever
	// the walk-distribution support stays under ExactSupportCap
	// (falling back to sampling when it explodes, e.g. around social
	// hubs). Eliminates sampling noise on locality-friendly graphs at
	// some query-time cost.
	ExactScoring bool
	// ExactSupportCap bounds the sparse-propagation support per step.
	// 0 means the default (4096).
	ExactSupportCap int
	// D, when non-nil, supplies a custom diagonal correction matrix
	// (one entry per vertex). When nil the paper's approximation
	// D = (1−c)·I is used.
	D []float64
	// CacheBytes bounds the cross-query candidate tally cache per
	// snapshot (cache.go); 0 disables it. Because candidate walks are
	// seeded per vertex, enabling the cache changes which work is
	// re-done, never the results: query output is byte-identical with
	// the cache on or off.
	CacheBytes int64
	// PrologBytes bounds the per-snapshot query-prolog cache of sampled
	// walk distributions (prolog.go). The query-side distribution is a
	// pure function of (snapshot, query vertex), so caching it changes
	// where the sampling work happens, never any result. 0 means the
	// default (32 MiB); negative disables the cache.
	PrologBytes int64
	// Seed makes every Monte-Carlo component deterministic.
	Seed uint64
	// Workers bounds preprocess and all-pairs parallelism.
	// 0 means GOMAXPROCS.
	Workers int
}

// DefaultParams returns the parameter set used in the paper's experiments
// (Section 8).
func DefaultParams() Params {
	return Params{
		C:      0.6,
		T:      11,
		RScore: 100,
		RRough: 10,
		RAlpha: 10000,
		RGamma: 100,
		P:      10,
		Q:      5,
		Theta:  0.01,
		DMax:   11,
		Seed:   1,
	}
}

// normalized returns a copy with zero fields replaced by defaults and
// invalid fields clamped.
func (p Params) normalized() Params {
	def := DefaultParams()
	if p.C <= 0 || p.C >= 1 {
		p.C = def.C
	}
	if p.T <= 0 {
		p.T = def.T
	}
	if p.RScore <= 0 {
		p.RScore = def.RScore
	}
	if p.RRough <= 0 {
		p.RRough = def.RRough
	}
	if p.RRough > p.RScore {
		// The rough pass is served as a prefix of the refined walk
		// stream (tally.go), so it can never use more walks than the
		// refined estimate.
		p.RRough = p.RScore
	}
	if p.RAlpha <= 0 {
		p.RAlpha = def.RAlpha
	}
	if p.RGamma <= 0 {
		p.RGamma = def.RGamma
	}
	if p.P <= 0 {
		p.P = def.P
	}
	if p.Q <= 0 {
		p.Q = def.Q
	}
	if p.Theta <= 0 {
		// A non-positive threshold takes the default; pass a tiny
		// positive value (e.g. 1e-12) to effectively disable it.
		p.Theta = def.Theta
	}
	if p.DMax <= 0 {
		p.DMax = p.T
	}
	if p.BallBudget == 0 {
		p.BallBudget = 20000
	}
	if p.ExactSupportCap <= 0 {
		p.ExactSupportCap = 4096
	}
	if p.PrologBytes == 0 {
		p.PrologBytes = 32 << 20
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	return p
}

// Fingerprint digests every result-affecting parameter into 64 bits,
// for shard manifests: two snapshots with equal graph fingerprint, equal
// Seed, and equal parameter fingerprint produce byte-identical query
// results, so a router refuses to merge fragments across mismatched
// fingerprints. CacheBytes, PrologBytes and Workers are deliberately
// excluded — all three change where work happens, never what a query
// returns (the determinism suite pins that invariant).
func (p Params) Fingerprint() uint64 {
	p = p.normalized()
	h := uint64(0x5370a2c03f1e9d4b) // arbitrary non-zero basis
	mix := func(x uint64) { h = rng.Mix(h ^ x) }
	bit := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	mix(math.Float64bits(p.C))
	mix(uint64(p.T))
	mix(uint64(p.RScore))
	mix(uint64(p.RRough))
	mix(uint64(p.RAlpha))
	mix(uint64(p.RGamma))
	mix(uint64(p.P))
	mix(uint64(p.Q))
	mix(math.Float64bits(p.Theta))
	mix(uint64(p.DMax))
	mix(uint64(int64(p.BallBudget)))
	mix(uint64(p.Strategy))
	mix(bit(p.DisableL1)<<3 | bit(p.DisableL2)<<2 | bit(p.DisableAdaptive)<<1 | bit(p.ExactScoring))
	mix(uint64(p.ExactSupportCap))
	mix(uint64(len(p.D)))
	for _, d := range p.D {
		mix(math.Float64bits(d))
	}
	mix(p.Seed)
	return h
}

// dval returns the diagonal correction entry for vertex w.
func (p *Params) dval(w uint32) float64 {
	if p.D != nil {
		return p.D[w]
	}
	return 1 - p.C
}
