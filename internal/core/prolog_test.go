package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
)

// The prolog cache must be invisible in the output: results AND the full
// per-query stats are byte-identical with the cache enabled or disabled,
// cold and warm, at any worker count — the cached distribution replaces
// a resampling that would have produced the exact same bits.
func TestPrologByteIdenticalTopK(t *testing.T) {
	g := graph.CopyingModel(2500, 6, 0.3, 13)
	build := func(prologBytes int64, workers int) *Engine {
		p := DefaultParams()
		p.Seed = 23
		p.Workers = workers
		p.PrologBytes = prologBytes
		return Build(g, p)
	}
	queries := []uint32{0, 42, 42, 1200, 2499, 42}

	off := build(-1, 1)
	if off.PrologStats() != (CacheStats{}) {
		t.Fatalf("disabled prolog cache reports %+v", off.PrologStats())
	}
	type ref struct {
		res   []Scored
		stats QueryStats
	}
	want := make([]ref, len(queries))
	for i, u := range queries {
		res, st := off.TopKStats(u, 20)
		want[i] = ref{res, st}
	}

	for _, workers := range []int{1, 4} {
		on := build(1<<30, workers)
		for pass := 0; pass < 2; pass++ {
			for i, u := range queries {
				res, st := on.TopKStats(u, 20)
				label := "workers=" + itoa(workers) + " pass=" + itoa(pass) + " u=" + itoa(int(u))
				sameResults(t, label, res, want[i].res)
				if st != want[i].stats {
					t.Fatalf("%s: stats %+v, want %+v", label, st, want[i].stats)
				}
			}
		}
		ps := on.PrologStats()
		// Six queries per pass over four distinct vertices, two passes:
		// four misses, the rest hits.
		if ps.Misses != 4 || ps.Hits != int64(2*len(queries)-4) {
			t.Fatalf("workers=%d: prolog counters %+v", workers, ps)
		}
		if ps.Entries != 4 || ps.Evictions != 0 {
			t.Fatalf("workers=%d: prolog occupancy %+v", workers, ps)
		}
	}
}

// The shard scan shares searchProlog, so fragments served with a warm
// prolog cache must match a cold shard-less engine fragment for
// fragment and stats alike.
func TestPrologByteIdenticalShardScan(t *testing.T) {
	g := graph.CopyingModel(1500, 5, 0.3, 7)
	p := DefaultParams()
	p.Seed = 5
	off := Build(g, p)
	offP := p
	offP.PrologBytes = -1
	cold := Build(g, offP)

	for _, u := range []uint32{3, 700, 700, 1499} {
		for _, r := range [][2]uint32{{0, 750}, {750, 1500}} {
			wantFrag, wantStats, err := cold.TopKShardCtx(context.Background(), u, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			gotFrag, gotStats, err := off.TopKShardCtx(context.Background(), u, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if gotStats != wantStats {
				t.Fatalf("u=%d range=%v: stats %+v, want %+v", u, r, gotStats, wantStats)
			}
			if len(gotFrag) != len(wantFrag) {
				t.Fatalf("u=%d range=%v: %d rows, want %d", u, r, len(gotFrag), len(wantFrag))
			}
			for i := range wantFrag {
				if gotFrag[i] != wantFrag[i] {
					t.Fatalf("u=%d range=%v row %d: %+v, want %+v", u, r, i, gotFrag[i], wantFrag[i])
				}
			}
		}
	}
}

// Concurrent queries at the same vertex race get/put; first-in wins and
// everyone must score from a byte-identical distribution. Run with
// -race this doubles as the lifecycle check for the shared entries.
func TestPrologConcurrentSameVertex(t *testing.T) {
	g := graph.CopyingModel(1200, 5, 0.3, 3)
	p := DefaultParams()
	p.Seed = 9
	eng := Build(g, p)
	want := eng.TopK(77, 15)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := eng.TopK(77, 15)
			if len(got) != len(want) {
				errs <- "length mismatch"
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- "result mismatch"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	ps := eng.PrologStats()
	if ps.Misses+ps.Hits != 17 {
		t.Fatalf("prolog counters %+v, want 17 lookups", ps)
	}
	if ps.Entries != 1 {
		t.Fatalf("prolog entries %d, want 1", ps.Entries)
	}
}

// A tiny budget must only suppress caching, never distort results, and
// the byte accounting must stay within budget at quiescence.
func TestPrologTinyBudget(t *testing.T) {
	g := graph.CopyingModel(800, 5, 0.3, 1)
	p := DefaultParams()
	p.Seed = 2
	pOn := p
	pOn.PrologBytes = 4096 // a few entries at most
	small := Build(g, pOn)
	pOff := p
	pOff.PrologBytes = -1
	ref := Build(g, pOff)

	for u := uint32(0); u < 40; u++ {
		sameResults(t, "u="+itoa(int(u)), small.TopK(u, 10), ref.TopK(u, 10))
	}
	ps := small.PrologStats()
	if ps.BytesInUse > ps.BudgetBytes {
		t.Fatalf("over budget at quiescence: %+v", ps)
	}
}
