package core

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Snapshot is the immutable query state of one engine: the graph, the γ
// table of Algorithm 3, and the bipartite candidate index of Algorithm 4.
// A Snapshot answers every query mode (TopK, Threshold, SinglePair,
// AllTopK, SimilarityJoin) without mutating itself, so any number of
// goroutines may share one Snapshot with no coordination at all — the
// only shared mutable state is the internal scratch pool, which is a
// sync.Pool plus two balance counters.
//
// A Snapshot is produced by an Engine (the builder): Build/Preprocess
// fill the preprocess artifacts, and Seal marks them final. Sealing is
// the publication point — DynamicEngine hands sealed snapshots to
// readers through an atomic.Pointer, and a sealed snapshot must never be
// preprocessed again (Preprocess panics).
type Snapshot struct {
	g *graph.Graph
	p Params

	// wt is the alias walk table every walk kernel samples through —
	// built once per snapshot (O(1) for SimRank's uniform walks, whose
	// tables are degenerate and alias the graph's CSR directly).
	wt *graph.WalkTable

	// gamma[v*T + t] = γ(v, t) from Algorithm 3 (L2 bound), row-major.
	gamma []float32

	// idx is the bipartite candidate index H from Algorithm 4:
	// idx lists each left vertex's right-neighbours; inv is the
	// inverted (right -> left) direction used for candidate joins.
	idx *candidateIndex

	// cache is the cross-query candidate tally cache (cache.go); nil
	// when Params.CacheBytes is 0 or RScore exceeds the uint16 tally
	// range. Shared by every query against this snapshot; it holds
	// derived, deterministic data only, so the snapshot stays logically
	// immutable.
	cache *tallyCache

	// prolog caches the query-side sampled walk distribution per vertex
	// (prolog.go); nil when Params.PrologBytes is negative. Like cache,
	// it holds derived, deterministic data only.
	prolog *prologCache

	// pool recycles query/preprocess scratch buffers (see scratch.go).
	// poolGets/poolPuts count acquire/release round trips; they must be
	// equal whenever no query is in flight (the cancellation tests assert
	// this, and a drift indicates a leaked scratch on some return path).
	pool     sync.Pool
	poolGets atomic.Int64
	poolPuts atomic.Int64

	// sealed marks the snapshot as published read-only state.
	sealed bool

	stats PreprocessStats
}

// PreprocessStats records the cost of each preprocess component.
type PreprocessStats struct {
	GammaTime time.Duration
	IndexTime time.Duration
	// IndexBytes approximates the memory footprint of the preprocess
	// results (γ table + candidate index).
	IndexBytes int64
}

func newSnapshot(g *graph.Graph, p Params) *Snapshot {
	sn := &Snapshot{g: g, p: p.normalized(), wt: g.BuildWalkTable()}
	n := g.N()
	sn.pool.New = func() any { return newScratch(n) }
	if sn.p.CacheBytes > 0 && sn.p.RScore <= maxTallyCount {
		sn.cache = newTallyCache(g.N(), sn.p.CacheBytes)
	}
	if sn.p.PrologBytes > 0 {
		sn.prolog = newPrologCache(n, sn.p.PrologBytes)
	}
	return sn
}

// Graph returns the snapshot's graph.
func (e *Snapshot) Graph() *graph.Graph { return e.g }

// WalkTable returns the snapshot's alias walk table.
func (e *Snapshot) WalkTable() *graph.WalkTable { return e.wt }

// Params returns the snapshot's normalized parameters.
func (e *Snapshot) Params() Params { return e.p }

// Stats returns preprocess cost statistics.
func (e *Snapshot) Stats() PreprocessStats { return e.stats }

// Sealed reports whether the snapshot has been sealed for publication.
func (e *Snapshot) Sealed() bool { return e.sealed }

// CacheStats reports the tally-cache counters; all zero when the cache
// is disabled.
func (e *Snapshot) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// PrologStats reports the query-prolog-cache counters; all zero when
// that cache is disabled.
func (e *Snapshot) PrologStats() CacheStats {
	if e.prolog == nil {
		return CacheStats{}
	}
	return e.prolog.stats()
}

// PoolBalance reports the scratch-pool acquire/release counters; they are
// equal whenever no query is in flight. Exposed for tests and leak
// diagnostics.
func (e *Snapshot) PoolBalance() (gets, puts int64) {
	return e.poolGets.Load(), e.poolPuts.Load()
}
