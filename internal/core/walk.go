package core

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Dead marks a random walk that reached a vertex with no in-links and
// stopped (its probability mass left the graph, matching Pᵗe_u losing
// mass at dangling vertices).
const Dead = graph.NoVertex

// resetWalks restarts every walk in pos at u.
func resetWalks(pos []uint32, u uint32) {
	for i := range pos {
		pos[i] = u
	}
}

// stepWalks advances every live walk one in-link step through the
// snapshot's alias walk table; walks at vertices with no in-links die.
// It returns the number of walks still alive. This is the Monte-Carlo
// workhorse shared by Algorithms 1–4: a batched gather+draw kernel over
// a flat position buffer with no per-step allocation (see
// graph.WalkTable.StepWalks for the draw schema and batching layout).
// lane is scratch of at least min(len(pos), graph.StepLane) entries —
// use scratch.laneBuf.
//
//lint:hotpath per-step kernel of every Monte-Carlo walk batch
func stepWalks(wt *graph.WalkTable, r *rng.Source, pos []uint32, lane []uint64) int {
	return wt.StepWalks(r, pos, lane)
}

// singleWalk performs one walk of length T from u, recording the position
// at every step into out (len T+1, out[0] = u; dead steps are Dead).
//
//lint:hotpath inner loop of query-time walk simulation
func singleWalk(wt *graph.WalkTable, r *rng.Source, u uint32, T int, out []uint32) {
	wt.Walk(r, u, T, out)
}
