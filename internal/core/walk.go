package core

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Dead marks a random walk that reached a vertex with no in-links and
// stopped (its probability mass left the graph, matching Pᵗe_u losing
// mass at dangling vertices).
const Dead = graph.NoVertex

// walkSet is a bundle of R simultaneous in-link random walks. It is the
// Monte-Carlo workhorse shared by Algorithms 1–4.
type walkSet struct {
	g   *graph.Graph
	r   *rng.Source
	pos []uint32
}

// newWalkSet starts R walks at vertex u.
func newWalkSet(g *graph.Graph, r *rng.Source, u uint32, R int) *walkSet {
	ws := &walkSet{g: g, r: r, pos: make([]uint32, R)}
	for i := range ws.pos {
		ws.pos[i] = u
	}
	return ws
}

// reset restarts all walks at u.
func (ws *walkSet) reset(u uint32) {
	for i := range ws.pos {
		ws.pos[i] = u
	}
}

// step advances every live walk one in-link step; walks at vertices with
// no in-links die.
func (ws *walkSet) step() {
	for i, v := range ws.pos {
		if v == Dead {
			continue
		}
		in := ws.g.In(v)
		if len(in) == 0 {
			ws.pos[i] = Dead
			continue
		}
		ws.pos[i] = in[ws.r.Uint32n(uint32(len(in)))]
	}
}

// counts tallies live walk positions into the supplied map, which is
// cleared first. The map estimates R·Pᵗe_u.
func (ws *walkSet) counts(into map[uint32]int32) {
	clear(into)
	for _, v := range ws.pos {
		if v != Dead {
			into[v]++
		}
	}
}

// alive reports the number of live walks.
func (ws *walkSet) alive() int {
	n := 0
	for _, v := range ws.pos {
		if v != Dead {
			n++
		}
	}
	return n
}

// singleWalk performs one walk of length T from u, recording the position
// at every step into out (len T+1, out[0] = u; dead steps are Dead).
func singleWalk(g *graph.Graph, r *rng.Source, u uint32, T int, out []uint32) {
	out[0] = u
	v := u
	for t := 1; t <= T; t++ {
		if v != Dead {
			in := g.In(v)
			if len(in) == 0 {
				v = Dead
			} else {
				v = in[r.Uint32n(uint32(len(in)))]
			}
		}
		out[t] = v
	}
}
