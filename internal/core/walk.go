package core

import (
	"repro/internal/graph"
	"repro/internal/rng"
)

// Dead marks a random walk that reached a vertex with no in-links and
// stopped (its probability mass left the graph, matching Pᵗe_u losing
// mass at dangling vertices).
const Dead = graph.NoVertex

// resetWalks restarts every walk in pos at u.
func resetWalks(pos []uint32, u uint32) {
	for i := range pos {
		pos[i] = u
	}
}

// stepWalks advances every live walk one in-link step; walks at vertices
// with no in-links die. It returns the number of walks still alive. This
// is the Monte-Carlo workhorse shared by Algorithms 1–4: a tight loop
// over a flat position buffer with no per-step allocation.
func stepWalks(g *graph.Graph, r *rng.Source, pos []uint32) int {
	alive := 0
	for i, v := range pos {
		if v == Dead {
			continue
		}
		in := g.In(v)
		if len(in) == 0 {
			pos[i] = Dead
			continue
		}
		pos[i] = in[r.Uint32n(uint32(len(in)))]
		alive++
	}
	return alive
}

// singleWalk performs one walk of length T from u, recording the position
// at every step into out (len T+1, out[0] = u; dead steps are Dead).
func singleWalk(g *graph.Graph, r *rng.Source, u uint32, T int, out []uint32) {
	out[0] = u
	v := u
	for t := 1; t <= T; t++ {
		if v != Dead {
			in := g.In(v)
			if len(in) == 0 {
				v = Dead
			} else {
				v = in[r.Uint32n(uint32(len(in)))]
			}
		}
		out[t] = v
	}
}
