package core

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
)

// This file is the dynamic half of the //lint:hotpath contract. The
// static half is simlint's hotalloc analyzer, which proves at build time
// that no allocation site is reachable from a marked kernel; here
// testing.AllocsPerRun re-checks the same kernels at runtime, so the
// static gate and the allocator must agree. AllocsPerRun's warm-up
// invocation absorbs the amortized scratch growth (the two suppressed
// make sites in scratch.go); the measured runs must then be exactly
// zero. A marker-coverage scan at the bottom pins the marked set, so
// adding //lint:hotpath to a new kernel without extending this test
// fails loudly.

// hotpathMarked lists every function carrying //lint:hotpath, keyed by
// "file-package.name", and doubles as this test's work list.
var hotpathKernels = []string{
	"core.buildFullTally",
	"core.buildRoughTally",
	"core.dotTally",
	"core.get",
	"core.simulateCandWalks",
	"core.singleWalk",
	"core.stepWalks",
	"graph.StepWalks",
}

func TestHotpathKernelsAllocFree(t *testing.T) {
	g := graph.CopyingModel(2000, 8, 0.3, 1)
	p := DefaultParams()
	p.Seed = 1
	e := Build(g, p)
	s := e.getScratch()
	defer e.putScratch(s)

	R, Rr, T := e.p.RScore, e.p.RRough, e.p.T
	u, v := uint32(1), uint32(3)
	var sink float64

	check := func(name string, runs int, f func()) {
		t.Helper()
		if allocs := testing.AllocsPerRun(runs, f); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", name, allocs)
		}
	}

	// stepWalks covers graph.StepWalks (it is a thin wrapper over it).
	pos := s.walkBuf(R)
	lane := s.laneBuf(R)
	check("stepWalks", 50, func() {
		resetWalks(pos, u)
		s.rng.Seed(e.candSeed(u))
		for t := 1; t < T; t++ {
			stepWalks(e.wt, &s.rng, pos, lane)
		}
	})

	out := make([]uint32, T+1)
	check("singleWalk", 50, func() {
		s.rng.Seed(e.candSeed(u))
		singleWalk(e.wt, &s.rng, u, T, out)
	})

	check("simulateCandWalks+buildFullTally+buildRoughTally", 20, func() {
		s.rng.Seed(e.candSeed(v))
		e.simulateCandWalks(s, v, 0, R, R)
		e.buildFullTally(s, v, R, Rr, R)
		e.buildRoughTally(s, v, Rr, R)
	})

	// dotTally needs a query-side distribution and a full tally view.
	var wd walkDist
	s.rng.Seed(e.candSeed(u))
	e.sampleWalkDistInto(&wd, s, u, R, &s.rng)
	s.rng.Seed(e.candSeed(v))
	e.simulateCandWalks(s, v, 0, R, R)
	rsteps := e.buildFullTally(s, v, R, Rr, R)
	invR := 1 / float64(R)
	check("dotTally", 100, func() {
		sink += e.dotTally(&wd, s.tallyOff, s.tallyV, s.tallyCnt, invR, T)
	})

	// The cache hit path.
	c := newTallyCache(g.N(), 1<<20)
	c.put(newTallyEntry(v, rsteps, s))
	check("tallyCache.get", 100, func() {
		if ent := c.get(v); ent != nil {
			sink += float64(ent.rsteps)
		}
	})

	if sink == 0 {
		t.Log("scores summed to zero (fine; the sink only defeats dead-code elimination)")
	}
}

// TestHotpathMarkerCoverage scans the hot-path source directories for
// //lint:hotpath markers and requires the marked set to equal
// hotpathKernels, so the static root set and the dynamic alloc test
// above cannot drift apart silently.
func TestHotpathMarkerCoverage(t *testing.T) {
	marked := map[string]bool{}
	for _, dir := range []string{".", "../graph"} {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, pkg := range pkgs {
			name := strings.TrimSuffix(pkg.Name, "_test")
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Doc == nil {
						continue
					}
					for _, cm := range fd.Doc.List {
						if strings.HasPrefix(strings.TrimSpace(cm.Text), "//lint:hotpath") {
							marked[name+"."+fd.Name.Name] = true
						}
					}
				}
			}
		}
	}
	var got []string
	for k := range marked {
		got = append(got, k)
	}
	sort.Strings(got)
	want := append([]string{}, hotpathKernels...)
	sort.Strings(want)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("marked hot set %v != alloc-tested set %v; extend hotpathKernels and TestHotpathKernelsAllocFree", got, want)
	}
}
