package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
)

// dropCache zeroes the cache counters of a QueryStats so the remaining
// fields can be compared between cache-on and cache-off runs (the cache
// changes which work is redone, never what the query computes).
func dropCache(st QueryStats) QueryStats {
	st.CacheHits, st.CacheMisses, st.CacheEvictions = 0, 0, 0
	return st
}

func sameResults(t *testing.T, label string, got, want []Scored) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// The cache must be invisible in the output: for every query, results are
// byte-identical with the cache on or off, for any worker count, on both
// cold and warm passes. With an ample budget (no eviction) the full
// per-query stats — cache counters included — are deterministic too.
func TestCacheByteIdenticalTopK(t *testing.T) {
	g := graph.CopyingModel(3000, 6, 0.3, 11)
	build := func(cacheBytes int64, workers int) *Engine {
		p := DefaultParams()
		p.Seed = 17
		p.Workers = workers
		p.Strategy = CandidatesHybrid // wide candidate sets exercise the tally path
		p.CacheBytes = cacheBytes
		return Build(g, p)
	}
	queries := []uint32{0, 17, 999, 1500, 2999}

	off := build(0, 1)
	type ref struct {
		res   []Scored
		stats QueryStats
	}
	want := make([]ref, len(queries))
	for i, u := range queries {
		res, st := off.TopKStats(u, 20)
		want[i] = ref{res, st}
	}

	var warmStats []QueryStats // cache counters of workers=1, compared across worker counts
	for _, workers := range []int{1, 2, 8} {
		on := build(1<<30, workers)
		for pass := 0; pass < 2; pass++ {
			anyHits := false
			for i, u := range queries {
				res, st := on.TopKStats(u, 20)
				label := "workers=" + itoa(workers) + " pass=" + itoa(pass) + " u=" + itoa(int(u))
				sameResults(t, label, res, want[i].res)
				if dropCache(st) != want[i].stats {
					t.Fatalf("%s: stats %+v, want %+v", label, dropCache(st), want[i].stats)
				}
				if st.CacheEvictions != 0 {
					t.Fatalf("%s: evictions under an ample budget: %+v", label, st)
				}
				if pass == 1 {
					anyHits = anyHits || st.CacheHits > 0
					if workers == 1 {
						warmStats = append(warmStats, st)
					}
				}
			}
			if pass == 1 && !anyHits {
				t.Fatalf("workers=%d: warm pass recorded no cache hits", workers)
			}
		}
		if cs := on.CacheStats(); cs.Hits == 0 || cs.Entries == 0 || cs.BytesInUse <= 0 {
			t.Fatalf("workers=%d: implausible cache stats %+v", workers, cs)
		} else if cs.BytesInUse > cs.BudgetBytes {
			t.Fatalf("workers=%d: bytes in use %d exceed budget %d", workers, cs.BytesInUse, cs.BudgetBytes)
		}
	}

	// Under an ample budget the warm-pass cache counters are themselves
	// deterministic across worker counts (no eviction → no recompute
	// races): re-run workers=8 warm queries and compare to workers=1.
	on := build(1<<30, 8)
	for _, u := range queries {
		on.TopKStats(u, 20) // cold pass
	}
	for i, u := range queries {
		_, st := on.TopKStats(u, 20)
		if st != warmStats[i] {
			t.Fatalf("u=%d: warm stats %+v (workers=8), want %+v (workers=1)", u, st, warmStats[i])
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Hammering a tiny cache must keep it inside its byte budget, actually
// evict, and still answer byte-identically to an uncached engine.
func TestCacheEvictionRespectsBudget(t *testing.T) {
	g := graph.CopyingModel(2000, 6, 0.3, 5)
	p := DefaultParams()
	p.Seed = 3
	p.Workers = 2
	p.Strategy = CandidatesHybrid
	off := Build(g, p)
	p.CacheBytes = 32 << 10 // a handful of entries at most
	on := Build(g, p)

	// A skewed query stream: hot head plus a moving tail, so entries are
	// both re-hit and displaced.
	queries := make([]uint32, 0, 120)
	for i := 0; i < 40; i++ {
		queries = append(queries, uint32(i%5))          // hot head
		queries = append(queries, uint32(50+i*17)%2000) // cold tail
		queries = append(queries, uint32(i))
	}
	for _, u := range queries {
		wantRes, wantSt := off.TopKStats(u, 10)
		gotRes, gotSt := on.TopKStats(u, 10)
		sameResults(t, "u="+itoa(int(u)), gotRes, wantRes)
		if dropCache(gotSt) != wantSt {
			t.Fatalf("u=%d: stats %+v, want %+v", u, dropCache(gotSt), wantSt)
		}
		if cs := on.CacheStats(); cs.BytesInUse > cs.BudgetBytes {
			t.Fatalf("u=%d: bytes in use %d exceed budget %d", u, cs.BytesInUse, cs.BudgetBytes)
		}
	}
	cs := on.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("tiny budget never evicted: %+v", cs)
	}
	if cs.Entries == 0 || cs.BytesInUse <= 0 || cs.BytesInUse > cs.BudgetBytes {
		t.Fatalf("implausible post-hammer cache stats %+v", cs)
	}
}

// Queries through the cache while the dynamic engine rebuilds snapshots
// concurrently: no races (run under -race), no scratch leaks on any
// snapshot a query touched, and the final state answers exactly like a
// freshly built engine over the same edges.
func TestCacheDuringDynamicRefresh(t *testing.T) {
	const n = 400
	g := graph.CopyingModel(n, 4, 0.3, 9)
	p := DefaultParams()
	p.Seed = 5
	p.Workers = 2
	p.CacheBytes = 1 << 22
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	touched := map[*Snapshot]struct{}{}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := uint32(w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn, err := d.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				touched[sn] = struct{}{}
				mu.Unlock()
				sn.TopKStats(u%n, 10)
				u += 7
			}
		}(w)
	}
	for i := 0; i < 25; i++ {
		a := uint32((i * 31) % n)
		b := uint32((i*13 + 1) % n)
		if a == b {
			b = (b + 1) % n
		}
		if err := d.AddEdge(a, b); err != nil {
			t.Fatal(err)
		}
		if err := d.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	for sn := range touched {
		if gets, puts := sn.PoolBalance(); gets != puts {
			t.Fatalf("scratch leak on a queried snapshot: %d gets vs %d puts", gets, puts)
		}
	}

	// The settled dynamic engine matches a cold cache-off engine built on
	// the same final edge set.
	final, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	final.Graph().Edges(func(u, v uint32) bool {
		edges = append(edges, graph.Edge{U: u, V: v})
		return true
	})
	pp := p
	pp.CacheBytes = 0
	ref := Build(graph.FromEdges(n, edges), pp)
	for _, u := range []uint32{0, 7, 99, 200, 399} {
		want, wantSt := ref.TopKStats(u, 10)
		got, gotSt := final.TopKStats(u, 10)
		sameResults(t, "settled u="+itoa(int(u)), got, want)
		if dropCache(gotSt) != wantSt {
			t.Fatalf("settled u=%d: stats %+v, want %+v", u, dropCache(gotSt), wantSt)
		}
	}
}

// An incremental refresh must carry cached tallies forward for vertices
// untouched by the delta — and the carried entries must still produce
// byte-identical answers on the updated graph.
func TestCacheCarryForwardAcrossIncrementalRefresh(t *testing.T) {
	const n = 1500
	g := graph.CopyingModel(n, 5, 0.3, 21)
	p := DefaultParams()
	p.Seed = 11
	p.Workers = 2
	p.Strategy = CandidatesHybrid
	p.CacheBytes = 1 << 26
	d := NewDynamicFrom(g, p)
	defer d.Close()
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}

	warm, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 30; u++ {
		warm.TopKStats(u, 10)
	}
	if cs := warm.CacheStats(); cs.Entries == 0 {
		t.Fatalf("warmup populated nothing: %+v", cs)
	}

	// One new edge: the affected set is a T-step out-neighbourhood, tiny
	// compared to the graph, so the refresh is incremental and most of
	// the cache survives.
	if err := d.AddEdge(1200, 7); err != nil {
		t.Fatal(err)
	}
	incBefore, fullBefore := d.Refreshes()
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
	incAfter, fullAfter := d.Refreshes()
	if incAfter != incBefore+1 || fullAfter != fullBefore {
		t.Fatalf("expected one incremental refresh, got inc %d->%d full %d->%d",
			incBefore, incAfter, fullBefore, fullAfter)
	}

	next, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if next == warm {
		t.Fatal("refresh did not publish a new snapshot")
	}
	carried := next.CacheStats()
	if carried.Entries == 0 {
		t.Fatalf("no entries carried forward: %+v", carried)
	}
	if carried.BytesInUse > carried.BudgetBytes {
		t.Fatalf("carried bytes %d exceed budget %d", carried.BytesInUse, carried.BudgetBytes)
	}

	// Queries on the updated graph — served partly from carried entries —
	// must match a cold cache-off engine built on the updated edge set.
	var edges []graph.Edge
	next.Graph().Edges(func(u, v uint32) bool {
		edges = append(edges, graph.Edge{U: u, V: v})
		return true
	})
	pp := p
	pp.CacheBytes = 0
	ref := Build(graph.FromEdges(n, edges), pp)
	for u := uint32(0); u < 30; u++ {
		want, wantSt := ref.TopKStats(u, 10)
		got, gotSt := next.TopKStats(u, 10)
		sameResults(t, "post-carry u="+itoa(int(u)), got, want)
		if dropCache(gotSt) != wantSt {
			t.Fatalf("post-carry u=%d: stats %+v, want %+v", u, dropCache(gotSt), wantSt)
		}
	}
}

// TopKBatch must agree with issuing the same queries one at a time:
// identical results, identical stats up to cache attribution (concurrent
// queries may race on who records a shared candidate's miss).
func TestTopKBatchMatchesSequential(t *testing.T) {
	g := graph.CopyingModel(2000, 6, 0.3, 13)
	p := DefaultParams()
	p.Seed = 23
	p.Workers = 4
	p.Strategy = CandidatesHybrid
	p.CacheBytes = 1 << 26
	e := Build(g, p)

	us := []uint32{5, 42, 42, 300, 1999, 5, 777}
	res, sts := e.TopKBatch(us, 15)
	if len(res) != len(us) || len(sts) != len(us) {
		t.Fatalf("batch sizes %d/%d, want %d", len(res), len(sts), len(us))
	}
	for i, u := range us {
		want, wantSt := e.TopKStats(u, 15)
		sameResults(t, "batch u="+itoa(int(u)), res[i], want)
		if dropCache(sts[i]) != dropCache(wantSt) {
			t.Fatalf("batch u=%d: stats %+v, want %+v", u, dropCache(sts[i]), dropCache(wantSt))
		}
	}

	// Cancellation discards partials.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r, s, err := e.TopKBatchCtx(ctx, us, 15); err == nil || r != nil || s != nil {
		t.Fatalf("cancelled batch returned (%v, %v, %v), want nils and an error", r, s, err)
	}
}
