package analysis

import (
	"strings"
	"testing"
)

// TestFileIgnore checks that //lint:file-ignore suppresses a rule across
// the whole file.
func TestFileIgnore(t *testing.T) {
	pkg := loadFixture(t, "fileignore")
	diags, err := Run(pkg, []*Analyzer{NoRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("file-ignore did not suppress: %v", diags)
	}
}

// TestMalformedDirective checks that a directive without a reason is
// itself reported under the "lint" pseudo-rule.
func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "malformed")
	diags, err := Run(pkg, []*Analyzer{NoRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the malformed-directive one: %v", len(diags), diags)
	}
	if diags[0].Rule != "lint" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
}

// TestAuditStaleDirectives checks audit mode: a directive whose finding
// still fires is quiet, while a line directive with nothing to suppress
// and a file-wide directive for a rule that never fires are both reported
// as stale, at the directive's own position.
func TestAuditStaleDirectives(t *testing.T) {
	pkg := loadFixture(t, "staleignore")
	diags, err := RunPackage(pkg, []*Analyzer{NoRand, SeedMix}, RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d audit diagnostics, want 2 stale directives: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "lint" || !strings.Contains(d.Message, "stale") {
			t.Fatalf("unexpected audit diagnostic: %v", d)
		}
	}
	if !strings.Contains(diags[0].Message, "seedmix") || !strings.Contains(diags[0].Message, "file-ignore") {
		t.Errorf("first diagnostic should be the stale file-wide seedmix directive: %v", diags[0])
	}
	if !strings.Contains(diags[1].Message, "norand") || !strings.Contains(diags[1].Message, "next line") {
		t.Errorf("second diagnostic should be the stale line norand directive: %v", diags[1])
	}
}

// TestAuditScopedToEnabledRules checks that audit with a rule subset only
// judges directives for rules that ran: the stale file-wide seedmix
// directive must not be reported when seedmix was not among the
// analyzers, while the genuinely stale norand directive still is.
func TestAuditScopedToEnabledRules(t *testing.T) {
	pkg := loadFixture(t, "staleignore")
	diags, err := RunPackage(pkg, []*Analyzer{NoRand}, RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d audit diagnostics, want only the stale norand directive: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "norand") {
		t.Errorf("diagnostic should be the stale line norand directive: %v", diags[0])
	}
}

// TestAuditQuietWhenLive checks that audit mode returns nothing for a file
// whose only directive still suppresses a live finding.
func TestAuditQuietWhenLive(t *testing.T) {
	pkg := loadFixture(t, "fileignore")
	diags, err := RunPackage(pkg, []*Analyzer{NoRand}, RunOptions{Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("live suppression reported as stale: %v", diags)
	}
}

// TestIgnoreIndexPlacement pins the directive placement contract: same
// line and line-above suppress, two lines above does not.
func TestIgnoreIndexPlacement(t *testing.T) {
	idx := &ignoreIndex{
		line: map[string]map[int][]string{
			"f.go": {10: {"norand"}},
		},
		file: map[string][]string{},
	}
	mk := func(line int, rule string) Diagnostic {
		return Diagnostic{Rule: rule, File: "f.go", Line: line}
	}
	if !idx.suppressed(mk(10, "norand")) {
		t.Error("same-line directive must suppress")
	}
	if !idx.suppressed(mk(11, "norand")) {
		t.Error("line-above directive must suppress")
	}
	if idx.suppressed(mk(12, "norand")) {
		t.Error("directive two lines up must not suppress")
	}
	if idx.suppressed(mk(10, "seedmix")) {
		t.Error("other rules must not be suppressed")
	}
}
