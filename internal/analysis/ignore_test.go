package analysis

import (
	"strings"
	"testing"
)

// TestFileIgnore checks that //lint:file-ignore suppresses a rule across
// the whole file.
func TestFileIgnore(t *testing.T) {
	pkg := loadFixture(t, "fileignore")
	diags, err := Run(pkg, []*Analyzer{NoRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("file-ignore did not suppress: %v", diags)
	}
}

// TestMalformedDirective checks that a directive without a reason is
// itself reported under the "lint" pseudo-rule.
func TestMalformedDirective(t *testing.T) {
	pkg := loadFixture(t, "malformed")
	diags, err := Run(pkg, []*Analyzer{NoRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the malformed-directive one: %v", len(diags), diags)
	}
	if diags[0].Rule != "lint" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
}

// TestIgnoreIndexPlacement pins the directive placement contract: same
// line and line-above suppress, two lines above does not.
func TestIgnoreIndexPlacement(t *testing.T) {
	idx := &ignoreIndex{
		line: map[string]map[int][]string{
			"f.go": {10: {"norand"}},
		},
		file: map[string][]string{},
	}
	mk := func(line int, rule string) Diagnostic {
		return Diagnostic{Rule: rule, File: "f.go", Line: line}
	}
	if !idx.suppressed(mk(10, "norand")) {
		t.Error("same-line directive must suppress")
	}
	if !idx.suppressed(mk(11, "norand")) {
		t.Error("line-above directive must suppress")
	}
	if idx.suppressed(mk(12, "norand")) {
		t.Error("directive two lines up must not suppress")
	}
	if idx.suppressed(mk(10, "seedmix")) {
		t.Error("other rules must not be suppressed")
	}
}
