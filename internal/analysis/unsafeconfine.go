package analysis

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// UnsafeConfine keeps pointer reinterpretation and memory-mapping
// machinery out of general code: importing unsafe or golang.org/x/sys,
// and calling the syscall mmap family, are only allowed in files whose
// basename mentions "mmap" — the zero-copy snapshot loaders, which are
// the one place the repository is allowed to alias raw bytes as typed
// arrays. A plain syscall import is fine everywhere (signal handling in
// the command-line tools uses syscall.SIGTERM); it is the mapping calls
// that are confined, because every one of them creates memory whose
// lifetime is not tracked by the garbage collector.
var UnsafeConfine = &Analyzer{
	Name: "unsafeconfine",
	Doc: "unsafe imports, golang.org/x/sys imports, and syscall mmap-family calls " +
		"are confined to *mmap* loader files",
	Run: runUnsafeConfine,
}

// mmapFamily lists the syscall package's mapping-related functions: each
// yields or manages memory outside the Go heap.
var mmapFamily = map[string]bool{
	"Mmap":       true,
	"Munmap":     true,
	"Mprotect":   true,
	"Mlock":      true,
	"Munlock":    true,
	"Mlockall":   true,
	"Munlockall": true,
	"Madvise":    true,
}

// unsafeConfineAllowed reports whether the file may hold confined
// constructs: any file whose basename contains "mmap".
func unsafeConfineAllowed(file string) bool {
	return strings.Contains(strings.ToLower(filepath.Base(file)), "mmap")
}

func runUnsafeConfine(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		file := pass.Pkg.Fset.Position(f.Pos()).Filename
		if unsafeConfineAllowed(file) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			switch {
			case path == "unsafe":
				pass.Reportf(imp.Pos(),
					"import of unsafe outside an mmap loader file: byte reinterpretation is confined to *mmap*.go")
			case path == "golang.org/x/sys" || strings.HasPrefix(path, "golang.org/x/sys/"):
				pass.Reportf(imp.Pos(),
					"import of %s outside an mmap loader file: raw system-call wrappers are confined to *mmap*.go", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if mmapFamily[sel.Sel.Name] && pkgIdent(pass.Pkg.Info, sel.X, "syscall") {
				pass.Reportf(sel.Pos(),
					"syscall.%s outside an mmap loader file: mapping calls are confined to *mmap*.go", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
