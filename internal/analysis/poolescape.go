package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape extends poolbalance from "released on every path" to
// "never used or retained after release". A pooled object (an engine
// scratch, a wire.Buf, a shard request scratch, a router gather) that
// is touched after Put may be concurrently re-checked-out by another
// goroutine — the resulting aliasing corrupts whichever query got it
// next, which no byte-identity test catches because it only manifests
// under pool churn.
//
// Per acquired object the check runs a may-flow over the CFG with a
// two-bit lifetime state {may-live, may-released}: a release on any
// path followed by a mention of the object (or a direct alias) is a
// use-after-Put, and a release while already may-released is a double
// Put. Releases through helpers are recognized via the ReleasesParams
// summaries, so 2-deep recycle chains count.
//
// Retention is checked structurally for functions that do release the
// object (a function that never releases transfers ownership, which is
// poolbalance's business): an alias escaping via a struct/field store,
// a channel send, an append into caller-visible storage, a goroutine
// capture (a go statement or a closure handed to a goroutine-spawning
// helper), or a reference-typed return while a deferred release
// repools the object.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "a pooled object must not be used or retained after its Put: no " +
		"use-after-release on any path, no double Put, no escaping aliases",
	Run: runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	if !poolPackage(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			checkPoolEscape(pass, body)
		})
	}
	return nil
}

// escState is the two-bit may-lifetime of one pooled object.
type escState uint8

const (
	escLive     escState = 1 << iota // checked out on some path
	escReleased                      // released on some path
)

func joinEsc(a, b escState) escState { return a | b }

func checkPoolEscape(pass *Pass, body *ast.BlockStmt) {
	c := &poolCtx{info: pass.Pkg.Info, mod: pass.Mod}

	var acquires []acquire
	seen := map[types.Object]bool{}
	sameFuncInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if !c.acquireExpr(as.Rhs[0]) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := assignee(c.info, id); obj != nil && !seen[obj] {
				seen[obj] = true
				acquires = append(acquires, acquire{obj: obj, stmt: as})
			}
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	cfg := BuildCFG(body)
	for _, acq := range acquires {
		e := &escCheck{pass: pass, c: c, body: body, obj: acq.obj}
		e.collectAliases()
		e.check(cfg, acq)
	}
}

// escCheck is the per-object state of one poolescape run.
type escCheck struct {
	pass *Pass
	c    *poolCtx
	body *ast.BlockStmt
	obj  types.Object
	// aliases is the may-alias set: the object plus every variable
	// directly copied from it.
	aliases map[types.Object]bool
}

// collectAliases closes the direct-copy relation x := s / x = s over
// the body (flow-insensitive, so it is a may-alias set).
func (e *escCheck) collectAliases() {
	e.aliases = map[types.Object]bool{e.obj: true}
	for changed := true; changed; {
		changed = false
		sameFuncInspect(e.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				src, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || !e.aliases[e.c.info.Uses[src]] {
					continue
				}
				dst, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := assignee(e.c.info, dst); obj != nil && !e.aliases[obj] {
					e.aliases[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// mentionsAlias reports whether the subtree references any alias.
func (e *escCheck) mentionsAlias(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && e.aliases[e.c.info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// releasesAlias reports whether the call releases any alias of the
// object (directly or through a releasing helper).
func (e *escCheck) releasesAlias(call *ast.CallExpr) bool {
	for obj := range e.aliases {
		if e.c.releaseCall(call, obj) {
			return true
		}
	}
	return false
}

// aliasRooted reports whether expr denotes the aliased object or
// memory reached through it: the alias itself, or a selector/index/
// slice/deref chain rooted at it.
func (e *escCheck) aliasRooted(expr ast.Expr) bool {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e.aliases[e.c.info.Uses[x]]
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			expr = x.X
		default:
			return false
		}
	}
}

func (e *escCheck) check(cfg *CFG, acq acquire) {
	deferred := false
	for _, ds := range cfg.Defers {
		for obj := range e.aliases {
			if deferReleases(e.c, ds, obj) {
				deferred = true
			}
		}
	}
	inline := false
	sameFuncInspect(e.body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && e.releasesAlias(call) {
			inline = true
		}
		return !inline
	})
	releases := deferred || inline

	if releases {
		e.checkEscapes(deferred)
	}
	if inline {
		e.checkFlow(cfg, acq)
	}
}

// checkEscapes reports aliases that outlive the function's own release
// of the object.
func (e *escCheck) checkEscapes(deferred bool) {
	name := e.obj.Name()
	sameFuncInspect(e.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if e.mentionsAlias(n) {
				e.pass.Reportf(n.Pos(),
					"pooled %s is captured by a goroutine but released by this function; the goroutine may use it after Put", name)
			}
		case *ast.SendStmt:
			if e.aliasRooted(n.Value) {
				e.pass.Reportf(n.Pos(),
					"pooled %s escapes through a channel send but is released by this function", name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) || !e.aliasRooted(rhs) {
					continue
				}
				lhs := ast.Unparen(n.Lhs[i])
				if _, plain := lhs.(*ast.Ident); plain || e.aliasRooted(lhs) {
					continue // local alias copy / internal mutation
				}
				e.pass.Reportf(n.Pos(),
					"pooled %s is stored into %s but released by this function; the stored alias outlives the Put", name, describeLhs(lhs))
			}
		case *ast.ReturnStmt:
			if !deferred {
				return true // release-then-return paths are use-after-Put's business
			}
			for _, res := range n.Results {
				if e.aliasRooted(res) && referenceTyped(e.c.info, res) {
					e.pass.Reportf(n.Pos(),
						"pooled %s (or memory it owns) is returned while a deferred release repools it", name)
				}
			}
		case *ast.CallExpr:
			e.checkCallEscape(n, name)
		}
		return true
	})
}

// checkCallEscape flags an alias retained through a call: appended into
// caller-visible storage, or captured by a closure handed to a
// goroutine-spawning helper (the fanout/hedged shape).
func (e *escCheck) checkCallEscape(call *ast.CallExpr, name string) {
	if calleeName(call) == "append" && len(call.Args) > 1 {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := e.c.info.Uses[id].(*types.Builtin); isBuiltin {
				for _, arg := range call.Args[1:] {
					if e.aliasRooted(arg) {
						e.pass.Reportf(arg.Pos(),
							"pooled %s is retained via append but released by this function", name)
					}
				}
			}
		}
	}

	callee, _ := staticCallee(e.c.info, call)
	cfi := e.c.mod.FuncOf(callee)
	if cfi == nil || !cfi.Summary.SpawnsGoroutine {
		return
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		if e.mentionsAlias(lit.Body) {
			e.pass.Reportf(call.Pos(),
				"pooled %s is captured by a closure passed to %s (which spawns goroutines) but released by this function", name, cfi.Name())
		}
	}
}

// checkFlow runs the lifetime flow: use-after-Put and double Put on any
// path. Deferred releases run at exit and are excluded.
func (e *escCheck) checkFlow(cfg *CFG, acq acquire) {
	type report struct {
		pos token.Pos
		msg string
	}
	var reports []report
	reporting := false

	transfer := func(b *CFGBlock, in escState) escState {
		st := in
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			// Classify the node: release, re-acquire, or plain mention.
			released := false
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && e.releasesAlias(call) {
					released = true
				}
				return !released
			})
			switch {
			case released:
				if st&escReleased != 0 && reporting {
					reports = append(reports, report{n.Pos(),
						e.obj.Name() + " may already be released on this path; double Put returns the same object to the pool twice"})
				}
				st = escReleased
			case e.isReacquire(n):
				st = escLive
			case e.mentionsAlias(n):
				if st&escReleased != 0 && reporting {
					reports = append(reports, report{n.Pos(),
						"pooled " + e.obj.Name() + " is used on a path where it was already released (use after Put)"})
				}
			}
		}
		return st
	}

	in := ForwardFlow(cfg, escState(0), joinEsc, transfer)

	reporting = true
	for _, b := range cfg.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		transfer(b, st)
	}
	seen := map[token.Pos]bool{}
	for _, r := range reports {
		if seen[r.pos] {
			continue
		}
		seen[r.pos] = true
		e.pass.Reportf(r.pos, "%s", r.msg)
	}
}

// isReacquire matches a fresh acquire assignment into the tracked
// object (or an alias), which resets the lifetime to live.
func (e *escCheck) isReacquire(n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || !e.c.acquireExpr(as.Rhs[0]) {
		return false
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := assignee(e.c.info, id)
	return obj != nil && e.aliases[obj]
}

// referenceTyped reports whether the expression's type shares memory
// when returned: pointers, slices, maps, channels, funcs, interfaces.
func referenceTyped(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// describeLhs renders a store target for diagnostics.
func describeLhs(lhs ast.Expr) string {
	if k := exprKey(lhs); k != "" {
		return k
	}
	switch lhs.(type) {
	case *ast.IndexExpr:
		return "an element store"
	case *ast.StarExpr:
		return "a pointer store"
	}
	return "a field store"
}
