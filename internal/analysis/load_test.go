package analysis

import (
	"strings"
	"testing"
)

// TestLoadModule smoke-tests the loader over the real module: every
// package must parse, type-check without stubbed imports, and carry
// usable type info.
func TestLoadModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "repro" {
		t.Fatalf("module path = %q, want repro", loader.ModulePath)
	}
	pkgs, err := loader.LoadAll(loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		seen[pkg.ImportPath] = true
		for _, te := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.ImportPath, te)
		}
		if pkg.Types == nil || len(pkg.Info.Types) == 0 {
			t.Errorf("%s: missing type info", pkg.ImportPath)
		}
	}
	for _, want := range []string{"repro", "repro/internal/core", "repro/internal/rng", "repro/cmd/simlint"} {
		if !seen[want] {
			t.Errorf("package %s not loaded", want)
		}
	}
	if stubs := loader.Stubs(); len(stubs) > 0 {
		t.Errorf("stubbed imports on the real module: %v", stubs)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.ImportPath, "testdata") {
			t.Errorf("LoadAll must skip testdata, loaded %s", pkg.ImportPath)
		}
	}
}

// TestRunCleanOnModule is the in-process version of the make-check gate:
// every analyzer must be clean over the whole repository. The module is
// built once over every loaded package and shared across the per-package
// passes, exactly as cmd/simlint does — the interprocedural analyzers
// need the cross-package bodies (a single-package view would treat
// module-local callees as unverifiable externals).
func TestRunCleanOnModule(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(loader.ModuleRoot)
	if err != nil {
		t.Fatal(err)
	}
	mod := BuildModule(loader.Packages())
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg, Analyzers(), RunOptions{Mod: mod})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
