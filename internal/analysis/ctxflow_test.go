package analysis

import "testing"

func TestCtxFlowFixture(t *testing.T) {
	runFixture(t, CtxFlow, "ctxflow")
}
