package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField guards fields that are published or mutated atomically:
// the snapshot pointer in DynamicEngine (atomic.Pointer[Snapshot]) and
// the tally cache's slot array ([]atomic.Pointer[tallyEntry]) are read
// lock-free on the query hot path, so a single plain load or store
// anywhere reintroduces the data race the whole design exists to avoid.
//
// Two classes of field are tracked:
//
//   - fields whose type is one of the sync/atomic value types
//     (atomic.Bool, atomic.Int64, atomic.Pointer[T], ...), directly or
//     as a slice/array element. These must only be touched through their
//     method set or by taking their address; assigning or copying the
//     value compiles (go vet's copylocks does not always catch it) but
//     tears the atomicity.
//   - plain fields that are passed by address to a sync/atomic function
//     (atomic.LoadInt64(&x.f), ...) anywhere in the package. Every other
//     access to such a field must go through sync/atomic too; a plain
//     read races with the atomic writers.
//
// Exemption: values still under construction are not shared yet. A field
// access whose receiver chain is rooted at a local variable that was
// freshly constructed in this function (composite literal or new()) and
// that never escapes to a goroutine (the GoCaptured fact) is allowed —
// this is how constructors initialize atomic state before publishing.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "a field accessed via sync/atomic (atomic.* type or atomic.XxxInt64(&f)) must " +
		"never be read or written plainly; use the atomic API on every access",
	Run: runAtomicField,
}

// atomicValueTypes are the sync/atomic value types (Go 1.19+ API).
var atomicValueTypes = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// atomicFuncs are the package-level sync/atomic functions that take the
// address of the shared word as their first argument.
func isAtomicFuncName(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap"} {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// isAtomicValueType reports whether t is a sync/atomic value type.
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicValueTypes[obj.Name()]
}

// atomicContainerKind classifies a field type: the atomic value itself,
// a slice/array of atomic values, or neither.
type atomicKind uint8

const (
	notAtomic atomicKind = iota
	atomicScalar
	atomicSliceOf
)

func classifyAtomicField(t types.Type) atomicKind {
	if isAtomicValueType(t) {
		return atomicScalar
	}
	var elem types.Type
	switch t := t.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	}
	if elem != nil && isAtomicValueType(elem) {
		return atomicSliceOf
	}
	return notAtomic
}

func runAtomicField(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1 over the whole package: collect the tracked field sets and
	// the &x.f operands sanctioned by appearing inside an atomic.* call.
	typed := map[*types.Var]atomicKind{}    // fields with atomic.* (element) type
	opped := map[*types.Var]bool{}          // plain fields used via atomic.XxxT(&f)
	sanctioned := map[*ast.UnaryExpr]bool{} // the &f operands of those calls
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					for _, name := range field.Names {
						v, ok := info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if k := classifyAtomicField(v.Type()); k != notAtomic {
							typed[v] = k
						}
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !pkgIdent(info, sel.X, "atomic") || !isAtomicFuncName(sel.Sel.Name) {
					return true
				}
				for _, arg := range n.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					if fv := selectedField(info, ue.X); fv != nil {
						opped[fv] = true
						sanctioned[ue] = true
					}
				}
			}
			return true
		})
	}
	if len(typed) == 0 && len(opped) == 0 {
		return nil
	}

	// Pass 2: classify every access to a tracked field by its syntactic
	// context, per function so the fresh-local exemption has a scope.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fresh := freshLocals(info, fd.Body)
			checkAtomicAccesses(pass, fd.Body, typed, opped, sanctioned, fresh)
		}
	}
	return nil
}

// selectedField returns the struct field a selector chain ultimately
// names (x.f, (*x).f, x.y[i].f → f's *types.Var), or nil.
func selectedField(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	// Package-qualified selector or similar: not a field.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// freshLocals returns the local variables of body that are initialized
// from a composite literal, &literal, or new(T) and are never captured by
// a goroutine: values still private to this function, whose atomic fields
// may be initialized plainly before publication.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	captured := GoCaptured(info, body)
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if isFreshExpr(as.Rhs[i]) && !captured[obj] {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

// isFreshExpr matches the construction forms that yield a value no one
// else can reference yet: T{...}, &T{...}, new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return e.Op == token.AND && ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// checkAtomicAccesses walks one function, keeping a parent stack so each
// tracked-field selector can be judged by the expression it sits in.
func checkAtomicAccesses(pass *Pass, body *ast.BlockStmt, typed map[*types.Var]atomicKind, opped map[*types.Var]bool, sanctioned map[*ast.UnaryExpr]bool, fresh map[types.Object]bool) {
	info := pass.Pkg.Info
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fv := selectedField(info, sel)
		if fv == nil {
			return true
		}
		kind, isTyped := typed[fv]
		if !isTyped && !opped[fv] {
			return true
		}
		if rootedAtFresh(info, sel, fresh) {
			return true
		}
		// stack[len-1] == sel itself; the parent is one earlier.
		parents := stack[:len(stack)-1]
		if !isTyped {
			checkOppedUse(pass, sel, fv, parents, sanctioned)
			return true
		}
		switch kind {
		case atomicScalar:
			checkAtomicValueUse(pass, sel, fv, sel, parents)
		case atomicSliceOf:
			checkAtomicSliceUse(pass, sel, fv, parents)
		}
		return true
	})
}

// rootedAtFresh reports whether the selector chain's root identifier is a
// fresh, goroutine-free local (constructor exemption).
func rootedAtFresh(info *types.Info, sel *ast.SelectorExpr, fresh map[types.Object]bool) bool {
	e := ast.Expr(sel)
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && fresh[obj]
		default:
			return false
		}
	}
}

// parentOf returns the innermost enclosing node of interest and the node
// directly containing child.
func directParent(parents []ast.Node) ast.Node {
	if len(parents) == 0 {
		return nil
	}
	return parents[len(parents)-1]
}

// checkOppedUse: a plain field used via atomic.XxxT(&f) elsewhere — the
// only legal appearance is as the sanctioned &f operand of such a call.
func checkOppedUse(pass *Pass, sel *ast.SelectorExpr, fv *types.Var, parents []ast.Node, sanctioned map[*ast.UnaryExpr]bool) {
	p := directParent(parents)
	if ue, ok := p.(*ast.UnaryExpr); ok && ue.Op == token.AND && sanctioned[ue] {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"field %s is accessed via sync/atomic elsewhere in this package; this plain access races with the atomic ones",
		fv.Name())
}

// checkAtomicValueUse judges one use of an atomic.* value (the field
// itself or one element of an atomic slice field). at is the expression
// whose parent chain is judged; report positions use sel.
func checkAtomicValueUse(pass *Pass, sel *ast.SelectorExpr, fv *types.Var, at ast.Expr, parents []ast.Node) {
	p := directParent(parents)
	switch p := p.(type) {
	case *ast.SelectorExpr:
		// x.f.Load(...) — method access on the atomic value. The atomic
		// types expose nothing but their method set, so any selector off
		// the value is the sanctioned API.
		if p.X == at {
			return
		}
	case *ast.UnaryExpr:
		// &x.f — address taken (to pass the atomic value by pointer).
		if p.Op == token.AND && p.X == at {
			return
		}
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == at {
				pass.Reportf(sel.Sel.Pos(),
					"plain store to atomic field %s; use %s.Store (or CompareAndSwap)", fv.Name(), fv.Name())
				return
			}
		}
	}
	pass.Reportf(sel.Sel.Pos(),
		"plain read of atomic field %s copies the value and tears atomicity; use %s.Load", fv.Name(), fv.Name())
}

// checkAtomicSliceUse judges a use of a slice-of-atomic field: the slice
// header itself is freely copyable (len, pass, reslice, reassign), only
// element accesses must go through the atomic API.
func checkAtomicSliceUse(pass *Pass, sel *ast.SelectorExpr, fv *types.Var, parents []ast.Node) {
	p := directParent(parents)
	ix, ok := p.(*ast.IndexExpr)
	if !ok || ix.X != sel {
		// Header-level use (make/assign/len/range without value): allowed;
		// range with a value copies elements, which tears them.
		if rs, ok := p.(*ast.RangeStmt); ok && rs.X == sel && rs.Value != nil {
			pass.Reportf(sel.Sel.Pos(),
				"ranging over atomic slice field %s with a value copies its elements; index and use .Load", fv.Name())
		}
		return
	}
	// Element access x.f[i]: judge the IndexExpr by its own parent.
	checkAtomicValueUse(pass, sel, fv, ix, parents[:len(parents)-1])
}
