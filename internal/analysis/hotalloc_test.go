package analysis

import (
	"strings"
	"testing"
)

func TestHotAlloc(t *testing.T) {
	runFixture(t, HotAlloc, "hotalloc")
}

// TestHotAllocChains pins the exact chain rendering: the two-deep
// cross-package diagnostic must name every hop in order.
func TestHotAllocChains(t *testing.T) {
	root, loader := loadFixtureModule(t, "hotalloc")
	mod := BuildModule(loader.Packages())
	var dep *Package
	for _, pkg := range loader.Packages() {
		if strings.HasSuffix(pkg.ImportPath, "/dep") {
			dep = pkg
		}
	}
	if dep == nil {
		t.Fatal("dep subpackage not loaded; fixture import missing?")
	}
	diags, err := RunPackage(dep, []*Analyzer{HotAlloc}, RunOptions{Mod: mod})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("dep diagnostics = %v, want exactly one", diags)
	}
	if want := "[via deepRoot → mid → Grow]"; !strings.Contains(diags[0].Message, want) {
		t.Errorf("chain rendering: got %q, want substring %q", diags[0].Message, want)
	}
	_ = root
}
