package analysis

import (
	"go/ast"
	"go/types"
)

// dataflow.go holds the solvers that run over a CFG (cfg.go): a generic
// forward worklist solver, the two-point pairing lattice shared by
// poolbalance and lockbalance, reaching definitions (used by ctxflow to
// decide whether a context variable still derives from the caller's ctx),
// and the escape-to-goroutine fact (used by atomicfield to exempt
// unpublished values under construction).

// pairState is the lattice of a must-pair analysis: is the resource
// (scratch buffer, mutex) held at this point on every path, no path, or
// does it depend on the path taken?
type pairState uint8

const (
	pairBottom pairState = iota // unvisited
	pairFree                    // released / not yet acquired on all paths
	pairHeld                    // acquired and not released on all paths
	pairMixed                   // held on some paths, free on others
)

func (s pairState) String() string {
	switch s {
	case pairFree:
		return "free"
	case pairHeld:
		return "held"
	case pairMixed:
		return "mixed"
	}
	return "bottom"
}

// joinPair merges the states flowing in from two predecessors.
func joinPair(a, b pairState) pairState {
	switch {
	case a == pairBottom:
		return b
	case b == pairBottom:
		return a
	case a == b:
		return a
	default:
		return pairMixed
	}
}

// ForwardFlow solves a forward dataflow problem over the blocks of c
// reachable from Entry and returns each visited block's entry fact.
// transfer must be a pure function of (block, in); join must be monotone
// over a finite lattice or the worklist will not terminate.
func ForwardFlow[S comparable](c *CFG, entry S, join func(S, S) S, transfer func(b *CFGBlock, in S) S) map[*CFGBlock]S {
	in := map[*CFGBlock]S{c.Entry: entry}
	work := []*CFGBlock{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			cur, seen := in[s]
			next := out
			if seen {
				next = join(cur, out)
			}
			if !seen || next != cur {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	return in
}

// A Definition is one point where a variable receives a value: an
// assignment, a var declaration, a range clause, or (with Node nil) a
// function parameter. Rhs is the defining expression when the form has a
// one-to-one right-hand side, nil otherwise (parameters, ranges, x, y :=
// f() forms).
type Definition struct {
	Var  *types.Var
	Node ast.Node
	Rhs  ast.Expr
}

// A DefSet maps each variable to the set of definitions that may reach a
// program point.
type DefSet map[*types.Var]map[*Definition]bool

func (d DefSet) clone() DefSet {
	out := make(DefSet, len(d))
	for v, defs := range d {
		m := make(map[*Definition]bool, len(defs))
		for def := range defs {
			m[def] = true
		}
		out[v] = m
	}
	return out
}

// kill replaces v's reaching definitions with the single def.
func (d DefSet) kill(def *Definition) {
	d[def.Var] = map[*Definition]bool{def: true}
}

// merge unions src into d, reporting whether d grew.
func (d DefSet) merge(src DefSet) bool {
	changed := false
	for v, defs := range src {
		dst, ok := d[v]
		if !ok {
			dst = make(map[*Definition]bool, len(defs))
			d[v] = dst
		}
		for def := range defs {
			if !dst[def] {
				dst[def] = true
				changed = true
			}
		}
	}
	return changed
}

// ReachingDefs computes, for every block reachable from c's entry, which
// definitions of each variable may reach the block's start. params seed
// the entry fact with parameter definitions (Node nil). The returned all
// slice lists every definition discovered, in block/node order.
func ReachingDefs(c *CFG, info *types.Info, params []*types.Var) (entry map[*CFGBlock]DefSet, all []*Definition) {
	// Pre-compute each block's definitions in execution order.
	blockDefs := make(map[*CFGBlock][]*Definition, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			defs := nodeDefs(info, n)
			blockDefs[b] = append(blockDefs[b], defs...)
			all = append(all, defs...)
		}
	}

	seed := DefSet{}
	for _, p := range params {
		seed.kill(&Definition{Var: p})
	}

	entry = map[*CFGBlock]DefSet{c.Entry: seed}
	work := []*CFGBlock{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := entry[b].clone()
		for _, def := range blockDefs[b] {
			out.kill(def)
		}
		for _, s := range b.Succs {
			cur, seen := entry[s]
			if !seen {
				entry[s] = out.clone()
				work = append(work, s)
				continue
			}
			if cur.merge(out) {
				work = append(work, s)
			}
		}
	}
	return entry, all
}

// DefsAt applies the definitions of b's nodes strictly before the node
// containing `at` to the block-entry fact in, yielding the definitions
// reaching `at`. (The containing node's own definitions are excluded:
// in `x := f(x)` the argument sees the previous x.)
func DefsAt(b *CFGBlock, in DefSet, info *types.Info, at ast.Node) DefSet {
	out := in.clone()
	for _, n := range b.Nodes {
		if containsNode(n, at) {
			break
		}
		for _, def := range nodeDefs(info, n) {
			out.kill(def)
		}
	}
	return out
}

// containsNode reports whether sub occurs in the subtree rooted at n.
func containsNode(n, sub ast.Node) bool {
	if n == sub {
		return true
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found || m == nil {
			return false
		}
		if m == sub {
			found = true
			return false
		}
		return true
	})
	return found
}

// nodeDefs extracts the variable definitions a single shallow CFG node
// performs, in evaluation order. Only named local variables are tracked;
// blank and field/index targets contribute nothing.
func nodeDefs(info *types.Info, n ast.Node) []*Definition {
	var defs []*Definition
	addIdent := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		defs = append(defs, &Definition{Var: v, Node: n, Rhs: rhs})
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			switch {
			case len(n.Lhs) == len(n.Rhs):
				rhs = n.Rhs[i]
			case len(n.Rhs) == 1:
				// a, b := f(x): both variables derive from the one call.
				rhs = n.Rhs[0]
			}
			addIdent(id, rhs)
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			addIdent(id, nil)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				switch {
				case len(vs.Names) == len(vs.Values):
					rhs = vs.Values[i]
				case len(vs.Values) == 1:
					rhs = vs.Values[0]
				}
				addIdent(name, rhs)
			}
		}
	case *ast.RangeStmt:
		if id, ok := ast.Unparen(n.Key).(*ast.Ident); ok && n.Key != nil {
			addIdent(id, nil)
		}
		if n.Value != nil {
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok {
				addIdent(id, nil)
			}
		}
	}
	return defs
}

// GoCaptured returns every object referenced from inside a goroutine
// spawned in body (the `go` call's arguments and, for function literals,
// the literal's body). Anything in the set may be accessed concurrently
// with the spawning function, so analyzers must not treat it as privately
// owned.
func GoCaptured(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	caps := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		ast.Inspect(gs.Call, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					caps[obj] = true
				}
			}
			return true
		})
		return true
	})
	return caps
}
