package analysis

import "testing"

func TestPoolEscapeFixture(t *testing.T) {
	runFixture(t, PoolEscape, "poolescape")
}
