package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Analyzers returns the full simlint rule set in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoRand,
		MapIter,
		SeedMix,
		PoolBalance,
		GoSpawn,
		AtomicField,
		LockBalance,
		CtxFlow,
		SealWrite,
		UnsafeConfine,
		HotAlloc,
		WireTaint,
		PoolEscape,
	}
}

// ByName resolves a comma-separated rule list; unknown names return nil
// and the offending name.
func ByName(list string) ([]*Analyzer, string) {
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range Analyzers() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, name
		}
	}
	return out, ""
}

// fixturePkg reports whether the package is an analyzer test fixture
// (anything under a testdata directory). Scoped analyzers treat fixtures
// as always in scope so their rules can be exercised outside the real
// package layout.
func fixturePkg(pkg *Package) bool {
	return strings.Contains(pkg.ImportPath, "testdata/") ||
		strings.Contains(pkg.Dir, "testdata")
}

// eachFunc invokes fn once per function body in the file: every FuncDecl
// and every FuncLit, each with its own body. A FuncLit is analyzed as an
// independent function (its returns and defers are its own), which is how
// the worker-pool closures in internal/core behave.
func eachFunc(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd.Name.Name, fd.Body)
		name := fd.Name.Name
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(name+"·func", lit.Body)
			}
			return true
		})
	}
}

// sameFuncInspect walks the statements of body that belong to this
// function, never descending into nested FuncLits.
func sameFuncInspect(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// pkgIdent reports whether expr is a reference to the named import, e.g.
// pkgIdent(info, x, "time") for the x in x.Now().
func pkgIdent(info *types.Info, expr ast.Expr, name string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		imported := pn.Imported()
		return imported.Name() == name || strings.HasSuffix(imported.Path(), "/"+name)
	}
	// Fallback when type info is incomplete: trust the identifier text.
	return id.Name == name && info.Uses[id] == nil
}

// mentionsObj reports whether the subtree references the given object.
func mentionsObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsKey reports whether any subexpression of n renders (via
// exprKey) to the given key; used to track selector expressions like
// s.out where there is no single object identity.
func mentionsKey(n ast.Node, key string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if e, ok := x.(ast.Expr); ok && exprKey(e) == key {
			found = true
		}
		return !found
	})
	return found
}

// exprKey renders simple ident/selector chains ("s.out", "e.pool") to a
// comparable string; other expression forms yield "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	}
	return ""
}

// calleeName returns the final name of a call target: "Sort" for
// sort.Slice is "Slice", for x.Sort() is "Sort", for sortScored(..) is
// "sortScored".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
