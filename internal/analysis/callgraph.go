package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// callgraph.go builds the module-wide interprocedural layer the
// cross-function analyzers run on: a static call graph over every
// function body the loader produced, per-function effect summaries
// (summary.go) propagated to a fixed point through that graph, and the
// //lint:hotpath root set the hotalloc analyzer (hotalloc.go) starts
// from.
//
// The graph is deliberately static-only. A call whose callee cannot be
// resolved to a single declared function — a call through a function
// value, or dynamic dispatch through an interface — contributes no edge;
// instead the call site is recorded so analyzers that need soundness
// (hotalloc) can report it as unverifiable rather than silently assume
// it benign. Function literals are not graph nodes: creating one is an
// effect of the enclosing function (a closure allocation), and calling
// one is a dynamic call, so their bodies never execute "inside" the
// enclosing function as far as the summaries are concerned.

// hotpathPrefix marks a function declaration as a hot-path root: every
// allocation site reachable from it through the call graph is a hotalloc
// diagnostic. The marker goes in the function's doc comment, optionally
// followed by a reason.
const hotpathPrefix = "//lint:hotpath"

// A Module is the cross-package view of one load: every package the
// loader type-checked, every declared function body, the call edges
// between them, and the computed summaries. It is immutable after
// BuildModule, so per-package analyzer goroutines share it freely.
type Module struct {
	// Pkgs lists the packages in sorted import-path order.
	Pkgs []*Package
	// Funcs lists every declared function with a body, in deterministic
	// order (packages sorted, files and declarations in source order).
	Funcs []*FuncInfo

	byObj map[*types.Func]*FuncInfo

	// hotOnce guards the lazily computed hot-path reachability (the BFS
	// is only needed when hotalloc actually runs).
	hotOnce  sync.Once
	hotChain map[*FuncInfo][]*FuncInfo
}

// A FuncInfo is one declared function body in the module.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Hot marks a //lint:hotpath root.
	Hot bool
	// Sanitized marks a //lint:sanitized helper: callers may trust its
	// arguments and results as bounds-checked (taint.go).
	Sanitized bool
	// Callees are the statically resolved calls made by this body
	// (excluding nested function literals), in source order. Calls to
	// functions outside the module (no body loaded) have Info == nil.
	Callees []CallEdge
	// Summary holds the computed effect summary (summary.go).
	Summary Summary

	// taint is the precomputed local taint graph (taint.go).
	taint *taintLocal
}

// Name renders the function for diagnostics: "stepChunk" for package
// functions, "WalkTable.StepWalks" for methods.
func (fi *FuncInfo) Name() string {
	if recv := fi.Obj.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fi.Obj.Name()
		}
	}
	return fi.Obj.Name()
}

// A CallEdge is one statically resolved call site.
type CallEdge struct {
	// Callee is the called function's declared object. Never nil.
	Callee *types.Func
	// Info is the callee's module-local FuncInfo, nil for functions
	// whose body the loader did not load (standard library).
	Info *FuncInfo
	// Call is the call expression, for diagnostics.
	Call *ast.CallExpr
}

// BuildModule assembles the interprocedural layer over the given
// packages: the call graph, the hotpath root set, and the fixed-point
// effect summaries. The input order does not matter; packages are
// sorted by import path so every derived ordering is deterministic.
func BuildModule(pkgs []*Package) *Module {
	mod := &Module{
		Pkgs:  append([]*Package{}, pkgs...),
		byObj: map[*types.Func]*FuncInfo{},
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].ImportPath < mod.Pkgs[j].ImportPath })

	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg, Hot: hotpathMarked(fd), Sanitized: sanitizedMarked(fd)}
				mod.Funcs = append(mod.Funcs, fi)
				mod.byObj[obj] = fi
			}
		}
	}

	// Second pass: with every declared function known, resolve call
	// edges and compute direct summaries, then propagate to fixed point.
	for _, fi := range mod.Funcs {
		collectCalls(fi, mod)
		summarizeDirect(fi, mod)
		taintDirect(fi, mod)
	}
	propagateSummaries(mod)
	propagateTaint(mod)
	return mod
}

// FuncOf returns the module's FuncInfo for a declared function, or nil
// for functions without a loaded body.
func (m *Module) FuncOf(obj *types.Func) *FuncInfo {
	if m == nil || obj == nil {
		return nil
	}
	return m.byObj[obj]
}

// hotpathMarked reports whether the declaration's doc comment carries
// the //lint:hotpath marker.
func hotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathPrefix || strings.HasPrefix(text, hotpathPrefix+" ") {
			return true
		}
	}
	return false
}

// collectCalls records fi's statically resolved call edges, in source
// order, excluding calls inside nested function literals (a literal's
// body is not executed by this function; creating it is summarized as an
// allocation instead). Unresolvable calls land in the summary's dynamic
// set via summarizeDirect.
func collectCalls(fi *FuncInfo, mod *Module) {
	info := fi.Pkg.Info
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(info, call)
		if callee == nil {
			return true
		}
		fi.Callees = append(fi.Callees, CallEdge{Callee: callee, Info: mod.byObj[callee], Call: call})
		return true
	})
}

// staticCallee resolves the single declared function a call must reach,
// or reports the call as dynamic (a function value, an interface method,
// or anything else whose target depends on runtime state). Conversions
// and builtins resolve to (nil, false): they are not calls into user
// code at all.
func staticCallee(info *types.Info, call *ast.CallExpr) (callee *types.Func, dynamic bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil, false // conversion
	}
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](...) and m.f[T](...).
	switch f := fun.(type) {
	case *ast.IndexExpr:
		if isFuncExpr(info, f.X) {
			fun = ast.Unparen(f.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(f.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[f].(type) {
		case *types.Func:
			return o, false
		case *types.Builtin, *types.TypeName, *types.Nil, nil:
			return nil, false
		default: // *types.Var: a call through a function value
			return nil, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, true // calling a func-typed field
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, true
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil, true // dynamic dispatch
			}
			return fn, false
		}
		// Qualified identifier: pkg.Func or pkg.Var.
		switch o := info.Uses[f.Sel].(type) {
		case *types.Func:
			return o, false
		case *types.TypeName, *types.Builtin, nil:
			return nil, false
		default:
			return nil, true
		}
	}
	// Call of a call result, a type-asserted func, an invoked literal, …
	return nil, true
}

// isFuncExpr reports whether e denotes a function (so an IndexExpr over
// it is a generic instantiation, not a map/slice index yielding a func).
func isFuncExpr(info *types.Info, e ast.Expr) bool {
	switch f := ast.Unparen(e).(type) {
	case *ast.Ident:
		_, ok := info.Uses[f].(*types.Func)
		return ok
	case *ast.SelectorExpr:
		_, ok := info.Uses[f.Sel].(*types.Func)
		return ok
	}
	return false
}

// hotReach returns, for every function reachable from a //lint:hotpath
// root through static call edges, the call chain (root first, the
// function itself last) that first reached it. Computed once per module
// by BFS in deterministic root/edge order, so the reported chain for a
// given tree is stable.
func (m *Module) hotReach() map[*FuncInfo][]*FuncInfo {
	m.hotOnce.Do(func() {
		m.hotChain = map[*FuncInfo][]*FuncInfo{}
		var queue []*FuncInfo
		for _, fi := range m.Funcs {
			if fi.Hot {
				m.hotChain[fi] = []*FuncInfo{fi}
				queue = append(queue, fi)
			}
		}
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			chain := m.hotChain[fi]
			for _, edge := range fi.Callees {
				if edge.Info == nil {
					continue
				}
				if _, seen := m.hotChain[edge.Info]; seen {
					continue
				}
				next := make([]*FuncInfo, len(chain), len(chain)+1)
				copy(next, chain)
				m.hotChain[edge.Info] = append(next, edge.Info)
				queue = append(queue, edge.Info)
			}
		}
	})
	return m.hotChain
}

// chainString renders a hot-reach chain for diagnostics.
func chainString(chain []*FuncInfo) string {
	parts := make([]string, len(chain))
	for i, fi := range chain {
		parts[i] = fi.Name()
	}
	return strings.Join(parts, " → ")
}
