package analysis

import (
	"go/ast"
)

// GoSpawn restricts raw goroutine creation in internal/core and
// internal/router to the approved bounded worker pools. Every
// concurrency site in the engine is a fixed `for w := 0; w < workers;
// w++` fan-out whose determinism has been argued once (per-vertex
// reseeding, per-worker scratches, contiguous or cursor-based
// sharding), and the router's scatter/hedge sites are the same shape
// with the shard count as the bound; a stray `go` elsewhere — and in
// particular one goroutine per work item inside a range loop — is both
// an unbounded-spawn hazard and a new ordering surface that the
// determinism tests were never written to cover.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc: "raw go statements in internal/core and internal/router are allowed only " +
		"inside the approved worker-pool functions, and never one per work item",
	Run: runGoSpawn,
}

// goSpawnAllow names the approved worker-pool functions: each spawns a
// bounded number of goroutines (Params.Workers, the shard count, or
// the hedge attempt cap) from a plain counted loop or on-demand
// launches under a fixed cap.
var goSpawnAllow = map[string]bool{
	"forEachIndexParallel": true, // allpairs.go: atomic-cursor work-item pool (AllTopK, TopKBatch, joins)
	"parallelVertices":     true, // engine.go: contiguous block shards
	"scoreBlockParallel":   true, // query.go: per-block candidate scoring
	"startRefresher":       true, // dynamic.go: the single background snapshot builder
	"fanout":               true, // router/hedge.go: one goroutine per shard, counted scatter
	"hedged":               true, // router/hedge.go: launch-on-demand attempts under a fixed cap
}

// goSpawnScope: the packages whose concurrency shape is pinned — the
// engine and the router's scatter-gather layer.
func goSpawnScope(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	return ok && (rel == "internal/core" || rel == "internal/router")
}

func runGoSpawn(pass *Pass) error {
	if !goSpawnScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			// Track the statement path so a `go` inside a range loop can
			// be distinguished from one inside a counted worker loop.
			var rangeDepth int
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					rangeDepth++
					ast.Inspect(n.Body, walk)
					rangeDepth--
					// Key/value/X already walked enough; skip re-descent.
					return false
				case *ast.GoStmt:
					switch {
					case !goSpawnAllow[name]:
						pass.Reportf(n.Pos(),
							"go statement outside the approved worker pools (%s); route the work through parallelVertices or forEachIndexParallel",
							name)
					case rangeDepth > 0:
						pass.Reportf(n.Pos(),
							"go statement spawns one goroutine per ranged item in %s; use a bounded worker loop instead",
							name)
					}
				}
				return true
			}
			ast.Inspect(fd.Body, walk)
		}
	}
	return nil
}
