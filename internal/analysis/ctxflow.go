package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFlow enforces the end-to-end cancellation contract (DESIGN.md §8):
// once a query carries a context, every layer must keep carrying it, or a
// cancelled request keeps burning CPU in the layers below.
//
// Three rules, scoped to the query/serving packages (module root,
// internal/core, internal/server):
//
//  1. A function that receives a context.Context must pass a ctx-derived
//     value to every callee parameter of type context.Context. Passing
//     context.Background(), nil, or an unrelated context severs the
//     cancellation chain. "ctx-derived" is decided with reaching
//     definitions over the CFG: a local rebound from the parameter
//     (ctx = context.WithValue(ctx, ...), tctx, cancel :=
//     context.WithTimeout(ctx, d)) stays derived; one rebound from
//     Background() does not.
//  2. Such a function must not synthesize context.Background()/TODO() at
//     all — the fallback belongs in the exported non-Ctx wrapper, which
//     is the one place that legitimately has no caller ctx. (Functions
//     without a ctx parameter are exactly those wrappers and are exempt.)
//  3. An unconditional `for {` loop that does work (calls, channel
//     operations) must consult cancellation somewhere in its body —
//     check ctx directly (ctx.Err()/ctx.Done()), pass ctx to a callee
//     that provably checks it (decided by the interprocedural summaries,
//     so a helper like `if stop(ctx) { return }` counts through any
//     number of hops), or select on a done channel — whether or not the
//     surrounding function receives a ctx. Merely mentioning ctx is not
//     enough: passing it to a helper that ignores it checks nothing.
//     Callees outside the module (or reached dynamically) are assumed to
//     honor a ctx they receive, since their bodies are not loaded. These
//     are the serving loops; one that cannot be stopped pins a goroutine
//     for the life of the process.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "ctx-receiving functions must thread ctx to every ctx-accepting callee and never " +
		"synthesize context.Background(); unconditional serving loops must check ctx.Err()/ctx.Done()",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !ctxScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd.Type, fd.Body, nil)
		}
	}
	return nil
}

// ctxScope: the packages on the query path — module root (public API
// wrappers), internal/core (engine), internal/server (HTTP layer),
// internal/router (scatter-gather tier; its hedged-request helper must
// derive every attempt's context from the caller's so cancellation
// reaches losing attempts).
func ctxScope(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	return ok && (rel == "." || rel == "internal/core" ||
		rel == "internal/server" || rel == "internal/router")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams extracts the context.Context parameters of a function type.
func ctxParams(info *types.Info, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// isBackgroundCall matches context.Background() / context.TODO().
func isBackgroundCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return (sel.Sel.Name == "Background" || sel.Sel.Name == "TODO") && pkgIdent(info, sel.X, "context")
}

// checkCtxFunc analyzes one function body. inherited carries the ctx
// variables lexically visible from enclosing functions — a closure inside
// a ctx-receiving function is held to the same contract, because the
// caller's ctx is right there to use.
func checkCtxFunc(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, inherited []*types.Var) {
	info := pass.Pkg.Info
	ctxVars := append(append([]*types.Var{}, inherited...), ctxParams(info, ftype)...)

	// Rule 3 first: it applies even without a ctx in scope.
	checkServingLoops(pass, body, ctxVars)

	// Reaching definitions are built lazily: most functions thread ctx
	// straight through and never need them.
	var cfg *CFG
	var rdEntry map[*CFGBlock]DefSet
	var derivedVars map[*types.Var]bool
	ensureFlow := func() {
		if cfg != nil {
			return
		}
		cfg = BuildCFG(body)
		var all []*Definition
		rdEntry, all = ReachingDefs(cfg, info, ctxVars)
		derivedVars = deriveCtxVars(info, ctxVars, all)
	}

	// Recurse into directly nested closures with the extended ctx set:
	// the ctx variables visible here plus this body's ctx-derived
	// context locals (each recursion handles its own nested literals).
	// The locals matter for the hedged-request shape — a shared
	// WithCancel(ctx) context bound in the enclosing function and
	// captured by attempt closures still carries the caller's
	// cancellation, so closure call sites passing it are compliant.
	closureCtx := ctxVars
	if len(ctxVars) > 0 {
		ensureFlow()
		for v := range derivedVars {
			seen := false
			for _, c := range closureCtx {
				if c == v {
					seen = true
					break
				}
			}
			if !seen {
				closureCtx = append(closureCtx, v)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCtxFunc(pass, lit.Type, lit.Body, closureCtx)
			return false
		}
		return true
	})

	if len(ctxVars) == 0 {
		return
	}

	sameFuncInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Rule 2: no synthesized root contexts here.
		if isBackgroundCall(info, call) {
			sel := call.Fun.(*ast.SelectorExpr)
			pass.Reportf(call.Pos(),
				"context.%s() synthesized in a function that already receives a context; "+
					"thread the caller's ctx (keep the fallback in the non-ctx wrapper)", sel.Sel.Name)
			return true
		}
		// Rule 1: every context.Context parameter of the callee gets a
		// ctx-derived argument.
		sig := callSignature(info, call)
		if sig == nil {
			return true
		}
		params := sig.Params()
		for i := 0; i < params.Len() && i < len(call.Args); i++ {
			if sig.Variadic() && i == params.Len()-1 {
				break
			}
			if !isContextType(params.At(i).Type()) {
				continue
			}
			arg := call.Args[i]
			if isBackgroundCall(info, arg) {
				continue // already reported by rule 2 at the same spot
			}
			ensureFlow()
			if !ctxDerived(info, arg, ctxVars, derivedVars, cfg, rdEntry, call) {
				pass.Reportf(arg.Pos(),
					"callee accepts a context.Context but the argument does not derive from this function's ctx; "+
						"pass ctx (or a context derived from it)")
			}
		}
		return true
	})
}

// callSignature resolves the callee's signature when the callee is a
// function; conversions and type expressions yield nil.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// deriveCtxVars computes, flow-insensitively, the set of context-typed
// variables with at least one ctx-derived definition: the fixpoint of
// "defined from an expression mentioning a derived variable". Used as the
// optimistic seed; the flow-sensitive check below then consults reaching
// definitions at the use site.
func deriveCtxVars(info *types.Info, ctxVars []*types.Var, all []*Definition) map[*types.Var]bool {
	derived := map[*types.Var]bool{}
	for _, v := range ctxVars {
		derived[v] = true
	}
	for changed := true; changed; {
		changed = false
		for _, def := range all {
			if def.Rhs == nil || derived[def.Var] {
				continue
			}
			if isBackgroundCall(info, def.Rhs) {
				continue
			}
			if mentionsAnyVar(info, def.Rhs, derived) {
				derived[def.Var] = true
				changed = true
			}
		}
	}
	return derived
}

func mentionsAnyVar(info *types.Info, n ast.Node, vars map[*types.Var]bool) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
				found = true
			}
		}
		return !found
	})
	return found
}

// defDerived decides whether one reaching definition is ctx-derived.
func defDerived(info *types.Info, def *Definition, ctxVars []*types.Var, derivedVars map[*types.Var]bool) bool {
	if def.Node == nil {
		// Parameter definition: derived iff it is one of the ctx params.
		for _, v := range ctxVars {
			if v == def.Var {
				return true
			}
		}
		return false
	}
	if def.Rhs == nil {
		return false
	}
	if isBackgroundCall(info, def.Rhs) {
		return false
	}
	return mentionsAnyVar(info, def.Rhs, derivedVars)
}

// ctxDerived reports whether the argument expression carries the caller's
// cancellation: every context-typed variable it mentions must have only
// ctx-derived reaching definitions at the call (a ctx parameter's initial
// definition is derived; a rebind from Background() is not).
func ctxDerived(info *types.Info, arg ast.Expr, ctxVars []*types.Var, derivedVars map[*types.Var]bool, cfg *CFG, rdEntry map[*CFGBlock]DefSet, call *ast.CallExpr) bool {
	// Locate the block containing the call to get flow-sensitive defs.
	var blk *CFGBlock
	var defs DefSet
	for _, b := range cfg.Blocks {
		in, reachable := rdEntry[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			if containsNode(n, call) {
				blk = b
				defs = DefsAt(b, in, info, call)
				break
			}
		}
		if blk != nil {
			break
		}
	}
	// Check every context-typed variable the argument mentions.
	sawCtxVar := false
	ok := true
	ast.Inspect(arg, func(x ast.Node) bool {
		id, isIdent := x.(*ast.Ident)
		if !isIdent {
			return true
		}
		v, isVar := info.Uses[id].(*types.Var)
		if !isVar || !isContextType(v.Type()) {
			return true
		}
		sawCtxVar = true
		if defs != nil {
			if reaching, has := defs[v]; has {
				for def := range reaching {
					if !defDerived(info, def, ctxVars, derivedVars) {
						ok = false
					}
				}
				return true
			}
		}
		// No flow information (call in unreachable code, or var defined
		// outside this function): fall back to the optimistic set.
		if !derivedVars[v] {
			ok = false
		}
		return true
	})
	// An argument with no context-typed variable at all (nil literal, a
	// fresh value from some call) does not carry the caller's ctx.
	return sawCtxVar && ok
}

// checkServingLoops flags unconditional for-loops that do blocking work
// without consulting cancellation (rule 3).
func checkServingLoops(pass *Pass, body *ast.BlockStmt, ctxVars []*types.Var) {
	sameFuncInspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond != nil || fs.Init != nil || fs.Post != nil {
			return true
		}
		if !loopDoesWork(fs.Body) {
			return true
		}
		if loopChecksCancel(pass, fs.Body, ctxVars) {
			return true
		}
		pass.Reportf(fs.Pos(),
			"unconditional loop does blocking work but never checks ctx.Err()/ctx.Done() "+
				"(or a done channel); a cancelled query cannot stop it")
		return true
	})
}

// loopDoesWork reports whether the loop body performs calls or channel
// operations (the things that take time or block).
func loopDoesWork(body *ast.BlockStmt) bool {
	found := false
	sameFuncInspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// A bare conversion or builtin like len() is not work, but
			// distinguishing them needs type info we can live without:
			// any call counts.
			found = true
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopChecksCancel reports whether the loop body consults cancellation:
// calls ctx.Err()/ctx.Done() on a visible ctx variable, passes a ctx
// variable to a callee that checks it (per the module summaries; callees
// without a loaded body are trusted), or selects/receives on a channel
// in a way that can exit the loop.
func loopChecksCancel(pass *Pass, body *ast.BlockStmt, ctxVars []*types.Var) bool {
	info := pass.Pkg.Info
	vars := map[*types.Var]bool{}
	for _, v := range ctxVars {
		vars[v] = true
	}
	checked := false
	sameFuncInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !checked
		}
		// Direct check: v.Err() / v.Done() on a visible ctx variable.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && vars[v] {
					checked = true
					return false
				}
			}
		}
		// Indirect check: a ctx variable handed to a callee that consults
		// it. Module callees must prove it via their summary; callees the
		// loader has no body for are assumed to honor the ctx.
		passesCtx := false
		for _, arg := range call.Args {
			if mentionsAnyVar(info, arg, vars) {
				passesCtx = true
				break
			}
		}
		if passesCtx {
			callee, dynamic := staticCallee(info, call)
			if fi := pass.Mod.FuncOf(callee); fi != nil {
				if fi.Summary.ChecksCtx {
					checked = true
				}
			} else if dynamic || callee != nil {
				checked = true
			}
		}
		return !checked
	})
	if checked {
		return true
	}
	// A select with a receive case whose body can leave the loop (return
	// or break) is the done-channel idiom: `case <-d.done: return`.
	found := false
	sameFuncInspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cc := range sel.Body.List {
			cc := cc.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			for _, st := range cc.Body {
				ast.Inspect(st, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.ReturnStmt, *ast.BranchStmt:
						found = true
					}
					return !found
				})
			}
		}
		return !found
	})
	return found
}
