package analysis

import (
	"go/ast"
	"go/types"
	"testing"
)

func fixtureFunc(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found in fixture", name)
	return nil
}

func sigParams(t *testing.T, pkg *Package, fd *ast.FuncDecl) []*types.Var {
	t.Helper()
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		t.Fatalf("no types.Func for %s", fd.Name.Name)
	}
	sig := fn.Type().(*types.Signature)
	var out []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// localVar finds the *types.Var defined with the given name inside fd.
func localVar(t *testing.T, pkg *Package, fd *ast.FuncDecl, name string) *types.Var {
	t.Helper()
	for id, obj := range pkg.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.Name() != name {
			continue
		}
		if id.Pos() >= fd.Pos() && id.End() <= fd.End() {
			return v
		}
	}
	t.Fatalf("local %s not found in %s", name, fd.Name.Name)
	return nil
}

// stmtBlock finds the unique reachable block containing a node matching pred.
func stmtBlock(t *testing.T, cfg *CFG, desc string, pred func(ast.Node) bool) (*CFGBlock, ast.Node) {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return b, n
			}
		}
	}
	t.Fatalf("no block contains %s:\n%s", desc, cfg)
	return nil, nil
}

func TestReachingDefsReassign(t *testing.T) {
	pkg := loadFixture(t, "dataflow")
	fd := fixtureFunc(t, pkg, "reassign")
	cfg := BuildCFG(fd.Body)
	entry, _ := ReachingDefs(cfg, pkg.Info, sigParams(t, pkg, fd))

	retBlock, retStmt := stmtBlock(t, cfg, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	defs := DefsAt(retBlock, entry[retBlock], pkg.Info, retStmt)

	x := localVar(t, pkg, fd, "x")
	if got := len(defs[x]); got != 2 {
		t.Errorf("got %d reaching defs of x at the return, want 2 (x := 1 merged with x = 2)", got)
	}

	// The parameter is seeded as a synthetic definition with Node == nil.
	cond := sigParams(t, pkg, fd)[0]
	condDefs := defs[cond]
	if len(condDefs) != 1 {
		t.Fatalf("got %d reaching defs of param cond, want 1", len(condDefs))
	}
	for d := range condDefs {
		if d.Node != nil {
			t.Errorf("param def has Node %T, want nil (synthetic seed)", d.Node)
		}
	}
}

func TestReachingDefsMultiValue(t *testing.T) {
	pkg := loadFixture(t, "dataflow")
	fd := fixtureFunc(t, pkg, "multiValue")
	cfg := BuildCFG(fd.Body)
	entry, _ := ReachingDefs(cfg, pkg.Info, sigParams(t, pkg, fd))

	retBlock, retStmt := stmtBlock(t, cfg, "return", func(n ast.Node) bool {
		_, ok := n.(*ast.ReturnStmt)
		return ok
	})
	defs := DefsAt(retBlock, entry[retBlock], pkg.Info, retStmt)

	a := localVar(t, pkg, fd, "a")
	b := localVar(t, pkg, fd, "b")
	if got := len(defs[a]); got != 2 {
		t.Errorf("got %d reaching defs of a, want 2 (a, b := pair() merged with a = 3)", got)
	}
	if got := len(defs[b]); got != 1 {
		t.Fatalf("got %d reaching defs of b, want 1", len(defs[b]))
	}
	// a, b := pair() attributes the single multi-value Rhs to every LHS.
	for d := range defs[b] {
		if _, ok := d.Rhs.(*ast.CallExpr); !ok {
			t.Errorf("b's def has Rhs %T, want the pair() CallExpr", d.Rhs)
		}
	}
}

func TestGoCaptured(t *testing.T) {
	pkg := loadFixture(t, "dataflow")
	fd := fixtureFunc(t, pkg, "capture")
	captured := GoCaptured(pkg.Info, fd.Body)

	m := localVar(t, pkg, fd, "m")
	done := localVar(t, pkg, fd, "done")
	n := sigParams(t, pkg, fd)[0]

	if !captured[m] || !captured[done] {
		t.Errorf("m and done are referenced inside the go statement; captured = %v", captured)
	}
	if captured[n] {
		t.Errorf("n is only used outside the goroutine but was marked captured")
	}
}
