package analysis

import "testing"

func TestLockBalanceFixture(t *testing.T) {
	runFixture(t, LockBalance, "lockbalance")
}
