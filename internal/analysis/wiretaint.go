package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireTaint is a forward taint analysis over untrusted wire input. The
// serving tier decodes attacker-controlled frames and HTTP bodies;
// every length, count, offset, or vertex id read off the wire must pass
// a bounds check before it sizes an allocation, indexes a buffer,
// bounds a loop, or limits a read. The binary codec's own checks (the
// 64 MiB frame bound, the per-section count×elem validation) become
// machine-verified instead of convention: delete one and the analyzer
// reports every use downstream of the missing guard.
//
// Sources: encoding/binary byte-order loads, strconv parses of query
// parameters, and encoding/json decodes of request bodies — plus any
// module helper whose summary says it returns or stores wire-derived
// values (taint.go). Sinks: make lengths/capacities, slice/array/
// string indexing and slice bounds, for-loop bound conditions, io read
// limits (io.LimitReader/CopyN), and arguments to module helpers whose
// summary says the parameter reaches such a sink unguarded. Sanitizers:
// a comparison mentioning the value bare (under conversions,
// arithmetic, or len/cap — not as someone's index), or a call to a
// //lint:sanitized helper, clears the taint on that path.
//
// The check is path-sensitive: it runs a may-taint flow over the CFG,
// so a guard sanitizes only the paths it dominates, and a join where
// any incoming path is unguarded stays tainted. Values tainted through
// an enclosing function's variables are not visible inside nested
// function literals (each literal is analyzed as its own function).
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc: "a length/count/offset derived from wire input must pass a bounds check " +
		"before reaching make, an index, a loop bound, or an io read limit",
	Run: runWireTaint,
}

func runWireTaint(pass *Pass) error {
	if !taintScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			checkWireTaint(pass, body)
		})
	}
	return nil
}

// taintMark is a key's per-path status. Absent means never tainted;
// sanitized overrides a tainted dot-prefix (the guard mentioned the
// parent). Numeric order is the may-join lattice order — tainted is the
// top, so merge's raise() can never let a sanitized mark shadow a
// tainted one.
type taintMark uint8

const (
	markSanitized taintMark = iota + 1
	markTainted
)

// taintFlowState maps exprKeys to their marks. Effective status of a
// key walks its dot-prefixes longest-first; the first mark wins.
type taintFlowState map[string]taintMark

func (st taintFlowState) eff(k string) taintMark {
	for {
		if m, ok := st[k]; ok {
			return m
		}
		i := lastDot(k)
		if i < 0 {
			return 0
		}
		k = k[:i]
	}
}

func lastDot(k string) int {
	for i := len(k) - 1; i >= 0; i-- {
		if k[i] == '.' {
			return i
		}
	}
	return -1
}

// taint marks k tainted and drops stale child marks (a fresh value
// overwrites whatever was known about its fields).
func (st taintFlowState) taint(k string) {
	st.dropChildren(k)
	st[k] = markTainted
}

// sanitize clears k's taint on this path. Explicitly tainted children
// keep their own marks — the guard spoke only about k.
func (st taintFlowState) sanitize(k string) {
	st[k] = markSanitized
}

// kill forgets k entirely (reassigned from an untainted value).
func (st taintFlowState) kill(k string) {
	st.dropChildren(k)
	delete(st, k)
}

func (st taintFlowState) dropChildren(k string) {
	prefix := k + "."
	for c := range st {
		if len(c) > len(prefix) && c[:len(prefix)] == prefix {
			delete(st, c)
		}
	}
}

func (st taintFlowState) clone() taintFlowState {
	out := make(taintFlowState, len(st))
	for k, m := range st {
		out[k] = m
	}
	return out
}

// merge joins src into dst (may-taint): tainted beats sanitized beats
// absent — the numeric taintMark order — except that a sanitized mark
// additionally cannot survive a join where the other path has the key
// effectively tainted through a dot-prefix (eff would let the direct
// sanitized mark shadow the prefix taint, so those keys are promoted to
// tainted explicitly). Marks only ever go up, so block-entry states
// grow monotonically and the worklist terminates.
func (dst taintFlowState) merge(src taintFlowState) bool {
	changed := false
	raise := func(k string, m taintMark) {
		if dst[k] < m {
			dst[k] = m
			changed = true
		}
	}
	for k, m := range src {
		if m == markSanitized && dst.eff(k) == markTainted {
			m = markTainted
		}
		raise(k, m)
	}
	for k, m := range dst {
		if m == markSanitized && src.eff(k) == markTainted {
			raise(k, markTainted)
		}
	}
	return changed
}

// wtReporter receives sink findings during the reporting pass; nil
// during the solve.
type wtReporter func(pos token.Pos, format string, args ...any)

// wtFlow bundles one function's analysis context.
type wtFlow struct {
	pass       *Pass
	guardConds map[ast.Expr]bool
	forConds   map[ast.Expr]bool
}

func checkWireTaint(pass *Pass, body *ast.BlockStmt) {
	w := &wtFlow{
		pass:       pass,
		guardConds: map[ast.Expr]bool{},
		forConds:   map[ast.Expr]bool{},
	}
	sameFuncInspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			w.guardConds[n.Cond] = true
		case *ast.ForStmt:
			if n.Cond != nil {
				w.forConds[n.Cond] = true
			}
		}
		return true
	})

	cfg := BuildCFG(body)

	transfer := func(b *CFGBlock, st taintFlowState, rep wtReporter) {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			w.node(n, st, rep)
		}
	}

	// Solve to a fixed point, then re-run each reachable block's
	// transfer against its converged entry state to emit reports.
	in := map[*CFGBlock]taintFlowState{cfg.Entry: {}}
	work := []*CFGBlock{cfg.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[b].clone()
		transfer(b, out, nil)
		for _, s := range b.Succs {
			cur, seen := in[s]
			if !seen {
				in[s] = out.clone()
				work = append(work, s)
				continue
			}
			if cur.merge(out) {
				work = append(work, s)
			}
		}
	}

	reported := map[token.Pos]bool{}
	for _, b := range cfg.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		transfer(b, st.clone(), func(pos token.Pos, format string, args ...any) {
			if reported[pos] {
				return
			}
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		})
	}
}

// node applies one shallow CFG node: guard sanitization, sink checks,
// call effects, then definitions.
func (w *wtFlow) node(n ast.Node, st taintFlowState, rep wtReporter) {
	info := w.pass.Pkg.Info

	// Guard conditions sanitize the keys they compare before anything
	// else in the condition is considered a sink (`n < len(b) && b[n]`).
	if e, ok := n.(ast.Expr); ok && w.guardConds[e] {
		for _, k := range comparisonKeys(e) {
			if st.eff(k) == markTainted {
				st.sanitize(k)
			}
		}
	}
	if e, ok := n.(ast.Expr); ok && w.forConds[e] {
		w.sink(e, st, rep, "a loop bound")
	}

	// Expression-level effects and sinks.
	InspectShallow(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			w.call(m, st, rep)
		case *ast.IndexExpr:
			if indexableSink(info, m) {
				w.sink(m.Index, st, rep, "an index")
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{m.Low, m.High, m.Max} {
				if bound != nil {
					w.sink(bound, st, rep, "a slice bound")
				}
			}
		}
		return true
	})

	// Definitions last: the rhs was evaluated under the pre-state plus
	// any call effects above.
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			lhs := ast.Unparen(lhs)
			k := exprKey(lhs)
			if k == "" {
				continue
			}
			rhs := pairedRhs(n.Lhs, n.Rhs, i)
			tainted := rhs != nil && w.exprTainted(rhs, st)
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment keeps existing taint.
				tainted = tainted || st.eff(k) == markTainted
			}
			if tainted {
				st.taint(k)
			} else {
				st.kill(k)
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				switch {
				case len(vs.Names) == len(vs.Values):
					rhs = vs.Values[i]
				case len(vs.Values) == 1:
					rhs = vs.Values[0]
				}
				if rhs != nil && w.exprTainted(rhs, st) {
					st.taint(name.Name)
				} else {
					st.kill(name.Name)
				}
			}
		}
	case *ast.RangeStmt:
		tainted := w.exprTainted(n.X, st)
		// A range key over a slice/array/string is an index the runtime
		// bounds for us; only the element values carry the taint. Map
		// range keys are attacker content like the values.
		keyBounded := rangeKeyBounded(info, n.X)
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if v == nil {
				continue
			}
			if id, ok := ast.Unparen(v).(*ast.Ident); ok && id.Name != "_" {
				if tainted && !(v == n.Key && keyBounded) {
					st.taint(id.Name)
				} else {
					st.kill(id.Name)
				}
			}
		}
	}
}

// call applies one call expression: sanitized helpers clear their
// arguments, tainting callees write through theirs, sink-parameter
// callees and the builtin/io sinks report.
func (w *wtFlow) call(call *ast.CallExpr, st taintFlowState, rep wtReporter) {
	info := w.pass.Pkg.Info
	mod := w.pass.Mod

	if isMakeCall(info, call) {
		for _, arg := range call.Args[1:] {
			w.sink(arg, st, rep, "a make size")
		}
		return
	}
	if i := ioLimitArg(info, call); i >= 0 && i < len(call.Args) {
		w.sink(call.Args[i], st, rep, "an io read limit")
	}
	if i, ok := jsonDecodeArg(info, call); ok && i < len(call.Args) {
		if k := addrKey(call.Args[i]); k != "" {
			st.taint(k)
		}
	}

	callee, _ := staticCallee(info, call)
	cfi := mod.FuncOf(callee)
	if cfi == nil {
		return
	}
	if cfi.Sanitized {
		for _, arg := range call.Args {
			for _, k := range exprKeys(arg) {
				if st.eff(k) == markTainted {
					st.sanitize(k)
				}
			}
		}
		return
	}
	for i, arg := range call.Args {
		if i < len(cfi.Summary.TaintSinkParams) && cfi.Summary.TaintSinkParams[i] {
			w.sink(arg, st, rep, "a size/index sink inside "+cfi.Name())
		}
		if i < len(cfi.Summary.TaintsParams) && cfi.Summary.TaintsParams[i] {
			if k := addrKey(arg); k != "" {
				st.taint(k)
			}
		}
	}
}

// sink reports a sink expression that carries taint.
func (w *wtFlow) sink(e ast.Expr, st taintFlowState, rep wtReporter, what string) {
	if rep == nil {
		return
	}
	if witness, ok := w.taintWitness(e, st); ok {
		rep(e.Pos(), "wire-tainted %s reaches %s without a bounds check; compare it against a cap or len/cap first", witness, what)
	}
}

// exprTainted reports whether e may carry wire-derived data.
func (w *wtFlow) exprTainted(e ast.Expr, st taintFlowState) bool {
	_, ok := w.taintWitness(e, st)
	return ok
}

// taintWitness finds the first wire-derived piece of e: a tainted key,
// a direct source read, or a call to a helper that returns taint.
// make/new results are fresh memory, never tainted themselves (the
// tainted size is reported at the sink instead).
func (w *wtFlow) taintWitness(e ast.Expr, st taintFlowState) (string, bool) {
	info := w.pass.Pkg.Info
	mod := w.pass.Mod
	witness := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if witness != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			if k := exprKey(x); k != "" {
				// The key decides for the whole chain: descending further
				// would find a tainted parent under a sanitized child.
				if st.eff(k) == markTainted {
					witness = k
				}
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isMakeCall(info, call) || isNewCall(info, call) {
			return false
		}
		if isTaintSourceCall(info, call) {
			witness = "value"
			return false
		}
		callee, dynamic := staticCallee(info, call)
		if callee != nil {
			// A resolved call's result is tainted only when its summary
			// says so — tainted arguments do not taint the result.
			if cfi := mod.FuncOf(callee); cfi != nil && !cfi.Sanitized && cfi.Summary.TaintsResults {
				witness = "result of " + cfi.Name()
			}
			return false
		}
		if dynamic {
			return false
		}
		return true // conversion or builtin: taint flows through
	})
	return witness, witness != ""
}

// isNewCall matches the builtin new.
func isNewCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "new" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
