package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix and fileIgnorePrefix are the in-source suppression
// directives. The rule list is comma-separated and the reason is
// mandatory — an unexplained suppression is exactly the kind of silent
// convention this package exists to eliminate.
const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
)

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	FileWide bool
	Rules    []string
	Reason   string
	// Malformed marks directive-shaped text that is unusable (missing
	// rule or reason, or an empty rule name). It is reported under the
	// pseudo-rule "lint" and suppresses nothing.
	Malformed bool
}

// parseIgnoreDirective classifies one comment line. Non-directives
// (including close-but-not-quite text like "//lint:ignoreme", where the
// prefix is not followed by whitespace) return ok == false. Directives
// return ok == true, with Malformed set when the text cannot be used:
// fewer than two fields after the prefix, or an empty rule name in the
// comma-separated list ("norand,," suppresses nothing cleanly).
func parseIgnoreDirective(text string) (d ignoreDirective, ok bool) {
	text = strings.TrimSpace(text)
	var rest string
	switch {
	case cutDirectivePrefix(text, fileIgnorePrefix, &rest):
		d.FileWide = true
	case cutDirectivePrefix(text, ignorePrefix, &rest):
	default:
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		d.Malformed = true
		return d, true
	}
	rules := strings.Split(fields[0], ",")
	for _, r := range rules {
		if r == "" {
			d.Malformed = true
			return d, true
		}
	}
	d.Rules = rules
	d.Reason = strings.Join(fields[1:], " ")
	return d, true
}

// cutDirectivePrefix strips the directive prefix when it is followed by
// whitespace or the end of the comment; "//lint:ignoreme" is an ordinary
// comment, not a (malformed) directive.
func cutDirectivePrefix(text, prefix string, rest *string) bool {
	r, found := strings.CutPrefix(text, prefix)
	if !found {
		return false
	}
	if r != "" && r[0] != ' ' && r[0] != '\t' {
		return false
	}
	*rest = r
	return true
}

// placedDirective is one well-formed directive with its source position,
// kept for the stale-suppression audit.
type placedDirective struct {
	ignoreDirective
	pos token.Position
}

// ignoreIndex holds every well-formed directive of one package, plus
// diagnostics for the malformed ones.
type ignoreIndex struct {
	// line maps file -> line -> rules suppressed at that line. A
	// directive suppresses findings on its own line and on the line
	// directly below it (the usual "comment above the statement" form).
	line map[string]map[int][]string
	// file maps file -> rules suppressed for the whole file.
	file       map[string][]string
	directives []placedDirective
	malformed  []Diagnostic
}

func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{
		line: map[string]map[int][]string{},
		file: map[string][]string{},
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnoreDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if d.Malformed {
					idx.malformed = append(idx.malformed, Diagnostic{
						Rule:    "lint",
						Pos:     pos,
						Message: "malformed ignore directive: need \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				idx.directives = append(idx.directives, placedDirective{d, pos})
				if d.FileWide {
					idx.file[pos.Filename] = append(idx.file[pos.Filename], d.Rules...)
					continue
				}
				lines := idx.line[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.line[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d.Rules...)
			}
		}
	}
	return idx
}

// covers reports whether the directive would suppress d under one of its
// rules: same rule in the same file, and — unless file-wide — d on the
// directive's own line or the line directly below it.
func (pd placedDirective) covers(rule string, d Diagnostic) bool {
	if d.Rule != rule || d.File != pd.pos.Filename {
		return false
	}
	return pd.FileWide || d.Line == pd.pos.Line || d.Line == pd.pos.Line+1
}

// stale returns one diagnostic per directive rule that suppresses none of
// the raw (unsuppressed) findings, positioned at the directive. A
// suppression whose finding has been fixed is rot: it documents a
// violation that no longer exists and hides the next real one added on
// that line. Reported under the pseudo-rule "lint", same as malformed
// directives.
//
// Only directive rules present in enabled (the analyzers that actually
// ran) are judged: under a -rules subset the other rules produced no raw
// findings by construction, so their directives would all read as rot.
func (idx *ignoreIndex) stale(raw []Diagnostic, enabled map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, pd := range idx.directives {
		for _, rule := range pd.Rules {
			if !enabled[rule] {
				continue
			}
			live := false
			for _, d := range raw {
				if pd.covers(rule, d) {
					live = true
					break
				}
			}
			if live {
				continue
			}
			form, where := ignorePrefix, "on this or the next line"
			if pd.FileWide {
				form, where = fileIgnorePrefix, "in this file"
			}
			out = append(out, Diagnostic{
				Rule:    "lint",
				Pos:     pd.pos,
				Message: fmt.Sprintf("stale %s: no raw %s finding %s; delete the directive", form, rule, where),
			})
		}
	}
	return out
}

// suppressed reports whether d is covered by a directive: same rule on
// the same line, on the line above, or file-wide.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	for _, r := range idx.file[d.File] {
		if r == d.Rule {
			return true
		}
	}
	lines := idx.line[d.File]
	for _, ln := range []int{d.Line, d.Line - 1} {
		for _, r := range lines[ln] {
			if r == d.Rule {
				return true
			}
		}
	}
	return false
}
