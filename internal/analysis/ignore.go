package analysis

import (
	"strings"
)

// ignorePrefix and fileIgnorePrefix are the in-source suppression
// directives. The rule list is comma-separated and the reason is
// mandatory — an unexplained suppression is exactly the kind of silent
// convention this package exists to eliminate.
const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
)

// ignoreIndex holds every well-formed directive of one package, plus
// diagnostics for the malformed ones.
type ignoreIndex struct {
	// line maps file -> line -> rules suppressed at that line. A
	// directive suppresses findings on its own line and on the line
	// directly below it (the usual "comment above the statement" form).
	line map[string]map[int][]string
	// file maps file -> rules suppressed for the whole file.
	file      map[string][]string
	malformed []Diagnostic
}

func buildIgnoreIndex(pkg *Package) *ignoreIndex {
	idx := &ignoreIndex{
		line: map[string]map[int][]string{},
		file: map[string][]string{},
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var fileWide bool
				var rest string
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					fileWide, rest = true, text[len(fileIgnorePrefix):]
				case strings.HasPrefix(text, ignorePrefix):
					fileWide, rest = false, text[len(ignorePrefix):]
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					idx.malformed = append(idx.malformed, Diagnostic{
						Rule:    "lint",
						Pos:     pos,
						Message: "malformed ignore directive: need \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				rules := strings.Split(fields[0], ",")
				if fileWide {
					idx.file[pos.Filename] = append(idx.file[pos.Filename], rules...)
					continue
				}
				lines := idx.line[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx.line[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], rules...)
			}
		}
	}
	return idx
}

// suppressed reports whether d is covered by a directive: same rule on
// the same line, on the line above, or file-wide.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	for _, r := range idx.file[d.File] {
		if r == d.Rule {
			return true
		}
	}
	lines := idx.line[d.File]
	for _, ln := range []int{d.Line, d.Line - 1} {
		for _, r := range lines[ln] {
			if r == d.Rule {
				return true
			}
		}
	}
	return false
}
