package analysis

import (
	"testing"
)

func findFunc(t *testing.T, mod *Module, name string) *FuncInfo {
	t.Helper()
	for _, fi := range mod.Funcs {
		if fi.Name() == name {
			return fi
		}
	}
	t.Fatalf("function %q not in module", name)
	return nil
}

func fixtureModule(t *testing.T, fixture string) *Module {
	t.Helper()
	_, loader := loadFixtureModule(t, fixture)
	return BuildModule(loader.Packages())
}

func TestBuildModuleGraph(t *testing.T) {
	mod := fixtureModule(t, "hotalloc")

	// Hot markers land on exactly the marked declarations.
	for name, wantHot := range map[string]bool{
		"directRoot":     true,
		"oneDeepRoot":    true,
		"deepRoot":       true,
		"catalogue":      true,
		"suppressedRoot": true,
		"helperAlloc":    false,
		"mid":            false,
		"coldAlloc":      false,
		"Grow":           false,
	} {
		if fi := findFunc(t, mod, name); fi.Hot != wantHot {
			t.Errorf("%s: Hot = %v, want %v", name, fi.Hot, wantHot)
		}
	}

	// Static edges resolve within and across packages.
	edges := func(name string) map[string]bool {
		out := map[string]bool{}
		for _, e := range findFunc(t, mod, name).Callees {
			if e.Info != nil {
				out[e.Info.Name()] = true
			}
		}
		return out
	}
	if !edges("oneDeepRoot")["helperAlloc"] {
		t.Error("oneDeepRoot → helperAlloc edge missing")
	}
	if !edges("mid")["Grow"] {
		t.Error("mid → dep.Grow cross-package edge missing")
	}
	// The dynamic call f() in catalogue must NOT produce an edge; the
	// statically-called helpers must.
	ce := edges("catalogue")
	if !ce["box"] || !ce["work"] {
		t.Errorf("catalogue edges = %v, want box and work", ce)
	}

	// FuncOf round-trips through the types object.
	grow := findFunc(t, mod, "Grow")
	if mod.FuncOf(grow.Obj) != grow {
		t.Error("FuncOf does not round-trip")
	}
	if mod.FuncOf(nil) != nil {
		t.Error("FuncOf(nil) must be nil")
	}
}

func TestHotReachChains(t *testing.T) {
	mod := fixtureModule(t, "hotalloc")
	reach := mod.hotReach()

	chainOf := func(name string) string {
		fi := findFunc(t, mod, name)
		chain, ok := reach[fi]
		if !ok {
			t.Fatalf("%s not hot-reachable", name)
		}
		return chainString(chain)
	}
	if got := chainOf("directRoot"); got != "directRoot" {
		t.Errorf("root chain = %q", got)
	}
	if got := chainOf("helperAlloc"); got != "oneDeepRoot → helperAlloc" {
		t.Errorf("one-deep chain = %q", got)
	}
	if got := chainOf("Grow"); got != "deepRoot → mid → Grow" {
		t.Errorf("two-deep chain = %q", got)
	}
	if _, ok := reach[findFunc(t, mod, "coldAlloc")]; ok {
		t.Error("coldAlloc must not be hot-reachable")
	}

	// Determinism: an independent build yields identical chains.
	mod2 := fixtureModule(t, "hotalloc")
	reach2 := mod2.hotReach()
	if len(reach) != len(reach2) {
		t.Fatalf("reach sizes differ: %d vs %d", len(reach), len(reach2))
	}
	for fi, chain := range reach {
		fi2 := findFunc(t, mod2, fi.Name())
		if chainString(chain) != chainString(reach2[fi2]) {
			t.Errorf("%s: chains differ across builds: %q vs %q",
				fi.Name(), chainString(chain), chainString(reach2[fi2]))
		}
	}
}
