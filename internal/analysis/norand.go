package analysis

import (
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// NoRand forbids nondeterministic inputs in the deterministic packages:
// importing math/rand (all randomness must flow through internal/rng so
// streams are seedable and splittable) and calling time.Now / time.Since
// (wall-clock time must never influence algorithm behaviour). Files whose
// only use of the clock is reporting build statistics are allowlisted;
// presentation-layer packages (cmd, examples, server, bench) are out of
// scope entirely.
var NoRand = &Analyzer{
	Name: "norand",
	Doc: "no math/rand imports and no time.Now/time.Since in deterministic packages " +
		"outside the timing-stats allowlist",
	Run: runNoRand,
}

// norandScope lists the packages whose behaviour must be a pure function
// of (graph, Params): the root API package and the algorithmic internal
// packages. cmd/, examples/, internal/server and internal/bench exist to
// measure and present, so clocks are their business.
var norandScope = []string{
	"",
	"internal/analysis",
	"internal/batch",
	"internal/core",
	"internal/eval",
	"internal/exact",
	"internal/fogaras",
	"internal/graph",
	"internal/rng",
	"internal/yu",
}

// norandFileAllow lists timing-only files inside the scope: engine.go
// records preprocess wall-clock in BuildStats, which is reported, never
// consumed.
var norandFileAllow = []string{
	"internal/core/engine.go",
}

func runNoRand(pass *Pass) error {
	if !norandInScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		file := pass.Pkg.Fset.Position(f.Pos()).Filename
		if norandFileAllowed(file) {
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s: use repro/internal/rng so streams stay seedable and deterministic", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") &&
				pkgIdent(pass.Pkg.Info, sel.X, "time") {
				pass.Reportf(call.Pos(),
					"time.%s in a deterministic package: wall-clock must not influence results", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

func norandInScope(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	if !ok {
		return false
	}
	for _, s := range norandScope {
		if rel == s {
			return true
		}
	}
	return false
}

func norandFileAllowed(file string) bool {
	for _, allow := range norandFileAllow {
		if strings.HasSuffix(filepath.ToSlash(file), allow) {
			return true
		}
	}
	return false
}

// modRelPath returns the package path relative to the module root
// ("internal/core", "" for the root package). Non-module packages (bare
// fixture dirs) report false.
func modRelPath(pkg *Package) (string, bool) {
	path := pkg.ImportPath
	if i := strings.Index(path, "/"); i >= 0 {
		return path[i+1:], true
	}
	// The module root package itself ("repro") has no slash.
	if path != "" && !strings.Contains(path, ".") && pkg.Name != "main" {
		return "", true
	}
	return "", false
}
