package analysis

import "testing"

func TestNoRandFixture(t *testing.T) {
	runFixture(t, NoRand, "norand")
}

func TestNoRandScope(t *testing.T) {
	cases := []struct {
		importPath string
		name       string
		want       bool
	}{
		{"repro", "simrank", true},
		{"repro/internal/core", "core", true},
		{"repro/internal/rng", "rng", true},
		{"repro/internal/bench", "bench", false},
		{"repro/internal/server", "server", false},
		{"repro/cmd/simsearch", "main", false},
		{"repro/examples/quickstart", "main", false},
		{"repro/internal/analysis/testdata/src/norand", "norandtest", true},
	}
	for _, c := range cases {
		pkg := &Package{ImportPath: c.importPath, Name: c.name}
		if got := norandInScope(pkg); got != c.want {
			t.Errorf("norandInScope(%s) = %v, want %v", c.importPath, got, c.want)
		}
	}
}

func TestNoRandFileAllowlist(t *testing.T) {
	if !norandFileAllowed("/root/repo/internal/core/engine.go") {
		t.Error("engine.go build-stats timing must be allowlisted")
	}
	if norandFileAllowed("/root/repo/internal/core/query.go") {
		t.Error("query.go must not be allowlisted")
	}
}
