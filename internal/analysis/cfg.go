package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// cfg.go builds an intraprocedural control-flow graph over one function
// body. The CFG is the substrate for the dataflow analyzers (dataflow.go):
// poolbalance and lockbalance need "is this resource held on every path to
// this exit", ctxflow needs reaching definitions, and all of them need the
// loop/branch structure that lexical walks (the pre-CFG poolbalance) can
// only approximate.
//
// Design points:
//
//   - Blocks hold "shallow" nodes: simple statements and guard
//     expressions. A composite statement contributes its header parts to
//     the enclosing blocks (an if contributes its Cond, a range its
//     RangeStmt header) while its body gets blocks of its own. Transfer
//     functions therefore walk block nodes with InspectShallow, which
//     never descends into nested bodies or function literals.
//   - There is a single synthetic Exit block. Every return statement and
//     the implicit fall-through at the closing brace edge into it; a
//     panic() terminates its block with no successors (an unwinding exit
//     does not owe the invariants the analyzers check, matching the
//     pre-CFG poolbalance behaviour).
//   - goto/labeled break/continue/fallthrough are resolved exactly; a
//     label that is only ever jumped to forward gets its block patched
//     when the label is reached.
//   - Unreachable code (after return/panic/branch) is still given blocks
//     so its nodes exist, but those blocks have no predecessors; the
//     solvers in dataflow.go start at Entry and simply never visit them.
type CFG struct {
	// Entry is where execution starts; Exit is the single synthetic block
	// every normal function exit edges into. Exit has no nodes.
	Entry *CFGBlock
	Exit  *CFGBlock
	// Blocks lists every block, including unreachable ones, in creation
	// order (Entry first). Block indices are positions in this slice.
	Blocks []*CFGBlock
	// Defers collects every defer statement of the function, in source
	// order. Deferred calls run at every exit, so pairing analyzers treat
	// them as covering all paths rather than as ordinary block nodes.
	Defers []*ast.DeferStmt
	// rbrace is the function body's closing brace, the position reported
	// for the implicit fall-through exit.
	rbrace token.Pos
}

// A CFGBlock is one basic block: shallow nodes executed in order, then a
// transfer of control to one of Succs.
type CFGBlock struct {
	Index int
	Nodes []ast.Node
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// ExitPos returns the position that best represents leaving the function
// through pred (a predecessor of Exit): the return statement when the
// block ends in one, otherwise the body's closing brace (the implicit
// fall-through).
func (c *CFG) ExitPos(pred *CFGBlock) token.Pos {
	for i := len(pred.Nodes) - 1; i >= 0; i-- {
		if r, ok := pred.Nodes[i].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	return c.rbrace
}

// String renders the graph for tests and debugging: one line per block
// with its node kinds and successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d:", b.Index)
		if b == c.Exit {
			sb.WriteString(" <exit>")
		}
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " %s", strings.TrimPrefix(fmt.Sprintf("%T", n), "*ast."))
		}
		sb.WriteString(" ->")
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// InspectShallow walks the subtree of one CFG node but never descends
// into nested statement bodies or function literals: the bodies of a
// composite header node belong to other blocks, and a FuncLit is a
// different function entirely (eachFunc analyzes it separately).
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		case nil:
			return false
		}
		return fn(m)
	})
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{rbrace: body.Rbrace},
		labels: map[string]*CFGBlock{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.Exit) // implicit fall-through at the closing brace
	return b.cfg
}

// cfgBuilder holds the construction state: the current block (nil after a
// terminator — the next statement starts an unreachable block), the
// break/continue frame stack, goto label blocks, and the pending label of
// a LabeledStmt wrapping the next loop or switch.
type cfgBuilder struct {
	cfg *CFG
	cur *CFGBlock

	// frames is the stack of enclosing breakable/continuable constructs,
	// innermost last.
	frames []ctrlFrame
	// labels maps label names to their target blocks (created on first
	// mention, so forward gotos resolve).
	labels map[string]*CFGBlock
	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so `break L` / `continue L` can find the right frame.
	pendingLabel string
	// fallTarget is the body block of the next switch clause, the target
	// of a fallthrough statement.
	fallTarget *CFGBlock
}

// ctrlFrame is one enclosing for/range/switch/select: where break (and,
// for loops, continue) transfers to.
type ctrlFrame struct {
	label      string
	breakTo    *CFGBlock
	continueTo *CFGBlock // nil for switch/select
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a shallow node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label (set when this construct is the
// direct statement of a LabeledStmt).
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating on demand) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *CFGBlock {
	blk, ok := b.labels[name]
	if !ok {
		blk = b.newBlock()
		b.labels[name] = blk
	}
	return blk
}

// frameFor finds the innermost frame matching the branch: any frame for
// an unlabeled break, loop frames only for continue, and the labeled
// frame when a label is given. A miss (label on a plain block, broken
// code) returns nil and the branch is treated as terminating.
func (b *cfgBuilder) frameFor(tok token.Token, label string) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if tok == token.CONTINUE && f.continueTo == nil {
			continue
		}
		return f
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable code after a terminator still gets blocks (with no
		// predecessors) so every node exists somewhere.
		b.cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label's block is the jump target for gotos; execution also
		// falls into it.
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		thenEnd := b.cur
		join := b.newBlock()
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(cond, join)
		}
		b.edge(thenEnd, join)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		// continue re-runs the post statement when there is one,
		// otherwise jumps straight back to the head.
		contTo := head
		var post *CFGBlock
		if s.Post != nil {
			post = b.newBlock()
			contTo = post
		}
		if s.Cond != nil {
			b.edge(head, after) // cond false
		}
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after, continueTo: contTo})
		b.cur = bodyBlk
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.cur, head)
		// The whole RangeStmt is the head's node: its X and the per-
		// iteration Key/Value definitions live there. InspectShallow
		// keeps the body out.
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after) // range exhausted
		bodyBlk := b.newBlock()
		b.edge(head, bodyBlk)
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after, continueTo: head})
		b.cur = bodyBlk
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(s.Body.List) == 0 {
			// `select {}` blocks forever; after is unreachable.
			b.cur = nil
		}
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(label))
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fallTarget)
		default: // BREAK, CONTINUE
			if f := b.frameFor(s.Tok, label); f != nil {
				if s.Tok == token.CONTINUE {
					b.edge(b.cur, f.continueTo)
				} else {
					b.edge(b.cur, f.breakTo)
				}
			}
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			// panic unwinds: no successors, and the analyzers deliberately
			// do not hold panic exits to the pairing invariants.
			b.cur = nil
		}

	default:
		// Assign, IncDec, Send, Go, Decl, Empty, Bad: straight-line.
		b.add(s)
	}
}

// switchStmt builds both expression and type switches: the head holds the
// init/tag, every clause is a successor of the head, and fallthrough
// jumps to the next clause's body block.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	bodies := make([]*CFGBlock, len(body.List))
	for i := range body.List {
		bodies[i] = b.newBlock()
	}
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: after})
	savedFall := b.fallTarget
	hasDefault := false
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		blk := bodies[i]
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.edge(head, blk)
		b.fallTarget = nil
		if i+1 < len(bodies) {
			b.fallTarget = bodies[i+1]
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fallTarget = savedFall
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// isPanicCall matches a direct call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
