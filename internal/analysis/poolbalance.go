package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PoolBalance checks that every scratch-buffer acquire in internal/core
// is paired with a release on every return path. The engine's sync.Pool
// of scratches is what makes queries allocation-free; a leaked scratch is
// silent — the pool just allocates a fresh one — so steady-state
// performance decays without any test failing. A release counts if it is
// deferred, or if it lexically dominates the exit (appears earlier in the
// same or an enclosing statement list). Function literals are analyzed as
// independent functions, matching the worker-pool closures that each own
// a scratch.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc: "every getScratch()/pool.Get() must have a matching putScratch()/pool.Put() " +
		"on all return paths (defer it, or release before each return)",
	Run: runPoolBalance,
}

func runPoolBalance(pass *Pass) error {
	if !corePackage(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			checkPoolBalance(pass, body)
		})
	}
	return nil
}

func corePackage(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	return ok && rel == "internal/core"
}

// acquire is one `s := e.getScratch()` (or pool.Get()) in a function.
type acquire struct {
	obj  types.Object
	stmt *ast.AssignStmt
}

func checkPoolBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	var acquires []acquire
	sameFuncInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if !isAcquireCall(info, as.Rhs[0]) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := assignee(info, id); obj != nil {
				acquires = append(acquires, acquire{obj: obj, stmt: as})
			}
		}
		return true
	})

	for _, acq := range acquires {
		checkOneAcquire(pass, info, body, acq)
	}
}

// isAcquireCall matches e.getScratch(), pool.Get(), and the assertion
// form pool.Get().(*scratch).
func isAcquireCall(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "getScratch":
		return true
	case "Get":
		return isPoolExpr(info, sel.X)
	}
	return false
}

// isReleaseCall matches e.putScratch(s) and pool.Put(s) for the object.
func isReleaseCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	switch sel.Sel.Name {
	case "putScratch":
	case "Put":
		if !isPoolExpr(info, sel.X) {
			return false
		}
	default:
		return false
	}
	return mentionsObj(info, call.Args[0], obj)
}

// isPoolExpr reports whether e denotes a sync.Pool (by type when known,
// by the conventional field name "pool" otherwise).
func isPoolExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	key := exprKey(e)
	return key == "pool" || strings.HasSuffix(key, ".pool")
}

func checkOneAcquire(pass *Pass, info *types.Info, body *ast.BlockStmt, acq acquire) {
	// A deferred release anywhere in this function covers every exit.
	deferred := false
	sameFuncInspect(body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok && isReleaseCall(info, ds.Call, acq.obj) {
			deferred = true
		}
		return !deferred
	})
	if deferred {
		return
	}

	// Otherwise every exit after the acquire needs a dominating release.
	var releases []ast.Stmt
	sameFuncInspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		if call, ok := es.X.(*ast.CallExpr); ok && isReleaseCall(info, call, acq.obj) {
			releases = append(releases, es)
		}
		return true
	})

	for _, exit := range collectExits(body, acq.stmt.End()) {
		if !dominatedByRelease(body, releases, exit) {
			pass.Reportf(acq.stmt.Pos(),
				"%s acquired here is not released on the exit path at line %d; defer the release or release before returning",
				acq.obj.Name(), pass.Pkg.Fset.Position(exit.pos).Line)
		}
	}
}

// exitPoint is a return statement or the implicit fall-through at the
// function's closing brace (fallBlock non-nil).
type exitPoint struct {
	pos       token.Pos
	ret       *ast.ReturnStmt
	fallBlock *ast.BlockStmt
}

// collectExits returns every return statement after pos, plus the
// function's closing fall-through when the body can reach it.
func collectExits(body *ast.BlockStmt, pos token.Pos) []exitPoint {
	var exits []exitPoint
	sameFuncInspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok && rs.Pos() > pos {
			exits = append(exits, exitPoint{pos: rs.Pos(), ret: rs})
		}
		return true
	})
	if fallsThrough(body) {
		exits = append(exits, exitPoint{pos: body.Rbrace, fallBlock: body})
	}
	return exits
}

// fallsThrough reports whether execution can reach the closing brace:
// true unless the final statement is a return, an unconditional for-loop,
// or a panic call.
func fallsThrough(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return true
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return false
	case *ast.ForStmt:
		return last.Cond != nil // `for {}` never falls through
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return false
			}
		}
	}
	return true
}

// dominatedByRelease reports whether some release lexically dominates the
// exit: the release is a statement in a block whose statement list also
// (transitively) contains the exit at a strictly later index.
func dominatedByRelease(body *ast.BlockStmt, releases []ast.Stmt, exit exitPoint) bool {
	for _, rel := range releases {
		if blockDominates(body, rel, exit) {
			return true
		}
	}
	return false
}

// blockDominates walks every block under body looking for one whose list
// contains rel directly and the exit inside a strictly later statement.
func blockDominates(body *ast.BlockStmt, rel ast.Stmt, exit exitPoint) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		relIdx := -1
		for i, st := range blk.List {
			if st == rel {
				relIdx = i
				break
			}
		}
		if relIdx < 0 {
			return true
		}
		// The implicit fall-through exit of this block counts as
		// dominated when the release sits in its top-level list.
		if exit.fallBlock == blk {
			found = true
			return false
		}
		if exit.ret != nil {
			for _, st := range blk.List[relIdx+1:] {
				if containsNode(st, exit.ret) {
					found = true
					break
				}
			}
		}
		return !found
	})
	return found
}

func containsNode(root ast.Stmt, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
