package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolBalance checks that every scratch-buffer acquire in internal/core
// is paired with a release on every exit path. The engine's sync.Pool
// of scratches is what makes queries allocation-free; a leaked scratch is
// silent — the pool just allocates a fresh one — so steady-state
// performance decays without any test failing.
//
// The check runs the pairing lattice (dataflow.go) over the function's
// CFG: a deferred release covers every exit; otherwise each predecessor
// of the synthetic exit block must end in the released state. Being
// path-sensitive, a release inside the same branch or loop iteration as
// its acquire balances out, where the old lexical-dominance walk could
// not tell. Function literals are analyzed as independent functions,
// matching the worker-pool closures that each own a scratch.
//
// Acquires and releases are tracked through helper calls using the
// interprocedural summaries (summary.go): assigning the result of a
// helper whose summary says it returns a fresh scratch counts as an
// acquire, and passing the scratch to a helper that forwards it to
// putScratch counts as a release. A helper that acquires and hands the
// scratch to its caller via `return e.getScratch()` transfers ownership
// and is not itself flagged.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc: "every getScratch()/pool.Get() must have a matching putScratch()/pool.Put() " +
		"on all return paths (defer it, or release before each return)",
	Run: runPoolBalance,
}

func runPoolBalance(pass *Pass) error {
	if !poolPackage(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			checkPoolBalance(pass, body)
		})
	}
	return nil
}

func corePackage(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	return ok && rel == "internal/core"
}

// poolPackage widens the poolbalance scope beyond the engine to every
// tier that owns a sync.Pool of working memory: the wire codec's frame
// buffers (GetBuf/PutBuf), the shard server's request scratch, and the
// router's gather sets and binary connections. A leak in any of them
// degrades steady-state serving the same silent way a leaked engine
// scratch does.
func poolPackage(pkg *Package) bool {
	if corePackage(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	if !ok {
		return false
	}
	switch rel {
	case "internal/wire", "internal/server", "internal/router":
		return true
	}
	return false
}

// acquire is the first `s := e.getScratch()` (or pool.Get()) binding a
// given object in a function; re-acquires into the same variable are
// tracked by the flow, not reported separately.
type acquire struct {
	obj  types.Object
	stmt *ast.AssignStmt
}

// poolCtx bundles what acquire/release matching needs: the package's
// type info plus the module summaries that see through helper calls.
type poolCtx struct {
	info *types.Info
	mod  *Module
}

func checkPoolBalance(pass *Pass, body *ast.BlockStmt) {
	c := &poolCtx{info: pass.Pkg.Info, mod: pass.Mod}

	var acquires []acquire
	seen := map[types.Object]bool{}
	sameFuncInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		if !c.acquireExpr(as.Rhs[0]) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := assignee(c.info, id); obj != nil && !seen[obj] {
				seen[obj] = true
				acquires = append(acquires, acquire{obj: obj, stmt: as})
			}
		}
		return true
	})
	if len(acquires) == 0 {
		return
	}

	cfg := BuildCFG(body)
	for _, acq := range acquires {
		checkOneAcquire(pass, c, cfg, acq)
	}
}

// isAcquireCall matches e.getScratch(), pool.Get(), and the assertion
// form pool.Get().(*scratch).
func isAcquireCall(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "getScratch":
		return true
	case "Get":
		return isPoolExpr(info, sel.X)
	}
	return false
}

// isReleaseCall matches e.putScratch(s) and pool.Put(s) for the object.
func isReleaseCall(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	switch sel.Sel.Name {
	case "putScratch":
	case "Put":
		if !isPoolExpr(info, sel.X) {
			return false
		}
	default:
		return false
	}
	return mentionsObj(info, call.Args[0], obj)
}

// acquireExpr reports whether e yields a freshly acquired scratch:
// either the literal shapes isAcquireCall knows, or a statically
// resolved call to a module function whose summary transfers a fresh
// scratch to its caller.
func (c *poolCtx) acquireExpr(e ast.Expr) bool {
	if isAcquireCall(c.info, e) {
		return true
	}
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	callee, _ := staticCallee(c.info, call)
	fi := c.mod.FuncOf(callee)
	return fi != nil && fi.Summary.AcquiresScratch
}

// releaseCall reports whether the call releases obj: either the literal
// putScratch/pool.Put shapes, or a statically resolved helper whose
// summary releases the parameter position obj is passed in.
func (c *poolCtx) releaseCall(call *ast.CallExpr, obj types.Object) bool {
	if isReleaseCall(c.info, call, obj) {
		return true
	}
	callee, _ := staticCallee(c.info, call)
	fi := c.mod.FuncOf(callee)
	if fi == nil {
		return false
	}
	for i, arg := range call.Args {
		if i >= len(fi.Summary.ReleasesParams) {
			break
		}
		if fi.Summary.ReleasesParams[i] && mentionsObj(c.info, arg, obj) {
			return true
		}
	}
	return false
}

// isPoolExpr reports whether e denotes a sync.Pool (by type when known,
// by the conventional field name "pool" otherwise).
func isPoolExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				return true
			}
		}
	}
	key := exprKey(e)
	return key == "pool" || strings.HasSuffix(key, ".pool")
}

func checkOneAcquire(pass *Pass, c *poolCtx, cfg *CFG, acq acquire) {
	// A deferred release anywhere in this function covers every exit.
	// (The deferred call may sit inside a closure: defer func(){...}().)
	for _, ds := range cfg.Defers {
		if deferReleases(c, ds, acq.obj) {
			return
		}
	}

	// transfer walks one block's shallow nodes: an acquire assignment into
	// the object sets held, a release call sets free.
	transfer := func(b *CFGBlock, in pairState) pairState {
		st := in
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // defers run at exit, handled above
			}
			InspectShallow(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.AssignStmt:
					if len(m.Lhs) == 1 && len(m.Rhs) == 1 && c.acquireExpr(m.Rhs[0]) {
						if id, ok := ast.Unparen(m.Lhs[0]).(*ast.Ident); ok && assignee(c.info, id) == acq.obj {
							st = pairHeld
						}
					}
				case *ast.CallExpr:
					if c.releaseCall(m, acq.obj) {
						st = pairFree
					}
				}
				return true
			})
		}
		return st
	}

	in := ForwardFlow(cfg, pairFree, joinPair, transfer)
	reported := map[int]bool{}
	for _, pred := range cfg.Exit.Preds {
		st, reachable := in[pred]
		if !reachable {
			continue
		}
		if out := transfer(pred, st); out == pairHeld || out == pairMixed {
			line := pass.Pkg.Fset.Position(cfg.ExitPos(pred)).Line
			if reported[line] {
				continue
			}
			reported[line] = true
			pass.Reportf(acq.stmt.Pos(),
				"%s acquired here is not released on the exit path at line %d; defer the release or release before returning",
				acq.obj.Name(), line)
		}
	}
}

// deferReleases reports whether the deferred statement releases obj,
// either directly (defer e.putScratch(s)), through a releasing helper,
// or inside a deferred closure.
func deferReleases(c *poolCtx, ds *ast.DeferStmt, obj types.Object) bool {
	found := false
	ast.Inspect(ds, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && c.releaseCall(call, obj) {
			found = true
		}
		return !found
	})
	return found
}
