package analysis

import (
	"path/filepath"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	modRoot := filepath.FromSlash("/mod")
	diags := []Diagnostic{
		{Rule: "lockbalance", File: filepath.FromSlash("/mod/internal/core/store.go"), Line: 42, Message: "mu.Lock() here is not matched"},
		{Rule: "atomicfield", File: filepath.FromSlash("/mod/internal/server/state.go"), Line: 7, Message: "plain store to atomic field ready"},
	}

	b := NewBaseline(diags, modRoot)
	path := filepath.Join(t.TempDir(), "lint.baseline.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	rb, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if len(rb.Entries) != len(diags) {
		t.Fatalf("round trip lost entries: got %d, want %d", len(rb.Entries), len(diags))
	}

	// Same diagnostics → empty diff, even when line numbers shift.
	shifted := make([]Diagnostic, len(diags))
	copy(shifted, diags)
	shifted[0].Line = 99
	fresh, stale := rb.Filter(shifted, modRoot)
	if len(fresh) != 0 || len(stale) != 0 {
		t.Errorf("clean re-run: got %d fresh and %d stale, want 0 and 0", len(fresh), len(stale))
	}

	// An injected regression is reported as fresh.
	injected := append(shifted, Diagnostic{
		Rule: "lockbalance", File: filepath.FromSlash("/mod/internal/core/other.go"), Message: "double unlock panics at runtime",
	})
	fresh, _ = rb.Filter(injected, modRoot)
	if len(fresh) != 1 || fresh[0].Message != "double unlock panics at runtime" {
		t.Errorf("injected regression: fresh = %v, want exactly the new diagnostic", fresh)
	}

	// A second instance of an accepted diagnostic in the same file is
	// still new: entries absorb one diagnostic per duplication.
	dup := append(shifted, shifted[0])
	fresh, _ = rb.Filter(dup, modRoot)
	if len(fresh) != 1 {
		t.Errorf("duplicated diagnostic: got %d fresh, want 1", len(fresh))
	}

	// A fixed diagnostic leaves its entry stale so the debt can be deleted.
	fresh, stale = rb.Filter(shifted[:1], modRoot)
	if len(fresh) != 0 || len(stale) != 1 || stale[0].Rule != "atomicfield" {
		t.Errorf("fixed diagnostic: fresh = %v, stale = %v, want the atomicfield entry stale", fresh, stale)
	}
}

func TestBaselineVersionCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	b := &Baseline{Version: 99, Entries: []BaselineEntry{}}
	if err := b.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := ReadBaseline(path); err == nil {
		t.Errorf("ReadBaseline accepted unsupported version 99")
	}
}
