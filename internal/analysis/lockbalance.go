package analysis

import (
	"go/ast"
	"go/types"
)

// LockBalance checks mutex discipline in the serving packages: every
// Lock() must be matched by an Unlock() on every CFG path out of the
// function (or covered by a defer), a mutex must never be re-Locked
// while already held (self-deadlock), and an Unlock must not run when
// the mutex cannot be held (double unlock).
//
// DynamicEngine interleaves two mutexes (mu for edge state, refreshMu to
// serialize rebuilds) and the tally cache has 64 lock stripes indexed by
// shard — exactly the code where a forgotten unlock on one early-return
// path deadlocks the whole server. The analysis is per-function and
// per-mutex-key ("d.mu", "c.shards[i].mu"), using the pairing lattice
// over the CFG, so branch- and loop-local lock/unlock pairs balance
// exactly. Read locks (RLock/RUnlock) are tracked as a separate key:
// RWMutex read and write sides pair independently.
//
// Functions using TryLock on a key are skipped for that key: whether the
// lock is held becomes a data question the CFG cannot answer.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc: "every mu.Lock() must be paired with mu.Unlock() on all control-flow paths " +
		"(defer it, or unlock before each exit), and a held mutex must not be re-locked",
	Run: runLockBalance,
}

func runLockBalance(pass *Pass) error {
	if !lockScope(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		eachFunc(f, func(name string, body *ast.BlockStmt) {
			checkLockBalance(pass, body)
		})
	}
	return nil
}

// lockScope: the serving packages whose mutexes guard the hot path.
func lockScope(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	return ok && (rel == "internal/core" || rel == "internal/server")
}

// lockKind distinguishes the exclusive and shared sides of a mutex.
type lockKind uint8

const (
	lockExclusive lockKind = iota
	lockShared
)

// mutexOp matches a niladic method call on a sync.Mutex/RWMutex-typed
// receiver and returns the receiver's render key, the method name, and
// the side it operates on.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, method string, kind lockKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "TryLock":
		kind = lockExclusive
	case "RLock", "RUnlock", "TryRLock":
		kind = lockShared
	default:
		return "", "", 0, false
	}
	if !isMutexExpr(info, sel.X) {
		return "", "", 0, false
	}
	key = mutexKey(sel.X)
	if key == "" {
		return "", "", 0, false
	}
	return key, sel.Sel.Name, kind, true
}

// isMutexExpr reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// mutexKey renders the receiver chain, extending exprKey with index
// expressions so the cache's lock stripes ("c.shards[i].mu") get a key.
// Distinct keys are assumed to be distinct mutexes; an unrenderable
// receiver yields "" and is not tracked.
func mutexKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := mutexKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.IndexExpr:
		base := mutexKey(e.X)
		idx := mutexKey(e.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return mutexKey(e.X)
	case *ast.StarExpr:
		return mutexKey(e.X)
	}
	return ""
}

// trackedMutex is one (key, side) pair used in a function.
type trackedMutex struct {
	key  string
	kind lockKind
}

func checkLockBalance(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// Discover the mutexes this function locks; remember first-lock
	// positions for exit-path reports and whether TryLock appears.
	firstLock := map[trackedMutex]*ast.CallExpr{}
	skip := map[trackedMutex]bool{}
	order := []trackedMutex{}
	sameFuncInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, kind, ok := mutexOp(info, call)
		if !ok {
			return true
		}
		tm := trackedMutex{key, kind}
		switch method {
		case "TryLock", "TryRLock":
			skip[tm] = true
		case "Lock", "RLock":
			if firstLock[tm] == nil {
				firstLock[tm] = call
				order = append(order, tm)
			}
		}
		return true
	})
	if len(order) == 0 {
		return
	}

	cfg := BuildCFG(body)
	for _, tm := range order {
		if skip[tm] {
			continue
		}
		checkOneMutex(pass, info, cfg, tm, firstLock[tm])
	}
}

// lockNames returns the lock/unlock method names for the side.
func (k lockKind) lockName() string {
	if k == lockShared {
		return "RLock"
	}
	return "Lock"
}

func (k lockKind) unlockName() string {
	if k == lockShared {
		return "RUnlock"
	}
	return "Unlock"
}

func checkOneMutex(pass *Pass, info *types.Info, cfg *CFG, tm trackedMutex, first *ast.CallExpr) {
	// A deferred unlock covers every exit (and pins the state held until
	// then, which the re-lock check still sees).
	deferred := false
	for _, ds := range cfg.Defers {
		if key, method, kind, ok := mutexOp(info, ds.Call); ok &&
			key == tm.key && kind == tm.kind && method == tm.kind.unlockName() {
			deferred = true
		}
	}

	// ops walks one block's shallow nodes in order, invoking fn at each
	// operation on this mutex with the state before the operation.
	ops := func(b *CFGBlock, in pairState, fn func(call *ast.CallExpr, method string, before pairState)) pairState {
		st := in
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // runs at exit, accounted for via `deferred`
			}
			InspectShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				key, method, kind, ok := mutexOp(info, call)
				if !ok || key != tm.key || kind != tm.kind {
					return true
				}
				if fn != nil {
					fn(call, method, st)
				}
				switch method {
				case tm.kind.lockName():
					st = pairHeld
				case tm.kind.unlockName():
					st = pairFree
				}
				return true
			})
		}
		return st
	}

	transfer := func(b *CFGBlock, in pairState) pairState { return ops(b, in, nil) }
	in := ForwardFlow(cfg, pairFree, joinPair, transfer)

	// Report pass: re-lock while held, unlock while provably free.
	for _, b := range cfg.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		ops(b, st, func(call *ast.CallExpr, method string, before pairState) {
			switch method {
			case tm.kind.lockName():
				if before == pairHeld {
					pass.Reportf(call.Pos(),
						"%s.%s() while %s is already held on every path here; this self-deadlocks",
						tm.key, method, tm.key)
				}
			case tm.kind.unlockName():
				if before == pairFree && !deferred {
					pass.Reportf(call.Pos(),
						"%s.%s() but %s cannot be held here; double unlock panics at runtime",
						tm.key, method, tm.key)
				}
			}
		})
	}

	if deferred {
		return
	}
	// Exit check: the mutex must be free on every path into Exit.
	reportedLines := map[int]bool{}
	for _, pred := range cfg.Exit.Preds {
		st, reachable := in[pred]
		if !reachable {
			continue
		}
		if out := transfer(pred, st); out == pairHeld || out == pairMixed {
			line := pass.Pkg.Fset.Position(cfg.ExitPos(pred)).Line
			if reportedLines[line] {
				continue
			}
			reportedLines[line] = true
			pass.Reportf(first.Pos(),
				"%s.%s() here is not matched by %s() on the exit path at line %d; defer the unlock or unlock before returning",
				tm.key, tm.kind.lockName(), tm.kind.unlockName(), line)
		}
	}
}
