package analysis

import "testing"

func TestSummaryAllocationFacts(t *testing.T) {
	mod := fixtureModule(t, "hotalloc")

	// Direct sites land on the function that owns them.
	if fi := findFunc(t, mod, "directRoot"); len(fi.Summary.Allocs) != 1 {
		t.Errorf("directRoot direct sites = %d, want 1", len(fi.Summary.Allocs))
	}
	// Transitive Allocates propagates up the chain; the roots have no
	// direct sites of their own.
	for _, name := range []string{"oneDeepRoot", "deepRoot", "mid"} {
		fi := findFunc(t, mod, name)
		if len(fi.Summary.Allocs) != 0 {
			t.Errorf("%s: direct sites = %v, want none", name, fi.Summary.Allocs)
		}
		if !fi.Summary.Allocates {
			t.Errorf("%s: Allocates not propagated", name)
		}
	}
	// work() is empty: reachable from a hot root but allocation-free.
	if fi := findFunc(t, mod, "work"); fi.Summary.Allocates {
		t.Error("work: Allocates = true, want false")
	}
	// The catalogue root spawns a goroutine.
	if fi := findFunc(t, mod, "catalogue"); !fi.Summary.SpawnsGoroutine {
		t.Error("catalogue: SpawnsGoroutine = false")
	}
}

func TestSummaryPoolPairing(t *testing.T) {
	mod := fixtureModule(t, "poolbalance")

	for name, want := range map[string]bool{
		"engine.freshScratch":  true, // direct return of getScratch
		"engine.freshIndirect": true, // propagated through freshScratch
		"engine.getScratch":    true, // direct return of pool.Get
		"engine.recycle":       false,
		"engine.inspect":       false,
	} {
		if got := findFunc(t, mod, name).Summary.AcquiresScratch; got != want {
			t.Errorf("%s: AcquiresScratch = %v, want %v", name, got, want)
		}
	}
	for name, want := range map[string]bool{
		"engine.putScratch":      true, // direct pool release of the param
		"engine.recycle":         true, // forwards to putScratch
		"engine.recycleIndirect": true, // two hops
		"engine.inspect":         false,
	} {
		fi := findFunc(t, mod, name)
		got := len(fi.Summary.ReleasesParams) > 0 && fi.Summary.ReleasesParams[0]
		if got != want {
			t.Errorf("%s: ReleasesParams[0] = %v, want %v", name, got, want)
		}
	}
}

func TestSummaryChecksCtx(t *testing.T) {
	mod := fixtureModule(t, "ctxflow")

	for name, want := range map[string]bool{
		"stop":         true, // direct ctx.Err()
		"stopIndirect": true, // propagated: passes ctx to stop
		"sleepCtx":     true, // select on ctx.Done()
		"busy":         false,
	} {
		if got := findFunc(t, mod, name).Summary.ChecksCtx; got != want {
			t.Errorf("%s: ChecksCtx = %v, want %v", name, got, want)
		}
	}
}
