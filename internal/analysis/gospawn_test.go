package analysis

import "testing"

func TestGoSpawnFixture(t *testing.T) {
	runFixture(t, GoSpawn, "gospawn")
}
