package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter guards the determinism promise against Go's randomized map
// iteration order: a `for range` over a map may accumulate into a slice
// only if that slice is sorted (or otherwise canonicalized) before it
// escapes the function as a return value, channel message, or struct
// field. Sending directly to a channel from inside the loop is always an
// error (there is nothing left to sort), while writing through a dense
// index (out[v] = ...) is always fine — position, not visit order,
// determines the result.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "map iteration feeding a returned slice, channel, or struct field " +
		"must be sorted or dense-indexed before it escapes",
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkMapRanges(pass, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkMapRanges analyzes one function body (not descending into nested
// function literals, which are checked on their own).
func checkMapRanges(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	sameFuncInspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rs.X]
		if !ok || tv.Type == nil {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(pass, ftype, body, rs)
		return true
	})
}

// accumTarget is one slice the loop body appends to: either a plain
// variable (obj != nil) or a selector chain like s.out (key != "").
type accumTarget struct {
	obj types.Object
	key string
	pos token.Pos
}

func checkOneMapRange(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	mapName := exprKey(rs.X)
	if mapName == "" {
		mapName = "map"
	}

	var targets []accumTarget
	sameFuncInspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"map iteration order over %s reaches a channel send; collect and sort before sending", mapName)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !isAppendCall(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.Ident:
					if obj := assignee(info, l); obj != nil {
						targets = append(targets, accumTarget{obj: obj, pos: n.Pos()})
					}
				case *ast.SelectorExpr:
					// Appending straight into a struct field.
					if key := exprKey(l); key != "" {
						targets = append(targets, accumTarget{key: key, pos: n.Pos()})
					}
				}
			}
		}
		return true
	})

	for _, t := range targets {
		if t.obj != nil && !escapes(info, ftype, body, t.obj) {
			continue // local accumulator (a counter, a set): order never observable
		}
		if sortedAfter(info, body, rs, t) {
			continue
		}
		name := t.key
		if t.obj != nil {
			name = t.obj.Name()
		}
		pass.Reportf(rs.Pos(),
			"iteration over map %s appends to %s, which escapes unsorted; sort it after the loop or extract by dense index",
			mapName, name)
	}
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

func assignee(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// escapes reports whether obj leaves the function: it appears in a return
// statement, is a named result, is sent on a channel, or is assigned into
// a struct field.
func escapes(info *types.Info, ftype *ast.FuncType, body *ast.BlockStmt, obj types.Object) bool {
	if ftype != nil && ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if info.Defs[name] == obj {
					return true
				}
			}
		}
	}
	found := false
	sameFuncInspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if mentionsObj(info, r, obj) {
					found = true
				}
			}
		case *ast.SendStmt:
			if mentionsObj(info, n.Value, obj) {
				found = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, isSel := ast.Unparen(lhs).(*ast.SelectorExpr); !isSel {
					continue
				}
				if i < len(n.Rhs) && mentionsObj(info, n.Rhs[i], obj) {
					found = true
				} else if len(n.Rhs) == 1 && len(n.Lhs) > 1 && mentionsObj(info, n.Rhs[0], obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, lexically after the range loop, the target
// is passed to something that sorts it: any call whose final callee name
// contains "sort" (sort.Slice, slices.Sort, a local sortScored helper, an
// x.Sort() method) and whose arguments mention the target.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, t accumTarget) bool {
	found := false
	sameFuncInspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return !found
		}
		name := exprKey(call.Fun)
		if name == "" {
			name = calleeName(call)
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return !found
		}
		for _, arg := range call.Args {
			if t.obj != nil && mentionsObj(info, arg, t.obj) {
				found = true
			}
			if t.key != "" && mentionsKey(arg, t.key) {
				found = true
			}
		}
		// A method receiver counts too: out.Sort().
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if t.obj != nil && mentionsObj(info, sel.X, t.obj) {
				found = true
			}
			if t.key != "" && mentionsKey(sel.X, t.key) {
				found = true
			}
		}
		return !found
	})
	return found
}
