package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	Dir        string
	ImportPath string
	Name       string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds soft type-checking problems (for example an import
	// the loader had to stub out). The build gate runs before lint, so
	// these indicate loader limitations, not broken code; the driver
	// surfaces them as warnings only.
	TypeErrors []error
}

// A Loader parses and type-checks packages of one module from source.
//
// Imports inside the module are loaded recursively from source; all other
// imports (the standard library) are resolved through the gc importer's
// export data. An import that cannot be resolved degrades to an empty
// stub package and a warning instead of failing the load, so analysis is
// best-effort by construction.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset  *token.FileSet
	gc    types.Importer
	byDir map[string]*Package
	stubs []string
}

// NewLoader locates the enclosing module of dir (by walking up to go.mod)
// and returns a Loader for it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       token.NewFileSet(),
		gc:         importer.Default(),
		byDir:      map[string]*Package{},
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", file)
}

// Stubs returns the import paths the loader could not resolve and
// replaced with empty packages.
func (l *Loader) Stubs() []string { return l.stubs }

// Packages returns every package this loader has type-checked so far
// (including ones pulled in as module-local imports of an explicitly
// requested directory), sorted by import path. BuildModule over this
// set gives the interprocedural layer the complete body inventory.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.byDir))
	for _, pkg := range l.byDir {
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// LoadAll walks every package directory under root (skipping testdata,
// hidden and vendor directories) and returns the loaded packages in
// sorted directory order. Directories without non-test Go files are
// skipped silently.
func (l *Loader) LoadAll(root string) ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if goSource(dir, e) {
			return true
		}
	}
	return false
}

// buildCtx decides which files belong to a package on the host
// platform, exactly as `go build` would: //go:build constraint lines
// and GOOS/GOARCH filename suffixes both count. Without this,
// platform-gated pairs like mmap_unix.go/mmap_stub.go would land in
// one package and type-check as duplicate declarations.
var buildCtx = build.Default

func goSource(dir string, e os.DirEntry) bool {
	name := e.Name()
	if e.IsDir() || !strings.HasSuffix(name, ".go") ||
		strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
		return false
	}
	ok, err := buildCtx.MatchFile(dir, name)
	return err == nil && ok
}

// LoadDir parses and type-checks the single package in dir (test files
// excluded), reusing previously loaded results.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.byDir[abs]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", abs)
		}
		return pkg, nil
	}
	l.byDir[abs] = nil // cycle marker
	pkg, err := l.loadDir(abs)
	if err != nil {
		delete(l.byDir, abs)
		return nil, err
	}
	l.byDir[abs] = pkg
	return pkg, nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !goSource(dir, e) {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	name := files[0].Name.Name
	kept := files[:0]
	for _, f := range files {
		// A second package in one directory (stale experiments and the
		// like) would make go/types refuse the whole load; keep the
		// majority package named after the first file instead.
		if f.Name.Name == name {
			kept = append(kept, f)
		}
	}
	files = kept

	pkg := &Package{
		Dir:        dir,
		ImportPath: l.importPath(dir),
		Name:       name,
		Fset:       l.fset,
		Files:      files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	// Soft errors are collected through conf.Error; the returned error
	// duplicates the first of them, so it is deliberately dropped.
	pkg.Types, _ = conf.Check(pkg.ImportPath, l.fset, files, pkg.Info)
	return pkg, nil
}

// importPath maps a directory to its import path within the module.
// Directories outside the module fall back to their base name.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// loaderImporter adapts the Loader to types.Importer: module-local
// packages come from source, everything else from gc export data, and
// unresolvable imports become complete-but-empty stubs.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath)))
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.gc.Import(path); err == nil {
		return pkg, nil
	}
	l.stubs = append(l.stubs, path)
	stub := types.NewPackage(path, filepath.Base(path))
	stub.MarkComplete()
	return stub, nil
}
