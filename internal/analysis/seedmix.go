package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// SeedMix enforces the PR-1 lesson: deterministic RNG streams derived
// from structured ids (vertex numbers, step counters — anything narrower
// than 64 bits) must be separated through rng.Mix over an *injective*
// packing of those ids. Two failure shapes are rejected:
//
//  1. A seed expression at an RNG construction site (rng.New, Source.Seed)
//     that combines two or more raw ids with xor/shift/add arithmetic and
//     no Mix call at all. Distinct id tuples can then share a seed and
//     their walk streams become correlated.
//
//  2. A Mix/splitmix call whose argument packs two or more ids
//     non-injectively, e.g. the historical pairSeed bug u ^ (v<<1): the
//     collision happens before the finalizer, so mixing cannot undo it.
//     Pack 32-bit ids as uint64(a)<<32 | uint64(b) instead.
//
// XORing one Mix-ed value with 64-bit salts or the global seed is fine;
// combining the ids themselves raw is not.
var SeedMix = &Analyzer{
	Name: "seedmix",
	Doc: "RNG seeds built from two or more vertex/step ids must go through " +
		"rng.Mix over an injective packing, not raw xor/shift arithmetic",
	Run: runSeedMix,
}

func runSeedMix(pass *Pass) error {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if isMixCall(call) {
					checkMixPacking(pass, call)
				} else if isSeedSink(info, call) {
					arg := resolveLocal(info, fd.Body, call.Args[0], call.Pos())
					ids := map[string]bool{}
					collectRawIDs(info, arg, ids)
					if len(ids) >= 2 {
						pass.Reportf(call.Pos(),
							"seed combines ids (%s) with raw arithmetic; collisions correlate their streams — pack the ids and pass them through rng.Mix",
							idList(ids))
					}
				}
				return true
			})
		}
	}
	return nil
}

func idList(ids map[string]bool) string {
	names := make([]string, 0, len(ids))
	for id := range ids {
		names = append(names, id)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// isSeedSink recognizes the RNG construction points: rng.New(seed) and
// (*rng.Source).Seed(seed).
func isSeedSink(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "New":
		return pkgIdent(info, sel.X, "rng")
	case "Seed":
		// Method call: receiver must be an rng.Source (pointer or value).
		if s, ok := info.Selections[sel]; ok {
			return typeFromRNG(s.Recv())
		}
		// Incomplete type info: accept any non-package receiver named
		// Seed with one argument rather than silently missing cases.
		return !pkgIdentAny(info, sel.X)
	}
	return false
}

// isMixCall recognizes the splitmix finalizer family: rng.Mix, a local
// mix helper, or splitmix64-style functions.
func isMixCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	lower := strings.ToLower(name)
	return lower == "mix" || strings.HasPrefix(lower, "splitmix")
}

// checkMixPacking verifies that a Mix argument combining several ids does
// so injectively (disjoint bit ranges via a wide shift).
func checkMixPacking(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	arg := call.Args[0]
	ids := map[string]bool{}
	collectRawIDs(info, arg, ids)
	if len(ids) < 2 {
		return
	}
	if injectivePack(info, arg) {
		return
	}
	pass.Reportf(call.Pos(),
		"ids (%s) are packed non-injectively before mixing (the u^(v<<1) collision class); use uint64(a)<<32|uint64(b)",
		idList(ids))
}

// injectivePack matches the blessed packing shape, modulo xor/add with
// id-free salts on either side: uint64(a)<<k OP uint64(b) with k >= 32
// and OP in {|, ^, +}, each side carrying exactly one id.
func injectivePack(info *types.Info, e ast.Expr) bool {
	e = stripSalts(info, e)
	be, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.OR, token.XOR, token.ADD:
	default:
		return false
	}
	x := stripSalts(info, be.X)
	y := stripSalts(info, be.Y)
	return (isWideShiftedID(info, x) && isPlainID(info, y)) ||
		(isWideShiftedID(info, y) && isPlainID(info, x))
}

// stripSalts removes wrapping parens and salt-style binary ops (xor, or,
// add, sub) whose other operand carries no ids (constants, 64-bit salts,
// the global seed). Shifts are never stripped: a shift by a constant is
// part of the packing shape, not a salt.
func stripSalts(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return e
		}
		switch be.Op {
		case token.XOR, token.OR, token.ADD, token.SUB:
		default:
			return e
		}
		xids := map[string]bool{}
		yids := map[string]bool{}
		collectRawIDs(info, be.X, xids)
		collectRawIDs(info, be.Y, yids)
		switch {
		case len(xids) == 0 && len(yids) > 0:
			e = be.Y
		case len(yids) == 0 && len(xids) > 0:
			e = be.X
		default:
			return e
		}
	}
}

func isWideShiftedID(info *types.Info, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.SHL {
		return false
	}
	tv, ok := info.Types[be.Y]
	if !ok || tv.Value == nil {
		return false
	}
	shift, err := strconv.ParseInt(tv.Value.ExactString(), 10, 64)
	if err != nil || shift < 32 {
		return false
	}
	return isPlainID(info, be.X)
}

// isPlainID reports whether e is a single id, possibly through integer
// conversions: u, uint64(u), uint64(u+1).
func isPlainID(info *types.Info, e ast.Expr) bool {
	ids := map[string]bool{}
	collectRawIDs(info, e, ids)
	return len(ids) == 1
}

func typeFromRNG(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		(obj.Pkg().Name() == "rng" || strings.HasSuffix(obj.Pkg().Path(), "/rng"))
}

func pkgIdentAny(info *types.Info, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := info.Uses[id].(*types.PkgName)
	return isPkg
}

// resolveLocal follows one level of local definition: for
// `seed := u ^ v<<1; r.Seed(seed)` it returns the defining expression,
// provided seed has exactly one assignment before the call.
func resolveLocal(info *types.Info, body *ast.BlockStmt, arg ast.Expr, before token.Pos) ast.Expr {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return arg
	}
	obj := info.Uses[id]
	if obj == nil {
		return arg
	}
	var def ast.Expr
	count := 0
	sameFuncInspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= before {
			return true
		}
		for i, lhs := range as.Lhs {
			l, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if info.Defs[l] == obj || info.Uses[l] == obj {
				count++
				if i < len(as.Rhs) {
					def = as.Rhs[i]
				}
			}
		}
		return true
	})
	if count == 1 && def != nil {
		return def
	}
	return arg
}

// collectRawIDs walks a seed expression and records every distinct
// id-like leaf that is combined without passing through a call. Ids are
// expressions of integer type narrower than 64 bits (vertex ids are
// uint32, loop counters int); 64-bit values are treated as salts or
// already-mixed seeds. Non-conversion calls are opaque: their results
// count as mixed.
func collectRawIDs(info *types.Info, e ast.Expr, ids map[string]bool) {
	e = ast.Unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return // constant expression (literals, salt consts)
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
			collectRawIDs(info, e.X, ids)
			collectRawIDs(info, e.Y, ids)
		}
	case *ast.UnaryExpr:
		collectRawIDs(info, e.X, ids)
	case *ast.CallExpr:
		// A conversion like uint64(u) is transparent; a real call mixes.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			collectRawIDs(info, e.Args[0], ids)
		}
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		if isNarrowInt(info, e) {
			if key := leafKey(e); key != "" {
				ids[key] = true
			}
		}
	}
}

func isNarrowInt(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

func leafKey(e ast.Expr) string {
	if key := exprKey(e); key != "" {
		return key
	}
	if ie, ok := e.(*ast.IndexExpr); ok {
		return exprKey(ie.X) + "[...]"
	}
	return ""
}
