package analysis

import "testing"

func TestSealWriteFixture(t *testing.T) {
	runFixture(t, SealWrite, "sealwrite")
}
