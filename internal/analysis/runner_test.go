package analysis

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkg, _ := loadFixtureModule(t, name)
	return pkg
}

// loadFixtureModule additionally returns the loader, whose Packages()
// includes any module-local packages the fixture imported (fixture
// subpackages like hotalloc/dep are pulled in transitively by the
// loader's source importer).
func loadFixtureModule(t *testing.T, name string) (*Package, *Loader) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	for _, te := range pkg.TypeErrors {
		t.Fatalf("fixture %s has type errors: %v", name, te)
	}
	return pkg, loader
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantStrRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// runFixture runs one analyzer over a fixture package (plus any fixture
// subpackages it imports) and checks the diagnostics against the
// fixtures' `// want "substring"` comments: every want must be hit on
// its line, and every diagnostic must be wanted. Suppressed findings
// simply carry no want. The interprocedural module is built over every
// package the fixture load pulled in, so cross-package call chains are
// visible, same as the real driver.
func runFixture(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	root, loader := loadFixtureModule(t, fixture)
	pkgs := []*Package{root}
	for _, pkg := range loader.Packages() {
		if pkg != root && strings.HasPrefix(pkg.Dir, root.Dir+string(filepath.Separator)) {
			pkgs = append(pkgs, pkg)
		}
	}
	mod := BuildModule(loader.Packages())

	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, []*Analyzer{a}, RunOptions{Mod: mod})
		if err != nil {
			t.Fatalf("RunPackage(%s): %v", pkg.ImportPath, err)
		}
		diags = append(diags, ds...)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, sm := range wantStrRE.FindAllStringSubmatch(m[1], -1) {
						wants[k] = append(wants[k], sm[1])
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.File, d.Line}
		matched := -1
		for i, w := range wants[k] {
			if strings.Contains(d.Message, w) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, ws := range wants {
		for _, w := range ws {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w)
		}
	}
}
