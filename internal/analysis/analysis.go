// Package analysis is a small stdlib-only static-analysis framework
// (go/parser + go/types + go/importer; no x/tools dependency) plus the
// simlint analyzers that enforce this repository's determinism and
// concurrency invariants.
//
// The invariants exist because the engine promises byte-identical top-k
// results for a given (graph, Params) across worker counts and runs.
// That promise survives only if RNG streams are derived deterministically
// (rng.Mix over structured ids, never raw xor/shift combinations), map
// iteration order never leaks into results, scratch buffers always go
// back to their pool, and goroutines are spawned only by the approved
// bounded worker pools. Each rule is encoded as an Analyzer; cmd/simlint
// is the driver and `make check` runs it over ./... as part of the gate.
//
// Diagnostics can be suppressed with an in-source directive on the same
// line or the line directly above the flagged position:
//
//	//lint:ignore <rule> <reason>
//
// and a whole file can opt out of one rule with
//
//	//lint:file-ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"time"
)

// An Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the rule name used in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one loaded package. Mod is the
// module-wide interprocedural layer (call graph and summaries) shared by
// every package of the same load; analyzers that only need the package
// can ignore it.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Mod      *Module

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos. Suppression directives are applied
// later, centrally, so analyzers never need to know about them.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:     p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		analyzer: p.Analyzer,
	})
}

// A Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Rule    string         `json:"rule"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`

	analyzer *Analyzer
}

// String renders the go-vet-style one-line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Rule)
}

// RunOptions configures RunPackage.
type RunOptions struct {
	// Mod is the interprocedural layer shared across packages of one
	// load. When nil, RunPackage builds a single-package module on the
	// fly — sufficient for the intraprocedural analyzers, but
	// cross-package call chains are invisible to that view, so drivers
	// that lint whole modules should build one Module over every loaded
	// package and share it.
	Mod *Module
	// Now and Observe form an optional per-analyzer timing hook: Observe
	// is called once per analyzer with its wall-clock Run duration. The
	// clock is injected by the caller (cmd/simlint passes time.Now)
	// because this package sits inside its own norand scope and must not
	// read the wall clock directly. Either may be nil to disable timing.
	Now     func() time.Time
	Observe func(rule string, elapsed time.Duration)
	// NoSuppress disables //lint:ignore and //lint:file-ignore
	// processing, surfacing every raw diagnostic. cmd/simlint uses it to
	// audit the suppression inventory for stale directives.
	NoSuppress bool
	// Audit inverts the output: analyzers run with suppression disabled
	// and the returned diagnostics describe suppression rot — directives
	// whose rule suppresses no raw finding — plus malformed directives,
	// all under the pseudo-rule "lint". Analyzer findings themselves are
	// not returned; CI runs audit as a separate pass so a stale
	// //lint:ignore fails the build even while the code it once excused
	// stays clean.
	Audit bool
}

// Run applies the given analyzers to the package, filters suppressed
// findings, and returns the surviving diagnostics sorted by position.
// Malformed ignore directives are reported under the pseudo-rule "lint".
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackage(pkg, analyzers, RunOptions{})
}

// RunPackage is Run with explicit options (shared module, timing hooks,
// suppression control).
func RunPackage(pkg *Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	mod := opts.Mod
	if mod == nil {
		mod = BuildModule([]*Package{pkg})
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Mod: mod, diags: &diags}
		var start time.Time
		if opts.Now != nil && opts.Observe != nil {
			start = opts.Now()
		}
		err := a.Run(pass)
		if opts.Now != nil && opts.Observe != nil {
			opts.Observe(a.Name, opts.Now().Sub(start))
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
		}
	}
	idx := buildIgnoreIndex(pkg)
	diags = append(diags, idx.malformed...)
	for i := range diags {
		d := &diags[i]
		d.File, d.Line, d.Col = d.Pos.Filename, d.Pos.Line, d.Pos.Column
	}
	if opts.Audit {
		enabled := map[string]bool{"lint": true}
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
		audit := idx.stale(diags, enabled)
		for i := range audit {
			a := &audit[i]
			a.File, a.Line, a.Col = a.Pos.Filename, a.Pos.Line, a.Pos.Column
		}
		// Malformed directives (already positioned, pseudo-rule "lint")
		// fail the audit too.
		for _, d := range diags {
			if d.Rule == "lint" {
				audit = append(audit, d)
			}
		}
		sortDiagnostics(audit)
		return audit, nil
	}
	kept := diags[:0]
	for _, d := range diags {
		if !opts.NoSuppress && idx.suppressed(d) {
			continue
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}
