package analysis

import "testing"

func TestWireTaintFixture(t *testing.T) {
	runFixture(t, WireTaint, "wiretaint")
}
