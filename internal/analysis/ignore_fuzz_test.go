package analysis

import (
	"reflect"
	"strings"
	"testing"
	"unicode"
)

// FuzzParseIgnoreDirective throws arbitrary comment text at the
// suppression-directive parser and checks its structural invariants:
// the classification is total and deterministic, well-formed results
// are internally consistent, and a well-formed parse survives being
// rendered back to canonical directive text and reparsed.
func FuzzParseIgnoreDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:ignore norand fixture needs raw randomness",
		"//lint:file-ignore norand whole file is a shim",
		"//lint:ignore norand,seedmix two rules one stone",
		"//lint:ignore norand", // missing reason
		"//lint:ignore",        // missing everything
		"//lint:file-ignore",   // ditto, file-wide
		"//lint:ignoreme not a directive at all",
		"//lint:ignore norand,, empty rule in the list",
		"//lint:ignore ,norand leading empty rule",
		"// ordinary comment",
		"//lint:ignore\tnorand\ttabs as separators",
		"   //lint:ignore norand leading space",
		"/* block comment */",
		"//lint:hotpath marker, not a suppression",
		"//lint:ignore norand reason with // nested slashes",
		"",
	} {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parseIgnoreDirective(text)

		// Deterministic: same input, same answer.
		d2, ok2 := parseIgnoreDirective(text)
		if ok != ok2 || !reflect.DeepEqual(d, d2) {
			t.Fatalf("nondeterministic parse of %q: (%v,%v) vs (%v,%v)", text, d, ok, d2, ok2)
		}

		if !ok {
			if d.Malformed || d.Rules != nil || d.Reason != "" || d.FileWide {
				t.Fatalf("non-directive %q returned non-zero directive %+v", text, d)
			}
			// Nothing without the directive marker may classify as one —
			// and conversely anything rejected must lack the marker form.
			return
		}

		trimmed := strings.TrimSpace(text)
		if !strings.HasPrefix(trimmed, ignorePrefix) && !strings.HasPrefix(trimmed, fileIgnorePrefix) {
			t.Fatalf("%q classified as directive without the prefix", text)
		}

		if d.Malformed {
			if d.Rules != nil || d.Reason != "" {
				t.Fatalf("malformed directive %q carries rules/reason: %+v", text, d)
			}
			return
		}

		// Well-formed invariants: at least one rule, no empty rule, no
		// whitespace or comma inside a rule, non-empty reason.
		if len(d.Rules) == 0 {
			t.Fatalf("well-formed directive %q has no rules", text)
		}
		for _, r := range d.Rules {
			if r == "" {
				t.Fatalf("well-formed directive %q has an empty rule", text)
			}
			if strings.ContainsRune(r, ',') || strings.IndexFunc(r, unicode.IsSpace) >= 0 {
				t.Fatalf("rule %q of %q contains separator characters", r, text)
			}
		}
		if d.Reason == "" {
			t.Fatalf("well-formed directive %q has no reason", text)
		}

		// Round-trip: rendering the parse back to canonical text and
		// reparsing must reproduce it exactly.
		prefix := ignorePrefix
		if d.FileWide {
			prefix = fileIgnorePrefix
		}
		rendered := prefix + " " + strings.Join(d.Rules, ",") + " " + d.Reason
		rd, rok := parseIgnoreDirective(rendered)
		if !rok || !reflect.DeepEqual(rd, d) {
			t.Fatalf("round-trip failed: %q → %+v → %q → (%+v, %v)", text, d, rendered, rd, rok)
		}
	})
}
