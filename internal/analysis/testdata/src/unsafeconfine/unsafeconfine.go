// Package unsafeconfinetest is a simlint fixture: unsafe imports and
// mapping syscalls outside the mmap loader files.
package unsafeconfinetest

import (
	"os"
	"os/signal"
	"syscall"
	"unsafe" // want "import of unsafe outside an mmap loader file"

	_ "golang.org/x/sys/unix" // want "import of golang.org/x/sys/unix outside an mmap loader file"
)

func size() uintptr {
	var x uint32
	return unsafe.Sizeof(x)
}

func mapFile(fd, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED) // want "syscall.Mmap outside an mmap loader file"
}

func release(b []byte) error {
	return syscall.Munmap(b) // want "syscall.Munmap outside an mmap loader file"
}

// okSignals: a plain syscall import for signal handling is fine — only
// the mapping family is confined.
func okSignals() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGTERM)
}

func suppressed(b []byte) error {
	//lint:ignore unsafeconfine fixture: reasoned suppression is honoured
	return syscall.Munmap(b)
}

func wrongRuleDoesNotSuppress(b []byte) error {
	//lint:ignore norand a different rule's directive must not hide this
	return syscall.Munmap(b) // want "syscall.Munmap outside an mmap loader file"
}
