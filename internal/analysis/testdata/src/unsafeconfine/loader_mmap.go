package unsafeconfinetest

import (
	"syscall"
	"unsafe"
)

// mapWords is the blessed shape: a *mmap*.go file may reinterpret
// mapped bytes and call the mapping syscalls freely.
func mapWords(fd, n int) ([]uint32, error) {
	data, err := syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&data[0])), n/4), nil
}

func unmapWords(b []byte) error {
	return syscall.Munmap(b)
}
