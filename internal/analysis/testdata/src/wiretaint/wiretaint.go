// Package wiretaint exercises the wiretaint analyzer: every length,
// count, or offset read off the wire must pass a bounds check before it
// sizes a make, indexes a buffer, bounds a loop, or limits a read.
package wiretaint

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"strconv"
)

const maxFrame = 64 << 20

// --- direct source → make ---

func badMake(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return make([]byte, n) // want "wire-tainted n reaches a make size"
}

func okGuardedMake(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// --- index sink ---

func badIndex(b []byte, table []uint32) uint32 {
	i := int(binary.LittleEndian.Uint32(b))
	return table[i] // want "wire-tainted i reaches an index"
}

func okIndex(b []byte, table []uint32) uint32 {
	i := int(binary.LittleEndian.Uint32(b))
	if i >= len(table) {
		return 0
	}
	return table[i]
}

// --- slice-bound sink ---

func badSliceBound(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	return b[:n] // want "wire-tainted n reaches a slice bound"
}

func okSliceBound(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if n > len(b) {
		return nil
	}
	return b[:n]
}

// --- loop-bound sink ---

func badLoop(b []byte) int {
	n := int(binary.LittleEndian.Uint32(b))
	sum := 0
	for i := 0; i < n; i++ { // want "wire-tainted n reaches a loop bound"
		sum += i
	}
	return sum
}

func okLoop(b []byte) int {
	n := int(binary.LittleEndian.Uint32(b))
	if n > len(b) {
		return 0
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += int(b[i])
	}
	return sum
}

// --- io read-limit sink ---

func badIOLimit(r io.Reader, b []byte) io.Reader {
	n := int64(binary.LittleEndian.Uint64(b))
	return io.LimitReader(r, n) // want "wire-tainted n reaches an io read limit"
}

func okIOLimit(r io.Reader, b []byte) io.Reader {
	n := int64(binary.LittleEndian.Uint64(b))
	if n > maxFrame {
		n = maxFrame
	}
	return io.LimitReader(r, n)
}

// --- strconv source (query parameters) ---

func badAtoi(q string) []byte {
	n, _ := strconv.Atoi(q)
	return make([]byte, n) // want "wire-tainted n reaches a make size"
}

// --- json body source ---

type jreq struct {
	N     int
	Items []uint32
}

func badJSON(body []byte) []uint32 {
	var q jreq
	_ = json.Unmarshal(body, &q)
	return make([]uint32, q.N) // want "wire-tainted q.N reaches a make size"
}

func okJSON(body []byte) []uint32 {
	var q jreq
	_ = json.Unmarshal(body, &q)
	if q.N < 0 || q.N > maxFrame {
		return nil
	}
	out := make([]uint32, 0, q.N)
	for _, v := range q.Items {
		out = append(out, v)
	}
	return out
}

// --- path sensitivity: a guard on one branch does not cover the join ---

func badJoin(b []byte, strict bool) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if strict {
		if n > maxFrame {
			return nil
		}
	}
	return make([]byte, n) // want "wire-tainted n reaches a make size"
}

// badJoinElse mirrors badJoin with the guard in the else branch, so the
// sanitized path reaches the join before the tainted one — the merge
// must still let tainted win regardless of arrival order.
func badJoinElse(b []byte, strict bool) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if strict {
	} else {
		if n > maxFrame {
			return nil
		}
	}
	return make([]byte, n) // want "wire-tainted n reaches a make size"
}

// --- re-tainting after a guard discards the sanitization ---

func badRefresh(b []byte) []byte {
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxFrame {
		return nil
	}
	n = int(binary.LittleEndian.Uint32(b[4:]))
	return make([]byte, n) // want "wire-tainted n reaches a make size"
}

// --- interprocedural source: helpers that return wire-derived values ---

func readLen(b []byte) int {
	return int(binary.LittleEndian.Uint32(b))
}

func readLen2(b []byte) int {
	return readLen(b)
}

func badHelperSource(b []byte) []byte {
	return make([]byte, readLen2(b)) // want "result of readLen2 reaches a make size"
}

func okHelperSource(b []byte) []byte {
	n := readLen2(b)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// --- interprocedural sink: helpers whose parameter reaches a sink ---

func alloc(n int) []byte {
	return make([]byte, n)
}

func allocVia(n int) []byte {
	return alloc(n)
}

func badHelperSink(b []byte) []byte {
	n := readLen(b)
	return allocVia(n) // want "sink inside allocVia"
}

func allocGuarded(n int) []byte {
	if n < 0 || n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

func okGuardedHelper(b []byte) []byte {
	return allocGuarded(readLen(b))
}

// --- //lint:sanitized marker helpers ---

// fits reports whether n is a plausible section size.
//
//lint:sanitized callers may trust a checked n after the call
func fits(n int) bool {
	return n >= 0 && n <= maxFrame
}

func okMarkerGuard(b []byte) []byte {
	n := readLen(b)
	if !fits(n) {
		return nil
	}
	return make([]byte, n)
}

// --- interprocedural stores: decoding through a pointer parameter ---

type hdr struct {
	count uint32
	off   uint32
}

func decodeHdr(b []byte, h *hdr) {
	h.count = binary.LittleEndian.Uint32(b)
	h.off = binary.LittleEndian.Uint32(b[4:])
}

func decodeHdr2(b []byte, h *hdr) {
	decodeHdr(b, h)
}

func badParamStore(b []byte) []uint32 {
	var h hdr
	decodeHdr2(b, &h)
	return make([]uint32, h.count) // want "wire-tainted h.count reaches a make size"
}

func okParamStore(b []byte) []uint32 {
	var h hdr
	decodeHdr2(b, &h)
	if h.count > maxFrame {
		return nil
	}
	return make([]uint32, h.count)
}

// --- suppression ---

func suppressed(b []byte) []byte {
	n := readLen(b)
	//lint:ignore wiretaint callers hand us at most one already-validated frame
	return make([]byte, n)
}
