// Package atomictest is a simlint fixture: fields published or mutated
// via sync/atomic must never be read or written plainly.
package atomictest

import "sync/atomic"

type snapshot struct{ id int64 }

type engine struct {
	snap    atomic.Pointer[snapshot]
	pending atomic.Bool
	hits    int64 // plain word, accessed via atomic.AddInt64 below
	name    string
	slots   []atomic.Pointer[snapshot]
}

func (e *engine) okAtomicAPI() *snapshot {
	e.pending.Store(true)
	if e.pending.Load() {
		return e.snap.Load()
	}
	return nil
}

func (e *engine) okAddressTaken() *atomic.Bool { return &e.pending }

func (e *engine) okPlainField() string { return e.name }

func (e *engine) badPlainRead() bool {
	var b atomic.Bool
	b = e.pending // want "plain read of atomic field pending"
	return b.Load()
}

func (e *engine) badPlainStore() {
	var b atomic.Bool
	e.pending = b // want "plain store to atomic field pending"
}

func (e *engine) okSlotAPI(i int, s *snapshot) *snapshot {
	e.slots[i].Store(s)
	return e.slots[i].Load()
}

func (e *engine) okSlotHeader() int {
	e.slots = make([]atomic.Pointer[snapshot], 8)
	return len(e.slots)
}

func (e *engine) badSlotCopy(i int) *snapshot {
	p := e.slots[i] // want "plain read of atomic field slots"
	return p.Load()
}

func (e *engine) badSlotRange() int {
	n := 0
	for _, p := range e.slots { // want "ranging over atomic slice field slots"
		if p.Load() != nil {
			n++
		}
	}
	return n
}

func atomicHits(e *engine) int64 {
	return atomic.AddInt64(&e.hits, 1)
}

func (e *engine) badPlainHits() int64 {
	return e.hits // want "accessed via sync/atomic elsewhere"
}

// newEngine initializes atomic state on a value nothing else can see yet:
// the fresh-local constructor exemption.
func newEngine() *engine {
	e := &engine{name: "fresh"}
	e.hits = 0
	e.slots = make([]atomic.Pointer[snapshot], 4)
	return e
}

// newSharedEngine hands the value to a goroutine before finishing
// initialization, so the exemption does not apply.
func newSharedEngine() *engine {
	e := &engine{}
	go atomicHits(e)
	e.hits = 0 // want "accessed via sync/atomic elsewhere"
	return e
}

func (e *engine) suppressed() int64 {
	//lint:ignore atomicfield fixture: single-threaded test helper
	return e.hits
}
