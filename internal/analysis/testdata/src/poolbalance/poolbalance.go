// Package pooltest is a simlint fixture: scratch acquire/release
// pairing, mirroring internal/core's engine pool.
package pooltest

import "sync"

type scratch struct{ buf []byte }

type engine struct{ pool sync.Pool }

func (e *engine) getScratch() *scratch  { return e.pool.Get().(*scratch) }
func (e *engine) putScratch(s *scratch) { e.pool.Put(s) }

func (e *engine) okDefer() int {
	s := e.getScratch()
	defer e.putScratch(s)
	return len(s.buf)
}

// okLinear releases before the only return, no defer needed.
func (e *engine) okLinear() int {
	s := e.getScratch()
	n := len(s.buf)
	e.putScratch(s)
	return n
}

func (e *engine) leakEarlyReturn(fail bool) int {
	s := e.getScratch() // want "not released"
	if fail {
		return 0
	}
	e.putScratch(s)
	return len(s.buf)
}

// leakNoRelease falls off the end still holding the scratch.
func (e *engine) leakNoRelease() {
	s := e.getScratch() // want "not released"
	_ = s
}

func (e *engine) okRawPool() {
	s := e.pool.Get().(*scratch)
	defer e.pool.Put(s)
	s.buf = s.buf[:0]
}

// okClosure mirrors the worker-pool shape: each goroutine owns its
// scratch and the closure is checked as its own function.
func (e *engine) okClosure(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.getScratch()
			defer e.putScratch(s)
			_ = s
		}()
	}
	wg.Wait()
}

func (e *engine) suppressed() *scratch {
	//lint:ignore poolbalance fixture: ownership transfers to the caller
	s := e.getScratch()
	return s
}

// okLoopPerIteration acquires and releases inside each iteration; the
// old lexical-dominance walk flagged this, the CFG sees the balance.
func (e *engine) okLoopPerIteration(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s := e.getScratch()
		total += len(s.buf)
		e.putScratch(s)
	}
	return total
}

// okBranchPaired acquires and releases entirely inside one branch; the
// path that never acquires owes nothing.
func (e *engine) okBranchPaired(big bool) int {
	if big {
		s := e.getScratch()
		n := len(s.buf)
		e.putScratch(s)
		return n
	}
	return 0
}

// leakLoopConditional releases only on the found path; falling out of
// the loop still holds the scratch.
func (e *engine) leakLoopConditional(xs []int) int {
	s := e.getScratch() // want "not released"
	for _, x := range xs {
		if x > 0 {
			e.putScratch(s)
			return x
		}
	}
	return 0
}

// --- interprocedural cases: acquires and releases through helpers ---

// freshScratch transfers a fresh scratch to its caller; its summary
// marks it as an acquiring helper, and the direct-return shape means it
// owes no release itself.
func (e *engine) freshScratch() *scratch { return e.getScratch() }

// freshIndirect transfers through two hops (summary propagation).
func (e *engine) freshIndirect() *scratch { return e.freshScratch() }

// recycle releases its parameter; callers passing a scratch to it are
// balanced.
func (e *engine) recycle(s *scratch) { e.putScratch(s) }

// recycleIndirect forwards its parameter to a releasing helper.
func (e *engine) recycleIndirect(s *scratch) { e.recycle(s) }

// okHelperPair acquires and releases entirely through helpers.
func (e *engine) okHelperPair() int {
	s := e.freshScratch()
	n := len(s.buf)
	e.recycle(s)
	return n
}

// okHelperPairDeep: both sides two hops deep, release deferred.
func (e *engine) okHelperPairDeep() int {
	s := e.freshIndirect()
	defer e.recycleIndirect(s)
	return len(s.buf)
}

// leakHelperAcquire: acquiring through a helper is still an acquire, so
// dropping the scratch is still a leak.
func (e *engine) leakHelperAcquire() int {
	s := e.freshScratch() // want "not released"
	return len(s.buf)
}

// leakHelperNoRelease: passing the scratch to a helper that does NOT
// release it balances nothing.
func (e *engine) leakHelperNoRelease() {
	s := e.freshScratch() // want "not released"
	e.inspect(s)
}

func (e *engine) inspect(s *scratch) { _ = len(s.buf) }
