// Package poolescape exercises the poolescape analyzer: a pooled object
// must not be used or retained after its Put.
package poolescape

import "sync"

type scratch struct {
	buf []byte
	n   int
}

type engine struct {
	pool sync.Pool
	sink chan *scratch
	keep *scratch
}

func (e *engine) getScratch() *scratch {
	s := e.pool.Get().(*scratch)
	return s
}

func (e *engine) putScratch(s *scratch) {
	e.pool.Put(s)
}

// --- the happy path: use, then release ---

func (e *engine) okUseBeforePut() int {
	s := e.getScratch()
	s.n = 7
	n := s.n
	e.putScratch(s)
	return n
}

// --- use after Put ---

func (e *engine) badUseAfterPut() int {
	s := e.getScratch()
	e.putScratch(s)
	return len(s.buf) // want "use after Put"
}

func (e *engine) badPathUse(flush bool) int {
	s := e.getScratch()
	if flush {
		e.putScratch(s)
	}
	n := len(s.buf) // want "use after Put"
	e.putScratch(s) // want "double Put"
	return n
}

// --- double Put ---

func (e *engine) badDoublePut() {
	s := e.getScratch()
	e.putScratch(s)
	e.putScratch(s) // want "double Put"
}

// --- aliases share the lifetime ---

func (e *engine) badAliasUse() int {
	s := e.getScratch()
	t := s
	e.putScratch(t)
	return s.n // want "use after Put"
}

func (e *engine) badAliasDoublePut() {
	s := e.getScratch()
	t := s
	e.putScratch(s)
	e.putScratch(t) // want "double Put"
}

// --- re-acquiring into the same variable resets the lifetime ---

func (e *engine) okReacquire() int {
	s := e.getScratch()
	e.putScratch(s)
	s = e.getScratch()
	n := s.n
	e.putScratch(s)
	return n
}

func (e *engine) okLoopReuse(k int) int {
	total := 0
	for i := 0; i < k; i++ {
		s := e.getScratch()
		total += s.n
		e.putScratch(s)
	}
	return total
}

// --- escaping aliases while this function releases ---

func (e *engine) badReturnEscape() []byte {
	s := e.getScratch()
	defer e.putScratch(s)
	return s.buf // want "returned while a deferred release"
}

func (e *engine) okReturnLen() int {
	s := e.getScratch()
	defer e.putScratch(s)
	return s.n
}

func (e *engine) okReturnTransfer() *scratch {
	s := e.getScratch()
	s.n = 0
	return s
}

func (e *engine) badFieldEscape() {
	s := e.getScratch()
	e.keep = s // want "stored into e.keep"
	e.putScratch(s)
}

func (e *engine) badSendEscape() {
	s := e.getScratch()
	e.sink <- s // want "escapes through a channel send"
	e.putScratch(s)
}

func (e *engine) badAppendEscape(log []*scratch) []*scratch {
	s := e.getScratch()
	log = append(log, s) // want "retained via append"
	e.putScratch(s)
	return log
}

// --- goroutine captures ---

func (e *engine) badGoEscape() {
	s := e.getScratch()
	go func() { s.n++ }() // want "captured by a goroutine"
	e.putScratch(s)
}

func (e *engine) okGoOwns() {
	go func() {
		s := e.getScratch()
		s.n = 1
		e.putScratch(s)
	}()
}

func spawn(f func()) {
	go f()
}

func (e *engine) badSpawnHelper() {
	s := e.getScratch()
	spawn(func() { s.n++ }) // want "captured by a closure passed to spawn"
	e.putScratch(s)
}

// --- releases through helpers (2-deep) ---

func (e *engine) recycle(s *scratch) {
	e.putScratch(s)
}

func (e *engine) recycle2(s *scratch) {
	e.recycle(s)
}

func (e *engine) badUseAfterHelperPut() int {
	s := e.getScratch()
	e.recycle2(s)
	return s.n // want "use after Put"
}

func (e *engine) okHelperPut() int {
	s := e.getScratch()
	n := s.n
	e.recycle2(s)
	return n
}

// --- acquires through helpers ---

func (e *engine) fresh() *scratch {
	return e.getScratch()
}

func (e *engine) badHelperAcquire() int {
	s := e.fresh()
	e.putScratch(s)
	return s.n // want "use after Put"
}

// --- suppression ---

func (e *engine) suppressedUse() int {
	s := e.getScratch()
	e.putScratch(s)
	//lint:ignore poolescape this engine is single-goroutine in tests
	return s.n
}
