// Package dep is the cross-package leg of the hotalloc fixture's call
// chains: its allocation is reached two calls deep from a marked root
// in the parent fixture package.
package dep

var sink []float64

// Grow allocates; the diagnostic must carry the full chain from the
// hotalloc fixture's deepRoot.
func Grow(n int) float64 {
	buf := make([]float64, n) // want "deepRoot → mid → Grow"
	sink = buf
	return float64(len(buf))
}
