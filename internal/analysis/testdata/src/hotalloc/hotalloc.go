// Package hotalloc exercises the interprocedural allocation gate: the
// //lint:hotpath roots below reach planted allocation sites directly,
// one call deep, and two calls deep (through the dep subpackage), and
// every site must be reported with the call chain that reaches it.
// Non-hot functions may allocate freely, amortized self-appends are
// exempt, and the trusted extern allowlist (math etc.) stays silent.
package hotalloc

import (
	"math"
	"strconv"

	"repro/internal/analysis/testdata/src/hotalloc/dep"
)

type point struct{ x, y int }

var (
	sink  []int
	grown []int
	bsink any
	fsink float64
)

// Direct: the allocation sits in the marked root itself.
//
//lint:hotpath fixture root with a direct allocation
func directRoot(n int) {
	buf := make([]int, n) // want "make"
	sink = buf
}

// One call deep: the root is clean, the helper allocates.
//
//lint:hotpath fixture root reaching an allocating helper
func oneDeepRoot() {
	helperAlloc()
}

func helperAlloc() {
	sink = make([]int, 4) // want "oneDeepRoot → helperAlloc"
}

// Two calls deep, crossing into the dep subpackage: the make in
// dep.Grow must be reported with the full three-hop chain.
//
//lint:hotpath fixture root reaching dep.Grow two calls deep
func deepRoot() {
	mid()
}

func mid() {
	fsink = dep.Grow(3)
}

// The full site catalogue in one root.
//
//lint:hotpath fixture root covering the allocation-site catalogue
func catalogue(xs []int, s1, s2 string) {
	_ = &point{1, 2}   // want "composite literal"
	m := map[int]int{} // want "map literal"
	_ = m
	f := func() {} // want "closure"
	f()            // want "dynamic call"
	_ = s1 + s2    // want "string concatenation"
	_ = []byte(s1) // want "conversion"
	box(7)         // want "interface boxing"
	go work()      // want "goroutine spawn"

	_ = math.Sqrt(2)         // allowlisted extern: silent
	grown = append(grown, 1) // amortized self-append: silent
	fresh := append(xs, 1)   // want "append"
	_ = fresh
	_ = strconv.Itoa(9) // want "not proven allocation-free"
}

func box(v any) { bsink = v }

func work() {}

// Suppression works like every other rule.
//
//lint:hotpath fixture root with a suppressed site
func suppressedRoot() {
	tmp := make([]int, 1) //lint:ignore hotalloc fixture demonstrates suppression
	_ = tmp
}

// Not marked and not reachable from a marked root: allocations here are
// nobody's business.
func coldAlloc() []int {
	return make([]int, 9)
}
