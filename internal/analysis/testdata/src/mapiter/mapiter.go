// Package mapitertest is a simlint fixture: map iteration order leaking
// into results.
package mapitertest

import "sort"

type result struct{ out []uint32 }

func leakReturn(m map[uint32]float64) []uint32 {
	var out []uint32
	for v := range m { // want "escapes unsorted"
		out = append(out, v)
	}
	return out
}

func okSorted(m map[uint32]float64) []uint32 {
	var out []uint32
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// okDense extracts by dense index: position, not visit order, decides.
func okDense(m map[uint32]float64, n int) []float64 {
	dense := make([]float64, n)
	for v, s := range m {
		dense[v] = s
	}
	return dense
}

// okLocal never lets the accumulation order escape.
func okLocal(m map[uint32]bool) int {
	hits := 0
	for v := range m {
		if m[v] {
			hits++
		}
	}
	return hits
}

func leakChannel(m map[uint32]float64, ch chan uint32) {
	for v := range m {
		ch <- v // want "channel send"
	}
}

func leakField(m map[uint32]float64, r *result) {
	for v := range m { // want "escapes unsorted"
		r.out = append(r.out, v)
	}
}

func okFieldSorted(m map[uint32]float64, r *result) {
	for v := range m {
		r.out = append(r.out, v)
	}
	sort.Slice(r.out, func(i, j int) bool { return r.out[i] < r.out[j] })
}

func suppressed(m map[uint32]float64) []uint32 {
	var out []uint32
	//lint:ignore mapiter fixture: order is canonicalized downstream
	for v := range m {
		out = append(out, v)
	}
	return out
}
