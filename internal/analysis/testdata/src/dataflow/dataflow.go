// Package dataflowtest is not a lint fixture: it carries no // want
// markers and is never passed to runFixture. It exists so the dataflow
// unit tests can type-check real functions through the normal loader
// and exercise ReachingDefs, DefsAt, and GoCaptured against go/types
// objects rather than hand-built stand-ins.
package dataflowtest

func reassign(cond bool) int {
	x := 1
	if cond {
		x = 2
	}
	return x
}

func multiValue(cond bool) (int, int) {
	a, b := pair()
	if cond {
		a = 3
	}
	return a, b
}

func pair() (int, int) { return 1, 2 }

func capture(n int) int {
	m := n
	done := make(chan struct{})
	go func() {
		_ = m
		close(done)
	}()
	<-done
	return n
}
