// Package locktest is a simlint fixture: every Lock paired with an
// Unlock on all CFG paths, no re-lock while held, no double unlock.
package locktest

import "sync"

type stripe struct {
	mu sync.Mutex
	n  int
}

type store struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	shards [4]stripe
	val    int
}

func (s *store) okDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

func (s *store) okLinear() int {
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	return v
}

func (s *store) okBranchBalanced(fast bool) int {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return 0
	}
	v := s.val
	s.mu.Unlock()
	return v
}

// okLoopBreakUnlock holds the lock across the loop and releases only on
// the break path — the only way out, so every exit is balanced.
func (s *store) okLoopBreakUnlock(xs []int) int {
	s.mu.Lock()
	i := 0
	for {
		if i >= len(xs) {
			s.mu.Unlock()
			break
		}
		s.val += xs[i]
		i++
	}
	return s.val
}

func (s *store) leakEarlyReturn(fail bool) int {
	s.mu.Lock() // want "not matched by Unlock"
	if fail {
		return -1
	}
	s.mu.Unlock()
	return s.val
}

func (s *store) leakLoopFallout(xs []int) int {
	s.mu.Lock() // want "not matched by Unlock"
	for i := 0; i < len(xs); i++ {
		if xs[i] < 0 {
			s.mu.Unlock()
			return -1
		}
	}
	return s.val
}

func (s *store) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want "self-deadlocks"
	s.mu.Unlock()
}

func (s *store) doubleUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Unlock() // want "double unlock"
}

// okTwoMutexes: distinct mutexes interleave freely.
func (s *store) okTwoMutexes() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.mu.Lock()
	v := s.val
	s.mu.Unlock()
	return v
}

func (s *store) leakReadSide() int {
	s.rw.RLock() // want "not matched by RUnlock"
	return s.val
}

// okStripe: lock stripes are tracked by their rendered index key.
func (s *store) okStripe(i int) int {
	s.shards[i].mu.Lock()
	n := s.shards[i].n
	s.shards[i].mu.Unlock()
	return n
}

func (s *store) leakStripe(i int) {
	s.shards[i].mu.Lock() // want "not matched by Unlock"
	s.shards[i].n++
}

// okTryLock: Try* makes held-ness a data question; the key is skipped.
func (s *store) okTryLock() bool {
	if s.mu.TryLock() {
		s.mu.Unlock()
		return true
	}
	return false
}

func (s *store) suppressedHandoff() {
	//lint:ignore lockbalance fixture: lock intentionally handed to the caller
	s.mu.Lock()
}
