// Package ctxtest is a simlint fixture: cancellation must flow from a
// ctx-receiving function into everything it calls, and serving loops
// must be stoppable.
package ctxtest

import (
	"context"
	"time"
)

type ctxKey struct{}

type index struct{ n int }

func (ix *index) topKCtx(ctx context.Context, u int) int {
	if ctx.Err() != nil {
		return 0
	}
	return u % ix.n
}

func (ix *index) topK(u int) int { return u % ix.n }

// okNonCtxWrapper has no ctx parameter: the one place a root context
// legitimately comes from.
func (ix *index) okNonCtxWrapper(u int) int {
	return ix.topKCtx(context.Background(), u)
}

func (ix *index) okThread(ctx context.Context, u int) int {
	return ix.topKCtx(ctx, u)
}

// okDerived: a context derived from ctx still carries its cancellation.
func (ix *index) okDerived(ctx context.Context, u int) int {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return ix.topKCtx(tctx, u)
}

// okRebound: rebinding ctx to a derived value keeps the chain.
func (ix *index) okRebound(ctx context.Context, u int) int {
	ctx = context.WithValue(ctx, ctxKey{}, u)
	return ix.topKCtx(ctx, u)
}

// okNoCtxCallee: callees without a context parameter are unconstrained.
func (ix *index) okNoCtxCallee(ctx context.Context, u int) int {
	_ = ctx
	return ix.topK(u)
}

func (ix *index) badBackground(ctx context.Context, u int) int {
	return ix.topKCtx(context.Background(), u) // want "synthesized in a function that already receives"
}

func (ix *index) badRebound(ctx context.Context, u int) int {
	c := context.Background() // want "synthesized in a function that already receives"
	return ix.topKCtx(c, u)   // want "does not derive"
}

// badParamRebound: reassigning the parameter itself severs the chain.
func (ix *index) badParamRebound(ctx context.Context, u int) int {
	ctx = context.Background() // want "synthesized in a function that already receives"
	return ix.topKCtx(ctx, u)  // want "does not derive"
}

// badPathMixed: one path severs the chain, so the call site may run with
// an unrelated context.
func (ix *index) badPathMixed(ctx context.Context, u int, offline bool) int {
	c := ctx
	if offline {
		c = context.Background() // want "synthesized in a function that already receives"
	}
	return ix.topKCtx(c, u) // want "does not derive"
}

// badClosure: a closure inside a ctx-receiving function is held to the
// same contract — the caller's ctx is right there to use.
func (ix *index) badClosure(ctx context.Context, u int) int {
	f := func() int {
		return ix.topKCtx(context.Background(), u) // want "synthesized in a function that already receives"
	}
	return f()
}

// okHedgedClosure: the hedged-request shape — a shared cancellable
// context derived in the enclosing function and captured by attempt
// closures still carries the caller's cancellation.
func (ix *index) okHedgedClosure(ctx context.Context, u int) int {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	launch := func() int {
		return ix.topKCtx(hctx, u)
	}
	return launch()
}

// badUnderivedCapture: a captured context local synthesized from
// Background never carries the caller's cancellation, closure or not.
func (ix *index) badUnderivedCapture(ctx context.Context, u int) int {
	c := context.Background() // want "synthesized in a function that already receives"
	f := func() int {
		return ix.topKCtx(c, u) // want "does not derive"
	}
	return f()
}

// pump is an unstoppable serving loop: no ctx, no done channel.
func pump(ch chan int) {
	for { // want "never checks ctx.Err"
		ch <- 1
	}
}

// okDoneLoop: the done-channel idiom (select with an escaping receive).
func okDoneLoop(ch chan int, done chan struct{}) {
	for {
		select {
		case <-done:
			return
		case v := <-ch:
			_ = v
		}
	}
}

// okCtxLoop consults ctx directly.
func okCtxLoop(ctx context.Context, ch chan int) {
	for {
		if ctx.Err() != nil {
			return
		}
		ch <- 1
	}
}

// okIdleLoop does no work, so there is nothing to cancel.
func okIdleLoop() {
	n := 0
	for {
		n++
		_ = n
	}
}

func suppressedPump(ch chan int) {
	//lint:ignore ctxflow fixture: loop ends when the consumer closes ch
	for {
		ch <- 1
	}
}

// --- interprocedural cases: the loop's ctx check lives in a helper ---

// stop consults the context; its summary records ChecksCtx, so loops
// that hand it their ctx are stoppable.
func stop(ctx context.Context) bool { return ctx.Err() != nil }

// stopIndirect checks through one more hop (summary propagation).
func stopIndirect(ctx context.Context) bool { return stop(ctx) }

// busy receives a ctx and ignores it — passing ctx here checks nothing.
func busy(ctx context.Context, ch chan int) { ch <- 1 }

// okHelperLoop: the cancellation check happens inside stop.
func okHelperLoop(ctx context.Context, ch chan int) {
	for {
		if stop(ctx) {
			return
		}
		ch <- 1
	}
}

// okHelperLoopDeep: the check is two calls away; the summaries carry it.
func okHelperLoopDeep(ctx context.Context, ch chan int) {
	for {
		if stopIndirect(ctx) {
			return
		}
		ch <- 1
	}
}

// badHelperLoop mentions ctx only by passing it to a helper that never
// consults it; the loop is still unstoppable.
func badHelperLoop(ctx context.Context, ch chan int) {
	for { // want "never checks ctx.Err"
		busy(ctx, ch)
	}
}

// okExternLoop: a callee without a loaded body is trusted to honor the
// ctx it receives (its source is not available to prove otherwise).
func okExternLoop(ctx context.Context, d time.Duration) {
	for {
		if sleepCtx(ctx, d) {
			return
		}
	}
}

// sleepCtx stands in for an extern-ish helper; it does check.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return true
	case <-t.C:
		return false
	}
}
