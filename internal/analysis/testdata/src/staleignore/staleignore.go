// Package staleignore exercises the -audit stale-suppression check: one
// live directive (its raw finding still fires), one stale line directive
// (nothing on the next line triggers the rule), and one stale file-wide
// directive for a rule with no finding anywhere in the file.
package staleignore

import "time"

//lint:file-ignore seedmix nothing in this file derives seeds at all

func live() time.Time {
	//lint:ignore norand fixture keeps a live finding under suppression
	return time.Now()
}

func quiet() int {
	//lint:ignore norand this directive went stale when the time.Now call below was removed
	return 42
}
