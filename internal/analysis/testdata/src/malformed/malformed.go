// Package malformedtest is a simlint fixture: an ignore directive with
// no reason is itself a finding.
package malformedtest

//lint:ignore norand
func f() {}
