// Package norandtest is a simlint fixture: nondeterministic inputs in a
// deterministic package.
package norandtest

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func now() int64 {
	t := time.Now() // want "time.Now in a deterministic package"
	return t.UnixNano() + int64(rand.Int())
}

// okDuration uses the time package without touching the clock.
func okDuration() time.Duration {
	var d time.Duration
	return d
}

func suppressed() time.Time {
	//lint:ignore norand fixture: reasoned suppression is honoured
	return time.Now()
}

func wrongRuleDoesNotSuppress() time.Time {
	//lint:ignore mapiter a different rule's directive must not hide this
	return time.Now() // want "time.Now in a deterministic package"
}
