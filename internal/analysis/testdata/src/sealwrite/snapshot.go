package sealtest

// newSnapshot initializes fields through a *Snapshot receiver before the
// value is published — snapshot.go is an allowlisted construction file,
// mirroring internal/core/snapshot.go.
func newSnapshot(n int) *Snapshot {
	sn := &Snapshot{}
	sn.gamma = make([]float32, n)
	sn.idx = make([]uint32, 0, n)
	sn.sealed = false
	return sn
}
