// Package sealtest is a simlint fixture: Snapshot fields are immutable
// after Seal(); only the Engine builder (or the allowlisted construction
// files) may write them.
package sealtest

type snapStats struct{ bytes int }

type Snapshot struct {
	gamma  []float32
	idx    []uint32
	sealed bool
	stats  snapStats
}

type Engine struct{ *Snapshot }

// okBuilderWrites: every form of write is fine through the Engine.
func (e *Engine) okBuilderWrites(n int) {
	e.gamma = make([]float32, n)
	e.gamma[0] = 1
	e.idx = append(e.idx, uint32(n))
	e.stats.bytes = n
	e.sealed = true
}

func okBuilderVar(e *Engine, i int) {
	e.idx[i] = 0
}

func (s *Snapshot) badMethodWrite() {
	s.sealed = false // want "write to Snapshot.sealed"
}

func badSliceStore(s *Snapshot, i int) {
	s.gamma[i] = 0 // want "store through Snapshot.gamma"
}

func badViaAlias(e *Engine) {
	snap := e.Snapshot
	snap.gamma = nil // want "write to Snapshot.gamma"
}

func badNestedField(s *Snapshot, n int) {
	s.stats.bytes = n // want "write to Snapshot.stats"
}

func badIncDec(s *Snapshot) {
	s.stats.bytes++ // want "write to Snapshot.stats"
}

// okRead: reading a snapshot anywhere is the whole point.
func okRead(s *Snapshot, i int) float32 {
	if s.sealed {
		return s.gamma[i]
	}
	return 0
}

func suppressedRepair(s *Snapshot) {
	//lint:ignore sealwrite fixture: test-only invariant repair
	s.sealed = true
}
