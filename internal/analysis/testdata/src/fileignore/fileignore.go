// Package fileignoretest is a simlint fixture: a file-wide suppression
// covers every finding of one rule in the file.
package fileignoretest

//lint:file-ignore norand fixture: this whole file is timing-only

import "time"

func a() time.Time { return time.Now() }

func b() time.Duration { return time.Since(time.Now()) }
