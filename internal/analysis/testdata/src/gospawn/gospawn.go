// Package gospawntest is a simlint fixture: raw goroutine creation
// outside the approved worker pools.
package gospawntest

import "sync"

// parallelVertices carries an approved name: a bounded counted fan-out
// is the blessed concurrency shape.
func parallelVertices(workers int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	wg.Wait()
}

func fanOutPerItem(items []int, fn func(int)) {
	for _, it := range items {
		go fn(it) // want "outside the approved worker pools"
	}
}

// scoreBlockParallel is an approved name, but per-item spawning inside a
// range loop is still unbounded and still flagged.
func scoreBlockParallel(items []int, fn func(int)) {
	for _, it := range items {
		go fn(it) // want "one goroutine per ranged item"
	}
}

func fireAndForget(fn func()) {
	go fn() // want "outside the approved worker pools"
}

// startRefresher is the approved long-lived background worker shape: one
// goroutine, spawned once, outside any loop.
func startRefresher(loop func()) {
	go loop()
}

func suppressed(fn func()) {
	//lint:ignore gospawn fixture: reasoned suppression is honoured
	go fn()
}
