// Package gospawntest is a simlint fixture: raw goroutine creation
// outside the approved worker pools.
package gospawntest

import "sync"

// parallelVertices carries an approved name: a bounded counted fan-out
// is the blessed concurrency shape.
func parallelVertices(workers int, fn func(int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(w)
		}()
	}
	wg.Wait()
}

func fanOutPerItem(items []int, fn func(int)) {
	for _, it := range items {
		go fn(it) // want "outside the approved worker pools"
	}
}

// scoreBlockParallel is an approved name, but per-item spawning inside a
// range loop is still unbounded and still flagged.
func scoreBlockParallel(items []int, fn func(int)) {
	for _, it := range items {
		go fn(it) // want "one goroutine per ranged item"
	}
}

func fireAndForget(fn func()) {
	go fn() // want "outside the approved worker pools"
}

// startRefresher is the approved long-lived background worker shape: one
// goroutine, spawned once, outside any loop.
func startRefresher(loop func()) {
	go loop()
}

func suppressed(fn func()) {
	//lint:ignore gospawn fixture: reasoned suppression is honoured
	go fn()
}

// fanout is the router's approved counted scatter: one goroutine per
// shard, the spawn count fixed before the loop.
func fanout(n int, task func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			task(i)
		}(i)
	}
	wg.Wait()
}

// hedged is the router's approved launch-on-demand shape: attempts
// spawn one at a time under a fixed cap, from a closure — attribution
// follows the enclosing named declaration, so the go statement is
// credited to hedged itself.
func hedged(attempts int, try func(int)) {
	launched := 0
	launch := func() {
		a := launched
		launched++
		go try(a)
	}
	launch()
	for launched < attempts {
		launch()
	}
}

// scatter has the counted shape but is not an approved pool name:
// new fan-out sites must be named into the allowlist deliberately.
func scatter(n int, task func(int)) {
	for i := 0; i < n; i++ {
		go task(i) // want "outside the approved worker pools"
	}
}
