// Package seedmixtest is a simlint fixture: RNG seeds derived from
// structured ids. The two "want" cases replicate the PR-1 pairSeed bug,
// where u^(v<<1) collided for pairs like (0,1)/(2,0) and correlated
// their walk streams.
package seedmixtest

import "repro/internal/rng"

type engine struct {
	seed uint64
	rng  rng.Source
}

// pairSeedRaw is the historical bug shape: raw xor/shift of two ids.
func (e *engine) pairSeedRaw(u, v uint32) *rng.Source {
	return rng.New(e.seed ^ uint64(u) ^ uint64(v)<<1) // want "raw arithmetic"
}

// pairSeedMixedTooLate mixes after the collision already happened.
func (e *engine) pairSeedMixedTooLate(u, v uint32) uint64 {
	return rng.Mix(uint64(u) ^ uint64(v)<<1) // want "non-injectively"
}

// okPacked is the blessed form: injective pack, then the finalizer.
func (e *engine) okPacked(u, v uint32) {
	e.rng.Seed(e.seed ^ rng.Mix(uint64(u)<<32|uint64(v)))
}

// okSingleID: one id cannot collide with itself; salts are free.
func (e *engine) okSingleID(u uint32) *rng.Source {
	return rng.New(e.seed ^ (0x9e3779b97f4a7c15 * uint64(u+1)))
}

// okSingleIDSalted is the per-vertex candidate-stream shape: a phase salt
// plus one mixed id stays injective, so no diagnostic.
func (e *engine) okSingleIDSalted(v uint32) {
	e.rng.Seed(e.seed ^ 0xa54ff53a5f1d36f1 ^ rng.Mix(uint64(v)))
}

// viaLocal is the same bug hidden behind a local variable.
func (e *engine) viaLocal(u, v uint32) {
	seed := uint64(u) ^ uint64(v)<<1
	e.rng.Seed(seed) // want "raw arithmetic"
}

func (e *engine) suppressed(u, v uint32) *rng.Source {
	//lint:ignore seedmix fixture: collisions are acceptable in this toy
	return rng.New(uint64(u) + uint64(v))
}
