package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// buildCFGFromSrc parses a function body (no type info needed) and
// builds its CFG.
func buildCFGFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body)
}

// callBlock finds the block whose shallow nodes contain a call to name.
func callBlock(t *testing.T, cfg *CFG, name string) *CFGBlock {
	t.Helper()
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			found := false
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s in:\n%s", name, cfg)
	return nil
}

// canReach reports whether to is reachable from from along Succs.
func canReach(from, to *CFGBlock) bool {
	seen := map[*CFGBlock]bool{}
	stack := []*CFGBlock{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestCFGIfElse(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
if c() {
	a()
} else {
	b()
}
d()
`)
	cond := callBlock(t, cfg, "c")
	if len(cond.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2:\n%s", len(cond.Succs), cfg)
	}
	for _, name := range []string{"a", "b"} {
		br := callBlock(t, cfg, name)
		if !canReach(cond, br) || !canReach(br, callBlock(t, cfg, "d")) {
			t.Errorf("branch %s not wired through to the join:\n%s", name, cfg)
		}
	}
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("exit unreachable:\n%s", cfg)
	}
}

// TestCFGLoopBreakRelease is the shape the old lexical poolbalance could
// not see: the resource is released only on the break path, yet every
// path out of the loop goes through the release. The pairing lattice
// over the CFG must find post() in the free state and work() held.
func TestCFGLoopBreakRelease(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
lock()
for {
	if done() {
		unlock()
		break
	}
	work()
}
post()
`)
	transfer := func(b *CFGBlock, in pairState) pairState {
		st := in
		for _, n := range b.Nodes {
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						switch id.Name {
						case "lock":
							st = pairHeld
						case "unlock":
							st = pairFree
						}
					}
				}
				return true
			})
		}
		return st
	}
	in := ForwardFlow(cfg, pairFree, joinPair, transfer)

	if got := in[callBlock(t, cfg, "work")]; got != pairHeld {
		t.Errorf("work() runs with state %v, want held:\n%s", got, cfg)
	}
	if got := in[callBlock(t, cfg, "post")]; got != pairFree {
		t.Errorf("post() runs with state %v, want free (unlock dominates the break):\n%s", got, cfg)
	}
	// The loop body must loop back: work's block reaches itself.
	work := callBlock(t, cfg, "work")
	if !canReach(work, work) {
		t.Errorf("no back edge through the loop body:\n%s", cfg)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
switch tag() {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
d()
`)
	head := callBlock(t, cfg, "tag")
	if len(head.Succs) != 3 {
		// One successor per clause; the default clause means no direct
		// head→after edge.
		t.Errorf("switch head has %d succs, want 3:\n%s", len(head.Succs), cfg)
	}
	a, b := callBlock(t, cfg, "a"), callBlock(t, cfg, "b")
	direct := false
	for _, s := range a.Succs {
		if s == b {
			direct = true
		}
	}
	if !direct {
		t.Errorf("fallthrough edge a→b missing:\n%s", cfg)
	}
	after := callBlock(t, cfg, "d")
	for _, name := range []string{"b", "c"} {
		if !canReach(callBlock(t, cfg, name), after) {
			t.Errorf("case %s does not reach the statement after the switch:\n%s", name, cfg)
		}
	}
}

func TestCFGGotoBackEdge(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
start()
loop:
	if more() {
		step()
		goto loop
	}
	done()
`)
	step, more := callBlock(t, cfg, "step"), callBlock(t, cfg, "more")
	if !canReach(step, more) {
		t.Errorf("goto loop back edge missing:\n%s", cfg)
	}
	if !canReach(cfg.Entry, callBlock(t, cfg, "done")) || !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("fall-out path broken:\n%s", cfg)
	}
}

func TestCFGDeferAndPanic(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
defer cleanup()
if bad() {
	panic("boom")
}
ok()
`)
	if len(cfg.Defers) != 1 {
		t.Fatalf("got %d defers, want 1", len(cfg.Defers))
	}
	// The panic terminates its block: no successors, and in particular
	// no path from the panic to Exit.
	var panicBlock *CFGBlock
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
						panicBlock = b
					}
				}
				return true
			})
		}
	}
	if panicBlock == nil {
		t.Fatalf("panic block not found:\n%s", cfg)
	}
	if len(panicBlock.Succs) != 0 {
		t.Errorf("panic block has successors %v:\n%s", panicBlock.Succs, cfg)
	}
	if !canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("normal path to exit missing:\n%s", cfg)
	}
}

func TestCFGSelectLoop(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
for {
	select {
	case v := <-recv():
		use(v)
	default:
		idle()
	}
}
`)
	// Neither arm returns; the infinite loop never reaches Exit. (The
	// block after the loop still exists and wires to Exit, but it has no
	// predecessors, so Exit stays unreachable from Entry.)
	if canReach(cfg.Entry, cfg.Exit) {
		t.Errorf("exit reachable through an unbroken for/select loop:\n%s", cfg)
	}
	idle := callBlock(t, cfg, "idle")
	use := callBlock(t, cfg, "use")
	if !canReach(idle, use) || !canReach(use, idle) {
		t.Errorf("select arms do not loop back:\n%s", cfg)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if stop() {
				break outer
			}
			inner()
		}
	}
after()
`)
	stop := callBlock(t, cfg, "stop")
	after := callBlock(t, cfg, "after")
	if !canReach(stop, after) {
		t.Errorf("labeled break does not reach the statement after the outer loop:\n%s", cfg)
	}
	if !canReach(callBlock(t, cfg, "inner"), stop) {
		t.Errorf("inner loop does not iterate:\n%s", cfg)
	}
}

func TestCFGExitPos(t *testing.T) {
	cfg := buildCFGFromSrc(t, `
if c() {
	return
}
tail()
`)
	// One exit pred ends in a ReturnStmt (ExitPos = the return's own
	// position), the other falls off the end (ExitPos = closing brace).
	var retPreds, fallPreds int
	for _, pred := range cfg.Exit.Preds {
		if cfg.ExitPos(pred) == cfg.rbrace {
			fallPreds++
		} else {
			retPreds++
		}
	}
	if retPreds != 1 || fallPreds != 1 {
		t.Errorf("got %d return preds and %d fall-through preds, want 1 and 1:\n%s", retPreds, fallPreds, cfg)
	}
}
