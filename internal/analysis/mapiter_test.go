package analysis

import "testing"

func TestMapIterFixture(t *testing.T) {
	runFixture(t, MapIter, "mapiter")
}
