package analysis

import "testing"

func TestPoolBalanceFixture(t *testing.T) {
	runFixture(t, PoolBalance, "poolbalance")
}
