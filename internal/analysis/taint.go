package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// taint.go is the summary layer of the wiretaint analyzer (wiretaint.go):
// per-function taint facts computed over the whole module and propagated
// through static call edges, so helper-wrapped sources and sinks are
// understood across functions.
//
// The facts mirror the pool-pairing shapes in summary.go:
//
//   - TaintsResults: some return value derives from an untrusted source
//     (a binary frame read, strconv parse of a query parameter, JSON
//     body decode), directly or through a tainting callee. The typed
//     wire decoders (Frame.TopKReq and friends) earn this fact.
//   - TaintsParams[i]: the function stores an untrusted value through
//     its i-th parameter (a pointer or a field of it), e.g. the dst of
//     Frame.BatchReq.
//   - TaintSinkParams[i]: the i-th parameter reaches a size/index sink
//     (make length, slice/array index, loop bound, io read limit)
//     without ever being bounds-checked in the body, directly or by
//     forwarding it to another sink parameter.
//
// Sources are seeded only in the taint-scoped packages (the serving
// tier: internal/wire, internal/server, internal/router, plus analyzer
// fixtures) — binary reads in trusted persistence files are not
// attacker-controlled. Sink and store facts are computed module-wide so
// a scoped caller sees through helpers wherever they live.
//
// Sanitizers are syntactic by design: a comparison (<, <=, >, >=, ==,
// !=) whose operand mentions a value "bare" (possibly under
// conversions, arithmetic, or len/cap — but not as somebody's index)
// clears its taint, and a helper can be trusted wholesale with a
// //lint:sanitized marker in its doc comment. The flow-insensitive
// summary treats a key guarded anywhere in the body as clean
// everywhere; the per-function reporting flow in wiretaint.go is
// path-sensitive and stricter.

// sanitizedPrefix marks a helper whose callers may trust its arguments
// and results as bounds-checked. The marker goes in the function's doc
// comment, followed by a reason (like //lint:hotpath).
const sanitizedPrefix = "//lint:sanitized"

// sanitizedMarked reports whether the declaration's doc comment carries
// the //lint:sanitized marker.
func sanitizedMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == sanitizedPrefix || strings.HasPrefix(text, sanitizedPrefix+" ") {
			return true
		}
	}
	return false
}

// taintScope reports whether the package handles untrusted wire input:
// the binary codec, the shard server (TCP listener and HTTP bodies),
// and the router (HTTP bodies and shard responses). Fixtures are always
// in scope.
func taintScope(pkg *Package) bool {
	if fixturePkg(pkg) {
		return true
	}
	rel, ok := modRelPath(pkg)
	if !ok {
		return false
	}
	switch rel {
	case "internal/wire", "internal/server", "internal/router":
		return true
	}
	return false
}

// Pseudo-keys used as assignment targets in the local taint graph.
const taintRetKey = "\x00ret"

func taintParamKey(i int) string { return "\x00p" + strconv.Itoa(i) }

// taintLocal is the precomputed, AST-free view of one body that the
// module-wide fixed point re-evaluates each round: assignment edges,
// call-argument edges, guarded keys, and sink sites.
type taintLocal struct {
	// assigns are the dataflow edges lhs ← rhs. lhs is an exprKey, the
	// pseudo return key, or a pseudo param-store key.
	assigns []taintAssign
	// calls records every statically resolved module call argument, for
	// TaintsParams seeding and TaintSinkParams forwarding.
	calls []taintCallArg
	// guarded holds every key that appears bare in a comparison (or as
	// an argument to a //lint:sanitized helper) anywhere in the body.
	guarded map[string]bool
	// sinks lists the keys mentioned at each local size/index sink.
	sinks [][]string
	// params holds the parameter name keys by index ("" if unnamed).
	params []string
}

// taintAssign is one edge of the local taint graph.
type taintAssign struct {
	lhs string
	// keys are the exprKeys mentioned in the rhs; taint flows from any
	// tainted key.
	keys []string
	// callees are the statically resolved module calls in the rhs;
	// taint flows from any callee with TaintsResults.
	callees []*types.Func
	// source marks an rhs containing a direct untrusted read.
	source bool
}

// taintCallArg is one argument position of a statically resolved call.
type taintCallArg struct {
	callee *types.Func
	arg    int
	// key is the argument's exprKey with a leading & stripped — the
	// variable the callee may write through when it TaintsParams.
	key string
	// keys are every key mentioned in the argument, for sink-param
	// forwarding.
	keys []string
}

// taintDirect precomputes fi's local taint graph. Called from
// BuildModule after every FuncInfo exists, so //lint:sanitized callees
// resolve immediately.
func taintDirect(fi *FuncInfo, mod *Module) {
	info := fi.Pkg.Info
	tl := &taintLocal{guarded: map[string]bool{}, params: paramKeys(fi)}
	fi.taint = tl
	fi.Summary.TaintsParams = make([]bool, paramCount(fi))
	fi.Summary.TaintSinkParams = make([]bool, paramCount(fi))
	scoped := taintScope(fi.Pkg)

	addAssign := func(lhs string, rhs ast.Expr) {
		if lhs == "" {
			return
		}
		a := taintAssign{lhs: lhs}
		taintExprFacts(info, mod, rhs, scoped, &a)
		tl.assigns = append(tl.assigns, a)
	}
	addSink := func(exprs ...ast.Expr) {
		var keys []string
		for _, e := range exprs {
			if e == nil {
				continue
			}
			keys = append(keys, exprKeys(e)...)
		}
		if len(keys) > 0 {
			tl.sinks = append(tl.sinks, keys)
		}
	}

	sameFuncInspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			for _, k := range comparisonKeys(n.Cond) {
				tl.guarded[k] = true
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				addSink(n.Cond)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				rhs := pairedRhs(n.Lhs, n.Rhs, i)
				lhs := ast.Unparen(lhs)
				addAssign(exprKey(lhs), rhs)
				if pi := paramStoreIndex(fi, info, lhs); pi >= 0 {
					addAssign(taintParamKey(pi), rhs)
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					switch {
					case len(vs.Names) == len(vs.Values):
						rhs = vs.Values[i]
					case len(vs.Values) == 1:
						rhs = vs.Values[0]
					}
					if rhs != nil {
						addAssign(name.Name, rhs)
					}
				}
			}
		case *ast.RangeStmt:
			keyBounded := rangeKeyBounded(info, n.X)
			for _, v := range []ast.Expr{n.Key, n.Value} {
				if v == nil || (v == n.Key && keyBounded) {
					continue
				}
				if id, ok := ast.Unparen(v).(*ast.Ident); ok {
					addAssign(id.Name, n.X)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				addAssign(taintRetKey, res)
			}
			if len(n.Results) == 0 {
				for _, name := range namedResults(fi) {
					a := taintAssign{lhs: taintRetKey, keys: []string{name}}
					tl.assigns = append(tl.assigns, a)
				}
			}
		case *ast.IndexExpr:
			if indexableSink(info, n) {
				addSink(n.Index)
			}
		case *ast.SliceExpr:
			addSink(n.Low, n.High, n.Max)
		case *ast.CallExpr:
			taintCallFacts(fi, mod, n, scoped, addSink)
		}
		return true
	})
}

// taintCallFacts classifies one call for the local graph: sanitized
// helpers guard their arguments, module calls contribute argument
// edges, json decodes seed struct taint, make/io-limit shapes are
// sinks.
func taintCallFacts(fi *FuncInfo, mod *Module, call *ast.CallExpr, scoped bool, addSink func(...ast.Expr)) {
	info := fi.Pkg.Info
	tl := fi.taint

	if isMakeCall(info, call) && len(call.Args) > 1 {
		addSink(call.Args[1:]...)
		return
	}
	if i := ioLimitArg(info, call); i >= 0 && i < len(call.Args) {
		addSink(call.Args[i])
	}
	if scoped {
		if i, ok := jsonDecodeArg(info, call); ok && i < len(call.Args) {
			tl.assigns = append(tl.assigns, taintAssign{
				lhs:    addrKey(call.Args[i]),
				source: true,
			})
		}
	}

	callee, _ := staticCallee(info, call)
	cfi := mod.FuncOf(callee)
	if cfi == nil {
		return
	}
	if cfi.Sanitized {
		for _, arg := range call.Args {
			for _, k := range exprKeys(arg) {
				tl.guarded[k] = true
			}
		}
		return
	}
	for i, arg := range call.Args {
		tl.calls = append(tl.calls, taintCallArg{
			callee: callee,
			arg:    i,
			key:    addrKey(arg),
			keys:   exprKeys(arg),
		})
	}
}

// propagateTaint runs the taint facts to a fixed point over the call
// graph. Every fact is monotone (false → true only) and the local
// graphs are precomputed, so each round is pure data flow.
func propagateTaint(mod *Module) {
	for changed := true; changed; {
		changed = false
		for _, fi := range mod.Funcs {
			if taintEval(fi, mod) {
				changed = true
			}
		}
	}
}

// taintEval recomputes fi's taint facts from its local graph and the
// current callee summaries, reporting whether anything changed.
func taintEval(fi *FuncInfo, mod *Module) bool {
	if fi.Sanitized {
		return false
	}
	tl := fi.taint
	s := &fi.Summary

	tainted := map[string]bool{}
	add := func(k string) bool {
		if k == "" || tl.guarded[k] || tainted[k] {
			return false
		}
		tainted[k] = true
		return true
	}
	// Seeds: direct sources and callees that write taint through an
	// argument we hand them.
	for _, a := range tl.assigns {
		if a.source {
			add(a.lhs)
		}
	}
	for _, c := range tl.calls {
		cfi := mod.FuncOf(c.callee)
		if cfi == nil || c.key == "" {
			continue
		}
		if c.arg < len(cfi.Summary.TaintsParams) && cfi.Summary.TaintsParams[c.arg] {
			add(c.key)
		}
	}
	// Closure over the assignment edges.
	for again := true; again; {
		again = false
		for _, a := range tl.assigns {
			if tainted[a.lhs] || tl.guarded[a.lhs] || a.lhs == "" {
				continue
			}
			if anyPrefixIn(a.keys, tainted, tl.guarded) || anyTaintsResults(a.callees, mod) {
				if add(a.lhs) {
					again = true
				}
			}
		}
	}

	changed := false
	changed = orInto(&s.TaintsResults, tainted[taintRetKey]) || changed

	for i, pname := range tl.params {
		if !s.TaintsParams[i] {
			visible := tainted[taintParamKey(i)]
			// A pointer parameter handed whole to a tainting callee, or
			// a tainted selector rooted at the parameter, is a
			// caller-visible store too.
			for k := range tainted {
				if pname != "" && k != pname && strings.HasPrefix(k, pname+".") {
					visible = true
				}
			}
			if !visible && pname != "" && tainted[pname] && pointerLike(paramType(fi, i)) {
				visible = true
			}
			if visible {
				s.TaintsParams[i] = true
				changed = true
			}
		}
		if !s.TaintSinkParams[i] && pname != "" && !tl.guarded[pname] {
			if paramReachesSink(fi, mod, pname) {
				s.TaintSinkParams[i] = true
				changed = true
			}
		}
	}
	return changed
}

// paramReachesSink reports whether values derived from the named
// parameter reach a local sink or an unguarded sink parameter of a
// callee, never passing a guard on the way.
func paramReachesSink(fi *FuncInfo, mod *Module, pname string) bool {
	tl := fi.taint
	derived := map[string]bool{pname: true}
	for again := true; again; {
		again = false
		for _, a := range tl.assigns {
			if a.lhs == "" || derived[a.lhs] || tl.guarded[a.lhs] {
				continue
			}
			if anyPrefixIn(a.keys, derived, tl.guarded) {
				derived[a.lhs] = true
				again = true
			}
		}
	}
	for _, keys := range tl.sinks {
		if anyPrefixIn(keys, derived, tl.guarded) {
			return true
		}
	}
	for _, c := range tl.calls {
		cfi := mod.FuncOf(c.callee)
		if cfi == nil || c.arg >= len(cfi.Summary.TaintSinkParams) || !cfi.Summary.TaintSinkParams[c.arg] {
			continue
		}
		if anyPrefixIn(c.keys, derived, tl.guarded) {
			return true
		}
	}
	return false
}

// anyPrefixIn reports whether any key (or a dot-prefix of it) is in
// set, with guarded keys treated as clean.
func anyPrefixIn(keys []string, set, guarded map[string]bool) bool {
	for _, k := range keys {
		if keyPrefixIn(k, set, guarded) {
			return true
		}
	}
	return false
}

// keyPrefixIn walks k and its dot-prefixes from longest to shortest;
// the first mark found decides (a guarded child overrides a tainted
// parent).
func keyPrefixIn(k string, set, guarded map[string]bool) bool {
	for {
		if guarded[k] {
			return false
		}
		if set[k] {
			return true
		}
		i := strings.LastIndexByte(k, '.')
		if i < 0 {
			return false
		}
		k = k[:i]
	}
}

func anyTaintsResults(callees []*types.Func, mod *Module) bool {
	for _, fn := range callees {
		if cfi := mod.FuncOf(fn); cfi != nil && cfi.Summary.TaintsResults {
			return true
		}
	}
	return false
}

// taintExprFacts fills a with the keys, module callees, and source
// flag of one rhs expression (never descending into function
// literals).
func taintExprFacts(info *types.Info, mod *Module, rhs ast.Expr, scoped bool, a *taintAssign) {
	seen := map[string]bool{}
	ast.Inspect(rhs, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if k := exprKey(e); k != "" {
				// Stop at the longest chain: a guarded h.n must not expose
				// its tainted root h.
				if !seen[k] {
					seen[k] = true
					a.keys = append(a.keys, k)
				}
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if scoped && isTaintSourceCall(info, call) {
			a.source = true
			return false
		}
		callee, dynamic := staticCallee(info, call)
		if callee != nil {
			// A resolved call contributes its result taint (via the
			// callee's summary), never its arguments' taint.
			if cfi := mod.FuncOf(callee); cfi != nil && !cfi.Sanitized {
				a.callees = append(a.callees, callee)
			}
			return false
		}
		if dynamic {
			return false
		}
		return true // conversion or builtin: taint flows through
	})
}

// exprKeys returns every distinct exprKey mentioned in e (outside
// nested function literals).
func exprKeys(e ast.Expr) []string {
	var keys []string
	seen := map[string]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if x, ok := n.(ast.Expr); ok {
			if k := exprKey(x); k != "" {
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
				return false
			}
		}
		return true
	})
	return keys
}

// isTaintSourceCall matches the untrusted reads: fixed-width loads off
// a frame via encoding/binary byte orders, and strconv parses of query
// parameters.
func isTaintSourceCall(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Uint16", "Uint32", "Uint64":
			if t := typeOf(info, sel.X); t != nil {
				if named, ok := t.(*types.Named); ok {
					if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "encoding/binary" {
						return true
					}
				}
			}
		}
	}
	callee, _ := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "strconv" {
		return false
	}
	switch callee.Name() {
	case "Atoi", "ParseInt", "ParseUint", "ParseFloat":
		return true
	}
	return false
}

// jsonDecodeArg returns the argument index that an encoding/json decode
// writes through: json.Unmarshal(data, &v) → 1, dec.Decode(&v) → 0.
func jsonDecodeArg(info *types.Info, call *ast.CallExpr) (int, bool) {
	callee, _ := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "encoding/json" {
		return 0, false
	}
	switch callee.Name() {
	case "Unmarshal":
		return 1, true
	case "Decode":
		return 0, true
	}
	return 0, false
}

// ioLimitArg returns the index of the read-limit argument of an io
// limiting call, or -1.
func ioLimitArg(info *types.Info, call *ast.CallExpr) int {
	callee, _ := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "io" {
		return -1
	}
	switch callee.Name() {
	case "LimitReader":
		return 1
	case "CopyN":
		return 2
	}
	return -1
}

// rangeKeyBounded reports whether ranging over x yields keys the
// runtime bounds (slice/array/string/integer indices), as opposed to a
// map whose keys are attacker content.
func rangeKeyBounded(info *types.Info, x ast.Expr) bool {
	t := typeOf(info, x)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Map, *types.Chan:
		return false
	case *types.Basic:
		return u.Info()&(types.IsString|types.IsInteger) != 0
	}
	return true
}

// isMakeCall matches the builtin make.
func isMakeCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// indexableSink reports whether the index expression indexes a
// length-bounded container (slice, array, string — not a map, whose
// lookups cannot panic on range) with a value, not a type parameter.
func indexableSink(info *types.Info, n *ast.IndexExpr) bool {
	if tv, ok := info.Types[n.X]; !ok || tv.IsType() {
		return false
	}
	t := typeOf(info, n.X)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// comparisonKeys collects every key mentioned bare in a comparison
// inside cond: under conversions, arithmetic, unary operators, len/cap
// and other call arguments — but never from an index or slice-bound
// position (`a[i] == 0` bounds nothing about i).
func comparisonKeys(cond ast.Expr) []string {
	out := map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !isComparisonOp(be.Op) {
			return true
		}
		collectBareKeys(be.X, out)
		collectBareKeys(be.Y, out)
		return true
	})
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// collectBareKeys walks one comparison operand, collecting ident and
// selector keys but skipping index/slice-bound subtrees: appearing as
// an index inside a comparison is not a bounds check on the index.
func collectBareKeys(e ast.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		collectBareKeys(e.X, out)
	case *ast.UnaryExpr:
		collectBareKeys(e.X, out)
	case *ast.StarExpr:
		collectBareKeys(e.X, out)
	case *ast.BinaryExpr:
		collectBareKeys(e.X, out)
		collectBareKeys(e.Y, out)
	case *ast.CallExpr:
		for _, a := range e.Args {
			collectBareKeys(a, out)
		}
	case *ast.IndexExpr:
		collectBareKeys(e.X, out)
	case *ast.SliceExpr:
		collectBareKeys(e.X, out)
	case *ast.TypeAssertExpr:
		collectBareKeys(e.X, out)
	case *ast.SelectorExpr, *ast.Ident:
		if k := exprKey(e); k != "" {
			out[k] = true
		}
	}
}

// addrKey returns the exprKey of an argument with a leading & stripped
// — the variable a callee writes through when it taints the parameter.
func addrKey(arg ast.Expr) string {
	arg = ast.Unparen(arg)
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		arg = ue.X
	}
	return exprKey(arg)
}

// pairedRhs maps assignment position i to its right-hand side: one-to-
// one when the counts match, the single call otherwise.
func pairedRhs(lhs, rhs []ast.Expr, i int) ast.Expr {
	switch {
	case len(lhs) == len(rhs):
		return rhs[i]
	case len(rhs) == 1:
		return rhs[0]
	}
	return nil
}

// paramStoreIndex returns the parameter index when lhs writes through a
// parameter (a field selector, dereference, or element — not a plain
// rebinding of the parameter name), else -1.
func paramStoreIndex(fi *FuncInfo, info *types.Info, lhs ast.Expr) int {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return -1
	}
	root := lhs
	for {
		switch x := root.(type) {
		case *ast.SelectorExpr:
			root = x.X
		case *ast.StarExpr:
			root = x.X
		case *ast.IndexExpr:
			root = x.X
		case *ast.ParenExpr:
			root = x.X
		default:
			return paramIndexOf(fi, info, root)
		}
	}
}

// paramKeys returns the parameter name keys by index ("" if unnamed).
func paramKeys(fi *FuncInfo) []string {
	var out []string
	if fi.Decl.Type.Params == nil {
		return nil
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, name := range field.Names {
			out = append(out, name.Name)
		}
	}
	return out
}

// namedResults returns the declared result names (for bare returns).
func namedResults(fi *FuncInfo) []string {
	var out []string
	if fi.Decl.Type.Results == nil {
		return nil
	}
	for _, field := range fi.Decl.Type.Results.List {
		for _, name := range field.Names {
			if name.Name != "_" {
				out = append(out, name.Name)
			}
		}
	}
	return out
}

// paramType returns the declared type of parameter i, or nil.
func paramType(fi *FuncInfo, i int) types.Type {
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || i >= sig.Params().Len() {
		return nil
	}
	return sig.Params().At(i).Type()
}

// pointerLike reports whether writes through a value of this type are
// visible to the caller.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}
