package analysis

import "testing"

func TestUnsafeConfineFixture(t *testing.T) {
	runFixture(t, UnsafeConfine, "unsafeconfine")
}

func TestUnsafeConfineAllowedFiles(t *testing.T) {
	cases := []struct {
		file string
		want bool
	}{
		{"/root/repo/internal/core/mmap_unix.go", true},
		{"/root/repo/internal/core/mmap_stub.go", true},
		{"/root/repo/internal/core/persist.go", false},
		{"/root/repo/internal/graph/alias.go", false},
		{"some/dir/snapshot_mmap_linux.go", true},
		{"some/dir/mapper.go", false},
	}
	for _, c := range cases {
		if got := unsafeConfineAllowed(c.file); got != c.want {
			t.Errorf("unsafeConfineAllowed(%s) = %v, want %v", c.file, got, c.want)
		}
	}
}
