package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// summary.go computes per-function effect summaries over the call graph
// (callgraph.go). A summary has two layers:
//
//   - Direct facts, read straight off the body: allocation sites (the
//     full catalogue hotalloc reports — make/new, map/slice/closure
//     literals, growing appends, interface boxing at call boundaries,
//     string concatenation, goroutine spawns, plus calls the analysis
//     cannot see through: dynamic calls and non-allowlisted external
//     functions), lock acquire/release, ctx checks, clock and math/rand
//     reads, and the scratch-pool acquire/release shapes poolbalance
//     pairs up.
//   - Transitive facts, propagated through static call edges to a fixed
//     point: every boolean is monotone (false → true only), and
//     ReleasesParams flows through argument positions, so the worklist
//     terminates.
//
// Effects inside nested function literals are deliberately NOT effects
// of the enclosing function: the literal only runs when called, calling
// it is a dynamic call, and creating it is already summarized as a
// closure allocation. This keeps the lattice simple and errs on the
// side the analyzers want (hotalloc flags the closure itself).

// An AllocSite is one statement or expression that may allocate on the
// heap (or that the analysis cannot prove allocation-free).
type AllocSite struct {
	Pos token.Pos
	// What describes the site for diagnostics, e.g. "make([]uint32)"
	// or "call to fmt.Sprintf (external, not proven allocation-free)".
	What string
}

// A Summary is one function's effect summary.
type Summary struct {
	// Allocs lists the direct allocation sites of this body, in source
	// order.
	Allocs []AllocSite

	// Transitive effects (direct or through any static callee chain).
	Allocates       bool // has an alloc site, or calls something that does
	SpawnsGoroutine bool // executes a go statement
	ReadsClock      bool // calls time.Now / time.Since
	UsesMathRand    bool // references math/rand or math/rand/v2
	ChecksCtx       bool // consults ctx.Err()/ctx.Done() on a context value
	AcquiresLock    bool // calls Lock/RLock on a sync (RW)Mutex
	ReleasesLock    bool // calls Unlock/RUnlock on a sync (RW)Mutex

	// Pool-pairing shapes (poolbalance): AcquiresScratch marks a
	// function whose return value is a freshly acquired scratch
	// (directly `return e.getScratch()` or through such a helper);
	// ReleasesParams[i] marks a function that passes its i-th parameter
	// to putScratch/pool.Put (directly or through such a helper).
	AcquiresScratch bool
	ReleasesParams  []bool

	// Taint shapes (wiretaint, taint.go): TaintsResults marks a function
	// returning a value derived from untrusted wire input; TaintsParams[i]
	// marks one that stores such a value through its i-th parameter;
	// TaintSinkParams[i] marks one whose i-th parameter reaches a
	// size/index sink without a bounds check.
	TaintsResults   bool
	TaintsParams    []bool
	TaintSinkParams []bool
}

// hotallocExternPkgAllow lists external packages every function of which
// is trusted allocation-free on the hot path: pure-ALU math and the
// atomic intrinsics.
var hotallocExternPkgAllow = map[string]bool{
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
}

// hotallocExternFuncAllow lists individually trusted external functions
// (in-place algorithms over caller-owned storage). Notably absent:
// slices.Clone and friends, which exist to allocate.
var hotallocExternFuncAllow = map[string]bool{
	"slices.Sort":         true,
	"slices.BinarySearch": true,
	"cmp.Compare":         true,
	"cmp.Less":            true,
}

// externAllocFree reports whether a callee without a loaded body is
// trusted not to allocate.
func externAllocFree(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true // error.Error and friends resolve pkg-less; dynamic anyway
	}
	if hotallocExternPkgAllow[pkg.Path()] {
		return true
	}
	return hotallocExternFuncAllow[pkg.Path()+"."+fn.Name()]
}

// summarizeDirect fills fi.Summary with the facts visible in fi's own
// body (no propagation yet). The module is needed to classify callees:
// module-local functions contribute through call edges, everything else
// is trusted or flagged on the spot.
func summarizeDirect(fi *FuncInfo, mod *Module) {
	info := fi.Pkg.Info
	s := &fi.Summary
	s.ReleasesParams = make([]bool, paramCount(fi))

	// Appends in the canonical amortized-growth form `x = append(x, …)`
	// reuse (and at steady state never grow) their destination; they are
	// the one append shape the hot path is allowed. Collect them first so
	// the expression walk below can exempt them.
	amortized := map[*ast.CallExpr]bool{}
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || calleeName(call) != "append" || len(call.Args) == 0 {
				continue
			}
			dst := exprKey(ast.Unparen(as.Lhs[i]))
			if dst != "" && dst == exprKey(ast.Unparen(call.Args[0])) {
				amortized[call] = true
			}
		}
		return true
	})

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.alloc(n.Pos(), "function literal (closure) allocation")
			return false // the literal's body is its own function
		case *ast.GoStmt:
			s.SpawnsGoroutine = true
			s.alloc(n.Pos(), "go statement (goroutine spawn)")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					s.alloc(n.Pos(), "heap-allocated composite literal (&T{…})")
				}
			}
		case *ast.CompositeLit:
			switch typeOf(info, n).Underlying().(type) {
			case *types.Map:
				s.alloc(n.Pos(), "map literal allocation")
			case *types.Slice:
				s.alloc(n.Pos(), "slice literal allocation")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(typeOf(info, n.X)) {
				s.alloc(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(typeOf(info, n.Lhs[0])) {
				s.alloc(n.Pos(), "string concatenation")
			}
		case *ast.SelectorExpr:
			if pn, ok := info.Uses[selRootIdent(n)].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "math/rand", "math/rand/v2":
					s.UsesMathRand = true
				}
			}
		case *ast.CallExpr:
			summarizeCall(fi, mod, n, amortized)
		}
		return true
	})
	summarizePairing(fi)
}

// summarizeCall classifies one call expression: builtin allocators,
// allocating conversions, clock/ctx/lock effects, interface boxing at
// the call boundary, and calls the analysis cannot see through.
func summarizeCall(fi *FuncInfo, mod *Module, call *ast.CallExpr, amortized map[*ast.CallExpr]bool) {
	info := fi.Pkg.Info
	s := &fi.Summary

	// Conversions: string ↔ byte/rune slice copies allocate.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst, src := tv.Type, typeOf(info, call.Args[0])
		switch {
		case isStringType(dst) && isSliceType(src):
			s.alloc(call.Pos(), "string(…) conversion from a slice")
		case isSliceType(dst) && isStringType(src):
			s.alloc(call.Pos(), "[]byte/[]rune(…) conversion from a string")
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				s.alloc(call.Pos(), "make(…)")
			case "new":
				s.alloc(call.Pos(), "new(…)")
			case "append":
				if !amortized[call] {
					s.alloc(call.Pos(), "append into a fresh slice (only `x = append(x, …)` amortizes)")
				}
			}
			return
		}
	}

	// Clock, ctx and lock effects by shape.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if (sel.Sel.Name == "Now" || sel.Sel.Name == "Since") && pkgIdent(info, sel.X, "time") {
			s.ReadsClock = true
		}
		if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(typeOf(info, sel.X)) {
			s.ChecksCtx = true
		}
		if isMutexExpr(info, sel.X) {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				s.AcquiresLock = true
			case "Unlock", "RUnlock":
				s.ReleasesLock = true
			}
		}
	}

	callee, dynamic := staticCallee(info, call)
	if dynamic {
		s.alloc(call.Pos(), "dynamic call (function value or interface method); cannot be proven allocation-free")
		return
	}
	if callee != nil && mod.FuncOf(callee) == nil {
		// Callee with no loaded body: trust the allowlist, flag
		// everything else. Module-local callees with bodies contribute
		// their own sites through the call graph instead.
		if !externAllocFree(callee) {
			s.alloc(call.Pos(), fmt.Sprintf("call to %s (external, not proven allocation-free)", externName(callee)))
		}
	}

	// Interface boxing: a concrete argument passed to an interface-typed
	// parameter is boxed at the call boundary.
	sig := callSignature(info, call)
	if sig == nil || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !isBoxingParam(pt) {
			continue
		}
		at := typeOf(info, arg)
		if at == nil || types.IsInterface(at) || isNilExpr(info, arg) {
			continue
		}
		s.alloc(arg.Pos(), "interface boxing at call boundary (concrete value passed as interface)")
	}
}

// summarizePairing fills the scratch-pool shapes: a body that returns a
// direct acquire, and parameters passed to a direct release. Transitive
// helper chains are handled by propagateSummaries.
func summarizePairing(fi *FuncInfo) {
	info := fi.Pkg.Info
	s := &fi.Summary
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isDirectAcquire(info, res) {
					s.AcquiresScratch = true
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || len(n.Args) != 1 {
				return true
			}
			release := sel.Sel.Name == "putScratch" ||
				(sel.Sel.Name == "Put" && isPoolExpr(info, sel.X))
			if !release {
				return true
			}
			if i := paramIndexOf(fi, info, n.Args[0]); i >= 0 {
				s.ReleasesParams[i] = true
			}
		}
		return true
	})
}

// propagateSummaries runs the boolean effect lattice to a fixed point
// over the call graph: each pass ors every callee's transitive bits into
// its callers, and flows ReleasesParams through argument positions and
// AcquiresScratch through returned helper calls. All facts only ever go
// false → true, so the iteration terminates.
func propagateSummaries(mod *Module) {
	for _, fi := range mod.Funcs {
		fi.Summary.Allocates = len(fi.Summary.Allocs) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range mod.Funcs {
			s := &fi.Summary
			for _, edge := range fi.Callees {
				callee := edge.Info
				if callee == nil {
					continue
				}
				cs := &callee.Summary
				changed = orInto(&s.Allocates, cs.Allocates) || changed
				changed = orInto(&s.SpawnsGoroutine, cs.SpawnsGoroutine) || changed
				changed = orInto(&s.ReadsClock, cs.ReadsClock) || changed
				changed = orInto(&s.UsesMathRand, cs.UsesMathRand) || changed
				changed = orInto(&s.AcquiresLock, cs.AcquiresLock) || changed
				changed = orInto(&s.ReleasesLock, cs.ReleasesLock) || changed
				// ChecksCtx flows only when the caller hands the callee a
				// context to check.
				if cs.ChecksCtx && callPassesContext(fi.Pkg.Info, edge.Call) {
					changed = orInto(&s.ChecksCtx, true) || changed
				}
				// ReleasesParams: passing parameter i where the callee
				// releases makes this function release parameter i too.
				for j, arg := range edge.Call.Args {
					if j >= len(cs.ReleasesParams) || !cs.ReleasesParams[j] {
						continue
					}
					if i := paramIndexOf(fi, fi.Pkg.Info, arg); i >= 0 && !s.ReleasesParams[i] {
						s.ReleasesParams[i] = true
						changed = true
					}
				}
			}
			// AcquiresScratch through a returned helper call.
			if !s.AcquiresScratch && returnsAcquiringCall(fi, mod) {
				s.AcquiresScratch = true
				changed = true
			}
		}
	}
}

func orInto(dst *bool, src bool) bool {
	if src && !*dst {
		*dst = true
		return true
	}
	return false
}

// returnsAcquiringCall reports whether some return statement of fi
// returns a call to a helper whose summary says it acquires.
func returnsAcquiringCall(fi *FuncInfo, mod *Module) bool {
	info := fi.Pkg.Info
	found := false
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return !found
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee, _ := staticCallee(info, call)
			if helper := mod.FuncOf(callee); helper != nil && helper.Summary.AcquiresScratch {
				found = true
			}
		}
		return !found
	})
	return found
}

// callPassesContext reports whether any argument of the call is
// context-typed (the handle the callee's ctx check runs on).
func callPassesContext(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isContextType(typeOf(info, arg)) {
			return true
		}
	}
	return false
}

// paramIndexOf maps an argument expression to the index of the function
// parameter it denotes, or -1 (receivers and locals are not parameters).
func paramIndexOf(fi *FuncInfo, info *types.Info, arg ast.Expr) int {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil {
		return -1
	}
	i := 0
	if fi.Decl.Type.Params == nil {
		return -1
	}
	for _, field := range fi.Decl.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// paramCount returns the number of (named or anonymous) parameters.
func paramCount(fi *FuncInfo) int {
	n := 0
	if fi.Decl.Type.Params == nil {
		return 0
	}
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			n++
			continue
		}
		n += len(field.Names)
	}
	return n
}

// isDirectAcquire matches the literal acquire shapes poolbalance knows:
// e.getScratch() and pool.Get() (optionally type-asserted).
func isDirectAcquire(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "getScratch":
		return true
	case "Get":
		return isPoolExpr(info, sel.X)
	}
	return false
}

// externName renders an external function for diagnostics.
func externName(fn *types.Func) string {
	if pkg := fn.Pkg(); pkg != nil {
		return pkg.Name() + "." + fn.Name()
	}
	return fn.Name()
}

// typeOf returns the static type of e, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// isBoxingParam reports whether passing a concrete value for a parameter
// of this type boxes it: true interface types only — a type parameter's
// underlying is an interface but instantiation makes it concrete.
func isBoxingParam(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, isTP := t.(*types.TypeParam); isTP {
		return false
	}
	return types.IsInterface(t)
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func (s *Summary) alloc(pos token.Pos, what string) {
	s.Allocs = append(s.Allocs, AllocSite{Pos: pos, What: what})
}

// selRootIdent returns the leftmost identifier of a selector chain.
func selRootIdent(sel *ast.SelectorExpr) *ast.Ident {
	e := ast.Expr(sel)
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}
