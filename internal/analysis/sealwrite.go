package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// SealWrite enforces the immutability contract behind lock-free serving
// (DESIGN.md §8): once Seal() publishes a Snapshot, queries read it with
// no synchronization at all, so nothing may ever write a Snapshot field
// or store through its slices again. The builder is the one legitimate
// writer, and the builder is distinguishable by type: Engine embeds
// *Snapshot and all preprocessing mutates fields through an Engine-typed
// receiver or variable.
//
// Concretely, an assignment (or ++/--) whose target path passes through a
// field of the Snapshot struct is flagged unless:
//
//   - the base the field is selected from is Engine-typed (builder), or
//   - the write happens in snapshot.go or engine.go (the constructor and
//     preprocessing files, which initialize a not-yet-published value
//     through *Snapshot receivers).
//
// Mutating methods on sync types held inside the snapshot (pool.Get,
// atomic counters) are method calls, not assignments, and are governed by
// their own analyzers.
var SealWrite = &Analyzer{
	Name: "sealwrite",
	Doc: "Snapshot fields and their slice contents are immutable after Seal(); only the " +
		"Engine builder (or snapshot.go/engine.go) may write them",
	Run: runSealWrite,
}

// sealAllowedFiles are the construction files where *Snapshot-based
// writes are the point: the constructor and the preprocessing driver.
var sealAllowedFiles = map[string]bool{
	"snapshot.go": true,
	"engine.go":   true,
}

func runSealWrite(pass *Pass) error {
	if !corePackage(pass.Pkg) {
		return nil
	}
	snapFields, builderType := sealTypes(pass.Pkg)
	if len(snapFields) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		file := pass.Pkg.Fset.Position(f.Pos()).Filename
		if sealAllowedFiles[filepath.Base(file)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkSealTarget(pass, lhs, snapFields, builderType)
				}
			case *ast.IncDecStmt:
				checkSealTarget(pass, n.X, snapFields, builderType)
			}
			return true
		})
	}
	return nil
}

// sealTypes resolves the Snapshot struct's field objects and the Engine
// builder type from the package scope. Missing types (a fixture without
// an Engine) degrade gracefully.
func sealTypes(pkg *Package) (fields map[*types.Var]bool, builder types.Type) {
	fields = map[*types.Var]bool{}
	scope := pkg.Types.Scope()
	if obj := scope.Lookup("Snapshot"); obj != nil {
		if st, ok := obj.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				fields[st.Field(i)] = true
			}
		}
	}
	if obj := scope.Lookup("Engine"); obj != nil {
		builder = obj.Type()
	}
	return fields, builder
}

// checkSealTarget walks an assignment target's access path outward-in:
// if the path passes through a Snapshot field, the base the field is
// selected from decides legality.
func checkSealTarget(pass *Pass, lhs ast.Expr, snapFields map[*types.Var]bool, builder types.Type) {
	info := pass.Pkg.Info
	e := ast.Unparen(lhs)
	throughIndex := false
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			throughIndex = true
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.SelectorExpr:
			fv := selectedField(info, x)
			if fv != nil && snapFields[fv] {
				if !isBuilderExpr(info, x.X, builder) {
					if throughIndex {
						pass.Reportf(x.Sel.Pos(),
							"store through Snapshot.%s outside the builder; snapshots are immutable after Seal() "+
								"(mutate through the Engine during preprocessing)", fv.Name())
					} else {
						pass.Reportf(x.Sel.Pos(),
							"write to Snapshot.%s outside the builder; snapshots are immutable after Seal() "+
								"(mutate through the Engine during preprocessing)", fv.Name())
					}
				}
				return
			}
			e = ast.Unparen(x.X)
			continue
		}
		return
	}
}

// isBuilderExpr reports whether the expression the field is selected
// from is the Engine builder (directly or behind a pointer). Snapshot
// fields reached through an Engine are the preprocessing writes the
// design sanctions.
func isBuilderExpr(info *types.Info, e ast.Expr, builder types.Type) bool {
	if builder == nil {
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, builder)
}
