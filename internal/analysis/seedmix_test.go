package analysis

import "testing"

// TestSeedMixFixture includes the PR-1 regression shape u^(v<<1) as a
// must-flag case, both raw at the seed sink and hidden inside a Mix call.
func TestSeedMixFixture(t *testing.T) {
	runFixture(t, SeedMix, "seedmix")
}
