package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baseline.go implements the CI gating mode: a committed JSON file of
// accepted diagnostics, so the gate fails only on *new* findings. This is
// how a new analyzer can land with pre-existing debt without blocking
// every unrelated PR, and how that debt is prevented from growing.
//
// Matching deliberately ignores line numbers: an entry is (rule, file,
// message), and each entry absorbs at most as many diagnostics as the
// entry is duplicated. Unrelated edits that shift lines therefore do not
// invalidate the baseline, while a second instance of an accepted
// diagnostic in the same file is still reported as new.

// A Baseline is the committed set of accepted diagnostics.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// A BaselineEntry identifies one accepted diagnostic. File is
// module-root-relative with forward slashes so baselines are stable
// across checkouts and platforms.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Message string `json:"message"`
}

const baselineVersion = 1

// baselineFile renders a diagnostic's file path for baseline matching.
func baselineFile(file, modRoot string) string {
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// NewBaseline captures the given diagnostics as a baseline, sorted so
// the serialized form is deterministic.
func NewBaseline(diags []Diagnostic, modRoot string) *Baseline {
	b := &Baseline{Version: baselineVersion, Entries: []BaselineEntry{}}
	for _, d := range diags {
		b.Entries = append(b.Entries, BaselineEntry{
			Rule:    d.Rule,
			File:    baselineFile(d.File, modRoot),
			Message: d.Message,
		})
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// WriteFile serializes the baseline with a trailing newline (it is a
// committed file; diffs should be clean).
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline loads and validates a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("%s: unsupported baseline version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Filter splits diags into the ones not covered by the baseline (new
// findings that should fail the gate) and reports the baseline entries
// that no longer fire (stale debt that can be deleted). Each entry
// absorbs at most one diagnostic per duplication.
func (b *Baseline) Filter(diags []Diagnostic, modRoot string) (fresh []Diagnostic, stale []BaselineEntry) {
	key := func(rule, file, msg string) string {
		return rule + "\x00" + file + "\x00" + msg
	}
	remaining := map[string]int{}
	for _, e := range b.Entries {
		remaining[key(e.Rule, e.File, e.Message)]++
	}
	for _, d := range diags {
		k := key(d.Rule, baselineFile(d.File, modRoot), d.Message)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, e := range b.Entries {
		k := key(e.Rule, e.File, e.Message)
		if remaining[k] > 0 {
			remaining[k]--
			stale = append(stale, e)
		}
	}
	return fresh, stale
}
