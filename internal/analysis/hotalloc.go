package analysis

// hotalloc enforces the query hot path's allocation-freedom statically.
//
// The dynamic side of this contract already exists: the steady-state
// benchmarks count allocs/op and the scratch pool makes the walk/tally
// kernels reuse their buffers. But a benchmark only guards the code it
// happens to exercise. hotalloc instead starts from every function whose
// doc comment carries //lint:hotpath, walks the static call graph
// (callgraph.go), and reports every allocation site reachable from a
// root — with the call chain that reaches it, so a diagnostic two calls
// deep reads "StepWalks → stepChunk → gatherLive: make(…)".
//
// What counts as an allocation site is decided by the effect summaries
// (summary.go): make/new, map/slice/closure literals, &T{…}, growing
// appends (the self-assign form `x = append(x, …)` is exempt — that is
// the amortized pooled-growth idiom the scratch buffers rely on),
// string concatenation and string↔slice conversions, interface boxing
// at call boundaries, goroutine spawns, plus the two shapes the static
// view cannot see through: dynamic calls and calls into external
// packages outside a small trusted allowlist (sync/atomic, math,
// math/bits, slices.Sort/BinarySearch). Those are reported as
// "not proven allocation-free" rather than silently trusted.
//
// Intentional amortized growth inside a hot function is suppressed the
// usual way, with //lint:ignore hotalloc <reason> on the site.

// HotAlloc reports allocation sites reachable from //lint:hotpath roots.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "reports heap allocation sites (and calls not provably allocation-free) " +
		"reachable from //lint:hotpath-marked functions through the static call graph",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	reach := pass.Mod.hotReach()
	for _, fi := range pass.Mod.Funcs {
		if fi.Pkg != pass.Pkg {
			continue // each package's pass reports only its own files
		}
		chain, hot := reach[fi]
		if !hot {
			continue
		}
		for _, site := range fi.Summary.Allocs {
			pass.Reportf(site.Pos, "allocation on hot path: %s [via %s]", site.What, chainString(chain))
		}
	}
	return nil
}
