package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced only %d distinct values out of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must not simply replay the parent stream.
	p := New(7)
	p.Uint64() // consume the split draw
	diverged := false
	for i := 0; i < 50; i++ {
		if child.Uint64() != p.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("split child replays parent stream")
	}
}

func TestUint32nRange(t *testing.T) {
	r := New(3)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 20, math.MaxUint32} {
		for i := 0; i < 200; i++ {
			v := r.Uint32n(n)
			if v >= n {
				t.Fatalf("Uint32n(%d) returned %d", n, v)
			}
		}
	}
}

func TestUint32nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint32n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for n == %d", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUint32nUniform(t *testing.T) {
	// Chi-squared sanity check on 8 buckets.
	r := New(99)
	const buckets = 8
	const draws = 80000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uint32n(buckets)]++
	}
	expect := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expect
		chi2 += d * d / expect
	}
	// 7 dof; 0.999 quantile is ~24.3. Be generous.
	if chi2 > 30 {
		t.Fatalf("chi-squared too large: %f (counts %v)", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	New(1).Sample(3, 4)
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(11)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed multiset: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(123)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %f too far from 1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint32n(b *testing.B) {
	r := New(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += r.Uint32n(12345)
	}
	_ = sink
}
