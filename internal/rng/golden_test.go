package rng

import "testing"

// The golden draw sequences pin the generator's exact outputs: every
// Monte-Carlo result in this repository — index contents, snapshots on
// disk, the core package's golden query corpus — is a deterministic
// function of these bits, and the batched walk kernels in
// internal/graph re-implement the generator inline (State/SetState plus
// a scalar xoshiro step) under the promise that the sequence never
// changes. Any refactor of Uint32/Uint32n that alters an output is a
// breaking change and must fail here, loudly, not in a downstream
// determinism test.
var goldenDraws = []struct {
	seed uint64
	u64  []uint64 // first draws as Uint64
	u32  []uint32 // next draws as Uint32
	u32n []uint32 // next draws as Uint32n(1, 2, 3, 7, 100, 1<<20, MaxUint32)
}{
	{seed: 0x0,
		u64:  []uint64{0x99ec5f36cb75f2b4, 0xbf6e1f784956452a, 0x1a5f849d4933e6e0, 0x6aa594f1262d2d2c, 0xbba5ad4a1f842e59, 0xffef8375d9ebcaca},
		u32:  []uint32{0x6c160dee, 0x8920ad64, 0xdb032c0b, 0xeb3a475a, 0x1d42993f, 0x11361bf5},
		u32n: []uint32{0, 1, 1, 2, 70, 197851, 2361292661}},
	{seed: 0x1,
		u64:  []uint64{0xb3f2af6d0fc710c5, 0x853b559647364cea, 0x92f89756082a4514, 0x642e1c7bc266a3a7, 0xb27a48e29a233673, 0x24c123126ffda722},
		u32:  []uint32{0x123004ef, 0x61954dcc, 0xddfdb48a, 0x8d3cdb8c, 0xeebd114b, 0xf50c3ff1},
		u32n: []uint32{0, 1, 1, 6, 8, 515228, 196796125}},
	{seed: 0x2a,
		u64:  []uint64{0x15780b2e0c2ec716, 0x6104d9866d113a7e, 0xae17533239e499a1, 0xecb8ad4703b360a1, 0xfde6dc7fe2ec5e64, 0xc50da53101795238},
		u32:  []uint32{0xb8215485, 0xd99a2743, 0xc2e96e72, 0x9556615f, 0xaeb53b34, 0x4a69db98},
		u32n: []uint32{0, 0, 2, 6, 61, 892747, 3038863170}},
	{seed: 0x9e3779b97f4a7c15,
		u64:  []uint64{0x422ea740d0977210, 0xe062b061b42e2928, 0x5a071fc5930841b6, 0x1334ef8ed3cc2bd, 0xe45cbd6a2d9e96db, 0x3bc1fe841a5f292f},
		u32:  []uint32{0x60001d95, 0xa0aee00b, 0x9e23c8d7, 0xfc79b675, 0xd430797e, 0x5d8c1e38},
		u32n: []uint32{0, 1, 0, 3, 73, 418704, 4042786416}},
}

var goldenBounds = []uint32{1, 2, 3, 7, 100, 1 << 20, ^uint32(0)}

func TestGoldenDrawSequence(t *testing.T) {
	for _, g := range goldenDraws {
		r := New(g.seed)
		for i, want := range g.u64 {
			if got := r.Uint64(); got != want {
				t.Fatalf("seed %#x Uint64 draw %d: got %#x, want %#x", g.seed, i, got, want)
			}
		}
		for i, want := range g.u32 {
			if got := r.Uint32(); got != want {
				t.Fatalf("seed %#x Uint32 draw %d: got %#x, want %#x", g.seed, i, got, want)
			}
		}
		for i, want := range g.u32n {
			if got := r.Uint32n(goldenBounds[i]); got != want {
				t.Fatalf("seed %#x Uint32n(%d) draw %d: got %d, want %d", g.seed, goldenBounds[i], i, got, want)
			}
		}
	}
}

func TestUint32IsTopHalfOfUint64(t *testing.T) {
	// Uint32 must be the top 32 bits of the Uint64 the same state would
	// have produced — the walk kernels rely on this when they consume the
	// stream 32 bits at a time.
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint32(), uint32(b.Uint64()>>32); got != want {
			t.Fatalf("draw %d: Uint32 = %#x, Uint64>>32 = %#x", i, got, want)
		}
	}
}

func TestStateSetStateRoundTrip(t *testing.T) {
	r := New(99)
	r.Uint64()
	s0, s1, s2, s3 := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	var other Source
	other.SetState(s0, s1, s2, s3)
	for i, w := range want {
		if got := other.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: got %#x, want %#x", i, got, w)
		}
	}
	// State must not perturb the stream: a fresh generator reading its
	// state mid-stream continues identically to one that never did.
	a, b := New(5), New(5)
	a.Uint32()
	b.Uint32()
	a.State()
	if a.Uint64() != b.Uint64() {
		t.Fatal("State() perturbed the draw stream")
	}
}
