// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all Monte-Carlo components of the library.
//
// The generator is xoshiro256**, seeded through splitmix64 so that any
// 64-bit seed (including 0) produces a well-mixed initial state. It is
// deliberately not safe for concurrent use: Monte-Carlo workers each own
// a Source split off a parent with Split, which yields independent,
// reproducible streams without locking.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
// The zero value is not usable until Seed is called; construct with New
// or embed a Source by value and Seed it before use.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output.
// It is used for seeding and for splitting streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a well-mixed 64-bit hash of x (one splitmix64 step). It is
// a bijection on uint64, so distinct inputs yield distinct outputs; use it
// to derive seeds from structured values such as packed vertex pairs.
func Mix(x uint64) uint64 {
	return splitmix64(&x)
}

// New returns a Source seeded from the given 64-bit seed.
// Equal seeds produce identical streams.
func New(seed uint64) *Source {
	r := &Source{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
}

// Split returns a new Source whose stream is independent of the receiver's
// future output. It consumes one output from the receiver.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Uint32 returns the next 32 uniformly random bits: the top half of the
// next Uint64, which is the xoshiro output with the better-mixed bits.
// The generator body is spelled out (rather than calling Uint64) to keep
// the function inside the compiler's inlining budget — walk kernels draw
// through this on every step.
func (r *Source) Uint32() uint32 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return uint32(result >> 32)
}

// State returns the generator's four xoshiro256** state words. Bulk
// kernels copy the state into scalar locals (which the compiler keeps in
// registers — a pointer-addressed Source round-trips through memory on
// every draw), step the generator inline, and hand the words back via
// SetState. Such a kernel must reproduce the exact output sequence of
// Uint64/Uint32; the contract is pinned by the golden draw tests.
func (r *Source) State() (s0, s1, s2, s3 uint64) {
	return r.s0, r.s1, r.s2, r.s3
}

// SetState replaces the generator's state words; see State.
func (r *Source) SetState(s0, s1, s2, s3 uint64) {
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Uint32n returns a uniformly random integer in [0, n).
// It panics if n == 0. Uses Lemire's multiply-shift method: the product
// x·n splits into a quotient (the result) and a fractional remainder,
// and only draws whose remainder lands under the bias threshold reject.
// The no-rejection fast path is branch-one-compare; the threshold is
// computed once, in the out-of-line slow path, so retries cost a single
// multiply each.
func (r *Source) Uint32n(n uint32) uint32 {
	m := uint64(r.Uint32()) * uint64(n)
	if uint32(m) < n || n == 0 {
		m = r.uint32nSlow(m, n)
	}
	return uint32(m >> 32)
}

// uint32nSlow finishes a draw whose first attempt landed in the biased
// low region; it also hosts the n == 0 panic (the fast path's
// `uint32(m) < n` test alone would miss it — the product is 0 and
// 0 < 0 is false — so the caller checks n == 0 explicitly).
func (r *Source) uint32nSlow(m uint64, n uint32) uint64 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	thresh := -n % n
	for uint32(m) < thresh {
		m = uint64(r.Uint32()) * uint64(n)
	}
	return m
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	if n <= math.MaxUint32 {
		return int(r.Uint32n(uint32(n)))
	}
	// Rare path for very large n: rejection sample on 63 bits.
	max := uint64(n)
	for {
		v := r.Uint64() >> 1
		if v < (1<<63)-((1<<63)%max) {
			return int(v % max)
		}
	}
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Perm returns a random permutation of [0, n) as a slice of ints.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, following the Fisher–Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniformly random integers from [0, n) in
// unspecified order. It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k*4 >= n {
		// Dense case: partial Fisher–Yates over an explicit index slice.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			idx[i], idx[j] = idx[j], idx[i]
		}
		return idx[:k:k]
	}
	// Sparse case: rejection via a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// NormFloat64 returns a standard normally distributed float64 using the
// Marsaglia polar method. Used by generators that need Gaussian noise.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}
