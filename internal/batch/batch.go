// Package batch runs the all-vertices top-k similarity search (the
// "top-k for all" mode of Table 1) as a restartable, shardable job and
// streams results to a TSV writer.
//
// The paper notes the query phase is distributed-computing friendly: with
// M machines the O(n²)-worst-case all-pairs search drops to O(n²/M).
// A Job with Shard i of M processes exactly the contiguous vertex range
// [i·n/M, (i+1)·n/M) — the canonical partition owned by internal/shard,
// the same one the serving tier's router assumes — so shard outputs are
// simply concatenated, and a batch shard's vertex set matches the
// serving shard of the same index.
//
// Output format, one line per vertex (tab-separated):
//
//	vertex <TAB> neighbour:score <TAB> neighbour:score ...
//
// Vertices with no results above the threshold still emit a line, so a
// resumed job can tell completed vertices from unprocessed ones.
package batch

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/shard"
)

// Job describes one all-pairs run (or one shard of it).
type Job struct {
	Engine *core.Engine
	K      int
	// Shard / NumShards select the contiguous vertex range
	// shard.Range(Shard, NumShards, n). NumShards 0 or 1 means the
	// whole graph.
	Shard     int
	NumShards int
	// Done lists vertices already present in a previous partial output;
	// they are skipped (see ScanCompleted).
	Done map[uint32]bool
	// Progress, when non-nil, receives the number of processed vertices
	// at coarse intervals.
	Progress func(done, total int)
}

// Run executes the job, writing one line per processed vertex to w.
// Results are written in ascending vertex order regardless of the
// parallel execution order, so output files are deterministic.
//
// Parallelism comes from TopKBatch running Params.Workers whole queries
// at once (each query scores its candidates sequentially — the workers
// are already saturated across vertices), which is the efficient
// arrangement for throughput-bound batch work; per-query scoring
// parallelism only helps latency-bound interactive queries.
func Run(job Job, w io.Writer) (processed int, err error) {
	if job.Engine == nil {
		return 0, fmt.Errorf("batch: nil engine")
	}
	if job.K <= 0 {
		return 0, fmt.Errorf("batch: k must be positive, got %d", job.K)
	}
	if job.NumShards > 1 && (job.Shard < 0 || job.Shard >= job.NumShards) {
		return 0, fmt.Errorf("batch: shard %d out of range [0, %d)", job.Shard, job.NumShards)
	}
	n := job.Engine.Graph().N()
	lo, hi := shard.Range(job.Shard, job.NumShards, n)
	var todo []uint32
	for v := lo; v < hi; v++ {
		if job.Done[uint32(v)] {
			continue
		}
		todo = append(todo, uint32(v))
	}

	// Each chunk is one TopKBatch call: the job computes exactly its own
	// vertices (a shard of M machines does n/M queries, not n filtered),
	// results stream out between chunks, and every query in the run shares
	// the snapshot's tally cache.
	bw := bufio.NewWriter(w)
	const chunk = 1024
	for lo := 0; lo < len(todo); lo += chunk {
		hi := min(lo+chunk, len(todo))
		res, _ := job.Engine.TopKBatch(todo[lo:hi], job.K)
		for i, r := range res {
			if err := writeLine(bw, todo[lo+i], r); err != nil {
				return processed, err
			}
			processed++
		}
		if job.Progress != nil {
			job.Progress(processed, len(todo))
		}
	}
	return processed, bw.Flush()
}

func writeLine(w *bufio.Writer, u uint32, res []core.Scored) error {
	if _, err := fmt.Fprintf(w, "%d", u); err != nil {
		return err
	}
	for _, s := range res {
		if _, err := fmt.Fprintf(w, "\t%d:%.6f", s.V, s.Score); err != nil {
			return err
		}
	}
	return w.WriteByte('\n')
}

// ScanCompleted reads a previous (possibly truncated) output file and
// returns the set of vertices it already covers, enabling resume. Only
// newline-terminated lines count: the torn final line of a crashed run
// lacks its terminator (and could otherwise still parse, e.g. a score cut
// mid-digits). Unparseable terminated lines are also skipped.
func ScanCompleted(r io.Reader) (map[uint32]bool, error) {
	done := make(map[uint32]bool)
	br := bufio.NewReader(r)
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// line holds a fragment with no terminator: torn, skip.
			return done, nil
		}
		if err != nil {
			return nil, fmt.Errorf("batch: scanning previous output: %w", err)
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			continue
		}
		head, rest, _ := strings.Cut(line, "\t")
		v, err := strconv.ParseUint(head, 10, 32)
		if err != nil {
			continue // foreign line
		}
		if rest != "" && !validEntries(rest) {
			continue
		}
		done[uint32(v)] = true
	}
}

// validEntries reports whether every tab-separated field parses as
// "vertex:score".
func validEntries(rest string) bool {
	for _, f := range strings.Split(rest, "\t") {
		v, s, ok := strings.Cut(f, ":")
		if !ok {
			return false
		}
		if _, err := strconv.ParseUint(v, 10, 32); err != nil {
			return false
		}
		if _, err := strconv.ParseFloat(s, 64); err != nil {
			return false
		}
	}
	return true
}

// ParseLine decodes one output line back into (vertex, results); used by
// consumers of batch output and by the tests.
func ParseLine(line string) (uint32, []core.Scored, error) {
	head, rest, _ := strings.Cut(line, "\t")
	u64, err := strconv.ParseUint(head, 10, 32)
	if err != nil {
		return 0, nil, fmt.Errorf("batch: bad vertex in %q: %w", line, err)
	}
	var res []core.Scored
	if rest != "" {
		for _, f := range strings.Split(rest, "\t") {
			vs, ss, ok := strings.Cut(f, ":")
			if !ok {
				return 0, nil, fmt.Errorf("batch: bad entry %q", f)
			}
			v, err := strconv.ParseUint(vs, 10, 32)
			if err != nil {
				return 0, nil, fmt.Errorf("batch: bad entry vertex %q: %w", vs, err)
			}
			s, err := strconv.ParseFloat(ss, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("batch: bad entry score %q: %w", ss, err)
			}
			res = append(res, core.Scored{V: uint32(v), Score: s})
		}
	}
	return uint32(u64), res, nil
}
