package batch

import (
	"strings"
	"testing"
)

// FuzzScanCompleted checks that arbitrary previous-output files never
// panic the resume scanner, and that whatever it accepts parses.
func FuzzScanCompleted(f *testing.F) {
	f.Add("5\t1:0.5\n9\n")
	f.Add("")
	f.Add("torn")
	f.Add("1\t2:0.25\t3:bad\n")
	f.Add("4294967295\t0:1.000000\n")
	f.Fuzz(func(t *testing.T, input string) {
		done, err := ScanCompleted(strings.NewReader(input))
		if err != nil {
			t.Fatalf("scanner errored on in-memory input: %v", err)
		}
		// Every accepted vertex must appear as a terminated,
		// parseable line.
		for v := range done {
			found := false
			for _, line := range strings.Split(input, "\n") {
				u, _, err := ParseLine(line)
				if err == nil && u == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("accepted vertex %d has no parseable line", v)
			}
		}
	})
}
